// Quickstart: sketch a synthetic low-rank matrix with ARAMS, check the
// Frequent Directions error guarantee, and project the data into the
// sketch's latent space.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"arams/internal/pca"
	"arams/internal/sketch"
	"arams/internal/synth"
)

func main() {
	// 1. Make a 3000×500 dataset with exponentially decaying spectrum.
	ds := synth.Generate(synth.Params{
		N: 3000, D: 500, Rank: 100, Decay: synth.Exponential, Seed: 42,
	})
	fmt.Printf("data: %d×%d, intrinsic rank %d\n", ds.A.RowsN, ds.A.ColsN, len(ds.Sigmas))

	// 2. Sketch it with ARAMS: rank-adaptive Frequent Directions, with
	// priority sampling keeping the 85% most energetic rows. We ask
	// for ≤2% relative reconstruction error instead of guessing a rank.
	cfg := sketch.Config{
		Ell0:         8,
		Nu:           10,
		Eps:          0.02,
		Beta:         0.85,
		RankAdaptive: true,
		Seed:         7,
	}
	a := sketch.NewARAMS(cfg, ds.A.ColsN, ds.A.RowsN)

	// Stream the data through in batches, as an online consumer would.
	const batch = 250
	for lo := 0; lo < ds.A.RowsN; lo += batch {
		hi := lo + batch
		if hi > ds.A.RowsN {
			hi = ds.A.RowsN
		}
		a.ProcessBatch(ds.A.Rows(lo, hi))
	}
	b := a.Sketch()
	fmt.Printf("sketch: %d×%d (rank adapted from %d to %d directions)\n",
		b.RowsN, b.ColsN, cfg.Ell0, a.Ell())

	// 3. Verify the sketch quality.
	covErr := sketch.CovErr(ds.A, b)
	bound := sketch.FDBound(ds.A, a.Ell())
	fmt.Printf("covariance error ‖AᵀA−BᵀB‖₂ = %.4g (FD bound %.4g)\n", covErr, bound)

	basis := a.Basis(a.Ell())
	rel := sketch.RelProjErr(ds.A, basis)
	fmt.Printf("relative projection error = %.4f (target ε = %.2f)\n", rel, cfg.Eps)

	// 4. Project into latent space and look at the spectrum captured.
	proj := pca.NewProjector(basis)
	z := proj.Project(ds.A)
	ev := proj.ExplainedVariance(ds.A)
	var total float64
	for _, f := range ev {
		total += f
	}
	fmt.Printf("latent space: %d×%d, %.1f%% of variance captured\n",
		z.RowsN, z.ColsN, 100*total)
	fmt.Printf("top components: %.3f %.3f %.3f ...\n", ev[0], ev[1], ev[2])
}
