// Diffraction-run clustering: the Fig. 6 scenario. A simulated run of
// quadrant-weighted diffraction rings is written to an offline run
// file, read back (exercising the run store the way the paper's code
// reads psana runs), and pushed through the pipeline; the discovered
// clusters are scored against the generator's hidden class labels.
//
// Run with: go run ./examples/diffraction
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"arams/internal/imgproc"
	"arams/internal/lcls"
	"arams/internal/optics"
	"arams/internal/pipeline"
	"arams/internal/sketch"
	"arams/internal/umap"
	"arams/internal/viz"
)

func main() {
	// 1. Simulate and store a run, as a DAQ writer would.
	dg := lcls.NewDiffractionGenerator(lcls.DiffractionConfig{Size: 64, Seed: 99})
	run := &lcls.Run{Experiment: "xpplx9221", RunNumber: 244, Detector: lcls.AreaDetector}
	frames, labels := dg.Generate(400)
	for i, f := range frames {
		run.Append(f.Image, labels[i])
	}
	path := filepath.Join(os.TempDir(), "xpplx9221_r244.lcls")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := run.WriteTo(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(path)
	fmt.Printf("wrote run %s:%d (%d frames) to %s (%.1f MB)\n",
		run.Experiment, run.RunNumber, run.Len(), path, float64(info.Size())/1e6)

	// 2. Read it back, as the analysis job would.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	stored, err := lcls.ReadRun(rf)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back %d frames of %d×%d from detector %q\n",
		stored.Len(), stored.Width, stored.Height, stored.Detector)

	// 3. Run the analysis pipeline.
	res := pipeline.Process(stored.Frames, pipeline.Config{
		Pre:       imgproc.Preprocessor{Normalize: true},
		Sketch:    sketch.Config{Ell0: 25, Beta: 0.9, Seed: 5},
		Workers:   4,
		LatentDim: 12,
		UMAP:      umap.Config{NNeighbors: 20, NEpochs: 200, Seed: 6},
	})

	// 4. Score the clustering against the stored ground truth.
	nc := optics.NumClusters(res.Labels)
	ari := optics.ARI(res.Labels, stored.Labels)
	fmt.Printf("\nclusters found: %d (true classes: %d), ARI vs truth: %.3f\n",
		nc, dg.NumClasses(), ari)

	// Per-cluster composition.
	comp := map[int]map[int]int{}
	for i, l := range res.Labels {
		if l == optics.Noise {
			continue
		}
		if comp[l] == nil {
			comp[l] = map[int]int{}
		}
		comp[l][stored.Labels[i]]++
	}
	fmt.Println("cluster composition (cluster: class→count):")
	for c := 0; c < nc; c++ {
		fmt.Printf("  cluster %d: %v\n", c, comp[c])
	}

	// Write the interactive views: embedding scatter plus the OPTICS
	// reachability plot whose valleys are the clusters.
	tips := make([]string, stored.Len())
	for i := range tips {
		q := imgproc.QuadrantSums(stored.Frames[i])
		tips[i] = fmt.Sprintf("frame %d\ntrue class %d\nquadrants %.2f %.2f %.2f %.2f",
			i, stored.Labels[i], q[0], q[1], q[2], q[3])
	}
	plot := viz.FromEmbedding("Diffraction latent embedding (Fig. 6 analogue)",
		res.Embedding, res.Labels, tips)
	plot.Subtitle = fmt.Sprintf("run %s:%d", stored.Experiment, stored.RunNumber)
	embPath := filepath.Join(os.TempDir(), "diffraction_embedding.html")
	ef, err := os.Create(embPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := plot.WriteHTML(ef); err != nil {
		log.Fatal(err)
	}
	ef.Close()

	opt := optics.Run(res.Embedding, 5, math.Inf(1))
	ordLabels := make([]int, len(opt.Order))
	for pos, p := range opt.Order {
		ordLabels[pos] = res.Labels[p]
	}
	rp := &viz.ReachabilityPlot{
		Title:  "Diffraction run — OPTICS reachability plot",
		Values: opt.ReachabilityInOrder(),
		Labels: ordLabels,
	}
	reachPath := filepath.Join(os.TempDir(), "diffraction_reachability.html")
	rpf, err := os.Create(reachPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := rp.WriteHTML(rpf); err != nil {
		log.Fatal(err)
	}
	rpf.Close()
	fmt.Printf("\ninteractive views written to %s and %s\n", embPath, reachPath)
	os.Remove(path)
}
