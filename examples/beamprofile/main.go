// Beam-profile monitoring: the Fig. 5 scenario. A simulated run of
// X-ray beam-profile images goes through the full pipeline —
// preprocess → parallel ARAMS sketch → PCA → UMAP → OPTICS/ABOD — and
// the resulting embedding is checked against the generator's hidden
// factors (center-of-mass offset and circularity), plus the exotic
// outlier shots.
//
// Run with: go run ./examples/beamprofile
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"sort"

	"arams/internal/imgproc"
	"arams/internal/lcls"
	"arams/internal/optics"
	"arams/internal/pipeline"
	"arams/internal/sketch"
	"arams/internal/umap"
	"arams/internal/viz"
)

func main() {
	// Simulate a run: 500 shots of a 48×48 diagnostic camera with 3%
	// exotic (heavily distorted) shots.
	bg := lcls.NewBeamGenerator(lcls.BeamConfig{
		Size: 48, ExoticFrac: 0.03, Seed: 2024,
	})
	frames := bg.Generate(500)
	imgs := make([]*imgproc.Image, len(frames))
	for i, f := range frames {
		imgs[i] = f.Image
	}
	fmt.Printf("simulated run: %d beam profiles (%d×%d)\n", len(imgs), 48, 48)

	res := pipeline.Process(imgs, pipeline.Config{
		Pre:       imgproc.Preprocessor{ThresholdFrac: 0.02, Normalize: true},
		Sketch:    sketch.Config{Ell0: 25, Beta: 0.9, Seed: 1},
		Workers:   4,
		LatentDim: 12,
		UMAP:      umap.Config{NNeighbors: 15, NEpochs: 200, Seed: 3},
	})
	fmt.Printf("pipeline: %.0f frames/s through sketch, total %v\n",
		res.SketchThroughput, res.TotalTime.Round(1e6))

	// How well do the embedding axes track the physical factors?
	n := len(frames)
	offX := make([]float64, n)
	circ := make([]float64, n)
	for i, f := range frames {
		offX[i] = f.Params.CenterX
		circ[i] = f.Params.Circularity()
	}
	for axis := 0; axis < 2; axis++ {
		ax := make([]float64, n)
		for i := 0; i < n; i++ {
			ax[i] = res.Embedding.At(i, axis)
		}
		fmt.Printf("axis %d: |corr| with COM offset = %.2f, with circularity = %.2f\n",
			axis, math.Abs(corr(ax, offX)), math.Abs(corr(ax, circ)))
	}

	// Cluster structure of the embedding.
	fmt.Printf("OPTICS found %d clusters (%d points labeled noise)\n",
		optics.NumClusters(res.Labels), count(res.Labels, optics.Noise))

	// Do the exotic shots top the anomaly ranking?
	var exotic []int
	for i, f := range frames {
		if f.Params.Exotic {
			exotic = append(exotic, i)
		}
	}
	flagged := map[int]bool{}
	for _, i := range res.ResidualOutliers {
		flagged[i] = true
	}
	hits := 0
	for _, i := range exotic {
		if flagged[i] {
			hits++
		}
	}
	fmt.Printf("exotic shots: %d injected, %d among the top-%d residual outliers\n",
		len(exotic), hits, len(res.ResidualOutliers))

	// Show the five most anomalous shots with their true parameters.
	type scored struct {
		idx int
		r   float64
	}
	var all []scored
	for i, r := range res.Residuals {
		all = append(all, scored{i, r})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].r > all[b].r })
	fmt.Println("\ntop-5 anomalies (residual, exotic?, widths, mode):")
	for _, s := range all[:5] {
		p := frames[s.idx].Params
		fmt.Printf("  shot %3d: residual %.3f exotic=%v w=(%.1f,%.1f) TEM%d%d\n",
			s.idx, s.r, p.Exotic, p.WidthX, p.WidthY, p.ModeM, p.ModeN)
	}

	// Interactive HTML view with per-shot hover tooltips — the analog
	// of the paper artifact's Bokeh output.
	tips := make([]string, n)
	for i, f := range frames {
		tips[i] = fmt.Sprintf("shot %d\ncircularity %.2f  offset (%.1f, %.1f)\nexotic: %v",
			i, f.Params.Circularity(), f.Params.CenterX, f.Params.CenterY, f.Params.Exotic)
	}
	plot := viz.FromEmbedding("Beam-profile latent embedding (Fig. 5 analogue)",
		res.Embedding, res.Labels, tips)
	plot.Subtitle = "simulated diagnostic camera, ARAMS sketch + UMAP + OPTICS"
	path := filepath.Join(os.TempDir(), "beam_embedding.html")
	out, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := plot.WriteHTML(out); err != nil {
		log.Fatal(err)
	}
	out.Close()
	fmt.Printf("\ninteractive embedding written to %s\n", path)
}

func corr(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func count(labels []int, v int) int {
	c := 0
	for _, l := range labels {
		if l == v {
			c++
		}
	}
	return c
}
