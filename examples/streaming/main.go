// Streaming monitor: live shot-to-shot analysis. A simulated timing
// system emits jumbled multi-detector readouts at the machine
// repetition rate; an event builder pools them by pulse ID, and an
// online Monitor ingests the beam-profile images, keeps a running
// ARAMS sketch of the whole stream, and periodically snapshots the
// latent embedding, clustering, and anomaly scores over a sliding
// window — the operator's live view.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"time"

	"arams/internal/imgproc"
	"arams/internal/lcls"
	"arams/internal/optics"
	"arams/internal/pipeline"
	"arams/internal/sketch"
	"arams/internal/umap"
)

func main() {
	const pulses = 600

	// Detector simulation: beam camera + area detector, readouts
	// arriving out of order with occasional losses.
	beam := lcls.NewBeamGenerator(lcls.BeamConfig{Size: 32, ExoticFrac: 0.02, Seed: 11})
	diff := lcls.NewDiffractionGenerator(lcls.DiffractionConfig{Size: 32, Seed: 12})
	readouts, _, _ := lcls.Stream(lcls.StreamConfig{
		Pulses: pulses, Jumble: 16, DropProb: 0.01, Seed: 13,
	}, beam, diff)
	fmt.Printf("stream: %d readouts for %d pulses (jumbled, 1%% loss)\n",
		len(readouts), pulses)

	builder := lcls.NewEventBuilder([]string{lcls.BeamDetector, lcls.AreaDetector}, 64)
	monitor := pipeline.NewMonitor(pipeline.Config{
		Pre:    imgproc.Preprocessor{ThresholdFrac: 0.02, Normalize: true},
		Sketch: sketch.Config{Ell0: 12, Nu: 6, Eps: 0.05, RankAdaptive: true, Seed: 14},
		UMAP:   umap.Config{NNeighbors: 10, NEpochs: 80, Seed: 15},
	}, 200)

	start := time.Now()
	snapshots := 0
	for _, r := range readouts {
		ev, complete := builder.Push(r)
		if !complete {
			continue
		}
		// Feed the beam-profile image of each complete event.
		monitor.Ingest(ev.Images[lcls.BeamDetector], int(ev.PulseID))

		// Refresh the operator view every 150 events: a full UMAP
		// refit periodically, the fast out-of-sample transform in
		// between (pipeline.Monitor.QuickSnapshot).
		if monitor.Ingested()%150 == 0 {
			var snap *pipeline.Snapshot
			mode := "quick"
			if snapshots%2 == 0 {
				snap = monitor.Snapshot()
				mode = "full"
			} else {
				snap = monitor.QuickSnapshot()
			}
			snapshots++
			fmt.Printf("  [event %4d] %-5s sketch ℓ=%d window=%d clusters=%d outliers=%v\n",
				monitor.Ingested(), mode, snap.Ell, len(snap.Tags),
				optics.NumClusters(snap.Labels), snap.Outliers)
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("\nevent builder: %d built, %d dropped, %d still pending\n",
		builder.Built(), builder.Dropped(), builder.Pending())
	hz := float64(monitor.Ingested()) / elapsed.Seconds()
	fmt.Printf("monitor: %d frames in %v → %.0f Hz (detector rate: 120 Hz), %d snapshots\n",
		monitor.Ingested(), elapsed.Round(time.Millisecond), hz, snapshots)
	if monitor.Ell() > 12 {
		fmt.Printf("rank adaptation grew the sketch from 12 to %d directions\n", monitor.Ell())
	}
}
