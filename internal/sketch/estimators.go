package sketch

import (
	"fmt"

	"arams/internal/mat"
	"arams/internal/rng"
)

// EstimatorKind selects the randomized Frobenius-norm estimator used by
// the rank-adaptation heuristic. The paper uses the Gaussian
// random-matrix-multiplication estimator of Bujanovic & Kressner and
// names stochastic trace estimation and improved small-sample
// estimators as future work; all are implemented here so the ablation
// benchmarks can compare them.
type EstimatorKind int

const (
	// GaussianProbe is Algorithm 1 as written: average ‖Rᵀg‖² over
	// Gaussian probes g.
	GaussianProbe EstimatorKind = iota
	// Hutchinson replaces Gaussian probes with Rademacher (±1) probes —
	// the classic stochastic trace estimator, strictly lower variance
	// for the same probe count.
	Hutchinson
	// HutchPP is the Hutch++ estimator (Meyer, Musco, Musco & Woodruff
	// 2021): a third of the probes build a randomized range of the
	// residual operator whose trace is computed exactly; Hutchinson
	// handles only the remainder. Error decays like 1/ν instead of
	// 1/√ν.
	HutchPP
)

// String names the estimator for tables.
func (k EstimatorKind) String() string {
	switch k {
	case GaussianProbe:
		return "gaussian"
	case Hutchinson:
		return "hutchinson"
	case HutchPP:
		return "hutch++"
	default:
		return fmt.Sprintf("EstimatorKind(%d)", int(k))
	}
}

// EstimateResidualSqKind estimates ‖X − X·VᵀV‖_F² with the chosen
// estimator and nu matrix–vector probes. All estimators access X only
// through products, never forming the n×d residual or any d×d object.
func EstimateResidualSqKind(kind EstimatorKind, x, vt *mat.Matrix, nu int, g *rng.RNG) float64 {
	if nu <= 0 {
		panic("sketch: estimator needs nu > 0")
	}
	if vt.RowsN > 0 && x.ColsN != vt.ColsN {
		panic("sketch: estimator dimension mismatch")
	}
	switch kind {
	case GaussianProbe:
		return EstimateResidualSq(x, vt, nu, g)
	case Hutchinson:
		return hutchinson(x, vt, nu, g)
	case HutchPP:
		return hutchPP(x, vt, nu, g)
	default:
		panic("sketch: unknown estimator kind")
	}
}

// residualTApply computes Rᵀv = Xᵀv − Vᵀ(V(Xᵀv)) for the residual
// R = X − X·VᵀV and a probe v of length n.
func residualTApply(x, vt *mat.Matrix, v []float64) []float64 {
	y := mat.MulTVec(x, v) // d-vector
	if vt.RowsN == 0 {
		return y
	}
	c := mat.MulVec(vt, y)  // k coefficients
	r := mat.MulTVec(vt, c) // projection
	for i := range y {
		y[i] -= r[i]
	}
	return y
}

// hutchinson estimates tr(RRᵀ) = ‖R‖_F² with Rademacher probes:
// E[‖Rᵀz‖²] = ‖R‖_F² for z with ±1 entries.
func hutchinson(x, vt *mat.Matrix, nu int, g *rng.RNG) float64 {
	n := x.RowsN
	probe := make([]float64, n)
	var sum float64
	for k := 0; k < nu; k++ {
		for i := range probe {
			if g.Uint64()&1 == 0 {
				probe[i] = 1
			} else {
				probe[i] = -1
			}
		}
		sum += mat.Norm2Sq(residualTApply(x, vt, probe))
	}
	return sum / float64(nu)
}

// hutchPP estimates tr(A) for the PSD operator A = RRᵀ (n×n, applied
// implicitly through R): a randomized range Q captures A's dominant
// eigenspace and contributes its trace exactly; Hutchinson estimates
// the trace of the deflated remainder.
func hutchPP(x, vt *mat.Matrix, nu int, g *rng.RNG) float64 {
	n := x.RowsN
	k := nu / 3
	if k < 1 {
		k = 1
	}
	m := nu - 2*k // Hutchinson probes for the remainder
	if m < 1 {
		m = 1
	}

	// applyA computes A·v = R(Rᵀv) for v of length n.
	applyA := func(v []float64) []float64 {
		rt := residualTApply(x, vt, v) // d-vector = Rᵀv
		// R·(rt) = X·rt − X·Vᵀ(V·rt); but R·w for w already in the
		// rowspace-complement simplifies to X·w − X·VᵀV·w. Since
		// rt = Rᵀv is already orthogonal to the basis rows, V·rt = 0
		// up to roundoff, so R·rt = X·rt.
		return mat.MulVec(x, rt)
	}

	// Sketch S = A·Ω with Rademacher Ω (n×k), orthonormalize.
	s := mat.New(n, k)
	probe := make([]float64, n)
	for j := 0; j < k; j++ {
		for i := range probe {
			if g.Uint64()&1 == 0 {
				probe[i] = 1
			} else {
				probe[i] = -1
			}
		}
		col := applyA(probe)
		for i := 0; i < n; i++ {
			s.Set(i, j, col[i])
		}
	}
	q, _ := mat.QR(s)

	// Exact part: tr(QᵀAQ) = Σ_j ‖Rᵀq_j‖².
	var exact float64
	qcol := make([]float64, n)
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			qcol[i] = q.At(i, j)
		}
		exact += mat.Norm2Sq(residualTApply(x, vt, qcol))
	}

	// Remainder: Hutchinson on (I−QQᵀ)A(I−QQᵀ) — project probes off Q.
	var rem float64
	for t := 0; t < m; t++ {
		for i := range probe {
			if g.Uint64()&1 == 0 {
				probe[i] = 1
			} else {
				probe[i] = -1
			}
		}
		deflate(probe, q)
		rem += mat.Norm2Sq(residualTApply(x, vt, probe))
	}
	return exact + rem/float64(m)
}

// deflate projects v off the orthonormal columns of q in place:
// v ← (I − QQᵀ)v.
func deflate(v []float64, q *mat.Matrix) {
	n, k := q.Dims()
	for j := 0; j < k; j++ {
		var dot float64
		for i := 0; i < n; i++ {
			dot += q.At(i, j) * v[i]
		}
		for i := 0; i < n; i++ {
			v[i] -= dot * q.At(i, j)
		}
	}
}

// EstimateRelResidualKind is the relative-error form of
// EstimateResidualSqKind.
func EstimateRelResidualKind(kind EstimatorKind, x, vt *mat.Matrix, nu int, g *rng.RNG) float64 {
	den := x.FrobeniusNormSq()
	if den == 0 {
		return 0
	}
	est := EstimateResidualSqKind(kind, x, vt, nu, g)
	if est < 0 {
		est = 0
	}
	return est / den
}
