package sketch

import (
	"sort"

	"arams/internal/mat"
	"arams/internal/rng"
)

// PrioritySampler implements priority sampling (Duffield, Lund &
// Thorup 2007) over a stream of weighted items: each item i receives
// priority qᵢ = wᵢ/uᵢ with uᵢ uniform in (0,1), and the m items with the
// largest priorities are kept. The (m+1)-th largest priority is the
// threshold τ, and max(wᵢ, τ) is an unbiased estimator weight for
// subset sums over the kept items.
//
// In ARAMS the item weight is the row norm ‖Aᵢ‖, so the sampler keeps
// the "most important" rows of each batch before they reach the
// Frequent Directions sketch.
type PrioritySampler struct {
	m    int // number of items to keep
	g    *rng.RNG
	heap []entry // min-heap on priority, size at most m+1
	seen int
}

type entry struct {
	priority float64
	weight   float64
	index    int
	row      []float64 // may be nil for weight-only streams
}

// NewPrioritySampler creates a sampler keeping the m highest-priority
// items.
func NewPrioritySampler(m int, g *rng.RNG) *PrioritySampler {
	if m <= 0 {
		panic("sketch: PrioritySampler needs m > 0")
	}
	return &PrioritySampler{m: m, g: g}
}

// Seen returns how many items have been offered.
func (p *PrioritySampler) Seen() int { return p.seen }

// PushWeight offers a weight-only item (used for subset-sum
// estimation).
func (p *PrioritySampler) PushWeight(w float64, index int) {
	p.push(entry{weight: w, index: index})
}

// PushRow offers a data row; its weight is the Euclidean row norm, as
// in the paper.
func (p *PrioritySampler) PushRow(row []float64) {
	cp := append([]float64(nil), row...)
	p.push(entry{weight: mat.Norm2(cp), index: p.seen, row: cp})
}

func (p *PrioritySampler) push(e entry) {
	e.index = p.seen
	p.seen++
	if e.weight <= 0 {
		// Zero-weight rows carry no information for the sketch and
		// would produce zero priorities anyway.
		return
	}
	e.priority = e.weight / p.g.Float64Open()
	if len(p.heap) < p.m+1 {
		p.heap = append(p.heap, e)
		p.siftUp(len(p.heap) - 1)
		return
	}
	if e.priority <= p.heap[0].priority {
		return
	}
	p.heap[0] = e
	p.siftDown(0)
}

func (p *PrioritySampler) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if p.heap[parent].priority <= p.heap[i].priority {
			break
		}
		p.heap[parent], p.heap[i] = p.heap[i], p.heap[parent]
		i = parent
	}
}

func (p *PrioritySampler) siftDown(i int) {
	n := len(p.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && p.heap[l].priority < p.heap[smallest].priority {
			smallest = l
		}
		if r < n && p.heap[r].priority < p.heap[smallest].priority {
			smallest = r
		}
		if smallest == i {
			return
		}
		p.heap[i], p.heap[smallest] = p.heap[smallest], p.heap[i]
		i = smallest
	}
}

// Threshold returns τ, the (m+1)-th largest priority seen, or 0 when
// fewer than m+1 items were offered (in which case every item was
// kept and the estimator weights equal the true weights).
func (p *PrioritySampler) Threshold() float64 {
	if len(p.heap) <= p.m {
		return 0
	}
	return p.heap[0].priority
}

// selected returns the kept entries (the heap minus the threshold
// element) in stream order.
func (p *PrioritySampler) selected() []entry {
	items := append([]entry(nil), p.heap...)
	if len(items) > p.m {
		// Drop the minimum-priority element: it defines τ.
		minIdx := 0
		for i, e := range items {
			if e.priority < items[minIdx].priority {
				minIdx = i
			}
			_ = i
		}
		items = append(items[:minIdx], items[minIdx+1:]...)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].index < items[j].index })
	return items
}

// Indices returns the stream indices of the kept items, ascending.
func (p *PrioritySampler) Indices() []int {
	sel := p.selected()
	out := make([]int, len(sel))
	for i, e := range sel {
		out[i] = e.index
	}
	return out
}

// EstimateSum returns the priority-sampling estimate Σ max(wᵢ, τ) of
// the total weight of the stream — unbiased per Duffield et al.
func (p *PrioritySampler) EstimateSum() float64 {
	tau := p.Threshold()
	var s float64
	for _, e := range p.selected() {
		if e.weight > tau {
			s += e.weight
		} else {
			s += tau
		}
	}
	return s
}

// Rows returns the kept data rows, in stream order, as a matrix. Only
// valid when items were offered with PushRow.
func (p *PrioritySampler) Rows(d int) *mat.Matrix {
	sel := p.selected()
	out := mat.New(len(sel), d)
	for i, e := range sel {
		if e.row == nil {
			panic("sketch: Rows called on a weight-only sampler")
		}
		copy(out.Row(i), e.row)
	}
	return out
}

// SampleRows keeps the ⌈beta·n⌉ highest-priority rows of x (weights are
// row norms) and returns them in stream order. beta in (0, 1]; beta >= 1
// returns a copy of x unchanged.
func SampleRows(x *mat.Matrix, beta float64, g *rng.RNG) *mat.Matrix {
	if beta >= 1 {
		return x.Clone()
	}
	if beta <= 0 {
		panic("sketch: SampleRows needs beta > 0")
	}
	m := int(beta*float64(x.RowsN) + 0.999999)
	if m < 1 {
		m = 1
	}
	ps := NewPrioritySampler(m, g)
	for i := 0; i < x.RowsN; i++ {
		ps.PushRow(x.Row(i))
	}
	return ps.Rows(x.ColsN)
}
