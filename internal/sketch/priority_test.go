package sketch

import (
	"math"
	"testing"

	"arams/internal/mat"
	"arams/internal/rng"
)

func TestPrioritySamplerKeepsM(t *testing.T) {
	g := rng.New(20)
	ps := NewPrioritySampler(5, g)
	for i := 0; i < 100; i++ {
		ps.PushWeight(1+g.Float64(), i)
	}
	idx := ps.Indices()
	if len(idx) != 5 {
		t.Fatalf("kept %d items, want 5", len(idx))
	}
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Fatal("indices not in ascending stream order")
		}
	}
	if ps.Seen() != 100 {
		t.Fatalf("Seen = %d", ps.Seen())
	}
}

func TestPrioritySamplerUnderfull(t *testing.T) {
	g := rng.New(21)
	ps := NewPrioritySampler(10, g)
	for i := 0; i < 4; i++ {
		ps.PushWeight(float64(i+1), i)
	}
	if got := len(ps.Indices()); got != 4 {
		t.Fatalf("underfull sampler kept %d, want all 4", got)
	}
	if ps.Threshold() != 0 {
		t.Fatalf("underfull threshold = %v, want 0", ps.Threshold())
	}
	// Estimate equals exact sum when everything is kept.
	if got := ps.EstimateSum(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("underfull EstimateSum = %v, want 10", got)
	}
}

func TestPrioritySamplingUnbiased(t *testing.T) {
	// E[Σ max(wᵢ, τ)] = Σ wᵢ — the Duffield-Lund-Thorup guarantee.
	weights := make([]float64, 200)
	var total float64
	base := rng.New(22)
	for i := range weights {
		weights[i] = base.Exp() * 10
		total += weights[i]
	}
	const trials = 3000
	var sum float64
	for trial := 0; trial < trials; trial++ {
		g := rng.NewStream(uint64(trial), 777)
		ps := NewPrioritySampler(30, g)
		for i, w := range weights {
			ps.PushWeight(w, i)
		}
		sum += ps.EstimateSum()
	}
	meanEst := sum / trials
	if rel := math.Abs(meanEst-total) / total; rel > 0.05 {
		t.Fatalf("priority-sampling estimator biased: mean %v vs true %v (rel %v)", meanEst, total, rel)
	}
}

func TestPrioritySamplerFavorsHeavyRows(t *testing.T) {
	// With a handful of very heavy rows, the sampler should almost
	// always keep them.
	const trials = 200
	kept := 0
	for trial := 0; trial < trials; trial++ {
		g := rng.NewStream(uint64(trial), 31)
		ps := NewPrioritySampler(10, g)
		for i := 0; i < 100; i++ {
			w := 1.0
			if i == 42 {
				w = 1000
			}
			ps.PushWeight(w, i)
		}
		for _, idx := range ps.Indices() {
			if idx == 42 {
				kept++
				break
			}
		}
	}
	if kept < trials*95/100 {
		t.Fatalf("heavy row kept only %d/%d times", kept, trials)
	}
}

func TestPushRowZeroWeightSkipped(t *testing.T) {
	g := rng.New(23)
	ps := NewPrioritySampler(3, g)
	ps.PushRow([]float64{0, 0, 0})
	ps.PushRow([]float64{1, 0, 0})
	rows := ps.Rows(3)
	if rows.RowsN != 1 {
		t.Fatalf("zero row not skipped: kept %d", rows.RowsN)
	}
}

func TestSampleRowsShapes(t *testing.T) {
	g := rng.New(24)
	x := mat.RandGaussian(50, 8, g)
	sel := SampleRows(x, 0.5, g)
	if sel.RowsN != 25 || sel.ColsN != 8 {
		t.Fatalf("SampleRows shape %d×%d", sel.RowsN, sel.ColsN)
	}
	// beta >= 1 passes everything through.
	all := SampleRows(x, 1.0, g)
	if !all.Equal(x, 0) {
		t.Fatal("beta=1 did not return the full matrix")
	}
}

func TestSampleRowsKeepsStreamOrder(t *testing.T) {
	g := rng.New(25)
	// Rows with strictly increasing norms: row i is (i+1)·e₀.
	x := mat.New(30, 4)
	for i := 0; i < 30; i++ {
		x.Set(i, 0, float64(i+1))
	}
	sel := SampleRows(x, 0.3, g)
	prev := 0.0
	for i := 0; i < sel.RowsN; i++ {
		v := sel.At(i, 0)
		if v <= prev {
			t.Fatalf("selected rows out of stream order: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestSampleRowsInvalidBetaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("beta=0 did not panic")
		}
	}()
	SampleRows(mat.New(3, 3), 0, rng.New(1))
}

func TestSamplerPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("m=0 did not panic")
		}
	}()
	NewPrioritySampler(0, rng.New(1))
}

func TestARAMSSamplingImprovesSpeedNotMuchError(t *testing.T) {
	// Sanity check of §IV-B: sampling 80% of a low-rank-dominated
	// stream leaves the sketch error in the same regime.
	nRows, d := 300, 30
	g := rng.New(26)
	x := mat.RandGaussian(nRows, d, g)
	full := Run(x, Config{Ell0: 10, Beta: 1, Seed: 1})
	sampled := Run(x, Config{Ell0: 10, Beta: 0.8, Seed: 1})
	eFull := CovErr(x, full)
	eSampled := CovErr(x, sampled)
	if eSampled > 3*eFull+1e-9 {
		t.Fatalf("sampled error %v blew up vs full %v", eSampled, eFull)
	}
}
