package sketch

import (
	"fmt"

	"arams/internal/mat"
	"arams/internal/obs"
	"arams/internal/rng"
)

// obsRankAdapts counts heuristic-triggered rank increases (Alg. 2
// line 9: estimated error above ε), as opposed to merge-driven Grow
// calls, which only arams_sketch_rank_grow_events_total sees.
var obsRankAdapts = obs.Default().Counter("arams_sketch_rank_adaptations_total")

// RankAdaptiveFD implements Algorithm 2 of the paper: a Frequent
// Directions sketch whose number of retained directions ℓ grows
// adaptively so that the estimated relative reconstruction error of the
// most recent data stays below a user-specified threshold ε — the
// practitioner specifies a target error instead of a rank.
//
// After each rotation, the probe heuristic (Algorithm 1) estimates the
// reconstruction error of the last ℓ processed rows against the sketch
// basis, reusing the right singular vectors the rotation just computed,
// so the heuristic adds no extra SVD. If the error exceeds ε and enough
// rows remain in the stream (rowsLeft > ℓ+ν, the paper's canRankAdapt
// guard, which prevents growing right before the data runs out and
// leaving zero rows in the sketch), ℓ increases by ν at the start of
// the next cycle.
type RankAdaptiveFD struct {
	fd        *FrequentDirections
	nu        int     // probe count and rank increment (paper uses ν for both)
	eps       float64 // relative reconstruction-error threshold
	estimator EstimatorKind
	g         *rng.RNG

	// recent is a ring of the last ℓ appended rows, consulted by the
	// heuristic. Stored as row copies to stay independent of callers'
	// buffers.
	recent [][]float64

	increaseEll bool
	rowsLeft    int // optional stream-length hint; -1 if unknown
	grows       int // number of rank increases performed
}

// NewRankAdaptiveFD creates a rank-adaptive sketch starting at ell0
// directions over d features, targeting relative error eps, with nu
// Gaussian probes per estimate (nu is also the rank increment, as in
// the paper). totalRows is the expected stream length used by the
// canRankAdapt guard; pass <= 0 when the stream length is unknown, in
// which case the guard always allows growth.
func NewRankAdaptiveFD(ell0, d, nu int, eps float64, totalRows int, g *rng.RNG) *RankAdaptiveFD {
	if nu <= 0 {
		panic(fmt.Sprintf("sketch: nu must be positive, got %d", nu))
	}
	if eps <= 0 {
		panic(fmt.Sprintf("sketch: eps must be positive, got %v", eps))
	}
	if totalRows <= 0 {
		totalRows = -1
	}
	r := &RankAdaptiveFD{
		fd:       NewFrequentDirections(ell0, d, Options{}),
		nu:       nu,
		eps:      eps,
		g:        g,
		rowsLeft: totalRows,
	}
	return r
}

// SetEstimator selects the Frobenius-norm estimator used by the
// rank-adaptation heuristic (default GaussianProbe, as in the paper;
// Hutchinson and HutchPP are the future-work alternatives it cites).
func (r *RankAdaptiveFD) SetEstimator(kind EstimatorKind) { r.estimator = kind }

// Ell returns the current number of retained directions.
func (r *RankAdaptiveFD) Ell() int { return r.fd.Ell() }

// Grows returns how many times the rank was increased.
func (r *RankAdaptiveFD) Grows() int { return r.grows }

// FD exposes the underlying sketch (for merge and basis extraction).
func (r *RankAdaptiveFD) FD() *FrequentDirections { return r.fd }

// Sketch returns the current sketch matrix.
func (r *RankAdaptiveFD) Sketch() *mat.Matrix { return r.fd.Sketch() }

// Basis returns the top-k right singular vectors of the sketch.
func (r *RankAdaptiveFD) Basis(k int) *mat.Matrix { return r.fd.Basis(k) }

// Append adds one row to the sketch, applying the rank-adaptation
// bookkeeping of Algorithm 2 around the underlying fast-FD buffer.
func (r *RankAdaptiveFD) Append(row []float64) {
	fd := r.fd
	if fd.nextZero == fd.buffer.RowsN {
		canAdapt := r.canRankAdapt()
		if r.increaseEll && canAdapt {
			// Grow ℓ by ν; the buffer gains 2ν rows so this append
			// proceeds without a rotation, exactly line 10–12 of Alg. 2.
			fd.Grow(r.nu)
			r.increaseEll = false
		} else {
			fd.rotate()
			if canAdapt {
				// Estimate the reconstruction error of the most recent
				// ℓ rows using the Vᵀ computed by the rotation we just
				// did (no extra SVD).
				x := r.recentMatrix()
				basis := r.currentBasis()
				if x.RowsN > 0 && EstimateRelResidualKind(r.estimator, x, basis, r.nu, r.g) > r.eps {
					r.increaseEll = true
					r.grows++
					obsRankAdapts.Inc()
				}
			}
		}
	}
	copy(fd.buffer.Row(fd.nextZero), row)
	fd.nextZero++
	fd.seen++
	fd.frobMass += mat.Norm2Sq(row)
	fd.dirty = true
	r.push(row)
	if r.rowsLeft > 0 {
		r.rowsLeft--
	}
}

// AppendMatrix adds every row of x.
func (r *RankAdaptiveFD) AppendMatrix(x *mat.Matrix) {
	for i := 0; i < x.RowsN; i++ {
		r.Append(x.Row(i))
	}
}

// canRankAdapt mirrors line 8 of Algorithm 2: growth is permitted only
// when more than ℓ+ν rows remain, so the enlarged buffer can still be
// filled before the stream ends.
func (r *RankAdaptiveFD) canRankAdapt() bool {
	if r.rowsLeft < 0 {
		return true
	}
	return r.rowsLeft > r.fd.Ell()+r.nu
}

// currentBasis returns the sketch's right-singular-vector basis from
// the most recent rotation, truncated to the retained rank.
func (r *RankAdaptiveFD) currentBasis() *mat.Matrix {
	fd := r.fd
	if fd.lastVt == nil {
		return mat.New(0, fd.d)
	}
	k := min(fd.Ell(), fd.lastVt.RowsN)
	out := mat.New(k, fd.d)
	for i := 0; i < k; i++ {
		copy(out.Row(i), fd.lastVt.Row(i))
	}
	return out
}

// push records a row in the recent-rows ring (capacity ℓ).
func (r *RankAdaptiveFD) push(row []float64) {
	cap := r.fd.Ell()
	cp := append([]float64(nil), row...)
	r.recent = append(r.recent, cp)
	if len(r.recent) > cap {
		r.recent = r.recent[len(r.recent)-cap:]
	}
}

// recentMatrix snapshots the recent-rows ring as a matrix.
func (r *RankAdaptiveFD) recentMatrix() *mat.Matrix {
	if len(r.recent) == 0 {
		return mat.New(0, r.fd.d)
	}
	return mat.FromRows(r.recent)
}

// RunRankAdaptiveFD sketches the whole matrix x with Algorithm 2 and
// returns the final sketch. It is the batch entry point matching the
// paper's RankAdaptFD(X, ν, ε) signature.
func RunRankAdaptiveFD(x *mat.Matrix, ell0, nu int, eps float64, g *rng.RNG) *mat.Matrix {
	r := NewRankAdaptiveFD(ell0, x.ColsN, nu, eps, x.RowsN, g)
	r.AppendMatrix(x)
	return r.Sketch()
}
