package sketch

import (
	"testing"

	"arams/internal/mat"
	"arams/internal/rng"
)

func BenchmarkFDAppend(b *testing.B) {
	g := rng.New(1)
	row := make([]float64, 4096)
	for i := range row {
		row[i] = g.Norm()
	}
	fd := NewFrequentDirections(32, 4096, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd.Append(row)
	}
}

func BenchmarkARAMSBatch(b *testing.B) {
	g := rng.New(2)
	x := mat.RandGaussian(256, 512, g)
	cfg := Config{Ell0: 24, Beta: 0.8, Seed: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewARAMS(cfg, 512, 256)
		a.ProcessBatch(x)
	}
}

func BenchmarkPrioritySampler(b *testing.B) {
	g := rng.New(4)
	x := mat.RandGaussian(2048, 64, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SampleRows(x, 0.8, rng.New(uint64(i)))
	}
}

func BenchmarkCovErr(b *testing.B) {
	g := rng.New(5)
	a := mat.RandGaussian(512, 256, g)
	fd := NewFrequentDirections(24, 256, Options{})
	fd.AppendMatrix(a)
	sk := fd.Sketch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CovErr(a, sk)
	}
}

func BenchmarkEstimators(b *testing.B) {
	g := rng.New(6)
	x := mat.RandGaussian(128, 1024, g)
	fd := NewFrequentDirections(16, 1024, Options{})
	fd.AppendMatrix(x)
	vt := fd.Basis(8)
	for _, kind := range []EstimatorKind{GaussianProbe, Hutchinson, HutchPP} {
		b.Run(kind.String(), func(b *testing.B) {
			gg := rng.New(7)
			for i := 0; i < b.N; i++ {
				_ = EstimateResidualSqKind(kind, x, vt, 10, gg)
			}
		})
	}
}

// BenchmarkFDRotateSteadyState measures one full shrink cycle (ℓ
// appends + the rotation they trigger) after warmup. With the pooled
// Gram-SVD path and fd-owned σ/Vᵀ buffers the steady state must report
// zero allocs/op — the rotation runs at the machine repetition rate.
func BenchmarkFDRotateSteadyState(b *testing.B) {
	const ell, d = 32, 4096
	g := rng.New(7)
	row := make([]float64, d)
	for i := range row {
		row[i] = g.Norm()
	}
	fd := NewFrequentDirections(ell, d, Options{})
	// Warm up past the first rotation so buffers exist.
	for i := 0; i < 3*ell; i++ {
		fd.Append(row)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < ell; j++ {
			fd.Append(row)
		}
	}
}
