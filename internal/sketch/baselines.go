package sketch

import (
	"fmt"
	"math"

	"arams/internal/mat"
	"arams/internal/rng"
)

// This file implements the classic streaming-sketch baselines that
// Frequent Directions is evaluated against in the literature the paper
// builds on (Desai, Ghashami & Phillips 2016): dense Gaussian random
// projection, CountSketch-style sparse embedding (hashing), and
// norm-squared row sampling. All maintain an ℓ×d sketch B of a row
// stream and aim to minimize ‖AᵀA − BᵀB‖, so they are directly
// comparable to FrequentDirections in the baseline benchmarks.

// Summarizer is the common interface of all streaming matrix sketchers.
type Summarizer interface {
	// Append adds one data row.
	Append(row []float64)
	// Sketch returns the current ℓ×d sketch.
	Sketch() *mat.Matrix
	// Name identifies the algorithm in benchmark tables.
	Name() string
}

// Interface checks.
var (
	_ Summarizer = (*FrequentDirections)(nil)
	_ Summarizer = (*RandomProjection)(nil)
	_ Summarizer = (*CountSketch)(nil)
	_ Summarizer = (*NormSampler)(nil)
)

// Name implements Summarizer for FrequentDirections.
func (fd *FrequentDirections) Name() string { return "frequent-directions" }

// RandomProjection maintains B = S·A for a dense random matrix S with
// i.i.d. N(0, 1/ℓ) entries, streamed one row at a time: arrival of row
// aᵢ adds the outer-product contribution S[:,i]·aᵢ — a fresh Gaussian
// column scaled into each sketch row.
type RandomProjection struct {
	ell, d int
	b      *mat.Matrix
	g      *rng.RNG
	seen   int
}

// NewRandomProjection creates a Gaussian projection sketch.
func NewRandomProjection(ell, d int, g *rng.RNG) *RandomProjection {
	if ell <= 0 || d <= 0 {
		panic(fmt.Sprintf("sketch: invalid projection dims ℓ=%d d=%d", ell, d))
	}
	return &RandomProjection{ell: ell, d: d, b: mat.New(ell, d), g: g}
}

// Append implements Summarizer.
func (rp *RandomProjection) Append(row []float64) {
	if len(row) != rp.d {
		panic("sketch: RandomProjection row length mismatch")
	}
	scale := 1 / math.Sqrt(float64(rp.ell))
	for i := 0; i < rp.ell; i++ {
		c := rp.g.Norm() * scale
		dst := rp.b.Row(i)
		for j, v := range row {
			dst[j] += c * v
		}
	}
	rp.seen++
}

// Sketch implements Summarizer.
func (rp *RandomProjection) Sketch() *mat.Matrix { return rp.b.Clone() }

// Name implements Summarizer.
func (rp *RandomProjection) Name() string { return "random-projection" }

// CountSketch maintains the sparse-embedding (hashing) sketch: each row
// is added to exactly one of the ℓ buckets with a random sign — the
// streaming matrix form of the CountSketch frequency estimator, O(d)
// per row.
type CountSketch struct {
	ell, d int
	b      *mat.Matrix
	g      *rng.RNG
	seen   int
}

// NewCountSketch creates a hashing sketch with ℓ buckets.
func NewCountSketch(ell, d int, g *rng.RNG) *CountSketch {
	if ell <= 0 || d <= 0 {
		panic(fmt.Sprintf("sketch: invalid countsketch dims ℓ=%d d=%d", ell, d))
	}
	return &CountSketch{ell: ell, d: d, b: mat.New(ell, d), g: g}
}

// Append implements Summarizer.
func (cs *CountSketch) Append(row []float64) {
	if len(row) != cs.d {
		panic("sketch: CountSketch row length mismatch")
	}
	bucket := cs.g.Intn(cs.ell)
	sign := 1.0
	if cs.g.Uint64()&1 == 0 {
		sign = -1
	}
	dst := cs.b.Row(bucket)
	for j, v := range row {
		dst[j] += sign * v
	}
	cs.seen++
}

// Sketch implements Summarizer.
func (cs *CountSketch) Sketch() *mat.Matrix { return cs.b.Clone() }

// Name implements Summarizer.
func (cs *CountSketch) Name() string { return "countsketch" }

// NormSampler keeps ℓ rows sampled with probability proportional to
// their squared norms (length-squared sampling, Frieze–Kannan–Vempala),
// implemented as weighted reservoir sampling over the stream with the
// usual 1/√(ℓpᵢ) rescaling so that E[BᵀB] = AᵀA.
type NormSampler struct {
	ell, d int
	g      *rng.RNG

	rows      [][]float64 // reservoir of raw rows
	keys      []float64   // reservoir priorities (Efraimidis–Spirakis)
	totalSqSt float64     // running Σ‖aᵢ‖²
	seen      int
}

// NewNormSampler creates a length-squared sampling sketch of ℓ rows.
func NewNormSampler(ell, d int, g *rng.RNG) *NormSampler {
	if ell <= 0 || d <= 0 {
		panic(fmt.Sprintf("sketch: invalid sampler dims ℓ=%d d=%d", ell, d))
	}
	return &NormSampler{ell: ell, d: d, g: g}
}

// Append implements Summarizer. Weighted reservoir sampling with key
// u^(1/w), w = ‖row‖² (Efraimidis & Spirakis 2006) keeps an exact
// length-squared sample in one pass.
func (ns *NormSampler) Append(row []float64) {
	if len(row) != ns.d {
		panic("sketch: NormSampler row length mismatch")
	}
	w := mat.Norm2Sq(row)
	ns.seen++
	ns.totalSqSt += w
	if w == 0 {
		return
	}
	key := math.Pow(ns.g.Float64Open(), 1/w)
	if len(ns.rows) < ns.ell {
		ns.rows = append(ns.rows, append([]float64(nil), row...))
		ns.keys = append(ns.keys, key)
		return
	}
	// Replace the minimum-key entry if beaten.
	minIdx := 0
	for i, k := range ns.keys {
		if k < ns.keys[minIdx] {
			minIdx = i
		}
		_ = i
	}
	if key > ns.keys[minIdx] {
		ns.keys[minIdx] = key
		copy(ns.rows[minIdx], row)
	}
}

// Sketch implements Summarizer: sampled rows rescaled by
// √(Σ‖a‖² / (ℓ·‖row‖²)) so the sketch covariance is unbiased.
func (ns *NormSampler) Sketch() *mat.Matrix {
	out := mat.New(ns.ell, ns.d)
	for i, row := range ns.rows {
		w := mat.Norm2Sq(row)
		if w == 0 {
			continue
		}
		scale := math.Sqrt(ns.totalSqSt / (float64(ns.ell) * w))
		dst := out.Row(i)
		for j, v := range row {
			dst[j] = scale * v
		}
	}
	return out
}

// Name implements Summarizer.
func (ns *NormSampler) Name() string { return "norm-sampling" }
