package sketch

import "testing"

// TestDeltaMark pins the marginal-shrinkage window the engine's
// reconcile controller reads: DeltaSinceMark is the Σδ accumulated
// since the last MarkDelta, the mark is advisory (it never perturbs the
// ledger itself), and it is deliberately not persisted — a sketch
// restored from State starts with a fresh mark at zero.
func TestDeltaMark(t *testing.T) {
	const n, d, ell = 160, 20, 5
	a := gaussData(n, d, 9)
	fd := NewFrequentDirections(ell, d, Options{})

	if got := fd.DeltaSinceMark(); got != 0 {
		t.Fatalf("fresh sketch: DeltaSinceMark = %v, want 0", got)
	}

	half := a.Rows(0, n/2)
	fd.AppendMatrix(half)
	firstTotal := fd.Delta()
	if firstTotal <= 0 {
		t.Fatal("expected nonzero shrinkage from an overfull Gaussian stream")
	}
	if got := fd.DeltaSinceMark(); got != firstTotal {
		t.Fatalf("before any mark, DeltaSinceMark = %v, want total Σδ = %v", got, firstTotal)
	}

	fd.MarkDelta()
	if got := fd.DeltaSinceMark(); got != 0 {
		t.Fatalf("right after MarkDelta, DeltaSinceMark = %v, want 0", got)
	}
	if got := fd.Delta(); got != firstTotal {
		t.Fatalf("MarkDelta perturbed the ledger: Σδ = %v, want %v", got, firstTotal)
	}

	fd.AppendMatrix(a.Rows(n/2, n))
	wantSince := fd.Delta() - firstTotal
	if wantSince <= 0 {
		t.Fatal("second half added no shrinkage; test stream too easy")
	}
	if got := fd.DeltaSinceMark(); got != wantSince {
		t.Fatalf("DeltaSinceMark = %v, want marginal Σδ = %v", got, wantSince)
	}

	// The mark is not persisted: a State round trip resets it to zero,
	// so DeltaSinceMark on the restored sketch reads the full ledger.
	restored, err := NewFDFromState(fd.State())
	if err != nil {
		t.Fatalf("state round trip: %v", err)
	}
	if got := restored.DeltaSinceMark(); got != restored.Delta() {
		t.Fatalf("restored sketch: DeltaSinceMark = %v, want full Σδ = %v", got, restored.Delta())
	}
}
