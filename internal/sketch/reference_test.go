package sketch

import (
	"math"
	"testing"

	"arams/internal/mat"
	"arams/internal/rng"
)

// naiveFD is the textbook Frequent Directions algorithm (Liberty 2013):
// an (ℓ+1)-row buffer rotated after every single insertion. It is too
// slow for production but serves as the ground-truth reference for the
// fast 2ℓ-buffer variant.
func naiveFD(a *mat.Matrix, ell int) *mat.Matrix {
	d := a.ColsN
	buf := mat.New(ell+1, d)
	next := 0
	for i := 0; i < a.RowsN; i++ {
		if next == ell+1 {
			shrinkNaive(buf, ell)
			next = ell
		}
		copy(buf.Row(next), a.Row(i))
		next++
	}
	if next == ell+1 {
		shrinkNaive(buf, ell)
	}
	out := mat.New(ell, d)
	for i := 0; i < ell; i++ {
		copy(out.Row(i), buf.Row(i))
	}
	return out
}

func shrinkNaive(buf *mat.Matrix, ell int) {
	_, sigma, vt := mat.SVD(buf)
	var delta float64
	if ell < len(sigma) {
		delta = sigma[ell] * sigma[ell]
	}
	buf.Zero()
	for i := 0; i < ell && i < len(sigma); i++ {
		s2 := sigma[i]*sigma[i] - delta
		if s2 <= 0 {
			break
		}
		s := math.Sqrt(s2)
		dst := buf.Row(i)
		src := vt.Row(i)
		for j := range dst {
			dst[j] = s * src[j]
		}
	}
}

func TestFastFDMatchesNaiveReference(t *testing.T) {
	g := rng.New(60)
	for _, tc := range []struct{ n, d, ell int }{
		{60, 15, 4}, {120, 25, 8},
	} {
		a := mat.RandGaussian(tc.n, tc.d, g)
		ref := naiveFD(a, tc.ell)
		fast := NewFrequentDirections(tc.ell, tc.d, Options{})
		fast.AppendMatrix(a)
		b := fast.Sketch()

		eRef := CovErr(a, ref)
		eFast := CovErr(a, b)
		bound := FDBound(a, tc.ell)
		if eRef > bound*(1+1e-9) {
			t.Fatalf("%+v: naive reference violates its own bound?! %v > %v", tc, eRef, bound)
		}
		if eFast > bound*(1+1e-9) {
			t.Fatalf("%+v: fast FD violates the bound: %v > %v", tc, eFast, bound)
		}
		// Fast FD rotates less often and can only be within a modest
		// factor of the per-row reference.
		if eFast > 3*eRef+1e-12 && eRef > 1e-12 {
			t.Fatalf("%+v: fast FD error %v far above reference %v", tc, eFast, eRef)
		}
	}
}

func TestNaiveAndFastCaptureSameSubspace(t *testing.T) {
	// On effectively low-rank data both variants must recover the same
	// dominant row space.
	g := rng.New(61)
	// Rank-3 data with noise.
	base := mat.RandGaussian(3, 20, g)
	a := mat.New(80, 20)
	for i := 0; i < 80; i++ {
		w := []float64{g.Norm(), g.Norm(), g.Norm()}
		row := a.Row(i)
		for k := 0; k < 3; k++ {
			for j := 0; j < 20; j++ {
				row[j] += w[k] * base.At(k, j)
			}
		}
		for j := range row {
			row[j] += 0.01 * g.Norm()
		}
	}
	ref := naiveFD(a, 6)
	fast := NewFrequentDirections(6, 20, Options{})
	fast.AppendMatrix(a)

	_, _, vtRef := mat.SVDGram(ref)
	vtFast := fast.Basis(3)
	refBasis := mat.New(3, 20)
	for i := 0; i < 3; i++ {
		copy(refBasis.Row(i), vtRef.Row(i))
	}
	// Principal angles: ‖V_fast·V_refᵀ‖ should be ≈ orthonormal (all
	// singular values ≈ 1).
	cross := mat.MulABt(vtFast, refBasis)
	_, s, _ := mat.SVD(cross)
	for i, v := range s {
		if v < 0.99 {
			t.Fatalf("principal angle %d: cos = %v, subspaces disagree", i, v)
		}
	}
}
