// Package sketch implements the paper's matrix-sketching algorithms:
// Frequent Directions (Ghashami et al. 2016) in its fast 2ℓ-buffer
// form, the Rank-Adaptive Frequent Directions variant (Algorithm 2),
// the probe-based reconstruction-error heuristic (Algorithm 1),
// priority sampling (Duffield et al. 2007), and the combined ARAMS
// algorithm (Algorithm 3). Sketches are mergeable summaries, which is
// the property the tree-merge parallelization in package parallel
// relies on.
//
// Data orientation follows the Go convention used throughout this
// repository: rows are samples, columns are features, so a sketch of an
// n×d stream is an ℓ×d matrix B with ‖AᵀA − BᵀB‖₂ ≤ ‖A‖_F²/ℓ.
package sketch

import (
	"fmt"
	"math"

	"arams/internal/mat"
	"arams/internal/obs"
)

// Sketch-health observability. Rotations happen once every ℓ appended
// rows (never per row), so the atomic adds below are off the per-row
// hot path. The ℓ gauge is last-writer-wins across concurrent shards:
// a live view of "a current sketch rank", exact when one sketch is
// active (the Monitor case).
var (
	obsRotations   = obs.Default().Counter("arams_sketch_rotations_total")
	obsShrinkDelta = obs.Default().Counter("arams_sketch_shrink_delta_total")
	obsMerges      = obs.Default().Counter("arams_sketch_merges_total")
	obsGrows       = obs.Default().Counter("arams_sketch_rank_grow_events_total")
	obsEllGauge    = obs.Default().Gauge("arams_sketch_ell")
)

// SVDBackend selects the factorization used in the FD rotation step.
type SVDBackend int

const (
	// GramSVD eigendecomposes the small 2ℓ×2ℓ Gram matrix BBᵀ — the
	// fast path for wide buffers (default).
	GramSVD SVDBackend = iota
	// JacobiSVD runs a one-sided Jacobi SVD directly on the buffer;
	// slower but maximally accurate, used for cross-validation.
	JacobiSVD
)

// Options configures a FrequentDirections sketch.
type Options struct {
	// Backend selects the SVD implementation for rotations.
	Backend SVDBackend
}

// FrequentDirections maintains a fast-FD sketch: a 2ℓ×d buffer that is
// shrunk to ℓ nonzero rows by one SVD every ℓ appended rows.
type FrequentDirections struct {
	ell  int
	d    int
	opts Options

	buffer   *mat.Matrix // 2ℓ×d
	nextZero int         // index of the next zero row in buffer

	rotations  int     // number of shrink steps performed (for accounting)
	seen       int     // number of data rows appended
	totalDelta float64 // cumulative shrinkage Σδ across rotations
	deltaMark  float64 // Σδ at the last MarkDelta (not persisted)
	frobMass   float64 // cumulative ‖A‖_F² of the summarized stream

	// Last rotation's spectrum and right singular vectors, reused by
	// the rank-adaptation heuristic so the extra SVD the paper warns
	// about is never needed.
	lastSigma []float64
	lastVt    *mat.Matrix
	// dirty records that the buffer changed (Append/Grow/Merge) after
	// lastSigma/lastVt were computed, so Basis must re-decompose
	// instead of serving the stale factors.
	dirty bool

	// Owned storage reused across rotations so the steady-state rotate
	// path performs zero heap allocations: vtBuf backs lastVt on the
	// Gram path, filledView is the reusable header for the occupied
	// buffer prefix.
	vtBuf      mat.Matrix
	filledView mat.Matrix
}

// NewFrequentDirections creates a sketch with ℓ retained directions
// over d features.
func NewFrequentDirections(ell, d int, opts Options) *FrequentDirections {
	if ell <= 0 || d <= 0 {
		panic(fmt.Sprintf("sketch: invalid dimensions ℓ=%d d=%d", ell, d))
	}
	return &FrequentDirections{
		ell:    ell,
		d:      d,
		opts:   opts,
		buffer: mat.New(2*ell, d),
	}
}

// Ell returns the current number of retained directions.
func (fd *FrequentDirections) Ell() int { return fd.ell }

// Dim returns the feature dimension d.
func (fd *FrequentDirections) Dim() int { return fd.d }

// Rotations returns how many SVD shrink steps have run; the
// parallelization experiments count these to show the tree merge's
// logarithmic rotation count.
func (fd *FrequentDirections) Rotations() int { return fd.rotations }

// Seen returns the number of rows appended so far.
func (fd *FrequentDirections) Seen() int { return fd.seen }

// Append adds one data row to the sketch, rotating if the buffer is
// full.
func (fd *FrequentDirections) Append(row []float64) {
	if len(row) != fd.d {
		panic(fmt.Sprintf("sketch: row length %d != d=%d", len(row), fd.d))
	}
	if fd.nextZero == fd.buffer.RowsN {
		fd.rotate()
	}
	copy(fd.buffer.Row(fd.nextZero), row)
	fd.nextZero++
	fd.seen++
	fd.frobMass += mat.Norm2Sq(row)
	fd.dirty = true
}

// AppendMatrix adds every row of x to the sketch.
func (fd *FrequentDirections) AppendMatrix(x *mat.Matrix) {
	for i := 0; i < x.RowsN; i++ {
		fd.Append(x.Row(i))
	}
}

// rotate performs the fast-FD shrink: SVD the buffer, subtract σ_ℓ²
// from all squared singular values, and rewrite the buffer as
// √(Σ²−δI)·Vᵀ with the last ℓ rows zeroed.
func (fd *FrequentDirections) rotate() {
	filled := fd.filled(fd.nextZero)
	var sigma []float64
	var vt *mat.Matrix
	switch fd.opts.Backend {
	case JacobiSVD:
		_, sigma, vt = mat.SVD(filled)
	default:
		// Pooled Gram-trick path: sigma and vt live in fd-owned storage
		// reused across rotations, so the steady-state shrink performs
		// zero heap allocations.
		vt = fd.ensureVtBuf(filled.RowsN)
		sigma = mat.SVDGramTo(filled, fd.lastSigma[:0], vt)
	}

	var delta float64
	if fd.ell < len(sigma) {
		delta = sigma[fd.ell] * sigma[fd.ell]
	}
	fd.totalDelta += delta
	fd.buffer.Zero()
	keep := min(fd.ell, len(sigma))
	for i := 0; i < keep; i++ {
		s2 := sigma[i]*sigma[i] - delta
		if s2 <= 0 {
			break // spectrum is descending; the rest are zero too
		}
		s := math.Sqrt(s2)
		dst := fd.buffer.Row(i)
		src := vt.Row(i)
		for j := range dst {
			dst[j] = s * src[j]
		}
	}
	fd.nextZero = fd.ell
	fd.rotations++
	fd.lastSigma = sigma
	fd.lastVt = vt
	// The rewritten buffer is √(Σ²−δI)·Vᵀ, whose right singular vectors
	// are exactly the rows of vt we just computed — the factors are
	// current again.
	fd.dirty = false
	obsRotations.Inc()
	obsShrinkDelta.Add(delta)
	obsEllGauge.SetInt(fd.ell)
}

// Compact forces a final rotation if more than ℓ rows are occupied, so
// that the sketch fits in ℓ rows. It is called automatically by Sketch.
func (fd *FrequentDirections) Compact() {
	if fd.nextZero > fd.ell {
		fd.rotate()
	}
}

// Sketch returns the current ℓ×d sketch matrix B (a copy). Rows beyond
// the retained directions are zero.
func (fd *FrequentDirections) Sketch() *mat.Matrix {
	fd.Compact()
	out := mat.New(fd.ell, fd.d)
	for i := 0; i < min(fd.ell, fd.nextZero); i++ {
		copy(out.Row(i), fd.buffer.Row(i))
	}
	return out
}

// Delta returns the cumulative shrinkage Σδ applied across rotations —
// the total squared-singular-value mass subtracted from every retained
// direction so far. By the Frequent Directions guarantee (Liberty 2013)
// it certifies ‖AᵀA − BᵀB‖₂ ≤ Σδ online, and the mergeability result of
// Ghashami et al. makes the certificate compose additively under Merge.
func (fd *FrequentDirections) Delta() float64 { return fd.totalDelta }

// MarkDelta records the current cumulative shrinkage Σδ as the
// reference point for DeltaSinceMark. The engine's adaptive reconcile
// controller calls it when the global sketch is rebuilt, so the
// marginal shrinkage accumulated since then measures how stale the
// cached global certificate has become. The mark is bookkeeping, not
// sketch state: it is not persisted by State/NewFromState and resets to
// zero on restore.
func (fd *FrequentDirections) MarkDelta() { fd.deltaMark = fd.totalDelta }

// DeltaSinceMark returns the shrinkage Σδ accumulated since the last
// MarkDelta call (or since construction). It never decreases between
// marks because totalDelta is monotone.
func (fd *FrequentDirections) DeltaSinceMark() float64 { return fd.totalDelta - fd.deltaMark }

// FrobMass returns the accumulated squared Frobenius norm ‖A‖_F² of the
// stream the sketch summarizes (merge-aware: merging adds the other
// stream's mass, not the mass of its compressed sketch rows). It scales
// Delta into the relative certificate Σδ/‖A‖_F² and reproduces the
// a-priori bound ‖A‖_F²/ℓ.
func (fd *FrequentDirections) FrobMass() float64 { return fd.frobMass }

// CompensatedCovErr is the covariance error of the δ-compensated
// estimate AᵀA ≈ BᵀB + Σδ·I (the "FD with compensation" variant of
// Desai, Ghashami & Phillips 2016). FD always underestimates the
// covariance by between 0 and Σδ in every direction, so adding half the
// accumulated shrinkage back roughly halves the worst-case error; this
// helper measures the error of the fully-compensated estimator against
// data a.
func (fd *FrequentDirections) CompensatedCovErr(a *mat.Matrix, fraction float64) float64 {
	b := fd.Sketch()
	comp := fraction * fd.totalDelta
	// Power iteration on v ↦ Aᵀ(Av) − Bᵀ(Bv) − comp·v.
	d := a.ColsN
	v := make([]float64, d)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(d))
	}
	var lambda float64
	for it := 0; it < 200; it++ {
		av := mat.MulVec(a, v)
		w := mat.MulTVec(a, av)
		bv := mat.MulVec(b, v)
		btbv := mat.MulTVec(b, bv)
		for i := range w {
			w[i] -= btbv[i] + comp*v[i]
		}
		norm := mat.Norm2(w)
		if norm == 0 {
			return 0
		}
		for i := range w {
			w[i] /= norm
		}
		if it > 4 && math.Abs(norm-lambda) <= 1e-10*math.Max(norm, 1e-300) {
			return norm
		}
		lambda = norm
		v = w
	}
	return lambda
}

// Basis returns the top-k right singular vectors of the sketch as a
// k×d matrix with orthonormal rows — the PCA basis used to project data
// into latent space. k is clamped to the numerical rank of the sketch.
func (fd *FrequentDirections) Basis(k int) *mat.Matrix {
	fd.Compact()
	if fd.lastVt == nil || fd.dirty {
		// Either no decomposition exists yet, or rows were appended since
		// the last one without filling the buffer (Compact only rotates
		// past ℓ occupied rows). Serving the old factors here was the
		// stale-basis bug: a Basis call, then fewer than ℓ appended rows,
		// then a second Basis call returned a basis ignoring those rows.
		// Recompute from the live buffer instead.
		filled := fd.filled(max(fd.nextZero, 1))
		vt := fd.ensureVtBuf(filled.RowsN)
		fd.lastSigma = mat.SVDGramTo(filled, fd.lastSigma[:0], vt)
		fd.lastVt = vt
		fd.dirty = false
	}
	rank := 0
	var sMax float64
	if len(fd.lastSigma) > 0 {
		sMax = fd.lastSigma[0]
	}
	for _, s := range fd.lastSigma {
		// The Gram-trick SVD squares the condition number, so roundoff
		// noise sits near 1e-8·σmax; anything below 1e-6·σmax is
		// numerically zero for basis purposes.
		if s > 1e-6*sMax && s > 0 {
			rank++
		}
	}
	if k > rank {
		k = rank
	}
	if k == 0 {
		return mat.New(0, fd.d)
	}
	out := mat.New(k, fd.d)
	for i := 0; i < k; i++ {
		copy(out.Row(i), fd.lastVt.Row(i))
	}
	return out
}

// Merge folds another sketch into fd by stacking other's rows into the
// buffer and rotating — exactly the mergeable-summary construction of
// Ghashami et al. The two sketches must have the same feature dimension.
// If other retains more directions, fd grows to match before merging so
// no mass is dropped.
func (fd *FrequentDirections) Merge(other *FrequentDirections) {
	if fd.d != other.d {
		panic("sketch: Merge dimension mismatch")
	}
	if other.ell > fd.ell {
		fd.Grow(other.ell - fd.ell)
	}
	b := other.Sketch()
	appended := 0
	var appendedMass float64
	for i := 0; i < b.RowsN; i++ {
		row := b.Row(i)
		n2 := mat.Norm2Sq(row)
		if n2 == 0 {
			continue // zero rows between rotations would dilute accuracy
		}
		fd.Append(row)
		appended++
		appendedMass += n2
	}
	// Append counted sketch rows as data rows; replace that with the
	// true number of underlying samples (and the true stream energy)
	// the other sketch summarizes.
	fd.seen += other.seen - appended
	fd.frobMass += other.frobMass - appendedMass
	fd.rotations += other.rotations
	fd.totalDelta += other.totalDelta
	obsMerges.Inc()
}

// Grow increases the number of retained directions by dl, extending the
// buffer. Existing sketch content is preserved.
func (fd *FrequentDirections) Grow(dl int) {
	if dl <= 0 {
		return
	}
	newEll := fd.ell + dl
	nb := mat.New(2*newEll, fd.d)
	for i := 0; i < fd.nextZero; i++ {
		copy(nb.Row(i), fd.buffer.Row(i))
	}
	fd.buffer = nb
	fd.ell = newEll
	fd.dirty = true
	obsGrows.Inc()
	obsEllGauge.SetInt(fd.ell)
}

// filled returns an m×d view of the occupied buffer prefix through a
// reusable header, so the rotation path allocates nothing.
func (fd *FrequentDirections) filled(m int) *mat.Matrix {
	fd.filledView = mat.Matrix{
		RowsN:  m,
		ColsN:  fd.d,
		Stride: fd.buffer.Stride,
		Data:   fd.buffer.Data[:(m-1)*fd.buffer.Stride+fd.d],
	}
	return &fd.filledView
}

// ensureVtBuf resizes the owned right-singular-vector buffer to m×d,
// reusing its backing array when capacity allows. It allocates at the
// full 2ℓ row capacity on first use so later rotations never grow it.
func (fd *FrequentDirections) ensureVtBuf(m int) *mat.Matrix {
	if cap(fd.vtBuf.Data) < m*fd.d {
		rows := max(m, 2*fd.ell)
		fd.vtBuf = mat.Matrix{
			RowsN:  rows,
			ColsN:  fd.d,
			Stride: fd.d,
			Data:   make([]float64, rows*fd.d),
		}
	}
	fd.vtBuf.RowsN, fd.vtBuf.ColsN, fd.vtBuf.Stride = m, fd.d, fd.d
	fd.vtBuf.Data = fd.vtBuf.Data[:m*fd.d]
	return &fd.vtBuf
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
