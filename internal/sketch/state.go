package sketch

import (
	"fmt"
	"math"

	"arams/internal/rng"
)

// This file defines exported state snapshots for every stateful
// sketching structure, plus the constructors that rebuild a live
// structure from a snapshot. They are the boundary between the
// algorithms and internal/ckpt: the snapshot types carry plain data
// only, the binary layout lives entirely in ckpt, and restoring a
// snapshot then continuing the stream reproduces the uninterrupted
// run bit-for-bit (RNG positions included).
//
// Constructors validate their input and return errors rather than
// panicking, because snapshots may arrive from a checkpoint file that
// passed its checksum but was written by a buggy or hostile producer.

// FDState is a snapshot of a FrequentDirections sketch. Buffer holds
// the occupied prefix of the 2ℓ×d buffer (NextZero rows, row-major);
// the rows beyond it are zero by construction and are not stored. The
// cached SVD factors are deliberately not part of the state: they are
// recomputed deterministically from the buffer on first use after a
// restore.
type FDState struct {
	Ell        int
	D          int
	Backend    SVDBackend
	NextZero   int
	Rotations  int
	Seen       int
	TotalDelta float64
	// FrobMass is the accumulated ‖A‖_F² of the summarized stream (zero
	// when restored from a version-1 checkpoint written before the audit
	// layer existed; the absolute certificate Σδ is unaffected).
	FrobMass float64
	Buffer   []float64 // NextZero×D occupied prefix, row-major
}

// State captures the sketch's current state.
func (fd *FrequentDirections) State() FDState {
	s := FDState{
		Ell:        fd.ell,
		D:          fd.d,
		Backend:    fd.opts.Backend,
		NextZero:   fd.nextZero,
		Rotations:  fd.rotations,
		Seen:       fd.seen,
		TotalDelta: fd.totalDelta,
		FrobMass:   fd.frobMass,
		Buffer:     make([]float64, fd.nextZero*fd.d),
	}
	for i := 0; i < fd.nextZero; i++ {
		copy(s.Buffer[i*fd.d:(i+1)*fd.d], fd.buffer.Row(i))
	}
	return s
}

// NewFDFromState rebuilds a sketch from a snapshot. The restored
// sketch is marked dirty so Basis recomputes its factors from the
// buffer instead of trusting anything stale.
func NewFDFromState(s FDState) (*FrequentDirections, error) {
	if s.Ell <= 0 || s.D <= 0 {
		return nil, fmt.Errorf("sketch: FD state has invalid dimensions ℓ=%d d=%d", s.Ell, s.D)
	}
	if s.NextZero < 0 || s.NextZero > 2*s.Ell {
		return nil, fmt.Errorf("sketch: FD state nextZero=%d out of range [0, %d]", s.NextZero, 2*s.Ell)
	}
	if len(s.Buffer) != s.NextZero*s.D {
		return nil, fmt.Errorf("sketch: FD state buffer length %d != %d×%d", len(s.Buffer), s.NextZero, s.D)
	}
	if s.Rotations < 0 || s.Seen < 0 {
		return nil, fmt.Errorf("sketch: FD state has negative counters (rotations=%d seen=%d)", s.Rotations, s.Seen)
	}
	if s.Backend != GramSVD && s.Backend != JacobiSVD {
		return nil, fmt.Errorf("sketch: FD state has unknown SVD backend %d", int(s.Backend))
	}
	if math.IsNaN(s.TotalDelta) || math.IsInf(s.TotalDelta, 0) || s.TotalDelta < 0 {
		return nil, fmt.Errorf("sketch: FD state has invalid total delta %v", s.TotalDelta)
	}
	if math.IsNaN(s.FrobMass) || math.IsInf(s.FrobMass, 0) || s.FrobMass < 0 {
		return nil, fmt.Errorf("sketch: FD state has invalid Frobenius mass %v", s.FrobMass)
	}
	fd := NewFrequentDirections(s.Ell, s.D, Options{Backend: s.Backend})
	for i := 0; i < s.NextZero; i++ {
		copy(fd.buffer.Row(i), s.Buffer[i*s.D:(i+1)*s.D])
	}
	fd.nextZero = s.NextZero
	fd.rotations = s.Rotations
	fd.seen = s.Seen
	fd.totalDelta = s.TotalDelta
	fd.frobMass = s.FrobMass
	fd.dirty = true
	return fd, nil
}

// Clone returns an independent deep copy of the sketch. The clone is
// marked dirty so it never shares cached SVD factors with the
// original; package parallel clones merge-leg accumulators so a failed
// or corrupted leg attempt can be retried from pristine input.
func (fd *FrequentDirections) Clone() *FrequentDirections {
	return &FrequentDirections{
		ell:        fd.ell,
		d:          fd.d,
		opts:       fd.opts,
		buffer:     fd.buffer.Clone(),
		nextZero:   fd.nextZero,
		rotations:  fd.rotations,
		seen:       fd.seen,
		totalDelta: fd.totalDelta,
		frobMass:   fd.frobMass,
		dirty:      true,
	}
}

// RankAdaptiveState is a snapshot of a RankAdaptiveFD: the underlying
// FD state plus the rank-adaptation bookkeeping of Algorithm 2 and the
// probe RNG position.
type RankAdaptiveState struct {
	FD          FDState
	Nu          int
	Eps         float64
	Estimator   EstimatorKind
	RNG         rng.State
	Recent      [][]float64 // ring of last ≤ℓ rows, oldest first, each of length D
	IncreaseEll bool
	RowsLeft    int // -1 when the stream length is unknown
	Grows       int
}

// State captures the rank-adaptive sketch's current state.
func (r *RankAdaptiveFD) State() RankAdaptiveState {
	recent := make([][]float64, len(r.recent))
	for i, row := range r.recent {
		recent[i] = append([]float64(nil), row...)
	}
	return RankAdaptiveState{
		FD:          r.fd.State(),
		Nu:          r.nu,
		Eps:         r.eps,
		Estimator:   r.estimator,
		RNG:         r.g.State(),
		Recent:      recent,
		IncreaseEll: r.increaseEll,
		RowsLeft:    r.rowsLeft,
		Grows:       r.grows,
	}
}

// NewRankAdaptiveFromState rebuilds a rank-adaptive sketch from a
// snapshot.
func NewRankAdaptiveFromState(s RankAdaptiveState) (*RankAdaptiveFD, error) {
	fd, err := NewFDFromState(s.FD)
	if err != nil {
		return nil, err
	}
	if s.Nu <= 0 {
		return nil, fmt.Errorf("sketch: rank-adaptive state has nu=%d", s.Nu)
	}
	if !(s.Eps > 0) || math.IsInf(s.Eps, 0) {
		return nil, fmt.Errorf("sketch: rank-adaptive state has eps=%v", s.Eps)
	}
	if s.Estimator < GaussianProbe || s.Estimator > HutchPP {
		return nil, fmt.Errorf("sketch: rank-adaptive state has unknown estimator %d", int(s.Estimator))
	}
	if !s.RNG.Valid() {
		return nil, fmt.Errorf("sketch: rank-adaptive state has invalid RNG state")
	}
	if len(s.Recent) > fd.Ell() {
		return nil, fmt.Errorf("sketch: rank-adaptive state recent ring %d exceeds ℓ=%d", len(s.Recent), fd.Ell())
	}
	if s.RowsLeft < -1 || s.Grows < 0 {
		return nil, fmt.Errorf("sketch: rank-adaptive state has invalid counters (rowsLeft=%d grows=%d)", s.RowsLeft, s.Grows)
	}
	recent := make([][]float64, len(s.Recent))
	for i, row := range s.Recent {
		if len(row) != fd.Dim() {
			return nil, fmt.Errorf("sketch: rank-adaptive state recent row %d has length %d != d=%d", i, len(row), fd.Dim())
		}
		recent[i] = append([]float64(nil), row...)
	}
	return &RankAdaptiveFD{
		fd:          fd,
		nu:          s.Nu,
		eps:         s.Eps,
		estimator:   s.Estimator,
		g:           rng.FromState(s.RNG),
		recent:      recent,
		increaseEll: s.IncreaseEll,
		rowsLeft:    s.RowsLeft,
		grows:       s.Grows,
	}, nil
}

// PriorityEntry is one heap slot of a PrioritySampler snapshot. Row is
// nil for weight-only streams.
type PriorityEntry struct {
	Priority float64
	Weight   float64
	Index    int
	Row      []float64
}

// PriorityState is a snapshot of a PrioritySampler. Entries preserve
// the internal heap order so a restored sampler's future evictions
// match the original exactly.
type PriorityState struct {
	M       int
	Seen    int
	RNG     rng.State
	Entries []PriorityEntry
}

// State captures the sampler's current state.
func (p *PrioritySampler) State() PriorityState {
	entries := make([]PriorityEntry, len(p.heap))
	for i, e := range p.heap {
		var row []float64
		if e.row != nil {
			row = append([]float64(nil), e.row...)
		}
		entries[i] = PriorityEntry{Priority: e.priority, Weight: e.weight, Index: e.index, Row: row}
	}
	return PriorityState{M: p.m, Seen: p.seen, RNG: p.g.State(), Entries: entries}
}

// NewPriorityFromState rebuilds a sampler from a snapshot.
func NewPriorityFromState(s PriorityState) (*PrioritySampler, error) {
	if s.M <= 0 {
		return nil, fmt.Errorf("sketch: priority state has m=%d", s.M)
	}
	if s.Seen < 0 || len(s.Entries) > s.M+1 {
		return nil, fmt.Errorf("sketch: priority state has seen=%d, %d entries for m=%d", s.Seen, len(s.Entries), s.M)
	}
	if !s.RNG.Valid() {
		return nil, fmt.Errorf("sketch: priority state has invalid RNG state")
	}
	heap := make([]entry, len(s.Entries))
	for i, e := range s.Entries {
		if math.IsNaN(e.Priority) || math.IsNaN(e.Weight) || e.Index < 0 || e.Index >= s.Seen {
			return nil, fmt.Errorf("sketch: priority state entry %d is invalid", i)
		}
		var row []float64
		if e.Row != nil {
			row = append([]float64(nil), e.Row...)
		}
		heap[i] = entry{priority: e.Priority, weight: e.Weight, index: e.Index, row: row}
	}
	return &PrioritySampler{m: s.M, g: rng.FromState(s.RNG), heap: heap, seen: s.Seen}, nil
}

// ARAMSState is a snapshot of a streaming ARAMS sketcher: the
// configuration, the batch-sampler RNG position, and exactly one of
// the two sketch variants.
type ARAMSState struct {
	Cfg Config
	D   int
	RNG rng.State
	// RankAdaptive is non-nil when Cfg.RankAdaptive, FD otherwise.
	RankAdaptive *RankAdaptiveState
	FD           *FDState
}

// State captures the sketcher's current state.
func (a *ARAMS) State() ARAMSState {
	s := ARAMSState{Cfg: a.cfg, D: a.d, RNG: a.g.State()}
	if a.rafd != nil {
		ra := a.rafd.State()
		s.RankAdaptive = &ra
	} else {
		fd := a.fd.State()
		s.FD = &fd
	}
	return s
}

// NewARAMSFromState rebuilds a streaming sketcher from a snapshot.
func NewARAMSFromState(s ARAMSState) (*ARAMS, error) {
	if s.D <= 0 {
		return nil, fmt.Errorf("sketch: ARAMS state has d=%d", s.D)
	}
	if s.Cfg.Ell0 <= 0 {
		return nil, fmt.Errorf("sketch: ARAMS state has Ell0=%d", s.Cfg.Ell0)
	}
	if !s.RNG.Valid() {
		return nil, fmt.Errorf("sketch: ARAMS state has invalid RNG state")
	}
	a := &ARAMS{cfg: s.Cfg, d: s.D, g: rng.FromState(s.RNG)}
	switch {
	case s.Cfg.RankAdaptive && s.RankAdaptive != nil && s.FD == nil:
		rafd, err := NewRankAdaptiveFromState(*s.RankAdaptive)
		if err != nil {
			return nil, err
		}
		if rafd.fd.Dim() != s.D {
			return nil, fmt.Errorf("sketch: ARAMS state dimension %d != inner sketch dimension %d", s.D, rafd.fd.Dim())
		}
		a.rafd = rafd
	case !s.Cfg.RankAdaptive && s.FD != nil && s.RankAdaptive == nil:
		fd, err := NewFDFromState(*s.FD)
		if err != nil {
			return nil, err
		}
		if fd.Dim() != s.D {
			return nil, fmt.Errorf("sketch: ARAMS state dimension %d != inner sketch dimension %d", s.D, fd.Dim())
		}
		a.fd = fd
	default:
		return nil, fmt.Errorf("sketch: ARAMS state variant does not match Cfg.RankAdaptive=%v", s.Cfg.RankAdaptive)
	}
	return a, nil
}

// CorruptForTest deliberately poisons one buffer value. It exists so
// the fault-injection harness in package parallel can simulate a
// corrupted merge leg through the public API; it is not used by any
// production path.
func (fd *FrequentDirections) CorruptForTest(v float64) {
	if fd.nextZero == 0 {
		fd.nextZero = 1
	}
	fd.buffer.Row(0)[0] = v
	fd.dirty = true
}

// Finite reports whether every occupied buffer value is finite — the
// validation the merge-leg retry path runs to detect a corrupted
// sketch before folding it into the global summary.
func (fd *FrequentDirections) Finite() bool {
	for i := 0; i < fd.nextZero; i++ {
		for _, v := range fd.buffer.Row(i) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	return true
}
