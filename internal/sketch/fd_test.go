package sketch

import (
	"math"
	"testing"
	"testing/quick"

	"arams/internal/mat"
	"arams/internal/rng"
	"arams/internal/synth"
)

func gaussData(n, d int, seed uint64) *mat.Matrix {
	return mat.RandGaussian(n, d, rng.New(seed))
}

func TestFDCovarianceBound(t *testing.T) {
	// The headline FD guarantee: ‖AᵀA − BᵀB‖₂ ≤ ‖A‖_F² / ℓ.
	for _, tc := range []struct{ n, d, ell int }{
		{100, 30, 5}, {200, 50, 10}, {150, 40, 20},
	} {
		a := gaussData(tc.n, tc.d, 1)
		fd := NewFrequentDirections(tc.ell, tc.d, Options{})
		fd.AppendMatrix(a)
		b := fd.Sketch()
		err := CovErr(a, b)
		bound := FDBound(a, tc.ell)
		if err > bound*(1+1e-9) {
			t.Errorf("n=%d d=%d ℓ=%d: CovErr %v exceeds bound %v", tc.n, tc.d, tc.ell, err, bound)
		}
	}
}

func TestFDShrinkageDomination(t *testing.T) {
	// FD shrinks, never inflates: AᵀA − BᵀB must be PSD. Check via
	// Rayleigh quotients on random directions.
	a := gaussData(120, 25, 2)
	fd := NewFrequentDirections(8, 25, Options{})
	fd.AppendMatrix(a)
	b := fd.Sketch()
	g := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		v := make([]float64, 25)
		for i := range v {
			v[i] = g.Norm()
		}
		av := mat.MulVec(a, v)
		bv := mat.MulVec(b, v)
		diff := mat.Norm2Sq(av) - mat.Norm2Sq(bv)
		if diff < -1e-8*mat.Norm2Sq(av) {
			t.Fatalf("trial %d: vᵀ(AᵀA−BᵀB)v = %v < 0 — sketch inflated a direction", trial, diff)
		}
	}
}

func TestFDLowRankExactRecovery(t *testing.T) {
	// If the data has rank r < ℓ, FD recovers its row space exactly:
	// projection error onto the sketch basis is ~0.
	ds := synth.Generate(synth.Params{N: 80, D: 40, Rank: 5, Decay: Exponential(), Seed: 4})
	fd := NewFrequentDirections(10, 40, Options{})
	fd.AppendMatrix(ds.A)
	basis := fd.Basis(5)
	rel := RelProjErr(ds.A, basis)
	if rel > 1e-10 {
		t.Fatalf("rank-5 data, ℓ=10: relative projection error %v", rel)
	}
}

// Exponential returns the synth decay constant; tiny helper so test
// intent reads clearly.
func Exponential() synth.Decay { return synth.Exponential }

func TestFDSketchShape(t *testing.T) {
	fd := NewFrequentDirections(6, 17, Options{})
	fd.AppendMatrix(gaussData(50, 17, 5))
	b := fd.Sketch()
	if r, c := b.Dims(); r != 6 || c != 17 {
		t.Fatalf("sketch shape %d×%d, want 6×17", r, c)
	}
	if fd.Seen() != 50 {
		t.Fatalf("Seen = %d", fd.Seen())
	}
}

func TestFDFewerRowsThanEll(t *testing.T) {
	// Fewer rows than ℓ: sketch holds the data verbatim, zero error.
	a := gaussData(4, 10, 6)
	fd := NewFrequentDirections(8, 10, Options{})
	fd.AppendMatrix(a)
	b := fd.Sketch()
	if err := CovErr(a, b); err > 1e-9 {
		t.Fatalf("undersized stream should be exact, CovErr = %v", err)
	}
}

func TestFDZeroRows(t *testing.T) {
	fd := NewFrequentDirections(4, 8, Options{})
	fd.AppendMatrix(mat.New(20, 8)) // all-zero stream
	b := fd.Sketch()
	if b.FrobeniusNorm() != 0 {
		t.Fatal("zero stream produced nonzero sketch")
	}
	if b.HasNaN() {
		t.Fatal("zero stream produced NaN")
	}
}

func TestFDBackendsAgree(t *testing.T) {
	a := gaussData(100, 30, 7)
	fdG := NewFrequentDirections(8, 30, Options{Backend: GramSVD})
	fdJ := NewFrequentDirections(8, 30, Options{Backend: JacobiSVD})
	fdG.AppendMatrix(a)
	fdJ.AppendMatrix(a)
	eG := CovErr(a, fdG.Sketch())
	eJ := CovErr(a, fdJ.Sketch())
	// The two backends compute the same mathematical rotation; their
	// sketches may differ by roundoff but the errors must be close.
	if math.Abs(eG-eJ) > 1e-6*(1+eJ) {
		t.Fatalf("backend errors diverge: gram %v vs jacobi %v", eG, eJ)
	}
}

func TestFDRotationsCount(t *testing.T) {
	fd := NewFrequentDirections(5, 10, Options{})
	// 2ℓ=10 rows fill the buffer; each further ℓ rows force a rotation.
	fd.AppendMatrix(gaussData(40, 10, 8))
	// Appends: first 10 fill, then rotations occur at each refill.
	if fd.Rotations() == 0 {
		t.Fatal("no rotations recorded")
	}
	got := fd.Rotations()
	want := (40 - 2*5) / 5 // each rotation frees ℓ slots
	if got != want {
		t.Fatalf("Rotations = %d, want %d", got, want)
	}
}

func TestFDAppendWrongLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong row length did not panic")
		}
	}()
	NewFrequentDirections(3, 5, Options{}).Append(make([]float64, 4))
}

func TestMergePreservesBound(t *testing.T) {
	// Merge two sketches of disjoint halves: merged sketch must still
	// satisfy the FD bound for the union (mergeable-summary property).
	d := 25
	a1 := gaussData(80, d, 9)
	a2 := gaussData(80, d, 10)
	ell := 8
	fd1 := NewFrequentDirections(ell, d, Options{})
	fd2 := NewFrequentDirections(ell, d, Options{})
	fd1.AppendMatrix(a1)
	fd2.AppendMatrix(a2)
	fd1.Merge(fd2)
	b := fd1.Sketch()

	all := mat.New(160, d)
	for i := 0; i < 80; i++ {
		copy(all.Row(i), a1.Row(i))
		copy(all.Row(i+80), a2.Row(i))
	}
	err := CovErr(all, b)
	// Merged summaries obey the 2·‖A‖_F²/ℓ mergeable bound.
	bound := 2 * all.FrobeniusNormSq() / float64(ell)
	if err > bound {
		t.Fatalf("merged CovErr %v exceeds mergeable bound %v", err, bound)
	}
	if fd1.Seen() != 160 {
		t.Fatalf("merged Seen = %d, want 160", fd1.Seen())
	}
}

func TestMergeDifferentEll(t *testing.T) {
	d := 12
	small := NewFrequentDirections(4, d, Options{})
	big := NewFrequentDirections(9, d, Options{})
	small.AppendMatrix(gaussData(30, d, 11))
	big.AppendMatrix(gaussData(30, d, 12))
	small.Merge(big)
	if small.Ell() != 9 {
		t.Fatalf("merge did not grow ℓ: %d", small.Ell())
	}
	if small.Sketch().HasNaN() {
		t.Fatal("merged sketch has NaN")
	}
}

func TestMergeDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch merge did not panic")
		}
	}()
	a := NewFrequentDirections(3, 5, Options{})
	b := NewFrequentDirections(3, 6, Options{})
	a.Merge(b)
}

func TestGrowPreservesContent(t *testing.T) {
	d := 10
	fd := NewFrequentDirections(4, d, Options{})
	fd.AppendMatrix(gaussData(20, d, 13))
	before := fd.Sketch().Clone()
	fd.Grow(3)
	if fd.Ell() != 7 {
		t.Fatalf("Ell after grow = %d", fd.Ell())
	}
	after := fd.Sketch()
	// The first 4 rows (old content) are preserved.
	for i := 0; i < 4; i++ {
		for j := 0; j < d; j++ {
			if before.At(i, j) != after.At(i, j) {
				t.Fatal("Grow corrupted sketch content")
			}
		}
	}
}

func TestFDErrorDecreasesWithEll(t *testing.T) {
	a := gaussData(200, 40, 14)
	var prev = math.Inf(1)
	for _, ell := range []int{2, 5, 10, 20} {
		fd := NewFrequentDirections(ell, 40, Options{})
		fd.AppendMatrix(a)
		err := CovErr(a, fd.Sketch())
		if err > prev*1.1 { // allow slight non-monotonic wiggle
			t.Fatalf("ℓ=%d: error %v did not improve on %v", ell, err, prev)
		}
		prev = err
	}
}

func TestFDPropertyQuick(t *testing.T) {
	// Property: for random small streams, the FD bound always holds.
	g := rng.New(99)
	f := func(seed uint16) bool {
		n := 20 + int(seed%64)
		d := 5 + int(seed%11)
		ell := 2 + int(seed%5)
		a := mat.RandGaussian(n, d, g)
		fd := NewFrequentDirections(ell, d, Options{})
		fd.AppendMatrix(a)
		return CovErr(a, fd.Sketch()) <= FDBound(a, ell)*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBasisOrthonormal(t *testing.T) {
	a := gaussData(100, 20, 15)
	fd := NewFrequentDirections(8, 20, Options{})
	fd.AppendMatrix(a)
	for _, k := range []int{1, 4, 8} {
		vt := fd.Basis(k)
		if vt.RowsN != k {
			t.Fatalf("Basis(%d) has %d rows", k, vt.RowsN)
		}
		if !mat.Mul(vt, vt.T()).Equal(mat.Eye(k), 1e-8) {
			t.Fatalf("Basis(%d) rows not orthonormal", k)
		}
	}
}

func TestBasisBeforeRotation(t *testing.T) {
	// Basis must work when fewer than 2ℓ rows were appended (no
	// rotation yet).
	a := gaussData(5, 12, 16)
	fd := NewFrequentDirections(8, 12, Options{})
	fd.AppendMatrix(a)
	vt := fd.Basis(3)
	if vt.RowsN != 3 || vt.HasNaN() {
		t.Fatalf("pre-rotation Basis broken: %d rows", vt.RowsN)
	}
}

func TestBasisClampsToRank(t *testing.T) {
	// Rank-2 data: asking for 10 basis vectors returns at most 2.
	ds := synth.Generate(synth.Params{N: 40, D: 15, Rank: 2, Decay: synth.Exponential, Seed: 17})
	fd := NewFrequentDirections(6, 15, Options{})
	fd.AppendMatrix(ds.A)
	vt := fd.Basis(10)
	if vt.RowsN > 2 {
		t.Fatalf("Basis returned %d rows for rank-2 data", vt.RowsN)
	}
}

func TestBasisReflectsRowsAppendedAfterBasisCall(t *testing.T) {
	// Regression test for the stale-basis bug: a Basis call caches the
	// decomposition, and appending fewer than ℓ further rows never
	// triggers a rotation (Compact only rotates past ℓ occupied rows),
	// so a second Basis call used to serve the cached factors and
	// silently ignore the new rows.
	const ell, d = 8, 30
	fd := NewFrequentDirections(ell, d, Options{})
	row := make([]float64, d)
	for i := 0; i < 3; i++ {
		for j := range row {
			row[j] = 0
		}
		row[i] = 2
		fd.Append(row)
	}
	b1 := fd.Basis(3)
	if b1.RowsN != 3 {
		t.Fatalf("first Basis: %d rows, want 3", b1.RowsN)
	}

	// Fewer than ℓ new rows, all along feature 10 and dominant in norm:
	// the top singular vector of the updated sketch is ±e₁₀.
	for i := 0; i < 3; i++ {
		for j := range row {
			row[j] = 0
		}
		row[10] = 5
		fd.Append(row)
	}
	b2 := fd.Basis(1)
	if b2.RowsN != 1 {
		t.Fatalf("second Basis: %d rows, want 1", b2.RowsN)
	}
	if got := math.Abs(b2.At(0, 10)); got < 0.99 {
		t.Fatalf("stale basis: top direction has |component on feature 10| = %v, want ≈1 — rows appended between Basis calls were ignored", got)
	}
}

func TestBasisReflectsMergeBetweenCalls(t *testing.T) {
	// Merge folds rows in through Append, so it must dirty the cached
	// decomposition exactly like a direct Append does.
	const ell, d = 6, 20
	fd := NewFrequentDirections(ell, d, Options{})
	row := make([]float64, d)
	row[0] = 1
	fd.Append(row)
	_ = fd.Basis(1)

	other := NewFrequentDirections(ell, d, Options{})
	for j := range row {
		row[j] = 0
	}
	row[7] = 9
	other.Append(row)
	fd.Merge(other)

	b := fd.Basis(1)
	if got := math.Abs(b.At(0, 7)); got < 0.99 {
		t.Fatalf("basis ignores merged rows: |component on feature 7| = %v", got)
	}
}
