package sketch

import (
	"arams/internal/mat"
	"arams/internal/rng"
)

// Config parameterizes the ARAMS algorithm (Algorithm 3): Accelerated
// Rank-Adaptive Matrix Sketching = priority sampling chained into
// rank-adaptive Frequent Directions.
type Config struct {
	// Ell0 is the initial number of retained directions.
	Ell0 int
	// Nu is the probe count for the error heuristic and the rank
	// increment (the paper's ν).
	Nu int
	// Eps is the user-specified relative reconstruction-error target
	// (the paper's ε). The rank grows until the estimated error of
	// recent data falls below it.
	Eps float64
	// Beta is the priority-sampling keep fraction (the paper's β,
	// e.g. 0.8 keeps 80% of rows). Beta >= 1 disables sampling.
	Beta float64
	// RankAdaptive disables rank adaptation when false (fixed ℓ =
	// Ell0), giving the "user-specified rank" baselines of Fig. 1.
	RankAdaptive bool
	// Estimator selects the residual estimator for the rank-adaptation
	// heuristic (default GaussianProbe, the paper's choice).
	Estimator EstimatorKind
	// Seed feeds the sampler and probe RNG.
	Seed uint64
}

// ARAMS is the streaming form of Algorithm 3: batches pass through a
// per-batch priority sampler and into a (rank-adaptive) Frequent
// Directions sketch.
type ARAMS struct {
	cfg Config
	d   int
	g   *rng.RNG

	rafd *RankAdaptiveFD     // when cfg.RankAdaptive
	fd   *FrequentDirections // otherwise
}

// NewARAMS creates a streaming ARAMS sketcher for d-dimensional rows.
// totalRows is the expected stream length for the rank-adaptation
// guard; pass <= 0 if unknown.
func NewARAMS(cfg Config, d, totalRows int) *ARAMS {
	if cfg.Ell0 <= 0 {
		panic("sketch: ARAMS needs Ell0 > 0")
	}
	if cfg.Nu <= 0 {
		cfg.Nu = 10
	}
	if cfg.Beta <= 0 {
		cfg.Beta = 1
	}
	a := &ARAMS{cfg: cfg, d: d, g: rng.New(cfg.Seed)}
	if cfg.RankAdaptive {
		if cfg.Eps <= 0 {
			panic("sketch: rank-adaptive ARAMS needs Eps > 0")
		}
		// The sampler passes ~β of the rows through to the sketch.
		expected := totalRows
		if expected > 0 && cfg.Beta < 1 {
			expected = int(float64(expected) * cfg.Beta)
		}
		a.rafd = NewRankAdaptiveFD(cfg.Ell0, d, cfg.Nu, cfg.Eps, expected, a.g.Split())
		a.rafd.SetEstimator(cfg.Estimator)
	} else {
		a.fd = NewFrequentDirections(cfg.Ell0, d, Options{})
	}
	return a
}

// BatchStats summarizes one ProcessBatch call for the audit layer:
// what the priority sampler kept of the offered rows (counts and
// squared-Frobenius mass) and how the sketch rank and certified
// shrinkage Σδ moved while absorbing them. Callers that don't audit
// simply discard the return value.
type BatchStats struct {
	Rows       int     // rows offered to the batch
	Kept       int     // rows the sampler passed to the sketch
	TotalMass  float64 // Σ‖row‖² offered
	KeptMass   float64 // Σ‖row‖² kept
	EllBefore  int
	EllAfter   int
	DeltaAdded float64 // shrinkage mass Σδ this batch added to the certificate
}

// AcceptRate is the fraction of the offered batch energy the sampler
// kept (1 for an empty or unsampled batch) — the signal the audit
// layer's acceptance drift detector watches.
func (bs BatchStats) AcceptRate() float64 {
	if bs.TotalMass <= 0 {
		return 1
	}
	return bs.KeptMass / bs.TotalMass
}

// ProcessBatch runs one batch through the sampler and into the sketch,
// returning the batch's audit accounting.
func (a *ARAMS) ProcessBatch(x *mat.Matrix) BatchStats {
	if x.ColsN != a.d {
		panic("sketch: ARAMS batch dimension mismatch")
	}
	bs := BatchStats{Rows: x.RowsN, EllBefore: a.Ell()}
	for i := 0; i < x.RowsN; i++ {
		bs.TotalMass += mat.Norm2Sq(x.Row(i))
	}
	deltaBefore := a.FD().Delta()
	sel := x
	if a.cfg.Beta < 1 {
		sel = SampleRows(x, a.cfg.Beta, a.g)
		for i := 0; i < sel.RowsN; i++ {
			bs.KeptMass += mat.Norm2Sq(sel.Row(i))
		}
	} else {
		bs.KeptMass = bs.TotalMass
	}
	bs.Kept = sel.RowsN
	if a.rafd != nil {
		a.rafd.AppendMatrix(sel)
	} else {
		a.fd.AppendMatrix(sel)
	}
	bs.EllAfter = a.Ell()
	bs.DeltaAdded = a.FD().Delta() - deltaBefore
	return bs
}

// Ell returns the current number of retained directions.
func (a *ARAMS) Ell() int {
	if a.rafd != nil {
		return a.rafd.Ell()
	}
	return a.fd.Ell()
}

// Sketch returns the current sketch matrix.
func (a *ARAMS) Sketch() *mat.Matrix {
	if a.rafd != nil {
		return a.rafd.Sketch()
	}
	return a.fd.Sketch()
}

// Basis returns the top-k right singular vectors of the sketch.
func (a *ARAMS) Basis(k int) *mat.Matrix {
	if a.rafd != nil {
		return a.rafd.Basis(k)
	}
	return a.fd.Basis(k)
}

// FD returns the underlying Frequent Directions sketch (for merging).
func (a *ARAMS) FD() *FrequentDirections {
	if a.rafd != nil {
		return a.rafd.FD()
	}
	return a.fd
}

// Run executes Algorithm 3 on a full matrix: select the β·n
// highest-priority rows with a priority queue, then sketch them with
// rank-adaptive Frequent Directions.
func Run(x *mat.Matrix, cfg Config) *mat.Matrix {
	a := NewARAMS(cfg, x.ColsN, x.RowsN)
	a.ProcessBatch(x)
	return a.Sketch()
}
