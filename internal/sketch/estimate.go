package sketch

import (
	"arams/internal/mat"
	"arams/internal/rng"
)

// EstimateResidualSq implements Algorithm 1 of the paper: a low-memory
// randomized estimate of the squared reconstruction error
// ‖X − X·VᵀV‖_F² for a batch X (rows are samples) against a basis vt
// (k×d, orthonormal rows), using nu Gaussian probe vectors.
//
// Each probe draws g ~ N(0, I_n), forms y = Xᵀg (a random mixture of
// the batch's samples), projects it onto the basis, and accumulates the
// squared residual ‖y − VᵀVy‖². Because E[‖Mg‖²] = ‖M‖_F² for Gaussian
// g, the average over probes is an unbiased estimator of the true
// squared Frobenius residual — the random-matrix-multiplication
// Frobenius estimator of Bujanovic & Kressner that the paper adopts.
// Nothing of size d×d is ever formed.
func EstimateResidualSq(x, vt *mat.Matrix, nu int, g *rng.RNG) float64 {
	if nu <= 0 {
		panic("sketch: EstimateResidualSq needs nu > 0")
	}
	if vt.RowsN > 0 && x.ColsN != vt.ColsN {
		panic("sketch: EstimateResidualSq dimension mismatch")
	}
	n := x.RowsN
	var sum float64
	probe := make([]float64, n)
	for k := 0; k < nu; k++ {
		for i := range probe {
			probe[i] = g.Norm()
		}
		y := mat.MulTVec(x, probe) // d-vector
		var resid float64
		if vt.RowsN == 0 {
			resid = mat.Norm2Sq(y)
		} else {
			c := mat.MulVec(vt, y)  // k-vector of coefficients
			r := mat.MulTVec(vt, c) // reconstruction VᵀVy
			for i := range y {      // ‖y − r‖²
				dlt := y[i] - r[i]
				resid += dlt * dlt
			}
		}
		sum += resid
	}
	return sum / float64(nu)
}

// EstimateRelResidual returns the probe-based estimate of the relative
// reconstruction error ‖X − X·VᵀV‖_F² / ‖X‖_F² of the batch. The exact
// denominator costs one pass over the batch, which is negligible next
// to the probes. Returns 0 for an all-zero batch.
func EstimateRelResidual(x, vt *mat.Matrix, nu int, g *rng.RNG) float64 {
	den := x.FrobeniusNormSq()
	if den == 0 {
		return 0
	}
	return EstimateResidualSq(x, vt, nu, g) / den
}

// RankAdaptHeuristic is Algorithm 1's decision function: it reports
// whether the estimated relative reconstruction error of batch x under
// basis vt stays below eps. A false return signals that the sketch is
// missing prominent directions of the current data and the rank should
// increase.
func RankAdaptHeuristic(x, vt *mat.Matrix, nu int, eps float64, g *rng.RNG) bool {
	return EstimateRelResidual(x, vt, nu, g) < eps
}
