package sketch

import (
	"math"

	"arams/internal/mat"
)

// CovErr returns the covariance error ‖AᵀA − BᵀB‖₂ of a sketch B with
// respect to data A, the quantity bounded by ‖A‖_F²/ℓ in the Frequent
// Directions guarantee. The spectral norm is computed by power
// iteration on the implicit operator v ↦ Aᵀ(Av) − Bᵀ(Bv), so no d×d
// matrix is ever formed.
func CovErr(a, b *mat.Matrix) float64 {
	if a.ColsN != b.ColsN {
		panic("sketch: CovErr dimension mismatch")
	}
	d := a.ColsN
	// Deterministic start vector; re-seed once if unlucky.
	v := make([]float64, d)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(d))
	}
	var lambda float64
	const iters = 200
	for it := 0; it < iters; it++ {
		w := applySymDiff(a, b, v)
		norm := mat.Norm2(w)
		if norm == 0 {
			return 0
		}
		for i := range w {
			w[i] /= norm
		}
		// Rayleigh-style estimate: |λ| ≈ ‖(AᵀA−BᵀB)v‖ as v converges.
		if it > 4 && math.Abs(norm-lambda) <= 1e-10*math.Max(norm, 1e-300) {
			return norm
		}
		lambda = norm
		v = w
	}
	return lambda
}

// applySymDiff computes (AᵀA − BᵀB)·v without materializing either Gram
// matrix.
func applySymDiff(a, b *mat.Matrix, v []float64) []float64 {
	av := mat.MulVec(a, v)
	out := mat.MulTVec(a, av)
	bv := mat.MulVec(b, v)
	btbv := mat.MulTVec(b, bv)
	for i := range out {
		out[i] -= btbv[i]
	}
	return out
}

// ProjErrSq returns ‖A − A·VᵀV‖_F², the squared reconstruction error of
// projecting the rows of A onto the row space of vt (k×d with
// orthonormal rows). Computed streaming one row at a time:
// ‖a − VᵀVa‖² = ‖a‖² − ‖Va‖² for orthonormal V rows.
func ProjErrSq(a, vt *mat.Matrix) float64 {
	if vt.RowsN == 0 {
		return a.FrobeniusNormSq()
	}
	if a.ColsN != vt.ColsN {
		panic("sketch: ProjErrSq dimension mismatch")
	}
	var total float64
	for i := 0; i < a.RowsN; i++ {
		row := a.Row(i)
		c := mat.MulVec(vt, row)
		r := mat.Norm2Sq(row) - mat.Norm2Sq(c)
		if r > 0 {
			total += r
		}
	}
	return total
}

// RelProjErr returns the relative projection error
// ‖A − A·VᵀV‖_F² / ‖A‖_F², the scale-free error the rank-adaptive
// variant targets. Returns 0 for an all-zero A.
func RelProjErr(a, vt *mat.Matrix) float64 {
	den := a.FrobeniusNormSq()
	if den == 0 {
		return 0
	}
	return ProjErrSq(a, vt) / den
}

// FDBound returns the theoretical Frequent Directions covariance-error
// bound ‖A‖_F²/ℓ for data a and sketch size ell.
func FDBound(a *mat.Matrix, ell int) float64 {
	return a.FrobeniusNormSq() / float64(ell)
}
