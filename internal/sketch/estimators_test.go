package sketch

import (
	"math"
	"testing"

	"arams/internal/mat"
	"arams/internal/rng"
	"arams/internal/synth"
)

// estimatorFixture builds a test matrix and a truncated basis with a
// known exact residual.
func estimatorFixture(seed uint64) (x, vt *mat.Matrix, exact float64) {
	g := rng.New(seed)
	x = mat.RandGaussian(60, 40, g)
	_, _, vtFull := mat.SVD(x)
	vt = mat.New(8, 40)
	for i := 0; i < 8; i++ {
		copy(vt.Row(i), vtFull.Row(i))
	}
	return x, vt, ProjErrSq(x, vt)
}

func TestEstimatorKindsUnbiased(t *testing.T) {
	x, vt, exact := estimatorFixture(1)
	for _, kind := range []EstimatorKind{GaussianProbe, Hutchinson, HutchPP} {
		const trials = 200
		var sum float64
		for i := 0; i < trials; i++ {
			sum += EstimateResidualSqKind(kind, x, vt, 9, rng.NewStream(uint64(i), uint64(kind)+3))
		}
		mean := sum / trials
		if rel := math.Abs(mean-exact) / exact; rel > 0.1 {
			t.Errorf("%v: mean %v vs exact %v (rel %v)", kind, mean, exact, rel)
		}
	}
}

func TestEstimatorVarianceOrdering(t *testing.T) {
	// On a residual with decaying spectrum (the regime Hutch++ is built
	// for, and the regime beam-profile batches live in), the mean
	// absolute deviation must order Hutch++ ≤ Hutchinson ≤ Gaussian for
	// the same probe budget (with slack for sampling noise).
	ds := synth.Generate(synth.Params{N: 60, D: 40, Rank: 30, Decay: synth.Exponential, Seed: 2})
	x := ds.A
	vfull := ds.V.T()
	vt := mat.New(5, 40)
	for i := 0; i < 5; i++ {
		copy(vt.Row(i), vfull.Row(i))
	}
	exact := ProjErrSq(x, vt)
	dev := func(kind EstimatorKind) float64 {
		const trials = 150
		var s float64
		for i := 0; i < trials; i++ {
			est := EstimateResidualSqKind(kind, x, vt, 12, rng.NewStream(uint64(i), uint64(kind)+11))
			s += math.Abs(est-exact) / exact
		}
		return s / trials
	}
	dg, dh, dpp := dev(GaussianProbe), dev(Hutchinson), dev(HutchPP)
	if dh > dg*1.25 {
		t.Errorf("Hutchinson deviation %v not ≤ Gaussian %v", dh, dg)
	}
	if dpp > dh*1.25 {
		t.Errorf("Hutch++ deviation %v not ≤ Hutchinson %v", dpp, dh)
	}
}

func TestHutchPPExactOnLowRankResidual(t *testing.T) {
	// When the residual operator has rank ≤ ν/3, Hutch++'s range
	// captures it entirely and the estimate is exact (up to roundoff).
	ds := synth.Generate(synth.Params{N: 40, D: 30, Rank: 10, Decay: synth.Exponential, Seed: 3})
	// Basis = top-7 true directions → residual has rank 3.
	vt := mat.New(7, 30)
	vfull := ds.V.T()
	for i := 0; i < 7; i++ {
		copy(vt.Row(i), vfull.Row(i))
	}
	exact := ProjErrSq(ds.A, vt)
	for trial := 0; trial < 10; trial++ {
		est := EstimateResidualSqKind(HutchPP, ds.A, vt, 12, rng.NewStream(uint64(trial), 5))
		if rel := math.Abs(est-exact) / exact; rel > 1e-6 {
			t.Fatalf("trial %d: Hutch++ not exact on rank-3 residual: est %v vs %v", trial, est, exact)
		}
	}
}

func TestEstimatorKindString(t *testing.T) {
	if GaussianProbe.String() != "gaussian" || Hutchinson.String() != "hutchinson" ||
		HutchPP.String() != "hutch++" {
		t.Fatal("estimator names wrong")
	}
	if EstimatorKind(9).String() == "" {
		t.Fatal("unknown estimator name empty")
	}
}

func TestEstimatorZeroBatch(t *testing.T) {
	for _, kind := range []EstimatorKind{GaussianProbe, Hutchinson, HutchPP} {
		got := EstimateRelResidualKind(kind, mat.New(5, 4), mat.New(0, 4), 3, rng.New(1))
		if got != 0 {
			t.Errorf("%v: zero batch gives %v", kind, got)
		}
	}
}

func TestEstimatorEmptyBasisKinds(t *testing.T) {
	g := rng.New(4)
	x := mat.RandGaussian(15, 10, g)
	want := x.FrobeniusNormSq()
	for _, kind := range []EstimatorKind{Hutchinson, HutchPP} {
		const trials = 200
		var sum float64
		for i := 0; i < trials; i++ {
			sum += EstimateResidualSqKind(kind, x, mat.New(0, 10), 6, rng.NewStream(uint64(i), 7))
		}
		mean := sum / trials
		if math.Abs(mean-want)/want > 0.15 {
			t.Errorf("%v: empty-basis mean %v vs ‖X‖² %v", kind, mean, want)
		}
	}
}

func TestRankAdaptiveWithAlternativeEstimators(t *testing.T) {
	ds := synth.Generate(synth.Params{N: 500, D: 40, Rank: 12, Decay: synth.SubExponential, Seed: 5})
	for _, kind := range []EstimatorKind{Hutchinson, HutchPP} {
		r := NewRankAdaptiveFD(4, 40, 4, 0.02, 500, rng.New(6))
		r.SetEstimator(kind)
		r.AppendMatrix(ds.A)
		if r.Grows() == 0 {
			t.Errorf("%v: rank never grew", kind)
		}
		basis := r.Basis(r.Ell())
		if rel := RelProjErr(ds.A, basis); rel > 0.1 {
			t.Errorf("%v: final error %v", kind, rel)
		}
	}
}

func TestARAMSEstimatorConfig(t *testing.T) {
	ds := synth.Generate(synth.Params{N: 300, D: 30, Rank: 10, Decay: synth.Exponential, Seed: 7})
	cfg := Config{Ell0: 5, Nu: 4, Eps: 0.05, RankAdaptive: true, Estimator: HutchPP, Seed: 8}
	b := Run(ds.A, cfg)
	if b.HasNaN() || b.ColsN != 30 {
		t.Fatal("ARAMS with Hutch++ estimator broken")
	}
}

func TestEstimatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nu=0 did not panic")
		}
	}()
	EstimateResidualSqKind(Hutchinson, mat.New(3, 3), mat.New(0, 3), 0, rng.New(1))
}
