package sketch

import (
	"math"
	"testing"

	"arams/internal/mat"
	"arams/internal/rng"
	"arams/internal/synth"
)

func TestEstimatorUnbiased(t *testing.T) {
	// The probe estimator must match the exact residual on average.
	g := rng.New(30)
	x := mat.RandGaussian(40, 25, g)
	_, _, vtFull := mat.SVD(x)
	vt, _, _ := truncBasis(vtFull, 5)
	exact := ProjErrSq(x, vt)
	const trials = 300
	var sum float64
	for i := 0; i < trials; i++ {
		sum += EstimateResidualSq(x, vt, 10, rng.NewStream(uint64(i), 5))
	}
	mean := sum / trials
	if rel := math.Abs(mean-exact) / exact; rel > 0.1 {
		t.Fatalf("estimator mean %v vs exact %v (rel %v)", mean, exact, rel)
	}
}

func truncBasis(vt *mat.Matrix, k int) (*mat.Matrix, []float64, *mat.Matrix) {
	out := mat.New(k, vt.ColsN)
	for i := 0; i < k; i++ {
		copy(out.Row(i), vt.Row(i))
	}
	return out, nil, nil
}

func TestEstimatorVarianceShrinksWithNu(t *testing.T) {
	// The paper reports ~10% error decrease per 10 extra probes; at
	// minimum, the estimator's spread must shrink as ν grows.
	g := rng.New(31)
	x := mat.RandGaussian(50, 20, g)
	_, _, vtFull := mat.SVD(x)
	vt, _, _ := truncBasis(vtFull, 4)
	exact := ProjErrSq(x, vt)
	spread := func(nu int) float64 {
		var s float64
		const trials = 120
		for i := 0; i < trials; i++ {
			est := EstimateResidualSq(x, vt, nu, rng.NewStream(uint64(i), uint64(nu)))
			s += math.Abs(est - exact)
		}
		return s / trials / exact
	}
	lo, hi := spread(40), spread(2)
	if lo >= hi {
		t.Fatalf("estimator spread did not shrink: nu=40 → %v, nu=2 → %v", lo, hi)
	}
}

func TestEstimatorExactSubspace(t *testing.T) {
	// Data living exactly in the basis has zero residual.
	ds := synth.Generate(synth.Params{N: 30, D: 20, Rank: 3, Decay: synth.Exponential, Seed: 32})
	vt := ds.V.T() // 3×20 orthonormal rows spanning the data
	est := EstimateResidualSq(ds.A, vt, 8, rng.New(1))
	if est > 1e-18*ds.A.FrobeniusNormSq() {
		t.Fatalf("in-subspace residual estimate %v, want ~0", est)
	}
}

func TestEstimatorEmptyBasis(t *testing.T) {
	g := rng.New(33)
	x := mat.RandGaussian(10, 8, g)
	// Empty basis: residual is the whole batch norm.
	var sum float64
	const trials = 400
	for i := 0; i < trials; i++ {
		sum += EstimateResidualSq(x, mat.New(0, 8), 5, rng.NewStream(uint64(i), 2))
	}
	mean := sum / trials
	want := x.FrobeniusNormSq()
	if math.Abs(mean-want)/want > 0.15 {
		t.Fatalf("empty-basis estimate %v, want ~%v", mean, want)
	}
}

func TestEstimateRelResidualZeroBatch(t *testing.T) {
	if got := EstimateRelResidual(mat.New(5, 4), mat.New(0, 4), 3, rng.New(1)); got != 0 {
		t.Fatalf("zero batch relative residual = %v", got)
	}
}

func TestRankAdaptHeuristicDirections(t *testing.T) {
	g := rng.New(34)
	ds := synth.Generate(synth.Params{N: 40, D: 30, Rank: 10, Decay: synth.Exponential, Seed: 35})
	fullBasis := ds.V.T()
	if !RankAdaptHeuristic(ds.A, fullBasis, 10, 0.01, g) {
		t.Fatal("full basis should satisfy any reasonable eps")
	}
	empty := mat.New(0, 30)
	if RankAdaptHeuristic(ds.A, empty, 10, 0.01, g) {
		t.Fatal("empty basis should fail a tight eps")
	}
}

func TestRankAdaptiveGrowsToMeetEps(t *testing.T) {
	// Rank-12 data with a sketch starting at ℓ=4 and a tight error
	// target: the rank must grow, and the final sketch must actually
	// achieve the target on the data.
	ds := synth.Generate(synth.Params{N: 600, D: 50, Rank: 12, Decay: synth.SubExponential, Seed: 36})
	r := NewRankAdaptiveFD(4, 50, 4, 0.02, 600, rng.New(37))
	r.AppendMatrix(ds.A)
	if r.Grows() == 0 {
		t.Fatal("rank never grew despite tight eps")
	}
	if r.Ell() <= 4 {
		t.Fatalf("Ell = %d, want > 4", r.Ell())
	}
	basis := r.Basis(r.Ell())
	rel := RelProjErr(ds.A, basis)
	if rel > 0.1 {
		t.Fatalf("final relative projection error %v too high after adaptation", rel)
	}
}

func TestRankAdaptiveStaysPutWhenEasy(t *testing.T) {
	// Rank-3 data with ℓ0=8 and a loose eps: no growth should occur.
	ds := synth.Generate(synth.Params{N: 300, D: 40, Rank: 3, Decay: synth.SuperExponential, Seed: 38})
	r := NewRankAdaptiveFD(8, 40, 4, 0.2, 300, rng.New(39))
	r.AppendMatrix(ds.A)
	if r.Grows() != 0 {
		t.Fatalf("rank grew %d times on easy data", r.Grows())
	}
	if r.Ell() != 8 {
		t.Fatalf("Ell = %d, want 8", r.Ell())
	}
}

func TestRankAdaptiveGuardNearStreamEnd(t *testing.T) {
	// With rowsLeft hint, growth must not fire when fewer than ℓ+ν
	// rows remain.
	d := 20
	total := 2*6 + 3 // buffer fills once, then only 3 rows remain
	r := NewRankAdaptiveFD(6, d, 5, 1e-9, total, rng.New(40))
	g := rng.New(41)
	x := mat.RandGaussian(total, d, g)
	r.AppendMatrix(x)
	if r.Ell() != 6 {
		t.Fatalf("rank grew near stream end: Ell = %d", r.Ell())
	}
}

func TestRankAdaptiveBoundStillHolds(t *testing.T) {
	// Whatever the adaptation does, the FD guarantee for the *final* ℓ
	// must hold.
	g := rng.New(42)
	a := mat.RandGaussian(400, 30, g)
	r := NewRankAdaptiveFD(5, 30, 3, 0.05, 400, rng.New(43))
	r.AppendMatrix(a)
	b := r.Sketch()
	err := CovErr(a, b)
	bound := FDBound(a, 5) // bound for the *initial* ℓ is the weakest
	if err > bound*(1+1e-9) {
		t.Fatalf("rank-adaptive sketch violates FD bound: %v > %v", err, bound)
	}
}

func TestRunRankAdaptiveFD(t *testing.T) {
	g := rng.New(44)
	x := mat.RandGaussian(100, 20, g)
	b := RunRankAdaptiveFD(x, 5, 3, 0.1, rng.New(45))
	if b.ColsN != 20 || b.RowsN < 5 {
		t.Fatalf("RunRankAdaptiveFD shape %d×%d", b.RowsN, b.ColsN)
	}
	if b.HasNaN() {
		t.Fatal("sketch has NaN")
	}
}

func TestRankAdaptivePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"nu=0":  func() { NewRankAdaptiveFD(4, 10, 0, 0.1, 100, rng.New(1)) },
		"eps=0": func() { NewRankAdaptiveFD(4, 10, 3, 0, 100, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestARAMSEndToEnd(t *testing.T) {
	ds := synth.Generate(synth.Params{N: 500, D: 40, Rank: 10, Decay: synth.Exponential, Seed: 46})
	cfg := Config{Ell0: 6, Nu: 4, Eps: 0.05, Beta: 0.8, RankAdaptive: true, Seed: 47}
	b := Run(ds.A, cfg)
	if b.ColsN != 40 {
		t.Fatalf("ARAMS sketch width %d", b.ColsN)
	}
	if b.HasNaN() {
		t.Fatal("ARAMS sketch has NaN")
	}
	// The sketch basis should capture the dominant directions well.
	a := NewARAMS(cfg, 40, 500)
	a.ProcessBatch(ds.A)
	basis := a.Basis(a.Ell())
	if rel := RelProjErr(ds.A, basis); rel > 0.2 {
		t.Fatalf("ARAMS relative projection error %v", rel)
	}
}

func TestARAMSStreamingBatches(t *testing.T) {
	ds := synth.Generate(synth.Params{N: 400, D: 30, Rank: 8, Decay: synth.Exponential, Seed: 48})
	a := NewARAMS(Config{Ell0: 10, Beta: 0.9, Seed: 49}, 30, 400)
	for start := 0; start < 400; start += 50 {
		a.ProcessBatch(ds.A.Rows(start, start+50))
	}
	if a.FD().Seen() == 0 {
		t.Fatal("no rows reached the sketch")
	}
	basis := a.Basis(8)
	if rel := RelProjErr(ds.A, basis); rel > 0.2 {
		t.Fatalf("streaming ARAMS projection error %v", rel)
	}
}

func TestARAMSConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Ell0=0 did not panic")
		}
	}()
	NewARAMS(Config{Ell0: 0}, 10, 100)
}

func TestCovErrZeroMatrices(t *testing.T) {
	if got := CovErr(mat.New(5, 4), mat.New(2, 4)); got != 0 {
		t.Fatalf("CovErr of zeros = %v", got)
	}
}

func TestProjErrSqEmptyBasis(t *testing.T) {
	g := rng.New(50)
	x := mat.RandGaussian(6, 5, g)
	if got := ProjErrSq(x, mat.New(0, 5)); math.Abs(got-x.FrobeniusNormSq()) > 1e-12 {
		t.Fatalf("empty-basis ProjErrSq = %v", got)
	}
}

func TestProjErrSqFullBasis(t *testing.T) {
	g := rng.New(51)
	x := mat.RandGaussian(10, 6, g)
	_, _, vt := mat.SVD(x)
	if got := ProjErrSq(x, vt); got > 1e-9 {
		t.Fatalf("full-basis ProjErrSq = %v", got)
	}
}
