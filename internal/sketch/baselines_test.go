package sketch

import (
	"math"
	"testing"

	"arams/internal/mat"
	"arams/internal/rng"
	"arams/internal/synth"
)

func runSummarizer(s Summarizer, a *mat.Matrix) *mat.Matrix {
	for i := 0; i < a.RowsN; i++ {
		s.Append(a.Row(i))
	}
	return s.Sketch()
}

func TestBaselineShapes(t *testing.T) {
	g := rng.New(70)
	a := mat.RandGaussian(100, 20, g)
	for _, s := range []Summarizer{
		NewRandomProjection(8, 20, rng.New(1)),
		NewCountSketch(8, 20, rng.New(2)),
		NewNormSampler(8, 20, rng.New(3)),
	} {
		b := runSummarizer(s, a)
		if r, c := b.Dims(); r != 8 || c != 20 {
			t.Fatalf("%s: sketch shape %d×%d", s.Name(), r, c)
		}
		if b.HasNaN() {
			t.Fatalf("%s: NaN in sketch", s.Name())
		}
	}
}

func TestBaselinesApproximateCovariance(t *testing.T) {
	// All baselines are unbiased-ish covariance sketches: their error
	// must be finite and shrink with ℓ; FD must beat them all on the
	// same budget (its deterministic guarantee vs their variance).
	ds := synth.Generate(synth.Params{N: 400, D: 50, Rank: 20, Decay: synth.Exponential, Seed: 71})
	a := ds.A
	normalizer := a.FrobeniusNormSq()
	errOf := func(mk func(ell int) Summarizer, ell int) float64 {
		return CovErr(a, runSummarizer(mk(ell), a)) / normalizer
	}
	for _, tc := range []struct {
		name string
		mk   func(ell int) Summarizer
	}{
		{"rp", func(ell int) Summarizer { return NewRandomProjection(ell, 50, rng.New(4)) }},
		{"cs", func(ell int) Summarizer { return NewCountSketch(ell, 50, rng.New(5)) }},
		{"ns", func(ell int) Summarizer { return NewNormSampler(ell, 50, rng.New(6)) }},
	} {
		e8 := errOf(tc.mk, 8)
		e64 := errOf(tc.mk, 64)
		if math.IsNaN(e8) || math.IsInf(e8, 0) {
			t.Fatalf("%s: invalid error", tc.name)
		}
		if e64 > e8 {
			t.Errorf("%s: error did not shrink with ℓ: %v → %v", tc.name, e8, e64)
		}
	}
	// FD dominance at matched ℓ.
	ell := 16
	fd := NewFrequentDirections(ell, 50, Options{})
	eFD := CovErr(a, runSummarizer(fd, a)) / normalizer
	for _, tc := range []Summarizer{
		NewRandomProjection(ell, 50, rng.New(7)),
		NewCountSketch(ell, 50, rng.New(8)),
		NewNormSampler(ell, 50, rng.New(9)),
	} {
		eB := CovErr(a, runSummarizer(tc, a)) / normalizer
		if eFD > eB {
			t.Errorf("FD error %v worse than %s %v at ℓ=%d", eFD, tc.Name(), eB, ell)
		}
	}
}

func TestNormSamplerUnbiasedCovariance(t *testing.T) {
	// E[BᵀB] = AᵀA: average sketch covariance over many runs must
	// approach the true covariance.
	g := rng.New(72)
	a := mat.RandGaussian(60, 8, g)
	truth := mat.Mul(a.T(), a)
	sum := mat.New(8, 8)
	const trials = 400
	for tr := 0; tr < trials; tr++ {
		ns := NewNormSampler(10, 8, rng.NewStream(uint64(tr), 99))
		b := runSummarizer(ns, a)
		sum.Add(mat.Mul(b.T(), b))
	}
	sum.Scale(1.0 / trials)
	diff := sum.Clone()
	diff.Sub(truth)
	if rel := diff.FrobeniusNorm() / truth.FrobeniusNorm(); rel > 0.1 {
		t.Fatalf("norm-sampling covariance biased: rel dev %v", rel)
	}
}

func TestCountSketchPreservesFrobeniusInExpectation(t *testing.T) {
	g := rng.New(73)
	a := mat.RandGaussian(50, 10, g)
	want := a.FrobeniusNormSq()
	var sum float64
	const trials = 300
	for tr := 0; tr < trials; tr++ {
		cs := NewCountSketch(12, 10, rng.NewStream(uint64(tr), 17))
		sum += runSummarizer(cs, a).FrobeniusNormSq()
	}
	got := sum / trials
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("CountSketch ‖B‖² mean %v vs ‖A‖² %v", got, want)
	}
}

func TestNormSamplerSkipsZeroRows(t *testing.T) {
	ns := NewNormSampler(4, 3, rng.New(74))
	ns.Append([]float64{0, 0, 0})
	ns.Append([]float64{1, 2, 3})
	b := ns.Sketch()
	nonzero := 0
	for i := 0; i < b.RowsN; i++ {
		if mat.Norm2Sq(b.Row(i)) > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("reservoir kept %d nonzero rows, want 1", nonzero)
	}
}

func TestBaselinePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"rp-dims": func() { NewRandomProjection(0, 5, rng.New(1)) },
		"cs-dims": func() { NewCountSketch(3, 0, rng.New(1)) },
		"ns-dims": func() { NewNormSampler(-1, 5, rng.New(1)) },
		"rp-row":  func() { NewRandomProjection(2, 5, rng.New(1)).Append(make([]float64, 4)) },
		"cs-row":  func() { NewCountSketch(2, 5, rng.New(1)).Append(make([]float64, 6)) },
		"ns-row":  func() { NewNormSampler(2, 5, rng.New(1)).Append(make([]float64, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
