package sketch_test

import (
	"fmt"

	"arams/internal/sketch"
	"arams/internal/synth"
)

// ExampleRun demonstrates the one-call form of ARAMS: sketch a matrix
// with a target error instead of a rank.
func ExampleRun() {
	ds := synth.Generate(synth.Params{
		N: 500, D: 100, Rank: 20, Decay: synth.Exponential, Seed: 1,
	})
	b := sketch.Run(ds.A, sketch.Config{
		Ell0:         5,
		Nu:           5,
		Eps:          0.05, // ≤5% relative reconstruction error
		Beta:         0.9,  // keep the top 90% of rows by priority
		RankAdaptive: true,
		Seed:         2,
	})
	fmt.Printf("sketch is %d×%d\n", b.RowsN, b.ColsN)
	fmt.Printf("bound holds: %v\n",
		sketch.CovErr(ds.A, b) <= sketch.FDBound(ds.A, b.RowsN))
	// Output:
	// sketch is 10×100
	// bound holds: true
}

// ExampleFrequentDirections_Merge shows the mergeable-summary property
// used by the parallel tree merge.
func ExampleFrequentDirections_Merge() {
	ds := synth.Generate(synth.Params{
		N: 200, D: 50, Rank: 10, Decay: synth.Exponential, Seed: 3,
	})
	left := sketch.NewFrequentDirections(8, 50, sketch.Options{})
	right := sketch.NewFrequentDirections(8, 50, sketch.Options{})
	left.AppendMatrix(ds.A.Rows(0, 100))
	right.AppendMatrix(ds.A.Rows(100, 200))

	left.Merge(right)
	fmt.Printf("merged sketch summarizes %d rows in %d directions\n",
		left.Seen(), left.Ell())
	// Output:
	// merged sketch summarizes 200 rows in 8 directions
}
