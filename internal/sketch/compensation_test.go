package sketch

import (
	"testing"

	"arams/internal/mat"
	"arams/internal/rng"
)

func TestDeltaAccumulates(t *testing.T) {
	g := rng.New(90)
	a := mat.RandGaussian(200, 30, g)
	fd := NewFrequentDirections(8, 30, Options{})
	if fd.Delta() != 0 {
		t.Fatal("fresh sketch has nonzero delta")
	}
	fd.AppendMatrix(a)
	fd.Compact()
	if fd.Delta() <= 0 {
		t.Fatal("delta did not accumulate over rotations")
	}
}

func TestCompensationReducesCovErr(t *testing.T) {
	// The compensated estimate BᵀB + c·Σδ·I must beat the plain sketch
	// for a well-chosen c: FD's error is one-sided (underestimate), so
	// shifting by half the accumulated shrinkage helps on full-rank
	// Gaussian data.
	g := rng.New(91)
	a := mat.RandGaussian(300, 40, g)
	fd := NewFrequentDirections(10, 40, Options{})
	fd.AppendMatrix(a)
	plain := CovErr(a, fd.Sketch())
	half := fd.CompensatedCovErr(a, 0.5)
	if half >= plain {
		t.Fatalf("compensation did not help: plain %v vs compensated %v", plain, half)
	}
	// Zero compensation matches the plain estimate.
	zero := fd.CompensatedCovErr(a, 0)
	if rel := (zero - plain) / plain; rel > 1e-6 || rel < -1e-6 {
		t.Fatalf("zero compensation differs from plain: %v vs %v", zero, plain)
	}
}

func TestCompensationMergePropagates(t *testing.T) {
	g := rng.New(92)
	a1 := mat.RandGaussian(150, 20, g)
	a2 := mat.RandGaussian(150, 20, g)
	fd1 := NewFrequentDirections(6, 20, Options{})
	fd2 := NewFrequentDirections(6, 20, Options{})
	fd1.AppendMatrix(a1)
	fd2.AppendMatrix(a2)
	fd1.Compact()
	fd2.Compact()
	d1, d2 := fd1.Delta(), fd2.Delta()
	fd1.Merge(fd2)
	if fd1.Delta() < d1+d2 {
		t.Fatalf("merge lost shrinkage accounting: %v < %v + %v", fd1.Delta(), d1, d2)
	}
}
