package optics

import (
	"math"
	"testing"
)

func BenchmarkOpticsRun(b *testing.B) {
	x, _ := blobs(4, 100, 20, 0.5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Run(x, 5, math.Inf(1))
	}
}

func BenchmarkExtractXi(b *testing.B) {
	x, _ := blobs(4, 100, 20, 0.5, 2)
	res := Run(x, 5, math.Inf(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = res.ExtractXi(0.15, 5, 20)
	}
}

func BenchmarkDBSCAN(b *testing.B) {
	x, _ := blobs(4, 100, 20, 0.5, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DBSCAN(x, 2.0, 5)
	}
}
