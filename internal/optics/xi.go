package optics

import "math"

// ExtractXi performs the ξ steep-area cluster extraction of Ankerst et
// al. (Definition 11), following the same region bookkeeping as the
// widely used scikit-learn implementation (without predecessor
// correction): steep-down areas are matched with steep-up areas to
// delimit clusters, nested clusters are emitted before their parents,
// and each point keeps the label of the smallest cluster containing
// it. minClusterSize <= 0 defaults to minPts used for the run.
func (r *Result) ExtractXi(xi float64, minPts, minClusterSize int) []int {
	n := len(r.Order)
	if minClusterSize <= 0 {
		minClusterSize = minPts
	}
	// Reachability in ordering space with a sentinel +Inf appended.
	plot := make([]float64, n+1)
	for pos, p := range r.Order {
		plot[pos] = r.Reachability[p]
	}
	plot[n] = math.Inf(1)

	clusters := xiClusters(plot, xi, minPts, minClusterSize)

	// Assign labels: earlier clusters in the list are smaller/nested;
	// a cluster is emitted only if none of its points are labeled yet.
	ordLabels := make([]int, n)
	for i := range ordLabels {
		ordLabels[i] = Noise
	}
	label := 0
	for _, c := range clusters {
		free := true
		for i := c[0]; i <= c[1]; i++ {
			if ordLabels[i] != Noise {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		for i := c[0]; i <= c[1]; i++ {
			ordLabels[i] = label
		}
		label++
	}
	labels := make([]int, n)
	for pos, p := range r.Order {
		labels[p] = ordLabels[pos]
	}
	return labels
}

type steepDownArea struct {
	start, end int
	mib        float64
}

// xiClusters finds cluster intervals [start, end] in ordering space.
func xiClusters(plot []float64, xi float64, minPts, minClusterSize int) [][2]int {
	n := len(plot) - 1 // last entry is the sentinel
	if n < 2 {
		return nil
	}
	comp := 1 - xi
	// ratio[i] = plot[i]/plot[i+1]; classified per Definition 9.
	steepUp := make([]bool, n)
	steepDown := make([]bool, n)
	up := make([]bool, n)
	down := make([]bool, n)
	for i := 0; i < n; i++ {
		a, b := plot[i], plot[i+1]
		switch {
		case math.IsInf(a, 1) && math.IsInf(b, 1):
			// undefined ratio: neither direction
		default:
			steepUp[i] = a <= b*comp
			steepDown[i] = a*comp >= b
			up[i] = a < b
			down[i] = a > b
		}
	}

	var sdas []steepDownArea
	var clusters [][2]int
	index := 0
	mib := 0.0
	for steepIdx := 0; steepIdx < n; steepIdx++ {
		if !steepUp[steepIdx] && !steepDown[steepIdx] {
			continue
		}
		if steepIdx < index {
			continue
		}
		for i := index; i <= steepIdx; i++ {
			if plot[i] > mib {
				mib = plot[i]
			}
		}
		if steepDown[steepIdx] {
			sdas = filterSdas(sdas, mib, comp, plot)
			dStart := steepIdx
			dEnd := extendRegion(steepDown, up, dStart, minPts, n)
			sdas = append(sdas, steepDownArea{start: dStart, end: dEnd})
			index = dEnd + 1
			mib = plot[index]
			continue
		}
		// Steep-up area.
		sdas = filterSdas(sdas, mib, comp, plot)
		uStart := steepIdx
		uEnd := extendRegion(steepUp, down, uStart, minPts, n)
		index = uEnd + 1
		if index <= n {
			mib = plot[index]
		}

		var uClusters [][2]int
		for _, d := range sdas {
			cStart, cEnd := d.start, uEnd
			// sc2*: the in-between maximum must be within ξ of the
			// cluster-ending reachability.
			if plot[cEnd+1]*comp < d.mib {
				continue
			}
			// Definition 11 criterion 4: trim the taller side.
			dMax := plot[d.start]
			if dMax*comp >= plot[cEnd+1] {
				for cStart < d.end && plot[cStart+1] > plot[cEnd+1] {
					cStart++
				}
			} else if plot[cEnd+1]*comp >= dMax {
				for cEnd > uStart && plot[cEnd] < dMax {
					cEnd--
				}
			}
			if cEnd-cStart+1 < minClusterSize {
				continue
			}
			if cStart > d.end {
				continue
			}
			if cEnd < uStart {
				continue
			}
			uClusters = append(uClusters, [2]int{cStart, cEnd})
		}
		// Reverse so smaller (more recent steep-down) clusters come
		// first — they nest inside earlier ones.
		for i, j := 0, len(uClusters)-1; i < j; i, j = i+1, j-1 {
			uClusters[i], uClusters[j] = uClusters[j], uClusters[i]
		}
		clusters = append(clusters, uClusters...)
	}
	return clusters
}

// filterSdas drops steep-down areas invalidated by the in-between
// maximum and refreshes the surviving areas' mib values.
func filterSdas(sdas []steepDownArea, mib, comp float64, plot []float64) []steepDownArea {
	if math.IsInf(mib, 1) {
		return nil
	}
	out := sdas[:0]
	for _, d := range sdas {
		if mib <= plot[d.start]*comp {
			if mib > d.mib {
				d.mib = mib
			}
			out = append(out, d)
		}
	}
	return out
}

// extendRegion grows a steep region from start, tolerating at most
// minPts consecutive non-steep (but still monotone) points.
func extendRegion(steep, opposite []bool, start, minPts, n int) int {
	nonSteep := 0
	end := start
	for i := start + 1; i < n; i++ {
		switch {
		case steep[i]:
			nonSteep = 0
			end = i
		case opposite[i]:
			return end
		default:
			nonSteep++
			if nonSteep > minPts {
				return end
			}
		}
	}
	return end
}
