package optics

import (
	"math"
	"testing"
)

func TestReachabilityInOrder(t *testing.T) {
	x, _ := blobs(2, 20, 15, 0.4, 20)
	res := Run(x, 5, math.Inf(1))
	plot := res.ReachabilityInOrder()
	if len(plot) != 40 {
		t.Fatalf("plot length %d", len(plot))
	}
	if !math.IsInf(plot[0], 1) {
		t.Fatalf("first ordered point should have undefined reachability, got %v", plot[0])
	}
	// Exactly one more +Inf (the jump into the second blob).
	infs := 0
	for _, v := range plot[1:] {
		if math.IsInf(v, 1) {
			infs++
		}
	}
	if infs != 0 {
		// With unbounded maxEps the second blob's entry is finite but
		// large; it must exceed every intra-blob value.
		t.Fatalf("unexpected infinite reachabilities: %d", infs)
	}
	max := 0.0
	for _, v := range plot[1:] {
		if v > max {
			max = v
		}
	}
	if max < 5 {
		t.Fatalf("no inter-blob jump in the plot: max %v", max)
	}
}

func TestXiEmptyAndConstantPlots(t *testing.T) {
	// Degenerate inputs must not panic and produce all-noise labels.
	res := &Result{}
	if got := res.ExtractXi(0.05, 5, 5); len(got) != 0 {
		t.Fatal("empty result produced labels")
	}
	// Constant reachability: no steep areas → all noise.
	res = &Result{
		Order:        []int{0, 1, 2, 3},
		Reachability: []float64{1, 1, 1, 1},
		CoreDist:     []float64{1, 1, 1, 1},
	}
	for _, l := range res.ExtractXi(0.05, 2, 2) {
		if l != Noise {
			t.Fatal("flat plot produced clusters")
		}
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	// Points too sparse for the given eps: everything is noise.
	x, _ := blobs(1, 10, 0, 20.0, 21) // huge spread
	labels := DBSCAN(x, 0.01, 5)
	for i, l := range labels {
		if l != Noise {
			t.Fatalf("sparse point %d labeled %d", i, l)
		}
	}
}

func TestARIEmpty(t *testing.T) {
	if got := ARI(nil, nil); got != 1 {
		t.Fatalf("ARI of empty labelings = %v, want 1", got)
	}
}
