package optics

import (
	"arams/internal/knn"
	"arams/internal/mat"
)

// DBSCAN clusters the rows of x with the classic density-based
// algorithm (Ester et al. 1996). It serves as an independent
// cross-check for the OPTICS eps-cut extraction: the two must produce
// the same core-point clustering for identical (eps, minPts).
func DBSCAN(x *mat.Matrix, eps float64, minPts int) []int {
	n := x.RowsN
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	if n == 0 {
		return labels
	}
	tree := knn.NewVPTree(x)
	// neighborhood includes the point itself, matching the classic
	// |N_eps(p)| >= minPts core condition.
	neighborhood := func(i int) []int {
		nbs := tree.Radius(x.Row(i), eps)
		out := make([]int, len(nbs))
		for k, nb := range nbs {
			out[k] = nb.Index
		}
		return out
	}
	visited := make([]bool, n)
	cluster := -1
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		nbs := neighborhood(i)
		if len(nbs) < minPts {
			continue // noise (may later become a border point)
		}
		cluster++
		labels[i] = cluster
		// Expand.
		queue := append([]int(nil), nbs...)
		for len(queue) > 0 {
			q := queue[0]
			queue = queue[1:]
			if labels[q] == Noise {
				labels[q] = cluster // border point
			}
			if visited[q] {
				continue
			}
			visited[q] = true
			labels[q] = cluster
			qnbs := neighborhood(q)
			if len(qnbs) >= minPts {
				queue = append(queue, qnbs...)
			}
		}
	}
	return labels
}

// ARI computes the Adjusted Rand Index between two labelings — the
// cluster-agreement score used to validate the Fig. 6 reproduction
// against the generator's ground truth. Noise points are treated as a
// singleton cluster each.
func ARI(a, b []int) float64 {
	if len(a) != len(b) {
		panic("optics: ARI length mismatch")
	}
	n := len(a)
	if n == 0 {
		return 1
	}
	// Remap noise to unique labels so it never spuriously agrees.
	ra := remapNoise(a)
	rb := remapNoise(b)
	// Contingency table.
	type cell struct{ x, y int }
	cont := map[cell]int{}
	ca := map[int]int{}
	cb := map[int]int{}
	for i := 0; i < n; i++ {
		cont[cell{ra[i], rb[i]}]++
		ca[ra[i]]++
		cb[rb[i]]++
	}
	comb2 := func(m int) float64 { return float64(m) * float64(m-1) / 2 }
	var sumCont, sumA, sumB float64
	for _, v := range cont {
		sumCont += comb2(v)
	}
	for _, v := range ca {
		sumA += comb2(v)
	}
	for _, v := range cb {
		sumB += comb2(v)
	}
	total := comb2(n)
	expected := sumA * sumB / total
	maxIdx := (sumA + sumB) / 2
	if maxIdx == expected {
		return 1
	}
	return (sumCont - expected) / (maxIdx - expected)
}

func remapNoise(labels []int) []int {
	out := make([]int, len(labels))
	next := 1 << 20
	for i, l := range labels {
		if l == Noise {
			out[i] = next
			next++
		} else {
			out[i] = l
		}
	}
	return out
}
