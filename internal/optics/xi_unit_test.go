package optics

import (
	"math"
	"testing"
)

func TestExtendRegion(t *testing.T) {
	// steep: indices 0,1 steep; 2,3 flat-up; 4 steep; 5 down.
	steep := []bool{true, true, false, false, true, false}
	opposite := []bool{false, false, false, false, false, true}
	// With minPts=3 the two non-steep points are tolerated and the
	// region extends through index 4, stopping before the downward 5.
	if got := extendRegion(steep, opposite, 0, 3, 6); got != 4 {
		t.Fatalf("extendRegion = %d, want 4", got)
	}
	// With minPts=1 the second non-steep point exceeds tolerance.
	if got := extendRegion(steep, opposite, 0, 1, 6); got != 1 {
		t.Fatalf("extendRegion tolerant = %d, want 1", got)
	}
	// Opposite-direction point terminates immediately.
	if got := extendRegion(steep, opposite, 4, 5, 6); got != 4 {
		t.Fatalf("extendRegion at 4 = %d, want 4", got)
	}
}

func TestFilterSdas(t *testing.T) {
	plot := []float64{10, 1, 1, 1}
	sdas := []steepDownArea{{start: 0, end: 1, mib: 0.5}}
	// mib below threshold: survives and mib is refreshed.
	out := filterSdas(sdas, 2.0, 0.95, plot)
	if len(out) != 1 || out[0].mib != 2.0 {
		t.Fatalf("filterSdas keep: %+v", out)
	}
	// mib above plot[start]*comp: dropped.
	out = filterSdas(out, 9.99, 0.95, plot)
	if len(out) != 0 {
		t.Fatalf("filterSdas drop: %+v", out)
	}
	// Infinite mib clears everything.
	out = filterSdas([]steepDownArea{{start: 0}}, math.Inf(1), 0.95, plot)
	if out != nil && len(out) != 0 {
		t.Fatalf("filterSdas inf: %+v", out)
	}
}

func TestXiClustersVShape(t *testing.T) {
	// A single clean valley: descent, flat bottom, ascent to sentinel.
	plot := []float64{
		10, 1, 1, 1, 1, 1, 1, 1, 1, 10, math.Inf(1),
	}
	clusters := xiClusters(plot, 0.3, 2, 3)
	if len(clusters) == 0 {
		t.Fatal("no cluster found in a clean valley")
	}
	// The widest cluster must cover the valley floor (positions 1–8).
	best := clusters[0]
	for _, c := range clusters {
		if c[1]-c[0] > best[1]-best[0] {
			best = c
		}
	}
	if best[0] > 1 || best[1] < 8 {
		t.Fatalf("valley cluster [%d,%d] does not cover the floor", best[0], best[1])
	}
}

func TestXiClustersTwoValleys(t *testing.T) {
	plot := []float64{
		10, 1, 1, 1, 1, 8, 1, 1, 1, 1, math.Inf(1),
	}
	clusters := xiClusters(plot, 0.3, 2, 3)
	// Expect at least two distinct valley clusters.
	firstValley, secondValley := false, false
	for _, c := range clusters {
		if c[0] <= 1 && c[1] >= 3 && c[1] <= 5 {
			firstValley = true
		}
		if c[0] >= 4 && c[0] <= 6 && c[1] >= 8 {
			secondValley = true
		}
	}
	if !firstValley || !secondValley {
		t.Fatalf("valleys not both found: %v", clusters)
	}
}
