// Package optics implements the OPTICS density-based clustering
// algorithm (Ankerst, Breunig, Kriegel & Sander 1999) used as the final
// stage of the paper's pipeline, together with two cluster-extraction
// methods (DBSCAN-equivalent eps cut and ξ steep-area extraction) and a
// plain DBSCAN used for cross-validation in tests.
package optics

import (
	"container/heap"
	"math"

	"arams/internal/knn"
	"arams/internal/mat"
)

// Noise is the label assigned to unclustered points.
const Noise = -1

// Result holds the OPTICS ordering and the per-point reachability and
// core distances (indexed by original point index, not ordering
// position). Unreachable/undefined distances are +Inf.
type Result struct {
	Order        []int
	Reachability []float64
	CoreDist     []float64
}

// Run computes the OPTICS ordering of the rows of x with the given
// minPts and generating radius maxEps (use math.Inf(1) for unbounded,
// as the paper's visual analysis does).
func Run(x *mat.Matrix, minPts int, maxEps float64) *Result {
	n := x.RowsN
	if minPts < 2 {
		minPts = 2
	}
	res := &Result{
		Order:        make([]int, 0, n),
		Reachability: make([]float64, n),
		CoreDist:     make([]float64, n),
	}
	for i := range res.Reachability {
		res.Reachability[i] = math.Inf(1)
		res.CoreDist[i] = math.Inf(1)
	}
	if n == 0 {
		return res
	}

	tree := knn.NewVPTree(x)
	// neighbors returns points within maxEps of i (excluding i),
	// ascending by distance.
	neighbors := func(i int) []knn.Neighbor {
		if math.IsInf(maxEps, 1) {
			return tree.KNearest(x.Row(i), n-1, i)
		}
		nbs := tree.Radius(x.Row(i), maxEps)
		out := nbs[:0]
		for _, nb := range nbs {
			if nb.Index != i {
				out = append(out, nb)
			}
		}
		return out
	}
	// coreDist: distance to the (minPts−1)-th nearest other point
	// (minPts counts the point itself), undefined if beyond maxEps.
	coreDist := func(nbs []knn.Neighbor) float64 {
		if len(nbs) < minPts-1 {
			return math.Inf(1)
		}
		d := nbs[minPts-2].Dist
		if d > maxEps {
			return math.Inf(1)
		}
		return d
	}

	processed := make([]bool, n)
	for start := 0; start < n; start++ {
		if processed[start] {
			continue
		}
		processed[start] = true
		res.Order = append(res.Order, start)
		nbs := neighbors(start)
		cd := coreDist(nbs)
		res.CoreDist[start] = cd
		if math.IsInf(cd, 1) {
			continue
		}
		seeds := newReachHeap(n)
		update(nbs, cd, processed, res, seeds)
		for seeds.Len() > 0 {
			q := seeds.popMin()
			processed[q] = true
			res.Order = append(res.Order, q)
			qnbs := neighbors(q)
			qcd := coreDist(qnbs)
			res.CoreDist[q] = qcd
			if !math.IsInf(qcd, 1) {
				update(qnbs, qcd, processed, res, seeds)
			}
		}
	}
	return res
}

// update relaxes the reachability of p's unprocessed neighbors.
func update(nbs []knn.Neighbor, coreDist float64, processed []bool, res *Result, seeds *reachHeap) {
	for _, nb := range nbs {
		if processed[nb.Index] {
			continue
		}
		newReach := math.Max(coreDist, nb.Dist)
		if newReach < res.Reachability[nb.Index] {
			res.Reachability[nb.Index] = newReach
			seeds.upsert(nb.Index, newReach)
		}
	}
}

// reachHeap is an indexed min-heap on reachability with decrease-key.
type reachHeap struct {
	items []heapItem
	pos   []int // point index -> heap position, -1 if absent
}

type heapItem struct {
	index int
	reach float64
}

func newReachHeap(n int) *reachHeap {
	h := &reachHeap{pos: make([]int, n)}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

func (h *reachHeap) Len() int { return len(h.items) }
func (h *reachHeap) Less(i, j int) bool {
	if h.items[i].reach != h.items[j].reach {
		return h.items[i].reach < h.items[j].reach
	}
	// Deterministic tie-break on index keeps orderings reproducible.
	return h.items[i].index < h.items[j].index
}
func (h *reachHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].index] = i
	h.pos[h.items[j].index] = j
}
func (h *reachHeap) Push(x interface{}) {
	item := x.(heapItem)
	h.pos[item.index] = len(h.items)
	h.items = append(h.items, item)
}
func (h *reachHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	item := old[n-1]
	h.items = old[:n-1]
	h.pos[item.index] = -1
	return item
}

func (h *reachHeap) upsert(index int, reach float64) {
	if p := h.pos[index]; p >= 0 {
		h.items[p].reach = reach
		heap.Fix(h, p)
		return
	}
	heap.Push(h, heapItem{index: index, reach: reach})
}

func (h *reachHeap) popMin() int {
	return heap.Pop(h).(heapItem).index
}

// ExtractDBSCAN cuts the reachability plot at eps, producing labels
// equivalent to DBSCAN(eps, minPts) up to border-point assignment.
// Points with reachability > eps start a new cluster if their own core
// distance is ≤ eps, otherwise they are Noise.
func (r *Result) ExtractDBSCAN(eps float64) []int {
	labels := make([]int, len(r.Reachability))
	for i := range labels {
		labels[i] = Noise
	}
	cluster := -1
	for _, p := range r.Order {
		if r.Reachability[p] > eps {
			if r.CoreDist[p] <= eps {
				cluster++
				labels[p] = cluster
			}
			continue
		}
		if cluster >= 0 {
			labels[p] = cluster
		}
	}
	return labels
}

// ReachabilityInOrder returns the reachability plot: reachability
// distances arranged in the cluster ordering — the curve whose valleys
// are clusters. Plotting tools consume this directly.
func (r *Result) ReachabilityInOrder() []float64 {
	out := make([]float64, len(r.Order))
	for pos, p := range r.Order {
		out[pos] = r.Reachability[p]
	}
	return out
}

// NumClusters returns the number of distinct non-noise labels.
func NumClusters(labels []int) int {
	seen := map[int]bool{}
	for _, l := range labels {
		if l != Noise {
			seen[l] = true
		}
	}
	return len(seen)
}
