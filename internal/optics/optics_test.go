package optics

import (
	"math"
	"testing"

	"arams/internal/mat"
	"arams/internal/rng"
)

// blobs builds k Gaussian clusters of nPer points in 2-D, centers on a
// circle of the given radius, returning points and ground-truth labels.
func blobs(k, nPer int, radius, sigma float64, seed uint64) (*mat.Matrix, []int) {
	g := rng.New(seed)
	x := mat.New(k*nPer, 2)
	labels := make([]int, k*nPer)
	for c := 0; c < k; c++ {
		angle := 2 * math.Pi * float64(c) / float64(k)
		cx, cy := radius*math.Cos(angle), radius*math.Sin(angle)
		for i := 0; i < nPer; i++ {
			idx := c*nPer + i
			x.Set(idx, 0, cx+sigma*g.Norm())
			x.Set(idx, 1, cy+sigma*g.Norm())
			labels[idx] = c
		}
	}
	return x, labels
}

func TestOrderingIsPermutation(t *testing.T) {
	x, _ := blobs(3, 30, 10, 0.5, 1)
	res := Run(x, 5, math.Inf(1))
	if len(res.Order) != x.RowsN {
		t.Fatalf("ordering length %d", len(res.Order))
	}
	seen := make([]bool, x.RowsN)
	for _, p := range res.Order {
		if seen[p] {
			t.Fatalf("point %d appears twice in ordering", p)
		}
		seen[p] = true
	}
}

func TestCoreDistances(t *testing.T) {
	x, _ := blobs(1, 50, 0, 0.5, 2)
	res := Run(x, 5, math.Inf(1))
	for i, cd := range res.CoreDist {
		if math.IsInf(cd, 1) {
			t.Fatalf("point %d has undefined core distance in a dense blob", i)
		}
		if cd < 0 {
			t.Fatalf("negative core distance at %d", i)
		}
	}
}

func TestReachabilityValleys(t *testing.T) {
	// Three tight, well-separated blobs: the reachability plot must
	// contain exactly 3 low "valleys" separated by high jumps.
	x, _ := blobs(3, 40, 20, 0.3, 3)
	res := Run(x, 5, math.Inf(1))
	jumps := 0
	for pos := 1; pos < len(res.Order); pos++ {
		r := res.Reachability[res.Order[pos]]
		if r > 5 { // far larger than intra-blob distances
			jumps++
		}
	}
	// First point of each new blob after the initial one causes a jump.
	if jumps != 2 {
		t.Fatalf("expected 2 inter-blob jumps, got %d", jumps)
	}
}

func TestExtractDBSCANRecoversBlobs(t *testing.T) {
	x, truth := blobs(4, 40, 20, 0.3, 4)
	res := Run(x, 5, math.Inf(1))
	labels := res.ExtractDBSCAN(2.0)
	if got := NumClusters(labels); got != 4 {
		t.Fatalf("found %d clusters, want 4", got)
	}
	if ari := ARI(labels, truth); ari < 0.99 {
		t.Fatalf("ARI = %v, want ~1", ari)
	}
}

func TestOpticsMatchesDBSCAN(t *testing.T) {
	// Core guarantee: cutting the OPTICS plot at eps reproduces
	// DBSCAN's clustering for the same parameters.
	x, _ := blobs(3, 35, 15, 0.5, 5)
	const eps, minPts = 1.5, 5
	res := Run(x, minPts, math.Inf(1))
	fromOptics := res.ExtractDBSCAN(eps)
	direct := DBSCAN(x, eps, minPts)
	if ari := ARI(fromOptics, direct); ari < 0.95 {
		t.Fatalf("OPTICS eps-cut diverges from DBSCAN: ARI %v", ari)
	}
	if NumClusters(fromOptics) != NumClusters(direct) {
		t.Fatalf("cluster counts differ: %d vs %d", NumClusters(fromOptics), NumClusters(direct))
	}
}

func TestExtractXiRecoversBlobs(t *testing.T) {
	x, truth := blobs(3, 50, 25, 0.4, 6)
	res := Run(x, 5, math.Inf(1))
	// minClusterSize near the blob size suppresses nested sub-leaves;
	// like scikit-learn, small minClusterSize yields a finer hierarchy.
	labels := res.ExtractXi(0.15, 5, 30)
	if got := NumClusters(labels); got != 3 {
		t.Fatalf("xi extraction found %d clusters, want 3", got)
	}
	if ari := ARI(labels, truth); ari < 0.8 {
		t.Fatalf("xi ARI = %v", ari)
	}
}

func TestNoiseDetection(t *testing.T) {
	// One dense blob plus isolated far-away points: the isolates must
	// come out as noise under an eps cut.
	g := rng.New(7)
	x := mat.New(55, 2)
	for i := 0; i < 50; i++ {
		x.Set(i, 0, g.Norm()*0.3)
		x.Set(i, 1, g.Norm()*0.3)
	}
	for i := 0; i < 5; i++ {
		x.Set(50+i, 0, 100+50*float64(i))
		x.Set(50+i, 1, -100*float64(i+1))
	}
	res := Run(x, 5, math.Inf(1))
	labels := res.ExtractDBSCAN(2.0)
	for i := 50; i < 55; i++ {
		if labels[i] != Noise {
			t.Fatalf("outlier %d labeled %d, want noise", i, labels[i])
		}
	}
	if NumClusters(labels) != 1 {
		t.Fatalf("want exactly 1 cluster, got %d", NumClusters(labels))
	}
}

func TestMaxEpsLimitsReachability(t *testing.T) {
	x, _ := blobs(2, 30, 50, 0.3, 8)
	res := Run(x, 5, 5.0)
	// With maxEps far below the blob separation, the second blob's
	// entry point keeps infinite reachability.
	infCount := 0
	for _, r := range res.Reachability {
		if math.IsInf(r, 1) {
			infCount++
		}
	}
	if infCount < 2 {
		t.Fatalf("expected >= 2 unreachable entries, got %d", infCount)
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	res := Run(mat.New(0, 2), 5, math.Inf(1))
	if len(res.Order) != 0 {
		t.Fatal("empty input produced an ordering")
	}
	one := mat.FromRows([][]float64{{1, 2}})
	res = Run(one, 5, math.Inf(1))
	if len(res.Order) != 1 {
		t.Fatal("single point not ordered")
	}
	labels := res.ExtractDBSCAN(1)
	if labels[0] != Noise {
		t.Fatal("single point should be noise (cannot be core with minPts=5)")
	}
}

func TestDBSCANBorderPoints(t *testing.T) {
	// A point just inside eps of a core point but itself not core must
	// join the cluster as a border point.
	x := mat.FromRows([][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1}, // dense core
		{0.9, 0}, // border: within eps=1 of the core, not core itself
	})
	labels := DBSCAN(x, 1.0, 4)
	if labels[4] == Noise {
		t.Fatal("border point marked as noise")
	}
	if labels[4] != labels[0] {
		t.Fatal("border point not attached to the cluster")
	}
}

func TestARIProperties(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	if got := ARI(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ARI(a,a) = %v", got)
	}
	// Permuted labels: still perfect agreement.
	b := []int{5, 5, 9, 9, 7, 7}
	if got := ARI(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ARI under relabeling = %v", got)
	}
	// Completely split vs completely merged: low score.
	c := []int{0, 1, 2, 3, 4, 5}
	d := []int{0, 0, 0, 0, 0, 0}
	if got := ARI(c, d); got > 0.01 {
		t.Fatalf("ARI of unrelated labelings = %v", got)
	}
}

func TestARIMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	ARI([]int{1}, []int{1, 2})
}

func TestRunDeterministic(t *testing.T) {
	x, _ := blobs(3, 25, 10, 0.5, 9)
	a := Run(x, 5, math.Inf(1))
	b := Run(x, 5, math.Inf(1))
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatal("OPTICS ordering not deterministic")
		}
	}
}
