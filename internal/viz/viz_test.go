package viz

import (
	"bytes"
	"strings"
	"testing"

	"arams/internal/mat"
)

func sampleEmbedding() *mat.Matrix {
	return mat.FromRows([][]float64{
		{0, 0}, {1, 1}, {2, 0.5}, {-1, 3},
	})
}

func TestFromEmbedding(t *testing.T) {
	emb := sampleEmbedding()
	p := FromEmbedding("test", emb, []int{0, 0, 1, -1}, []string{"a", "b", "c", "d"})
	if len(p.Points) != 4 {
		t.Fatalf("points = %d", len(p.Points))
	}
	if p.Points[2].Label != 1 || p.Points[2].Tooltip != "c" {
		t.Fatalf("point 2 wrong: %+v", p.Points[2])
	}
	if p.Points[3].X != -1 || p.Points[3].Y != 3 {
		t.Fatalf("coords wrong: %+v", p.Points[3])
	}
}

func TestFromEmbeddingDefaults(t *testing.T) {
	p := FromEmbedding("t", sampleEmbedding(), nil, nil)
	if p.Points[0].Label != -1 {
		t.Fatal("nil labels should default to noise")
	}
	if p.Points[1].Tooltip != "#1" {
		t.Fatalf("default tooltip = %q", p.Points[1].Tooltip)
	}
}

func TestWriteHTML(t *testing.T) {
	p := FromEmbedding("Beam run 510", sampleEmbedding(), []int{0, 1, 1, -1},
		[]string{"shot 1", "shot 2", "shot 3", "shot 4"})
	p.Subtitle = "simulated"
	var buf bytes.Buffer
	if err := p.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"Beam run 510",
		"simulated",
		"shot 3",
		`"label":1`,
		"canvas",
		"mousemove", // tooltip machinery present
		"wheel",     // zoom machinery present
	} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
}

func TestWriteHTMLEscapesTooltip(t *testing.T) {
	p := FromEmbedding("t", mat.FromRows([][]float64{{0, 0}}), nil,
		[]string{`</script><script>alert(1)</script>`})
	var buf bytes.Buffer
	if err := p.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "</script><script>alert(1)") {
		t.Fatal("tooltip not escaped — script injection possible")
	}
}

func TestWriteHTMLEmpty(t *testing.T) {
	p := &Plot{Title: "empty"}
	var buf bytes.Buffer
	if err := p.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Fatal("empty plot missing title")
	}
}

func TestFromEmbeddingPanicsOn1D(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("1-D embedding did not panic")
		}
	}()
	FromEmbedding("t", mat.New(3, 1), nil, nil)
}
