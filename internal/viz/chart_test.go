package viz

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestChartWriteHTML(t *testing.T) {
	c := &Chart{Title: "scaling", XLabel: "cores", YLabel: "ms", LogX: true, LogY: true}
	c.AddSeries("tree", []float64{1, 2, 4}, []float64{100, 55, 30})
	c.AddSeries("serial", []float64{1, 2, 4}, []float64{100, 70, 80})
	var buf bytes.Buffer
	if err := c.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	// html/template renders booleans in JS context with padding spaces.
	for _, want := range []string{"scaling", "tree", "serial", "cores", "logX =  true"} {
		if !strings.Contains(html, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestChartFiltersInvalidOnLogAxes(t *testing.T) {
	c := &Chart{Title: "t", LogY: true}
	c.AddSeries("s", []float64{1, 2, 3, 4}, []float64{10, 0, -5, math.NaN()})
	var buf bytes.Buffer
	if err := c.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	// Only the (1, 10) point survives.
	if strings.Contains(html, "-5") || strings.Contains(html, "NaN") {
		t.Fatal("invalid log-axis points not filtered")
	}
}

func TestChartMismatchedSeriesPanics(t *testing.T) {
	c := &Chart{}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series did not panic")
		}
	}()
	c.AddSeries("bad", []float64{1, 2}, []float64{1})
}

func TestChartEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	var buf bytes.Buffer
	if err := c.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
}
