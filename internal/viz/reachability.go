package viz

import (
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"math"
)

// ReachabilityPlot renders an OPTICS reachability plot — the bar chart
// whose valleys are clusters (Ankerst et al.'s signature visualization)
// — as a self-contained interactive HTML page with hover readout.
type ReachabilityPlot struct {
	Title  string
	Values []float64 // reachability in cluster order (+Inf allowed)
	Labels []int     // cluster label per ordered position (may be nil)
}

type reachBar struct {
	V     float64 `json:"v"`
	Inf   bool    `json:"inf"`
	Label int     `json:"label"`
}

// WriteHTML renders the plot.
func (p *ReachabilityPlot) WriteHTML(w io.Writer) error {
	bars := make([]reachBar, len(p.Values))
	for i, v := range p.Values {
		b := reachBar{Label: -1}
		if math.IsInf(v, 1) {
			b.Inf = true
		} else {
			b.V = v
		}
		if p.Labels != nil {
			b.Label = p.Labels[i]
		}
		bars[i] = b
	}
	data, err := json.Marshal(bars)
	if err != nil {
		return fmt.Errorf("viz: marshal reachability: %w", err)
	}
	return reachTmpl.Execute(w, map[string]interface{}{
		"Title": p.Title,
		"Data":  template.JS(data),
		"N":     len(bars),
	})
}

var reachTmpl = template.Must(template.New("reach").Parse(`<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
  body { font-family: sans-serif; margin: 20px; background: #fafafa; }
  h1 { font-size: 18px; }
  #wrap { position: relative; display: inline-block; }
  canvas { border: 1px solid #ccc; background: white; }
  #tip { position: absolute; display: none; pointer-events: none;
         background: rgba(0,0,0,0.85); color: white; padding: 4px 8px;
         border-radius: 4px; font-size: 12px; white-space: pre; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<div class="sub">{{.N}} points in cluster order; valleys are clusters, tall bars separate them</div>
<div id="wrap">
  <canvas id="c" width="1000" height="360"></canvas>
  <div id="tip"></div>
</div>
<script>
const bars = {{.Data}};
const canvas = document.getElementById('c');
const ctx = canvas.getContext('2d');
const tip = document.getElementById('tip');
function color(label) {
  if (label < 0) return '#999999';
  const hues = [210, 25, 120, 280, 55, 0, 170, 320, 90, 240];
  return 'hsl(' + hues[label % hues.length] + ',70%,45%)';
}
let maxV = 0;
for (const b of bars) if (!b.inf && b.v > maxV) maxV = b.v;
if (maxV === 0) maxV = 1;
const bw = canvas.width / Math.max(bars.length, 1);
function draw() {
  ctx.clearRect(0, 0, canvas.width, canvas.height);
  bars.forEach((b, i) => {
    const v = b.inf ? maxV * 1.05 : b.v;
    const h = v / (maxV * 1.1) * canvas.height;
    ctx.fillStyle = b.inf ? '#222222' : color(b.label);
    ctx.fillRect(i * bw, canvas.height - h, Math.max(bw - 0.5, 0.5), h);
  });
}
draw();
canvas.addEventListener('mousemove', ev => {
  const r = canvas.getBoundingClientRect();
  const i = Math.floor((ev.clientX - r.left) / bw);
  if (i < 0 || i >= bars.length) { tip.style.display = 'none'; return; }
  const b = bars[i];
  tip.style.display = 'block';
  tip.style.left = (ev.clientX - r.left + 12) + 'px';
  tip.style.top = (ev.clientY - r.top - 24) + 'px';
  tip.textContent = 'position ' + i + '\nreachability ' +
    (b.inf ? 'undefined' : b.v.toFixed(4)) +
    '\ncluster ' + (b.label < 0 ? 'noise' : b.label);
});
canvas.addEventListener('mouseleave', () => { tip.style.display = 'none'; });
</script>
</body>
</html>
`))
