package viz

import (
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"math"
)

// Chart is a multi-series XY plot (lines + markers) with optional
// logarithmic axes — the renderer behind the regenerated Fig. 1–3
// curves (error vs runtime, scaling, error vs cores).
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	Series []Series
}

// Series is one labeled curve.
type Series struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// AddSeries appends a curve; x and y must have equal length.
func (c *Chart) AddSeries(name string, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("viz: series %q has %d x but %d y", name, len(x), len(y)))
	}
	c.Series = append(c.Series, Series{Name: name, X: x, Y: y})
}

// WriteHTML renders the chart as a standalone page.
func (c *Chart) WriteHTML(w io.Writer) error {
	// Drop non-positive values on log axes so the JS never sees
	// log(0); keep the series aligned.
	series := make([]Series, 0, len(c.Series))
	for _, s := range c.Series {
		fs := Series{Name: s.Name}
		for i := range s.X {
			if c.LogX && s.X[i] <= 0 {
				continue
			}
			if c.LogY && s.Y[i] <= 0 {
				continue
			}
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) ||
				math.IsInf(s.X[i], 0) || math.IsInf(s.Y[i], 0) {
				continue
			}
			fs.X = append(fs.X, s.X[i])
			fs.Y = append(fs.Y, s.Y[i])
		}
		series = append(series, fs)
	}
	data, err := json.Marshal(series)
	if err != nil {
		return fmt.Errorf("viz: marshal chart: %w", err)
	}
	return chartTmpl.Execute(w, map[string]interface{}{
		"Title":  c.Title,
		"XLabel": c.XLabel,
		"YLabel": c.YLabel,
		"LogX":   c.LogX,
		"LogY":   c.LogY,
		"Data":   template.JS(data),
	})
}

var chartTmpl = template.Must(template.New("chart").Parse(`<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
  body { font-family: sans-serif; margin: 20px; background: #fafafa; }
  h1 { font-size: 18px; }
  #wrap { position: relative; display: inline-block; }
  canvas { border: 1px solid #ccc; background: white; }
  #tip { position: absolute; display: none; pointer-events: none;
         background: rgba(0,0,0,0.85); color: white; padding: 4px 8px;
         border-radius: 4px; font-size: 12px; white-space: pre; }
  #legend { margin-top: 8px; font-size: 13px; }
  .chip { display: inline-block; width: 18px; height: 3px; margin-right: 4px;
          vertical-align: middle; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<div id="wrap">
  <canvas id="c" width="900" height="560"></canvas>
  <div id="tip"></div>
</div>
<div id="legend"></div>
<script>
const series = {{.Data}};
const logX = {{.LogX}}, logY = {{.LogY}};
const xlabel = {{.XLabel}}, ylabel = {{.YLabel}};
const canvas = document.getElementById('c');
const ctx = canvas.getContext('2d');
const tip = document.getElementById('tip');
const M = {l: 70, r: 20, t: 15, b: 45};
const W = canvas.width - M.l - M.r, H = canvas.height - M.t - M.b;
function tx(v) { return logX ? Math.log10(v) : v; }
function ty(v) { return logY ? Math.log10(v) : v; }
let x0 = Infinity, x1 = -Infinity, y0 = Infinity, y1 = -Infinity;
for (const s of series) for (let i = 0; i < s.x.length; i++) {
  x0 = Math.min(x0, tx(s.x[i])); x1 = Math.max(x1, tx(s.x[i]));
  y0 = Math.min(y0, ty(s.y[i])); y1 = Math.max(y1, ty(s.y[i]));
}
if (!isFinite(x0)) { x0 = 0; x1 = 1; y0 = 0; y1 = 1; }
if (x1 === x0) { x1 = x0 + 1; }
if (y1 === y0) { y1 = y0 + 1; }
const px = (x1 - x0) * 0.05, py = (y1 - y0) * 0.08;
x0 -= px; x1 += px; y0 -= py; y1 += py;
function sx(v) { return M.l + (tx(v) - x0) / (x1 - x0) * W; }
function sy(v) { return M.t + H - (ty(v) - y0) / (y1 - y0) * H; }
function color(i) {
  const hues = [210, 25, 120, 280, 55, 0, 170, 320];
  return 'hsl(' + hues[i % hues.length] + ',70%,45%)';
}
function fmtTick(v, log) {
  const val = log ? Math.pow(10, v) : v;
  if (Math.abs(val) >= 1e4 || (Math.abs(val) < 1e-2 && val !== 0)) return val.toExponential(0);
  return +val.toPrecision(3);
}
function draw() {
  ctx.clearRect(0, 0, canvas.width, canvas.height);
  // Axes and grid.
  ctx.strokeStyle = '#eee';
  ctx.fillStyle = '#444';
  ctx.font = '11px sans-serif';
  const nTicks = 6;
  for (let i = 0; i <= nTicks; i++) {
    const gx = M.l + i / nTicks * W;
    const gy = M.t + i / nTicks * H;
    ctx.beginPath(); ctx.moveTo(gx, M.t); ctx.lineTo(gx, M.t + H); ctx.stroke();
    ctx.beginPath(); ctx.moveTo(M.l, gy); ctx.lineTo(M.l + W, gy); ctx.stroke();
    const xv = x0 + i / nTicks * (x1 - x0);
    const yv = y1 - i / nTicks * (y1 - y0);
    ctx.textAlign = 'center';
    ctx.fillText(fmtTick(xv, logX), gx, M.t + H + 16);
    ctx.textAlign = 'right';
    ctx.fillText(fmtTick(yv, logY), M.l - 6, gy + 4);
  }
  ctx.strokeStyle = '#888';
  ctx.strokeRect(M.l, M.t, W, H);
  ctx.textAlign = 'center';
  ctx.fillText(xlabel, M.l + W / 2, canvas.height - 8);
  ctx.save();
  ctx.translate(14, M.t + H / 2); ctx.rotate(-Math.PI / 2);
  ctx.fillText(ylabel, 0, 0);
  ctx.restore();
  // Series.
  series.forEach((s, si) => {
    ctx.strokeStyle = ctx.fillStyle = color(si);
    ctx.lineWidth = 1.6;
    ctx.beginPath();
    for (let i = 0; i < s.x.length; i++) {
      const X = sx(s.x[i]), Y = sy(s.y[i]);
      if (i === 0) ctx.moveTo(X, Y); else ctx.lineTo(X, Y);
    }
    ctx.stroke();
    for (let i = 0; i < s.x.length; i++) {
      ctx.beginPath();
      ctx.arc(sx(s.x[i]), sy(s.y[i]), 3, 0, 2 * Math.PI);
      ctx.fill();
    }
  });
}
draw();
const legend = document.getElementById('legend');
series.forEach((s, si) => {
  const span = document.createElement('span');
  span.style.marginRight = '14px';
  span.innerHTML = '<span class="chip" style="background:' + color(si) + '"></span>' + s.name;
  legend.appendChild(span);
});
canvas.addEventListener('mousemove', ev => {
  const r = canvas.getBoundingClientRect();
  const mx = ev.clientX - r.left, my = ev.clientY - r.top;
  let best = null, bd = 100;
  series.forEach((s, si) => {
    for (let i = 0; i < s.x.length; i++) {
      const dx = sx(s.x[i]) - mx, dy = sy(s.y[i]) - my;
      const d = dx * dx + dy * dy;
      if (d < bd) { bd = d; best = {s: s, i: i}; }
    }
  });
  if (best) {
    tip.style.display = 'block';
    tip.style.left = (mx + 12) + 'px';
    tip.style.top = (my + 12) + 'px';
    tip.textContent = best.s.name + '\n' + xlabel + ': ' + best.s.x[best.i] +
      '\n' + ylabel + ': ' + best.s.y[best.i];
  } else {
    tip.style.display = 'none';
  }
});
canvas.addEventListener('mouseleave', () => { tip.style.display = 'none'; });
</script>
</body>
</html>
`))
