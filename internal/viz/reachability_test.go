package viz

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestReachabilityPlotHTML(t *testing.T) {
	p := &ReachabilityPlot{
		Title:  "run 510 reachability",
		Values: []float64{math.Inf(1), 0.2, 0.3, 5.0, 0.25, 0.22},
		Labels: []int{-1, 0, 0, -1, 1, 1},
	}
	var buf bytes.Buffer
	if err := p.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{
		"run 510 reachability",
		`"inf":true`,
		`"label":1`,
		"mousemove",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestReachabilityPlotNilLabels(t *testing.T) {
	p := &ReachabilityPlot{Title: "t", Values: []float64{1, 2, 3}}
	var buf bytes.Buffer
	if err := p.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"label":-1`) {
		t.Fatal("nil labels should default to noise")
	}
}

func TestReachabilityPlotEmpty(t *testing.T) {
	p := &ReachabilityPlot{Title: "empty"}
	var buf bytes.Buffer
	if err := p.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
}
