// Package viz renders the pipeline's 2-D embeddings as self-contained
// interactive HTML files — the counterpart of the Bokeh HTML output the
// paper's artifact produces for Figs. 5 and 6 ("the html files should
// be interactive with hover tooltip functionality"). The generated page
// needs no external assets: points are embedded as JSON, drawn on a
// canvas, colored by cluster label, with pan/zoom and a hover tooltip
// showing each shot's metadata.
package viz

import (
	"encoding/json"
	"fmt"
	"html/template"
	"io"

	"arams/internal/mat"
)

// Point is one embedded observation.
type Point struct {
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	Label   int     `json:"label"` // cluster label; −1 = noise
	Tooltip string  `json:"tip"`   // free-form hover text
}

// Plot is a scatter plot specification.
type Plot struct {
	Title    string
	Subtitle string
	Points   []Point
}

// FromEmbedding assembles a Plot from an n×2 embedding, cluster labels,
// and per-point tooltips (any of labels/tips may be nil).
func FromEmbedding(title string, emb *mat.Matrix, labels []int, tips []string) *Plot {
	if emb.ColsN < 2 {
		panic(fmt.Sprintf("viz: embedding must have >= 2 columns, has %d", emb.ColsN))
	}
	p := &Plot{Title: title, Points: make([]Point, emb.RowsN)}
	for i := 0; i < emb.RowsN; i++ {
		pt := Point{X: emb.At(i, 0), Y: emb.At(i, 1), Label: -1}
		if labels != nil {
			pt.Label = labels[i]
		}
		if tips != nil {
			pt.Tooltip = tips[i]
		} else {
			pt.Tooltip = fmt.Sprintf("#%d", i)
		}
		p.Points[i] = pt
	}
	return p
}

// WriteHTML renders the plot as a standalone HTML page.
func (p *Plot) WriteHTML(w io.Writer) error {
	data, err := json.Marshal(p.Points)
	if err != nil {
		return fmt.Errorf("viz: marshal points: %w", err)
	}
	return pageTmpl.Execute(w, map[string]interface{}{
		"Title":    p.Title,
		"Subtitle": p.Subtitle,
		"Data":     template.JS(data),
		"N":        len(p.Points),
	})
}

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
  body { font-family: sans-serif; margin: 20px; background: #fafafa; }
  h1 { font-size: 18px; margin-bottom: 2px; }
  .sub { color: #666; font-size: 13px; margin-bottom: 10px; }
  #wrap { position: relative; display: inline-block; }
  canvas { border: 1px solid #ccc; background: white; cursor: crosshair; }
  #tip { position: absolute; display: none; pointer-events: none;
         background: rgba(0,0,0,0.85); color: white; padding: 4px 8px;
         border-radius: 4px; font-size: 12px; white-space: pre; z-index: 10; }
  #legend { margin-top: 8px; font-size: 12px; }
  .chip { display: inline-block; width: 10px; height: 10px;
          border-radius: 5px; margin-right: 3px; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<div class="sub">{{.Subtitle}} &mdash; {{.N}} points; scroll to zoom, drag to pan, hover for details</div>
<div id="wrap">
  <canvas id="c" width="900" height="640"></canvas>
  <div id="tip"></div>
</div>
<div id="legend"></div>
<script>
const pts = {{.Data}};
const canvas = document.getElementById('c');
const ctx = canvas.getContext('2d');
const tip = document.getElementById('tip');

// Color palette: noise gray, clusters cycle through distinct hues.
function color(label) {
  if (label < 0) return '#bbbbbb';
  const hues = [210, 25, 120, 280, 55, 0, 170, 320, 90, 240];
  return 'hsl(' + hues[label % hues.length] + ',70%,45%)';
}

// Data bounds with margin.
let minX = Infinity, maxX = -Infinity, minY = Infinity, maxY = -Infinity;
for (const p of pts) {
  minX = Math.min(minX, p.x); maxX = Math.max(maxX, p.x);
  minY = Math.min(minY, p.y); maxY = Math.max(maxY, p.y);
}
if (!isFinite(minX)) { minX = 0; maxX = 1; minY = 0; maxY = 1; }
const padX = (maxX - minX || 1) * 0.05, padY = (maxY - minY || 1) * 0.05;
minX -= padX; maxX += padX; minY -= padY; maxY += padY;

let view = {x0: minX, x1: maxX, y0: minY, y1: maxY};
function sx(x) { return (x - view.x0) / (view.x1 - view.x0) * canvas.width; }
function sy(y) { return canvas.height - (y - view.y0) / (view.y1 - view.y0) * canvas.height; }

function draw() {
  ctx.clearRect(0, 0, canvas.width, canvas.height);
  for (const p of pts) {
    ctx.fillStyle = color(p.label);
    ctx.beginPath();
    ctx.arc(sx(p.x), sy(p.y), 3.2, 0, 2 * Math.PI);
    ctx.fill();
  }
}
draw();

// Legend.
const labels = [...new Set(pts.map(p => p.label))].sort((a, b) => a - b);
const legend = document.getElementById('legend');
for (const l of labels) {
  const span = document.createElement('span');
  span.style.marginRight = '12px';
  span.innerHTML = '<span class="chip" style="background:' + color(l) + '"></span>' +
    (l < 0 ? 'noise' : 'cluster ' + l) +
    ' (' + pts.filter(p => p.label === l).length + ')';
  legend.appendChild(span);
}

// Hover tooltip: nearest point within 8 px.
canvas.addEventListener('mousemove', ev => {
  const r = canvas.getBoundingClientRect();
  const mx = ev.clientX - r.left, my = ev.clientY - r.top;
  let best = null, bestD = 64;
  for (const p of pts) {
    const dx = sx(p.x) - mx, dy = sy(p.y) - my;
    const d = dx * dx + dy * dy;
    if (d < bestD) { bestD = d; best = p; }
  }
  if (best) {
    tip.style.display = 'block';
    tip.style.left = (mx + 12) + 'px';
    tip.style.top = (my + 12) + 'px';
    tip.textContent = best.tip + '\n(' + best.x.toFixed(2) + ', ' + best.y.toFixed(2) +
      ')\ncluster: ' + (best.label < 0 ? 'noise' : best.label);
  } else {
    tip.style.display = 'none';
  }
});
canvas.addEventListener('mouseleave', () => { tip.style.display = 'none'; });

// Zoom (wheel) and pan (drag).
canvas.addEventListener('wheel', ev => {
  ev.preventDefault();
  const r = canvas.getBoundingClientRect();
  const fx = (ev.clientX - r.left) / canvas.width;
  const fy = 1 - (ev.clientY - r.top) / canvas.height;
  const cx = view.x0 + fx * (view.x1 - view.x0);
  const cy = view.y0 + fy * (view.y1 - view.y0);
  const s = ev.deltaY > 0 ? 1.15 : 1 / 1.15;
  view = {
    x0: cx - (cx - view.x0) * s, x1: cx + (view.x1 - cx) * s,
    y0: cy - (cy - view.y0) * s, y1: cy + (view.y1 - cy) * s,
  };
  draw();
});
let drag = null;
canvas.addEventListener('mousedown', ev => { drag = {x: ev.clientX, y: ev.clientY}; });
window.addEventListener('mouseup', () => { drag = null; });
window.addEventListener('mousemove', ev => {
  if (!drag) return;
  const dx = (ev.clientX - drag.x) / canvas.width * (view.x1 - view.x0);
  const dy = (ev.clientY - drag.y) / canvas.height * (view.y1 - view.y0);
  view.x0 -= dx; view.x1 -= dx; view.y0 += dy; view.y1 += dy;
  drag = {x: ev.clientX, y: ev.clientY};
  draw();
});
</script>
</body>
</html>
`))
