package audit_test

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"arams/internal/audit"
)

// auditResponse mirrors the /audit JSON document.
type auditResponse struct {
	Certificate struct {
		Rows       int     `json:"rows"`
		Ell        int     `json:"ell"`
		ShrinkMass float64 `json:"shrink_mass"`
		FrobMass   float64 `json:"frob_mass"`
	} `json:"certificate"`
	CovBound float64       `json:"cov_bound"`
	RelBound float64       `json:"rel_bound"`
	Batches  int64         `json:"batches"`
	Alarms   int64         `json:"alarms"`
	Events   []audit.Event `json:"events"`
}

func getAudit(t *testing.T, a *audit.Auditor, j *audit.Journal, target string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	audit.Handler(a, j).ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
	if rec.Code != 200 {
		t.Fatalf("GET %s: status %d", target, rec.Code)
	}
	return rec
}

// populatedAuditor produces an auditor with a certificate, a few
// journal events, and one alarm, for the handler tests to serve.
func populatedAuditor(t *testing.T) (*audit.Auditor, *audit.Journal) {
	t.Helper()
	a, j, _ := newTestAuditor(nil)
	for i := 0; i < 8; i++ {
		a.Observe(audit.Observation{Residual: 0.01, AcceptRate: math.NaN(), Cert: testCert()})
	}
	for i := 0; i < 5 && a.Alarms() == 0; i++ {
		a.Observe(audit.Observation{Residual: 0.6, AcceptRate: math.NaN(), Cert: testCert()})
	}
	if a.Alarms() == 0 {
		t.Fatal("setup failed to raise an alarm")
	}
	return a, j
}

// TestAuditHandlerJSON: the default response carries the certificate
// with derived bounds, the counters, and the journal tail.
func TestAuditHandlerJSON(t *testing.T) {
	a, _ := populatedAuditor(t)
	rec := getAudit(t, a, nil, "/audit")
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var resp auditResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}
	cert := testCert()
	if resp.Certificate.Rows != cert.Rows || resp.Certificate.Ell != cert.Ell {
		t.Fatalf("certificate = %+v, want rows=%d ell=%d", resp.Certificate, cert.Rows, cert.Ell)
	}
	if resp.CovBound != cert.CovBound() || resp.RelBound != cert.RelBound() {
		t.Fatalf("bounds = %v/%v, want %v/%v", resp.CovBound, resp.RelBound, cert.CovBound(), cert.RelBound())
	}
	if resp.Batches != a.Batches() || resp.Alarms != a.Alarms() {
		t.Fatalf("counters = %d/%d, want %d/%d", resp.Batches, resp.Alarms, a.Batches(), a.Alarms())
	}
	if len(resp.Events) == 0 {
		t.Fatal("no events served")
	}
}

// TestAuditHandlerQueryParams: kind/n/since filter the served events.
func TestAuditHandlerQueryParams(t *testing.T) {
	a, j := populatedAuditor(t)
	var resp auditResponse

	json.Unmarshal(getAudit(t, a, nil, "/audit?kind=alarm").Body.Bytes(), &resp)
	if len(resp.Events) != 1 || resp.Events[0].Kind != audit.KindAlarm {
		t.Fatalf("kind=alarm served %+v", resp.Events)
	}
	alarmSeq := resp.Events[0].Seq

	json.Unmarshal(getAudit(t, a, nil, "/audit?n=1").Body.Bytes(), &resp)
	if len(resp.Events) != 1 {
		t.Fatalf("n=1 served %d events", len(resp.Events))
	}

	json.Unmarshal(getAudit(t, a, nil, "/audit?since="+itoa(alarmSeq-1)).Body.Bytes(), &resp)
	for _, ev := range resp.Events {
		if ev.Seq <= alarmSeq-1 {
			t.Fatalf("since filter leaked seq %d", ev.Seq)
		}
	}
	if len(resp.Events) == 0 {
		t.Fatal("since filter dropped everything")
	}

	// n=0 means everything in the ring.
	json.Unmarshal(getAudit(t, a, nil, "/audit?n=0").Body.Bytes(), &resp)
	if len(resp.Events) != j.Len() {
		t.Fatalf("n=0 served %d events, ring holds %d", len(resp.Events), j.Len())
	}
}

// TestAuditHandlerTable: format=table renders the human view with the
// certificate header and the event columns.
func TestAuditHandlerTable(t *testing.T) {
	a, _ := populatedAuditor(t)
	rec := getAudit(t, a, nil, "/audit?format=table")
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	for _, want := range []string{"sketch-quality audit", "certificate:", "SEQ", "KIND", "alarm"} {
		if !strings.Contains(body, want) {
			t.Fatalf("table missing %q:\n%s", want, body)
		}
	}
}

// TestAuditHandlerJournalOnly: a nil auditor serves the journal with a
// zero certificate (the lclssim case).
func TestAuditHandlerJournalOnly(t *testing.T) {
	j := audit.NewJournal(8)
	j.Record(audit.KindSerialFallback, "degraded")
	rec := getAudit(t, nil, j, "/audit")
	var resp auditResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if resp.Batches != 0 || resp.Certificate.Rows != 0 {
		t.Fatalf("nil auditor leaked certificate state: %+v", resp)
	}
	if len(resp.Events) != 1 || resp.Events[0].Kind != audit.KindSerialFallback {
		t.Fatalf("journal-only events = %+v", resp.Events)
	}
}

func itoa(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
