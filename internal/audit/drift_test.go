package audit_test

import (
	"math"
	"testing"

	"arams/internal/audit"
	"arams/internal/rng"
)

// stationary emits n draws from a fixed N(mean, sd²) stream.
func stationary(g *rng.RNG, n int, mean, sd float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mean + sd*g.Norm()
	}
	return out
}

// detectors under test, built fresh per case so cases don't share
// state. The parameters are deliberately tight (small slack, small
// threshold) so shifts of ±0.2 are found quickly while sd=0.01 noise
// never fires.
func testDetectors() map[string]func() audit.Detector {
	return map[string]func() audit.Detector{
		"page_hinkley": func() audit.Detector { return audit.NewPageHinkley(0.02, 0.3) },
		"cusum":        func() audit.Detector { return audit.NewCUSUM(0.02, 0.3) },
	}
}

// TestDetectorStationaryNoAlarm: 2000 samples of a stationary stream
// must never alarm, for both detector kinds.
func TestDetectorStationaryNoAlarm(t *testing.T) {
	for name, mk := range testDetectors() {
		d := mk()
		g := rng.New(101)
		for i, v := range stationary(g, 2000, 0.5, 0.01) {
			if d.Update(v) {
				t.Fatalf("%s: false alarm at stationary sample %d (value %v)", name, i, v)
			}
		}
	}
}

// TestDetectorDetectsShift: a mean shift of ±0.2 after a stationary
// prefix must alarm within a bounded number of post-shift samples.
func TestDetectorDetectsShift(t *testing.T) {
	for name, mk := range testDetectors() {
		for _, shift := range []float64{0.2, -0.2} {
			d := mk()
			g := rng.New(77)
			for i, v := range stationary(g, 200, 0.5, 0.01) {
				if d.Update(v) {
					t.Fatalf("%s: false alarm during prefix at %d", name, i)
				}
			}
			fired := -1
			for i, v := range stationary(g, 50, 0.5+shift, 0.01) {
				if d.Update(v) {
					fired = i
					break
				}
			}
			if fired < 0 {
				t.Fatalf("%s: shift %+v not detected within 50 samples", name, shift)
			}
			if fired > 10 {
				t.Fatalf("%s: shift %+v detected only after %d samples", name, shift, fired)
			}
		}
	}
}

// TestDetectorWarmupSuppression: even an enormous jump must not alarm
// before MinSamples observations, however extreme the statistic.
func TestDetectorWarmupSuppression(t *testing.T) {
	for name, mk := range testDetectors() {
		d := mk()
		warm := d.State().Warmup
		if warm < 2 {
			t.Fatalf("%s: default warmup %d too small to test", name, warm)
		}
		for i := 0; i < warm-1; i++ {
			v := 0.0
			if i > 0 {
				v = 1000 // violent jump right after the first sample
			}
			if d.Update(v) {
				t.Fatalf("%s: alarm at sample %d, before warmup %d", name, i+1, warm)
			}
		}
	}
}

// TestDetectorIgnoresNonFinite: NaN and ±Inf observations are dropped
// — no alarm, no state advance — and the detector keeps working on the
// finite samples that follow.
func TestDetectorIgnoresNonFinite(t *testing.T) {
	for name, mk := range testDetectors() {
		d := mk()
		for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
			if d.Update(v) {
				t.Fatalf("%s: alarm on non-finite observation %v", name, v)
			}
		}
		if n := d.State().N; n != 0 {
			t.Fatalf("%s: non-finite observations advanced N to %d", name, n)
		}
		d.Update(0.5)
		if n := d.State().N; n != 1 {
			t.Fatalf("%s: N = %d after one finite observation, want 1", name, n)
		}
	}
}

// TestDetectorStateRoundTrip: snapshotting a detector mid-stream and
// rebuilding it via NewDetectorFromState must continue identically —
// same alarm sequence, same final state — against the original.
func TestDetectorStateRoundTrip(t *testing.T) {
	for name, mk := range testDetectors() {
		d := mk()
		g := rng.New(5)
		for _, v := range stationary(g, 120, 0.3, 0.02) {
			d.Update(v)
		}
		clone, err := audit.NewDetectorFromState(d.State())
		if err != nil {
			t.Fatalf("%s: restore: %v", name, err)
		}
		if clone.State() != d.State() {
			t.Fatalf("%s: restored state %+v != original %+v", name, clone.State(), d.State())
		}
		// Drifting suffix: both must fire at exactly the same sample.
		suffix := stationary(g, 80, 0.55, 0.02)
		for i, v := range suffix {
			a, b := d.Update(v), clone.Update(v)
			if a != b {
				t.Fatalf("%s: alarm divergence at suffix sample %d: original %v, restored %v", name, i, a, b)
			}
		}
		if clone.State() != d.State() {
			t.Fatalf("%s: final states diverged: %+v vs %+v", name, clone.State(), d.State())
		}
	}
}

// TestDetectorResetRearms: after an alarm, Reset clears the statistics
// so the detector re-arms instead of staying latched.
func TestDetectorResetRearms(t *testing.T) {
	for name, mk := range testDetectors() {
		d := mk()
		g := rng.New(9)
		for _, v := range stationary(g, 100, 0.2, 0.01) {
			d.Update(v)
		}
		fired := false
		for _, v := range stationary(g, 50, 0.6, 0.01) {
			if d.Update(v) {
				fired = true
				break
			}
		}
		if !fired {
			t.Fatalf("%s: setup shift did not fire", name)
		}
		d.Reset()
		st := d.State()
		if st.N != 0 || st.Mean != 0 || st.Pos != 0 || st.Neg != 0 {
			t.Fatalf("%s: Reset left state %+v", name, st)
		}
		// A fresh stationary stream at the new level must not re-fire.
		for i, v := range stationary(g, 200, 0.6, 0.01) {
			if d.Update(v) {
				t.Fatalf("%s: re-fired at %d after Reset on a stationary stream", name, i)
			}
		}
	}
}

// TestNewDetectorFromStateUnknownKind: unknown kinds are an error, not
// a silent fallback.
func TestNewDetectorFromStateUnknownKind(t *testing.T) {
	if _, err := audit.NewDetectorFromState(audit.DetectorState{Kind: "ewma"}); err == nil {
		t.Fatal("unknown detector kind must error")
	}
	if _, err := audit.NewDetectorFromState(audit.DetectorState{}); err == nil {
		t.Fatal("zero-value detector state must error")
	}
}
