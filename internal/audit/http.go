package audit

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"text/tabwriter"
)

// auditDump is the JSON document served at /audit.
type auditDump struct {
	// Certificate is the most recent error-bound certificate, with the
	// derived bounds pre-computed for consumers.
	Certificate  Certificate `json:"certificate"`
	CovBound     float64     `json:"cov_bound"`
	RelBound     float64     `json:"rel_bound"`
	AprioriBound float64     `json:"apriori_bound"`
	Tightening   float64     `json:"tightening"`
	Batches      int64       `json:"batches"`
	Alarms       int64       `json:"alarms"`
	Events       []Event     `json:"events"`
}

// Handler serves the audit surface: the current certificate plus the
// journal, as JSON by default or a human-readable table with
// ?format=table. Query parameters: kind (filter one event kind),
// since (sequence floor), n (last N events; default 100, 0 = all).
// auditor may be nil (journal-only processes); journal may be nil to
// use the default journal.
func Handler(auditor *Auditor, journal *Journal) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		j := journal
		if j == nil {
			if auditor != nil {
				j = auditor.Journal()
			} else {
				j = Default()
			}
		}
		q := Query{Kind: EventKind(req.URL.Query().Get("kind")), Last: 100}
		if s := req.URL.Query().Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 {
				q.Last = n
			}
		}
		if s := req.URL.Query().Get("since"); s != "" {
			if n, err := strconv.ParseInt(s, 10, 64); err == nil {
				q.SinceSeq = n
			}
		}
		dump := auditDump{Events: j.Query(q)}
		if auditor != nil {
			c := auditor.LastCertificate()
			dump.Certificate = c
			dump.CovBound = c.CovBound()
			dump.RelBound = c.RelBound()
			dump.AprioriBound = c.AprioriBound()
			dump.Tightening = c.Tightening()
			dump.Batches = auditor.Batches()
			dump.Alarms = auditor.Alarms()
		}
		if req.URL.Query().Get("format") == "table" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			writeTable(w, dump)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(dump); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

func writeTable(w http.ResponseWriter, d auditDump) {
	fmt.Fprintf(w, "sketch-quality audit\n\n")
	fmt.Fprintf(w, "certificate: rows=%d dim=%d ell=%d rotations=%d\n",
		d.Certificate.Rows, d.Certificate.Dim, d.Certificate.Ell, d.Certificate.Rotations)
	fmt.Fprintf(w, "  ‖AᵀA−BᵀB‖₂ ≤ %.6g   (relative: %.6g of stream energy,"+
		" a-priori %.6g, tightening %.3g)\n",
		d.CovBound, d.RelBound, d.AprioriBound, d.Tightening)
	fmt.Fprintf(w, "batches audited: %d   alarms: %d\n\n", d.Batches, d.Alarms)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SEQ\tTIME\tKIND\tMESSAGE\tATTRS")
	for _, ev := range d.Events {
		attrs := ""
		for i, a := range ev.Attrs {
			if i > 0 {
				attrs += " "
			}
			attrs += fmt.Sprintf("%s=%.6g", a.Key, a.Val)
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\n",
			ev.Seq, ev.Time.Format("15:04:05.000"), ev.Kind, ev.Msg, attrs)
	}
	tw.Flush()
}
