package audit_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"arams/internal/audit"
)

// TestJournalRingEviction: the ring keeps only the newest `cap` events,
// oldest-first, while Seq keeps counting across evictions.
func TestJournalRingEviction(t *testing.T) {
	j := audit.NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Record(audit.KindCertificate, "c", audit.A("i", float64(i)))
	}
	if j.Len() != 4 {
		t.Fatalf("Len = %d, want 4", j.Len())
	}
	if j.Seq() != 10 {
		t.Fatalf("Seq = %d, want 10", j.Seq())
	}
	evs := j.Events()
	if len(evs) != 4 {
		t.Fatalf("Events returned %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(7 + i); ev.Seq != want {
			t.Fatalf("event %d has Seq %d, want %d (oldest-first)", i, ev.Seq, want)
		}
	}
}

// TestJournalQuery covers the three filters and their combination.
func TestJournalQuery(t *testing.T) {
	j := audit.NewJournal(32)
	for i := 0; i < 6; i++ {
		j.Record(audit.KindCertificate, "cert")
		j.Record(audit.KindAlarm, "alarm")
	}
	if got := j.Query(audit.Query{Kind: audit.KindAlarm}); len(got) != 6 {
		t.Fatalf("kind filter returned %d, want 6", len(got))
	}
	if got := j.Query(audit.Query{SinceSeq: 10}); len(got) != 2 {
		t.Fatalf("since filter returned %d, want 2", len(got))
	}
	if got := j.Query(audit.Query{Last: 3}); len(got) != 3 || got[2].Seq != 12 {
		t.Fatalf("last filter returned %d ending at seq %d, want 3 ending at 12", len(got), got[len(got)-1].Seq)
	}
	got := j.Query(audit.Query{Kind: audit.KindAlarm, SinceSeq: 4, Last: 2})
	if len(got) != 2 || got[0].Seq != 10 || got[1].Seq != 12 {
		t.Fatalf("combined filter = %+v, want seqs [10 12]", got)
	}
}

// TestJournalSinkJSONL: every recorded event is mirrored to the sink
// as one valid JSON object per line, attributes included.
func TestJournalSinkJSONL(t *testing.T) {
	j := audit.NewJournal(8)
	var buf bytes.Buffer
	j.SetSink(&buf)
	j.Record(audit.KindAlarm, "drift alarm: residual", audit.A("value", 0.25))
	j.Record(audit.KindCertificate, "cert")
	j.SetSink(nil)
	j.Record(audit.KindCertificate, "not sunk")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink holds %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var ev audit.Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("sink line is not JSON: %v\n%s", err, lines[0])
	}
	if ev.Seq != 1 || ev.Kind != audit.KindAlarm || ev.Get("value", -1) != 0.25 {
		t.Fatalf("sink event round-tripped to %+v", ev)
	}
}

// TestJournalStateRestore: restoring into a smaller ring truncates
// oldest-first, the sequence counter carries over, and recording after
// restore continues numbering without reuse.
func TestJournalStateRestore(t *testing.T) {
	j := audit.NewJournal(8)
	for i := 0; i < 5; i++ {
		j.Record(audit.KindCertificate, "c")
	}
	st := j.State()

	small := audit.NewJournal(3)
	small.Restore(st)
	if small.Len() != 3 || small.Seq() != 5 {
		t.Fatalf("small restore: len=%d seq=%d, want 3/5", small.Len(), small.Seq())
	}
	if evs := small.Events(); evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Fatalf("small restore kept seqs %d..%d, want 3..5", evs[0].Seq, evs[2].Seq)
	}
	if ev := small.Record(audit.KindAlarm, "a"); ev.Seq != 6 {
		t.Fatalf("post-restore record got Seq %d, want 6", ev.Seq)
	}

	big := audit.NewJournal(16)
	big.Restore(st)
	if big.Len() != 5 || big.Seq() != 5 {
		t.Fatalf("big restore: len=%d seq=%d, want 5/5", big.Len(), big.Seq())
	}
	// A state whose Seq lags its events (corrupt or hand-built) must
	// still produce monotone numbering.
	lag := audit.NewJournal(4)
	lag.Restore(audit.JournalState{Seq: 1, Events: st.Events})
	if lag.Seq() != 5 {
		t.Fatalf("lagging-seq restore: Seq = %d, want 5 (max event seq)", lag.Seq())
	}
}

// TestEventGet: present and absent attribute lookups.
func TestEventGet(t *testing.T) {
	ev := audit.Event{Attrs: []audit.Attr{audit.A("x", 2), audit.A("y", 3)}}
	if ev.Get("y", -1) != 3 {
		t.Fatal("Get(y) != 3")
	}
	if ev.Get("missing", -1) != -1 {
		t.Fatal("Get(missing) did not return default")
	}
}
