package audit_test

import (
	"math"
	"testing"

	"arams/internal/audit"
	"arams/internal/obs"
	"arams/internal/sketch"
)

// newTestAuditor builds an auditor with its own journal and registry
// (nothing leaks into the process-global defaults) and fast-warmup
// detectors so tests don't need hundreds of batches.
func newTestAuditor(onAlarm func(audit.Alarm)) (*audit.Auditor, *audit.Journal, *obs.Registry) {
	j := audit.NewJournal(64)
	r := obs.NewRegistry()
	a := audit.New(audit.Config{
		Residual:  &audit.PageHinkley{Delta: 0.01, Lambda: 0.05, MinSamples: 5},
		Accept:    &audit.PageHinkley{Delta: 0.01, Lambda: 0.05, MinSamples: 5},
		Journal:   j,
		Registry:  r,
		OnAlarm:   onAlarm,
		CertEvery: 4,
	})
	return a, j, r
}

func testCert() audit.Certificate {
	return audit.Certificate{Rows: 100, Dim: 10, Ell: 5, Rotations: 7, ShrinkMass: 2, FrobMass: 50}
}

// TestAuditorObserveBatchDerivesSignals: the residual proxy is
// DeltaAdded/KeptMass, the acceptance rate comes from BatchStats, and
// both land on the registry gauges alongside the certificate bounds.
func TestAuditorObserveBatchDerivesSignals(t *testing.T) {
	a, _, r := newTestAuditor(nil)
	cert := testCert()
	a.ObserveBatch(sketch.BatchStats{
		Rows: 8, Kept: 6, TotalMass: 20, KeptMass: 10, DeltaAdded: 1,
	}, cert)

	if a.Batches() != 1 {
		t.Fatalf("Batches = %d, want 1", a.Batches())
	}
	if got := a.LastCertificate(); got != cert {
		t.Fatalf("LastCertificate = %+v, want %+v", got, cert)
	}
	for name, want := range map[string]float64{
		"arams_audit_batch_residual": 0.1, // 1/10
		"arams_audit_accept_rate":    0.5, // 10/20
		"arams_audit_cov_bound":      cert.CovBound(),
		"arams_audit_rel_bound":      cert.RelBound(),
	} {
		if got := r.Gauge(name).Value(); math.Abs(got-want) > 1e-12 {
			t.Fatalf("gauge %s = %v, want %v", name, got, want)
		}
	}
}

// TestAuditorAlarmFlow: a residual jump after a stationary prefix must
// raise exactly the typed alarm — journaled, counted on the registry,
// and delivered to the OnAlarm callback with the journal sequence.
func TestAuditorAlarmFlow(t *testing.T) {
	var alarms []audit.Alarm
	a, j, r := newTestAuditor(func(al audit.Alarm) { alarms = append(alarms, al) })
	for i := 0; i < 10; i++ {
		a.Observe(audit.Observation{Residual: 0.01, AcceptRate: math.NaN(), Cert: testCert()})
	}
	if a.Alarms() != 0 || len(alarms) != 0 {
		t.Fatalf("false alarms on a flat stream: %d", a.Alarms())
	}
	for i := 0; i < 5 && a.Alarms() == 0; i++ {
		a.Observe(audit.Observation{Residual: 0.5, AcceptRate: math.NaN(), Cert: testCert()})
	}
	if a.Alarms() != 1 || len(alarms) != 1 {
		t.Fatalf("alarms = %d (callback %d), want 1", a.Alarms(), len(alarms))
	}
	al := alarms[0]
	if al.Signal != "residual" || al.Value != 0.5 {
		t.Fatalf("alarm = %+v, want residual/0.5", al)
	}
	evs := j.Query(audit.Query{Kind: audit.KindAlarm})
	if len(evs) != 1 || evs[0].Seq != al.Seq {
		t.Fatalf("journal alarm events = %+v, want one with seq %d", evs, al.Seq)
	}
	if got := r.Counter("arams_audit_alarms_total", obs.L("signal", "residual")).Value(); got != 1 {
		t.Fatalf("alarm counter = %v, want 1", got)
	}
	// NaN acceptance rates skipped the accept detector entirely.
	if n := a.State().Accept.N; n != 0 {
		t.Fatalf("accept detector consumed %d NaN observations", n)
	}
}

// TestAuditorAcceptRateAlarm: the acceptance-rate signal raises its own
// typed alarm when sampling behavior drifts.
func TestAuditorAcceptRateAlarm(t *testing.T) {
	var alarms []audit.Alarm
	a, _, _ := newTestAuditor(func(al audit.Alarm) { alarms = append(alarms, al) })
	for i := 0; i < 10; i++ {
		a.Observe(audit.Observation{Residual: 0.01, AcceptRate: 0.9, Cert: testCert()})
	}
	for i := 0; i < 5 && len(alarms) == 0; i++ {
		a.Observe(audit.Observation{Residual: 0.01, AcceptRate: 0.3, Cert: testCert()})
	}
	if len(alarms) != 1 || alarms[0].Signal != "accept_rate" {
		t.Fatalf("alarms = %+v, want one accept_rate alarm", alarms)
	}
}

// TestAuditorCertificateCadence: certificates are journaled every
// CertEvery batches, not per batch.
func TestAuditorCertificateCadence(t *testing.T) {
	a, j, _ := newTestAuditor(nil)
	for i := 0; i < 9; i++ { // CertEvery = 4 → certs at batches 4 and 8
		a.Observe(audit.Observation{Residual: 0.01, AcceptRate: math.NaN(), Cert: testCert()})
	}
	evs := j.Query(audit.Query{Kind: audit.KindCertificate})
	if len(evs) != 2 {
		t.Fatalf("certificate events = %d, want 2", len(evs))
	}
	if evs[0].Get("cov_bound", -1) != testCert().CovBound() {
		t.Fatalf("certificate event attrs = %+v", evs[0].Attrs)
	}
}

// TestAuditorStateRoundTrip: State/Restore carries the counters and
// the exact detector internals, so a restored auditor continues the
// alarm sequence identically.
func TestAuditorStateRoundTrip(t *testing.T) {
	a, _, _ := newTestAuditor(nil)
	for i := 0; i < 7; i++ {
		a.Observe(audit.Observation{Residual: 0.02, AcceptRate: 0.8, Cert: testCert()})
	}
	st := a.State()

	b, _, _ := newTestAuditor(nil)
	b.Restore(st)
	if b.Batches() != a.Batches() || b.Alarms() != a.Alarms() {
		t.Fatalf("restored counters %d/%d, want %d/%d", b.Batches(), b.Alarms(), a.Batches(), a.Alarms())
	}
	if b.State() != st {
		t.Fatalf("restored state %+v != snapshot %+v", b.State(), st)
	}
	// Both observe the same drifting suffix: alarm counts must agree.
	for i := 0; i < 10; i++ {
		o := audit.Observation{Residual: 0.4, AcceptRate: 0.8, Cert: testCert()}
		a.Observe(o)
		b.Observe(o)
	}
	if a.Alarms() != b.Alarms() {
		t.Fatalf("post-restore alarm counts diverged: %d vs %d", a.Alarms(), b.Alarms())
	}
}

// TestAuditorRestoreUnknownDetectors: a zero-value State (pre-audit
// checkpoint) restores the counters but keeps the configured detectors.
func TestAuditorRestoreUnknownDetectors(t *testing.T) {
	a, _, _ := newTestAuditor(nil)
	a.Restore(audit.State{Batches: 7, Alarms: 2})
	if a.Batches() != 7 || a.Alarms() != 2 {
		t.Fatalf("counters = %d/%d, want 7/2", a.Batches(), a.Alarms())
	}
	if kind := a.State().Residual.Kind; kind != "page_hinkley" {
		t.Fatalf("residual detector replaced by %q", kind)
	}
}

// TestAuditorZeroConfigDefaults: the zero Config is usable and wires
// the default journal.
func TestAuditorZeroConfigDefaults(t *testing.T) {
	a := audit.New(audit.Config{Registry: obs.NewRegistry()})
	if a.Journal() != audit.Default() {
		t.Fatal("zero config did not wire the default journal")
	}
	st := a.State()
	if st.Residual.Kind != "page_hinkley" || st.Accept.Kind != "page_hinkley" {
		t.Fatalf("default detectors = %q/%q", st.Residual.Kind, st.Accept.Kind)
	}
}
