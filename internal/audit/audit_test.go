package audit_test

import (
	"math"
	"testing"
	"time"

	"arams/internal/audit"
	"arams/internal/mat"
	"arams/internal/rng"
	"arams/internal/sketch"
)

// certSlack is the numeric headroom allowed between the exact spectral
// norm (power iteration, ~1e-10 relative) and the certified bound,
// scaled by the stream energy so the tolerance is meaningful at any
// data scale.
func certSlack(c audit.Certificate) float64 { return 1e-8 * (1 + c.FrobMass) }

// TestCertificateSerialFDGroundTruth checks the certificate against
// exact arithmetic: for a serially-built Frequent Directions sketch,
// the true ‖AᵀA − BᵀB‖₂ (no sampling, computed by power iteration on
// the full data) must not exceed the certified CovBound, which in turn
// must not exceed the a-priori ‖A‖_F²/ℓ worst case.
func TestCertificateSerialFDGroundTruth(t *testing.T) {
	for _, tc := range []struct{ n, d, ell int }{
		{80, 8, 4},
		{150, 12, 6},
		{200, 20, 5},
		{64, 6, 3},
	} {
		g := rng.New(uint64(tc.n*1000 + tc.d))
		x := mat.RandGaussian(tc.n, tc.d, g)
		fd := sketch.NewFrequentDirections(tc.ell, tc.d, sketch.Options{})
		fd.AppendMatrix(x)
		cert := audit.FromSketch(fd)

		exact := sketch.CovErr(x, fd.Sketch())
		if exact > cert.CovBound()+certSlack(cert) {
			t.Fatalf("n=%d d=%d ℓ=%d: exact error %v exceeds certified bound %v",
				tc.n, tc.d, tc.ell, exact, cert.CovBound())
		}
		if cert.CovBound() > cert.AprioriBound()+certSlack(cert) {
			t.Fatalf("online bound %v exceeds a-priori bound %v", cert.CovBound(), cert.AprioriBound())
		}
		wantMass := x.FrobeniusNormSq()
		if math.Abs(cert.FrobMass-wantMass) > 1e-9*(1+wantMass) {
			t.Fatalf("FrobMass = %v, want ‖A‖_F² = %v", cert.FrobMass, wantMass)
		}
		if cert.Rows != tc.n || cert.Dim != tc.d || cert.Ell != tc.ell {
			t.Fatalf("certificate shape %d×%d ℓ=%d, want %d×%d ℓ=%d",
				cert.Rows, cert.Dim, cert.Ell, tc.n, tc.d, tc.ell)
		}
		if got, want := cert.RelBound(), cert.ShrinkMass/cert.FrobMass; got != want {
			t.Fatalf("RelBound = %v, want %v", got, want)
		}
		if got, want := cert.Tightening(), cert.CovBound()/cert.AprioriBound(); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Tightening = %v, want %v", got, want)
		}
	}
}

// TestCertificateRankAdaptiveGroundTruth runs the same exactness check
// through the rank-adaptive ARAMS stack (β = 1, so no sampling: the
// sketch summarizes exactly the data we compare against). Rank growth
// must not break the certified bound.
func TestCertificateRankAdaptiveGroundTruth(t *testing.T) {
	const n, d = 240, 16
	g := rng.New(42)
	x := mat.RandGaussian(n, d, g)
	a := sketch.NewARAMS(sketch.Config{
		Ell0: 4, Beta: 1, Seed: 9, RankAdaptive: true, Eps: 0.2, Nu: 4,
	}, d, n)
	// Feed in uneven batches so growth happens mid-stream.
	for lo := 0; lo < n; {
		hi := lo + 30
		if hi > n {
			hi = n
		}
		a.ProcessBatch(x.Rows(lo, hi))
		lo = hi
	}
	cert := audit.FromSketch(a.FD())
	exact := sketch.CovErr(x, a.Sketch())
	if exact > cert.CovBound()+certSlack(cert) {
		t.Fatalf("rank-adaptive exact error %v exceeds certified bound %v (ℓ ended at %d)",
			exact, cert.CovBound(), cert.Ell)
	}
	wantMass := x.FrobeniusNormSq()
	if math.Abs(cert.FrobMass-wantMass) > 1e-9*(1+wantMass) {
		t.Fatalf("rank-adaptive FrobMass = %v, want %v", cert.FrobMass, wantMass)
	}
	if cert.Rows != n {
		t.Fatalf("rank-adaptive certificate rows = %d, want %d", cert.Rows, n)
	}
}

// TestCertificateEmptySketch pins the degenerate case: a sketch that
// has seen nothing certifies a zero bound with no NaNs anywhere.
func TestCertificateEmptySketch(t *testing.T) {
	fd := sketch.NewFrequentDirections(4, 8, sketch.Options{})
	cert := audit.FromSketch(fd)
	for name, v := range map[string]float64{
		"CovBound":     cert.CovBound(),
		"RelBound":     cert.RelBound(),
		"AprioriBound": cert.AprioriBound(),
		"Tightening":   cert.Tightening(),
	} {
		if v != 0 || math.IsNaN(v) {
			t.Fatalf("empty sketch %s = %v, want 0", name, v)
		}
	}
}

// TestCertificateCompose checks the mergeability composition: the
// composed child statement is a valid conservative account of the
// merged sketch — masses and rows add, and the live merged sketch's
// shrinkage is at least the composed children's (merge rotations only
// add shrinkage).
func TestCertificateCompose(t *testing.T) {
	const n, d, ell = 180, 10, 5
	g := rng.New(7)
	x := mat.RandGaussian(n, d, g)
	cuts := []int{0, 50, 130, n}

	var children []audit.Certificate
	var shards []*sketch.FrequentDirections
	for i := 0; i+1 < len(cuts); i++ {
		fd := sketch.NewFrequentDirections(ell, d, sketch.Options{})
		fd.AppendMatrix(x.Rows(cuts[i], cuts[i+1]))
		shards = append(shards, fd)
		children = append(children, audit.FromSketch(fd))
	}
	composed := audit.Compose(children...)
	if composed.Rows != n {
		t.Fatalf("composed rows = %d, want %d", composed.Rows, n)
	}
	wantMass := x.FrobeniusNormSq()
	if math.Abs(composed.FrobMass-wantMass) > 1e-9*(1+wantMass) {
		t.Fatalf("composed FrobMass = %v, want %v", composed.FrobMass, wantMass)
	}
	var wantShrink float64
	for _, c := range children {
		wantShrink += c.ShrinkMass
	}
	if math.Abs(composed.ShrinkMass-wantShrink) > 1e-12*(1+wantShrink) {
		t.Fatalf("composed ShrinkMass = %v, want Σ children = %v", composed.ShrinkMass, wantShrink)
	}

	acc := shards[0]
	for _, fd := range shards[1:] {
		acc.Merge(fd)
		acc.Compact()
	}
	merged := audit.FromSketch(acc)
	if merged.ShrinkMass < composed.ShrinkMass-1e-12*(1+composed.ShrinkMass) {
		t.Fatalf("merged ShrinkMass %v below composed children %v — merge lost shrinkage",
			merged.ShrinkMass, composed.ShrinkMass)
	}
	if math.Abs(merged.FrobMass-composed.FrobMass) > 1e-9*(1+wantMass) {
		t.Fatalf("merged FrobMass %v != composed %v", merged.FrobMass, composed.FrobMass)
	}
	if merged.Rows != composed.Rows {
		t.Fatalf("merged rows %d != composed %d", merged.Rows, composed.Rows)
	}
	// The merged sketch's certificate still bounds the exact error.
	exact := sketch.CovErr(x, acc.Sketch())
	if exact > merged.CovBound()+certSlack(merged) {
		t.Fatalf("merged exact error %v exceeds bound %v", exact, merged.CovBound())
	}
}

// TestComposeTracksMaxima pins the non-additive fields: rank and
// dimension compose as maxima, the timestamp as the latest.
func TestComposeTracksMaxima(t *testing.T) {
	t1 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	t2 := t1.Add(time.Hour)
	c := audit.Compose(
		audit.Certificate{Ell: 4, Dim: 8, Time: t2},
		audit.Certificate{Ell: 9, Dim: 6, Time: t1},
	)
	if c.Ell != 9 || c.Dim != 8 || !c.Time.Equal(t2) {
		t.Fatalf("composed ℓ=%d dim=%d time=%v, want ℓ=9 dim=8 time=%v", c.Ell, c.Dim, c.Time, t2)
	}
}
