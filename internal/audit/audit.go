// Package audit is the sketch-quality layer of the monitoring system:
// where internal/obs answers "how fast is the pipeline running", audit
// answers the question the paper actually cares about — "is the sketch
// still accurate right now?".
//
// Frequent Directions makes that answerable online for free. Every
// shrink rotation subtracts δ = σ_ℓ² from the retained spectrum, and
// Liberty's analysis certifies ‖AᵀA − BᵀB‖₂ ≤ Σδ for the accumulated
// shrinkage mass — a data-dependent, provable covariance-error bound
// that costs nothing beyond a running sum the sketch already keeps.
// The mergeability result of Ghashami et al. makes the certificate
// compositional: merging sketches adds their shrinkage masses (plus
// whatever the merge rotations shrink), so the bound survives every
// arity and order of the tree merge in internal/parallel, including
// re-sketch recovery of lost legs.
//
// The package provides three cooperating pieces:
//
//   - Certificate: the per-sketch error-bound statement (absolute
//     bound Σδ, relative bound Σδ/‖A‖_F², the a-priori bound ‖A‖_F²/ℓ
//     it tightens, and the rank/ℓ trajectory), extracted from any
//     FrequentDirections sketch and composable across merges.
//   - Drift detectors (Page-Hinkley, CUSUM) over per-batch projection
//     residuals and priority-sampling acceptance rates, raising typed
//     alarms when the stream departs from the sketched subspace.
//   - A bounded structured event Journal (ring + optional JSONL sink)
//     recording certificates, alarms, rank growth, merge recoveries,
//     and checkpoint events, served over HTTP at /audit and summarized
//     as sparklines on /statusz via the obs time-series ring.
package audit

import (
	"math"
	"time"

	"arams/internal/sketch"
)

// Certificate is a provable online accuracy statement about one
// Frequent Directions sketch, valid for the stream the sketch has
// summarized (for ARAMS with β < 1, that is the post-sampling stream).
type Certificate struct {
	// Rows is the number of stream rows the sketch summarizes.
	Rows int `json:"rows"`
	// Dim is the feature dimension d.
	Dim int `json:"dim"`
	// Ell is the current number of retained directions.
	Ell int `json:"ell"`
	// Rotations is the number of shrink steps performed.
	Rotations int `json:"rotations"`
	// ShrinkMass is the accumulated shrinkage Σδ: the certified bound
	// ‖AᵀA − BᵀB‖₂ ≤ ShrinkMass (Liberty 2013). Composes additively
	// across merges.
	ShrinkMass float64 `json:"shrink_mass"`
	// FrobMass is the accumulated squared Frobenius norm ‖A‖_F² of the
	// summarized stream. Zero when unknown (e.g. a sketch restored from
	// a pre-audit checkpoint), in which case the relative bounds are
	// reported as NaN-free zeros.
	FrobMass float64 `json:"frob_mass"`
	// Time stamps when the certificate was cut.
	Time time.Time `json:"time"`
}

// FromSketch extracts the current certificate of a sketch.
func FromSketch(fd *sketch.FrequentDirections) Certificate {
	return Certificate{
		Rows:       fd.Seen(),
		Dim:        fd.Dim(),
		Ell:        fd.Ell(),
		Rotations:  fd.Rotations(),
		ShrinkMass: fd.Delta(),
		FrobMass:   fd.FrobMass(),
		Time:       time.Now(),
	}
}

// CovBound returns the certified covariance-error bound
// ‖AᵀA − BᵀB‖₂ ≤ Σδ.
func (c Certificate) CovBound() float64 { return c.ShrinkMass }

// RelBound returns the scale-free certificate Σδ/‖A‖_F² — the fraction
// of the stream's total energy the sketch may have lost in any single
// direction. Returns 0 when the stream energy is unknown or zero.
func (c Certificate) RelBound() float64 {
	if c.FrobMass <= 0 {
		return 0
	}
	return c.ShrinkMass / c.FrobMass
}

// AprioriBound returns the classical Frequent Directions worst case
// ‖A‖_F²/ℓ the online certificate tightens; Tightening reports by how
// much.
func (c Certificate) AprioriBound() float64 {
	if c.Ell <= 0 {
		return 0
	}
	return c.FrobMass / float64(c.Ell)
}

// Tightening returns CovBound/AprioriBound — how much sharper the
// online certificate is than the a-priori analysis (≤ 1 up to
// rank-growth effects; small is good). Returns 0 when the a-priori
// bound is unknown.
func (c Certificate) Tightening() float64 {
	ap := c.AprioriBound()
	if ap <= 0 || math.IsNaN(ap) {
		return 0
	}
	return c.ShrinkMass / ap
}

// Compose folds child certificates into one parent statement without
// touching a sketch: rows and stream energies add, shrinkage masses
// add (the mergeability bound), and the rank is the maximum — exactly
// what a tree-merge leg produces when it folds its children, minus the
// extra shrinkage of the merge rotations themselves (the live sketch
// accounts for those; Compose is the conservative statement available
// before the merge runs, and the invariant merged.ShrinkMass ≥
// Compose(children).ShrinkMass − ε is what the property tests pin).
func Compose(children ...Certificate) Certificate {
	var out Certificate
	for _, c := range children {
		out.Rows += c.Rows
		out.ShrinkMass += c.ShrinkMass
		out.FrobMass += c.FrobMass
		out.Rotations += c.Rotations
		if c.Ell > out.Ell {
			out.Ell = c.Ell
		}
		if c.Dim > out.Dim {
			out.Dim = c.Dim
		}
		if c.Time.After(out.Time) {
			out.Time = c.Time
		}
	}
	return out
}
