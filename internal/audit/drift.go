package audit

import (
	"fmt"
	"math"
)

// Detector is a sequential change-point detector over a scalar stream:
// feed one value per batch, get true back when the stream's mean has
// drifted. Implementations are not safe for concurrent use — the
// Auditor serializes access.
type Detector interface {
	// Update consumes one observation and reports whether the detector
	// is in alarm after it.
	Update(v float64) bool
	// Reset clears the accumulated statistics (typically after an alarm
	// has been handled, so the detector re-arms instead of re-firing).
	Reset()
	// State returns a plain-data snapshot suitable for checkpointing.
	State() DetectorState
}

// DetectorState is the checkpointable snapshot of a detector: enough
// plain floats to resume either detector kind exactly where it left
// off across a crash/restore cycle.
type DetectorState struct {
	Kind   string  // "page_hinkley" | "cusum"
	Thresh float64 // λ (Page-Hinkley) or h (CUSUM)
	Slack  float64 // δ (Page-Hinkley) or k (CUSUM)
	Warmup int     // MinSamples
	N      int     // observations consumed
	Mean   float64 // running mean
	Pos    float64 // upward statistic (m_T or g⁺)
	PosExt float64 // min m_T (Page-Hinkley only)
	Neg    float64 // downward statistic (m̃_T or g⁻)
	NegExt float64 // max m̃_T (Page-Hinkley only)
}

// NewDetectorFromState reconstructs a detector from a checkpointed
// snapshot.
func NewDetectorFromState(st DetectorState) (Detector, error) {
	switch st.Kind {
	case "page_hinkley":
		d := &PageHinkley{Delta: st.Slack, Lambda: st.Thresh, MinSamples: st.Warmup}
		d.n, d.mean = st.N, st.Mean
		d.mPos, d.minPos = st.Pos, st.PosExt
		d.mNeg, d.maxNeg = st.Neg, st.NegExt
		return d, nil
	case "cusum":
		d := &CUSUM{K: st.Slack, H: st.Thresh, MinSamples: st.Warmup}
		d.n, d.mean = st.N, st.Mean
		d.gPos, d.gNeg = st.Pos, st.Neg
		return d, nil
	}
	return nil, fmt.Errorf("audit: unknown detector kind %q", st.Kind)
}

// PageHinkley is the two-sided Page-Hinkley test: it tracks the
// cumulative deviation of the stream from its running mean (minus a
// slack δ that absorbs benign wander) and alarms when the gap between
// the cumulative statistic and its historical extremum exceeds λ.
// Classic choice for drift over per-batch residuals: O(1) state, no
// window, and λ directly trades detection delay for false alarms.
type PageHinkley struct {
	// Delta is the per-sample slack δ: drifts smaller than δ per batch
	// are absorbed rather than accumulated.
	Delta float64
	// Lambda is the alarm threshold λ on the accumulated deviation.
	Lambda float64
	// MinSamples suppresses alarms until this many observations have
	// been consumed (the running mean is meaningless before that).
	MinSamples int

	n            int
	mean         float64
	mPos, minPos float64 // upward-shift statistic and its running min
	mNeg, maxNeg float64 // downward-shift statistic and its running max
}

// NewPageHinkley builds a two-sided Page-Hinkley detector with slack
// delta, threshold lambda, and a 30-observation warmup.
func NewPageHinkley(delta, lambda float64) *PageHinkley {
	return &PageHinkley{Delta: delta, Lambda: lambda, MinSamples: 30}
}

// Update consumes one observation and reports alarm state.
func (d *PageHinkley) Update(v float64) bool {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return false // never let a degenerate batch poison the statistic
	}
	d.n++
	d.mean += (v - d.mean) / float64(d.n)
	d.mPos += v - d.mean - d.Delta
	if d.mPos < d.minPos {
		d.minPos = d.mPos
	}
	d.mNeg += v - d.mean + d.Delta
	if d.mNeg > d.maxNeg {
		d.maxNeg = d.mNeg
	}
	if d.n < d.MinSamples {
		return false
	}
	return d.mPos-d.minPos > d.Lambda || d.maxNeg-d.mNeg > d.Lambda
}

// Reset clears the statistics (parameters are kept).
func (d *PageHinkley) Reset() {
	d.n, d.mean = 0, 0
	d.mPos, d.minPos, d.mNeg, d.maxNeg = 0, 0, 0, 0
}

// State snapshots the detector for checkpointing.
func (d *PageHinkley) State() DetectorState {
	return DetectorState{
		Kind: "page_hinkley", Thresh: d.Lambda, Slack: d.Delta, Warmup: d.MinSamples,
		N: d.n, Mean: d.mean,
		Pos: d.mPos, PosExt: d.minPos,
		Neg: d.mNeg, NegExt: d.maxNeg,
	}
}

// CUSUM is a two-sided self-starting cumulative-sum detector: g⁺ and
// g⁻ accumulate deviations beyond a slack k from the running mean and
// clamp at zero, alarming when either exceeds h. Compared to
// Page-Hinkley it re-arms faster after transients (the clamped sums
// drain back to zero on their own).
type CUSUM struct {
	// K is the per-sample slack (half the shift magnitude one wants to
	// detect, in the classical parameterization).
	K float64
	// H is the alarm threshold on the clamped cumulative sums.
	H float64
	// MinSamples suppresses alarms during mean warmup.
	MinSamples int

	n          int
	mean       float64
	gPos, gNeg float64
}

// NewCUSUM builds a two-sided CUSUM detector with slack k, threshold
// h, and a 30-observation warmup.
func NewCUSUM(k, h float64) *CUSUM {
	return &CUSUM{K: k, H: h, MinSamples: 30}
}

// Update consumes one observation and reports alarm state.
func (d *CUSUM) Update(v float64) bool {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return false
	}
	d.n++
	d.mean += (v - d.mean) / float64(d.n)
	d.gPos = math.Max(0, d.gPos+v-d.mean-d.K)
	d.gNeg = math.Max(0, d.gNeg+d.mean-v-d.K)
	if d.n < d.MinSamples {
		return false
	}
	return d.gPos > d.H || d.gNeg > d.H
}

// Reset clears the statistics (parameters are kept).
func (d *CUSUM) Reset() {
	d.n, d.mean, d.gPos, d.gNeg = 0, 0, 0, 0
}

// State snapshots the detector for checkpointing.
func (d *CUSUM) State() DetectorState {
	return DetectorState{
		Kind: "cusum", Thresh: d.H, Slack: d.K, Warmup: d.MinSamples,
		N: d.n, Mean: d.mean, Pos: d.gPos, Neg: d.gNeg,
	}
}
