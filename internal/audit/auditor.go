package audit

import (
	"math"
	"sync"

	"arams/internal/obs"
	"arams/internal/sketch"
)

// Alarm is one typed drift alarm raised by an Auditor.
type Alarm struct {
	// Seq is the journal sequence number of the alarm event.
	Seq int64 `json:"seq"`
	// Signal names the drifting stream: "residual" (per-batch
	// projection-residual proxy) or "accept_rate" (priority-sampling
	// acceptance mass rate).
	Signal string `json:"signal"`
	// Value is the observation that tripped the detector.
	Value float64 `json:"value"`
	// Batch is the auditor's batch counter at alarm time.
	Batch int64 `json:"batch"`
}

// Config parameterizes an Auditor. The zero value is usable: default
// detectors, the default journal, the default obs registry.
type Config struct {
	// Residual detects drift in the per-batch shrinkage-residual
	// fraction (the share of each batch's energy the sketch could not
	// retain). Defaults to NewPageHinkley(0.005, 0.5).
	Residual Detector
	// Accept detects drift in the priority-sampling acceptance mass
	// rate. Defaults to NewPageHinkley(0.01, 1.0).
	Accept Detector
	// Journal receives certificate and alarm events. Defaults to
	// Default().
	Journal *Journal
	// Registry receives gauges and sparkline series. Defaults to
	// obs.Default().
	Registry *obs.Registry
	// OnAlarm, when set, is called synchronously for every alarm after
	// it has been journaled.
	OnAlarm func(Alarm)
	// CertEvery journals a full certificate event every N observed
	// batches (alarms are always journaled). Default 16; negative
	// disables certificate journaling.
	CertEvery int
}

// Auditor turns per-batch sketch statistics into quality telemetry: it
// maintains the running error-bound certificate, drives the drift
// detectors, journals certificates and alarms, and feeds the obs
// gauges/series behind /statusz. All methods are safe for concurrent
// use.
type Auditor struct {
	mu       sync.Mutex
	resDet   Detector
	accDet   Detector
	journal  *Journal
	reg      *obs.Registry
	onAlarm  func(Alarm)
	certEach int

	batches  int64
	alarms   int64
	lastCert Certificate
	lastRes  float64
	lastAcc  float64
}

// New creates an Auditor from cfg (zero-value fields get defaults).
func New(cfg Config) *Auditor {
	a := &Auditor{
		resDet:   cfg.Residual,
		accDet:   cfg.Accept,
		journal:  cfg.Journal,
		reg:      cfg.Registry,
		onAlarm:  cfg.OnAlarm,
		certEach: cfg.CertEvery,
	}
	if a.resDet == nil {
		a.resDet = NewPageHinkley(0.005, 0.5)
	}
	if a.accDet == nil {
		a.accDet = NewPageHinkley(0.01, 1.0)
	}
	if a.journal == nil {
		a.journal = Default()
	}
	if a.reg == nil {
		a.reg = obs.Default()
	}
	if a.certEach == 0 {
		a.certEach = 16
	}
	return a
}

// Journal returns the journal this auditor records into.
func (a *Auditor) Journal() *Journal { return a.journal }

// Batches returns the number of batches observed.
func (a *Auditor) Batches() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.batches
}

// Alarms returns the number of alarms raised.
func (a *Auditor) Alarms() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.alarms
}

// LastCertificate returns the most recent certificate observed (the
// zero Certificate before the first batch).
func (a *Auditor) LastCertificate() Certificate {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastCert
}

// ObserveBatch audits one processed batch: stats are the sketch's
// per-batch accounting and cert the sketch's current certificate.
// The residual signal is derived from stats as DeltaAdded/KeptMass —
// the fraction of the batch's retained energy the sketch had to shrink
// away, which spikes when the stream leaves the sketched subspace —
// so auditing costs no extra linear algebra on the hot path.
func (a *Auditor) ObserveBatch(stats sketch.BatchStats, cert Certificate) {
	res := 0.0
	if stats.KeptMass > 0 {
		res = stats.DeltaAdded / stats.KeptMass
	}
	a.Observe(Observation{
		Residual:   res,
		AcceptRate: stats.AcceptRate(),
		Cert:       cert,
	})
}

// Observation is one audit point. Callers that can afford exact
// projection residuals (e.g. an offline replay) may feed them directly
// instead of going through ObserveBatch.
type Observation struct {
	// Residual is the per-batch projection-residual signal in [0,1].
	Residual float64
	// AcceptRate is the priority-sampling acceptance mass rate in
	// (0,1]; NaN skips the acceptance detector for this batch.
	AcceptRate float64
	// Cert is the sketch's current certificate.
	Cert Certificate
}

// Observe consumes one audit point: updates the certificate state,
// drives both detectors, journals, and exports telemetry.
func (a *Auditor) Observe(o Observation) {
	a.mu.Lock()
	a.batches++
	batch := a.batches
	a.lastCert = o.Cert
	a.lastRes = o.Residual
	a.lastAcc = o.AcceptRate

	type fired struct {
		signal string
		value  float64
	}
	var al []fired
	if a.resDet.Update(o.Residual) {
		al = append(al, fired{"residual", o.Residual})
		a.resDet.Reset() // re-arm instead of re-firing every batch
	}
	if !math.IsNaN(o.AcceptRate) && a.accDet.Update(o.AcceptRate) {
		al = append(al, fired{"accept_rate", o.AcceptRate})
		a.accDet.Reset()
	}
	a.alarms += int64(len(al))
	certDue := a.certEach > 0 && batch%int64(a.certEach) == 0
	journal, reg, onAlarm := a.journal, a.reg, a.onAlarm
	a.mu.Unlock()

	reg.Gauge("arams_audit_cov_bound").Set(o.Cert.CovBound())
	reg.Gauge("arams_audit_rel_bound").Set(o.Cert.RelBound())
	reg.Gauge("arams_audit_batch_residual").Set(o.Residual)
	if !math.IsNaN(o.AcceptRate) {
		reg.Gauge("arams_audit_accept_rate").Set(o.AcceptRate)
		reg.Series("audit_accept_rate").Add(o.AcceptRate)
	}
	reg.Series("audit_batch_residual").Add(o.Residual)
	reg.Series("audit_rel_bound").Add(o.Cert.RelBound())
	reg.Series("audit_cov_bound").Add(o.Cert.CovBound())
	reg.Series("audit_sketch_ell").Add(float64(o.Cert.Ell))

	if certDue {
		journal.Record(KindCertificate, "error-bound certificate",
			A("rows", float64(o.Cert.Rows)),
			A("ell", float64(o.Cert.Ell)),
			A("rotations", float64(o.Cert.Rotations)),
			A("cov_bound", o.Cert.CovBound()),
			A("rel_bound", o.Cert.RelBound()),
			A("apriori_bound", o.Cert.AprioriBound()),
		)
	}
	for _, f := range al {
		ev := journal.Record(KindAlarm, "drift alarm: "+f.signal,
			A("value", f.value),
			A("batch", float64(batch)),
			A("cov_bound", o.Cert.CovBound()),
			A("rel_bound", o.Cert.RelBound()),
		)
		reg.Counter("arams_audit_alarms_total", obs.L("signal", f.signal)).Inc()
		// A drift alarm is a flight-recorder trigger: the ring holds the
		// spans and metric deltas leading up to the drift.
		reg.FlightTrigger("drift_alarm_" + f.signal)
		if onAlarm != nil {
			onAlarm(Alarm{Seq: ev.Seq, Signal: f.signal, Value: f.value, Batch: batch})
		}
	}
}

// State is the checkpointable snapshot of an Auditor: detector
// internals plus the running counters, so a restored process resumes
// drift detection mid-stream instead of re-warming from scratch.
type State struct {
	Batches  int64
	Alarms   int64
	Residual DetectorState
	Accept   DetectorState
}

// State snapshots the auditor for checkpointing.
func (a *Auditor) State() State {
	a.mu.Lock()
	defer a.mu.Unlock()
	return State{
		Batches:  a.batches,
		Alarms:   a.alarms,
		Residual: a.resDet.State(),
		Accept:   a.accDet.State(),
	}
}

// Restore replaces the auditor's detector and counter state with a
// checkpointed snapshot. Unknown detector kinds (e.g. a zero-value
// State from an old checkpoint) leave the corresponding detector as
// configured.
func (a *Auditor) Restore(st State) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.batches = st.Batches
	a.alarms = st.Alarms
	if d, err := NewDetectorFromState(st.Residual); err == nil {
		a.resDet = d
	}
	if d, err := NewDetectorFromState(st.Accept); err == nil {
		a.accDet = d
	}
}
