package audit

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"arams/internal/obs"
)

// EventKind classifies a journal entry.
type EventKind string

// Journal event kinds. The set is open — callers may record their own
// kinds — but these are the ones the built-in subsystems emit and the
// /audit endpoint knows how to summarize.
const (
	KindCertificate       EventKind = "certificate"        // periodic error-bound certificate
	KindAlarm             EventKind = "alarm"              // drift detector fired
	KindRankGrow          EventKind = "rank_grow"          // rank-adaptive ℓ growth
	KindMergeRound        EventKind = "merge_round"        // one tree-merge round folded
	KindMergeRecovery     EventKind = "merge_recovery"     // lost merge leg re-sketched
	KindSerialFallback    EventKind = "serial_fallback"    // parallel run degraded to serial
	KindCheckpointSave    EventKind = "checkpoint_save"    // sketch state checkpointed
	KindCheckpointRestore EventKind = "checkpoint_restore" // sketch state restored
	KindDeadlineMiss      EventKind = "deadline_miss"      // batch blew its frame budget
	KindRemoteLegLost     EventKind = "remote_leg_lost"    // remote merge leg dropped after retries
	KindRemoteDegrade     EventKind = "remote_degrade"     // remote shard fell back to local sketching
	KindRemoteRecovery    EventKind = "remote_recovery"    // remote shard state restored + replayed after reconnect
	KindFlightFanout      EventKind = "flight_fanout"      // coordinator flight trigger fanned out to the worker fleet
	KindTenantAdmission   EventKind = "tenant_admission"   // tenant admitted to the multi-tenant registry
	KindTenantEvict       EventKind = "tenant_evict"       // tenant hibernated to disk (idle deadline or residency pressure)
	KindTenantRestore     EventKind = "tenant_restore"     // hibernated tenant restored from its checkpoint
)

// Attr is one numeric attribute of an event. Attributes are numeric on
// purpose: everything the audit layer journals is a measurement, and a
// closed {string key → float64} shape keeps the checkpoint codec and
// the JSONL sink trivial.
type Attr struct {
	Key string  `json:"k"`
	Val float64 `json:"v"`
}

// A is shorthand for constructing an Attr.
func A(key string, val float64) Attr { return Attr{Key: key, Val: val} }

// Event is one journal entry. Seq increases monotonically for the
// lifetime of the journal (it keeps counting across ring evictions and
// checkpoint/restore, so consumers can detect gaps).
type Event struct {
	Seq   int64     `json:"seq"`
	Time  time.Time `json:"time"`
	Kind  EventKind `json:"kind"`
	Msg   string    `json:"msg"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Get returns the value of the named attribute, or def when absent.
func (e Event) Get(key string, def float64) float64 {
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return def
}

// DefaultJournalCap bounds the default journal's ring. At one
// certificate per audit interval plus rare structural events this is
// hours of history in well under a MiB.
const DefaultJournalCap = 1024

// Journal is a bounded, append-only structured event log: a ring of
// the most recent events plus an optional line-delimited JSON sink
// that receives every event (the durable tail the ring drops). All
// methods are safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	seq  int64
	buf  []Event
	next int
	n    int
	sink io.Writer
}

// NewJournal creates a journal retaining the last capacity events
// (capacity < 1 selects DefaultJournalCap).
func NewJournal(capacity int) *Journal {
	if capacity < 1 {
		capacity = DefaultJournalCap
	}
	return &Journal{buf: make([]Event, capacity)}
}

var defaultJournal = NewJournal(DefaultJournalCap)

// Default returns the process-global journal, mirroring obs.Default():
// the sketch, parallel, and pipeline layers record into it and the
// /audit endpoint serves it.
func Default() *Journal { return defaultJournal }

// SetSink directs a copy of every subsequent event to w as one JSON
// object per line (pass nil to detach). The journal serializes writes;
// w need not be safe for concurrent use.
func (j *Journal) SetSink(w io.Writer) {
	j.mu.Lock()
	j.sink = w
	j.mu.Unlock()
}

// Record appends an event and returns it (with sequence number and
// timestamp filled in). It also bumps the per-kind journal counter in
// the default obs registry so event rates show up on /metrics.
func (j *Journal) Record(kind EventKind, msg string, attrs ...Attr) Event {
	j.mu.Lock()
	j.seq++
	ev := Event{Seq: j.seq, Time: time.Now(), Kind: kind, Msg: msg, Attrs: attrs}
	j.buf[j.next] = ev
	j.next = (j.next + 1) % len(j.buf)
	if j.n < len(j.buf) {
		j.n++
	}
	sink := j.sink
	if sink != nil {
		// Write under the lock: the sink is typically an *os.File and
		// ordering matters more than the (rare) write latency.
		if b, err := json.Marshal(ev); err == nil {
			sink.Write(append(b, '\n'))
		}
	}
	j.mu.Unlock()
	obs.Default().Counter("arams_audit_journal_events_total", obs.L("kind", string(kind))).Inc()
	return ev
}

// Len returns the number of retained events.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Seq returns the sequence number of the most recent event (0 when
// nothing has been recorded).
func (j *Journal) Seq() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Events returns the retained events, oldest first.
func (j *Journal) Events() []Event {
	return j.Query(Query{})
}

// Query selects retained events. The zero Query returns everything.
type Query struct {
	// Kind filters to one event kind ("" = all).
	Kind EventKind
	// SinceSeq keeps only events with Seq > SinceSeq.
	SinceSeq int64
	// Last keeps only the most recent N matches (0 = all).
	Last int
}

// Query returns the retained events matching q, oldest first.
func (j *Journal) Query(q Query) []Event {
	j.mu.Lock()
	out := make([]Event, 0, j.n)
	for i := 0; i < j.n; i++ {
		ev := j.buf[(j.next-j.n+i+len(j.buf))%len(j.buf)]
		if q.Kind != "" && ev.Kind != q.Kind {
			continue
		}
		if ev.Seq <= q.SinceSeq {
			continue
		}
		out = append(out, ev)
	}
	j.mu.Unlock()
	if q.Last > 0 && len(out) > q.Last {
		out = out[len(out)-q.Last:]
	}
	return out
}

// JournalState is the checkpointable snapshot of a journal: the
// sequence counter plus the retained ring, so a restored process
// resumes numbering where the crashed one stopped and keeps its
// recent history queryable.
type JournalState struct {
	Seq    int64
	Events []Event
}

// State snapshots the journal for checkpointing.
func (j *Journal) State() JournalState {
	return JournalState{Seq: j.Seq(), Events: j.Events()}
}

// Restore replaces the journal's contents with a checkpointed
// snapshot. The ring capacity and sink are kept; events beyond the
// capacity are dropped oldest-first.
func (j *Journal) Restore(st JournalState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	evs := st.Events
	if len(evs) > len(j.buf) {
		evs = evs[len(evs)-len(j.buf):]
	}
	for i := range j.buf {
		j.buf[i] = Event{}
	}
	copy(j.buf, evs)
	j.n = len(evs)
	j.next = j.n % len(j.buf)
	j.seq = st.Seq
	if j.n > 0 && j.buf[j.n-1].Seq > j.seq {
		j.seq = j.buf[j.n-1].Seq
	}
}
