package abod

import (
	"math"
	"testing"

	"arams/internal/mat"
	"arams/internal/rng"
)

// clusterWithOutlier builds a dense 2-D blob plus one point far away.
func clusterWithOutlier(n int, seed uint64) (*mat.Matrix, int) {
	g := rng.New(seed)
	x := mat.New(n+1, 2)
	for i := 0; i < n; i++ {
		x.Set(i, 0, g.Norm())
		x.Set(i, 1, g.Norm())
	}
	x.Set(n, 0, 50)
	x.Set(n, 1, 50)
	return x, n
}

func TestOutlierGetsLowestScore(t *testing.T) {
	x, outlier := clusterWithOutlier(60, 1)
	scores := Scores(x, 10)
	min := 0
	for i, s := range scores {
		if s < scores[min] {
			min = i
		}
		_ = s
	}
	if min != outlier {
		t.Fatalf("lowest ABOF at %d (%v), want outlier %d (%v)", min, scores[min], outlier, scores[outlier])
	}
}

func TestOutliersSelection(t *testing.T) {
	x, outlier := clusterWithOutlier(40, 2)
	scores := Scores(x, 8)
	picked := Outliers(scores, 0.05) // ceil(0.05·41) = 3
	if len(picked) != 3 {
		t.Fatalf("picked %d outliers", len(picked))
	}
	if picked[0] != outlier {
		t.Fatalf("most anomalous = %d, want %d", picked[0], outlier)
	}
}

func TestScoresNonNegative(t *testing.T) {
	g := rng.New(3)
	x := mat.RandGaussian(50, 4, g)
	for i, s := range Scores(x, 10) {
		if s < 0 {
			t.Fatalf("negative ABOF %v at %d", s, i)
		}
	}
}

func TestInteriorBeatsEdge(t *testing.T) {
	// A point at the center of a ring sees neighbors at all angles;
	// a point far outside sees them in a narrow cone. Center must
	// score higher.
	n := 24
	x := mat.New(n+2, 2)
	for i := 0; i < n; i++ {
		angle := 2 * math.Pi * float64(i) / float64(n)
		x.Set(i, 0, math.Cos(angle))
		x.Set(i, 1, math.Sin(angle))
	}
	x.Set(n, 0, 0)    // center
	x.Set(n+1, 0, 30) // far outside
	scores := Scores(x, n)
	if scores[n] <= scores[n+1] {
		t.Fatalf("center %v should exceed outlier %v", scores[n], scores[n+1])
	}
}

func TestDuplicatePoints(t *testing.T) {
	// All points identical: ABOF undefined everywhere, must return 0s
	// without dividing by zero.
	x := mat.New(10, 3)
	for i := 0; i < 10; i++ {
		x.Set(i, 0, 1)
	}
	for _, s := range Scores(x, 5) {
		if s != 0 {
			t.Fatalf("duplicate points ABOF = %v", s)
		}
	}
}

func TestTinyInputs(t *testing.T) {
	if got := Scores(mat.New(0, 2), 5); len(got) != 0 {
		t.Fatal("empty input produced scores")
	}
	two := mat.FromRows([][]float64{{0, 0}, {1, 1}})
	got := Scores(two, 5)
	if len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Fatalf("two points: %v", got)
	}
}

func TestOutliersClamps(t *testing.T) {
	scores := []float64{3, 1, 2}
	if got := Outliers(scores, 2.0); len(got) != 3 {
		t.Fatalf("contamination > 1: %v", got)
	}
	if got := Outliers(scores, 0); len(got) != 0 {
		t.Fatalf("contamination 0: %v", got)
	}
	got := Outliers(scores, 0.4) // ceil(1.2) = 2
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Outliers order wrong: %v", got)
	}
}
