// Package abod implements FastABOD — the angle-based outlier detection
// of Kriegel, Schubert & Zimek (2008) restricted to k-nearest-neighbor
// pairs — which the paper proposes for anomaly detection on the 2-D
// latent embedding ("fast Angle-Based-Outlier-Detection methods").
//
// The angle-based outlier factor (ABOF) of a point is the weighted
// variance, over pairs of neighbors (B, C), of ⟨AB, AC⟩/(‖AB‖²‖AC‖²),
// weighted by 1/(‖AB‖·‖AC‖). Points deep inside a cluster see their
// neighbors at widely varying angles (large variance); outliers see all
// other points within a narrow cone (small variance), so LOW scores
// mark outliers.
package abod

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"arams/internal/knn"
	"arams/internal/mat"
)

// Scores returns the ABOF of every row of x using k-nearest-neighbor
// pairs. Lower means more anomalous. Points with undefined ABOF
// (duplicates of all their neighbors) receive 0, the most anomalous
// score.
func Scores(x *mat.Matrix, k int) []float64 {
	n := x.RowsN
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if k >= n {
		k = n - 1
	}
	if k < 2 {
		// Angles need at least two neighbors.
		return out
	}
	g := knn.BruteForce(x, k)
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			d := x.ColsN
			ab := make([]float64, d)
			ac := make([]float64, d)
			for i := lo; i < hi; i++ {
				out[i] = abof(x, i, g.Neighbors[i], ab, ac)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// abof computes the angle-based outlier factor of point i over its
// neighbor list.
func abof(x *mat.Matrix, i int, nbs []knn.Neighbor, ab, ac []float64) float64 {
	xi := x.Row(i)
	var sw, swv, swv2 float64
	for a := 0; a < len(nbs); a++ {
		xa := x.Row(nbs[a].Index)
		for j := range ab {
			ab[j] = xa[j] - xi[j]
		}
		na2 := mat.Norm2Sq(ab)
		if na2 == 0 {
			continue
		}
		for b := a + 1; b < len(nbs); b++ {
			xb := x.Row(nbs[b].Index)
			for j := range ac {
				ac[j] = xb[j] - xi[j]
			}
			nb2 := mat.Norm2Sq(ac)
			if nb2 == 0 {
				continue
			}
			dot := mat.Dot(ab, ac)
			w := 1 / math.Sqrt(na2*nb2)
			v := dot / (na2 * nb2)
			sw += w
			swv += w * v
			swv2 += w * v * v
		}
	}
	if sw == 0 {
		return 0
	}
	mean := swv / sw
	variance := swv2/sw - mean*mean
	if variance < 0 {
		return 0
	}
	return variance
}

// Outliers returns the indices of the ⌈contamination·n⌉ lowest-scoring
// points, ascending by score (most anomalous first).
func Outliers(scores []float64, contamination float64) []int {
	n := len(scores)
	m := int(math.Ceil(contamination * float64(n)))
	if m < 0 {
		m = 0
	}
	if m > n {
		m = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] < scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:m]
}
