package mat

import (
	"bytes"
	"math"
	"testing"

	"arams/internal/rng"
)

func TestMatrixIORoundTrip(t *testing.T) {
	g := rng.New(1)
	for _, dims := range [][2]int{{0, 0}, {1, 1}, {7, 13}, {40, 3}} {
		m := RandGaussian(dims[0], dims[1], g)
		var buf bytes.Buffer
		if err := WriteMatrix(&buf, m); err != nil {
			t.Fatal(err)
		}
		got, err := ReadMatrix(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(m, 0) {
			t.Fatalf("%v: roundtrip mismatch", dims)
		}
	}
}

func TestMatrixIOSpecialValues(t *testing.T) {
	m := FromRows([][]float64{{math.Inf(1), math.Inf(-1)}, {0, -0.0}})
	m.Set(0, 0, math.NaN())
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.At(0, 0)) || !math.IsInf(got.At(0, 1), -1) {
		t.Fatal("special float values not preserved bit-exactly")
	}
}

func TestMatrixIOViewStride(t *testing.T) {
	// A Rows view has a parent stride; Write must serialize only the
	// view's logical contents.
	g := rng.New(2)
	parent := RandGaussian(10, 6, g)
	view := parent.Rows(3, 7)
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, view); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.RowsN != 4 || !got.Equal(view.Clone(), 0) {
		t.Fatal("view serialization wrong")
	}
}

func TestReadMatrixRejectsGarbage(t *testing.T) {
	for _, input := range [][]byte{
		nil,
		[]byte("xx"),
		[]byte("not a matrix at all, definitely"),
	} {
		if _, err := ReadMatrix(bytes.NewReader(input)); err == nil {
			t.Fatalf("garbage %q accepted", input)
		}
	}
}

func TestReadMatrixTruncated(t *testing.T) {
	g := rng.New(3)
	m := RandGaussian(5, 5, g)
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-9]
	if _, err := ReadMatrix(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}
