package mat

import (
	"math"
	"testing"
	"testing/quick"

	"arams/internal/rng"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims = %d×%d", r, c)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New matrix not zeroed")
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("At/Set roundtrip failed")
	}
	row := m.Row(1)
	row[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row does not share storage")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("FromRows wrong contents: %v", m.Data)
	}
	if got := FromRows(nil); got.RowsN != 0 || got.ColsN != 0 {
		t.Fatal("FromRows(nil) should be empty")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestRowsView(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}})
	v := m.Rows(1, 3)
	if v.RowsN != 2 || v.At(0, 0) != 3 || v.At(1, 1) != 6 {
		t.Fatalf("Rows view wrong: %+v", v)
	}
	v.Set(0, 0, 99)
	if m.At(1, 0) != 99 {
		t.Fatal("Rows view does not alias parent")
	}
}

func TestTranspose(t *testing.T) {
	g := rng.New(1)
	m := RandGaussian(37, 89, g)
	mt := m.T()
	for i := 0; i < 37; i++ {
		for j := 0; j < 89; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	if !m.Equal(mt.T(), 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Clone()
	c.Add(b)
	if c.At(1, 1) != 12 {
		t.Fatal("Add wrong")
	}
	c.Sub(b)
	if !c.Equal(a, 1e-15) {
		t.Fatal("Add then Sub is not identity")
	}
	c.Scale(3)
	if c.At(0, 1) != 6 {
		t.Fatal("Scale wrong")
	}
}

func TestFrobenius(t *testing.T) {
	m := FromRows([][]float64{{3, 4}})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-14 {
		t.Fatalf("FrobeniusNorm = %v, want 5", got)
	}
	if got := m.FrobeniusNormSq(); math.Abs(got-25) > 1e-12 {
		t.Fatalf("FrobeniusNormSq = %v, want 25", got)
	}
}

func TestMulAgainstNaive(t *testing.T) {
	g := rng.New(2)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 9, 23}, {64, 64, 64}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := RandGaussian(m, k, g)
		b := RandGaussian(k, n, g)
		got := Mul(a, b)
		want := New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for kk := 0; kk < k; kk++ {
					s += a.At(i, kk) * b.At(kk, j)
				}
				want.Set(i, j, s)
			}
		}
		if !got.Equal(want, 1e-10) {
			t.Fatalf("Mul mismatch for %v", dims)
		}
	}
}

func TestMulParallelPath(t *testing.T) {
	g := rng.New(3)
	// Large enough to trigger the parallel path.
	a := RandGaussian(128, 80, g)
	b := RandGaussian(80, 100, g)
	got := Mul(a, b)
	small := New(128, 100)
	RefMulTo(small, a, b)
	if !got.Equal(small, 1e-12) {
		t.Fatal("parallel Mul disagrees with reference kernel")
	}
}

func TestMulABt(t *testing.T) {
	g := rng.New(4)
	a := RandGaussian(13, 40, g)
	b := RandGaussian(21, 40, g)
	got := MulABt(a, b)
	want := Mul(a, b.T())
	if !got.Equal(want, 1e-11) {
		t.Fatal("MulABt disagrees with Mul(a, b.T())")
	}
}

func TestGramSymmetric(t *testing.T) {
	g := rng.New(5)
	a := RandGaussian(9, 300, g)
	got := Gram(a)
	want := Mul(a, a.T())
	if !got.Equal(want, 1e-10) {
		t.Fatal("Gram disagrees with a*aᵀ")
	}
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			if got.At(i, j) != got.At(j, i) {
				t.Fatal("Gram not exactly symmetric")
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	x := []float64{1, 0, -1}
	got := MulVec(a, x)
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v", got)
	}
	gotT := MulTVec(a, []float64{1, 1})
	want := []float64{5, 7, 9}
	for i := range want {
		if math.Abs(gotT[i]-want[i]) > 1e-14 {
			t.Fatalf("MulTVec = %v", gotT)
		}
	}
}

func TestDotNorm(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{5, 4, 3, 2, 1}
	if got := Dot(x, y); got != 35 {
		t.Fatalf("Dot = %v", got)
	}
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Norm2 = %v", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v", got)
	}
	// Overflow safety.
	if got := Norm2([]float64{1e200, 1e200}); math.IsInf(got, 0) {
		t.Fatal("Norm2 overflowed")
	}
}

func TestNorm2MatchesSqrtNorm2Sq(t *testing.T) {
	f := func(xs []float64) bool {
		for i, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				xs[i] = 1
			}
		}
		a := Norm2(xs)
		b := math.Sqrt(Norm2Sq(xs))
		if b == 0 {
			return a == 0
		}
		return math.Abs(a-b)/b < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEyeDiag(t *testing.T) {
	if m := Eye(3); m.At(0, 0) != 1 || m.At(0, 1) != 0 {
		t.Fatal("Eye wrong")
	}
	d := Diag([]float64{2, 3})
	if d.At(0, 0) != 2 || d.At(1, 1) != 3 || d.At(0, 1) != 0 {
		t.Fatal("Diag wrong")
	}
}

func TestHasNaN(t *testing.T) {
	m := New(2, 2)
	if m.HasNaN() {
		t.Fatal("zero matrix reported NaN")
	}
	m.Set(1, 1, math.NaN())
	if !m.HasNaN() {
		t.Fatal("NaN not detected")
	}
	m.Set(1, 1, math.Inf(1))
	if !m.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func TestRandOrthonormalCols(t *testing.T) {
	g := rng.New(6)
	q := RandOrthonormalCols(50, 20, g)
	qtq := Mul(q.T(), q)
	if !qtq.Equal(Eye(20), 1e-10) {
		t.Fatal("columns not orthonormal")
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	Mul(New(2, 3), New(4, 2))
}
