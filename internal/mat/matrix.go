// Package mat implements the dense linear-algebra kernels that the
// sketching algorithms depend on: a row-major matrix type, parallel
// blocked matrix multiplication, Householder QR, a cyclic-Jacobi
// symmetric eigensolver, a one-sided Jacobi SVD, and a Gram-trick thin
// SVD specialized for the short-and-wide buffers that Frequent
// Directions rotates.
//
// The package replaces the NumPy/LAPACK substrate used by the paper's
// reference implementation. It is written against the shapes that
// actually occur in the pipeline — buffers with a few hundred rows and
// up to millions of columns — and never materializes d×d intermediates.
package mat

import (
	"fmt"
	"math"

	"arams/internal/rng"
)

// Matrix is a dense row-major matrix. Rows and Cols give its shape;
// element (i, j) is stored at Data[i*Stride+j]. For matrices created by
// this package Stride == Cols, but views returned by Rows share the
// backing array of their parent.
type Matrix struct {
	RowsN  int
	ColsN  int
	Stride int
	Data   []float64
}

// New returns a zeroed r×c matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	return &Matrix{RowsN: r, ColsN: c, Stride: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows, copying
// the data.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic("mat: ragged rows in FromRows")
		}
		copy(m.Row(i), row)
	}
	return m
}

// FromData wraps data as an r×c matrix without copying. len(data) must
// be r*c.
func FromData(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: FromData length %d != %d×%d", len(data), r, c))
	}
	return &Matrix{RowsN: r, ColsN: c, Stride: c, Data: data}
}

// Dims returns the matrix shape.
func (m *Matrix) Dims() (r, c int) { return m.RowsN, m.ColsN }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Row returns row i as a slice sharing the matrix storage.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Stride : i*m.Stride+m.ColsN]
}

// Rows returns a view of rows [i, j) sharing storage with m.
func (m *Matrix) Rows(i, j int) *Matrix {
	if i < 0 || j < i || j > m.RowsN {
		panic(fmt.Sprintf("mat: row range [%d,%d) out of %d", i, j, m.RowsN))
	}
	return &Matrix{
		RowsN:  j - i,
		ColsN:  m.ColsN,
		Stride: m.Stride,
		Data:   m.Data[i*m.Stride : i*m.Stride+(j-i-1)*m.Stride+m.ColsN],
	}
}

// Clone returns a deep copy of m with compact stride.
func (m *Matrix) Clone() *Matrix {
	out := New(m.RowsN, m.ColsN)
	for i := 0; i < m.RowsN; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// CopyFrom copies src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.RowsN != src.RowsN || m.ColsN != src.ColsN {
		panic("mat: CopyFrom shape mismatch")
	}
	for i := 0; i < m.RowsN; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := 0; i < m.RowsN; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// T returns the transpose of m as a newly allocated matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.ColsN, m.RowsN)
	const bs = 64
	for ib := 0; ib < m.RowsN; ib += bs {
		iEnd := min(ib+bs, m.RowsN)
		for jb := 0; jb < m.ColsN; jb += bs {
			jEnd := min(jb+bs, m.ColsN)
			for i := ib; i < iEnd; i++ {
				row := m.Row(i)
				for j := jb; j < jEnd; j++ {
					out.Data[j*out.Stride+i] = row[j]
				}
			}
		}
	}
	return out
}

// Scale multiplies every element of m by s in place.
func (m *Matrix) Scale(s float64) {
	for i := 0; i < m.RowsN; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= s
		}
	}
}

// Add accumulates a into m in place. Shapes must match.
func (m *Matrix) Add(a *Matrix) {
	if m.RowsN != a.RowsN || m.ColsN != a.ColsN {
		panic("mat: Add shape mismatch")
	}
	for i := 0; i < m.RowsN; i++ {
		dst, src := m.Row(i), a.Row(i)
		for j := range dst {
			dst[j] += src[j]
		}
	}
}

// Sub subtracts a from m in place. Shapes must match.
func (m *Matrix) Sub(a *Matrix) {
	if m.RowsN != a.RowsN || m.ColsN != a.ColsN {
		panic("mat: Sub shape mismatch")
	}
	for i := 0; i < m.RowsN; i++ {
		dst, src := m.Row(i), a.Row(i)
		for j := range dst {
			dst[j] -= src[j]
		}
	}
}

// FrobeniusNorm returns ‖m‖_F.
func (m *Matrix) FrobeniusNorm() float64 {
	return math.Sqrt(m.FrobeniusNormSq())
}

// FrobeniusNormSq returns ‖m‖_F², accumulated in a numerically safe
// scaled form to avoid overflow for very large entries.
func (m *Matrix) FrobeniusNormSq() float64 {
	var sum float64
	for i := 0; i < m.RowsN; i++ {
		row := m.Row(i)
		for _, v := range row {
			sum += v * v
		}
	}
	return sum
}

// MaxAbs returns the largest absolute element value of m (0 for empty).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for i := 0; i < m.RowsN; i++ {
		for _, v := range m.Row(i) {
			if a := math.Abs(v); a > mx {
				mx = a
			}
		}
	}
	return mx
}

// Equal reports whether m and a have the same shape and all elements
// within tol of each other.
func (m *Matrix) Equal(a *Matrix, tol float64) bool {
	if m.RowsN != a.RowsN || m.ColsN != a.ColsN {
		return false
	}
	for i := 0; i < m.RowsN; i++ {
		x, y := m.Row(i), a.Row(i)
		for j := range x {
			if math.Abs(x[j]-y[j]) > tol {
				return false
			}
		}
	}
	return true
}

// HasNaN reports whether any element of m is NaN or infinite.
func (m *Matrix) HasNaN() bool {
	for i := 0; i < m.RowsN; i++ {
		for _, v := range m.Row(i) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
	}
	return false
}

// String formats small matrices for debugging; large matrices are
// summarized by shape.
func (m *Matrix) String() string {
	if m.RowsN*m.ColsN > 64 {
		return fmt.Sprintf("Matrix(%d×%d)", m.RowsN, m.ColsN)
	}
	s := ""
	for i := 0; i < m.RowsN; i++ {
		s += fmt.Sprintf("%8.4f\n", m.Row(i))
	}
	return s
}

// RandGaussian fills a new r×c matrix with independent N(0,1) entries.
func RandGaussian(r, c int, g *rng.RNG) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = g.Norm()
	}
	return m
}

// RandOrthonormalCols returns an r×c matrix (r >= c) with orthonormal
// columns, distributed with Haar measure, generated by the QR
// decomposition of a Gaussian matrix with the sign convention of
// Mezzadri (2007) — the method the paper cites from Genz (2000).
func RandOrthonormalCols(r, c int, g *rng.RNG) *Matrix {
	if r < c {
		panic("mat: RandOrthonormalCols needs r >= c")
	}
	a := RandGaussian(r, c, g)
	q, rr := QR(a)
	// Fix signs so the distribution is Haar: multiply column j of Q by
	// sign(R[j][j]).
	for j := 0; j < c; j++ {
		if rr.At(j, j) < 0 {
			for i := 0; i < r; i++ {
				q.Set(i, j, -q.At(i, j))
			}
		}
	}
	return q
}

// Diag builds a square diagonal matrix from v.
func Diag(v []float64) *Matrix {
	m := New(len(v), len(v))
	for i, x := range v {
		m.Set(i, i, x)
	}
	return m
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
