package mat

import "math"

// QR computes the thin QR decomposition of an r×c matrix a with r >= c
// using Householder reflections: a = q*rr with q r×c having orthonormal
// columns and rr c×c upper triangular. The input is not modified.
func QR(a *Matrix) (q, rr *Matrix) {
	r, c := a.Dims()
	if r < c {
		panic("mat: QR needs rows >= cols")
	}
	// Work on a copy; v vectors are stored in the lower triangle.
	w := a.Clone()
	betas := make([]float64, c)
	for k := 0; k < c; k++ {
		// Build the Householder vector for column k from rows k..r-1.
		var norm float64
		for i := k; i < r; i++ {
			norm = math.Hypot(norm, w.At(i, k))
		}
		if norm == 0 {
			betas[k] = 0
			continue
		}
		alpha := w.At(k, k)
		if alpha > 0 {
			norm = -norm
		}
		// v = x - norm*e1, normalized so v[0] = 1.
		v0 := alpha - norm
		for i := k + 1; i < r; i++ {
			w.Set(i, k, w.At(i, k)/v0)
		}
		betas[k] = -v0 / norm
		w.Set(k, k, norm)
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < c; j++ {
			// s = vᵀ * w[:, j]
			s := w.At(k, j)
			for i := k + 1; i < r; i++ {
				s += w.At(i, k) * w.At(i, j)
			}
			s *= betas[k]
			w.Set(k, j, w.At(k, j)-s)
			for i := k + 1; i < r; i++ {
				w.Set(i, j, w.At(i, j)-s*w.At(i, k))
			}
		}
	}
	// Extract R.
	rr = New(c, c)
	for i := 0; i < c; i++ {
		for j := i; j < c; j++ {
			rr.Set(i, j, w.At(i, j))
		}
	}
	// Accumulate Q by applying reflectors to the first c columns of I,
	// in reverse order.
	q = New(r, c)
	for j := 0; j < c; j++ {
		q.Set(j, j, 1)
	}
	for k := c - 1; k >= 0; k-- {
		if betas[k] == 0 {
			continue
		}
		for j := 0; j < c; j++ {
			s := q.At(k, j)
			for i := k + 1; i < r; i++ {
				s += w.At(i, k) * q.At(i, j)
			}
			s *= betas[k]
			q.Set(k, j, q.At(k, j)-s)
			for i := k + 1; i < r; i++ {
				q.Set(i, j, q.At(i, j)-s*w.At(i, k))
			}
		}
	}
	return q, rr
}
