package mat

import (
	"sync"
	"testing"

	"arams/internal/rng"
)

// TestParallelForOnMultiWorkerPool exercises the chunking, enqueueing,
// and inline-fallback logic against a private 4-worker pool, so the
// multi-worker path runs (and runs under -race) even on a single-core
// host where the shared pool degrades to serial.
func TestParallelForOnMultiWorkerPool(t *testing.T) {
	queue := newPoolQueue(4)
	for _, n := range []int{1, 7, 64, 1000, 4097} {
		marks := make([]int32, n)
		parallelForOn(4, queue, n, 8, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				marks[i]++
			}
		})
		for i, m := range marks {
			if m != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, m)
			}
		}
	}
}

// TestParallelForConcurrentCallers floods a small private pool from
// many goroutines at once, forcing the full-queue inline fallback while
// the race detector watches the WaitGroup handoff.
func TestParallelForConcurrentCallers(t *testing.T) {
	queue := newPoolQueue(2)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				n := 257 + 13*c
				sum := make([]int64, n)
				parallelForOn(2, queue, n, 4, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						sum[i] = int64(i)
					}
				})
				for i := range sum {
					if sum[i] != int64(i) {
						t.Errorf("caller %d: index %d not written", c, i)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestConcurrentSketchKernels runs the pooled Gram-SVD rotation kernel
// from several goroutines over independent inputs — the "multiple
// sketches sharing the process pool" scenario. Under -race this guards
// the sync.Pool scratch reuse inside SVDGramTo.
func TestConcurrentSketchKernels(t *testing.T) {
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := rng.New(300 + uint64(w))
			a := RandGaussian(24, 600, g)
			_, sWant, _ := RefSVDGram(a)
			vt := New(24, 600)
			for iter := 0; iter < 10; iter++ {
				s := SVDGramTo(a, nil, vt)
				for i := range s {
					d := s[i] - sWant[i]
					if d > 1e-9*(1+sWant[0]) || d < -1e-9*(1+sWant[0]) {
						t.Errorf("worker %d iter %d: σ[%d] drifted: %g vs %g", w, iter, i, s[i], sWant[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
