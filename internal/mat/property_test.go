package mat

import (
	"testing"
	"testing/quick"

	"arams/internal/rng"
)

// Property tests on algebraic identities, sized small enough to run in
// milliseconds under testing/quick.

func TestPropTransposeOfProduct(t *testing.T) {
	g := rng.New(100)
	f := func(seed uint16) bool {
		m := 2 + int(seed%5)
		k := 2 + int(seed%7)
		n := 2 + int(seed%4)
		a := RandGaussian(m, k, g)
		b := RandGaussian(k, n, g)
		// (AB)ᵀ = BᵀAᵀ
		left := Mul(a, b).T()
		right := Mul(b.T(), a.T())
		return left.Equal(right, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMulAssociative(t *testing.T) {
	g := rng.New(101)
	f := func(seed uint16) bool {
		m := 2 + int(seed%4)
		a := RandGaussian(m, m, g)
		b := RandGaussian(m, m, g)
		c := RandGaussian(m, m, g)
		left := Mul(Mul(a, b), c)
		right := Mul(a, Mul(b, c))
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMulDistributive(t *testing.T) {
	g := rng.New(102)
	f := func(seed uint16) bool {
		m := 2 + int(seed%5)
		n := 2 + int(seed%5)
		a := RandGaussian(m, n, g)
		b := RandGaussian(n, m, g)
		c := RandGaussian(n, m, g)
		sum := b.Clone()
		sum.Add(c)
		left := Mul(a, sum)
		right := Mul(a, b)
		right.Add(Mul(a, c))
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropFrobeniusInvariantUnderOrthogonal(t *testing.T) {
	g := rng.New(103)
	f := func(seed uint16) bool {
		n := 3 + int(seed%5)
		a := RandGaussian(n, n, g)
		q := RandOrthonormalCols(n, n, g)
		// ‖QA‖_F = ‖A‖_F
		qa := Mul(q, a)
		diff := qa.FrobeniusNorm() - a.FrobeniusNorm()
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9*a.FrobeniusNorm()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSVDSingularValuesMatchEig(t *testing.T) {
	g := rng.New(104)
	f := func(seed uint16) bool {
		m := 3 + int(seed%4)
		n := 3 + int(seed%6)
		a := RandGaussian(m, n, g)
		_, s, _ := SVD(a)
		// σᵢ² must equal the eigenvalues of AAᵀ.
		vals, _ := EigSym(Mul(a, a.T()))
		for i := 0; i < len(s) && i < len(vals); i++ {
			want := vals[i]
			if want < 0 {
				want = 0
			}
			got := s[i] * s[i]
			scale := vals[0] + 1e-300
			if d := got - want; d > 1e-8*scale || d < -1e-8*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
