package mat

// Cache-blocked, register-tiled inner kernels for the dot-structured
// products (Gram, MulABt) and the axpy-structured product (MulTo).
//
// The shapes that matter are the Frequent Directions rotation shapes:
// a short-and-wide 2ℓ×d buffer (ℓ tens to hundreds, d up to millions).
// Two techniques pay for everything here:
//
//   - 2×2 register tiling: computing the four inner products of a
//     2-row × 2-row tile in one pass halves the number of memory loads
//     per multiply-add (4 loads / 4 FMAs instead of 2 loads / 1 FMA)
//     and gives the out-of-order core four independent accumulator
//     chains to hide FMA latency behind.
//   - k-paneling: the reduction dimension is walked in panels small
//     enough that the active row segments stay in L1 while every tile
//     of the output block is updated, instead of streaming full 32KB+
//     rows from L2 for every output element.
//
// All kernels in this file are serial; parallelism is layered on top
// by ParallelFor over disjoint output row ranges (see blas.go). The
// innermost element loops (dot2x2, dot1x2, axpy, axpy2) live in
// inner.go, which scripts/check_bce.sh keeps bounds-check-free.

const (
	// panelCols is the k-panel width for the dot-structured kernels:
	// 1024 columns = 8KB per row segment, so a 2×2 tile's four active
	// segments occupy 32KB — one L1 data cache.
	panelCols = 1024
	// mulPanelCols is the j-panel width for the axpy-structured MulTo
	// kernel: 2048 columns = 16KB per destination row segment, so a
	// row pair's two accumulator segments stay L1-resident across the
	// whole k loop.
	mulPanelCols = 2048
)

// gramRange computes rows [lo, hi) of dst = a*aᵀ for the columns
// j >= row (plus the stray lower element a 2×2 diagonal tile touches);
// GramTo mirrors the strict lower triangle afterwards. The target rows
// of dst are zeroed here, so disjoint ranges compose under ParallelFor.
func gramRange(dst, a *Matrix, lo, hi int) {
	m, d := a.RowsN, a.ColsN
	for i := lo; i < hi; i++ {
		row := dst.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
	for k0 := 0; k0 < d; k0 += panelCols {
		k1 := min(k0+panelCols, d)
		i := lo
		for ; i+1 < hi; i += 2 {
			a0 := a.Row(i)[k0:k1]
			a1 := a.Row(i + 1)[k0:k1]
			d0 := dst.Row(i)
			d1 := dst.Row(i + 1)
			j := i
			for ; j+1 < m; j += 2 {
				b0 := a.Row(j)[k0:k1]
				b1 := a.Row(j + 1)[k0:k1]
				c00, c01, c10, c11 := dot2x2(a0, a1, b0, b1)
				d0[j] += c00
				d0[j+1] += c01
				d1[j] += c10
				d1[j+1] += c11
			}
			if j < m {
				c0, c1 := dot1x2(a.Row(j)[k0:k1], a0, a1)
				d0[j] += c0
				d1[j] += c1
			}
		}
		if i < hi {
			a0 := a.Row(i)[k0:k1]
			d0 := dst.Row(i)
			j := i
			for ; j+1 < m; j += 2 {
				c0, c1 := dot1x2(a0, a.Row(j)[k0:k1], a.Row(j + 1)[k0:k1])
				d0[j] += c0
				d0[j+1] += c1
			}
			if j < m {
				d0[j] += Dot(a0, a.Row(j)[k0:k1])
			}
		}
	}
}

// mulABtRangeTiled computes rows [lo, hi) of dst = a*bᵀ with 2×2
// register tiles over k-panels. The target rows are zeroed here.
func mulABtRangeTiled(dst, a, b *Matrix, lo, hi int) {
	n, d := b.RowsN, a.ColsN
	for i := lo; i < hi; i++ {
		row := dst.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
	for k0 := 0; k0 < d; k0 += panelCols {
		k1 := min(k0+panelCols, d)
		i := lo
		for ; i+1 < hi; i += 2 {
			a0 := a.Row(i)[k0:k1]
			a1 := a.Row(i + 1)[k0:k1]
			d0 := dst.Row(i)
			d1 := dst.Row(i + 1)
			j := 0
			for ; j+1 < n; j += 2 {
				b0 := b.Row(j)[k0:k1]
				b1 := b.Row(j + 1)[k0:k1]
				c00, c01, c10, c11 := dot2x2(a0, a1, b0, b1)
				d0[j] += c00
				d0[j+1] += c01
				d1[j] += c10
				d1[j+1] += c11
			}
			if j < n {
				c0, c1 := dot1x2(b.Row(j)[k0:k1], a0, a1)
				d0[j] += c0
				d1[j] += c1
			}
		}
		if i < hi {
			a0 := a.Row(i)[k0:k1]
			d0 := dst.Row(i)
			j := 0
			for ; j+1 < n; j += 2 {
				c0, c1 := dot1x2(a0, b.Row(j)[k0:k1], b.Row(j + 1)[k0:k1])
				d0[j] += c0
				d0[j+1] += c1
			}
			if j < n {
				d0[j] += Dot(a0, b.Row(j)[k0:k1])
			}
		}
	}
}

// mulRangeTiled computes rows [lo, hi) of dst = a*b by accumulating
// row pairs of dst over j-panels: the two destination segments stay in
// L1 across the whole k loop while b streams through once per pair.
// The target rows are zeroed here.
func mulRangeTiled(dst, a, b *Matrix, lo, hi int) {
	kn, n := a.ColsN, b.ColsN
	for i := lo; i < hi; i++ {
		row := dst.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
	for j0 := 0; j0 < n; j0 += mulPanelCols {
		j1 := min(j0+mulPanelCols, n)
		i := lo
		for ; i+1 < hi; i += 2 {
			a0 := a.Row(i)
			a1 := a.Row(i + 1)
			d0 := dst.Row(i)[j0:j1]
			d1 := dst.Row(i + 1)[j0:j1]
			for k := 0; k < kn; k++ {
				x0 := a0[k]
				x1 := a1[k]
				if x0 == 0 && x1 == 0 {
					continue
				}
				bk := b.Row(k)[j0:j1]
				if x1 == 0 {
					axpy(x0, bk, d0)
				} else if x0 == 0 {
					axpy(x1, bk, d1)
				} else {
					axpy2(x0, x1, bk, d0, d1)
				}
			}
		}
		if i < hi {
			ai := a.Row(i)
			di := dst.Row(i)[j0:j1]
			for k := 0; k < kn; k++ {
				if x := ai[k]; x != 0 {
					axpy(x, b.Row(k)[j0:j1], di)
				}
			}
		}
	}
}

// mirrorLower copies the strict upper triangle of the symmetric dst
// into its strict lower triangle.
func mirrorLower(dst *Matrix) {
	m := dst.RowsN
	for i := 1; i < m; i++ {
		row := dst.Row(i)
		for j := 0; j < i; j++ {
			row[j] = dst.At(j, i)
		}
	}
}
