package mat

import (
	"runtime"
	"sync"
	"time"

	"arams/internal/obs"
)

// This file is the shared execution layer for the dense kernels: a
// process-wide bounded worker pool with a chunked parallel-for, plus
// the per-kernel timing instrumentation every public kernel records
// into. Before this layer each kernel call spun up its own ad-hoc
// goroutines and channels (Gram even ran a feeder goroutine for a
// 2ℓ×2ℓ product); now a fixed set of workers started once serves every
// kernel in the process, concurrent sketches included, and small
// shapes never leave the calling goroutine.

// Pool observability: queue depth is a live gauge, tasks/inline-runs
// are counters, and each public kernel records its wall time into a
// per-kernel histogram (arams_mat_kernel_seconds{kernel=...}).
var (
	obsPoolTasks   = obs.Default().Counter("arams_mat_pool_tasks_total")
	obsPoolInline  = obs.Default().Counter("arams_mat_pool_inline_total")
	obsPoolDepth   = obs.Default().Gauge("arams_mat_pool_queue_depth")
	obsPoolWorkers = obs.Default().Gauge("arams_mat_pool_workers")
	obsPoolCPU     = obs.Default().Counter("arams_mat_pool_cpu_seconds_total")

	obsKernelMul    = obs.Default().Histogram("arams_mat_kernel_seconds", obs.L("kernel", "mul"))
	obsKernelMulABt = obs.Default().Histogram("arams_mat_kernel_seconds", obs.L("kernel", "mulabt"))
	obsKernelGram   = obs.Default().Histogram("arams_mat_kernel_seconds", obs.L("kernel", "gram"))
	obsKernelEig    = obs.Default().Histogram("arams_mat_kernel_seconds", obs.L("kernel", "eigsym"))
	obsKernelSVD    = obs.Default().Histogram("arams_mat_kernel_seconds", obs.L("kernel", "svd"))
	obsKernelSVDG   = obs.Default().Histogram("arams_mat_kernel_seconds", obs.L("kernel", "svdgram"))
)

// observeSince records a kernel duration; split out so call sites stay
// one line and allocation-free.
func observeSince(h *obs.Histogram, start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// poolTask is one [lo, hi) chunk of a parallel-for.
type poolTask struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	poolOnce  sync.Once
	poolSize  int
	poolQueue chan poolTask
)

// startPool launches the shared workers exactly once, lazily, so
// importing the package costs nothing until a kernel actually wants
// parallelism.
func startPool() {
	poolSize = runtime.GOMAXPROCS(0)
	if poolSize < 1 {
		poolSize = 1
	}
	poolQueue = newPoolQueue(poolSize)
	obsPoolWorkers.SetInt(poolSize)
}

// newPoolQueue builds a bounded task queue served by size workers. The
// queue holds a few chunks per worker: deep enough to keep workers busy
// across kernels, shallow enough that a saturated pool pushes work back
// onto callers instead of building a backlog.
//
// Each worker pins itself to its OS thread for its whole life and
// samples the thread CPU clock around every task, so
// arams_mat_pool_cpu_seconds_total is the pool's honest compute cost:
// wall time inflates when goroutines time-slice on an oversubscribed
// host, CPU time cannot. The pin is free when the platform has no
// thread clock — sampling just degrades to no-ops.
func newPoolQueue(size int) chan poolTask {
	queue := make(chan poolTask, 4*size)
	for w := 0; w < size; w++ {
		go func() {
			runtime.LockOSThread()
			for t := range queue {
				obsPoolDepth.SetInt(len(queue))
				c0, ok := obs.ThreadCPU()
				t.fn(t.lo, t.hi)
				if ok {
					if c1, ok2 := obs.ThreadCPU(); ok2 && c1 > c0 {
						obsPoolCPU.Add((c1 - c0).Seconds())
					}
				}
				t.wg.Done()
			}
		}()
	}
	return queue
}

// Workers returns the width of the shared kernel worker pool
// (GOMAXPROCS at first use).
func Workers() int {
	poolOnce.Do(startPool)
	return poolSize
}

// ParallelFor splits [0, n) into chunks of at least minChunk indices
// and runs fn over them on the shared pool. The caller always executes
// the first chunk itself and runs further chunks inline whenever the
// queue is full, so a ParallelFor never blocks behind unrelated
// kernels, never deadlocks when invoked from inside pool work, and
// degrades to a plain serial loop on single-core hosts. fn must be
// safe for concurrent invocation on disjoint ranges.
func ParallelFor(n, minChunk int, fn func(lo, hi int)) {
	poolOnce.Do(startPool)
	parallelForOn(poolSize, poolQueue, n, minChunk, fn)
}

// parallelForOn is ParallelFor against an explicit pool, so tests can
// exercise the chunking, enqueueing, and inline-fallback logic on a
// multi-worker pool regardless of the host's core count.
func parallelForOn(size int, queue chan poolTask, n, minChunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	if size == 1 || n <= minChunk {
		fn(0, n)
		return
	}
	chunks := (n + minChunk - 1) / minChunk
	if maxChunks := 4 * size; chunks > maxChunks {
		chunks = maxChunks
	}
	chunk := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		select {
		case queue <- poolTask{fn: fn, lo: lo, hi: hi, wg: &wg}:
			obsPoolTasks.Inc()
			obsPoolDepth.SetInt(len(queue))
		default:
			obsPoolInline.Inc()
			fn(lo, hi)
			wg.Done()
		}
	}
	fn(0, min(chunk, n))
	wg.Wait()
}
