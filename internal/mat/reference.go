package mat

import (
	"math"
	"runtime"
	"sync"
)

// Reference kernels: the straightforward implementations that MulTo,
// MulABt, and Gram shipped with before the tiled execution layer.
// They are kept for two jobs — property tests assert the tiled kernels
// match them to 1e-12, and the BENCH_kernels.json baseline measures
// the tiled kernels against them — so they must stay byte-for-byte
// faithful to the originals (including the per-call goroutines and the
// Gram feeder channel whose overhead the pool was built to remove).

// RefMulTo computes dst = a*b with the pre-tiling kernel: i-k-j axpy
// order, one ad-hoc goroutine per row chunk above the parallel
// threshold.
func RefMulTo(dst, a, b *Matrix) {
	if a.ColsN != b.RowsN || dst.RowsN != a.RowsN || dst.ColsN != b.ColsN {
		panic("mat: RefMulTo shape mismatch")
	}
	dst.Zero()
	work := a.RowsN * a.ColsN * b.ColsN
	if work < parallelThreshold || a.RowsN == 1 {
		refMulRange(dst, a, b, 0, a.RowsN)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > a.RowsN {
		workers = a.RowsN
	}
	var wg sync.WaitGroup
	chunk := (a.RowsN + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, a.RowsN)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			refMulRange(dst, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func refMulRange(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		di := dst.Row(i)
		for k, aik := range ai {
			if aik == 0 {
				continue
			}
			bk := b.Row(k)
			axpy(aik, bk, di)
		}
	}
}

// RefMulABt computes a*bᵀ with the pre-tiling kernel: one Dot per
// output element, ad-hoc goroutines above the parallel threshold.
func RefMulABt(a, b *Matrix) *Matrix {
	if a.ColsN != b.ColsN {
		panic("mat: RefMulABt inner dimension mismatch")
	}
	out := New(a.RowsN, b.RowsN)
	work := a.RowsN * b.RowsN * a.ColsN
	if work < parallelThreshold {
		refMulABtRange(out, a, b, 0, a.RowsN)
		return out
	}
	workers := min(runtime.GOMAXPROCS(0), a.RowsN)
	var wg sync.WaitGroup
	chunk := (a.RowsN + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, a.RowsN)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			refMulABtRange(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

func refMulABtRange(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		di := dst.Row(i)
		for j := 0; j < b.RowsN; j++ {
			di[j] = Dot(ai, b.Row(j))
		}
	}
}

// RefGram computes a*aᵀ with the pre-tiling kernel: one Dot per upper
// triangle element, rows handed to workers through a feeder channel
// (launched even for tiny matrices — the overhead the pool removed).
func RefGram(a *Matrix) *Matrix {
	out := New(a.RowsN, a.RowsN)
	workers := min(runtime.GOMAXPROCS(0), a.RowsN)
	if a.RowsN*a.RowsN*a.ColsN < parallelThreshold {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < a.RowsN; i++ {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				ai := a.Row(i)
				for j := i; j < a.RowsN; j++ {
					v := Dot(ai, a.Row(j))
					out.Set(i, j, v)
					out.Set(j, i, v)
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// RefSVDGram computes the Gram-trick thin SVD with the pre-pooling
// flow: RefGram, an allocating eigendecomposition, and the per-k axpy
// reconstruction of vt — one fresh m×d vt allocation per call. It is
// the baseline the pooled SVDGramTo path is benchmarked against.
func RefSVDGram(a *Matrix) (u *Matrix, s []float64, vt *Matrix) {
	m, d := a.Dims()
	g := RefGram(a)
	vals, uu := EigSym(g)
	s = make([]float64, m)
	var maxVal float64
	if len(vals) > 0 && vals[0] > 0 {
		maxVal = vals[0]
	}
	for i, v := range vals {
		if v < 0 {
			v = 0
		}
		s[i] = math.Sqrt(v)
	}
	u = uu
	vt = New(m, d)
	tol := 1e-14 * math.Sqrt(maxVal)
	for i := 0; i < m; i++ {
		if s[i] <= tol {
			continue
		}
		inv := 1 / s[i]
		row := vt.Row(i)
		for k := 0; k < m; k++ {
			c := u.At(k, i) * inv
			if c == 0 {
				continue
			}
			axpy(c, a.Row(k), row)
		}
	}
	return u, s, vt
}
