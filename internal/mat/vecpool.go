package mat

import "sync"

// Pooled float64 vectors for the streaming ingest hot path. Every frame
// that enters the engine needs a working buffer the preprocessing chain
// can scribble on and the sketch can adopt; at 120 Hz with d up to a
// megapixel those allocations dominate the GC budget. The engine
// returns vectors here when the sliding window evicts them, so a
// steady-state stream recycles a fixed set of buffers instead of
// allocating one per frame.
//
// The pool is size-agnostic: GetVec returns a zero-filled slice of
// exactly n elements, reusing a pooled backing array when its capacity
// suffices and discarding undersized ones to the GC. Deployments have
// one or two fixed sizes in flight (raw W·H and the post-binning
// feature dimension), so the hit rate is high in practice.

var vecPool sync.Pool

// GetVec returns a zeroed vector of length n, backed by recycled
// storage when available.
func GetVec(n int) []float64 {
	if v, ok := vecPool.Get().(*[]float64); ok && cap(*v) >= n {
		s := (*v)[:n]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	return make([]float64, n)
}

// PutVec recycles a vector obtained from GetVec (or anywhere else — the
// pool only cares about the backing array). The caller must not touch v
// afterwards. Nil and zero-capacity slices are dropped.
func PutVec(v []float64) {
	if cap(v) == 0 {
		return
	}
	v = v[:0]
	vecPool.Put(&v)
}
