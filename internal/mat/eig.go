package mat

import (
	"math"
	"time"
)

// eigMaxSweeps bounds the cyclic-Jacobi iteration; convergence is
// quadratic once rotations get small, so real inputs finish in a
// handful of sweeps.
const eigMaxSweeps = 64

// eigParallelMinN is the matrix order below which the parallel
// round-robin sweep is never worth its coordination overhead; the
// 2ℓ×2ℓ Gram matrices of typical FD rotations stay serial.
const eigParallelMinN = 96

// EigSym computes the full eigendecomposition of a symmetric n×n matrix
// a using the cyclic Jacobi method: a = v * diag(vals) * vᵀ with the
// eigenvalues sorted in descending order and v's columns the matching
// orthonormal eigenvectors. The input is not modified.
//
// Jacobi iteration is chosen over tridiagonalization+QL because the
// matrices this package decomposes are small (Gram matrices of sketch
// buffers, at most a few hundred rows) and Jacobi delivers high relative
// accuracy for the small eigenvalues that the Frequent Directions shrink
// step subtracts. Large decompositions run the round-robin ordering,
// whose disjoint rotation pairs spread across the shared worker pool.
func EigSym(a *Matrix) (vals []float64, v *Matrix) {
	n := a.RowsN
	if n != a.ColsN {
		panic("mat: EigSym needs a square matrix")
	}
	v = New(n, n)
	if n == 0 {
		setIdentity(v)
		return nil, v
	}
	w := a.Clone()
	vals = make([]float64, n)
	eigSymInto(w, v, vals)
	return vals, v
}

// eigSymInto runs the Jacobi eigendecomposition in caller-owned
// storage: w (destroyed), v (overwritten with eigenvectors), and vals
// (filled with descending eigenvalues). It performs no heap
// allocations on the serial path, which is what the pooled FD rotation
// relies on.
func eigSymInto(w, v *Matrix, vals []float64) {
	start := time.Now()
	n := w.RowsN
	setIdentity(v)
	if n == 0 {
		return
	}
	if n == 1 {
		vals[0] = w.At(0, 0)
		return
	}
	if n >= eigParallelMinN && Workers() > 1 {
		eigSweepsParallel(w, v)
	} else {
		eigSweepsSerial(w, v)
	}
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	sortEigenpairs(vals, v)
	observeSince(obsKernelEig, start)
}

// eigSweepsSerial is the classic cyclic ordering: every (p, q) pair in
// row-major order, repeated until the off-diagonal mass is negligible.
func eigSweepsSerial(w, v *Matrix) {
	n := w.RowsN
	for sweep := 0; sweep < eigMaxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off == 0 {
			break
		}
		// Convergence: off-diagonal mass negligible relative to scale.
		scale := w.MaxAbs()
		if off <= 1e-30*scale*float64(n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Threshold: rotating for vanishing elements only
				// churns; skip if negligible versus the diagonal.
				if math.Abs(apq) <= 1e-18*(math.Abs(app)+math.Abs(aqq)) {
					w.Set(p, q, 0)
					w.Set(q, p, 0)
					continue
				}
				c, s := jacobiAngle(app, aqq, apq)
				applyJacobi(w, v, p, q, c, s)
			}
		}
	}
}

// eigSweepsParallel runs the round-robin (chess tournament) ordering:
// each of the n−1 rounds per sweep pairs every index exactly once, the
// pairs are disjoint, and one round's rotations commute — so the row
// phase and the column phase each fan out over the pool with a barrier
// between them. Rotation angles for a round are computed up front from
// the round-start matrix, which is what makes the phases exact (the
// product of disjoint plane rotations applied as JᵀAJ).
func eigSweepsParallel(w, v *Matrix) {
	n := w.RowsN
	np := n
	if np%2 == 1 {
		np++ // pad with a bye
	}
	players := make([]int, np)
	for i := range players {
		players[i] = i
	}
	if np > n {
		players[np-1] = -1
	}
	half := np / 2
	ps := make([]int, half)
	qs := make([]int, half)
	cs := make([]float64, half)
	sn := make([]float64, half)
	active := make([]bool, half)

	for sweep := 0; sweep < eigMaxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off == 0 {
			break
		}
		scale := w.MaxAbs()
		if off <= 1e-30*scale*float64(n) {
			break
		}
		for round := 0; round < np-1; round++ {
			nact := 0
			for k := 0; k < half; k++ {
				active[k] = false
				p, q := players[k], players[np-1-k]
				if p < 0 || q < 0 {
					continue
				}
				if p > q {
					p, q = q, p
				}
				apq := w.At(p, q)
				if apq == 0 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				if math.Abs(apq) <= 1e-18*(math.Abs(app)+math.Abs(aqq)) {
					w.Set(p, q, 0)
					w.Set(q, p, 0)
					continue
				}
				cs[k], sn[k] = jacobiAngle(app, aqq, apq)
				ps[k], qs[k] = p, q
				active[k] = true
				nact++
			}
			if nact > 0 {
				ParallelFor(half, 1, func(lo, hi int) {
					for k := lo; k < hi; k++ {
						if active[k] {
							rotateRows(w, ps[k], qs[k], cs[k], sn[k])
						}
					}
				})
				ParallelFor(half, 1, func(lo, hi int) {
					for k := lo; k < hi; k++ {
						if active[k] {
							rotateCols(w, v, ps[k], qs[k], cs[k], sn[k])
							w.Set(ps[k], qs[k], 0)
							w.Set(qs[k], ps[k], 0)
						}
					}
				})
			}
			rotatePlayers(players)
		}
	}
}

// jacobiAngle returns the stable (c, s) of the rotation annihilating
// apq (Golub & Van Loan).
func jacobiAngle(app, aqq, apq float64) (c, s float64) {
	theta := (aqq - app) / (2 * apq)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c = 1 / math.Sqrt(1+t*t)
	s = t * c
	return c, s
}

// rotateRows applies the left half of the similarity transform,
// w ← Jᵀw: rows p and q are recombined, other rows untouched.
func rotateRows(w *Matrix, p, q int, c, s float64) {
	rp := w.Row(p)
	rq := w.Row(q)
	for j := range rp {
		wp := rp[j]
		wq := rq[j]
		rp[j] = c*wp - s*wq
		rq[j] = s*wp + c*wq
	}
}

// rotateCols applies the right half, w ← wJ, and accumulates the
// eigenvector rotation v ← vJ. Columns p and q only.
func rotateCols(w, v *Matrix, p, q int, c, s float64) {
	n := w.RowsN
	for i := 0; i < n; i++ {
		wp := w.At(i, p)
		wq := w.At(i, q)
		w.Set(i, p, c*wp-s*wq)
		w.Set(i, q, s*wp+c*wq)
	}
	for i := 0; i < v.RowsN; i++ {
		vp := v.At(i, p)
		vq := v.At(i, q)
		v.Set(i, p, c*vp-s*vq)
		v.Set(i, q, s*vp+c*vq)
	}
}

// rotatePlayers advances the round-robin schedule: index 0 is fixed,
// the rest rotate one position.
func rotatePlayers(players []int) {
	np := len(players)
	last := players[np-1]
	copy(players[2:], players[1:np-1])
	players[1] = last
}

// sortEigenpairs orders (vals, columns of v) by descending eigenvalue
// in place with a selection sort — no allocation, and n is at most a
// few hundred.
func sortEigenpairs(vals []float64, v *Matrix) {
	n := len(vals)
	for j := 0; j < n; j++ {
		mx := j
		for k := j + 1; k < n; k++ {
			if vals[k] > vals[mx] {
				mx = k
			}
		}
		if mx != j {
			vals[j], vals[mx] = vals[mx], vals[j]
			for i := 0; i < v.RowsN; i++ {
				t := v.At(i, j)
				v.Set(i, j, v.At(i, mx))
				v.Set(i, mx, t)
			}
		}
	}
}

// setIdentity overwrites m with the identity.
func setIdentity(m *Matrix) {
	for i := 0; i < m.RowsN; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 0
		}
		if i < m.ColsN {
			row[i] = 1
		}
	}
}

// applyJacobi applies the rotation J(p,q,c,s) as w = JᵀwJ and v = vJ.
func applyJacobi(w, v *Matrix, p, q int, c, s float64) {
	n := w.RowsN
	app := w.At(p, p)
	aqq := w.At(q, q)
	apq := w.At(p, q)
	// Update the 2×2 block exactly.
	w.Set(p, p, c*c*app-2*s*c*apq+s*s*aqq)
	w.Set(q, q, s*s*app+2*s*c*apq+c*c*aqq)
	w.Set(p, q, 0)
	w.Set(q, p, 0)
	for i := 0; i < n; i++ {
		if i == p || i == q {
			continue
		}
		aip := w.At(i, p)
		aiq := w.At(i, q)
		w.Set(i, p, c*aip-s*aiq)
		w.Set(p, i, c*aip-s*aiq)
		w.Set(i, q, s*aip+c*aiq)
		w.Set(q, i, s*aip+c*aiq)
	}
	for i := 0; i < n; i++ {
		vip := v.At(i, p)
		viq := v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagNorm(w *Matrix) float64 {
	var s float64
	n := w.RowsN
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := w.At(i, j)
			s += 2 * v * v
		}
	}
	return math.Sqrt(s)
}
