package mat

import (
	"math"
	"sort"
)

// EigSym computes the full eigendecomposition of a symmetric n×n matrix
// a using the cyclic Jacobi method: a = v * diag(vals) * vᵀ with the
// eigenvalues sorted in descending order and v's columns the matching
// orthonormal eigenvectors. The input is not modified.
//
// Jacobi iteration is chosen over tridiagonalization+QL because the
// matrices this package decomposes are small (Gram matrices of sketch
// buffers, at most a few hundred rows) and Jacobi delivers high relative
// accuracy for the small eigenvalues that the Frequent Directions shrink
// step subtracts.
func EigSym(a *Matrix) (vals []float64, v *Matrix) {
	n := a.RowsN
	if n != a.ColsN {
		panic("mat: EigSym needs a square matrix")
	}
	w := a.Clone()
	v = Eye(n)
	if n == 0 {
		return nil, v
	}
	if n == 1 {
		return []float64{w.At(0, 0)}, v
	}

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off == 0 {
			break
		}
		// Convergence: off-diagonal mass negligible relative to scale.
		scale := w.MaxAbs()
		if off <= 1e-30*scale*float64(n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Threshold: rotating for vanishing elements only
				// churns; skip if negligible versus the diagonal.
				if math.Abs(apq) <= 1e-18*(math.Abs(app)+math.Abs(aqq)) {
					w.Set(p, q, 0)
					w.Set(q, p, 0)
					continue
				}
				// Stable computation of the rotation (Golub & Van Loan).
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				applyJacobi(w, v, p, q, c, s)
			}
		}
	}

	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sortedVals := make([]float64, n)
	sortedV := New(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for i := 0; i < n; i++ {
			sortedV.Set(i, newCol, v.At(i, oldCol))
		}
	}
	return sortedVals, sortedV
}

// applyJacobi applies the rotation J(p,q,c,s) as w = JᵀwJ and v = vJ.
func applyJacobi(w, v *Matrix, p, q int, c, s float64) {
	n := w.RowsN
	app := w.At(p, p)
	aqq := w.At(q, q)
	apq := w.At(p, q)
	// Update the 2×2 block exactly.
	w.Set(p, p, c*c*app-2*s*c*apq+s*s*aqq)
	w.Set(q, q, s*s*app+2*s*c*apq+c*c*aqq)
	w.Set(p, q, 0)
	w.Set(q, p, 0)
	for i := 0; i < n; i++ {
		if i == p || i == q {
			continue
		}
		aip := w.At(i, p)
		aiq := w.At(i, q)
		w.Set(i, p, c*aip-s*aiq)
		w.Set(p, i, c*aip-s*aiq)
		w.Set(i, q, s*aip+c*aiq)
		w.Set(q, i, s*aip+c*aiq)
	}
	for i := 0; i < n; i++ {
		vip := v.At(i, p)
		viq := v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagNorm(w *Matrix) float64 {
	var s float64
	n := w.RowsN
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := w.At(i, j)
			s += 2 * v * v
		}
	}
	return math.Sqrt(s)
}
