package mat

import (
	"math"
	"testing"

	"arams/internal/rng"
)

// relDiff returns the worst elementwise deviation between a and b,
// relative to b's largest magnitude — the tiled kernels reassociate the
// k-sum, so agreement is to relative (not absolute) precision.
func relDiff(a, b *Matrix) float64 {
	var worst, scale float64
	for i := 0; i < a.RowsN; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if d := math.Abs(ra[j] - rb[j]); d > worst {
				worst = d
			}
			if m := math.Abs(rb[j]); m > scale {
				scale = m
			}
		}
	}
	if scale == 0 {
		return worst
	}
	return worst / scale
}

// Shapes chosen to stress every tail of the tiled kernels: single rows
// (no 2×2 pair at all), odd row counts (one tail row after pairing),
// inner dimensions just past the k-panel (1024) and j-panel (2048)
// widths, FD-rotation shapes (2ℓ×d wide), and tall-skinny.
var tiledShapes = []struct{ m, k, n int }{
	{1, 7, 5},
	{1, 4096, 1},
	{3, 1025, 9},
	{7, 3, 2},
	{16, 1031, 16},
	{64, 4096, 64},
	{5, 2049, 3},
	{129, 2, 129},
	{2, 2, 2},
	{31, 17, 29},
}

func TestTiledMulToMatchesReference(t *testing.T) {
	g := rng.New(201)
	for _, sh := range tiledShapes {
		a := RandGaussian(sh.m, sh.k, g)
		b := RandGaussian(sh.k, sh.n, g)
		got := New(sh.m, sh.n)
		MulTo(got, a, b)
		want := New(sh.m, sh.n)
		RefMulTo(want, a, b)
		if d := relDiff(got, want); d > 1e-12 {
			t.Errorf("MulTo %dx%dx%d deviates from reference by %g", sh.m, sh.k, sh.n, d)
		}
	}
}

func TestTiledMulABtMatchesReference(t *testing.T) {
	g := rng.New(202)
	for _, sh := range tiledShapes {
		a := RandGaussian(sh.m, sh.k, g)
		b := RandGaussian(sh.n, sh.k, g)
		got := New(sh.m, sh.n)
		MulABtTo(got, a, b)
		want := RefMulABt(a, b)
		if d := relDiff(got, want); d > 1e-12 {
			t.Errorf("MulABtTo %dx%dx%d deviates from reference by %g", sh.m, sh.k, sh.n, d)
		}
	}
}

func TestTiledGramMatchesReference(t *testing.T) {
	g := rng.New(203)
	for _, sh := range tiledShapes {
		a := RandGaussian(sh.m, sh.k, g)
		got := New(sh.m, sh.m)
		GramTo(got, a)
		want := RefGram(a)
		if d := relDiff(got, want); d > 1e-12 {
			t.Errorf("GramTo %dx%d deviates from reference by %g", sh.m, sh.k, d)
		}
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.m; j++ {
				if got.At(i, j) != got.At(j, i) {
					t.Fatalf("GramTo %dx%d not exactly symmetric at (%d,%d)", sh.m, sh.k, i, j)
				}
			}
		}
	}
}

func TestSVDGramToMatchesReference(t *testing.T) {
	g := rng.New(204)
	for _, sh := range []struct{ m, d int }{{1, 9}, {5, 300}, {16, 1031}, {64, 512}} {
		a := RandGaussian(sh.m, sh.d, g)
		_, sRef, vtRef := RefSVDGram(a)
		vt := New(sh.m, sh.d)
		s := SVDGramTo(a, nil, vt)
		for i := range s {
			if math.Abs(s[i]-sRef[i]) > 1e-9*(1+sRef[0]) {
				t.Fatalf("m=%d d=%d: σ[%d] = %g, reference %g", sh.m, sh.d, i, s[i], sRef[i])
			}
		}
		// Singular vectors are sign-ambiguous; well-separated Gaussian
		// spectra let us compare row alignment instead.
		for i := range s {
			if s[i] <= 1e-6*(1+sRef[0]) {
				continue
			}
			dot := Dot(vt.Row(i), vtRef.Row(i))
			if math.Abs(math.Abs(dot)-1) > 1e-6 {
				t.Fatalf("m=%d d=%d: vt row %d misaligned with reference (|dot| = %g)", sh.m, sh.d, i, math.Abs(dot))
			}
		}
	}
}

func TestSVDGramToReusesCallerStorage(t *testing.T) {
	g := rng.New(205)
	a := RandGaussian(8, 64, g)
	vt := New(8, 64)
	sigma := make([]float64, 0, 8)
	got := SVDGramTo(a, sigma, vt)
	if &got[:1][0] != &sigma[:1][0] {
		t.Fatal("SVDGramTo reallocated sigma despite sufficient capacity")
	}
}

// TestParallelJacobiEigMatchesSerial drives the round-robin sweep
// directly (the size gates keep these shapes serial in EigSym) and
// checks it produces the same spectrum and an orthonormal factor that
// reconstructs the input.
func TestParallelJacobiEigMatchesSerial(t *testing.T) {
	g := rng.New(206)
	for _, n := range []int{2, 3, 17, 64, 97} {
		b := RandGaussian(n, n+3, g)
		a := Gram(b) // symmetric PSD test matrix

		ws := a.Clone()
		vs := New(n, n)
		setIdentity(vs)
		eigSweepsSerial(ws, vs)

		wp := a.Clone()
		vp := New(n, n)
		setIdentity(vp)
		eigSweepsParallel(wp, vp)

		valsS := make([]float64, n)
		valsP := make([]float64, n)
		for i := 0; i < n; i++ {
			valsS[i] = ws.At(i, i)
			valsP[i] = wp.At(i, i)
		}
		sortEigenpairs(valsS, vs)
		sortEigenpairs(valsP, vp)
		scale := 1 + math.Abs(valsS[0])
		for i := range valsS {
			if math.Abs(valsS[i]-valsP[i]) > 1e-9*scale {
				t.Fatalf("n=%d: eigenvalue %d: serial %g parallel %g", n, i, valsS[i], valsP[i])
			}
		}
		if !Mul(vp.T(), vp).Equal(Eye(n), 1e-9) {
			t.Fatalf("n=%d: parallel eigenvectors not orthonormal", n)
		}
		recon := Mul(vp, Mul(Diag(valsP), vp.T()))
		if !recon.Equal(a, 1e-8*scale) {
			t.Fatalf("n=%d: parallel V·Λ·Vᵀ does not reconstruct input", n)
		}
	}
}

func TestParallelJacobiSVDMatchesSerial(t *testing.T) {
	g := rng.New(207)
	for _, sh := range []struct{ m, n int }{{8, 5}, {60, 49}, {70, 64}} {
		a := RandGaussian(sh.m, sh.n, g)

		ws := a.Clone()
		vs := Eye(sh.n)
		svdSweepsSerial(ws, vs)

		wp := a.Clone()
		vp := Eye(sh.n)
		svdSweepsParallel(wp, vp)

		colNorms := func(w *Matrix) []float64 {
			out := make([]float64, w.ColsN)
			for j := 0; j < w.ColsN; j++ {
				var s float64
				for i := 0; i < w.RowsN; i++ {
					s += w.At(i, j) * w.At(i, j)
				}
				out[j] = math.Sqrt(s)
			}
			return out
		}
		ns := colNorms(ws)
		np := colNorms(wp)
		sortFloatsDesc(ns)
		sortFloatsDesc(np)
		scale := 1 + ns[0]
		for i := range ns {
			if math.Abs(ns[i]-np[i]) > 1e-9*scale {
				t.Fatalf("%dx%d: singular value %d: serial %g parallel %g", sh.m, sh.n, i, ns[i], np[i])
			}
		}
		// W·Vᵀ must reconstruct the input for both orderings.
		if !Mul(wp, vp.T()).Equal(a, 1e-9*scale) {
			t.Fatalf("%dx%d: parallel W·Vᵀ does not reconstruct input", sh.m, sh.n)
		}
	}
}

func sortFloatsDesc(s []float64) {
	for i := range s {
		mx := i
		for j := i + 1; j < len(s); j++ {
			if s[j] > s[mx] {
				mx = j
			}
		}
		s[i], s[mx] = s[mx], s[i]
	}
}
