package mat

import (
	"math"
	"sort"
	"time"
)

// svdMaxSweeps bounds the one-sided Jacobi iteration.
const svdMaxSweeps = 60

// svdParallelMinN is the minimum column count before the one-sided
// Jacobi sweep fans its disjoint column pairs across the worker pool.
const svdParallelMinN = 48

// SVD computes the thin singular value decomposition a = u*diag(s)*vt
// of an m×n matrix using the one-sided Jacobi method. With k = min(m,n),
// u is m×k with orthonormal columns, s has k non-negative entries in
// descending order, and vt is k×n with orthonormal rows.
//
// One-sided Jacobi applies plane rotations to pairs of columns until all
// columns are mutually orthogonal; it is simple, backward stable, and
// achieves high relative accuracy, which matters because Frequent
// Directions subtracts the smallest retained singular value. Column
// pairs within a round-robin round are disjoint, so large
// decompositions rotate them concurrently on the shared pool.
func SVD(a *Matrix) (u *Matrix, s []float64, vt *Matrix) {
	start := time.Now()
	defer observeSince(obsKernelSVD, start)
	m, n := a.Dims()
	if m >= n {
		return svdTall(a)
	}
	// Wide matrix: decompose the transpose and swap factors.
	ut, st, vtt := svdTall(a.T())
	return vtt.T(), st, ut.T()
}

// svdTall runs one-sided Jacobi on an m×n matrix with m >= n.
func svdTall(a *Matrix) (u *Matrix, s []float64, vt *Matrix) {
	m, n := a.Dims()
	w := a.Clone()
	v := Eye(n)
	if n == 0 {
		return New(m, 0), nil, New(0, 0)
	}

	if n >= svdParallelMinN && m*n >= parallelThreshold && Workers() > 1 {
		svdSweepsParallel(w, v)
	} else {
		svdSweepsSerial(w, v)
	}

	// Column norms are the singular values; normalized columns form U.
	s = make([]float64, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			norm += w.At(i, j) * w.At(i, j)
		}
		s[j] = math.Sqrt(norm)
	}
	// Sort descending.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return s[idx[i]] > s[idx[j]] })

	u = New(m, n)
	vt = New(n, n)
	sorted := make([]float64, n)
	maxS := 0.0
	for _, j := range idx {
		if s[j] > maxS {
			maxS = s[j]
		}
	}
	for newJ, oldJ := range idx {
		sorted[newJ] = s[oldJ]
		if s[oldJ] > 1e-300 && s[oldJ] > 1e-15*maxS {
			inv := 1 / s[oldJ]
			for i := 0; i < m; i++ {
				u.Set(i, newJ, w.At(i, oldJ)*inv)
			}
		}
		for i := 0; i < n; i++ {
			vt.Set(newJ, i, v.At(i, oldJ))
		}
	}
	return u, sorted, vt
}

// svdRotatePair orthogonalizes columns p and q of w (accumulating the
// rotation into v) and reports whether it rotated. It touches only
// those two columns, which is what makes disjoint pairs parallel-safe.
func svdRotatePair(w, v *Matrix, p, q int) bool {
	m, n := w.Dims()
	var alpha, beta, gamma float64 // ‖p‖², ‖q‖², <p,q>
	for i := 0; i < m; i++ {
		wp := w.At(i, p)
		wq := w.At(i, q)
		alpha += wp * wp
		beta += wq * wq
		gamma += wp * wq
	}
	if gamma == 0 {
		return false
	}
	// Orthogonal enough relative to the column scales?
	if math.Abs(gamma) <= 1e-15*math.Sqrt(alpha*beta) {
		return false
	}
	zeta := (beta - alpha) / (2 * gamma)
	var t float64
	if zeta >= 0 {
		t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
	} else {
		t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
	}
	c := 1 / math.Sqrt(1+t*t)
	sn := t * c
	for i := 0; i < m; i++ {
		wp := w.At(i, p)
		wq := w.At(i, q)
		w.Set(i, p, c*wp-sn*wq)
		w.Set(i, q, sn*wp+c*wq)
	}
	for i := 0; i < n; i++ {
		vp := v.At(i, p)
		vq := v.At(i, q)
		v.Set(i, p, c*vp-sn*vq)
		v.Set(i, q, sn*vp+c*vq)
	}
	return true
}

// svdSweepsSerial is the classic cyclic pair ordering.
func svdSweepsSerial(w, v *Matrix) {
	n := w.ColsN
	for sweep := 0; sweep < svdMaxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if svdRotatePair(w, v, p, q) {
					rotated = true
				}
			}
		}
		if !rotated {
			break
		}
	}
}

// svdSweepsParallel runs the round-robin ordering; the pairs of one
// round touch disjoint columns, so each round fans out over the pool.
// Unlike the two-sided eigensolver no phase split is needed — a
// one-sided rotation reads and writes only its own two columns.
func svdSweepsParallel(w, v *Matrix) {
	n := w.ColsN
	np := n
	if np%2 == 1 {
		np++
	}
	players := make([]int, np)
	for i := range players {
		players[i] = i
	}
	if np > n {
		players[np-1] = -1
	}
	half := np / 2
	rotatedPair := make([]bool, half)
	for sweep := 0; sweep < svdMaxSweeps; sweep++ {
		rotated := false
		for round := 0; round < np-1; round++ {
			ParallelFor(half, 1, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					p, q := players[k], players[np-1-k]
					if p < 0 || q < 0 {
						rotatedPair[k] = false
						continue
					}
					if p > q {
						p, q = q, p
					}
					rotatedPair[k] = svdRotatePair(w, v, p, q)
				}
			})
			for _, r := range rotatedPair {
				if r {
					rotated = true
				}
			}
			rotatePlayers(players)
		}
		if !rotated {
			break
		}
	}
}

// SVDGram computes the thin SVD of a short-and-wide m×d matrix
// (m << d) through the m×m Gram matrix G = a*aᵀ: eigendecomposing G
// gives U and Σ², and the right singular vectors follow from
// vt = Σ⁻¹ Uᵀ a. It never forms any d×d object, so it is the rotation
// kernel used by Frequent Directions on 2-megapixel-wide buffers.
//
// Rows of vt whose singular value is numerically zero (relative to the
// largest) are left as zero rows; the FD shrink step multiplies them by
// zero anyway.
func SVDGram(a *Matrix) (u *Matrix, s []float64, vt *Matrix) {
	m, d := a.Dims()
	s = make([]float64, m)
	vt = New(m, d)
	u = New(m, m)
	svdGramCore(a, s, vt, u)
	return u, s, vt
}

// SVDGramTo is SVDGram without the left factor, writing into
// caller-owned storage: sigma must have capacity >= m (it is resized
// and returned), vt must be m×d. All internal workspace — the Gram
// matrix, the eigensolver state, and the back-substitution
// coefficients — comes from a process-wide pool, so steady-state calls
// perform zero heap allocations. This is the FD rotation entry point.
func SVDGramTo(a *Matrix, sigma []float64, vt *Matrix) []float64 {
	m := a.RowsN
	if cap(sigma) < m {
		sigma = make([]float64, m)
	}
	sigma = sigma[:m]
	svdGramCore(a, sigma, vt, nil)
	return sigma
}

// svdGramCore runs the Gram-trick SVD: s and vt are caller storage,
// u is filled with the left singular vectors when non-nil.
func svdGramCore(a *Matrix, s []float64, vt *Matrix, u *Matrix) {
	start := time.Now()
	m, d := a.Dims()
	if vt.RowsN != m || vt.ColsN != d {
		panic("mat: SVDGram vt shape mismatch")
	}
	sc := grabSVDScratch()
	sc.g = ensureMat(sc.g, m, m)
	GramTo(sc.g, a)
	sc.v = ensureMat(sc.v, m, m)
	sc.vals = ensureFloats(sc.vals, m)
	// The eigensolver destroys its input; g is not needed afterwards.
	eigSymInto(sc.g, sc.v, sc.vals)

	var maxVal float64
	if m > 0 && sc.vals[0] > 0 {
		maxVal = sc.vals[0]
	}
	for i, v := range sc.vals {
		if v < 0 {
			v = 0 // clamp tiny negative eigenvalues from roundoff
		}
		s[i] = math.Sqrt(v)
	}
	// vt = Σ⁻¹ Uᵀ a as one blocked product: build the m×m coefficient
	// matrix C with C[i,k] = U[k,i]/σᵢ (zero rows for numerically zero
	// σᵢ) and multiply. MulTo zeroes vt, so the sub-tolerance rows come
	// out as the documented zero rows.
	sc.coef = ensureMat(sc.coef, m, m)
	tol := 1e-14 * math.Sqrt(maxVal)
	for i := 0; i < m; i++ {
		row := sc.coef.Row(i)
		if s[i] <= tol {
			for k := range row {
				row[k] = 0
			}
			continue
		}
		inv := 1 / s[i]
		for k := 0; k < m; k++ {
			row[k] = sc.v.At(k, i) * inv
		}
	}
	MulTo(vt, sc.coef, a)
	if u != nil {
		u.CopyFrom(sc.v)
	}
	releaseSVDScratch(sc)
	observeSince(obsKernelSVDG, start)
}

// TruncateSVD returns the first k columns of u, entries of s, and rows
// of vt. k is clamped to the available rank.
func TruncateSVD(u *Matrix, s []float64, vt *Matrix, k int) (*Matrix, []float64, *Matrix) {
	if k > len(s) {
		k = len(s)
	}
	uk := New(u.RowsN, k)
	for i := 0; i < u.RowsN; i++ {
		copy(uk.Row(i), u.Row(i)[:k])
	}
	sk := append([]float64(nil), s[:k]...)
	vk := New(k, vt.ColsN)
	for i := 0; i < k; i++ {
		copy(vk.Row(i), vt.Row(i))
	}
	return uk, sk, vk
}
