package mat

import (
	"math"
	"sort"
)

// SVD computes the thin singular value decomposition a = u*diag(s)*vt
// of an m×n matrix using the one-sided Jacobi method. With k = min(m,n),
// u is m×k with orthonormal columns, s has k non-negative entries in
// descending order, and vt is k×n with orthonormal rows.
//
// One-sided Jacobi applies plane rotations to pairs of columns until all
// columns are mutually orthogonal; it is simple, backward stable, and
// achieves high relative accuracy, which matters because Frequent
// Directions subtracts the smallest retained singular value.
func SVD(a *Matrix) (u *Matrix, s []float64, vt *Matrix) {
	m, n := a.Dims()
	if m >= n {
		return svdTall(a)
	}
	// Wide matrix: decompose the transpose and swap factors.
	ut, st, vtt := svdTall(a.T())
	return vtt.T(), st, ut.T()
}

// svdTall runs one-sided Jacobi on an m×n matrix with m >= n.
func svdTall(a *Matrix) (u *Matrix, s []float64, vt *Matrix) {
	m, n := a.Dims()
	w := a.Clone()
	v := Eye(n)
	if n == 0 {
		return New(m, 0), nil, New(0, 0)
	}

	const maxSweeps = 60
	// Columns are rotated in place; convergence when every pair is
	// numerically orthogonal.
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var alpha, beta, gamma float64 // ‖p‖², ‖q‖², <p,q>
				for i := 0; i < m; i++ {
					wp := w.At(i, p)
					wq := w.At(i, q)
					alpha += wp * wp
					beta += wq * wq
					gamma += wp * wq
				}
				if gamma == 0 {
					continue
				}
				// Orthogonal enough relative to the column scales?
				if math.Abs(gamma) <= 1e-15*math.Sqrt(alpha*beta) {
					continue
				}
				rotated = true
				zeta := (beta - alpha) / (2 * gamma)
				var t float64
				if zeta >= 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				c := 1 / math.Sqrt(1+t*t)
				sn := t * c
				for i := 0; i < m; i++ {
					wp := w.At(i, p)
					wq := w.At(i, q)
					w.Set(i, p, c*wp-sn*wq)
					w.Set(i, q, sn*wp+c*wq)
				}
				for i := 0; i < n; i++ {
					vp := v.At(i, p)
					vq := v.At(i, q)
					v.Set(i, p, c*vp-sn*vq)
					v.Set(i, q, sn*vp+c*vq)
				}
			}
		}
		if !rotated {
			break
		}
	}

	// Column norms are the singular values; normalized columns form U.
	s = make([]float64, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			norm += w.At(i, j) * w.At(i, j)
		}
		s[j] = math.Sqrt(norm)
	}
	// Sort descending.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return s[idx[i]] > s[idx[j]] })

	u = New(m, n)
	vt = New(n, n)
	sorted := make([]float64, n)
	maxS := 0.0
	for _, j := range idx {
		if s[j] > maxS {
			maxS = s[j]
		}
	}
	for newJ, oldJ := range idx {
		sorted[newJ] = s[oldJ]
		if s[oldJ] > 1e-300 && s[oldJ] > 1e-15*maxS {
			inv := 1 / s[oldJ]
			for i := 0; i < m; i++ {
				u.Set(i, newJ, w.At(i, oldJ)*inv)
			}
		}
		for i := 0; i < n; i++ {
			vt.Set(newJ, i, v.At(i, oldJ))
		}
	}
	return u, sorted, vt
}

// SVDGram computes the thin SVD of a short-and-wide m×d matrix
// (m << d) through the m×m Gram matrix G = a*aᵀ: eigendecomposing G
// gives U and Σ², and the right singular vectors follow from
// vt = Σ⁻¹ Uᵀ a. It never forms any d×d object, so it is the rotation
// kernel used by Frequent Directions on 2-megapixel-wide buffers.
//
// Rows of vt whose singular value is numerically zero (relative to the
// largest) are left as zero rows; the FD shrink step multiplies them by
// zero anyway.
func SVDGram(a *Matrix) (u *Matrix, s []float64, vt *Matrix) {
	m, d := a.Dims()
	g := Gram(a)
	vals, uu := EigSym(g)
	s = make([]float64, m)
	var maxVal float64
	if len(vals) > 0 && vals[0] > 0 {
		maxVal = vals[0]
	}
	for i, v := range vals {
		if v < 0 {
			v = 0 // clamp tiny negative eigenvalues from roundoff
		}
		s[i] = math.Sqrt(v)
	}
	u = uu
	vt = New(m, d)
	// vt[i,:] = (1/s[i]) * u[:,i]ᵀ * a
	tol := 1e-14 * math.Sqrt(maxVal)
	for i := 0; i < m; i++ {
		if s[i] <= tol {
			continue
		}
		inv := 1 / s[i]
		row := vt.Row(i)
		for k := 0; k < m; k++ {
			c := u.At(k, i) * inv
			if c == 0 {
				continue
			}
			axpy(c, a.Row(k), row)
		}
	}
	return u, s, vt
}

// TruncateSVD returns the first k columns of u, entries of s, and rows
// of vt. k is clamped to the available rank.
func TruncateSVD(u *Matrix, s []float64, vt *Matrix, k int) (*Matrix, []float64, *Matrix) {
	if k > len(s) {
		k = len(s)
	}
	uk := New(u.RowsN, k)
	for i := 0; i < u.RowsN; i++ {
		copy(uk.Row(i), u.Row(i)[:k])
	}
	sk := append([]float64(nil), s[:k]...)
	vk := New(k, vt.ColsN)
	for i := 0; i < k; i++ {
		copy(vk.Row(i), vt.Row(i))
	}
	return uk, sk, vk
}
