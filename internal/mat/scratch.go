package mat

import "sync"

// Pooled scratch for the Gram-trick SVD. One svdScratch carries every
// intermediate the rotation path needs — the m×m Gram matrix, the
// eigensolver's vector matrix, the eigenvalue buffer, and the
// back-substitution coefficients — so a steady stream of FD rotations
// reuses the same storage instead of allocating ~m² + md floats per
// rotation and feeding the garbage collector at the machine repetition
// rate.

type svdScratch struct {
	g    *Matrix   // m×m Gram matrix, destroyed by the eigensolver
	v    *Matrix   // m×m eigenvectors
	coef *Matrix   // m×m Σ⁻¹Uᵀ coefficients
	vals []float64 // eigenvalues
}

var svdScratchPool = sync.Pool{
	New: func() interface{} { return &svdScratch{} },
}

func grabSVDScratch() *svdScratch {
	return svdScratchPool.Get().(*svdScratch)
}

func releaseSVDScratch(sc *svdScratch) {
	svdScratchPool.Put(sc)
}

// ensureMat returns m resized to r×c with compact stride, reusing its
// backing array when capacity allows (contents are unspecified).
func ensureMat(m *Matrix, r, c int) *Matrix {
	if m == nil || cap(m.Data) < r*c {
		return New(r, c)
	}
	m.RowsN, m.ColsN, m.Stride = r, c, c
	m.Data = m.Data[:r*c]
	return m
}

// ensureFloats returns s resized to n, reusing capacity when possible
// (contents are unspecified).
func ensureFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
