package mat

import (
	"math"
	"time"
)

// parallelThreshold is the minimum number of multiply-adds before a
// kernel spreads work across the shared pool; below it the dispatch
// overhead dominates and the serial tiled fast path runs on the
// calling goroutine — which is what every 2ℓ×2ℓ product of the FD
// rotation hits.
const parallelThreshold = 1 << 18

// Mul returns a*b. Panics if the inner dimensions disagree.
func Mul(a, b *Matrix) *Matrix {
	if a.ColsN != b.RowsN {
		panic("mat: Mul inner dimension mismatch")
	}
	out := New(a.RowsN, b.ColsN)
	MulTo(out, a, b)
	return out
}

// MulTo computes dst = a*b, reusing dst's storage. dst must not alias a
// or b. Small products run serially on the calling goroutine; large
// ones split across the shared worker pool by destination rows.
func MulTo(dst, a, b *Matrix) {
	if a.ColsN != b.RowsN || dst.RowsN != a.RowsN || dst.ColsN != b.ColsN {
		panic("mat: MulTo shape mismatch")
	}
	start := time.Now()
	rows := a.RowsN
	work := rows * a.ColsN * b.ColsN
	if work < parallelThreshold || rows < 2 || Workers() == 1 {
		mulRangeTiled(dst, a, b, 0, rows)
	} else {
		minChunk := minChunkRows(work, rows)
		ParallelFor(rows, minChunk, func(lo, hi int) {
			mulRangeTiled(dst, a, b, lo, hi)
		})
	}
	observeSince(obsKernelMul, start)
}

// MulABt returns a*bᵀ, streaming rows of both operands; this is the
// cache-friendly product for computing projections of wide buffers.
func MulABt(a, b *Matrix) *Matrix {
	if a.ColsN != b.ColsN {
		panic("mat: MulABt inner dimension mismatch")
	}
	out := New(a.RowsN, b.RowsN)
	MulABtTo(out, a, b)
	return out
}

// MulABtTo computes dst = a*bᵀ into caller-owned storage (dst must be
// a.Rows × b.Rows and must not alias a or b).
func MulABtTo(dst, a, b *Matrix) {
	if a.ColsN != b.ColsN || dst.RowsN != a.RowsN || dst.ColsN != b.RowsN {
		panic("mat: MulABtTo shape mismatch")
	}
	start := time.Now()
	rows := a.RowsN
	work := rows * b.RowsN * a.ColsN
	if work < parallelThreshold || rows < 2 || Workers() == 1 {
		mulABtRangeTiled(dst, a, b, 0, rows)
	} else {
		minChunk := minChunkRows(work, rows)
		ParallelFor(rows, minChunk, func(lo, hi int) {
			mulABtRangeTiled(dst, a, b, lo, hi)
		})
	}
	observeSince(obsKernelMulABt, start)
}

// Gram returns a*aᵀ (the small Gram matrix of a short-and-wide buffer),
// exploiting symmetry so only the upper triangle is computed.
func Gram(a *Matrix) *Matrix {
	out := New(a.RowsN, a.RowsN)
	GramTo(out, a)
	return out
}

// GramTo computes dst = a*aᵀ into caller-owned storage (dst must be
// a.Rows × a.Rows and must not alias a). Only the upper triangle is
// computed by the tiled kernel; the lower triangle is mirrored.
func GramTo(dst, a *Matrix) {
	if dst.RowsN != a.RowsN || dst.ColsN != a.RowsN {
		panic("mat: GramTo shape mismatch")
	}
	m := a.RowsN
	if m == 0 {
		return
	}
	start := time.Now()
	work := m * m * a.ColsN / 2
	if work < parallelThreshold || m < 2 || Workers() == 1 {
		gramRange(dst, a, 0, m)
	} else {
		minChunk := minChunkRows(work, m)
		ParallelFor(m, minChunk, func(lo, hi int) {
			gramRange(dst, a, lo, hi)
		})
	}
	mirrorLower(dst)
	observeSince(obsKernelGram, start)
}

// minChunkRows sizes parallel-for chunks so each carries at least
// parallelThreshold multiply-adds.
func minChunkRows(work, rows int) int {
	perRow := work / rows
	if perRow <= 0 {
		return rows
	}
	mc := (parallelThreshold + perRow - 1) / perRow
	if mc < 1 {
		mc = 1
	}
	return mc
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	return dotKernel(x, y)
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Two-pass scaled computation avoids overflow/underflow.
	var mx float64
	for _, v := range x {
		if a := abs(v); a > mx {
			mx = a
		}
	}
	if mx == 0 {
		return 0
	}
	var s float64
	inv := 1 / mx
	for _, v := range x {
		t := v * inv
		s += t * t
	}
	return mx * math.Sqrt(s)
}

// Norm2Sq returns the squared Euclidean norm of x.
func Norm2Sq(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// MulVec returns a*x for a vector x of length a.Cols.
func MulVec(a *Matrix, x []float64) []float64 {
	if a.ColsN != len(x) {
		panic("mat: MulVec dimension mismatch")
	}
	out := make([]float64, a.RowsN)
	for i := 0; i < a.RowsN; i++ {
		out[i] = Dot(a.Row(i), x)
	}
	return out
}

// MulTVec returns aᵀ*x for a vector x of length a.Rows.
func MulTVec(a *Matrix, x []float64) []float64 {
	if a.RowsN != len(x) {
		panic("mat: MulTVec dimension mismatch")
	}
	out := make([]float64, a.ColsN)
	for i := 0; i < a.RowsN; i++ {
		if x[i] != 0 {
			axpy(x[i], a.Row(i), out)
		}
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
