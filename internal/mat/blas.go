package mat

import (
	"math"
	"runtime"
	"sync"
)

// parallelThreshold is the minimum number of multiply-adds before Mul
// spreads work across goroutines; below it the scheduling overhead
// dominates.
const parallelThreshold = 1 << 18

// Mul returns a*b. Panics if the inner dimensions disagree.
func Mul(a, b *Matrix) *Matrix {
	if a.ColsN != b.RowsN {
		panic("mat: Mul inner dimension mismatch")
	}
	out := New(a.RowsN, b.ColsN)
	MulTo(out, a, b)
	return out
}

// MulTo computes dst = a*b, reusing dst's storage. dst must not alias a
// or b.
func MulTo(dst, a, b *Matrix) {
	if a.ColsN != b.RowsN || dst.RowsN != a.RowsN || dst.ColsN != b.ColsN {
		panic("mat: MulTo shape mismatch")
	}
	dst.Zero()
	work := a.RowsN * a.ColsN * b.ColsN
	if work < parallelThreshold || a.RowsN == 1 {
		mulRange(dst, a, b, 0, a.RowsN)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > a.RowsN {
		workers = a.RowsN
	}
	var wg sync.WaitGroup
	chunk := (a.RowsN + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, a.RowsN)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRange(dst, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// mulRange computes rows [lo, hi) of dst = a*b using the i-k-j loop
// order, which streams both b and dst rows contiguously.
func mulRange(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		di := dst.Row(i)
		for k, aik := range ai {
			if aik == 0 {
				continue
			}
			bk := b.Row(k)
			axpy(aik, bk, di)
		}
	}
}

// axpy computes y += alpha*x with 4-way unrolling.
func axpy(alpha float64, x, y []float64) {
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Two-pass scaled computation avoids overflow/underflow.
	var mx float64
	for _, v := range x {
		if a := abs(v); a > mx {
			mx = a
		}
	}
	if mx == 0 {
		return 0
	}
	var s float64
	inv := 1 / mx
	for _, v := range x {
		t := v * inv
		s += t * t
	}
	return mx * math.Sqrt(s)
}

// Norm2Sq returns the squared Euclidean norm of x.
func Norm2Sq(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// MulVec returns a*x for a vector x of length a.Cols.
func MulVec(a *Matrix, x []float64) []float64 {
	if a.ColsN != len(x) {
		panic("mat: MulVec dimension mismatch")
	}
	out := make([]float64, a.RowsN)
	for i := 0; i < a.RowsN; i++ {
		out[i] = Dot(a.Row(i), x)
	}
	return out
}

// MulTVec returns aᵀ*x for a vector x of length a.Rows.
func MulTVec(a *Matrix, x []float64) []float64 {
	if a.RowsN != len(x) {
		panic("mat: MulTVec dimension mismatch")
	}
	out := make([]float64, a.ColsN)
	for i := 0; i < a.RowsN; i++ {
		if x[i] != 0 {
			axpy(x[i], a.Row(i), out)
		}
	}
	return out
}

// MulABt returns a*bᵀ, streaming rows of both operands; this is the
// cache-friendly product for computing Gram matrices of wide buffers.
func MulABt(a, b *Matrix) *Matrix {
	if a.ColsN != b.ColsN {
		panic("mat: MulABt inner dimension mismatch")
	}
	out := New(a.RowsN, b.RowsN)
	work := a.RowsN * b.RowsN * a.ColsN
	if work < parallelThreshold {
		mulABtRange(out, a, b, 0, a.RowsN)
		return out
	}
	workers := min(runtime.GOMAXPROCS(0), a.RowsN)
	var wg sync.WaitGroup
	chunk := (a.RowsN + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, a.RowsN)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulABtRange(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

func mulABtRange(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		di := dst.Row(i)
		for j := 0; j < b.RowsN; j++ {
			di[j] = Dot(ai, b.Row(j))
		}
	}
}

// Gram returns a*aᵀ (the small Gram matrix of a short-and-wide buffer),
// exploiting symmetry so only the upper triangle is computed.
func Gram(a *Matrix) *Matrix {
	out := New(a.RowsN, a.RowsN)
	workers := min(runtime.GOMAXPROCS(0), a.RowsN)
	if a.RowsN*a.RowsN*a.ColsN < parallelThreshold {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < a.RowsN; i++ {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				ai := a.Row(i)
				for j := i; j < a.RowsN; j++ {
					v := Dot(ai, a.Row(j))
					out.Set(i, j, v)
					out.Set(j, i, v)
				}
			}
		}()
	}
	wg.Wait()
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
