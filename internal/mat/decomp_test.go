package mat

import (
	"math"
	"testing"

	"arams/internal/rng"
)

func TestQRReconstruction(t *testing.T) {
	g := rng.New(10)
	for _, dims := range [][2]int{{1, 1}, {5, 5}, {20, 7}, {100, 30}} {
		r, c := dims[0], dims[1]
		a := RandGaussian(r, c, g)
		q, rr := QR(a)
		// Q has orthonormal columns.
		if qtq := Mul(q.T(), q); !qtq.Equal(Eye(c), 1e-10) {
			t.Fatalf("%v: QᵀQ != I", dims)
		}
		// R upper triangular.
		for i := 0; i < c; i++ {
			for j := 0; j < i; j++ {
				if rr.At(i, j) != 0 {
					t.Fatalf("%v: R not upper triangular", dims)
				}
			}
		}
		// A = QR.
		if !Mul(q, rr).Equal(a, 1e-10) {
			t.Fatalf("%v: QR != A", dims)
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Two identical columns.
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	q, rr := QR(a)
	if !Mul(q, rr).Equal(a, 1e-12) {
		t.Fatal("QR of rank-deficient matrix does not reconstruct")
	}
}

func TestQRZeroMatrix(t *testing.T) {
	a := New(4, 2)
	q, rr := QR(a)
	if !Mul(q, rr).Equal(a, 1e-14) {
		t.Fatal("QR of zero matrix broken")
	}
}

func TestEigSymKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, v := EigSym(a)
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Fatalf("eigenvalues = %v, want [3 1]", vals)
	}
	// Check A v = λ v for each column.
	for j := 0; j < 2; j++ {
		col := []float64{v.At(0, j), v.At(1, j)}
		av := MulVec(a, col)
		for i := range av {
			if math.Abs(av[i]-vals[j]*col[i]) > 1e-12 {
				t.Fatalf("eigenpair %d residual too large", j)
			}
		}
	}
}

func TestEigSymRandom(t *testing.T) {
	g := rng.New(11)
	for _, n := range []int{1, 2, 3, 10, 40} {
		b := RandGaussian(n, n, g)
		a := Mul(b, b.T()) // symmetric PSD
		vals, v := EigSym(a)
		// Descending and non-negative (up to roundoff).
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-10 {
				t.Fatalf("n=%d: eigenvalues not descending: %v", n, vals)
			}
		}
		// V orthonormal.
		if !Mul(v.T(), v).Equal(Eye(n), 1e-9) {
			t.Fatalf("n=%d: V not orthonormal", n)
		}
		// Reconstruction A = V Λ Vᵀ.
		rec := Mul(Mul(v, Diag(vals)), v.T())
		if !rec.Equal(a, 1e-8*math.Max(1, a.MaxAbs())) {
			t.Fatalf("n=%d: eigen reconstruction failed", n)
		}
	}
}

func TestEigSymZero(t *testing.T) {
	vals, v := EigSym(New(3, 3))
	for _, lam := range vals {
		if lam != 0 {
			t.Fatal("zero matrix eigenvalues nonzero")
		}
	}
	if !Mul(v.T(), v).Equal(Eye(3), 1e-12) {
		t.Fatal("zero matrix eigenvectors not orthonormal")
	}
}

func checkSVD(t *testing.T, a, u *Matrix, s []float64, vt *Matrix, tol float64) {
	t.Helper()
	k := len(s)
	// Singular values descending and non-negative.
	for i := 0; i < k; i++ {
		if s[i] < 0 {
			t.Fatalf("negative singular value %v", s[i])
		}
		if i > 0 && s[i] > s[i-1]+1e-10 {
			t.Fatalf("singular values not sorted: %v", s)
		}
	}
	// Reconstruction.
	us := u.Clone()
	for j := 0; j < k; j++ {
		for i := 0; i < u.RowsN; i++ {
			us.Set(i, j, u.At(i, j)*s[j])
		}
	}
	if rec := Mul(us, vt); !rec.Equal(a, tol) {
		t.Fatalf("SVD reconstruction error too large")
	}
}

func TestSVDTall(t *testing.T) {
	g := rng.New(12)
	a := RandGaussian(30, 8, g)
	u, s, vt := SVD(a)
	checkSVD(t, a, u, s, vt, 1e-9)
	if !Mul(u.T(), u).Equal(Eye(8), 1e-9) {
		t.Fatal("U columns not orthonormal")
	}
	if !Mul(vt, vt.T()).Equal(Eye(8), 1e-9) {
		t.Fatal("Vᵀ rows not orthonormal")
	}
}

func TestSVDWide(t *testing.T) {
	g := rng.New(13)
	a := RandGaussian(6, 40, g)
	u, s, vt := SVD(a)
	checkSVD(t, a, u, s, vt, 1e-9)
	if u.RowsN != 6 || u.ColsN != 6 || vt.RowsN != 6 || vt.ColsN != 40 {
		t.Fatalf("thin SVD shapes wrong: U %d×%d, Vt %d×%d", u.RowsN, u.ColsN, vt.RowsN, vt.ColsN)
	}
}

func TestSVDKnownValues(t *testing.T) {
	// diag(3, 2) embedded in 2×2: singular values are 3 and 2.
	a := FromRows([][]float64{{3, 0}, {0, 2}})
	_, s, _ := SVD(a)
	if math.Abs(s[0]-3) > 1e-12 || math.Abs(s[1]-2) > 1e-12 {
		t.Fatalf("singular values = %v, want [3 2]", s)
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix.
	a := FromRows([][]float64{{1, 2, 3}, {2, 4, 6}, {3, 6, 9}})
	u, s, vt := SVD(a)
	checkSVD(t, a, u, s, vt, 1e-9)
	if s[1] > 1e-9 || s[2] > 1e-9 {
		t.Fatalf("rank-1 matrix has extra singular values: %v", s)
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	a := New(3, 5)
	u, s, vt := SVD(a)
	for _, v := range s {
		if v != 0 {
			t.Fatalf("zero matrix singular values: %v", s)
		}
	}
	checkSVD(t, a, u, s, vt, 1e-14)
}

func TestSVDGramMatchesJacobi(t *testing.T) {
	g := rng.New(14)
	for _, dims := range [][2]int{{4, 50}, {10, 200}, {16, 1000}} {
		a := RandGaussian(dims[0], dims[1], g)
		_, sJ, _ := SVD(a)
		uG, sG, vtG := SVDGram(a)
		for i := range sJ {
			rel := math.Abs(sJ[i]-sG[i]) / math.Max(sJ[0], 1e-300)
			if rel > 1e-7 {
				t.Fatalf("%v: singular value %d: jacobi %v vs gram %v", dims, i, sJ[i], sG[i])
			}
		}
		checkSVD(t, a, uG, sG, vtG, 1e-7*sJ[0]*float64(dims[1]))
		// Vᵀ rows orthonormal where σ > 0.
		vvt := Mul(vtG, vtG.T())
		if !vvt.Equal(Eye(dims[0]), 1e-7) {
			t.Fatalf("%v: Gram Vᵀ rows not orthonormal", dims)
		}
	}
}

func TestSVDGramRankDeficient(t *testing.T) {
	g := rng.New(15)
	// 6×100 matrix of rank 3: duplicate rows.
	base := RandGaussian(3, 100, g)
	a := New(6, 100)
	for i := 0; i < 3; i++ {
		copy(a.Row(i), base.Row(i))
		copy(a.Row(i+3), base.Row(i))
	}
	u, s, vt := SVDGram(a)
	if s[3] > 1e-6*s[0] {
		t.Fatalf("rank-3 matrix: σ₄ = %v not small", s[3])
	}
	checkSVD(t, a, u, s, vt, 1e-6*s[0]*100)
	// Zero-σ rows of vt must be exactly zero, not garbage.
	for i := 3; i < 6; i++ {
		if Norm2(vt.Row(i)) > 1e-6 {
			t.Fatalf("vt row %d for zero σ is nonzero", i)
		}
	}
}

func TestTruncateSVD(t *testing.T) {
	g := rng.New(16)
	a := RandGaussian(10, 30, g)
	u, s, vt := SVD(a)
	uk, sk, vk := TruncateSVD(u, s, vt, 4)
	if uk.ColsN != 4 || len(sk) != 4 || vk.RowsN != 4 {
		t.Fatal("TruncateSVD shapes wrong")
	}
	// Clamp beyond rank.
	uk2, sk2, _ := TruncateSVD(u, s, vt, 99)
	if uk2.ColsN != 10 || len(sk2) != 10 {
		t.Fatal("TruncateSVD did not clamp k")
	}
}
