package mat

// Bounds-check-free inner loops for the dense kernels. Everything in
// this file is on the multiply-add critical path of the FD rotation
// shapes (2ℓ×d buffers, d up to millions of columns), where a single
// bounds check per element costs a compare+branch against 1–2 FMAs of
// useful work and blocks the instruction scheduler from pipelining the
// accumulator chains.
//
// Two loop shapes survive both the bounds-check prover and the
// benchmark:
//
//   - simple hoisted loops (`b = b[:n]` once, then `for k := 0; k < n`
//     with unit-stride indexing) — the prover eliminates every check as
//     long as the loop is NOT manually unrolled; an `i+4 <= n` stride-4
//     condition makes it lose the `i+3 < len` facts again (measured,
//     not guessed);
//   - the slice-advance idiom (`x, y = x[8:], y[8:]` under
//     `len(x) >= 8 && len(y) >= 8`, bodies indexing a pinned `x[:8]`)
//     for the unrolled kernels — the shrinking-length condition is the
//     one shape the prover eliminates unrolled accesses for, and the
//     8-wide step amortizes the slice-header updates.
//
// CI enforces the invariant: scripts/check_bce.sh compiles the package
// with -gcflags=-d=ssa/check_bce and fails if the compiler reports any
// per-element IsInBounds in this file. Per-call IsSliceInBounds from
// the `[:n]` hoists is allowed — hoisted checks are the point of the
// idiom. When editing, keep every loop in one of the two shapes above
// and re-run the script.
//
// All kernels iterate over the common prefix of their operands; the
// tiled drivers in blocked.go slice operands to the same panel.

// axpy computes y += alpha*x over the common prefix, 8-way unrolled in
// the slice-advance idiom.
func axpy(alpha float64, x, y []float64) {
	for len(x) >= 8 && len(y) >= 8 {
		x8, y8 := x[:8], y[:8]
		y8[0] += alpha * x8[0]
		y8[1] += alpha * x8[1]
		y8[2] += alpha * x8[2]
		y8[3] += alpha * x8[3]
		y8[4] += alpha * x8[4]
		y8[5] += alpha * x8[5]
		y8[6] += alpha * x8[6]
		y8[7] += alpha * x8[7]
		x, y = x[8:], y[8:]
	}
	for len(x) > 0 && len(y) > 0 {
		y[0] += alpha * x[0]
		x, y = x[1:], y[1:]
	}
}

// axpy2 computes d0 += x0*b and d1 += x1*b in one pass over b, loading
// each b element once for both destination rows.
func axpy2(x0, x1 float64, b, d0, d1 []float64) {
	for len(b) >= 8 && len(d0) >= 8 && len(d1) >= 8 {
		b8, e0, e1 := b[:8], d0[:8], d1[:8]
		v0, v1, v2, v3 := b8[0], b8[1], b8[2], b8[3]
		v4, v5, v6, v7 := b8[4], b8[5], b8[6], b8[7]
		e0[0] += x0 * v0
		e0[1] += x0 * v1
		e0[2] += x0 * v2
		e0[3] += x0 * v3
		e0[4] += x0 * v4
		e0[5] += x0 * v5
		e0[6] += x0 * v6
		e0[7] += x0 * v7
		e1[0] += x1 * v0
		e1[1] += x1 * v1
		e1[2] += x1 * v2
		e1[3] += x1 * v3
		e1[4] += x1 * v4
		e1[5] += x1 * v5
		e1[6] += x1 * v6
		e1[7] += x1 * v7
		b, d0, d1 = b[8:], d0[8:], d1[8:]
	}
	for len(b) > 0 && len(d0) > 0 && len(d1) > 0 {
		v := b[0]
		d0[0] += x0 * v
		d1[0] += x1 * v
		b, d0, d1 = b[1:], d0[1:], d1[1:]
	}
}

// dotKernel returns the inner product of the common prefix of x and y,
// 8-way unrolled with four independent accumulator chains.
func dotKernel(x, y []float64) float64 {
	var s0, s1, s2, s3 float64
	for len(x) >= 8 && len(y) >= 8 {
		x8, y8 := x[:8], y[:8]
		s0 += x8[0]*y8[0] + x8[4]*y8[4]
		s1 += x8[1]*y8[1] + x8[5]*y8[5]
		s2 += x8[2]*y8[2] + x8[6]*y8[6]
		s3 += x8[3]*y8[3] + x8[7]*y8[7]
		x, y = x[8:], y[8:]
	}
	s := s0 + s1 + s2 + s3
	for len(x) > 0 && len(y) > 0 {
		s += x[0] * y[0]
		x, y = x[1:], y[1:]
	}
	return s
}

// dot2x2 returns the four inner products of rows {a0, a1} against rows
// {b0, b1}. Computing a 2-row × 2-row tile in one pass halves the loads
// per multiply-add and gives the core four independent accumulator
// chains to hide FMA latency behind. The loop stays un-unrolled on
// purpose: with four streams live, the 4 FMAs per iteration already
// saturate the load ports, and unrolling would reintroduce bounds
// checks (see file comment).
func dot2x2(a0, a1, b0, b1 []float64) (c00, c01, c10, c11 float64) {
	n := len(a0)
	a1 = a1[:n]
	b0 = b0[:n]
	b1 = b1[:n]
	for k := 0; k < n; k++ {
		x0 := a0[k]
		x1 := a1[k]
		y0 := b0[k]
		y1 := b1[k]
		c00 += x0 * y0
		c01 += x0 * y1
		c10 += x1 * y0
		c11 += x1 * y1
	}
	return
}

// dot1x2 returns the inner products of x against rows {b0, b1},
// loading each x element once for both products.
func dot1x2(x, b0, b1 []float64) (c0, c1 float64) {
	n := len(x)
	b0 = b0[:n]
	b1 = b1[:n]
	for k := 0; k < n; k++ {
		v := x[k]
		c0 += v * b0[k]
		c1 += v * b1[k]
	}
	return
}
