package mat

import (
	"fmt"
	"testing"

	"arams/internal/rng"
)

func BenchmarkMul(b *testing.B) {
	g := rng.New(1)
	for _, n := range []int{64, 256} {
		x := RandGaussian(n, n, g)
		y := RandGaussian(n, n, g)
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = Mul(x, y)
			}
		})
	}
}

func BenchmarkMulABt(b *testing.B) {
	g := rng.New(2)
	x := RandGaussian(64, 4096, g)
	y := RandGaussian(32, 4096, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MulABt(x, y)
	}
}

func BenchmarkGram(b *testing.B) {
	g := rng.New(3)
	x := RandGaussian(64, 8192, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Gram(x)
	}
}

func BenchmarkQR(b *testing.B) {
	g := rng.New(4)
	x := RandGaussian(256, 64, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = QR(x)
	}
}

func BenchmarkEigSym(b *testing.B) {
	g := rng.New(5)
	a := RandGaussian(64, 64, g)
	s := Mul(a, a.T())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = EigSym(s)
	}
}

func BenchmarkSVDGramWideBuffer(b *testing.B) {
	g := rng.New(6)
	// The FD rotation shape: 2ℓ×d with d ≫ 2ℓ.
	buf := RandGaussian(64, 16384, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = SVDGram(buf)
	}
}

// BenchmarkGramRotationShape compares the pre-PR reference kernel with
// the cache-blocked kernel on FD-rotation-shaped inputs (2ℓ×d, d ≫ 2ℓ)
// — the shapes behind BENCH_kernels.json.
func BenchmarkGramRotationShape(b *testing.B) {
	g := rng.New(7)
	for _, sh := range [][2]int{{64, 4096}, {128, 4096}, {64, 16384}} {
		a := RandGaussian(sh[0], sh[1], g)
		out := New(sh[0], sh[0])
		b.Run(fmt.Sprintf("ref_%dx%d", sh[0], sh[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = RefGram(a)
			}
		})
		b.Run(fmt.Sprintf("tiled_%dx%d", sh[0], sh[1]), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				GramTo(out, a)
			}
		})
	}
}

// BenchmarkSVDGramRotation measures the full rotation decomposition:
// the reference allocating path versus the pooled SVDGramTo. The pooled
// variant must report zero allocs/op — that is the acceptance bar for
// the FD hot path.
func BenchmarkSVDGramRotation(b *testing.B) {
	g := rng.New(8)
	a := RandGaussian(64, 4096, g)
	sigma := make([]float64, 64)
	vt := New(64, 4096)
	b.Run("ref_64x4096", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _, _ = RefSVDGram(a)
		}
	})
	b.Run("pooled_64x4096", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sigma = SVDGramTo(a, sigma, vt)
		}
	})
}

func BenchmarkMulABtProjectionShape(b *testing.B) {
	g := rng.New(9)
	// The PCA projection shape: window×d times k×d transposed.
	x := RandGaussian(1024, 4096, g)
	basis := RandGaussian(20, 4096, g)
	dst := New(1024, 20)
	b.Run("ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = RefMulABt(x, basis)
		}
	})
	b.Run("tiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MulABtTo(dst, x, basis)
		}
	})
}
