package mat

import (
	"fmt"
	"testing"

	"arams/internal/rng"
)

func BenchmarkMul(b *testing.B) {
	g := rng.New(1)
	for _, n := range []int{64, 256} {
		x := RandGaussian(n, n, g)
		y := RandGaussian(n, n, g)
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = Mul(x, y)
			}
		})
	}
}

func BenchmarkMulABt(b *testing.B) {
	g := rng.New(2)
	x := RandGaussian(64, 4096, g)
	y := RandGaussian(32, 4096, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MulABt(x, y)
	}
}

func BenchmarkGram(b *testing.B) {
	g := rng.New(3)
	x := RandGaussian(64, 8192, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Gram(x)
	}
}

func BenchmarkQR(b *testing.B) {
	g := rng.New(4)
	x := RandGaussian(256, 64, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = QR(x)
	}
}

func BenchmarkEigSym(b *testing.B) {
	g := rng.New(5)
	a := RandGaussian(64, 64, g)
	s := Mul(a, a.T())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = EigSym(s)
	}
}

func BenchmarkSVDGramWideBuffer(b *testing.B) {
	g := rng.New(6)
	// The FD rotation shape: 2ℓ×d with d ≫ 2ℓ.
	buf := RandGaussian(64, 16384, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = SVDGram(buf)
	}
}
