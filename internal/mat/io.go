package mat

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

const matMagic = uint32(0x474d4154) // "GMAT"

// WriteMatrix serializes m in a compact little-endian binary format
// (magic, version, dims, raw float64 data), so experiment tools can
// persist and reload datasets the way the paper's artifact passes .npy
// files between its scripts.
func WriteMatrix(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	for _, v := range []uint32{matMagic, 1} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, v := range []int64{int64(m.RowsN), int64(m.ColsN)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	buf := make([]byte, 8)
	for i := 0; i < m.RowsN; i++ {
		for _, v := range m.Row(i) {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrix deserializes a matrix written by WriteMatrix.
func ReadMatrix(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	var magic, version uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != matMagic {
		return nil, fmt.Errorf("mat: bad magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != 1 {
		return nil, fmt.Errorf("mat: unsupported matrix version %d", version)
	}
	var rows, cols int64
	if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
		return nil, err
	}
	if rows < 0 || cols < 0 || rows*cols > 1<<32 {
		return nil, fmt.Errorf("mat: implausible dims %d×%d", rows, cols)
	}
	m := New(int(rows), int(cols))
	buf := make([]byte, 8)
	for i := range m.Data {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	return m, nil
}
