package mat

import (
	"sync"
	"testing"
)

// TestGetVecZeroed pins the pool contract the zero-copy ingest path
// relies on: GetVec always returns a zero-filled slice of exactly the
// requested length, even when it recycles a backing array that a
// previous user scribbled on.
func TestGetVecZeroed(t *testing.T) {
	v := GetVec(64)
	if len(v) != 64 {
		t.Fatalf("GetVec(64) returned length %d", len(v))
	}
	for i := range v {
		v[i] = float64(i + 1)
	}
	PutVec(v)

	// A smaller request may reuse the dirty backing array; its visible
	// prefix must still read all-zero.
	w := GetVec(16)
	if len(w) != 16 {
		t.Fatalf("GetVec(16) returned length %d", len(w))
	}
	for i, x := range w {
		if x != 0 {
			t.Fatalf("recycled vec not zeroed at %d: %v", i, x)
		}
	}
	PutVec(w)

	// A larger request than anything pooled must still be satisfied.
	u := GetVec(1 << 12)
	if len(u) != 1<<12 {
		t.Fatalf("GetVec(4096) returned length %d", len(u))
	}
	for i, x := range u {
		if x != 0 {
			t.Fatalf("fresh vec not zeroed at %d: %v", i, x)
		}
	}
	PutVec(u)

	// Zero-length puts are dropped, zero-length gets are legal.
	PutVec(nil)
	if z := GetVec(0); len(z) != 0 {
		t.Fatalf("GetVec(0) returned length %d", len(z))
	}
}

// TestVecPoolConcurrent shakes the pool under -race: concurrent
// get/scribble/put cycles must never hand the same backing array to
// two goroutines at once.
func TestVecPoolConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(tag float64) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				v := GetVec(96)
				for i := range v {
					if v[i] != 0 {
						t.Errorf("goroutine %v: dirty vec at %d", tag, i)
						return
					}
					v[i] = tag
				}
				for i := range v {
					if v[i] != tag {
						t.Errorf("goroutine %v: vec shared while held (saw %v)", tag, v[i])
						return
					}
				}
				PutVec(v)
			}
		}(float64(g + 1))
	}
	wg.Wait()
}
