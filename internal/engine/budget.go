package engine

import (
	"sync"
	"time"

	"arams/internal/audit"
	"arams/internal/obs"
)

// Frame-budget / SLO tracking. LCLS delivers frames at the machine
// repetition rate (120 Hz for the datasets in the paper), so the
// monitor has 1/120 s of wall time per frame — amortized over a batch —
// before it falls behind the beam. The tracker turns every dispatch
// into a burn-rate observation (time spent ÷ time budgeted), keeps an
// EWMA of it, and:
//
//   - counts outright misses (burn > 1 for a batch) and journals them
//     as deadline_miss events, rate-limited so a sustained overload
//     doesn't flood the journal;
//   - fires the flight recorder once the EWMA crosses BurnThreshold —
//     sustained overload is exactly the condition whose prelude is
//     worth dumping.

// Budget observability lives on the engine's engineObs handles (see
// obs.go). arams_engine_deadline_miss_total counts *frames* that
// belonged to an over-budget batch — the same unit DeadlineMisses()
// reports — so the metric and the accessor always agree (misses used
// to count batches while the metric counted frames).

// DefaultFrameBudget is the per-frame wall-time budget when none is
// configured: one LCLS machine period at 120 Hz.
const DefaultFrameBudget = time.Second / 120

// defaultBurnThreshold is the EWMA burn rate that trips the flight
// recorder: sustained 2× over budget.
const defaultBurnThreshold = 2.0

// burnAlpha is the EWMA smoothing factor — ~5 batches of memory.
const burnAlpha = 0.2

// missJournalEvery rate-limits deadline_miss journal events.
const missJournalEvery = time.Second

// budgetTracker accumulates burn-rate state. The zero value is unusable;
// build with newBudgetTracker (nil when budgeting is disabled).
type budgetTracker struct {
	budget    time.Duration // per-frame
	threshold float64
	journal   *audit.Journal
	eo        *engineObs

	mu       sync.Mutex
	ewma     float64
	seeded   bool
	lastMiss time.Time
	misses   int // frames in over-budget batches (metric unit)
}

func newBudgetTracker(cfg Config, eo *engineObs) *budgetTracker {
	if cfg.FrameBudget < 0 {
		return nil
	}
	b := cfg.FrameBudget
	if b == 0 {
		b = DefaultFrameBudget
	}
	th := cfg.BurnThreshold
	if th <= 0 {
		th = defaultBurnThreshold
	}
	j := audit.Default()
	if cfg.Audit != nil {
		j = cfg.Audit.Journal()
	}
	eo.budgetFrame.Set(b.Seconds())
	return &budgetTracker{budget: b, threshold: th, journal: j, eo: eo}
}

// observe folds one dispatch in: elapsed wall time for n frames ending
// at stream index `at`. Returns the batch's burn rate.
func (bt *budgetTracker) observe(elapsed time.Duration, n, at int) float64 {
	if bt == nil || n <= 0 {
		return 0
	}
	allowed := time.Duration(n) * bt.budget
	burn := float64(elapsed) / float64(allowed)

	bt.mu.Lock()
	if !bt.seeded {
		bt.ewma, bt.seeded = burn, true
	} else {
		bt.ewma += burnAlpha * (burn - bt.ewma)
	}
	ewma := bt.ewma
	journalMiss := false
	now := time.Now()
	if burn > 1 {
		bt.misses += n
		if now.Sub(bt.lastMiss) >= missJournalEvery {
			bt.lastMiss = now
			journalMiss = true
		}
	}
	bt.mu.Unlock()

	bt.eo.budgetBurn.Set(ewma)
	if burn > 1 {
		bt.eo.deadlineMiss.Add(float64(n))
		if journalMiss {
			bt.journal.Record(audit.KindDeadlineMiss, "batch exceeded frame budget",
				audit.A("burn", burn),
				audit.A("burn_ewma", ewma),
				audit.A("frames", float64(n)),
				audit.A("stream_index", float64(at)),
				audit.A("budget_ms", bt.budget.Seconds()*1e3),
				audit.A("elapsed_ms", elapsed.Seconds()*1e3))
		}
	}
	if ewma > bt.threshold {
		obs.Default().FlightTrigger("deadline_burn")
	}
	return burn
}

// BurnRate returns the current EWMA frame-budget burn rate (0 when
// budgeting is disabled or nothing has been observed).
func (e *Engine) BurnRate() float64 {
	bt := e.budget
	if bt == nil {
		return 0
	}
	bt.mu.Lock()
	defer bt.mu.Unlock()
	return bt.ewma
}

// DeadlineMisses returns how many frames belonged to batches that
// exceeded their amortized frame budget — frames, not batches, matching
// the arams_engine_deadline_miss_total metric exactly.
func (e *Engine) DeadlineMisses() int {
	bt := e.budget
	if bt == nil {
		return 0
	}
	bt.mu.Lock()
	defer bt.mu.Unlock()
	return bt.misses
}
