package engine_test

// Concurrency hammer for the engine, meant to run under -race:
// several IngestVecs producers, an async Enqueue producer, snapshot
// readers (WindowState/Basis/Certificate), and a checkpointer
// (State) all pound the same engine. Assertions are deliberately
// coarse — the point is that the race detector sees every lock edge:
// gate vs ingest, shard locks vs reconcile clones, global-cache reuse
// vs Basis factor computation.

import (
	"sync"
	"sync/atomic"
	"testing"

	"arams/internal/engine"
	"arams/internal/imgproc"
	"arams/internal/sketch"
)

func TestEngineConcurrentHammer(t *testing.T) {
	const (
		producers = 3
		batches   = 12
		batchLen  = 8
		d         = 16
	)
	e := engine.New(engine.Config{
		Shards:         4,
		ReconcileEvery: 8,
		IngestBuffer:   16,
		BatchSize:      4,
		Sketch:         sketch.Config{Ell0: 5, Beta: 0.9, Seed: 7},
		Window:         32,
	})

	shardRows := func(st *engine.State) int {
		rows := 0
		for _, ss := range st.Shards {
			if ss == nil {
				continue
			}
			fd := ss.FD
			if ss.RankAdaptive != nil {
				fd = &ss.RankAdaptive.FD
			}
			rows += fd.Seen
		}
		return rows
	}

	var producersWG, readersWG sync.WaitGroup
	stop := make(chan struct{})
	var produced atomic.Int64

	for p := 0; p < producers; p++ {
		producersWG.Add(1)
		go func(p int) {
			defer producersWG.Done()
			vecs := testVecs(batches*batchLen, d, uint64(100+p))
			for b := 0; b < batches; b++ {
				batch := cloneVecs(vecs[b*batchLen : (b+1)*batchLen])
				tags := make([]int, batchLen)
				for i := range tags {
					tags[i] = p*10000 + b*batchLen + i
				}
				e.IngestVecs(batch, tags)
				produced.Add(batchLen)
			}
		}(p)
	}

	// Async producer through the bounded queue.
	producersWG.Add(1)
	go func() {
		defer producersWG.Done()
		im := imgproc.NewImage(4, 4)
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				im.Set(x, y, float64(1+x+y))
			}
		}
		for i := 0; i < 30; i++ {
			e.Enqueue(im, 90000+i)
		}
		e.Drain()
		produced.Add(30)
	}()

	// Snapshot readers.
	for r := 0; r < 2; r++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if x, tags, basis, ell := e.WindowState(4); x != nil {
					if len(tags) != x.RowsN {
						t.Error("torn window: tags/rows mismatch")
						return
					}
					if basis.RowsN > ell {
						t.Errorf("basis rows %d exceed rank %d", basis.RowsN, ell)
						return
					}
				}
				_ = e.Certificate()
				_ = e.Ell()
			}
		}()
	}

	// Checkpointer: State must always be a consistent cut. Rows reach
	// shards only after the ring/counter bookkeeping, and State takes
	// the gate exclusively, so a cut can never show more sketched rows
	// than counted ingests (sampling may legitimately show fewer).
	readersWG.Add(1)
	go func() {
		defer readersWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := e.State()
			if st.Ingests < len(st.Frames) {
				t.Errorf("torn state: %d ingests < %d frames", st.Ingests, len(st.Frames))
				return
			}
			if rows := shardRows(st); rows > st.Ingests {
				t.Errorf("torn state: %d sketched rows > %d ingests", rows, st.Ingests)
				return
			}
		}
	}()

	producersWG.Wait()
	close(stop)
	readersWG.Wait()
	e.Stop()

	want := int(produced.Load())
	if got := e.Ingested(); got != want {
		t.Fatalf("ingested %d frames, want %d", got, want)
	}
	rows := shardRows(e.State())
	if rows == 0 || rows > want {
		t.Fatalf("shards saw %d rows total, want within (0, %d]", rows, want)
	}
}
