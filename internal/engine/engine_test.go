package engine_test

import (
	"math"
	"testing"

	"arams/internal/audit"
	"arams/internal/engine"
	"arams/internal/imgproc"
	"arams/internal/mat"
	"arams/internal/obs"
	"arams/internal/parallel"
	"arams/internal/rng"
	"arams/internal/sketch"
)

// testVecs builds a deterministic low-rank-plus-noise stream so the
// sketch has real directions to track.
func testVecs(n, d int, seed uint64) [][]float64 {
	g := rng.New(seed)
	base := make([][]float64, 3)
	for i := range base {
		base[i] = make([]float64, d)
		for j := range base[i] {
			base[i][j] = g.Norm()
		}
	}
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, d)
		b := base[i%len(base)]
		for j := range v {
			v[j] = 3*b[j] + 0.3*g.Norm()
		}
		vecs[i] = v
	}
	return vecs
}

func asMatrix(vecs [][]float64) *mat.Matrix {
	x := mat.New(len(vecs), len(vecs[0]))
	for i, v := range vecs {
		copy(x.Row(i), v)
	}
	return x
}

func cloneVecs(vecs [][]float64) [][]float64 {
	out := make([][]float64, len(vecs))
	for i, v := range vecs {
		out[i] = append([]float64(nil), v...)
	}
	return out
}

// TestShardVsSerialCertificate is the shard-equivalence acceptance
// test: the same stream sharded 1/2/4/8 ways must always produce a
// merged sketch whose certificate bound holds against the exact
// covariance — ‖AᵀA − BᵀB‖₂ ≤ Σδ, with the spectral norm computed by
// power iteration on the full data — and whose energy ledger accounts
// for every row (certificates compose additively across the shard
// merge). β = 1 so the sketch summarizes exactly the data compared
// against.
func TestShardVsSerialCertificate(t *testing.T) {
	const n, d = 256, 24
	vecs := testVecs(n, d, 11)
	x := asMatrix(vecs)
	wantMass := x.FrobeniusNormSq()

	for _, shards := range []int{1, 2, 4, 8} {
		e := engine.New(engine.Config{
			Shards: shards,
			Sketch: sketch.Config{Ell0: 8, Beta: 1, Seed: 5},
			Window: 32,
		})
		e.IngestVecs(cloneVecs(vecs), nil)
		if e.Ingested() != n {
			t.Fatalf("shards=%d: ingested %d frames, want %d", shards, e.Ingested(), n)
		}

		if live := e.Certificate(); live.Rows != n {
			t.Fatalf("shards=%d: live certificate covers %d rows, want %d", shards, live.Rows, n)
		}

		g := e.GlobalSketch()
		if g == nil {
			t.Fatalf("shards=%d: nil global sketch after %d frames", shards, n)
		}
		if g.Seen() != n {
			t.Fatalf("shards=%d: global sketch saw %d rows, want %d", shards, g.Seen(), n)
		}
		// Certificate and sketch matrix must come from the same object:
		// Sketch() compacts (a final rotation adds its δ to the ledger),
		// so the certificate is cut after extracting B.
		b := g.Sketch()
		cert := audit.FromSketch(g)
		if cert.Rows != n {
			t.Fatalf("shards=%d: certificate covers %d rows, want %d", shards, cert.Rows, n)
		}
		if math.Abs(cert.FrobMass-wantMass) > 1e-9*(1+wantMass) {
			t.Fatalf("shards=%d: certificate FrobMass = %v, want ‖A‖_F² = %v",
				shards, cert.FrobMass, wantMass)
		}
		exact := sketch.CovErr(x, b)
		slack := 1e-8 * (1 + cert.FrobMass)
		if exact > cert.CovBound()+slack {
			t.Fatalf("shards=%d: exact covariance error %v exceeds certified bound %v",
				shards, exact, cert.CovBound())
		}
		if cert.CovBound() > cert.AprioriBound()+slack {
			t.Fatalf("shards=%d: online bound %v exceeds a-priori bound %v",
				shards, cert.CovBound(), cert.AprioriBound())
		}
	}
}

// TestBatchMatchesPerFrame pins batch-size invariance: with a fixed
// shard count, ingesting frame-by-frame and ingesting in arbitrary
// batches must produce bit-identical shard states — routing is by
// global stream index and rows are fed to each sampler one at a time,
// so batching is a pure throughput optimization.
func TestBatchMatchesPerFrame(t *testing.T) {
	const n, d = 90, 12
	vecs := testVecs(n, d, 23)
	cfg := engine.Config{
		Shards: 3,
		Sketch: sketch.Config{Ell0: 5, Beta: 0.8, Seed: 17},
		Window: 16,
	}

	single := engine.New(cfg)
	for i, v := range vecs {
		single.IngestVecs([][]float64{append([]float64(nil), v...)}, []int{i})
	}
	batched := engine.New(cfg)
	for lo := 0; lo < n; {
		hi := lo + 1 + (lo*7)%13 // uneven batch sizes
		if hi > n {
			hi = n
		}
		tags := make([]int, hi-lo)
		for i := range tags {
			tags[i] = lo + i
		}
		batched.IngestVecs(cloneVecs(vecs[lo:hi]), tags)
		lo = hi
	}

	a, b := single.State(), batched.State()
	if len(a.Shards) != len(b.Shards) {
		t.Fatalf("shard counts differ: %d vs %d", len(a.Shards), len(b.Shards))
	}
	for i := range a.Shards {
		sa, sb := a.Shards[i], b.Shards[i]
		if (sa == nil) != (sb == nil) {
			t.Fatalf("shard %d: presence differs", i)
		}
		if sa == nil {
			continue
		}
		fa, fb := shardFD(t, sa, i), shardFD(t, sb, i)
		if fa.Seen != fb.Seen || fa.Rotations != fb.Rotations {
			t.Fatalf("shard %d: seen/rotations differ: %d/%d vs %d/%d",
				i, fa.Seen, fa.Rotations, fb.Seen, fb.Rotations)
		}
		for j := range fa.Buffer {
			if fa.Buffer[j] != fb.Buffer[j] {
				t.Fatalf("shard %d: buffer diverged at element %d", i, j)
			}
		}
		if sa.RNG != sb.RNG {
			t.Fatalf("shard %d: sampler RNG state diverged", i)
		}
	}
}

func shardFD(t *testing.T, s *sketch.ARAMSState, i int) *sketch.FDState {
	t.Helper()
	if s.RankAdaptive != nil {
		return &s.RankAdaptive.FD
	}
	if s.FD == nil {
		t.Fatalf("shard %d state has neither sketch variant", i)
	}
	return s.FD
}

// TestHashByTagRouting checks the routing policy: with HashByTag every
// frame with the same tag must land on the same shard, so per-shard row
// counts are reproducible from the tag distribution alone.
func TestHashByTagRouting(t *testing.T) {
	const n, d = 64, 8
	vecs := testVecs(n, d, 31)
	cfg := engine.Config{
		Shards: 4,
		Route:  engine.HashByTag,
		Sketch: sketch.Config{Ell0: 4, Beta: 1},
		Window: 8,
	}
	// Two tags → at most two populated shards, identically across runs.
	tags := make([]int, n)
	for i := range tags {
		tags[i] = 1000 + i%2
	}
	populated := func(e *engine.Engine) []int {
		var got []int
		for i, ss := range e.State().Shards {
			if ss != nil {
				got = append(got, i)
			}
		}
		return got
	}
	e1 := engine.New(cfg)
	e1.IngestVecs(cloneVecs(vecs), tags)
	e2 := engine.New(cfg)
	for i, v := range vecs {
		e2.IngestVecs([][]float64{append([]float64(nil), v...)}, tags[i:i+1])
	}
	p1, p2 := populated(e1), populated(e2)
	if len(p1) > 2 || len(p1) == 0 {
		t.Fatalf("2 tags landed on %d shards: %v", len(p1), p1)
	}
	if len(p1) != len(p2) {
		t.Fatalf("batch vs per-frame routing disagree: %v vs %v", p1, p2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("batch vs per-frame routing disagree: %v vs %v", p1, p2)
		}
	}
}

// TestStateRoundTripResume checks that a restored engine continues the
// stream bit-exactly: run A ingests everything; run B checkpoints
// mid-stream, restores, and finishes; their final states must agree
// shard by shard.
func TestStateRoundTripResume(t *testing.T) {
	const n, d, cut = 70, 10, 40
	vecs := testVecs(n, d, 47)
	cfg := engine.Config{
		Shards: 4,
		Sketch: sketch.Config{Ell0: 5, Beta: 0.85, Seed: 3, RankAdaptive: true, Eps: 0.25, Nu: 3},
		Window: 12,
	}

	control := engine.New(cfg)
	control.IngestVecs(cloneVecs(vecs), nil)

	first := engine.New(cfg)
	first.IngestVecs(cloneVecs(vecs[:cut]), nil)
	st := first.State()

	restored, err := engine.NewFromState(cfg, st)
	if err != nil {
		t.Fatalf("NewFromState: %v", err)
	}
	if restored.Ingested() != cut {
		t.Fatalf("restored engine reports %d ingests, want %d", restored.Ingested(), cut)
	}
	restored.IngestVecs(cloneVecs(vecs[cut:]), nil)

	a, b := control.State(), restored.State()
	if a.Ingests != b.Ingests {
		t.Fatalf("ingest counts differ: %d vs %d", a.Ingests, b.Ingests)
	}
	if len(a.Frames) != len(b.Frames) {
		t.Fatalf("window sizes differ: %d vs %d", len(a.Frames), len(b.Frames))
	}
	for i := range a.Frames {
		for j := range a.Frames[i].Vec {
			if a.Frames[i].Vec[j] != b.Frames[i].Vec[j] {
				t.Fatalf("window frame %d diverged at element %d", i, j)
			}
		}
	}
	for i := range a.Shards {
		fa, fb := shardFD(t, a.Shards[i], i), shardFD(t, b.Shards[i], i)
		for j := range fa.Buffer {
			if fa.Buffer[j] != fb.Buffer[j] {
				t.Fatalf("shard %d buffer diverged at element %d after restore", i, j)
			}
		}
		if a.Shards[i].RNG != b.Shards[i].RNG {
			t.Fatalf("shard %d sampler RNG diverged after restore", i)
		}
	}
}

// TestStateRejectsCorrupt pins restore validation: impossible window /
// frame / shard combinations must be rejected, not half-restored.
func TestStateRejectsCorrupt(t *testing.T) {
	cfg := engine.Config{Sketch: sketch.Config{Ell0: 4, Beta: 1}}
	if _, err := engine.NewFromState(cfg, nil); err == nil {
		t.Fatal("nil state accepted")
	}
	if _, err := engine.NewFromState(cfg, &engine.State{Window: 0}); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := engine.NewFromState(cfg, &engine.State{Window: 4, Ingests: 9}); err == nil {
		t.Fatal("ingests without any shard sketch accepted")
	}
	if _, err := engine.NewFromState(cfg, &engine.State{
		Window: 2, Ingests: 1,
		Frames: []engine.Frame{{Vec: []float64{1}}, {Vec: []float64{2}}, {Vec: []float64{3}}},
	}); err == nil {
		t.Fatal("more frames than window accepted")
	}
}

// TestEnqueueDrainStop exercises the async queue: everything enqueued
// before Drain is visible after it, and Stop flushes the tail.
func TestEnqueueDrainStop(t *testing.T) {
	const n = 40
	e := engine.New(engine.Config{
		Shards:       2,
		IngestBuffer: 8, // small buffer so Enqueue exercises backpressure
		BatchSize:    4,
		Sketch:       sketch.Config{Ell0: 4, Beta: 1},
		Window:       8,
	})
	im := imgproc.NewImage(4, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			im.Set(x, y, float64(1+x*y))
		}
	}
	for i := 0; i < n/2; i++ {
		e.Enqueue(im, i)
	}
	e.Drain()
	if got := e.Ingested(); got != n/2 {
		t.Fatalf("after Drain: %d frames ingested, want %d", got, n/2)
	}
	for i := n / 2; i < n; i++ {
		e.Enqueue(im, i)
	}
	e.Stop()
	if got := e.Ingested(); got != n {
		t.Fatalf("after Stop: %d frames ingested, want %d", got, n)
	}
	// Idempotent: draining or stopping a stopped engine is a no-op.
	e.Drain()
	e.Stop()
}

// TestAuditParityOneShard pins the facade contract on the audit layer:
// a one-shard engine fed per-frame must flush the same number of audit
// batches at the same cadence as the AuditEvery spec, and the journal
// must carry rank-growth events when the rank grows.
func TestAuditParityOneShard(t *testing.T) {
	const n, d = 64, 12
	vecs := testVecs(n, d, 53)
	aud := audit.New(audit.Config{
		Journal:  audit.NewJournal(64),
		Registry: obs.NewRegistry(),
	})
	e := engine.New(engine.Config{
		Shards:     1,
		Sketch:     sketch.Config{Ell0: 3, Beta: 1, RankAdaptive: true, Eps: 0.05, Nu: 2},
		Window:     16,
		Audit:      aud,
		AuditEvery: 8,
	})
	for i, v := range vecs {
		e.IngestVecs([][]float64{append([]float64(nil), v...)}, []int{i})
	}
	if got, want := aud.State().Batches, int64(n/8); got != want {
		t.Fatalf("audited %d batches, want %d", got, want)
	}
	grew := false
	for _, ev := range aud.Journal().State().Events {
		if ev.Kind == audit.KindRankGrow {
			grew = true
		}
	}
	if e.Ell() > 3 && !grew {
		t.Fatalf("rank grew to %d but no rank_grow journal event", e.Ell())
	}
}

// TestReconcileCadence checks that multi-shard engines keep a reconciled
// global available mid-stream and that Basis clamps k to the merged
// rank.
func TestReconcileCadence(t *testing.T) {
	const n, d = 120, 16
	vecs := testVecs(n, d, 67)
	e := engine.New(engine.Config{
		Shards:         4,
		ReconcileEvery: 16,
		Sketch:         sketch.Config{Ell0: 6, Beta: 1, Seed: 2},
		Window:         32,
		Merge:          parallel.TreeMerge,
	})
	for lo := 0; lo < n; lo += 8 {
		e.IngestVecs(cloneVecs(vecs[lo:lo+8]), nil)
	}
	basis, ell := e.Basis(1000)
	if basis == nil || ell == 0 {
		t.Fatal("no basis after ingest")
	}
	if basis.RowsN > ell {
		t.Fatalf("basis has %d rows, rank is %d", basis.RowsN, ell)
	}
	if basis.ColsN != d {
		t.Fatalf("basis dimension %d, want %d", basis.ColsN, d)
	}
	x, tags, wbasis, well := e.WindowState(4)
	if x == nil || len(tags) != x.RowsN {
		t.Fatal("WindowState returned inconsistent window")
	}
	if well != ell {
		t.Fatalf("WindowState rank %d != Basis rank %d", well, ell)
	}
	if wbasis.RowsN != 4 {
		t.Fatalf("clamped basis has %d rows, want 4", wbasis.RowsN)
	}
}
