package engine

import (
	"fmt"

	"arams/internal/audit"
	"arams/internal/sketch"
)

// State is a checkpointable snapshot of the engine: the sliding window,
// the stream counter, and one ARAMS state per shard slot. Shard states
// are positional — slot i of the slice is shard i — because round-robin
// routing assigns frames by global stream index, so restoring a
// checkpoint into a different shard layout would replay the stream
// through different samplers. A slot is nil when its shard has not yet
// received a frame. Audit and Journal carry the quality-auditing state
// when the engine was configured with an Auditor (nil otherwise); they
// are captured under the same exclusive gate as the sketches, so a
// checkpoint never pairs a newer audit state with older shard states.
type State struct {
	Window  int
	Ingests int
	Frames  []Frame
	Shards  []*sketch.ARAMSState
	Audit   *audit.State
	Journal *audit.JournalState
}

// State captures the engine's current state. It takes the ingest gate
// exclusively, so in-flight batches finish first and the snapshot is a
// consistent cut of ring, counters, every shard, and the audit layer.
func (e *Engine) State() *State {
	e.gate.Lock()
	defer e.gate.Unlock()
	s := &State{
		Window:  e.cfg.Window,
		Ingests: e.ingests,
		Frames:  make([]Frame, len(e.recent)),
		Shards:  make([]*sketch.ARAMSState, len(e.shards)),
	}
	for i, f := range e.recent {
		s.Frames[i] = Frame{Vec: append([]float64(nil), f.Vec...), Tag: f.Tag}
	}
	for i, sh := range e.shards {
		st, err := sh.State()
		if err != nil {
			// Only remote backends can fail here, and only after Close —
			// journal the gap rather than tearing a checkpoint that local
			// shards can still serve. The slot stays nil.
			audit.Default().Record("shard_state_error",
				"shard backend failed to serve checkpoint state; slot left empty",
				audit.A("shard", float64(i)))
			continue
		}
		s.Shards[i] = st
	}
	if e.cfg.Audit != nil {
		ast := e.cfg.Audit.State()
		jst := e.cfg.Audit.Journal().State()
		s.Audit = &ast
		s.Journal = &jst
	}
	return s
}

// Suspend is the hibernation path: it stops the async pump (draining
// anything queued), captures a detached state handle, and closes every
// shard backend, releasing the engine's memory and goroutines. The
// engine must not be used after Suspend; NewFromState over the returned
// handle resumes the stream bit-exactly (sampler RNG streams included),
// so a hibernate→restore cycle is invisible to sketch bytes,
// certificates, and audit journals. Returns the state even when a
// backend close fails — the checkpoint is already consistent by then.
func (e *Engine) Suspend() (*State, error) {
	e.Stop()
	s := e.State()
	return s, e.closeBackends()
}

// NewFromState rebuilds an engine from a snapshot, resuming the stream
// exactly where the checkpoint left off (sampler RNG streams included).
// The checkpoint's shard layout wins: len(s.Shards) overrides
// cfg.Shards when they disagree, because routing determinism is a
// property of the layout the stream was sharded under. cfg.Shards is
// honored only for empty checkpoints (nothing ingested yet).
func NewFromState(cfg Config, s *State) (*Engine, error) {
	if s == nil {
		return nil, fmt.Errorf("engine: nil state")
	}
	if s.Window <= 0 {
		return nil, fmt.Errorf("engine: state has window=%d", s.Window)
	}
	if s.Ingests < len(s.Frames) || len(s.Frames) > s.Window {
		return nil, fmt.Errorf("engine: state has %d frames for window=%d ingests=%d",
			len(s.Frames), s.Window, s.Ingests)
	}
	populated := 0
	dim := 0
	for _, ss := range s.Shards {
		if ss == nil {
			continue
		}
		populated++
		if dim == 0 {
			dim = ss.D
		} else if ss.D != dim {
			return nil, fmt.Errorf("engine: state shards disagree on dimension (%d vs %d)", dim, ss.D)
		}
	}
	if populated == 0 && (s.Ingests > 0 || len(s.Frames) > 0) {
		return nil, fmt.Errorf("engine: state has %d ingests but no sketch", s.Ingests)
	}
	for i, f := range s.Frames {
		if dim > 0 && len(f.Vec) != dim {
			return nil, fmt.Errorf("engine: state frame %d has %d features, sketch expects %d",
				i, len(f.Vec), dim)
		}
	}

	cfg.Window = s.Window
	if len(s.Shards) > 0 {
		cfg.Shards = len(s.Shards)
		if len(cfg.Backends) > 0 && len(cfg.Backends) != len(s.Shards) {
			return nil, fmt.Errorf("engine: checkpoint has %d shards but %d backends supplied",
				len(s.Shards), len(cfg.Backends))
		}
	}
	e := New(cfg)
	for i, ss := range s.Shards {
		if ss == nil {
			continue
		}
		if err := e.shards[i].Restore(ss); err != nil {
			return nil, fmt.Errorf("engine: shard %d: %w", i, err)
		}
		if ell := e.shards[i].Ell(); ell > e.lastEll {
			e.lastEll = ell
		}
	}
	e.recent = make([]*Frame, len(s.Frames))
	for i, f := range s.Frames {
		e.recent[i] = &Frame{Vec: append([]float64(nil), f.Vec...), Tag: f.Tag}
	}
	e.ingests = s.Ingests
	if cfg.Audit != nil {
		if s.Journal != nil {
			cfg.Audit.Journal().Restore(*s.Journal)
		}
		if s.Audit != nil {
			cfg.Audit.Restore(*s.Audit)
		}
	}
	return e, nil
}
