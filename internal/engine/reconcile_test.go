package engine_test

import (
	"math"
	"testing"

	"arams/internal/engine"
	"arams/internal/imgproc"
	"arams/internal/obs"
	"arams/internal/rng"
	"arams/internal/sketch"
)

// quietVecs builds an exactly rank-r stream (no noise): every frame
// lies in the span of r fixed directions, so FD rotations shrink by
// (numerically) nothing and the adaptive controller sees no staleness.
func quietVecs(n, d, r int, seed uint64) [][]float64 {
	g := rng.New(seed)
	base := make([][]float64, r)
	for i := range base {
		base[i] = make([]float64, d)
		for j := range base[i] {
			base[i][j] = g.Norm()
		}
	}
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, d)
		for k, b := range base {
			w := g.Norm() * float64(r-k)
			for j := range v {
				v[j] += w * b[j]
			}
		}
		vecs[i] = v
	}
	return vecs
}

// runCadence streams vecs through a fresh 4-shard engine under the
// given cadence and returns the engine plus its during-ingest
// reconcile count (read before Certificate forces one final merge).
func runCadence(vecs [][]float64, every int, adaptive bool) (*engine.Engine, int) {
	e := engine.New(engine.Config{
		Shards:         4,
		ReconcileEvery: every,
		ReconcileFixed: !adaptive,
		Sketch:         sketch.Config{Ell0: 8, Beta: 1, Seed: 5},
		Window:         32,
	})
	const batch = 16
	for lo := 0; lo < len(vecs); lo += batch {
		hi := lo + batch
		if hi > len(vecs) {
			hi = len(vecs)
		}
		e.IngestVecs(cloneVecs(vecs[lo:hi]), nil)
	}
	return e, e.Reconciles()
}

// sameGlobalSketch asserts the two engines' merged global sketches are
// bit-identical: same matrix, same row count, same shrinkage ledger.
func sameGlobalSketch(t *testing.T, eF, eA *engine.Engine) {
	t.Helper()
	gF, gA := eF.GlobalSketch(), eA.GlobalSketch()
	if gF == nil || gA == nil {
		t.Fatal("nil global sketch")
	}
	if gF.Seen() != gA.Seen() {
		t.Fatalf("row counts differ: fixed saw %d, adaptive saw %d", gF.Seen(), gA.Seen())
	}
	if gF.Delta() != gA.Delta() {
		t.Fatalf("shrinkage ledgers differ: fixed Σδ=%v, adaptive Σδ=%v", gF.Delta(), gA.Delta())
	}
	bF, bA := gF.Sketch(), gA.Sketch()
	if bF.RowsN != bA.RowsN || bF.ColsN != bA.ColsN {
		t.Fatalf("sketch shapes differ: fixed %dx%d, adaptive %dx%d",
			bF.RowsN, bF.ColsN, bA.RowsN, bA.ColsN)
	}
	for i := 0; i < bF.RowsN; i++ {
		rf, ra := bF.Row(i), bA.Row(i)
		for j := range rf {
			if rf[j] != ra[j] {
				t.Fatalf("sketch row %d col %d differs: fixed %v, adaptive %v", i, j, rf[j], ra[j])
			}
		}
	}
}

// TestAdaptiveReconcileMatchesFixed is the cadence-equivalence property
// test: reconciles only clone shard state — they never mutate it — so
// running the same stream under the fixed countdown and under the
// adaptive controller must end with bit-identical global sketches and
// certificates, no matter how differently the two cadences scheduled
// their merges along the way.
func TestAdaptiveReconcileMatchesFixed(t *testing.T) {
	const n, d = 256, 24
	vecs := testVecs(n, d, 71)

	eF, _ := runCadence(vecs, 16, false)
	eA, _ := runCadence(vecs, 16, true)

	sameGlobalSketch(t, eF, eA)
	cF, cA := eF.Certificate(), eA.Certificate()
	if cF.Rows != cA.Rows {
		t.Fatalf("certificate rows differ: fixed %d, adaptive %d", cF.Rows, cA.Rows)
	}
	if cF.CovBound() != cA.CovBound() {
		t.Fatalf("certified bounds differ: fixed %v, adaptive %v", cF.CovBound(), cA.CovBound())
	}
	if math.Abs(cF.FrobMass-cA.FrobMass) != 0 {
		t.Fatalf("certificate mass differs: fixed %v, adaptive %v", cF.FrobMass, cA.FrobMass)
	}
}

// TestAdaptiveReducesQuietReconciles pins the point of the adaptive
// cadence: on a stream adding no shrinkage the controller has no
// staleness signal, so it defers merges to the hard lag cap
// (ReconcileMaxLag, default 8×ReconcileEvery) while the fixed countdown
// keeps paying one merge every ReconcileEvery frames — and because
// reconciles never mutate shards, the deferral costs nothing in
// certified error.
func TestAdaptiveReducesQuietReconciles(t *testing.T) {
	const n, d = 192, 24
	vecs := quietVecs(n, d, 3, 41)

	eF, recF := runCadence(vecs, 8, false)
	eA, recA := runCadence(vecs, 8, true)

	if recF == 0 {
		t.Fatal("fixed cadence performed no reconciles; cadence not exercised")
	}
	if recA >= recF {
		t.Fatalf("adaptive cadence did not reduce reconciles on a quiet stream: adaptive %d, fixed %d",
			recA, recF)
	}
	sameGlobalSketch(t, eF, eA)
	cF, cA := eF.Certificate(), eA.Certificate()
	if cA.CovBound() > cF.CovBound() {
		t.Fatalf("adaptive cadence widened the certified bound: adaptive %v, fixed %v",
			cA.CovBound(), cF.CovBound())
	}
}

// TestQueueDepthGaugeZeroAfterStop is the regression test for the
// stale arams_engine_queue_depth gauge: the Enqueue-side sample could
// race the pump and leave a nonzero depth sticking forever after the
// queue drained. The gauge is now sampled only by the pump — after
// each flush, and zeroed when the pump exits.
func TestQueueDepthGaugeZeroAfterStop(t *testing.T) {
	depth := obs.Default().Gauge("arams_engine_queue_depth")
	e := engine.New(engine.Config{
		Shards:       2,
		IngestBuffer: 8,
		BatchSize:    4,
		Sketch:       sketch.Config{Ell0: 4, Beta: 1},
		Window:       8,
	})
	im := imgproc.NewImage(3, 3)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			im.Set(x, y, float64(1+x+2*y))
		}
	}
	const n = 24
	for i := 0; i < n; i++ {
		e.Enqueue(im, i)
	}
	e.Drain()
	if got := depth.Value(); got != 0 {
		t.Fatalf("queue depth gauge reads %v after Drain, want 0", got)
	}
	for i := n; i < 2*n; i++ {
		e.Enqueue(im, i)
	}
	e.Stop()
	if got := depth.Value(); got != 0 {
		t.Fatalf("queue depth gauge reads %v after Stop, want 0", got)
	}
	if got := e.Ingested(); got != 2*n {
		t.Fatalf("ingested %d frames, want %d", got, 2*n)
	}
}
