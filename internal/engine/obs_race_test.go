package engine_test

// Observability hammer and trace-connectivity tests, meant for -race:
// endpoint scrapers (/metrics, /statusz, /tracez, /metrics.json) pound
// the obs handler while a 4-shard engine runs its full ingest →
// preprocess → route → shard-sketch → reconcile loop, so the race
// detector sees every edge between the hot path's span/trace writes
// and the HTTP readers' snapshots. Afterwards the retained traces are
// checked for the tentpole invariant: one batch = one connected trace.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"arams/internal/engine"
	"arams/internal/imgproc"
	"arams/internal/obs"
	"arams/internal/sketch"
)

func testImages(n, side int, seed uint64) []*imgproc.Image {
	vecs := testVecs(n, side*side, seed)
	ims := make([]*imgproc.Image, n)
	for i := range ims {
		im := imgproc.NewImage(side, side)
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				im.Set(x, y, vecs[i][y*side+x])
			}
		}
		ims[i] = im
	}
	return ims
}

func TestEngineObsScrapeHammer(t *testing.T) {
	e := engine.New(engine.Config{
		Shards:         4,
		ReconcileEvery: 4,
		BatchSize:      8,
		Sketch:         sketch.Config{Ell0: 5, Beta: 0.9, Seed: 11},
		Window:         64,
	})
	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for _, path := range []string{"/metrics", "/statusz", "/tracez", "/tracez?format=json", "/metrics.json"} {
		scrapers.Add(1)
		go func(path string) {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(path)
	}

	const batches, batchLen, side = 16, 8, 6
	ims := testImages(batches*batchLen, side, 3)
	for b := 0; b < batches; b++ {
		tags := make([]int, batchLen)
		for i := range tags {
			tags[i] = b*batchLen + i
		}
		e.IngestBatch(ims[b*batchLen:(b+1)*batchLen], tags)
		_, _ = e.Basis(4) // forces reconcile traffic between batches
	}
	close(stop)
	scrapers.Wait()

	if got := e.Ingested(); got != batches*batchLen {
		t.Fatalf("ingested %d, want %d", got, batches*batchLen)
	}
	assertConnectedIngestTrace(t, 4)
}

// assertConnectedIngestTrace scans the default registry for retained
// ingest_batch traces and requires at least one to be a fully
// connected tree containing the preprocess and per-shard sketch legs.
func assertConnectedIngestTrace(t *testing.T, shards int) {
	t.Helper()
	var checked int
	for _, tr := range obs.Default().Traces() {
		if tr.Root != "ingest_batch" {
			continue
		}
		byID := make(map[obs.ID]obs.SpanRecord, len(tr.Spans))
		names := map[string]int{}
		for _, sp := range tr.Spans {
			if sp.Trace != tr.Trace {
				t.Fatalf("span %s in trace %s carries trace %s", sp.Name, tr.Trace, sp.Trace)
			}
			byID[sp.Span] = sp
			names[sp.Name]++
		}
		for _, sp := range tr.Spans {
			cur := sp
			for cur.Parent != 0 {
				parent, ok := byID[cur.Parent]
				if !ok {
					t.Fatalf("trace %s: span %s has unretained parent — disconnected trace", tr.Trace, sp.Name)
				}
				cur = parent
			}
			if cur.Name != "ingest_batch" {
				t.Fatalf("trace %s: span %s roots at %q, not ingest_batch", tr.Trace, sp.Name, cur.Name)
			}
		}
		if names["preprocess"] == 0 {
			continue // vec-only ingest; keep looking for an image batch
		}
		if names["shard_sketch"] != shards {
			t.Fatalf("trace %s: %d shard_sketch spans, want %d", tr.Trace, names["shard_sketch"], shards)
		}
		if names["route"] == 0 {
			t.Fatalf("trace %s: multi-shard batch has no route span", tr.Trace)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no connected ingest_batch trace with preprocess+shard legs retained")
	}
}

// TestEngineReconcileJoinsIngestTrace checks the merge legs land in the
// same trace as the batch that forced the reconcile.
func TestEngineReconcileJoinsIngestTrace(t *testing.T) {
	e := engine.New(engine.Config{
		Shards:         4,
		ReconcileEvery: 1, // reconcile inside every dispatch
		Sketch:         sketch.Config{Ell0: 5, Beta: 1, Seed: 5},
		Window:         32,
	})
	ims := testImages(32, 6, 9)
	tags := make([]int, len(ims))
	for i := range tags {
		tags[i] = i
	}
	e.IngestBatch(ims, tags)

	for _, tr := range obs.Default().Traces() {
		if tr.Root != "ingest_batch" {
			continue
		}
		names := map[string]int{}
		for _, sp := range tr.Spans {
			names[sp.Name]++
		}
		if names["reconcile"] > 0 && names["merge_sketches"] > 0 {
			return // reconcile and its merge live inside the batch trace
		}
	}
	t.Fatal("no ingest_batch trace contains reconcile + merge_sketches spans")
}
