// Package engine is the sharded streaming core of the online monitor:
// frames enter through a bounded, backpressured ingest queue, are
// batch-preprocessed on the shared worker pool, routed (round-robin or
// hash-by-tag) to N independent shard sketchers, and periodically
// reconciled into one global sketch with the same tree merge the batch
// pipeline uses — so the error-bound certificate and fault-recovery
// semantics compose unchanged across shards (FD summaries are
// mergeable; the merged sketch's Σδ still bounds ‖AᵀA − BᵀB‖₂ over the
// concatenation of every shard's stream).
//
// The engine replaces the lock-per-frame Monitor design: CPU-heavy
// preprocessing and sketching never run under a global lock. A batch
// only takes the engine lock for ring/counter bookkeeping, then each
// shard absorbs its rows under its own lock, so shards sketch
// concurrently and snapshots interleave with ingest.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"arams/internal/audit"
	"arams/internal/imgproc"
	"arams/internal/mat"
	"arams/internal/obs"
	"arams/internal/parallel"
	"arams/internal/sketch"
)

// Route selects how frames are assigned to shards.
type Route int

const (
	// RoundRobin routes frame i (global stream index) to shard i mod N —
	// deterministic and load-balanced, the default.
	RoundRobin Route = iota
	// HashByTag routes by a hash of the caller tag, so frames sharing a
	// tag (e.g. a pulse-ID class) always land on the same shard.
	HashByTag
)

// Config parameterizes the streaming engine.
type Config struct {
	// Shards is the number of independent sketchers (default 1; with
	// one shard the engine is behaviorally identical to the serial
	// monitor, including RNG consumption and audit cadence).
	Shards int
	// IngestBuffer bounds the async Enqueue queue (default 256).
	// Producers block when it is full — backpressure, not drops.
	IngestBuffer int
	// BatchSize caps how many queued frames the pump folds into one
	// IngestBatch call (default 64).
	BatchSize int
	// Route picks the shard-assignment policy.
	Route Route
	// ReconcileEvery is the frame interval between proactive shard
	// reconciles (default 128). Snapshot paths reconcile on demand
	// regardless, so this only bounds merge lag between snapshots.
	// In the default adaptive mode it is the controller's hysteresis
	// scale rather than a fixed countdown.
	ReconcileEvery int
	// ReconcileFixed reverts merge cadence to the fixed ReconcileEvery
	// countdown. The default (false) runs the staleness-driven
	// controller in reconcile.go: quiet streams (no marginal Σδ
	// growth) defer merges up to ReconcileMaxLag, drifting or bursty
	// ones merge eagerly. Either way the post-Drain global sketch is
	// bit-identical; only *when* merges happen differs, so fixed mode
	// exists purely as the reproduce-the-old-schedule escape hatch.
	ReconcileFixed bool
	// ReconcileMaxLag is the adaptive controller's hard upper bound on
	// merge lag in frames (default 8×ReconcileEvery): a reconcile is
	// forced at this lag no matter how quiet the stream, bounding
	// snapshot staleness.
	ReconcileMaxLag int
	// ReconcileDeltaFrac is the relative Σδ growth since the last
	// reconcile that makes a merge due in adaptive mode (default 0.05,
	// i.e. the certified bound grew 5%). The frame-budget burn EWMA
	// scales it up when the engine is over budget.
	ReconcileDeltaFrac float64
	// Window is the sliding-window size for snapshots (default 1024).
	Window int
	// Tenant, when non-empty, scopes the engine's hot-path metric
	// series with a tenant="<id>" label so many engines can share one
	// process and one obs registry (the multi-tenant registry sets it).
	// Empty — the default — registers the exact unlabeled series a
	// single-stream process always exported.
	Tenant string
	// Pre is the per-frame preprocessing chain.
	Pre imgproc.Preprocessor
	// Sketch configures each shard's ARAMS sketcher. Shard i > 0
	// derives its sampling/probe RNG seed from Seed and i so shards
	// draw independent streams.
	Sketch sketch.Config
	// Merge selects the reconcile strategy (default TreeMerge).
	Merge parallel.MergeStrategy
	// Audit, when set, receives one batched observation every
	// AuditEvery frames plus rank-growth journal events, exactly like
	// the pre-engine Monitor. With multiple shards the certificate
	// comes from a fresh reconcile.
	Audit *audit.Auditor
	// AuditEvery is the frame interval between audit points (default 32).
	AuditEvery int
	// FrameBudget is the per-frame wall-time SLO, amortized over each
	// batch (default one 120 Hz machine period; negative disables
	// budget tracking). Batches that exceed it count as deadline
	// misses; a sustained burn rate above BurnThreshold fires the
	// flight recorder. See budget.go.
	FrameBudget time.Duration
	// BurnThreshold is the EWMA burn rate that trips the flight
	// recorder (default 2.0).
	BurnThreshold float64
	// Backends, when non-empty, supplies the shard backends directly —
	// the distributed-fabric hook: slot i is shard i, Shards is
	// overridden to len(Backends), and each backend is expected to be
	// configured with ShardSketchConfig(Sketch, i) so routing and RNG
	// semantics match an all-local engine exactly. Empty means the
	// engine creates Shards in-process backends itself.
	Backends []Backend
	// ReconcileRetry is the per-leg retry policy for snapshot fetches
	// during a reconcile (parallel.MergeRemote). The zero value means
	// the parallel defaults: 3 attempts, 200µs doubling backoff, no
	// per-attempt timeout. Local backends never fail, so this only
	// matters with remote shards.
	ReconcileRetry parallel.Retry
}

func (c Config) withDefaults() Config {
	if len(c.Backends) > 0 {
		c.Shards = len(c.Backends)
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.IngestBuffer <= 0 {
		c.IngestBuffer = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.ReconcileEvery <= 0 {
		c.ReconcileEvery = 128
	}
	if c.ReconcileMaxLag <= 0 {
		c.ReconcileMaxLag = 8 * c.ReconcileEvery
	}
	if c.ReconcileDeltaFrac <= 0 {
		c.ReconcileDeltaFrac = 0.05
	}
	if c.Window <= 0 {
		c.Window = 1024
	}
	if c.AuditEvery <= 0 {
		c.AuditEvery = 32
	}
	return c
}

// Frame is one preprocessed frame retained in the sliding window.
type Frame struct {
	Vec []float64
	Tag int
}

// shardResult is the audit accounting one dispatch returned.
type shardResult struct {
	ok    bool
	stats sketch.BatchStats // folded over this dispatch's rows
	ell   int
}

// Engine is the sharded streaming core. It is safe for concurrent
// producers (Ingest/IngestBatch/Enqueue) and concurrent snapshot and
// checkpoint readers.
//
// Lock order: gate → mu → shard.mu, and globalMu → mu → shard.mu;
// nothing acquires gate or globalMu while holding mu or a shard lock.
type Engine struct {
	cfg Config

	// gate serializes checkpointing against ingest: producers hold it
	// shared for the handoff, State() takes it exclusively so a
	// checkpoint sees no torn ring-vs-sketch state.
	gate sync.RWMutex

	// mu covers the ring, stream counters, and audit accumulator —
	// pointer bookkeeping only, never linear algebra.
	mu      sync.Mutex
	recent  []*Frame
	ingests int
	// inflight counts ingest calls between ring append and dispatch
	// completion. Window-evicted frame vectors are recycled to the
	// mat vector pool only when the evicting call is the sole one in
	// flight (inflight == 1): every older frame's dispatch has then
	// finished, so no shard absorb can still be reading the vector.
	inflight int

	// Audit accumulation (see Config.Audit). lastEll tracks the global
	// max shard rank for rank-growth journaling.
	auditAcc sketch.BatchStats
	lastEll  int

	// shards holds one Backend per shard slot (local sketchers by
	// default, remote fabric shards when Config.Backends is set). The
	// parallel slices carry the engine-owned per-shard observability:
	// frame counts (atomic — concurrent batches may land on the same
	// shard), the frames gauge, and the cumulative CPU counter.
	shards      []Backend
	shardFrames []atomic.Int64
	shardGauges []*obs.Gauge
	shardCPU    []*obs.Counter

	// globalMu owns the reconciled global sketch cache and serializes
	// Basis computations on it (Basis mutates the sketch's internal
	// factor cache).
	globalMu sync.Mutex
	global   *sketch.FrequentDirections
	globalAt int
	rc       reconcileCtl

	// Async ingest queue (see queue.go).
	queueMu  sync.Mutex
	queue    chan qitem
	pumpDone chan struct{}

	// budget is the frame-budget/SLO tracker (nil when disabled).
	budget *budgetTracker

	// eo holds the engine's metric handles — tenant-labeled when
	// cfg.Tenant is set, the process-wide unlabeled series otherwise.
	eo *engineObs
}

// New creates a streaming engine.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	eo := newEngineObs(cfg.Tenant)
	e := &Engine{cfg: cfg, eo: eo, budget: newBudgetTracker(cfg, eo), rc: newReconcileCtl(cfg, eo)}
	e.shards = make([]Backend, cfg.Shards)
	e.shardFrames = make([]atomic.Int64, cfg.Shards)
	e.shardGauges = make([]*obs.Gauge, cfg.Shards)
	e.shardCPU = make([]*obs.Counter, cfg.Shards)
	for i := range e.shards {
		if len(cfg.Backends) > 0 {
			e.shards[i] = cfg.Backends[i]
		} else {
			e.shards[i] = NewLocalBackend(ShardSketchConfig(cfg.Sketch, i))
		}
		e.shardGauges[i] = eo.shardGauge(i)
		e.shardCPU[i] = eo.shardCPUCounter(i)
	}
	eo.shardCount.SetInt(cfg.Shards)
	return e
}

// ShardSketchConfig derives shard i's sketch configuration: shard 0
// keeps the caller's seed verbatim (so a 1-shard engine consumes the
// RNG stream exactly like the serial monitor did), later shards mix the
// index in with a SplitMix64 step for independent sampling streams.
// Exported so benchmarks can replay a single shard's stream standalone.
func ShardSketchConfig(c sketch.Config, i int) sketch.Config {
	if i > 0 {
		c.Seed ^= splitmix64(c.Seed + uint64(i)*0x9e3779b97f4a7c15)
	}
	return c
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashTag is a 64-bit integer hash for HashByTag routing.
func hashTag(tag int) uint64 { return splitmix64(uint64(int64(tag))) }

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Ingest preprocesses one frame and feeds it to its shard. tag is an
// arbitrary caller identifier returned with snapshot rows.
func (e *Engine) Ingest(im *imgproc.Image, tag int) {
	e.IngestBatch([]*imgproc.Image{im}, []int{tag})
}

// IngestBatch preprocesses a batch of frames on the shared worker pool
// and routes them to the shards. tags may be nil (all frames tagged 0);
// otherwise it must match frames in length. The per-frame lock cost is
// amortized: one engine-lock acquisition for the whole batch, then each
// shard absorbs its rows under its own lock only.
func (e *Engine) IngestBatch(ims []*imgproc.Image, tags []int) {
	e.ingestBatchAt(ims, tags, time.Time{})
}

// ingestBatchAt is IngestBatch rooted in a fresh ingest_batch trace.
// queuedAt, when non-zero, is the enqueue time of the batch's oldest
// frame (the async path), recorded as a retroactive queue_wait span so
// the trace shows how long frames sat in the queue before the engine
// touched them.
func (e *Engine) ingestBatchAt(ims []*imgproc.Image, tags []int, queuedAt time.Time) {
	if len(ims) == 0 {
		return
	}
	start := time.Now()
	root := obs.StartTrace("ingest_batch",
		obs.L("frames", fmt.Sprint(len(ims))),
		obs.L("shards", fmt.Sprint(len(e.shards))))
	if !queuedAt.IsZero() {
		qw := root.StartChildSince(queuedAt, "queue_wait")
		qw.End()
	}
	spPre := root.StartChild("preprocess", obs.L("frames", fmt.Sprint(len(ims))))
	ct := obs.StartCPUTimer()
	vecs := make([][]float64, len(ims))
	mat.ParallelFor(len(ims), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			// Zero-copy handoff: the chain's working buffer comes from
			// the vector pool (fed by window evictions below) and its
			// output is adopted outright — it backs the ring entry and
			// every shard append, with no intermediate flatten copy.
			im := ims[i]
			vecs[i] = e.cfg.Pre.ApplyVec(im, mat.GetVec(im.W*im.H))
		}
	})
	if cpu, ok := ct.Stop(); ok {
		spPre.SetCPU(cpu) // this goroutine's chunks; pool workers bill
		// their share to arams_mat_pool_cpu_seconds_total
	}
	spPre.End()
	e.ingestVecsIn(&root, start, vecs, tags)
	e.eo.ingestLatency.Observe(time.Since(start).Seconds())
	root.End()
}

// IngestVecs feeds already-preprocessed feature vectors to the shards.
// The engine takes ownership of the vectors (they back both the window
// ring and the sketch append).
func (e *Engine) IngestVecs(vecs [][]float64, tags []int) {
	if len(vecs) == 0 {
		return
	}
	start := time.Now()
	root := obs.StartTrace("ingest_batch",
		obs.L("frames", fmt.Sprint(len(vecs))),
		obs.L("shards", fmt.Sprint(len(e.shards))))
	e.ingestVecsIn(&root, start, vecs, tags)
	root.End()
}

// ingestVecsIn is the traced core of ingest: every stage of the batch —
// routing, per-shard sketching, audit flush, reconcile — parents under
// root, so one batch is one connected trace on /tracez. start is when
// the engine first touched the batch (preprocess included), the
// reference point for frame-budget accounting.
func (e *Engine) ingestVecsIn(root *obs.Span, start time.Time, vecs [][]float64, tags []int) {
	if len(vecs) == 0 {
		return
	}
	if tags != nil && len(tags) != len(vecs) {
		panic("engine: tags/frames length mismatch")
	}
	e.gate.RLock()
	defer e.gate.RUnlock()

	n := len(vecs)
	// Ring append + stream-index assignment: pointer bookkeeping only.
	e.mu.Lock()
	base := e.ingests
	e.inflight++
	for i, v := range vecs {
		t := 0
		if tags != nil {
			t = tags[i]
		}
		e.recent = append(e.recent, &Frame{Vec: v, Tag: t})
	}
	var recycle [][]float64
	if over := len(e.recent) - e.cfg.Window; over > 0 {
		// Recycle evicted vectors to the pool when it is provably safe:
		// we are the only in-flight ingest (older frames' dispatches
		// have completed — shard appends copy, samplers retain nothing)
		// and the frame predates this batch (our own rows are about to
		// be dispatched). Snapshot readers copy under mu, so once a
		// frame leaves the ring nothing else can reach its vector.
		if e.inflight == 1 {
			if reuse := min(over, len(e.recent)-n); reuse > 0 {
				recycle = make([][]float64, reuse)
				for i, f := range e.recent[:reuse] {
					recycle[i] = f.Vec
				}
			}
		}
		e.recent = e.recent[over:]
	}
	e.ingests += n
	window := len(e.recent)
	e.mu.Unlock()
	for _, v := range recycle {
		mat.PutVec(v)
	}
	root.SetAttr("stream_lo", fmt.Sprint(base))
	root.SetAttr("stream_hi", fmt.Sprint(base+n-1))

	// Route and dispatch. With one shard the batch is absorbed inline;
	// otherwise shards with work run concurrently, each under its own
	// lock. Rows keep stream order within a shard, so the result is
	// deterministic for a given routing.
	ns := len(e.shards)
	results := make([]shardResult, ns)
	if ns == 1 {
		results[0] = e.absorbTraced(root, 0, vecs, nil)
	} else {
		spRoute := root.StartChild("route")
		perShard := make([][]int, ns)
		for i := range vecs {
			var si int
			switch e.cfg.Route {
			case HashByTag:
				t := 0
				if tags != nil {
					t = tags[i]
				}
				si = int(hashTag(t) % uint64(ns))
			default:
				si = (base + i) % ns
			}
			perShard[si] = append(perShard[si], i)
		}
		spRoute.End()
		var wg sync.WaitGroup
		for si := 0; si < ns; si++ {
			if len(perShard[si]) == 0 {
				continue
			}
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				results[si] = e.absorbTraced(root, si, vecs, perShard[si])
			}(si)
		}
		wg.Wait()
	}

	e.afterDispatch(results, base, n, window, root, start)
}

// absorbTraced wraps one shard's Backend.Absorb in a shard_sketch span
// (child of the batch root) carrying the shard index, row count, and
// the goroutine's CPU time, bills the CPU to the shard's cumulative
// counter, and keeps the per-shard frame gauge current. A failed absorb
// (only possible on remote backends that exhausted their recovery
// ladder) is journaled, fires the flight recorder, and returns ok=false
// so the audit accumulator skips the dispatch.
func (e *Engine) absorbTraced(root *obs.Span, si int, vecs [][]float64, idx []int) shardResult {
	rows := len(idx)
	if idx == nil {
		rows = len(vecs)
	}
	sp := root.StartChild("shard_sketch",
		obs.L("shard", fmt.Sprint(si)), obs.L("rows", fmt.Sprint(rows)))
	ct := obs.StartCPUTimer()
	var stats sketch.BatchStats
	var err error
	// A trace-propagating backend (fabric Remote) carries the span
	// context over the wire so the worker's spans land in this tree.
	if tb, ok := e.shards[si].(TracedBackend); ok {
		stats, err = tb.AbsorbIn(sp.Context(), vecs, idx)
	} else {
		stats, err = e.shards[si].Absorb(vecs, idx)
	}
	if cpu, ok := ct.Stop(); ok {
		sp.SetCPU(cpu)
		e.shardCPU[si].Add(cpu.Seconds())
	}
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		audit.Default().Record("shard_absorb_error",
			"shard backend failed to absorb a dispatch; rows lost from its stream",
			audit.A("shard", float64(si)),
			audit.A("rows", float64(rows)))
		obs.Default().FlightTrigger("shard_absorb_error")
		return shardResult{}
	}
	sp.End()
	if rows == 0 {
		return shardResult{}
	}
	e.shardGauges[si].SetInt(int(e.shardFrames[si].Add(int64(rows))))
	return shardResult{ok: true, stats: stats, ell: stats.EllAfter}
}

// afterDispatch folds the shard results into the audit accumulator,
// journals rank growth, flushes audit points on AuditEvery boundaries,
// refreshes gauges, feeds the frame-budget tracker, and reconciles
// under the batch's trace when the merge lag is due. base is the
// stream index of the batch's first frame, n the batch length; root
// and start are the batch's trace root and first-touch time.
func (e *Engine) afterDispatch(results []shardResult, base, n, window int, root *obs.Span, start time.Time) {
	e.mu.Lock()
	prevEll := e.lastEll
	ell := prevEll
	for _, r := range results {
		if !r.ok {
			continue
		}
		// A freshly created shard starts at Ell0, not 0: seed the
		// baseline from the dispatch so first-batch rank growth is
		// journaled relative to Ell0 like the serial monitor did.
		if prevEll == 0 && r.stats.EllBefore > prevEll {
			prevEll = r.stats.EllBefore
		}
		if r.ell > ell {
			ell = r.ell
		}
	}
	if prevEll > ell {
		ell = prevEll
	}
	e.lastEll = ell
	grewFrom := 0
	var flush sketch.BatchStats
	flushDue := false
	if e.cfg.Audit != nil {
		if ell > prevEll && prevEll > 0 {
			grewFrom = prevEll
		}
		for _, r := range results {
			if !r.ok {
				continue
			}
			e.auditAcc.Rows += r.stats.Rows
			e.auditAcc.Kept += r.stats.Kept
			e.auditAcc.TotalMass += r.stats.TotalMass
			e.auditAcc.KeptMass += r.stats.KeptMass
			e.auditAcc.DeltaAdded += r.stats.DeltaAdded
		}
		if (base+n)/e.cfg.AuditEvery > base/e.cfg.AuditEvery {
			flushDue = true
			flush = e.auditAcc
			flush.EllAfter = ell
			e.auditAcc = sketch.BatchStats{EllBefore: ell}
		}
	}
	ingests := e.ingests
	e.inflight--
	e.mu.Unlock()

	if grewFrom > 0 {
		e.cfg.Audit.Journal().Record(audit.KindRankGrow, "sketch rank grew",
			audit.A("from", float64(grewFrom)),
			audit.A("to", float64(ell)),
			audit.A("frames", float64(base+n)))
	}
	if flushDue {
		// The certificate is computed outside the engine lock: for one
		// shard it reads the live sketch (identical to the serial
		// monitor), for many it forces a reconcile so the certificate
		// covers every shard's stream.
		e.cfg.Audit.ObserveBatch(flush, e.Certificate())
	}

	e.eo.framesTotal.Add(float64(n))
	e.eo.windowSize.SetInt(window)
	e.eo.engineEll.SetInt(ell)

	if len(e.shards) > 1 {
		// Marginal Σδ this dispatch added across shards: the staleness
		// signal the adaptive cadence controller acts on.
		var deltaSum float64
		for _, r := range results {
			if r.ok {
				deltaSum += r.stats.DeltaAdded
			}
		}
		burn := e.BurnRate()
		e.globalMu.Lock()
		e.rc.note(deltaSum)
		lag := ingests - e.globalAt
		if e.rc.due(lag, burn) {
			e.reconcileLockedIn(root.Context())
			lag = 0
		}
		e.globalMu.Unlock()
		e.eo.mergeLag.SetInt(lag)
	}

	e.budget.observe(time.Since(start), n, base+n)
}

// Ingested returns the number of frames consumed so far.
func (e *Engine) Ingested() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ingests
}

// ShardBusy returns each shard's cumulative wall time spent absorbing
// rows. The busiest shard bounds ingest latency when shards run on
// their own cores, so max/sum over this slice is the sharded path's
// critical-path accounting (the same role parallel.Stats.CriticalPath
// plays for tree merges); benchmarks use it to project scaling beyond
// the cores the host happens to expose.
func (e *Engine) ShardBusy() []time.Duration {
	out := make([]time.Duration, len(e.shards))
	for i, s := range e.shards {
		out[i] = s.Busy()
	}
	return out
}

// Ell returns the global sketch rank. Merging grows the accumulator to
// the larger input's rank and never past it, so the merged global rank
// equals the max over shards — no reconcile needed to answer this.
func (e *Engine) Ell() int {
	ell := 0
	for _, s := range e.shards {
		if l := s.Ell(); l > ell {
			ell = l
		}
	}
	return ell
}

// reconcileLocked refreshes the cached global sketch from shard clones
// via the parallel tree merge; the caller holds globalMu. Shard locks
// are held only long enough to clone, so ingest proceeds during the
// merge itself. Snapshot-path callers reconcile outside any batch, so
// the merge roots its own trace.
func (e *Engine) reconcileLocked() *sketch.FrequentDirections {
	return e.reconcileLockedIn(obs.SpanContext{})
}

// reconcileLockedIn is reconcileLocked with the reconcile and its merge
// legs parented into an existing trace (the ingest batch that made the
// merge lag due).
func (e *Engine) reconcileLockedIn(parent obs.SpanContext) *sketch.FrequentDirections {
	e.mu.Lock()
	at := e.ingests
	settled := e.inflight == 0
	e.mu.Unlock()
	if e.global != nil && e.globalAt == at {
		return e.global
	}
	sp := obs.Default().StartSpanIn(parent, "reconcile",
		obs.L("shards", fmt.Sprint(len(e.shards))))
	defer sp.End()
	// Snapshot every shard through its backend as a remote-merge leg:
	// for local backends the fetch is an in-process clone that cannot
	// fail (bit-identical to the pre-fabric sequential clone+merge,
	// since MergeRemote folds survivors in leg order), for remote ones
	// it is a network fetch with retry/re-fetch/degrade semantics. A
	// degraded merge covers only the surviving shards' streams; the
	// dropped legs are journaled by MergeRemote and retried on the next
	// reconcile.
	legs := make([]parallel.RemoteLeg, len(e.shards))
	for i, s := range e.shards {
		legs[i] = parallel.RemoteLeg{Name: "shard" + fmt.Sprint(i), Fetch: s.Snapshot}
		if tb, ok := s.(TracedBackend); ok {
			legs[i].FetchIn = tb.SnapshotIn
		}
	}
	g, _, rep := parallel.MergeRemote(legs, e.cfg.Merge, e.cfg.ReconcileRetry, sp.Context())
	if rep.Degraded() {
		sp.SetAttr("degraded_legs", fmt.Sprint(rep.Dropped))
	}
	if g == nil {
		return nil
	}
	// Cache coherence: e.ingests is bumped at ring-append time, before
	// the batch's absorbs land in shard backends. A merge that ran while
	// ingests were in flight may not cover every row counted in `at`, so
	// tagging it `at` would let a later reader cache-hit an incomplete
	// global. Serve the merge (it is the freshest view available) but
	// only claim coverage when no ingest was in flight at capture; the
	// sentinel -1 never matches a real count, so the next read re-merges.
	if settled {
		e.global, e.globalAt = g, at
	} else {
		e.global, e.globalAt = g, -1
	}
	e.rc.noteReconcile()
	e.eo.reconciles.Inc()
	e.eo.mergeLag.SetInt(0)
	return g
}

// Certificate returns the error-bound certificate for the whole stream:
// the live sketch's for one shard, a fresh reconcile's for many.
func (e *Engine) Certificate() audit.Certificate {
	if len(e.shards) == 1 {
		fd, err := e.shards[0].Snapshot()
		if err != nil || fd == nil {
			return audit.Certificate{}
		}
		return audit.FromSketch(fd)
	}
	e.globalMu.Lock()
	defer e.globalMu.Unlock()
	g := e.reconcileLocked()
	if g == nil {
		return audit.Certificate{}
	}
	return audit.FromSketch(g)
}

// GlobalSketch returns a clone of the reconciled global sketch (nil
// before the first frame). The clone is the caller's to mutate.
func (e *Engine) GlobalSketch() *sketch.FrequentDirections {
	if len(e.shards) == 1 {
		fd, err := e.shards[0].Snapshot()
		if err != nil {
			return nil
		}
		return fd
	}
	e.globalMu.Lock()
	defer e.globalMu.Unlock()
	g := e.reconcileLocked()
	if g == nil {
		return nil
	}
	return g.Clone()
}

// WindowState copies the sliding window and the current global basis
// (top-k right singular vectors, k clamped to the rank) for the
// snapshot stages, which run outside every engine lock. x is nil before
// the first frame.
func (e *Engine) WindowState(k int) (x *mat.Matrix, tags []int, basis *mat.Matrix, ell int) {
	e.mu.Lock()
	n := len(e.recent)
	if n == 0 {
		e.mu.Unlock()
		return nil, nil, nil, 0
	}
	d := len(e.recent[0].Vec)
	x = mat.New(n, d)
	tags = make([]int, n)
	for i, f := range e.recent {
		copy(x.Row(i), f.Vec)
		tags[i] = f.Tag
	}
	e.mu.Unlock()

	basis, ell = e.Basis(k)
	if basis == nil {
		return nil, nil, nil, 0
	}
	return x, tags, basis, ell
}

// Basis returns the top-k right singular vectors of the global sketch
// (k clamped to the rank) and the rank itself. For one shard this is
// the live sketch's basis — bit-identical to the serial monitor — and
// for many it comes from the reconciled global. Returns (nil, 0) before
// the first frame.
func (e *Engine) Basis(k int) (*mat.Matrix, int) {
	if len(e.shards) == 1 {
		// ARAMS.Basis delegates to FD().Basis in every mode
		// (rank-adaptive included), so the snapshot clone's basis is
		// bit-identical to the live sketch's.
		fd, err := e.shards[0].Snapshot()
		if err != nil || fd == nil {
			return nil, 0
		}
		ell := fd.Ell()
		if k > ell {
			k = ell
		}
		return fd.Basis(k), ell
	}
	e.globalMu.Lock()
	defer e.globalMu.Unlock()
	g := e.reconcileLocked()
	if g == nil {
		return nil, 0
	}
	ell := g.Ell()
	if k > ell {
		k = ell
	}
	return g.Basis(k), ell
}

// Close stops the async pump (draining anything queued) and closes
// every shard backend — for remote backends this tears down their
// connections and aborts in-flight work. The engine must not ingest
// after Close. Returns the first backend close error.
func (e *Engine) Close() error {
	e.Stop()
	return e.closeBackends()
}

func (e *Engine) closeBackends() error {
	var first error
	for _, s := range e.shards {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
