package engine

import (
	"fmt"

	"arams/internal/obs"
)

// Per-engine observability handles. A single-stream process registers
// the same unlabeled series it always did; a tenant-scoped engine
// (Config.Tenant != "") registers the same names with a tenant="<id>"
// label so N engines in one process expose N distinguishable series.
// The registry dedupes by (name, sorted labels), so the tenant == ""
// path yields *exactly* the package-lifetime metric objects every other
// unlabeled lookup gets — metric names on the default path are
// byte-identical to the pre-tenant engine, no label explosion.
type engineObs struct {
	tenant string // "" on the default path

	ingestLatency *obs.Histogram
	framesTotal   *obs.Counter
	windowSize    *obs.Gauge
	engineEll     *obs.Gauge
	shardCount    *obs.Gauge
	queueDepth    *obs.Gauge
	mergeLag      *obs.Gauge
	reconciles    *obs.Counter
	deltaSince    *obs.Gauge
	budgetBurn    *obs.Gauge
	deadlineMiss  *obs.Counter
	budgetFrame   *obs.Gauge
}

func newEngineObs(tenant string) *engineObs {
	r := obs.Default()
	var ls []obs.Label
	if tenant != "" {
		ls = []obs.Label{obs.L("tenant", tenant)}
	}
	return &engineObs{
		tenant:        tenant,
		ingestLatency: r.Histogram("arams_engine_ingest_batch_seconds", ls...),
		framesTotal:   r.Counter("arams_engine_frames_total", ls...),
		windowSize:    r.Gauge("arams_engine_window_size", ls...),
		engineEll:     r.Gauge("arams_engine_sketch_ell", ls...),
		shardCount:    r.Gauge("arams_engine_shards", ls...),
		queueDepth:    r.Gauge("arams_engine_queue_depth", ls...),
		mergeLag:      r.Gauge("arams_engine_merge_lag_frames", ls...),
		reconciles:    r.Counter("arams_engine_reconciles_total", ls...),
		deltaSince:    r.Gauge("arams_engine_delta_since_reconcile", ls...),
		budgetBurn:    r.Gauge("arams_engine_budget_burn_rate", ls...),
		deadlineMiss:  r.Counter("arams_engine_deadline_miss_total", ls...),
		budgetFrame:   r.Gauge("arams_engine_frame_budget_seconds", ls...),
	}
}

// shardGauge and shardCPU build the per-shard series, tenant-labeled
// when the engine is.
func (eo *engineObs) shardGauge(i int) *obs.Gauge {
	return obs.Default().Gauge("arams_engine_shard_frames", eo.shardLabels(i)...)
}

func (eo *engineObs) shardCPUCounter(i int) *obs.Counter {
	return obs.Default().Counter("arams_engine_shard_cpu_seconds_total", eo.shardLabels(i)...)
}

func (eo *engineObs) shardLabels(i int) []obs.Label {
	if eo.tenant == "" {
		return []obs.Label{obs.L("shard", fmt.Sprint(i))}
	}
	return []obs.Label{obs.L("shard", fmt.Sprint(i)), obs.L("tenant", eo.tenant)}
}
