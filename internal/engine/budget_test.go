package engine_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"arams/internal/audit"
	"arams/internal/engine"
	"arams/internal/obs"
	"arams/internal/sketch"
)

// A 1 ns per-frame budget makes every dispatch a deadline miss, so the
// tracker must count misses, push the burn EWMA over the threshold,
// journal a deadline_miss event, and trip the flight recorder.
func TestBudgetDeadlineMissAndFlightTrigger(t *testing.T) {
	dir := t.TempDir()
	fr, err := obs.Default().ArmFlightRecorder(obs.FlightConfig{Dir: dir, Cooldown: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()

	journal := audit.NewJournal(128)
	auditor := audit.New(audit.Config{Journal: journal})
	e := engine.New(engine.Config{
		Shards:        2,
		FrameBudget:   time.Nanosecond,
		BurnThreshold: 1.5,
		Sketch:        sketch.Config{Ell0: 4, Beta: 1, Seed: 3},
		Window:        32,
		Audit:         auditor,
		AuditEvery:    1 << 30, // keep the auditor quiet; this test is about the budget
	})

	vecs := testVecs(16, 12, 21)
	tags := make([]int, len(vecs))
	for i := range tags {
		tags[i] = i
	}
	e.IngestVecs(cloneVecs(vecs), tags)

	if e.DeadlineMisses() == 0 {
		t.Fatal("1 ns budget produced no deadline misses")
	}
	if e.BurnRate() <= 1.5 {
		t.Fatalf("burn EWMA = %v, want > threshold 1.5", e.BurnRate())
	}

	var miss *audit.Event
	for _, ev := range journal.Events() {
		if ev.Kind == audit.KindDeadlineMiss {
			ev := ev
			miss = &ev
		}
	}
	if miss == nil {
		t.Fatal("no deadline_miss event in the journal")
	}
	if miss.Get("burn", 0) <= 1 {
		t.Fatalf("deadline_miss burn attr = %v, want > 1", miss.Get("burn", 0))
	}
	if miss.Get("frames", 0) != float64(len(vecs)) {
		t.Fatalf("deadline_miss frames attr = %v, want %d", miss.Get("frames", 0), len(vecs))
	}

	// The over-threshold EWMA must have tripped the flight recorder.
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range files {
		if strings.Contains(f.Name(), "deadline_burn") {
			found = true
			if fi, err := os.Stat(filepath.Join(dir, f.Name())); err != nil || fi.Size() == 0 {
				t.Fatalf("deadline_burn dump %s is empty or unreadable: %v", f.Name(), err)
			}
		}
	}
	if !found {
		t.Fatalf("no deadline_burn flight dump in %s (files: %v)", dir, files)
	}
}

// A negative budget disables tracking entirely; a generous budget
// observes without missing.
func TestBudgetDisabledAndWithinBudget(t *testing.T) {
	mk := func(budget time.Duration) *engine.Engine {
		return engine.New(engine.Config{
			FrameBudget: budget,
			Sketch:      sketch.Config{Ell0: 4, Beta: 1, Seed: 3},
			Window:      16,
		})
	}
	vecs := testVecs(8, 12, 22)
	tags := make([]int, len(vecs))
	for i := range tags {
		tags[i] = i
	}

	off := mk(-1)
	off.IngestVecs(cloneVecs(vecs), tags)
	if off.DeadlineMisses() != 0 || off.BurnRate() != 0 {
		t.Fatalf("disabled budget tracked: misses=%d burn=%v", off.DeadlineMisses(), off.BurnRate())
	}

	roomy := mk(time.Minute)
	roomy.IngestVecs(cloneVecs(vecs), tags)
	if roomy.DeadlineMisses() != 0 {
		t.Fatalf("minute-per-frame budget missed %d deadlines", roomy.DeadlineMisses())
	}
	if burn := roomy.BurnRate(); burn <= 0 || burn >= 1 {
		t.Fatalf("burn rate = %v, want in (0, 1)", burn)
	}
}
