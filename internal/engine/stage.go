package engine

import (
	"time"

	"arams/internal/obs"
)

// Stage is one named unit of the analysis dataflow (preprocess, sketch,
// project, embed, cluster, anomaly...). Stages close over their inputs
// and outputs; the engine contributes uniform execution, span tracing,
// and per-stage wall-time accounting, so every pipeline entry point
// reports timings the same way.
type Stage struct {
	Name string
	Run  func()
}

// RunStages executes the stages in order, recording one obs span per
// stage, and returns each stage's wall time. A nil Run is skipped (its
// time is absent from the map), which lets callers assemble stage
// graphs conditionally without special-casing execution.
func RunStages(stages []Stage) map[string]time.Duration {
	times := make(map[string]time.Duration, len(stages))
	for _, st := range stages {
		if st.Run == nil {
			continue
		}
		sp := obs.StartSpan(st.Name)
		st.Run()
		times[st.Name] = sp.End()
	}
	return times
}
