package engine

import (
	"time"

	"arams/internal/obs"
)

// Stage is one named unit of the analysis dataflow (preprocess, sketch,
// project, embed, cluster, anomaly...). Stages close over their inputs
// and outputs; the engine contributes uniform execution, span tracing,
// and per-stage wall/CPU-time accounting, so every pipeline entry point
// reports timings the same way.
type Stage struct {
	Name string
	Run  func()
}

// RunStages executes the stages in order, recording one untraced obs
// span per stage, and returns each stage's wall time.
func RunStages(stages []Stage) map[string]time.Duration {
	return RunStagesIn(obs.SpanContext{}, stages)
}

// RunStagesIn is RunStages with the stage spans parented into an
// existing trace (zero context keeps them untraced). Each stage's span
// carries the goroutine's measured CPU time next to its wall time, so
// /metrics exposes arams_stage_cpu_seconds alongside
// arams_stage_duration_seconds per stage. A nil Run is skipped (its
// time is absent from the map), which lets callers assemble stage
// graphs conditionally without special-casing execution.
func RunStagesIn(parent obs.SpanContext, stages []Stage) map[string]time.Duration {
	times := make(map[string]time.Duration, len(stages))
	for _, st := range stages {
		if st.Run == nil {
			continue
		}
		var sp obs.Span
		if parent.Trace != 0 {
			sp = obs.StartSpanIn(parent, st.Name)
		} else {
			sp = obs.StartSpan(st.Name)
		}
		ct := obs.StartCPUTimer()
		st.Run()
		if cpu, ok := ct.Stop(); ok {
			sp.SetCPU(cpu)
		}
		times[st.Name] = sp.End()
	}
	return times
}
