package engine

import (
	"time"

	"arams/internal/imgproc"
)

// Async ingest: Enqueue hands frames to a single pump goroutine through
// a bounded channel. A full channel blocks the producer — backpressure,
// never drops — and the pump coalesces whatever is queued (up to
// BatchSize) into one IngestBatch call, so a bursty producer pays the
// per-batch lock cost once per burst instead of once per frame. One
// pump keeps the stream FIFO, which round-robin routing determinism
// depends on.

// qitem is one queued frame, or a drain marker when ack is non-nil.
// at is the enqueue time; the pump reports the batch's oldest one as a
// queue_wait span inside the batch's trace.
type qitem struct {
	im  *imgproc.Image
	tag int
	at  time.Time
	ack chan struct{}
}

// Start launches the pump goroutine. It is idempotent; Enqueue and
// Drain call it implicitly.
func (e *Engine) Start() {
	e.queueMu.Lock()
	defer e.queueMu.Unlock()
	e.startLocked()
}

func (e *Engine) startLocked() {
	if e.queue != nil {
		return
	}
	e.queue = make(chan qitem, e.cfg.IngestBuffer)
	e.pumpDone = make(chan struct{})
	go e.pump(e.queue, e.pumpDone)
}

// Enqueue submits one frame to the async ingest queue, blocking while
// the queue is full. Frames are ingested in submission order. Callers
// that need the frame's effect visible (e.g. before a checkpoint) call
// Drain first.
func (e *Engine) Enqueue(im *imgproc.Image, tag int) {
	e.queueMu.Lock()
	e.startLocked()
	q := e.queue
	e.queueMu.Unlock()
	// The pump owns the queue-depth gauge: sampling it here after the
	// send raced the pump's own updates and could leave a stale nonzero
	// reading as the last write.
	q <- qitem{im: im, tag: tag, at: time.Now()}
}

// TryEnqueue is Enqueue without the blocking: it submits the frame if
// the queue has room and reports false otherwise, leaving the frame
// with the caller. The multi-tenant fair-share pump uses it as the
// handoff into a tenant's engine — a full engine queue must push back
// into the tenant's own ingress queue, never stall the shared
// dispatcher on one slow tenant.
func (e *Engine) TryEnqueue(im *imgproc.Image, tag int) bool {
	e.queueMu.Lock()
	e.startLocked()
	q := e.queue
	e.queueMu.Unlock()
	select {
	case q <- qitem{im: im, tag: tag, at: time.Now()}:
		return true
	default:
		return false
	}
}

// QueueDepth reports how many frames currently sit in the async ingest
// queue (0 when the pump was never started).
func (e *Engine) QueueDepth() int {
	e.queueMu.Lock()
	q := e.queue
	e.queueMu.Unlock()
	if q == nil {
		return 0
	}
	return len(q)
}

// Drain blocks until every frame enqueued before the call has been
// ingested. It is a no-op when the pump was never started.
func (e *Engine) Drain() {
	e.queueMu.Lock()
	q := e.queue
	e.queueMu.Unlock()
	if q == nil {
		return
	}
	ack := make(chan struct{})
	q <- qitem{ack: ack}
	<-ack
}

// Stop drains the queue, ingests everything, and terminates the pump.
// Enqueue must not be called after Stop.
func (e *Engine) Stop() {
	e.queueMu.Lock()
	q, done := e.queue, e.pumpDone
	e.queue, e.pumpDone = nil, nil
	e.queueMu.Unlock()
	if q == nil {
		return
	}
	close(q)
	<-done
}

// pump is the single consumer: it blocks for one frame, opportunistically
// drains more without blocking (up to BatchSize), ingests the batch, and
// acknowledges any drain markers seen — after the frames queued before
// them, preserving Drain's "everything before me is ingested" contract.
func (e *Engine) pump(q chan qitem, done chan struct{}) {
	defer close(done)
	// The pump is the gauge's only writer; on exit the queue is drained
	// by contract, so the gauge must read 0 (it used to stick at the
	// last pre-exit sample). The zeroing defer runs before close(done),
	// so a Stop caller observes the reset.
	defer e.eo.queueDepth.SetInt(0)
	ims := make([]*imgproc.Image, 0, e.cfg.BatchSize)
	tags := make([]int, 0, e.cfg.BatchSize)
	var oldest time.Time
	var acks []chan struct{}
	flush := func() {
		if len(ims) > 0 {
			e.ingestBatchAt(ims, tags, oldest)
			ims, tags = ims[:0], tags[:0]
			oldest = time.Time{}
		}
		for _, a := range acks {
			close(a)
		}
		acks = acks[:0]
	}
	for {
		it, ok := <-q
		if !ok {
			flush()
			return
		}
		closed := false
		for {
			if it.ack != nil {
				acks = append(acks, it.ack)
				break // flush now so the ack covers everything before it
			}
			ims = append(ims, it.im)
			tags = append(tags, it.tag)
			if oldest.IsZero() || it.at.Before(oldest) {
				oldest = it.at
			}
			if len(ims) >= e.cfg.BatchSize {
				break
			}
			select {
			case next, ok2 := <-q:
				if !ok2 {
					closed = true
				} else {
					it = next
					continue
				}
			default:
			}
			break
		}
		// Sample depth after the flush: it reflects what accumulated
		// while the batch was ingesting, not the batch itself.
		flush()
		e.eo.queueDepth.SetInt(len(q))
		if closed {
			return
		}
	}
}
