package engine

import (
	"fmt"
	"sync"
	"time"

	"arams/internal/mat"
	"arams/internal/obs"
	"arams/internal/sketch"
)

// Backend is one shard's sketching state behind the engine's routing:
// the engine decides which rows a shard gets (round-robin or
// hash-by-tag) and the backend decides where the sketching happens —
// in-process (localShard, the default) or on the far side of a TCP
// connection (internal/fabric's remote shard). The contract is the
// serial monitor's absorb semantics: rows are fed one at a time in
// stream order, so a remote backend given the same per-shard
// configuration and row sequence produces a sketch bit-identical to a
// local one.
//
// Local backends are infallible; remote backends surface transport
// faults as errors after exhausting their own recovery (reconnect,
// state restore, row replay, local fallback). Backends must be safe
// for concurrent calls: the engine serializes nothing across its
// snapshot/state/ingest paths beyond its own locks.
type Backend interface {
	// Absorb feeds the selected rows (all of vecs when idx is nil) in
	// order and returns the fold of the per-row batch stats, with
	// EllBefore/EllAfter bracketing the whole dispatch.
	Absorb(vecs [][]float64, idx []int) (sketch.BatchStats, error)
	// Snapshot returns a merge-ready copy of the shard sketch and
	// anchors the live sketch's delta mark (MarkDelta), so sketch-level
	// staleness introspection agrees with the reconcile controller.
	// (nil, nil) means no rows have been absorbed yet.
	Snapshot() (*sketch.FrequentDirections, error)
	// State returns the checkpointable sketcher state, or (nil, nil)
	// before the first row.
	State() (*sketch.ARAMSState, error)
	// Restore replaces the shard's sketcher with the given state
	// (checkpoint resume).
	Restore(st *sketch.ARAMSState) error
	// Ell returns the shard sketch's current rank (0 before the first
	// row). Remote backends may answer from their last acknowledged
	// rank rather than a fresh round trip.
	Ell() int
	// Busy returns the cumulative wall time spent absorbing rows — the
	// critical-path accounting ShardBusy exposes.
	Busy() time.Duration
	// Close releases the backend's resources and aborts in-flight
	// work; subsequent calls fail fast.
	Close() error
}

// TracedBackend is the optional trace-propagating extension of
// Backend: a backend that can carry the caller's span context across
// its transport (internal/fabric's Remote) implements it, and the
// engine's traced ingest/reconcile paths prefer these methods so the
// coordinator's trace tree extends through the RPC into the worker
// process. Local backends don't implement it — their work is already
// timed by the engine's own shard_sketch spans.
type TracedBackend interface {
	// AbsorbIn is Absorb with the dispatching span's context.
	AbsorbIn(parent obs.SpanContext, vecs [][]float64, idx []int) (sketch.BatchStats, error)
	// SnapshotIn is Snapshot with the fetching span's context.
	SnapshotIn(parent obs.SpanContext) (*sketch.FrequentDirections, error)
}

// localShard is the in-process Backend: one ARAMS sketcher under its
// own lock, so shards absorb rows concurrently and snapshots
// interleave with ingest.
type localShard struct {
	cfg sketch.Config // per-shard seed already derived

	mu    sync.Mutex
	arams *sketch.ARAMS
	busy  time.Duration // cumulative wall time spent inside Absorb

	// rowView is the reusable 1×d header Absorb wraps each row in, so
	// the per-row ProcessBatch call allocates nothing. Guarded by mu
	// like the sketcher it feeds.
	rowView mat.Matrix
}

// NewLocalBackend creates an in-process shard backend. scfg must
// already be shard-derived (ShardSketchConfig); internal/fabric uses
// this as the degraded mode when a remote worker cannot be dialed.
func NewLocalBackend(scfg sketch.Config) Backend {
	return &localShard{cfg: scfg}
}

// Absorb feeds the selected rows into the shard's sketcher one row at
// a time — per-row ProcessBatch calls keep the priority sampler's RNG
// consumption identical to the serial per-frame monitor, which the
// bit-exact restore tests rely on.
func (s *localShard) Absorb(vecs [][]float64, idx []int) (sketch.BatchStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	defer func() { s.busy += time.Since(start) }()
	nrows := len(idx)
	if idx == nil {
		nrows = len(vecs)
	}
	if nrows == 0 {
		return sketch.BatchStats{}, nil
	}
	first := vecs[0]
	if idx != nil {
		first = vecs[idx[0]]
	}
	if s.arams == nil {
		s.arams = sketch.NewARAMS(s.cfg, len(first), 0)
	}
	var agg sketch.BatchStats
	agg.EllBefore = s.arams.Ell()
	row := func(i int) []float64 {
		if idx == nil {
			return vecs[i]
		}
		return vecs[idx[i]]
	}
	rv := &s.rowView
	for i := 0; i < nrows; i++ {
		v := row(i)
		// Reuse one 1×d header across rows instead of allocating a
		// matrix per frame; ProcessBatch copies rows into the sketch
		// and retains neither the header nor the data.
		rv.RowsN, rv.ColsN, rv.Stride, rv.Data = 1, len(v), len(v), v
		bs := s.arams.ProcessBatch(rv)
		agg.Rows += bs.Rows
		agg.Kept += bs.Kept
		agg.TotalMass += bs.TotalMass
		agg.KeptMass += bs.KeptMass
		agg.DeltaAdded += bs.DeltaAdded
	}
	rv.Data = nil
	agg.EllAfter = s.arams.Ell()
	return agg, nil
}

// Snapshot clones the shard sketch for merging. The clone captures the
// shard's Σδ as of now; marking the live sketch anchors DeltaSinceMark
// to the same point.
func (s *localShard) Snapshot() (*sketch.FrequentDirections, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.arams == nil {
		return nil, nil
	}
	s.arams.FD().MarkDelta()
	return s.arams.FD().Clone(), nil
}

// State captures the sketcher's checkpoint state.
func (s *localShard) State() (*sketch.ARAMSState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.arams == nil {
		return nil, nil
	}
	st := s.arams.State()
	return &st, nil
}

// Restore replaces the sketcher with a checkpointed state.
func (s *localShard) Restore(st *sketch.ARAMSState) error {
	if st == nil {
		return fmt.Errorf("engine: nil shard state")
	}
	a, err := sketch.NewARAMSFromState(*st)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.arams = a
	s.mu.Unlock()
	return nil
}

func (s *localShard) Ell() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.arams == nil {
		return 0
	}
	return s.arams.Ell()
}

func (s *localShard) Busy() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.busy
}

func (s *localShard) Close() error { return nil }
