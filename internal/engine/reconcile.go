package engine

import "arams/internal/obs"

// Adaptive reconcile cadence. Reconciling — cloning every shard and
// tree-merging the clones into the cached global sketch — is the one
// wholesale cost the sharded engine pays that the serial monitor never
// did, and the fixed ReconcileEvery countdown pays it on schedule
// whether or not the cache is stale. The controller here decides from
// what the stream is actually doing:
//
//   - marginal Σδ growth since the last reconcile (fed from the
//     per-dispatch BatchStats.DeltaAdded the shards already report, and
//     anchored sketch-side by FrequentDirections.MarkDelta at each
//     reconcile). Σδ is the certified bound on ‖AᵀA − BᵀB‖₂, so zero
//     growth means the shards' spectra have not moved and the cached
//     global basis is as good as a fresh merge — a quiet stream whose
//     rows keep landing inside the retained subspace reconciles only at
//     the hard lag cap. Fast growth means drift: the cache is going
//     stale and the controller merges eagerly.
//   - merge lag (frames ingested since the cache was built) supplies
//     hysteresis and the hard bound: below minLag the controller never
//     merges (a reconcile per batch would serialize the shards again),
//     at maxLag it always does, so snapshot readers have a worst-case
//     staleness guarantee even on streams with pathological Σδ.
//   - the frame-budget burn EWMA scales the Σδ threshold: when the
//     engine is already missing its 120 Hz budget, merges are the first
//     load to shed, so an over-budget engine defers them (up to maxLag)
//     and catches up on throughput first.
//
// Audit-tick and snapshot-path reconciles (Certificate, Basis,
// GlobalSketch) bypass the controller entirely — certificates always
// cover every shard — and reset its state like any other reconcile.
//
// The adaptive controller is the default; fixed-countdown mode
// (ReconcileFixed == true) reproduces the original schedule exactly:
// reconcile when lag ≥ ReconcileEvery. Since reconciles only clone
// shards and never mutate them, the post-Drain global sketch is
// bit-identical across cadences either way; the property test in
// engine_test.go holds the two modes against each other.

// reconcileCtl holds the cadence state. Guarded by Engine.globalMu,
// like the cached global sketch whose staleness it tracks.
type reconcileCtl struct {
	adaptive  bool
	every     int     // fixed cadence; hysteresis scale in adaptive mode
	minLag    int     // adaptive: never reconcile below this lag
	maxLag    int     // adaptive: always reconcile at this lag
	deltaFrac float64 // adaptive: relative Σδ growth that triggers a merge

	deltaSince float64 // Σδ added by shard absorbs since the last reconcile
	deltaTotal float64 // lifetime Σδ the shards reported (the scale reference)
	reconciles int     // merges performed, all causes

	gauge *obs.Gauge // arams_engine_delta_since_reconcile (per-engine)
}

func newReconcileCtl(cfg Config, eo *engineObs) reconcileCtl {
	return reconcileCtl{
		adaptive:  !cfg.ReconcileFixed,
		every:     cfg.ReconcileEvery,
		minLag:    max(1, cfg.ReconcileEvery/4),
		maxLag:    cfg.ReconcileMaxLag,
		deltaFrac: cfg.ReconcileDeltaFrac,
		gauge:     eo.deltaSince,
	}
}

// note folds one dispatch's marginal shrinkage in.
func (rc *reconcileCtl) note(deltaAdded float64) {
	rc.deltaSince += deltaAdded
	rc.deltaTotal += deltaAdded
	rc.gauge.Set(rc.deltaSince)
}

// due reports whether the cached global sketch should be rebuilt given
// the current merge lag (frames) and frame-budget burn EWMA.
func (rc *reconcileCtl) due(lag int, burn float64) bool {
	if lag <= 0 {
		return false
	}
	if !rc.adaptive {
		return lag >= rc.every
	}
	if lag >= rc.maxLag {
		return true
	}
	if lag < rc.minLag {
		return false
	}
	frac := rc.deltaFrac
	if burn > 1 {
		// Over budget: raise the bar so throughput recovers before the
		// engine spends cycles on freshness.
		frac *= burn
	}
	// Strict inequality: a stream adding zero shrinkage (rows inside the
	// retained subspace) stays lazy until maxLag.
	return rc.deltaSince > frac*rc.deltaTotal
}

// noteReconcile resets the staleness accumulator after a merge.
func (rc *reconcileCtl) noteReconcile() {
	rc.deltaSince = 0
	rc.reconciles++
	rc.gauge.Set(0)
}

// Reconciles returns how many global-sketch rebuilds have run (periodic
// and forced). Benchmarks compare this across cadence modes.
func (e *Engine) Reconciles() int {
	e.globalMu.Lock()
	defer e.globalMu.Unlock()
	return e.rc.reconciles
}

// DeltaSinceReconcile returns the marginal Σδ the shards have
// accumulated since the last reconcile — the staleness signal the
// adaptive controller acts on.
func (e *Engine) DeltaSinceReconcile() float64 {
	e.globalMu.Lock()
	defer e.globalMu.Unlock()
	return e.rc.deltaSince
}
