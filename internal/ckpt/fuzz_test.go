package ckpt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"arams/internal/pipeline"
	"arams/internal/rng"
	"arams/internal/sketch"
)

// pool doles out fuzz bytes as bounded primitives, so arbitrary input
// deterministically shapes a state snapshot.
type pool struct {
	b   []byte
	off int
}

func (p *pool) byte() byte {
	if p.off >= len(p.b) {
		return 0
	}
	v := p.b[p.off]
	p.off++
	return v
}

// intn returns a value in [0, n) driven by one pool byte.
func (p *pool) intn(n int) int { return int(p.byte()) % n }

func (p *pool) f64() float64 {
	var raw [8]byte
	for i := range raw {
		raw[i] = p.byte()
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(raw[:]))
}

func (p *pool) u64() uint64 {
	var raw [8]byte
	for i := range raw {
		raw[i] = p.byte()
	}
	return binary.LittleEndian.Uint64(raw[:])
}

func (p *pool) floats(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = p.f64()
	}
	return out
}

func (p *pool) rngState() rng.State {
	return rng.State{
		Hi: p.u64(), Lo: p.u64(),
		IncHi: p.u64(), IncLo: p.u64() | 1,
		HaveGauss: p.byte()&1 == 1, Gauss: p.f64(),
	}
}

func (p *pool) fdState() sketch.FDState {
	ell := 1 + p.intn(6)
	d := 1 + p.intn(8)
	nz := p.intn(2*ell + 1)
	return sketch.FDState{
		Ell: ell, D: d,
		Backend:    sketch.SVDBackend(p.intn(2)),
		NextZero:   nz,
		Rotations:  p.intn(100),
		Seen:       p.intn(10000),
		TotalDelta: p.f64(),
		Buffer:     p.floats(nz * d),
	}
}

func (p *pool) rankAdaptiveState() sketch.RankAdaptiveState {
	fd := p.fdState()
	nRecent := p.intn(fd.Ell + 1)
	recent := make([][]float64, nRecent)
	for i := range recent {
		recent[i] = p.floats(fd.D)
	}
	return sketch.RankAdaptiveState{
		FD: fd,
		Nu: 1 + p.intn(8), Eps: p.f64(),
		Estimator:   sketch.EstimatorKind(p.intn(3)),
		RNG:         p.rngState(),
		Recent:      recent,
		IncreaseEll: p.byte()&1 == 1,
		RowsLeft:    p.intn(1000) - 1,
		Grows:       p.intn(20),
	}
}

func (p *pool) aramsState() sketch.ARAMSState {
	s := sketch.ARAMSState{
		Cfg: sketch.Config{
			Ell0: 1 + p.intn(6), Nu: 1 + p.intn(8),
			Eps: p.f64(), Beta: p.f64(),
			Estimator: sketch.EstimatorKind(p.intn(3)),
			Seed:      p.u64(),
		},
		D:   1 + p.intn(8),
		RNG: p.rngState(),
	}
	if p.byte()&1 == 1 {
		s.Cfg.RankAdaptive = true
		ra := p.rankAdaptiveState()
		s.RankAdaptive = &ra
	} else {
		fd := p.fdState()
		s.FD = &fd
	}
	return s
}

// stateFromBytes deterministically builds one state snapshot of an
// arbitrary kind from raw fuzz input.
func stateFromBytes(data []byte) any {
	p := &pool{b: data}
	switch p.intn(6) {
	case 0:
		s := p.fdState()
		return &s
	case 1:
		s := p.rankAdaptiveState()
		return &s
	case 2:
		n := p.intn(8)
		entries := make([]sketch.PriorityEntry, n)
		for i := range entries {
			entries[i] = sketch.PriorityEntry{
				Priority: p.f64(), Weight: p.f64(), Index: p.intn(1000),
			}
			if p.byte()&1 == 1 {
				entries[i].Row = p.floats(p.intn(5))
			}
		}
		return &sketch.PriorityState{
			M: 1 + p.intn(8), Seen: p.intn(10000),
			RNG: p.rngState(), Entries: entries,
		}
	case 3:
		s := p.aramsState()
		return &s
	case 4:
		nFrames := p.intn(6)
		frames := make([]pipeline.FrameState, nFrames)
		for i := range frames {
			frames[i] = pipeline.FrameState{Tag: p.intn(1000), Vec: p.floats(p.intn(6))}
		}
		s := &pipeline.MonitorState{
			Window: 1 + p.intn(64), Ingests: p.intn(10000), Frames: frames,
		}
		// Shard layouts: empty, single, or several slots with holes —
		// nil slots are legal (shards that have not seen a frame yet).
		ns := p.intn(4)
		if ns > 0 {
			s.Shards = make([]*sketch.ARAMSState, ns)
			for i := range s.Shards {
				if p.byte()&1 == 1 {
					ar := p.aramsState()
					s.Shards[i] = &ar
				}
			}
		}
		return s
	default:
		s := p.fdState()
		return sketch.FDState{ // non-pointer variant exercises both Marshal paths
			Ell: s.Ell, D: s.D, Backend: s.Backend, NextZero: s.NextZero,
			Rotations: s.Rotations, Seen: s.Seen, TotalDelta: s.TotalDelta,
			Buffer: s.Buffer,
		}
	}
}

// FuzzCheckpointRoundTrip drives the canonical-encoding invariant:
// for any state the codec can express, encode → decode → re-encode is
// byte-identical.
func FuzzCheckpointRoundTrip(f *testing.F) {
	seedFromTestdata(f, "FuzzCheckpointRoundTrip")
	f.Add([]byte{})
	for k := byte(0); k < 6; k++ {
		f.Add(append([]byte{k}, bytes.Repeat([]byte{0x5a, k, 0xc3}, 64)...))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		state := stateFromBytes(data)
		b1, err := Marshal(state)
		if err != nil {
			t.Fatalf("marshal %T: %v", state, err)
		}
		back, err := Unmarshal(b1)
		if err != nil {
			t.Fatalf("unmarshal rejected own encoding of %T: %v", state, err)
		}
		b2, err := Marshal(back)
		if err != nil {
			t.Fatalf("re-marshal %T: %v", back, err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%T: re-encode differs (%d vs %d bytes)", state, len(b1), len(b2))
		}
	})
}

// FuzzDecodeCorrupt drives the no-panic invariant: arbitrary bytes —
// including bit-flipped real frames from the seed corpus — must decode
// to either a usable state or a clean error, never a panic or an
// unbounded allocation.
func FuzzDecodeCorrupt(f *testing.F) {
	seedFromTestdata(f, "FuzzDecodeCorrupt")
	f.Add([]byte{})
	f.Add([]byte("ACKP"))
	if valid, err := Marshal(stateFromBytes([]byte{3, 1, 2, 3, 4})); err == nil {
		f.Add(valid)
		flipped := append([]byte(nil), valid...)
		flipped[len(flipped)/2] ^= 0x10
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		state, err := Unmarshal(data)
		if err != nil {
			return // rejected cleanly — that's the contract
		}
		// Anything accepted must re-encode: decode may not fabricate a
		// state the encoder cannot express.
		if _, err := Marshal(state); err != nil {
			t.Fatalf("decoded state %T does not re-encode: %v", state, err)
		}
	})
}

// seedFromTestdata registers the checked-in corpus explicitly. `go
// test` already reads testdata/fuzz/<name> on its own; doing it here
// too makes a missing corpus a loud failure instead of silent
// coverage loss.
func seedFromTestdata(f *testing.F, name string) {
	f.Helper()
	dir := filepath.Join("testdata", "seed", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("seed corpus missing: %v", err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatalf("reading seed %s: %v", e.Name(), err)
		}
		f.Add(b)
	}
}

// TestGenerateFuzzCorpus regenerates the checked-in seed corpora when
// CKPT_GEN_CORPUS=1 is set; otherwise it only verifies they exist. The
// seeds are raw entropy pools (round-trip target) and real encoded
// frames plus mutations (corrupt target).
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("CKPT_GEN_CORPUS") != "1" {
		for _, name := range []string{"FuzzCheckpointRoundTrip", "FuzzDecodeCorrupt"} {
			entries, err := os.ReadDir(filepath.Join("testdata", "seed", name))
			if err != nil || len(entries) == 0 {
				t.Fatalf("seed corpus for %s missing; regenerate with CKPT_GEN_CORPUS=1", name)
			}
		}
		return
	}
	write := func(name, file string, data []byte) {
		dir := filepath.Join("testdata", "seed", name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, file), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	g := rng.New(2024)
	for k := 0; k < 6; k++ {
		entropy := make([]byte, 512)
		entropy[0] = byte(k)
		for i := 1; i < len(entropy); i++ {
			entropy[i] = byte(g.Uint64())
		}
		write("FuzzCheckpointRoundTrip", fmt.Sprintf("kind%d", k), entropy)
		frame, err := Marshal(stateFromBytes(entropy))
		if err != nil {
			t.Fatal(err)
		}
		write("FuzzDecodeCorrupt", fmt.Sprintf("valid%d", k), frame)
		mutated := append([]byte(nil), frame...)
		mutated[int(g.Uint64n(uint64(len(mutated))))] ^= byte(1 << g.Uint64n(8))
		write("FuzzDecodeCorrupt", fmt.Sprintf("flipped%d", k), mutated)
	}
	write("FuzzDecodeCorrupt", "truncated", []byte("ACKP\x01\x00\x00\x00"))
}
