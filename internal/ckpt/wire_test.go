package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

// fixCRC recomputes the trailing CRC32 of an encoded frame after a
// test mutates bytes it wants the decoder to accept as intact.
func fixCRC(b []byte) {
	binary.LittleEndian.PutUint32(b[len(b)-wireTrailerLen:], crc32.ChecksumIEEE(b[:len(b)-wireTrailerLen]))
}

// TestWireGoldenV1 pins the version-1 wire format at the byte level:
// field offsets, endianness, and the CRC value. If this test breaks,
// the wire format changed and WireVersion must be bumped — deployed
// workers and coordinators negotiate by version, not by luck.
func TestWireGoldenV1(t *testing.T) {
	got := EncodeWireFrame(WireFrame{Type: 3, Seq: 0x0102030405060708, Payload: []byte("abc")})
	const want = "41464142" + // magic "AFAB"
		"01000000" + // version 1
		"03000000" + // type 3
		"0807060504030201" + // seq, little-endian
		"0300000000000000" + // payload length 3
		"616263" + // "abc"
		"9d823ff1" // crc32 IEEE over everything before
	if g := hex.EncodeToString(got); g != want {
		t.Fatalf("wire frame bytes changed:\n got  %s\n want %s", g, want)
	}

	// Empty payload, zero seq: the minimal frame.
	got = EncodeWireFrame(WireFrame{Type: 1})
	const wantEmpty = "41464142" + "01000000" + "01000000" +
		"0000000000000000" + "0000000000000000" + "17198e1e"
	if g := hex.EncodeToString(got); g != wantEmpty {
		t.Fatalf("empty wire frame bytes changed:\n got  %s\n want %s", g, wantEmpty)
	}
}

// TestWireGoldenV2 pins the version-2 layout: the 16-byte trace
// context between the length field and the payload, and the version
// gate — a frame only encodes as v2 when it carries a trace context.
func TestWireGoldenV2(t *testing.T) {
	got := EncodeWireFrame(WireFrame{
		Type: 3, Seq: 0x0102030405060708,
		Trace: 0x1122334455667788, Span: 0x99AABBCCDDEEFF00,
		Payload: []byte("abc"),
	})
	const want = "41464142" + // magic "AFAB"
		"02000000" + // version 2
		"03000000" + // type 3
		"0807060504030201" + // seq, little-endian
		"0300000000000000" + // payload length 3
		"8877665544332211" + // trace ID, little-endian
		"00ffeeddccbbaa99" + // parent span ID, little-endian
		"616263" + // "abc"
		"d98273ff" // crc32 IEEE over everything before
	if g := hex.EncodeToString(got); g != want {
		t.Fatalf("v2 wire frame bytes changed:\n got  %s\n want %s", g, want)
	}

	// A span-less trace context (trace set, span zero) is still traced
	// and still v2: the canonical rule is Trace|Span != 0.
	got = EncodeWireFrame(WireFrame{Type: 1, Trace: 1})
	const wantMin = "41464142" + "02000000" + "01000000" +
		"0000000000000000" + "0000000000000000" +
		"0100000000000000" + "0000000000000000" + "8f34a847"
	if g := hex.EncodeToString(got); g != wantMin {
		t.Fatalf("minimal v2 frame bytes changed:\n got  %s\n want %s", g, wantMin)
	}
}

func TestWireRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)} {
		for _, trace := range []struct{ tr, sp uint64 }{{0, 0}, {0xDEAD, 0xBEEF}, {7, 0}} {
			in := WireFrame{Type: 7, Seq: 42, Trace: trace.tr, Span: trace.sp, Payload: payload}
			enc := EncodeWireFrame(in)
			out, err := DecodeWireFrame(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if out.Type != in.Type || out.Seq != in.Seq || out.Trace != in.Trace ||
				out.Span != in.Span || !bytes.Equal(out.Payload, in.Payload) {
				t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
			}
			if !bytes.Equal(EncodeWireFrame(out), enc) {
				t.Fatalf("re-encode not canonical")
			}
			sr, err := ReadWireFrame(bytes.NewReader(enc))
			if err != nil {
				t.Fatalf("stream read: %v", err)
			}
			if sr.Type != in.Type || sr.Seq != in.Seq || sr.Trace != in.Trace ||
				sr.Span != in.Span || !bytes.Equal(sr.Payload, in.Payload) {
				t.Fatalf("stream round trip mismatch")
			}
		}
	}
}

func TestWireRoundTripV1(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)} {
		in := WireFrame{Type: 7, Seq: 42, Payload: payload}
		enc := EncodeWireFrame(in)
		out, err := DecodeWireFrame(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if out.Type != in.Type || out.Seq != in.Seq || !bytes.Equal(out.Payload, in.Payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
		}
		// Canonical: re-encoding the decoded frame is byte-identical.
		if !bytes.Equal(EncodeWireFrame(out), enc) {
			t.Fatalf("re-encode not canonical")
		}
		// Streaming read agrees with whole-buffer decode.
		sr, err := ReadWireFrame(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		if sr.Type != in.Type || sr.Seq != in.Seq || !bytes.Equal(sr.Payload, in.Payload) {
			t.Fatalf("stream round trip mismatch")
		}
	}
}

func TestWireDecodeErrors(t *testing.T) {
	valid := EncodeWireFrame(WireFrame{Type: 2, Seq: 9, Payload: []byte("payload")})

	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mut(b)
		return b
	}
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short", valid[:10], ErrTruncated},
		{"bad magic", corrupt(func(b []byte) { b[0] ^= 0xFF }), ErrBadMagic},
		{"future version", corrupt(func(b []byte) { b[4] = 99 }), ErrVersion},
		{"truncated tail", valid[:len(valid)-2], ErrTruncated},
		{"length lies", corrupt(func(b []byte) { b[20]++ }), ErrTruncated},
		{"flipped payload bit", corrupt(func(b []byte) { b[30] ^= 1 }), ErrChecksum},
		{"flipped crc", corrupt(func(b []byte) { b[len(b)-1] ^= 1 }), ErrChecksum},
	}
	for _, tc := range cases {
		if _, err := DecodeWireFrame(tc.b); !errors.Is(err, tc.want) {
			t.Errorf("%s: DecodeWireFrame err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// A version-2 frame whose trace context is all-zero is non-canonical
	// (the same content has a version-1 encoding) and must be rejected,
	// both whole-buffer and streaming.
	traced := EncodeWireFrame(WireFrame{Type: 2, Seq: 9, Trace: 5, Span: 6, Payload: []byte("payload")})
	zeroed := append([]byte(nil), traced...)
	for i := 28; i < 44; i++ {
		zeroed[i] = 0
	}
	// Recompute the CRC so only the canonicality check can fire.
	fixCRC(zeroed)
	if _, err := DecodeWireFrame(zeroed); !errors.Is(err, ErrVersion) {
		t.Errorf("v2 zero trace: DecodeWireFrame err = %v, want ErrVersion", err)
	}
	if _, err := ReadWireFrame(bytes.NewReader(zeroed)); !errors.Is(err, ErrVersion) {
		t.Errorf("v2 zero trace: ReadWireFrame err = %v, want ErrVersion", err)
	}
	// A torn trace block is an unexpected EOF.
	if _, err := ReadWireFrame(bytes.NewReader(traced[:30])); err != io.ErrUnexpectedEOF {
		t.Errorf("torn trace block: err = %v, want io.ErrUnexpectedEOF", err)
	}

	// Streaming: a clean close before any byte is io.EOF; mid-frame it
	// is io.ErrUnexpectedEOF.
	if _, err := ReadWireFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
	if _, err := ReadWireFrame(bytes.NewReader(valid[:13])); err != io.ErrUnexpectedEOF {
		t.Errorf("torn header: err = %v, want io.ErrUnexpectedEOF", err)
	}
	if _, err := ReadWireFrame(bytes.NewReader(valid[:len(valid)-1])); err != io.ErrUnexpectedEOF {
		t.Errorf("torn payload: err = %v, want io.ErrUnexpectedEOF", err)
	}
	if _, err := ReadWireFrame(bytes.NewReader(corrupt(func(b []byte) { b[31] ^= 4 }))); !errors.Is(err, ErrChecksum) {
		t.Errorf("stream checksum: err = %v, want ErrChecksum", err)
	}
}

// FuzzWireDecode throws arbitrary bytes at both wire decoders: they
// must never panic, and any frame that decodes must re-encode
// byte-identically (canonical form). Seeds cover a valid frame plus
// the classic corruptions.
func FuzzWireDecode(f *testing.F) {
	valid := EncodeWireFrame(WireFrame{Type: 5, Seq: 77, Payload: []byte("shard state")})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-2] ^= 0x10
	f.Add(flipped)
	f.Add(EncodeWireFrame(WireFrame{Type: 1}))
	f.Add(EncodeWireFrame(WireFrame{Type: 5, Seq: 77, Trace: 0xABCD, Span: 0x1234, Payload: []byte("traced")}))
	f.Add(EncodeWireFrame(WireFrame{Type: 9, Trace: 1}))
	f.Add([]byte("AFAB"))

	f.Fuzz(func(t *testing.T, b []byte) {
		if fr, err := DecodeWireFrame(b); err == nil {
			if !bytes.Equal(EncodeWireFrame(fr), b) {
				t.Fatalf("decoded frame does not re-encode canonically")
			}
		}
		if fr, err := ReadWireFrame(bytes.NewReader(b)); err == nil {
			enc := EncodeWireFrame(fr)
			if !bytes.Equal(enc, b[:len(enc)]) {
				t.Fatalf("stream-decoded frame does not re-encode canonically")
			}
		}
	})
}
