package ckpt

import (
	"fmt"
	"time"

	"arams/internal/audit"
	"arams/internal/pipeline"
	"arams/internal/rng"
	"arams/internal/sketch"
)

// Marshal encodes a state snapshot as one checkpoint frame. Accepted
// types (pointers or values where noted):
//
//	sketch.FDState / *sketch.FDState                     → KindFD
//	sketch.RankAdaptiveState / *sketch.RankAdaptiveState → KindRankAdaptive
//	sketch.PriorityState / *sketch.PriorityState         → KindPriority
//	sketch.ARAMSState / *sketch.ARAMSState               → KindARAMS
//	*pipeline.MonitorState                               → KindMonitor
func Marshal(state any) ([]byte, error) {
	e := &enc{}
	switch s := state.(type) {
	case sketch.FDState:
		encodeFD(e, &s)
		return frame(KindFD, e.b), nil
	case *sketch.FDState:
		encodeFD(e, s)
		return frame(KindFD, e.b), nil
	case sketch.RankAdaptiveState:
		encodeRankAdaptive(e, &s)
		return frame(KindRankAdaptive, e.b), nil
	case *sketch.RankAdaptiveState:
		encodeRankAdaptive(e, s)
		return frame(KindRankAdaptive, e.b), nil
	case sketch.PriorityState:
		encodePriority(e, &s)
		return frame(KindPriority, e.b), nil
	case *sketch.PriorityState:
		encodePriority(e, s)
		return frame(KindPriority, e.b), nil
	case sketch.ARAMSState:
		if err := encodeARAMS(e, &s); err != nil {
			return nil, err
		}
		return frame(KindARAMS, e.b), nil
	case *sketch.ARAMSState:
		if err := encodeARAMS(e, s); err != nil {
			return nil, err
		}
		return frame(KindARAMS, e.b), nil
	case *pipeline.MonitorState:
		if err := encodeMonitor(e, s); err != nil {
			return nil, err
		}
		return frame(KindMonitor, e.b), nil
	default:
		return nil, fmt.Errorf("ckpt: cannot marshal %T", state)
	}
}

// Unmarshal decodes one checkpoint frame. It returns one of
// *sketch.FDState, *sketch.RankAdaptiveState, *sketch.PriorityState,
// *sketch.ARAMSState, *pipeline.MonitorState.
func Unmarshal(b []byte) (any, error) {
	h, payload, err := unframe(b)
	if err != nil {
		return nil, err
	}
	kind := h.Kind
	d := &dec{b: payload, ver: h.Version}
	var state any
	switch kind {
	case KindFD:
		state = decodeFD(d)
	case KindRankAdaptive:
		state = decodeRankAdaptive(d)
	case KindPriority:
		state = decodePriority(d)
	case KindARAMS:
		state = decodeARAMS(d)
	case KindMonitor:
		state = decodeMonitor(d)
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadKind, uint32(kind))
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return state, nil
}

// --- FrequentDirections ---

func encodeFD(e *enc, s *sketch.FDState) {
	e.i64(s.Ell)
	e.i64(s.D)
	e.i64(int(s.Backend))
	e.i64(s.NextZero)
	e.i64(s.Rotations)
	e.i64(s.Seen)
	e.f64(s.TotalDelta)
	e.f64(s.FrobMass) // frame version 2+
	e.floats(s.Buffer)
}

func decodeFD(d *dec) *sketch.FDState {
	s := &sketch.FDState{
		Ell:      d.i64(),
		D:        d.i64(),
		Backend:  sketch.SVDBackend(d.i64()),
		NextZero: d.i64(),
	}
	s.Rotations = d.i64()
	s.Seen = d.i64()
	s.TotalDelta = d.f64()
	if d.ver >= 2 {
		s.FrobMass = d.f64()
	}
	s.Buffer = d.floats()
	return s
}

// --- RNG ---

func encodeRNG(e *enc, s rng.State) {
	e.u64(s.Hi)
	e.u64(s.Lo)
	e.u64(s.IncHi)
	e.u64(s.IncLo)
	e.bool(s.HaveGauss)
	e.f64(s.Gauss)
}

func decodeRNG(d *dec) rng.State {
	return rng.State{
		Hi:        d.u64(),
		Lo:        d.u64(),
		IncHi:     d.u64(),
		IncLo:     d.u64(),
		HaveGauss: d.bool(),
		Gauss:     d.f64(),
	}
}

// --- RankAdaptiveFD ---

func encodeRankAdaptive(e *enc, s *sketch.RankAdaptiveState) {
	encodeFD(e, &s.FD)
	e.i64(s.Nu)
	e.f64(s.Eps)
	e.i64(int(s.Estimator))
	encodeRNG(e, s.RNG)
	e.i64(len(s.Recent))
	for _, row := range s.Recent {
		e.floats(row)
	}
	e.bool(s.IncreaseEll)
	e.i64(s.RowsLeft)
	e.i64(s.Grows)
}

func decodeRankAdaptive(d *dec) *sketch.RankAdaptiveState {
	s := &sketch.RankAdaptiveState{FD: *decodeFD(d)}
	s.Nu = d.i64()
	s.Eps = d.f64()
	s.Estimator = sketch.EstimatorKind(d.i64())
	s.RNG = decodeRNG(d)
	// Each ring row costs at least a length prefix (8 bytes).
	n := d.count(8)
	if n > 0 {
		s.Recent = make([][]float64, n)
		for i := range s.Recent {
			s.Recent[i] = d.floats()
		}
	}
	s.IncreaseEll = d.bool()
	s.RowsLeft = d.i64()
	s.Grows = d.i64()
	return s
}

// --- PrioritySampler ---

func encodePriority(e *enc, s *sketch.PriorityState) {
	e.i64(s.M)
	e.i64(s.Seen)
	encodeRNG(e, s.RNG)
	e.i64(len(s.Entries))
	for _, ent := range s.Entries {
		e.f64(ent.Priority)
		e.f64(ent.Weight)
		e.i64(ent.Index)
		e.bool(ent.Row != nil)
		if ent.Row != nil {
			e.floats(ent.Row)
		}
	}
}

func decodePriority(d *dec) *sketch.PriorityState {
	s := &sketch.PriorityState{
		M:    d.i64(),
		Seen: d.i64(),
		RNG:  decodeRNG(d),
	}
	// Each entry costs at least priority+weight+index+hasRow (25 bytes).
	n := d.count(25)
	if n > 0 {
		s.Entries = make([]sketch.PriorityEntry, n)
		for i := range s.Entries {
			ent := &s.Entries[i]
			ent.Priority = d.f64()
			ent.Weight = d.f64()
			ent.Index = d.i64()
			if d.bool() {
				ent.Row = d.floats()
				if ent.Row == nil && d.err == nil {
					// A present-but-empty row re-encodes identically to a
					// nil row only if we keep it non-nil.
					ent.Row = []float64{}
				}
			}
		}
	}
	return s
}

// --- ARAMS ---

func encodeARAMS(e *enc, s *sketch.ARAMSState) error {
	e.i64(s.Cfg.Ell0)
	e.i64(s.Cfg.Nu)
	e.f64(s.Cfg.Eps)
	e.f64(s.Cfg.Beta)
	e.bool(s.Cfg.RankAdaptive)
	e.i64(int(s.Cfg.Estimator))
	e.u64(s.Cfg.Seed)
	e.i64(s.D)
	encodeRNG(e, s.RNG)
	switch {
	case s.RankAdaptive != nil && s.FD == nil:
		e.bool(true)
		encodeRankAdaptive(e, s.RankAdaptive)
	case s.FD != nil && s.RankAdaptive == nil:
		e.bool(false)
		encodeFD(e, s.FD)
	default:
		return fmt.Errorf("ckpt: ARAMS state must carry exactly one sketch variant")
	}
	return nil
}

func decodeARAMS(d *dec) *sketch.ARAMSState {
	s := &sketch.ARAMSState{}
	s.Cfg.Ell0 = d.i64()
	s.Cfg.Nu = d.i64()
	s.Cfg.Eps = d.f64()
	s.Cfg.Beta = d.f64()
	s.Cfg.RankAdaptive = d.bool()
	s.Cfg.Estimator = sketch.EstimatorKind(d.i64())
	s.Cfg.Seed = d.u64()
	s.D = d.i64()
	s.RNG = decodeRNG(d)
	if d.bool() {
		s.RankAdaptive = decodeRankAdaptive(d)
	} else {
		s.FD = decodeFD(d)
	}
	return s
}

// --- Monitor ---

func encodeMonitor(e *enc, s *pipeline.MonitorState) error {
	e.i64(s.Window)
	e.i64(s.Ingests)
	e.i64(len(s.Frames))
	for _, f := range s.Frames {
		e.i64(f.Tag)
		e.floats(f.Vec)
	}
	// Frame version 3+: the shard-state list replaces v1/v2's single
	// optional sketch. Slots are positional (slot i = engine shard i)
	// and may be nil for shards that have not received a frame, so each
	// entry carries a presence bool.
	e.i64(len(s.Shards))
	for _, ss := range s.Shards {
		e.bool(ss != nil)
		if ss != nil {
			if err := encodeARAMS(e, ss); err != nil {
				return err
			}
		}
	}
	// Frame version 2+: optional audit state (drift detectors + event
	// journal).
	e.bool(s.Audit != nil)
	if s.Audit != nil {
		encodeAuditState(e, s.Audit)
	}
	e.bool(s.Journal != nil)
	if s.Journal != nil {
		encodeJournal(e, s.Journal)
	}
	return nil
}

func decodeMonitor(d *dec) *pipeline.MonitorState {
	s := &pipeline.MonitorState{
		Window:  d.i64(),
		Ingests: d.i64(),
	}
	// Each frame costs at least tag + vector length prefix (16 bytes).
	n := d.count(16)
	if n > 0 {
		s.Frames = make([]pipeline.FrameState, n)
		for i := range s.Frames {
			s.Frames[i].Tag = d.i64()
			s.Frames[i].Vec = d.floats()
		}
	}
	if d.ver >= 3 {
		// Each shard slot costs at least its presence bool (1 byte).
		ns := d.count(1)
		if ns > 0 {
			s.Shards = make([]*sketch.ARAMSState, ns)
			for i := range s.Shards {
				if d.bool() {
					s.Shards[i] = decodeARAMS(d)
				}
			}
		}
	} else if d.bool() {
		// v1/v2 checkpoints carried one optional sketch: decode it as a
		// single-shard layout.
		s.Shards = []*sketch.ARAMSState{decodeARAMS(d)}
	}
	if d.ver >= 2 {
		if d.bool() {
			s.Audit = decodeAuditState(d)
		}
		if d.bool() {
			s.Journal = decodeJournal(d)
		}
	}
	return s
}

// --- audit state (frame version 2+) ---

func encodeDetector(e *enc, s *audit.DetectorState) {
	e.str(s.Kind)
	e.f64(s.Thresh)
	e.f64(s.Slack)
	e.i64(s.Warmup)
	e.i64(s.N)
	e.f64(s.Mean)
	e.f64(s.Pos)
	e.f64(s.PosExt)
	e.f64(s.Neg)
	e.f64(s.NegExt)
}

func decodeDetector(d *dec) audit.DetectorState {
	return audit.DetectorState{
		Kind:   d.str(),
		Thresh: d.f64(),
		Slack:  d.f64(),
		Warmup: d.i64(),
		N:      d.i64(),
		Mean:   d.f64(),
		Pos:    d.f64(),
		PosExt: d.f64(),
		Neg:    d.f64(),
		NegExt: d.f64(),
	}
}

func encodeAuditState(e *enc, s *audit.State) {
	e.u64(uint64(s.Batches))
	e.u64(uint64(s.Alarms))
	encodeDetector(e, &s.Residual)
	encodeDetector(e, &s.Accept)
}

func decodeAuditState(d *dec) *audit.State {
	return &audit.State{
		Batches:  int64(d.u64()),
		Alarms:   int64(d.u64()),
		Residual: decodeDetector(d),
		Accept:   decodeDetector(d),
	}
}

// encodeJournal serializes the retained event ring. Timestamps are
// stored as Unix nanoseconds, which round-trips exactly (monotonic
// clock readings are deliberately dropped — a restored process has a
// different one anyway).
func encodeJournal(e *enc, s *audit.JournalState) {
	e.u64(uint64(s.Seq))
	e.i64(len(s.Events))
	for _, ev := range s.Events {
		e.u64(uint64(ev.Seq))
		e.u64(uint64(ev.Time.UnixNano()))
		e.str(string(ev.Kind))
		e.str(ev.Msg)
		e.i64(len(ev.Attrs))
		for _, a := range ev.Attrs {
			e.str(a.Key)
			e.f64(a.Val)
		}
	}
}

func decodeJournal(d *dec) *audit.JournalState {
	s := &audit.JournalState{Seq: int64(d.u64())}
	// Each event costs at least seq+time+2 length prefixes+attr count
	// (40 bytes).
	n := d.count(40)
	if n > 0 {
		s.Events = make([]audit.Event, n)
		for i := range s.Events {
			ev := &s.Events[i]
			ev.Seq = int64(d.u64())
			ev.Time = time.Unix(0, int64(d.u64())).UTC()
			ev.Kind = audit.EventKind(d.str())
			ev.Msg = d.str()
			// Each attr costs at least a key length prefix + value.
			na := d.count(16)
			if na > 0 {
				ev.Attrs = make([]audit.Attr, na)
				for j := range ev.Attrs {
					ev.Attrs[j].Key = d.str()
					ev.Attrs[j].Val = d.f64()
				}
			}
		}
	}
	return s
}
