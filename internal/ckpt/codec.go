package ckpt

import (
	"fmt"

	"arams/internal/pipeline"
	"arams/internal/rng"
	"arams/internal/sketch"
)

// Marshal encodes a state snapshot as one checkpoint frame. Accepted
// types (pointers or values where noted):
//
//	sketch.FDState / *sketch.FDState                     → KindFD
//	sketch.RankAdaptiveState / *sketch.RankAdaptiveState → KindRankAdaptive
//	sketch.PriorityState / *sketch.PriorityState         → KindPriority
//	sketch.ARAMSState / *sketch.ARAMSState               → KindARAMS
//	*pipeline.MonitorState                               → KindMonitor
func Marshal(state any) ([]byte, error) {
	e := &enc{}
	switch s := state.(type) {
	case sketch.FDState:
		encodeFD(e, &s)
		return frame(KindFD, e.b), nil
	case *sketch.FDState:
		encodeFD(e, s)
		return frame(KindFD, e.b), nil
	case sketch.RankAdaptiveState:
		encodeRankAdaptive(e, &s)
		return frame(KindRankAdaptive, e.b), nil
	case *sketch.RankAdaptiveState:
		encodeRankAdaptive(e, s)
		return frame(KindRankAdaptive, e.b), nil
	case sketch.PriorityState:
		encodePriority(e, &s)
		return frame(KindPriority, e.b), nil
	case *sketch.PriorityState:
		encodePriority(e, s)
		return frame(KindPriority, e.b), nil
	case sketch.ARAMSState:
		if err := encodeARAMS(e, &s); err != nil {
			return nil, err
		}
		return frame(KindARAMS, e.b), nil
	case *sketch.ARAMSState:
		if err := encodeARAMS(e, s); err != nil {
			return nil, err
		}
		return frame(KindARAMS, e.b), nil
	case *pipeline.MonitorState:
		if err := encodeMonitor(e, s); err != nil {
			return nil, err
		}
		return frame(KindMonitor, e.b), nil
	default:
		return nil, fmt.Errorf("ckpt: cannot marshal %T", state)
	}
}

// Unmarshal decodes one checkpoint frame. It returns one of
// *sketch.FDState, *sketch.RankAdaptiveState, *sketch.PriorityState,
// *sketch.ARAMSState, *pipeline.MonitorState.
func Unmarshal(b []byte) (any, error) {
	kind, payload, err := unframe(b)
	if err != nil {
		return nil, err
	}
	d := &dec{b: payload}
	var state any
	switch kind {
	case KindFD:
		state = decodeFD(d)
	case KindRankAdaptive:
		state = decodeRankAdaptive(d)
	case KindPriority:
		state = decodePriority(d)
	case KindARAMS:
		state = decodeARAMS(d)
	case KindMonitor:
		state = decodeMonitor(d)
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadKind, uint32(kind))
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return state, nil
}

// --- FrequentDirections ---

func encodeFD(e *enc, s *sketch.FDState) {
	e.i64(s.Ell)
	e.i64(s.D)
	e.i64(int(s.Backend))
	e.i64(s.NextZero)
	e.i64(s.Rotations)
	e.i64(s.Seen)
	e.f64(s.TotalDelta)
	e.floats(s.Buffer)
}

func decodeFD(d *dec) *sketch.FDState {
	s := &sketch.FDState{
		Ell:      d.i64(),
		D:        d.i64(),
		Backend:  sketch.SVDBackend(d.i64()),
		NextZero: d.i64(),
	}
	s.Rotations = d.i64()
	s.Seen = d.i64()
	s.TotalDelta = d.f64()
	s.Buffer = d.floats()
	return s
}

// --- RNG ---

func encodeRNG(e *enc, s rng.State) {
	e.u64(s.Hi)
	e.u64(s.Lo)
	e.u64(s.IncHi)
	e.u64(s.IncLo)
	e.bool(s.HaveGauss)
	e.f64(s.Gauss)
}

func decodeRNG(d *dec) rng.State {
	return rng.State{
		Hi:        d.u64(),
		Lo:        d.u64(),
		IncHi:     d.u64(),
		IncLo:     d.u64(),
		HaveGauss: d.bool(),
		Gauss:     d.f64(),
	}
}

// --- RankAdaptiveFD ---

func encodeRankAdaptive(e *enc, s *sketch.RankAdaptiveState) {
	encodeFD(e, &s.FD)
	e.i64(s.Nu)
	e.f64(s.Eps)
	e.i64(int(s.Estimator))
	encodeRNG(e, s.RNG)
	e.i64(len(s.Recent))
	for _, row := range s.Recent {
		e.floats(row)
	}
	e.bool(s.IncreaseEll)
	e.i64(s.RowsLeft)
	e.i64(s.Grows)
}

func decodeRankAdaptive(d *dec) *sketch.RankAdaptiveState {
	s := &sketch.RankAdaptiveState{FD: *decodeFD(d)}
	s.Nu = d.i64()
	s.Eps = d.f64()
	s.Estimator = sketch.EstimatorKind(d.i64())
	s.RNG = decodeRNG(d)
	// Each ring row costs at least a length prefix (8 bytes).
	n := d.count(8)
	if n > 0 {
		s.Recent = make([][]float64, n)
		for i := range s.Recent {
			s.Recent[i] = d.floats()
		}
	}
	s.IncreaseEll = d.bool()
	s.RowsLeft = d.i64()
	s.Grows = d.i64()
	return s
}

// --- PrioritySampler ---

func encodePriority(e *enc, s *sketch.PriorityState) {
	e.i64(s.M)
	e.i64(s.Seen)
	encodeRNG(e, s.RNG)
	e.i64(len(s.Entries))
	for _, ent := range s.Entries {
		e.f64(ent.Priority)
		e.f64(ent.Weight)
		e.i64(ent.Index)
		e.bool(ent.Row != nil)
		if ent.Row != nil {
			e.floats(ent.Row)
		}
	}
}

func decodePriority(d *dec) *sketch.PriorityState {
	s := &sketch.PriorityState{
		M:    d.i64(),
		Seen: d.i64(),
		RNG:  decodeRNG(d),
	}
	// Each entry costs at least priority+weight+index+hasRow (25 bytes).
	n := d.count(25)
	if n > 0 {
		s.Entries = make([]sketch.PriorityEntry, n)
		for i := range s.Entries {
			ent := &s.Entries[i]
			ent.Priority = d.f64()
			ent.Weight = d.f64()
			ent.Index = d.i64()
			if d.bool() {
				ent.Row = d.floats()
				if ent.Row == nil && d.err == nil {
					// A present-but-empty row re-encodes identically to a
					// nil row only if we keep it non-nil.
					ent.Row = []float64{}
				}
			}
		}
	}
	return s
}

// --- ARAMS ---

func encodeARAMS(e *enc, s *sketch.ARAMSState) error {
	e.i64(s.Cfg.Ell0)
	e.i64(s.Cfg.Nu)
	e.f64(s.Cfg.Eps)
	e.f64(s.Cfg.Beta)
	e.bool(s.Cfg.RankAdaptive)
	e.i64(int(s.Cfg.Estimator))
	e.u64(s.Cfg.Seed)
	e.i64(s.D)
	encodeRNG(e, s.RNG)
	switch {
	case s.RankAdaptive != nil && s.FD == nil:
		e.bool(true)
		encodeRankAdaptive(e, s.RankAdaptive)
	case s.FD != nil && s.RankAdaptive == nil:
		e.bool(false)
		encodeFD(e, s.FD)
	default:
		return fmt.Errorf("ckpt: ARAMS state must carry exactly one sketch variant")
	}
	return nil
}

func decodeARAMS(d *dec) *sketch.ARAMSState {
	s := &sketch.ARAMSState{}
	s.Cfg.Ell0 = d.i64()
	s.Cfg.Nu = d.i64()
	s.Cfg.Eps = d.f64()
	s.Cfg.Beta = d.f64()
	s.Cfg.RankAdaptive = d.bool()
	s.Cfg.Estimator = sketch.EstimatorKind(d.i64())
	s.Cfg.Seed = d.u64()
	s.D = d.i64()
	s.RNG = decodeRNG(d)
	if d.bool() {
		s.RankAdaptive = decodeRankAdaptive(d)
	} else {
		s.FD = decodeFD(d)
	}
	return s
}

// --- Monitor ---

func encodeMonitor(e *enc, s *pipeline.MonitorState) error {
	e.i64(s.Window)
	e.i64(s.Ingests)
	e.i64(len(s.Frames))
	for _, f := range s.Frames {
		e.i64(f.Tag)
		e.floats(f.Vec)
	}
	if s.Sketch != nil {
		e.bool(true)
		return encodeARAMS(e, s.Sketch)
	}
	e.bool(false)
	return nil
}

func decodeMonitor(d *dec) *pipeline.MonitorState {
	s := &pipeline.MonitorState{
		Window:  d.i64(),
		Ingests: d.i64(),
	}
	// Each frame costs at least tag + vector length prefix (16 bytes).
	n := d.count(16)
	if n > 0 {
		s.Frames = make([]pipeline.FrameState, n)
		for i := range s.Frames {
			s.Frames[i].Tag = d.i64()
			s.Frames[i].Vec = d.floats()
		}
	}
	if d.bool() {
		s.Sketch = decodeARAMS(d)
	}
	return s
}
