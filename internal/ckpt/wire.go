package ckpt

// Wire frames: the transport framing of the distributed sketch fabric
// (internal/fabric). A wire frame is the checkpoint frame's sibling —
// the same length-prefixed, versioned, CRC-trailed discipline, applied
// to messages in flight instead of state at rest — and shard-state
// payloads carried inside wire frames are themselves canonical
// checkpoint frames (Marshal/Unmarshal), so one codec certifies both
// the bytes on disk and the bytes on the wire.
//
// Wire frame layout (all integers little-endian):
//
//	offset 0   magic   "AFAB" (4 bytes)
//	offset 4   version uint32 (1 or 2)
//	offset 8   type    uint32 (message type; owned by internal/fabric)
//	offset 12  seq     uint64 (request/response correlation)
//	offset 20  length  uint64 (payload byte count)
//	offset 28  trace   uint64 (version ≥ 2 only: trace ID)
//	offset 36  span    uint64 (version ≥ 2 only: parent span ID)
//	...        payload (offset 28 for v1, 44 for v2)
//	...        crc32 uint32 (IEEE, over every byte before it)
//
// Version 2 adds an optional trace-context block so a coordinator can
// propagate its obs.SpanContext to a remote worker and the worker can
// open child spans inside the coordinator's trace. The block is
// version-gated for compatibility in both directions: frames without a
// trace context encode as version 1 (byte-identical to the v1 codec,
// so v1 peers still decode them), and frames carrying one encode as
// version 2. To keep the encoding canonical (decode→re-encode is
// byte-identical, a property the fuzz targets enforce), a version-2
// frame whose trace and span IDs are both zero is rejected: that
// content has exactly one encoding, the version-1 one.
//
// Like the checkpoint decoder, the wire decoder is fully
// bounds-checked and never panics on corrupt input: truncation,
// bit flips, bad magic, and version skew each surface as the matching
// sentinel error, and a corrupted length field cannot drive an
// oversized allocation.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// WireMagic is the wire-frame signature "AFAB" (Arams FABric).
const WireMagic = uint32('A') | uint32('F')<<8 | uint32('A')<<16 | uint32('B')<<24

// WireVersion is the current wire-frame version. Decoders accept every
// version up to and including this one and reject newer frames rather
// than guessing at their layout. Version 2 added the optional trace
// context block; encoders only emit it when a frame carries one, so
// untraced traffic remains version-1 bytes.
const WireVersion = 2

// wireHeaderLen is magic+version+type+seq+length; version ≥ 2 frames
// extend the header with wireTraceLen bytes of trace context; the
// trailer is the CRC32.
const (
	wireHeaderLen  = 4 + 4 + 4 + 8 + 8
	wireTraceLen   = 8 + 8
	wireTrailerLen = 4
)

// MaxWirePayload caps a wire frame's declared payload so a corrupted
// or hostile length field cannot drive a multi-gigabyte allocation on
// the receiving end. Shard-state frames are the largest legitimate
// payload (a few MB for realistic ℓ and d), so 1 GiB is generous.
const MaxWirePayload = 1 << 30

// WireFrame is one decoded fabric message: its type tag (interpreted
// by internal/fabric), the sender's sequence number, the optional
// trace context (zero when absent — the IDs are obs span/trace IDs,
// kept as raw uint64 so ckpt does not depend on internal/obs), and the
// payload bytes.
type WireFrame struct {
	Type    uint32
	Seq     uint64
	Trace   uint64
	Span    uint64
	Payload []byte
}

// Traced reports whether the frame carries a trace context (and hence
// encodes as version 2).
func (f WireFrame) Traced() bool { return f.Trace|f.Span != 0 }

// AppendWireFrame appends the encoded frame to dst and returns the
// extended slice. Encoding is canonical: encode→decode→re-encode is
// byte-identical. Frames without a trace context encode as version 1,
// frames with one as version 2.
func AppendWireFrame(dst []byte, f WireFrame) []byte {
	base := len(dst)
	ver := uint32(1)
	if f.Traced() {
		ver = 2
	}
	dst = binary.LittleEndian.AppendUint32(dst, WireMagic)
	dst = binary.LittleEndian.AppendUint32(dst, ver)
	dst = binary.LittleEndian.AppendUint32(dst, f.Type)
	dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(f.Payload)))
	if ver >= 2 {
		dst = binary.LittleEndian.AppendUint64(dst, f.Trace)
		dst = binary.LittleEndian.AppendUint64(dst, f.Span)
	}
	dst = append(dst, f.Payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[base:]))
}

// EncodeWireFrame encodes one fabric message as a standalone byte
// slice.
func EncodeWireFrame(f WireFrame) []byte {
	return AppendWireFrame(make([]byte, 0, wireHeaderLen+wireTraceLen+len(f.Payload)+wireTrailerLen), f)
}

// DecodeWireFrame decodes exactly one wire frame occupying the whole
// of b. The returned payload aliases b.
func DecodeWireFrame(b []byte) (WireFrame, error) {
	if len(b) < wireHeaderLen+wireTrailerLen {
		return WireFrame{}, ErrTruncated
	}
	if binary.LittleEndian.Uint32(b[0:4]) != WireMagic {
		return WireFrame{}, ErrBadMagic
	}
	ver := binary.LittleEndian.Uint32(b[4:8])
	if ver < 1 || ver > WireVersion {
		return WireFrame{}, fmt.Errorf("%w: wire version %d", ErrVersion, ver)
	}
	f := WireFrame{
		Type: binary.LittleEndian.Uint32(b[8:12]),
		Seq:  binary.LittleEndian.Uint64(b[12:20]),
	}
	hdr := wireHeaderLen
	if ver >= 2 {
		hdr += wireTraceLen
	}
	n := binary.LittleEndian.Uint64(b[20:28])
	if n > MaxWirePayload || uint64(len(b)) != uint64(hdr)+n+wireTrailerLen {
		return WireFrame{}, ErrTruncated
	}
	body := hdr + int(n)
	if crc32.ChecksumIEEE(b[:body]) != binary.LittleEndian.Uint32(b[body:]) {
		return WireFrame{}, ErrChecksum
	}
	if ver >= 2 {
		f.Trace = binary.LittleEndian.Uint64(b[28:36])
		f.Span = binary.LittleEndian.Uint64(b[36:44])
		if !f.Traced() {
			return WireFrame{}, fmt.Errorf("%w: version 2 frame without trace context", ErrVersion)
		}
	}
	if n > 0 {
		f.Payload = b[hdr:body]
	}
	return f, nil
}

// WriteWireFrame writes one encoded frame to w.
func WriteWireFrame(w io.Writer, f WireFrame) error {
	if uint64(len(f.Payload)) > MaxWirePayload {
		return fmt.Errorf("ckpt: wire payload %d exceeds cap", len(f.Payload))
	}
	_, err := w.Write(EncodeWireFrame(f))
	return err
}

// ReadWireFrame reads exactly one frame from r. It validates the
// header before allocating for the payload, so a corrupt length field
// fails with ErrTruncated (or the CRC check) instead of exhausting
// memory. An io.EOF before the first header byte is returned verbatim
// so callers can distinguish a clean close from a torn frame; EOF
// mid-frame becomes io.ErrUnexpectedEOF.
func ReadWireFrame(r io.Reader) (WireFrame, error) {
	var hdr [wireHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return WireFrame{}, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return WireFrame{}, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != WireMagic {
		return WireFrame{}, ErrBadMagic
	}
	ver := binary.LittleEndian.Uint32(hdr[4:8])
	if ver < 1 || ver > WireVersion {
		return WireFrame{}, fmt.Errorf("%w: wire version %d", ErrVersion, ver)
	}
	n := binary.LittleEndian.Uint64(hdr[20:28])
	if n > MaxWirePayload {
		return WireFrame{}, ErrTruncated
	}
	f := WireFrame{
		Type: binary.LittleEndian.Uint32(hdr[8:12]),
		Seq:  binary.LittleEndian.Uint64(hdr[12:20]),
	}
	sum := crc32.ChecksumIEEE(hdr[:])
	if ver >= 2 {
		var tb [wireTraceLen]byte
		if _, err := io.ReadFull(r, tb[:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return WireFrame{}, err
		}
		f.Trace = binary.LittleEndian.Uint64(tb[0:8])
		f.Span = binary.LittleEndian.Uint64(tb[8:16])
		if !f.Traced() {
			return WireFrame{}, fmt.Errorf("%w: version 2 frame without trace context", ErrVersion)
		}
		sum = crc32.Update(sum, crc32.IEEETable, tb[:])
	}
	rest := make([]byte, int(n)+wireTrailerLen)
	if _, err := io.ReadFull(r, rest); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return WireFrame{}, err
	}
	sum = crc32.Update(sum, crc32.IEEETable, rest[:n])
	if sum != binary.LittleEndian.Uint32(rest[n:]) {
		return WireFrame{}, ErrChecksum
	}
	if n > 0 {
		f.Payload = rest[:n:n]
	}
	return f, nil
}
