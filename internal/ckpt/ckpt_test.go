package ckpt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"arams/internal/audit"
	"arams/internal/imgproc"
	"arams/internal/mat"
	"arams/internal/obs"
	"arams/internal/pipeline"
	"arams/internal/rng"
	"arams/internal/sketch"
)

// testFD builds a sketch with non-trivial state: several rotations, a
// partially filled buffer, and accumulated shrinkage.
func testFD(t *testing.T) *sketch.FrequentDirections {
	t.Helper()
	g := rng.New(7)
	fd := sketch.NewFrequentDirections(6, 12, sketch.Options{})
	for i := 0; i < 40; i++ {
		row := make([]float64, 12)
		for j := range row {
			row[j] = g.Norm()
		}
		fd.Append(row)
	}
	return fd
}

func testARAMS(t *testing.T, rankAdaptive bool) *sketch.ARAMS {
	t.Helper()
	cfg := sketch.Config{Ell0: 5, Nu: 4, Beta: 0.8, Seed: 11}
	if rankAdaptive {
		cfg.RankAdaptive = true
		cfg.Eps = 0.3
	}
	a := sketch.NewARAMS(cfg, 10, 200)
	g := rng.New(3)
	batch := mat.New(60, 10)
	for i := range batch.Data {
		batch.Data[i] = g.Norm()
	}
	a.ProcessBatch(batch)
	return a
}

func testMonitor(t *testing.T, frames int) *pipeline.Monitor {
	t.Helper()
	m := pipeline.NewMonitor(pipeline.Config{
		Sketch: sketch.Config{Ell0: 4, Beta: 0.9, Seed: 5},
	}, 16)
	g := rng.New(9)
	for i := 0; i < frames; i++ {
		im := imgproc.NewImage(4, 4)
		for p := range im.Pix {
			im.Pix[p] = g.Float64()
		}
		m.Ingest(im, i)
	}
	return m
}

// testMonitorAudited is testMonitor with the quality-audit layer
// attached, so its MonitorState carries populated Audit (detector
// internals) and Journal (event ring) sections for the codec to cover.
func testMonitorAudited(t *testing.T, frames int) *pipeline.Monitor {
	t.Helper()
	aud := audit.New(audit.Config{
		Journal:   audit.NewJournal(32),
		Registry:  obs.NewRegistry(),
		Residual:  audit.NewCUSUM(0.05, 0.5),
		CertEvery: 1,
	})
	m := pipeline.NewMonitor(pipeline.Config{
		Sketch:     sketch.Config{Ell0: 4, Beta: 0.9, Seed: 5},
		Audit:      aud,
		AuditEvery: 4,
	}, 16)
	g := rng.New(9)
	for i := 0; i < frames; i++ {
		im := imgproc.NewImage(4, 4)
		for p := range im.Pix {
			im.Pix[p] = g.Float64()
		}
		m.Ingest(im, i)
	}
	return m
}

// states returns one populated snapshot of every checkpointable kind.
func states(t *testing.T) []any {
	t.Helper()
	fd := testFD(t).State()

	raInner := sketch.NewRankAdaptiveFD(4, 8, 3, 0.2, 500, rng.New(2))
	g := rng.New(4)
	for i := 0; i < 30; i++ {
		row := make([]float64, 8)
		for j := range row {
			row[j] = g.Norm()
		}
		raInner.Append(row)
	}
	ra := raInner.State()

	ps := sketch.NewPrioritySampler(5, rng.New(6))
	for i := 0; i < 20; i++ {
		row := make([]float64, 3)
		for j := range row {
			row[j] = g.Norm()
		}
		ps.PushRow(row)
	}
	pri := ps.State()

	ar := testARAMS(t, true).State()
	arFixed := testARAMS(t, false).State()
	mon := testMonitor(t, 12).State()
	monAudited := testMonitorAudited(t, 12).State()
	if monAudited.Audit == nil || monAudited.Journal == nil || len(monAudited.Journal.Events) == 0 {
		t.Fatal("audited monitor snapshot is missing audit/journal state")
	}
	return []any{&fd, &ra, &pri, &ar, &arFixed, mon, monAudited}
}

// TestRoundTripCanonical checks the codec invariant the fuzz target
// also drives: encode → decode → re-encode is byte-identical for every
// kind.
func TestRoundTripCanonical(t *testing.T) {
	for _, s := range states(t) {
		b1, err := Marshal(s)
		if err != nil {
			t.Fatalf("marshal %T: %v", s, err)
		}
		back, err := Unmarshal(b1)
		if err != nil {
			t.Fatalf("unmarshal %T: %v", s, err)
		}
		b2, err := Marshal(back)
		if err != nil {
			t.Fatalf("re-marshal %T: %v", back, err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%T: re-encoded frame differs (%d vs %d bytes)", s, len(b1), len(b2))
		}
	}
}

// TestRestoredFDResumesBitExact appends the same suffix to an original
// sketch and to its checkpoint-restored copy and requires identical
// results — the property that makes crash-restart invisible.
func TestRestoredFDResumesBitExact(t *testing.T) {
	fd := testFD(t)
	b, err := Marshal(fd.State())
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := sketch.NewFDFromState(*back.(*sketch.FDState))
	if err != nil {
		t.Fatal(err)
	}

	g := rng.New(99)
	suffix := make([][]float64, 25)
	for i := range suffix {
		suffix[i] = make([]float64, 12)
		for j := range suffix[i] {
			suffix[i][j] = g.Norm()
		}
	}
	for _, row := range suffix {
		fd.Append(row)
		restored.Append(row)
	}
	a, bM := fd.Sketch(), restored.Sketch()
	for i := range a.Data {
		if a.Data[i] != bM.Data[i] {
			t.Fatalf("restored sketch diverged at element %d: %v vs %v", i, a.Data[i], bM.Data[i])
		}
	}
	if fd.Seen() != restored.Seen() || fd.Rotations() != restored.Rotations() {
		t.Fatalf("counters diverged: seen %d/%d rotations %d/%d",
			fd.Seen(), restored.Seen(), fd.Rotations(), restored.Rotations())
	}
}

// TestRestoredARAMSResumesBitExact does the same through the full
// ARAMS stack (priority sampling + rank adaptation), which also
// exercises the RNG state restore: the sampler draws must line up.
func TestRestoredARAMSResumesBitExact(t *testing.T) {
	a := testARAMS(t, true)
	b, err := Marshal(a.State())
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := sketch.NewARAMSFromState(*back.(*sketch.ARAMSState))
	if err != nil {
		t.Fatal(err)
	}

	g := rng.New(123)
	batch := mat.New(50, 10)
	for i := range batch.Data {
		batch.Data[i] = g.Norm()
	}
	a.ProcessBatch(batch)
	restored.ProcessBatch(batch)
	s1, s2 := a.Sketch(), restored.Sketch()
	if s1.RowsN != s2.RowsN {
		t.Fatalf("sketch shapes diverged: %d vs %d rows", s1.RowsN, s2.RowsN)
	}
	for i := range s1.Data {
		if s1.Data[i] != s2.Data[i] {
			t.Fatalf("restored ARAMS diverged at element %d: %v vs %v", i, s1.Data[i], s2.Data[i])
		}
	}
	if a.Ell() != restored.Ell() {
		t.Fatalf("rank diverged: %d vs %d", a.Ell(), restored.Ell())
	}
}

// TestRestoredPriorityResumesBitExact replays a suffix through a
// restored sampler and requires identical selections and estimates.
func TestRestoredPriorityResumesBitExact(t *testing.T) {
	g := rng.New(21)
	ps := sketch.NewPrioritySampler(6, rng.New(8))
	feed := func(p *sketch.PrioritySampler, n int, gen *rng.RNG) {
		for i := 0; i < n; i++ {
			row := []float64{gen.Norm(), gen.Norm()}
			p.PushRow(row)
		}
	}
	feed(ps, 30, g)

	b, err := Marshal(ps.State())
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := sketch.NewPriorityFromState(*back.(*sketch.PriorityState))
	if err != nil {
		t.Fatal(err)
	}

	gA, gB := rng.New(77), rng.New(77)
	feed(ps, 30, gA)
	feed(restored, 30, gB)
	ia, ib := ps.Indices(), restored.Indices()
	if len(ia) != len(ib) {
		t.Fatalf("selection sizes diverged: %d vs %d", len(ia), len(ib))
	}
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatalf("selection diverged at %d: %d vs %d", i, ia[i], ib[i])
		}
	}
	if ps.EstimateSum() != restored.EstimateSum() {
		t.Fatalf("estimates diverged: %v vs %v", ps.EstimateSum(), restored.EstimateSum())
	}
}

func TestDecodeErrors(t *testing.T) {
	valid, err := Marshal(testFD(t).State())
	if err != nil {
		t.Fatal(err)
	}

	t.Run("empty", func(t *testing.T) {
		if _, err := Unmarshal(nil); !errors.Is(err, ErrTruncated) {
			t.Errorf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[0] ^= 0xff
		if _, err := Unmarshal(b); !errors.Is(err, ErrBadMagic) {
			t.Errorf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[4] = 99
		if _, err := Unmarshal(b); !errors.Is(err, ErrVersion) {
			t.Errorf("got %v, want ErrVersion", err)
		}
	})
	t.Run("payload flip", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[len(b)/2] ^= 0x40
		if _, err := Unmarshal(b); !errors.Is(err, ErrChecksum) {
			t.Errorf("got %v, want ErrChecksum", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := Unmarshal(valid[:len(valid)-3]); !errors.Is(err, ErrTruncated) {
			t.Errorf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("unknown kind", func(t *testing.T) {
		// Rebuild the frame with a bogus kind so the checksum is valid.
		payloadLen := len(valid) - headerLen - trailerLen
		bad := frame(Kind(42), valid[headerLen:headerLen+payloadLen])
		if _, err := Unmarshal(bad); !errors.Is(err, ErrBadKind) {
			t.Errorf("got %v, want ErrBadKind", err)
		}
	})
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sketch.ckpt")
	fd := testFD(t)
	if err := Save(path, fd.State()); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second checkpoint; the rename must replace, and
	// no temp files may linger.
	fdRow := make([]float64, 12)
	fdRow[0] = 1
	fd.Append(fdRow)
	if err := Save(path, fd.State()); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected only the checkpoint in %s, found %d entries", dir, len(entries))
	}

	state, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := state.(*sketch.FDState)
	if !ok {
		t.Fatalf("loaded %T, want *sketch.FDState", state)
	}
	if got.Seen != fd.Seen() {
		t.Fatalf("loaded Seen=%d, want %d", got.Seen, fd.Seen())
	}
}

func TestLoadRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sketch.ckpt")
	if err := Save(path, testFD(t).State()); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[headerLen+5] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrChecksum) {
		t.Fatalf("got %v, want ErrChecksum", err)
	}
}

func TestMonitorStateRoundTrip(t *testing.T) {
	m := testMonitor(t, 10)
	b, err := Marshal(m.State())
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	ms := back.(*pipeline.MonitorState)
	restored, err := pipeline.NewMonitorFromState(pipeline.Config{
		Sketch: sketch.Config{Ell0: 4, Beta: 0.9, Seed: 5},
	}, ms)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Ingested() != m.Ingested() || restored.Ell() != m.Ell() {
		t.Fatalf("restored monitor state mismatch: ingests %d/%d ell %d/%d",
			restored.Ingested(), m.Ingested(), restored.Ell(), m.Ell())
	}
}

func TestPeek(t *testing.T) {
	b, err := Marshal(testFD(t).State())
	if err != nil {
		t.Fatal(err)
	}
	h, err := Peek(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind != KindFD || h.Version != Version || !h.ChecksumOK {
		t.Fatalf("unexpected header %+v", h)
	}
	if h.PayloadLen != uint64(len(b)-headerLen-trailerLen) {
		t.Fatalf("payload length %d != %d", h.PayloadLen, len(b)-headerLen-trailerLen)
	}
}
