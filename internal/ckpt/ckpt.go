// Package ckpt implements versioned, checksummed binary checkpoints
// for the stateful sketching structures: FrequentDirections,
// RankAdaptiveFD, PrioritySampler, the streaming ARAMS sketcher, and
// the online pipeline.Monitor. A checkpoint written mid-stream and
// restored on restart resumes the computation bit-for-bit — RNG
// positions included — which is what makes crash-restart invisible to
// the sketch's error guarantees.
//
// Frame layout (all integers little-endian):
//
//	offset 0   magic   "ACKP" (4 bytes)
//	offset 4   version uint32 (currently 2)
//	offset 8   kind    uint32 (which state type the payload holds)
//	offset 12  length  uint64 (payload byte count)
//	offset 20  payload (type-specific field stream, see codec.go)
//	offset 20+length   crc32  uint32 (IEEE, over bytes [0, 20+length))
//
// The decoder is fully bounds-checked and never panics on corrupt
// input: a flipped bit surfaces as ErrBadMagic, ErrVersion, ErrChecksum
// or a wrapped field-level error, never as a crash. Encoding is
// canonical — encode→decode→re-encode is byte-identical — so
// checkpoints can be compared and deduplicated by content.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Magic is the frame signature "ACKP".
const Magic = uint32('A') | uint32('C')<<8 | uint32('K')<<16 | uint32('P')<<24

// Version is the current frame version. Decoders accept every version
// up to and including this one — version 2 added the FD Frobenius-mass
// field (error-bound certificates) and the monitor's audit state, both
// decoded as absent from version-1 frames; version 3 replaced the
// monitor's single optional sketch with the streaming engine's
// positional shard-state list (a v1/v2 monitor frame decodes as a
// one-shard layout) — and reject frames from a newer version rather
// than guessing at their layout.
const Version = 3

// headerLen is magic+version+kind+length; trailerLen is the CRC.
const (
	headerLen  = 4 + 4 + 4 + 8
	trailerLen = 4
)

// maxPayload caps how large a frame's declared payload may be, so a
// corrupted length field cannot drive a multi-gigabyte allocation.
const maxPayload = 1 << 32

// Kind identifies which state type a frame's payload encodes.
type Kind uint32

const (
	KindFD           Kind = 1 // sketch.FDState
	KindRankAdaptive Kind = 2 // sketch.RankAdaptiveState
	KindPriority     Kind = 3 // sketch.PriorityState
	KindARAMS        Kind = 4 // sketch.ARAMSState
	KindMonitor      Kind = 5 // pipeline.MonitorState
)

// String names the kind for logs and the ckptinfo tool.
func (k Kind) String() string {
	switch k {
	case KindFD:
		return "frequent-directions"
	case KindRankAdaptive:
		return "rank-adaptive-fd"
	case KindPriority:
		return "priority-sampler"
	case KindARAMS:
		return "arams"
	case KindMonitor:
		return "monitor"
	default:
		return fmt.Sprintf("Kind(%d)", uint32(k))
	}
}

// Sentinel decode errors. Corruption of different frame regions maps
// to different sentinels so operators can tell a truncated file from a
// bit flip from a version skew.
var (
	ErrBadMagic  = errors.New("ckpt: bad magic (not a checkpoint frame)")
	ErrVersion   = errors.New("ckpt: unsupported frame version")
	ErrBadKind   = errors.New("ckpt: unknown state kind")
	ErrChecksum  = errors.New("ckpt: checksum mismatch (corrupt frame)")
	ErrTruncated = errors.New("ckpt: truncated frame")
)

// Header describes a frame without decoding its payload.
type Header struct {
	Version    uint32
	Kind       Kind
	PayloadLen uint64
	ChecksumOK bool
}

// Peek reads the frame header of b and verifies the checksum, without
// decoding the payload. It is the ckptinfo tool's entry point.
func Peek(b []byte) (Header, error) {
	if len(b) < headerLen+trailerLen {
		return Header{}, ErrTruncated
	}
	if binary.LittleEndian.Uint32(b[0:4]) != Magic {
		return Header{}, ErrBadMagic
	}
	h := Header{
		Version:    binary.LittleEndian.Uint32(b[4:8]),
		Kind:       Kind(binary.LittleEndian.Uint32(b[8:12])),
		PayloadLen: binary.LittleEndian.Uint64(b[12:20]),
	}
	if h.Version < 1 || h.Version > Version {
		return h, fmt.Errorf("%w: %d", ErrVersion, h.Version)
	}
	if h.PayloadLen > maxPayload || uint64(len(b)) != headerLen+h.PayloadLen+trailerLen {
		return h, ErrTruncated
	}
	body := headerLen + int(h.PayloadLen)
	h.ChecksumOK = crc32.ChecksumIEEE(b[:body]) == binary.LittleEndian.Uint32(b[body:body+trailerLen])
	if !h.ChecksumOK {
		return h, ErrChecksum
	}
	return h, nil
}

// frame wraps an encoded payload with the header and checksum.
func frame(kind Kind, payload []byte) []byte {
	out := make([]byte, headerLen+len(payload)+trailerLen)
	binary.LittleEndian.PutUint32(out[0:4], Magic)
	binary.LittleEndian.PutUint32(out[4:8], Version)
	binary.LittleEndian.PutUint32(out[8:12], uint32(kind))
	binary.LittleEndian.PutUint64(out[12:20], uint64(len(payload)))
	copy(out[headerLen:], payload)
	body := headerLen + len(payload)
	binary.LittleEndian.PutUint32(out[body:], crc32.ChecksumIEEE(out[:body]))
	return out
}

// unframe validates the header and checksum and returns the header and
// payload bytes (the header carries the frame version the decoder
// branches on for pre-v2 layouts).
func unframe(b []byte) (Header, []byte, error) {
	h, err := Peek(b)
	if err != nil {
		return Header{}, nil, err
	}
	return h, b[headerLen : headerLen+int(h.PayloadLen)], nil
}

// Encode writes state as one checkpoint frame to w. See Marshal for
// the accepted types.
func Encode(w io.Writer, state any) error {
	b, err := Marshal(state)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// Decode reads one checkpoint frame from r and returns the restored
// state (same pointer types Unmarshal returns).
func Decode(r io.Reader) (any, error) {
	b, err := io.ReadAll(io.LimitReader(r, headerLen+maxPayload+trailerLen+1))
	if err != nil {
		return nil, err
	}
	return Unmarshal(b)
}

// --- primitive field stream ---
//
// Payloads are flat streams of little-endian primitives in a fixed
// field order per type. The encoder builds a byte slice; the decoder
// walks it with a sticky error and hard bounds checks, so corrupt
// declared lengths fail cleanly instead of panicking or allocating
// unbounded memory.

type enc struct{ b []byte }

func (e *enc) u8(v uint8)    { e.b = append(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int)     { e.u64(uint64(int64(v))) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// floats writes a length-prefixed []float64.
func (e *enc) floats(v []float64) {
	e.i64(len(v))
	for _, x := range v {
		e.f64(x)
	}
}

// str writes a length-prefixed UTF-8 string (added in frame version 2
// for the audit journal).
func (e *enc) str(v string) {
	e.i64(len(v))
	e.b = append(e.b, v...)
}

type dec struct {
	b   []byte
	off int
	err error
	// ver is the frame version being decoded; fields added in later
	// versions are skipped when decoding older frames.
	ver uint32
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("ckpt: "+format, args...)
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off+1 > len(d.b) {
		d.fail("truncated payload at offset %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail("truncated payload at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int     { return int(int64(d.u64())) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *dec) bool() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid bool byte at offset %d", d.off-1)
		return false
	}
}

// count reads a non-negative element count and verifies that `count ×
// elemBytes` elements could still fit in the remaining payload before
// the caller allocates for them.
func (d *dec) count(elemBytes int) int {
	n := d.i64()
	if d.err != nil {
		return 0
	}
	if n < 0 || elemBytes > 0 && n > (len(d.b)-d.off)/elemBytes {
		d.fail("implausible element count %d at offset %d", n, d.off-8)
		return 0
	}
	return n
}

// floats reads a length-prefixed []float64. A zero-length slice
// decodes to nil so re-encoding is byte-identical regardless of how
// the producer spelled "empty".
func (d *dec) floats() []float64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// str reads a length-prefixed string.
func (d *dec) str() string {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return ""
	}
	v := string(d.b[d.off : d.off+n])
	d.off += n
	return v
}

// finish verifies the whole payload was consumed — trailing garbage
// means a layout mismatch even when the checksum passes.
func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("ckpt: %d trailing payload bytes", len(d.b)-d.off)
	}
	return nil
}
