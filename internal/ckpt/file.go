package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"arams/internal/obs"
)

// Checkpoint-file observability: save/restore counts and failures,
// the size of the last frame written, and the save latency (which an
// operator watches to size the checkpoint interval).
var (
	obsSaves         = obs.Default().Counter("arams_ckpt_saves_total")
	obsSaveErrors    = obs.Default().Counter("arams_ckpt_save_errors_total")
	obsRestores      = obs.Default().Counter("arams_ckpt_restores_total")
	obsRestoreErrors = obs.Default().Counter("arams_ckpt_restore_errors_total")
	obsBytes         = obs.Default().Gauge("arams_ckpt_last_bytes")
	obsSaveSeconds   = obs.Default().Histogram("arams_ckpt_save_seconds")
)

// Save atomically writes state as a checkpoint file: the frame goes to
// a temporary file in the same directory, is fsynced, and is renamed
// over path, so a crash mid-save leaves either the old checkpoint or
// the new one — never a torn file. The containing directory is synced
// best-effort so the rename itself survives a power cut.
func Save(path string, state any) error {
	start := time.Now()
	err := save(path, state)
	if err != nil {
		obsSaveErrors.Inc()
		return err
	}
	obsSaves.Inc()
	obsSaveSeconds.Observe(time.Since(start).Seconds())
	return nil
}

func save(path string, state any) error {
	b, err := Marshal(state)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ckpt: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: syncing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: closing %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("ckpt: committing %s: %w", path, err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() // not all filesystems support directory fsync; best-effort
		d.Close()
	}
	obsBytes.SetInt(len(b))
	return nil
}

// Load reads and decodes a checkpoint file written by Save. See
// Unmarshal for the returned types.
func Load(path string) (any, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		obsRestoreErrors.Inc()
		return nil, err
	}
	state, err := Unmarshal(b)
	if err != nil {
		obsRestoreErrors.Inc()
		return nil, fmt.Errorf("ckpt: decoding %s: %w", path, err)
	}
	obsRestores.Inc()
	return state, nil
}
