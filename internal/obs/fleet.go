package obs

// Fleet aggregation: a coordinator-side merged view of many remote
// registries. Each fabric worker snapshots its own Registry as a
// RegistrySnapshot (JSON over the MsgStatsReq/MsgStats RPC); the
// coordinator feeds the snapshots into a FleetView, which serves the
// merged fleet — every series re-labeled with worker="<name>" — as
// HTML, JSON, or Prometheus text on /fleetz. The merged exposition is
// built to pass ValidateExposition: one TYPE per name, unique series
// keys, complete histogram families; snapshots that would violate
// those invariants (a name registered as a different kind on another
// worker, a colliding series) are skipped rather than emitted broken.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// MetricPoint is one scalar metric (counter or gauge) in a registry
// snapshot.
type MetricPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistogramPoint is one histogram in a registry snapshot, carried as
// raw buckets so the merged view can re-render cumulative series
// without losing resolution.
type HistogramPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Bounds []float64         `json:"bounds,omitempty"`
	Counts []uint64          `json:"counts,omitempty"`
	Sum    float64           `json:"sum"`
	Count  uint64            `json:"count"`
}

// RegistrySnapshot is a point-in-time export of a whole registry —
// the fleet-metrics payload a worker ships to its coordinator. It is
// plain data, safe to marshal as JSON.
type RegistrySnapshot struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	RingLen       int              `json:"ring_len"`
	RingCap       int              `json:"ring_cap"`
	Counters      []MetricPoint    `json:"counters,omitempty"`
	Gauges        []MetricPoint    `json:"gauges,omitempty"`
	Histograms    []HistogramPoint `json:"histograms,omitempty"`
}

// Export snapshots every metric in the registry as plain data.
func (r *Registry) Export() RegistrySnapshot {
	snap := RegistrySnapshot{
		UptimeSeconds: r.Uptime().Seconds(),
		RingLen:       r.RingLen(),
		RingCap:       r.RingCap(),
	}
	r.each(func(m interface{}) {
		md := metaOf(m)
		switch v := m.(type) {
		case *Counter:
			snap.Counters = append(snap.Counters, MetricPoint{
				Name: md.name, Labels: labelMap(md), Value: jsonSafe(v.Value())})
		case *Gauge:
			snap.Gauges = append(snap.Gauges, MetricPoint{
				Name: md.name, Labels: labelMap(md), Value: jsonSafe(v.Value())})
		case *Histogram:
			s := v.Snapshot()
			snap.Histograms = append(snap.Histograms, HistogramPoint{
				Name: md.name, Labels: labelMap(md),
				Bounds: s.Bounds, Counts: s.Counts,
				Sum: jsonSafe(s.Sum), Count: s.Count,
			})
		}
	})
	return snap
}

// DefaultFleetTTL is how long a worker snapshot stays fresh without an
// update before the fleet view declares the worker stale.
const DefaultFleetTTL = 15 * time.Second

// FleetView merges per-worker registry snapshots into one fleet-wide
// view. Remote workers push snapshots with Update (the fabric's
// heartbeat loop does this); local registries — typically the
// coordinator's own — are attached once with IncludeLocal and
// re-snapshotted live on every render. Workers whose last update is
// older than the TTL are reported stale: their series drop out of the
// merged exposition (a dead worker's counters would otherwise freeze
// at their last values forever), while their age stays visible via
// arams_fleet_worker_age_seconds.
type FleetView struct {
	ttl time.Duration

	mu     sync.Mutex
	remote map[string]*fleetEntry
	local  map[string]*Registry
}

type fleetEntry struct {
	snap RegistrySnapshot
	at   time.Time
}

// NewFleetView creates an empty fleet view; ttl <= 0 selects
// DefaultFleetTTL.
func NewFleetView(ttl time.Duration) *FleetView {
	if ttl <= 0 {
		ttl = DefaultFleetTTL
	}
	return &FleetView{
		ttl:    ttl,
		remote: make(map[string]*fleetEntry),
		local:  make(map[string]*Registry),
	}
}

// Update stores (or replaces) the snapshot for a remote worker and
// refreshes its liveness clock.
func (v *FleetView) Update(worker string, snap RegistrySnapshot) {
	v.mu.Lock()
	v.remote[worker] = &fleetEntry{snap: snap, at: time.Now()}
	v.mu.Unlock()
}

// IncludeLocal attaches an in-process registry under the given worker
// name; it is re-exported live on every render and is never stale.
func (v *FleetView) IncludeLocal(worker string, r *Registry) {
	v.mu.Lock()
	v.local[worker] = r
	v.mu.Unlock()
}

// fleetMember is one worker's state at render time.
type fleetMember struct {
	name  string
	snap  RegistrySnapshot
	age   time.Duration
	stale bool
}

func (v *FleetView) members() []fleetMember {
	v.mu.Lock()
	out := make([]fleetMember, 0, len(v.remote)+len(v.local))
	for name, r := range v.local {
		out = append(out, fleetMember{name: name, snap: r.Export()})
	}
	now := time.Now()
	for name, e := range v.remote {
		age := now.Sub(e.at)
		out = append(out, fleetMember{name: name, snap: e.snap, age: age, stale: age > v.ttl})
	}
	v.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].name < out[b].name })
	return out
}

// Workers returns the member names currently known to the view,
// sorted.
func (v *FleetView) Workers() []string {
	ms := v.members()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.name
	}
	return names
}

// renderLabels renders a canonical {k="v",...} block (keys sorted,
// values escaped); empty input renders "".
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ls := make([]Label, len(keys))
	for i, k := range keys {
		ls[i] = L(k, labels[k])
	}
	tmp := meta{labels: ls}
	return tmp.labelString()
}

// workerLabels returns the series labels with the worker identity
// added — unless the snapshot already labeled the series with a
// worker (the coordinator's own fabric metrics do), which is kept.
func workerLabels(labels map[string]string, worker string) map[string]string {
	out := make(map[string]string, len(labels)+1)
	for k, val := range labels {
		out[k] = val
	}
	if _, ok := out["worker"]; !ok {
		out["worker"] = worker
	}
	return out
}

// mergedName accumulates one metric name's samples across the fleet.
type mergedName struct {
	kind  string
	lines []string
}

// WritePrometheus writes the merged fleet in the Prometheus text
// format. Stale workers contribute only their age/up series. The
// output always passes ValidateExposition: kind collisions across
// workers skip the later worker's series, and duplicate series keys
// (possible when a snapshot already carried a worker label) are
// dropped.
func (v *FleetView) WritePrometheus(w io.Writer) {
	ms := v.members()

	names := make(map[string]*mergedName)
	get := func(name, kind string) *mergedName {
		m, ok := names[name]
		if !ok {
			m = &mergedName{kind: kind}
			names[name] = m
		}
		if m.kind != kind {
			return nil // kind collision: first registration wins
		}
		return m
	}
	seen := make(map[string]bool)

	// Liveness series for every member, fresh or stale.
	for _, mem := range ms {
		l := renderLabels(map[string]string{"worker": mem.name})
		if m := get("arams_fleet_worker_up", "gauge"); m != nil {
			up := 1
			if mem.stale {
				up = 0
			}
			key := "arams_fleet_worker_up" + l
			if !seen[key] {
				seen[key] = true
				m.lines = append(m.lines, fmt.Sprintf("arams_fleet_worker_up%s %d", l, up))
			}
		}
		if m := get("arams_fleet_worker_age_seconds", "gauge"); m != nil {
			key := "arams_fleet_worker_age_seconds" + l
			if !seen[key] {
				seen[key] = true
				m.lines = append(m.lines, fmt.Sprintf("arams_fleet_worker_age_seconds%s %s",
					l, fmtFloat(mem.age.Seconds())))
			}
		}
	}

	for _, mem := range ms {
		if mem.stale {
			continue
		}
		scalar := func(kind string, p MetricPoint) {
			m := get(p.Name, kind)
			if m == nil {
				return
			}
			l := renderLabels(workerLabels(p.Labels, mem.name))
			key := p.Name + l
			if seen[key] {
				return
			}
			seen[key] = true
			m.lines = append(m.lines, fmt.Sprintf("%s%s %s", p.Name, l, fmtFloat(p.Value)))
		}
		for _, c := range mem.snap.Counters {
			scalar("counter", c)
		}
		for _, g := range mem.snap.Gauges {
			scalar("gauge", g)
		}
		for _, h := range mem.snap.Histograms {
			m := get(h.Name, "histogram")
			if m == nil {
				continue
			}
			labels := workerLabels(h.Labels, mem.name)
			base := renderLabels(labels)
			key := h.Name + base
			if seen[key] {
				continue
			}
			seen[key] = true
			var cum uint64
			for i, c := range h.Counts {
				cum += c
				le := "+Inf"
				if i < len(h.Bounds) {
					le = fmtFloat(h.Bounds[i])
				}
				withLE := workerLabels(labels, mem.name)
				withLE["le"] = le
				m.lines = append(m.lines, fmt.Sprintf("%s_bucket%s %d", h.Name, renderLabels(withLE), cum))
			}
			m.lines = append(m.lines, fmt.Sprintf("%s_sum%s %s", h.Name, base, fmtFloat(h.Sum)))
			m.lines = append(m.lines, fmt.Sprintf("%s_count%s %d", h.Name, base, h.Count))
		}
	}

	order := make([]string, 0, len(names))
	for name := range names {
		order = append(order, name)
	}
	sort.Strings(order)
	for _, name := range order {
		m := names[name]
		if len(m.lines) == 0 {
			continue
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", name, m.kind)
		for _, line := range m.lines {
			fmt.Fprintln(w, line)
		}
	}
}

// FleetMember is one worker in the /fleetz?format=json payload.
type FleetMember struct {
	Name       string           `json:"name"`
	AgeSeconds float64          `json:"age_seconds"`
	Stale      bool             `json:"stale"`
	Snapshot   RegistrySnapshot `json:"snapshot"`
}

// FleetzPayload is the JSON document /fleetz?format=json serves.
type FleetzPayload struct {
	Workers []FleetMember `json:"workers"`
}

// ServeHTTP renders the fleet: HTML by default, ?format=json for the
// raw merged snapshots, ?format=prom for the merged Prometheus
// exposition.
func (v *FleetView) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	switch req.URL.Query().Get("format") {
	case "prom":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		v.WritePrometheus(w)
	case "json":
		w.Header().Set("Content-Type", "application/json")
		payload := FleetzPayload{Workers: []FleetMember{}}
		for _, m := range v.members() {
			payload.Workers = append(payload.Workers, FleetMember{
				Name: m.name, AgeSeconds: m.age.Seconds(), Stale: m.stale, Snapshot: m.snap})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(payload)
	default:
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		v.writeHTML(w)
	}
}

func (v *FleetView) writeHTML(w io.Writer) {
	fmt.Fprint(w, `<!doctype html><meta charset="utf-8"><title>fleetz</title>
<style>body{font:14px/1.5 system-ui,sans-serif;margin:2rem}table{border-collapse:collapse}
td,th{border:1px solid #ccc;padding:.3rem .7rem;text-align:left}.stale{color:#b00}</style>
<h1>Fleet</h1>
<p><a href="?format=prom">prometheus</a> · <a href="?format=json">json</a></p>
<table><tr><th>worker</th><th>age</th><th>uptime</th><th>counters</th><th>gauges</th><th>histograms</th><th>ring</th></tr>
`)
	for _, m := range v.members() {
		cls := ""
		if m.stale {
			cls = ` class="stale"`
		}
		age := "live"
		if m.age > 0 {
			age = m.age.Truncate(time.Millisecond).String()
		}
		fmt.Fprintf(w, "<tr%s><td>%s</td><td>%s</td><td>%.1fs</td><td>%d</td><td>%d</td><td>%d</td><td>%d/%d</td></tr>\n",
			cls, m.name, age, m.snap.UptimeSeconds,
			len(m.snap.Counters), len(m.snap.Gauges), len(m.snap.Histograms),
			m.snap.RingLen, m.snap.RingCap)
	}
	fmt.Fprint(w, "</table>\n")
}
