package obs

import (
	"sync"
	"time"
)

// StageHistogramName is the histogram every span records into, with a
// stage="<span name>" label — so /metrics carries one duration
// histogram per pipeline stage.
const StageHistogramName = "arams_stage_duration_seconds"

const defaultRingCap = 256

// Span measures one timed unit of work (a pipeline stage, a merge
// round, a snapshot). Obtain with StartSpan, finish with End.
type Span struct {
	r     *Registry
	name  string
	start time.Time
}

// StartSpan begins a span on the registry.
func (r *Registry) StartSpan(name string) Span {
	return Span{r: r, name: name, start: time.Now()}
}

// StartSpan begins a span on the default registry.
func StartSpan(name string) Span { return Default().StartSpan(name) }

// End finishes the span: the duration is recorded into the per-stage
// histogram and appended to the in-memory trace ring. It returns the
// measured duration so callers can reuse it for their own accounting.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	if s.r == nil {
		return d
	}
	s.r.Histogram(StageHistogramName, L("stage", s.name)).Observe(d.Seconds())
	s.r.ring.add(SpanRecord{Name: s.name, Start: s.start, Duration: d})
	return d
}

// SpanRecord is one completed span held in the trace ring.
type SpanRecord struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
}

// Spans returns the most recently completed spans, newest first, up to
// the ring capacity.
func (r *Registry) Spans() []SpanRecord { return r.ring.snapshot() }

// spanRing is a fixed-capacity ring of completed spans.
type spanRing struct {
	mu   sync.Mutex
	buf  []SpanRecord
	next int
	n    int
}

func newSpanRing(capacity int) spanRing {
	return spanRing{buf: make([]SpanRecord, capacity)}
}

func (sr *spanRing) add(rec SpanRecord) {
	sr.mu.Lock()
	sr.buf[sr.next] = rec
	sr.next = (sr.next + 1) % len(sr.buf)
	if sr.n < len(sr.buf) {
		sr.n++
	}
	sr.mu.Unlock()
}

func (sr *spanRing) snapshot() []SpanRecord {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	out := make([]SpanRecord, 0, sr.n)
	for i := 0; i < sr.n; i++ {
		idx := (sr.next - 1 - i + len(sr.buf)) % len(sr.buf)
		out = append(out, sr.buf[idx])
	}
	return out
}

func (sr *spanRing) reset() {
	sr.mu.Lock()
	sr.next, sr.n = 0, 0
	sr.mu.Unlock()
}
