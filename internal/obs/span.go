package obs

import (
	"sync"
	"time"
)

// StageHistogramName is the wall-time histogram every span records
// into, with a stage="<span name>" label — so /metrics carries one
// duration histogram per pipeline stage.
const StageHistogramName = "arams_stage_duration_seconds"

// StageCPUHistogramName is the CPU-time companion: spans that carry a
// CPU measurement (see Span.SetCPU and StartCPUTimer) record it here
// under the same stage label, so /metrics answers "how much of that
// wall time was actually compute" per stage.
const StageCPUHistogramName = "arams_stage_cpu_seconds"

// DefaultRingCap is the span-ring capacity NewRegistry selects.
const DefaultRingCap = 256

// Span measures one timed unit of work (a pipeline stage, a merge
// round, a snapshot). Obtain with StartSpan/StartTrace/StartChild,
// finish with End. A span started from a trace root (or from another
// traced span) carries the trace identity, so completed spans
// reassemble into parent-child trees on /tracez.
type Span struct {
	r     *Registry
	name  string
	start time.Time

	trace  ID
	id     ID
	parent ID
	attrs  []Label
	cpu    time.Duration
}

// SpanContext is the portable identity of a live span: enough to
// parent further spans to it from another goroutine or package. The
// zero SpanContext means "no trace".
type SpanContext struct {
	Trace ID `json:"trace_id"`
	Span  ID `json:"span_id"`
}

// Context returns the span's identity for cross-goroutine propagation.
func (s *Span) Context() SpanContext { return SpanContext{Trace: s.trace, Span: s.id} }

// SetAttr attaches (or appends) a key/value attribute to the span; it
// must be called before End.
func (s *Span) SetAttr(key, value string) { s.attrs = append(s.attrs, L(key, value)) }

// SetCPU attaches a measured CPU time to the span (see StartCPUTimer);
// End records it into the per-stage CPU histogram next to wall time.
func (s *Span) SetCPU(d time.Duration) { s.cpu = d }

// StartSpan begins an untraced span on the registry — it records into
// the stage histogram and the span ring but joins no trace tree.
func (r *Registry) StartSpan(name string, attrs ...Label) Span {
	return Span{r: r, name: name, start: time.Now(), attrs: attrs}
}

// StartSpan begins an untraced span on the default registry.
func StartSpan(name string, attrs ...Label) Span { return Default().StartSpan(name, attrs...) }

// StartTrace begins a new trace: the returned span is the trace root,
// and children started from it (directly or via its Context) share its
// TraceID. The trace is finalized for /tracez when the root ends.
func (r *Registry) StartTrace(name string, attrs ...Label) Span {
	return Span{r: r, name: name, start: time.Now(), trace: newID(), id: newID(), attrs: attrs}
}

// StartTrace begins a new trace on the default registry.
func StartTrace(name string, attrs ...Label) Span { return Default().StartTrace(name, attrs...) }

// StartChild begins a span parented to s, in the same trace. Safe to
// call from a different goroutine than the one that started s, as long
// as s has not ended.
func (s *Span) StartChild(name string, attrs ...Label) Span {
	return s.StartChildSince(time.Now(), name, attrs...)
}

// StartChildSince is StartChild with an explicit start time — for
// retroactive spans whose beginning was recorded before the trace
// existed (e.g. the enqueue timestamp of a frame that waited in the
// ingest queue).
func (s *Span) StartChildSince(start time.Time, name string, attrs ...Label) Span {
	sp := Span{r: s.r, name: name, start: start, attrs: attrs}
	if s.trace != 0 {
		sp.trace, sp.id, sp.parent = s.trace, newID(), s.id
	}
	return sp
}

// StartSpanIn begins a span under the given parent context: a child of
// that span when the context carries a trace, or a fresh trace root
// when it is the zero SpanContext. This is the cross-package
// propagation entry point (engine → parallel merge legs).
func (r *Registry) StartSpanIn(parent SpanContext, name string, attrs ...Label) Span {
	if parent.Trace == 0 {
		return r.StartTrace(name, attrs...)
	}
	return Span{r: r, name: name, start: time.Now(),
		trace: parent.Trace, id: newID(), parent: parent.Span, attrs: attrs}
}

// StartSpanIn begins a span under parent on the default registry.
func StartSpanIn(parent SpanContext, name string, attrs ...Label) Span {
	return Default().StartSpanIn(parent, name, attrs...)
}

// End finishes the span: the duration is recorded into the per-stage
// histogram (plus the CPU histogram when SetCPU was called), and the
// completed record is appended to the in-memory trace ring, the trace
// store, and the flight recorder when one is armed. It returns the
// measured duration so callers can reuse it for their own accounting.
func (s *Span) End() time.Duration {
	rec := s.endRecord()
	return rec.Duration
}

// EndRecord is End for callers that also need the completed record —
// e.g. a fabric worker that finishes a span locally and then ships the
// record back to the coordinator on the RPC ack path so the
// coordinator can stitch it into its own trace tree.
func (s *Span) EndRecord() SpanRecord { return s.endRecord() }

func (s *Span) endRecord() SpanRecord {
	d := time.Since(s.start)
	rec := SpanRecord{
		Name:     s.name,
		Start:    s.start,
		Duration: d,
		Trace:    s.trace,
		Span:     s.id,
		Parent:   s.parent,
		CPU:      s.cpu,
		Attrs:    attrMap(s.attrs),
	}
	if s.r == nil {
		return rec
	}
	h := s.r.stageHandles(s.name)
	h.wall.Observe(d.Seconds())
	if s.cpu > 0 {
		h.cpuHist().Observe(s.cpu.Seconds())
	}
	s.r.ring.add(rec)
	if s.trace != 0 {
		s.r.traces.observe(rec)
	}
	if fr := s.r.flight.Load(); fr != nil {
		fr.addSpan(rec)
	}
	return rec
}

// ObserveRemoteSpan feeds a span record completed in *another process*
// (shipped here over the fabric ack path) into this registry's span
// ring, trace store, and flight recorder, so cross-process traces
// render as one tree on /tracez. The record is NOT billed to the stage
// histograms: the remote process already recorded its own wall/CPU
// time, and double-counting it here would corrupt the local stage
// metrics.
func (r *Registry) ObserveRemoteSpan(rec SpanRecord) {
	r.ring.add(rec)
	if rec.Trace != 0 {
		r.traces.observe(rec)
	}
	if fr := r.flight.Load(); fr != nil {
		fr.addSpan(rec)
	}
}

func attrMap(attrs []Label) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// SpanRecord is one completed span held in the trace ring. Trace,
// Span, and Parent are zero for untraced spans; CPU is zero when no
// CPU measurement was attached.
type SpanRecord struct {
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration"`
	Trace    ID                `json:"trace_id,omitempty"`
	Span     ID                `json:"span_id,omitempty"`
	Parent   ID                `json:"parent_id,omitempty"`
	CPU      time.Duration     `json:"cpu,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Spans returns the most recently completed spans, newest first, up to
// the ring capacity.
func (r *Registry) Spans() []SpanRecord { return r.ring.snapshot() }

// RingLen returns how many completed spans the ring currently holds
// (occupancy, not capacity) — a cheap health signal workers report in
// fabric heartbeats.
func (r *Registry) RingLen() int { return r.ring.len() }

// spanRing is a fixed-capacity ring of completed spans.
type spanRing struct {
	mu   sync.Mutex
	buf  []SpanRecord
	next int
	n    int
}

func newSpanRing(capacity int) spanRing {
	if capacity < 1 {
		capacity = DefaultRingCap
	}
	return spanRing{buf: make([]SpanRecord, capacity)}
}

func (sr *spanRing) add(rec SpanRecord) {
	sr.mu.Lock()
	sr.buf[sr.next] = rec
	sr.next = (sr.next + 1) % len(sr.buf)
	if sr.n < len(sr.buf) {
		sr.n++
	}
	sr.mu.Unlock()
}

func (sr *spanRing) snapshot() []SpanRecord {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	out := make([]SpanRecord, 0, sr.n)
	for i := 0; i < sr.n; i++ {
		idx := (sr.next - 1 - i + len(sr.buf)) % len(sr.buf)
		out = append(out, sr.buf[idx])
	}
	return out
}

func (sr *spanRing) setCap(capacity int) {
	if capacity < 1 {
		capacity = DefaultRingCap
	}
	sr.mu.Lock()
	sr.buf = make([]SpanRecord, capacity)
	sr.next, sr.n = 0, 0
	sr.mu.Unlock()
}

func (sr *spanRing) len() int {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return sr.n
}

func (sr *spanRing) capacity() int {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return len(sr.buf)
}

func (sr *spanRing) reset() {
	sr.mu.Lock()
	sr.next, sr.n = 0, 0
	sr.mu.Unlock()
}
