package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderDumpCooldownAndClose(t *testing.T) {
	r := NewRegistry()
	dir := t.TempDir()
	fr, err := r.ArmFlightRecorder(FlightConfig{
		Dir:         dir,
		SampleEvery: 5 * time.Millisecond,
		Cooldown:    time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()

	r.Counter("test_flight_events_total").Add(3)
	sp := r.StartSpan("flight_stage")
	sp.End()
	// Let the sampler capture at least one metric snapshot.
	deadline := time.Now().Add(2 * time.Second)
	for {
		fr.mu.Lock()
		n := len(fr.samples)
		fr.mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	path := r.FlightTrigger("unit test!")
	if path == "" {
		t.Fatal("trigger produced no dump")
	}
	if !strings.Contains(path, "unit_test_") {
		t.Fatalf("reason not sanitized into filename: %s", path)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var kinds []string
	var last flightEntry
	var sawStageSpan, sawCounterDelta bool
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e flightEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("dump line is not valid JSON: %v: %s", err, sc.Text())
		}
		kinds = append(kinds, e.Kind)
		last = e
		if e.Kind == "span" && e.Span != nil && e.Span.Name == "flight_stage" {
			sawStageSpan = true
		}
		if e.Kind == "sample" {
			if _, ok := e.Metrics["Δtest_flight_events_total"]; ok {
				sawCounterDelta = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawStageSpan {
		t.Fatalf("dump is missing the completed span; kinds seen: %v", kinds)
	}
	if !sawCounterDelta {
		t.Fatal("dump samples are missing the counter delta")
	}
	if last.Kind != "trigger" || last.Reason != "unit test!" {
		t.Fatalf("last entry = %+v, want the trigger with its raw reason", last)
	}

	// Inside the cooldown: counted, suppressed, no second file.
	if p2 := r.FlightTrigger("again"); p2 != "" {
		t.Fatalf("trigger inside cooldown wrote %s", p2)
	}
	if fr.Dumps() != 1 {
		t.Fatalf("Dumps() = %d, want 1", fr.Dumps())
	}
	if v := r.Counter("arams_flight_triggers_suppressed_total").Value(); v != 1 {
		t.Fatalf("suppressed counter = %v, want 1", v)
	}

	fr.Close()
	if p3 := r.FlightTrigger("after close"); p3 != "" {
		t.Fatalf("trigger after Close wrote %s", p3)
	}
}

func TestFlightTriggerUnarmed(t *testing.T) {
	r := NewRegistry()
	if p := r.FlightTrigger("nothing armed"); p != "" {
		t.Fatalf("unarmed trigger returned %q", p)
	}
}

func TestFlightRecorderNeedsDir(t *testing.T) {
	if _, err := NewRegistry().ArmFlightRecorder(FlightConfig{}); err == nil {
		t.Fatal("ArmFlightRecorder accepted an empty dump directory")
	}
}
