package obs

import (
	"encoding/json"
	"testing"
	"time"
)

func TestTracePropagationParentChain(t *testing.T) {
	r := NewRegistry()
	root := r.StartTrace("root")
	child := root.StartChild("child")
	grand := child.StartChild("grand")
	grand.End()
	child.End()
	root.End()

	tr, ok := r.TraceByID(root.Context().Trace)
	if !ok {
		t.Fatal("completed trace not retained")
	}
	if tr.Root != "root" {
		t.Fatalf("root = %q, want root", tr.Root)
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(tr.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, sp := range tr.Spans {
		if sp.Trace != tr.Trace {
			t.Fatalf("span %s carries trace %s, want %s", sp.Name, sp.Trace, tr.Trace)
		}
		byName[sp.Name] = sp
	}
	if byName["root"].Parent != 0 {
		t.Fatal("root span has a parent")
	}
	if byName["child"].Parent != byName["root"].Span {
		t.Fatal("child does not parent to root")
	}
	if byName["grand"].Parent != byName["child"].Span {
		t.Fatal("grand does not parent to child")
	}
}

func TestStartSpanInPropagatesAcrossContext(t *testing.T) {
	r := NewRegistry()
	root := r.StartTrace("root")
	ctx := root.Context()

	done := make(chan struct{})
	go func() {
		defer close(done)
		leg := r.StartSpanIn(ctx, "leg")
		leg.End()
	}()
	<-done
	root.End()

	tr, ok := r.TraceByID(ctx.Trace)
	if !ok {
		t.Fatal("trace not retained")
	}
	var leg *SpanRecord
	for i := range tr.Spans {
		if tr.Spans[i].Name == "leg" {
			leg = &tr.Spans[i]
		}
	}
	if leg == nil {
		t.Fatal("cross-goroutine leg span missing from trace")
	}
	if leg.Parent != ctx.Span {
		t.Fatalf("leg parent = %s, want %s", leg.Parent, ctx.Span)
	}
}

func TestStartSpanInZeroContextStartsFreshTrace(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpanIn(SpanContext{}, "solo")
	sp.End()
	tr, ok := r.TraceByID(sp.Context().Trace)
	if !ok {
		t.Fatal("standalone StartSpanIn did not open a trace")
	}
	if tr.Root != "solo" || len(tr.Spans) != 1 {
		t.Fatalf("got root %q with %d spans, want solo with 1", tr.Root, len(tr.Spans))
	}
}

func TestStartChildSinceRetroactiveStart(t *testing.T) {
	r := NewRegistry()
	root := r.StartTrace("root")
	enqueued := time.Now().Add(-50 * time.Millisecond)
	qw := root.StartChildSince(enqueued, "queue_wait")
	if d := qw.End(); d < 50*time.Millisecond {
		t.Fatalf("retroactive span measured %v, want >= 50ms", d)
	}
	root.End()
	tr, _ := r.TraceByID(root.Context().Trace)
	for _, sp := range tr.Spans {
		if sp.Name == "queue_wait" && !sp.Start.Equal(enqueued) {
			t.Fatalf("queue_wait start = %v, want %v", sp.Start, enqueued)
		}
	}
}

func TestUntracedSpanJoinsNoTrace(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("plain")
	sp.End()
	if got := len(r.Traces()); got != 0 {
		t.Fatalf("untraced span produced %d trace(s)", got)
	}
	if got := len(r.Spans()); got != 1 {
		t.Fatalf("span ring holds %d record(s), want 1", got)
	}
}

func TestIDJSONRoundTrip(t *testing.T) {
	for _, id := range []ID{0, 1, 0xdeadbeef, ID(1) << 63} {
		b, err := json.Marshal(id)
		if err != nil {
			t.Fatal(err)
		}
		if id == 0 && string(b) != `""` {
			t.Fatalf("zero ID marshals %s, want \"\"", b)
		}
		var back ID
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != id {
			t.Fatalf("round trip %v -> %s -> %v", id, b, back)
		}
	}
	var bad ID
	if err := json.Unmarshal([]byte(`"not hex"`), &bad); err == nil {
		t.Fatal("non-hex ID string unmarshaled without error")
	}
}

func TestRingCapConfigurable(t *testing.T) {
	r := NewRegistrySized(8)
	if r.RingCap() != 8 {
		t.Fatalf("NewRegistrySized(8).RingCap() = %d", r.RingCap())
	}
	r.SetRingCap(4)
	if r.RingCap() != 4 {
		t.Fatalf("after SetRingCap(4), RingCap() = %d", r.RingCap())
	}
	for i := 0; i < 10; i++ {
		sp := r.StartSpan("s")
		sp.End()
	}
	if got := len(r.Spans()); got != 4 {
		t.Fatalf("ring holds %d spans, want 4", got)
	}
	if NewRegistry().RingCap() != DefaultRingCap {
		t.Fatal("NewRegistry did not select DefaultRingCap")
	}
}

func TestResetClearsTraceState(t *testing.T) {
	r := NewRegistry()
	root := r.StartTrace("root")
	child := root.StartChild("child")
	child.End()
	root.End()
	if len(r.Traces()) == 0 {
		t.Fatal("precondition: no trace retained")
	}
	r.Reset()
	if got := len(r.Traces()); got != 0 {
		t.Fatalf("Reset left %d trace(s)", got)
	}
	if got := len(r.Spans()); got != 0 {
		t.Fatalf("Reset left %d ring span(s)", got)
	}
	// The stage-handle cache must be invalidated too: a span ended after
	// Reset re-registers its histogram instead of observing into a
	// handle the Reset discarded.
	sp := r.StartSpan("root")
	sp.End()
	if n := r.Histogram(StageHistogramName, L("stage", "root")).Count(); n != 1 {
		t.Fatalf("post-Reset span recorded %d observations, want 1", n)
	}
}

func TestTraceRetentionKeepsSlowAndRecent(t *testing.T) {
	var ts traceStore
	base := time.Now()
	const total = 200
	slowIdx := 57
	for i := 0; i < total; i++ {
		dur := time.Millisecond
		if i == slowIdx {
			dur = 10 * time.Second
		}
		ts.observe(SpanRecord{
			Name:     "root",
			Start:    base.Add(time.Duration(i) * time.Millisecond),
			Duration: dur,
			Trace:    ID(i + 1),
			Span:     ID(1000 + i),
		})
	}
	snap := ts.snapshot()
	if len(snap) > traceSlowKeep+traceSampleKeep+traceRecentKeep {
		t.Fatalf("snapshot holds %d traces, want <= %d",
			len(snap), traceSlowKeep+traceSampleKeep+traceRecentKeep)
	}
	var slow, newest *TraceRecord
	for i := range snap {
		if snap[i].Trace == ID(slowIdx+1) {
			slow = &snap[i]
		}
		if snap[i].Trace == ID(total) {
			newest = &snap[i]
		}
	}
	if slow == nil {
		t.Fatal("the 10s outlier trace was evicted — newest-first-only retention")
	}
	if slow.Retained != "slow" {
		t.Fatalf("outlier retained as %q, want slow", slow.Retained)
	}
	if newest == nil {
		t.Fatal("the newest trace was evicted")
	}
}
