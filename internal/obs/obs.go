// Package obs is the repository's stdlib-only observability layer: a
// process-global registry of counters, gauges, and histograms (with
// streaming quantile estimates), plus lightweight span tracing that
// feeds per-stage duration histograms and an in-memory trace ring.
//
// The paper's system is an *online* monitor — frames stream through
// preprocess → ARAMS sketch → merge → PCA → UMAP → OPTICS/ABOD at the
// machine repetition rate — so the pipeline itself must be observable
// while it runs. Every hot layer of this repository records into the
// default registry, and cmd/lclsmon / cmd/lclssim expose it over HTTP
// (see Handler): Prometheus text at /metrics, JSON at /metrics.json,
// a self-contained live dashboard at /statusz, and net/http/pprof at
// /debug/pprof/.
//
// Recording is cheap by design: counters and gauges are single atomic
// words, histograms take a short mutex, and spans cost one time.Now
// per edge — safe to leave enabled in production paths.
package obs

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key="value" pair attached to a metric.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// meta is the identity shared by every metric kind.
type meta struct {
	name   string
	labels []Label
	kind   string // "counter" | "gauge" | "histogram"
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format (version 0.0.4): only backslash, double-quote, and
// newline are escaped; every other byte — tabs, control characters,
// UTF-8 — passes through verbatim. Go's %q is NOT equivalent: it would
// emit \t, \xNN, and \uNNNN sequences the exposition format treats as
// a literal backslash followed by junk.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// labelString renders {k="v",...} or "" for no labels, with values
// escaped for the Prometheus exposition format.
func (m *meta) labelString() string {
	if len(m.labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range m.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", l.Key, escapeLabelValue(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// id is the registry key: name plus canonically-sorted labels.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(a, b int) bool { return ls[a].Key < ls[b].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('|')
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(';')
	}
	return b.String()
}

// Registry holds a set of named metrics, a ring of recent spans, a
// store of completed traces, and (optionally) an armed flight
// recorder. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]interface{} // id → *Counter | *Gauge | *Histogram
	kinds   map[string]string      // metric name → kind (one kind per name)
	series  map[string]*Series     // name → time-series ring
	extra   map[string]http.Handler
	start   time.Time
	ring    spanRing
	traces  traceStore
	flight  atomic.Pointer[FlightRecorder]

	// flightHooks are callbacks fired (each on its own goroutine) after
	// a flight dump is written — the fabric uses one to fan a
	// coordinator-side trigger out to remote workers.
	flightHookMu sync.Mutex
	flightHooks  map[int]func(reason, triggerID, path string)
	flightHookN  int

	// stageHists caches the per-stage {wall, cpu} histogram pair so
	// Span.End resolves its histograms with one lock-free map load
	// instead of building a metricID (alloc + label sort) and taking
	// the registry lock on every call.
	stageHists sync.Map // span name → *stagePair
}

// stagePair is the cached pair of histograms one span name records to.
// The CPU histogram registers lazily on first observation so stages
// that never attach a CPU measurement don't export an empty series.
type stagePair struct {
	r    *Registry
	name string
	wall *Histogram
	cpu  atomic.Pointer[Histogram]
}

func (p *stagePair) cpuHist() *Histogram {
	if h := p.cpu.Load(); h != nil {
		return h
	}
	h := p.r.Histogram(StageCPUHistogramName, L("stage", p.name))
	p.cpu.Store(h)
	return h
}

// stageHandles returns the cached histogram pair for a span name,
// resolving and caching it through the registry on first use.
func (r *Registry) stageHandles(name string) *stagePair {
	if p, ok := r.stageHists.Load(name); ok {
		return p.(*stagePair)
	}
	p := &stagePair{
		r:    r,
		name: name,
		wall: r.Histogram(StageHistogramName, L("stage", name)),
	}
	actual, _ := r.stageHists.LoadOrStore(name, p)
	return actual.(*stagePair)
}

// NewRegistry creates an empty registry with the default span-ring
// capacity.
func NewRegistry() *Registry { return NewRegistrySized(DefaultRingCap) }

// NewRegistrySized creates an empty registry whose span ring holds
// ringCap completed spans (values < 1 select DefaultRingCap).
func NewRegistrySized(ringCap int) *Registry {
	return &Registry{
		metrics: make(map[string]interface{}),
		kinds:   make(map[string]string),
		start:   time.Now(),
		ring:    newSpanRing(ringCap),
	}
}

// SetRingCap resizes the span ring, dropping currently held spans
// (values < 1 select DefaultRingCap). Intended for startup
// configuration (lclsmon -obs-ring).
func (r *Registry) SetRingCap(ringCap int) { r.ring.setCap(ringCap) }

// RingCap reports the span ring's current capacity.
func (r *Registry) RingCap() int { return r.ring.capacity() }

var defaultRegistry = NewRegistry()

// Default returns the process-global registry every package in this
// repository records into.
func Default() *Registry { return defaultRegistry }

// lookup returns the metric registered under (name, labels), creating
// it with mk when absent. It panics if the name is already registered
// with a different kind — Prometheus requires one kind per name.
func (r *Registry) lookup(name, kind string, labels []Label, mk func(meta) interface{}) interface{} {
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[id]; ok {
		return m
	}
	if k, ok := r.kinds[name]; ok && k != kind {
		panic(fmt.Sprintf("obs: metric %q already registered as %s, requested %s", name, k, kind))
	}
	m := mk(meta{name: name, labels: append([]Label(nil), labels...), kind: kind})
	r.metrics[id] = m
	r.kinds[name] = kind
	return m
}

// Counter returns (registering on first use) the counter with the
// given name and labels.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, "counter", labels, func(md meta) interface{} {
		return &Counter{md: md}
	}).(*Counter)
}

// Gauge returns (registering on first use) the gauge with the given
// name and labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, "gauge", labels, func(md meta) interface{} {
		return &Gauge{md: md}
	}).(*Gauge)
}

// Histogram returns (registering on first use) a histogram with the
// default duration-oriented buckets (seconds, ~5µs to 5min).
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.HistogramBuckets(name, nil, labels...)
}

// HistogramBuckets is Histogram with explicit bucket upper bounds
// (ascending). nil selects the default duration buckets.
func (r *Registry) HistogramBuckets(name string, bounds []float64, labels ...Label) *Histogram {
	return r.lookup(name, "histogram", labels, func(md meta) interface{} {
		return newHistogram(md, bounds)
	}).(*Histogram)
}

// each snapshots the metric set (sorted by name then label string) and
// calls fn for every metric outside the registry lock.
func (r *Registry) each(fn func(interface{})) {
	r.mu.Lock()
	ms := make([]interface{}, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(a, b int) bool {
		ma, mb := metaOf(ms[a]), metaOf(ms[b])
		if ma.name != mb.name {
			return ma.name < mb.name
		}
		return ma.labelString() < mb.labelString()
	})
	for _, m := range ms {
		fn(m)
	}
}

func metaOf(m interface{}) *meta {
	switch v := m.(type) {
	case *Counter:
		return &v.md
	case *Gauge:
		return &v.md
	case *Histogram:
		return &v.md
	}
	panic("obs: unknown metric type")
}

// Uptime is the time since the registry was created (process start for
// the default registry).
func (r *Registry) Uptime() time.Duration { return time.Since(r.start) }

// Reset drops every metric, time series, recorded span, retained
// trace, and cached stage-histogram handle. Extra HTTP handlers are
// kept — they are process wiring, not recorded state. An armed flight
// recorder also stays armed (its next samples simply start from the
// cleared state). Intended for tests.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.metrics = make(map[string]interface{})
	r.kinds = make(map[string]string)
	r.series = nil
	r.mu.Unlock()
	r.ring.reset()
	r.traces.reset()
	r.stageHists.Range(func(k, _ interface{}) bool {
		r.stageHists.Delete(k)
		return true
	})
}
