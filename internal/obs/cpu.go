package obs

import (
	"runtime"
	"time"
)

// Per-goroutine CPU accounting. Go exposes no per-goroutine CPU clock,
// but the OS exposes a per-thread one; pinning the goroutine to its
// thread for the duration of a measurement makes the thread clock a
// goroutine clock. Both BENCH files were once recorded at num_cpu=1
// with shard "speedups" that were pure projections — CPU time is the
// honest complement to wall time: it cannot be inflated by scheduling
// delay or deflated by time-slicing, so per-stage CPU cost is
// trustworthy even when the host has fewer cores than shards.

// CPUSupported reports whether per-thread CPU-time sampling works on
// this platform (Linux: yes, via CLOCK_THREAD_CPUTIME_ID).
func CPUSupported() bool {
	_, ok := threadCPU()
	return ok
}

// ThreadCPU returns the calling OS thread's cumulative CPU time. Only
// meaningful across two calls when the goroutine is pinned to its
// thread (runtime.LockOSThread) for the interval — long-lived worker
// goroutines pin once and sample per task.
func ThreadCPU() (time.Duration, bool) { return threadCPU() }

// CPUTimer measures the CPU time one goroutine consumes between
// StartCPUTimer and Stop, by pinning the goroutine to its OS thread
// for the measured section. The zero CPUTimer (and any timer on a
// platform without thread clocks) Stops to (0, false).
type CPUTimer struct {
	start  time.Duration
	locked bool
}

// StartCPUTimer pins the calling goroutine to its OS thread and reads
// the thread CPU clock. Pinning nests safely with callers that have
// already locked the thread.
func StartCPUTimer() CPUTimer {
	runtime.LockOSThread()
	d, ok := threadCPU()
	if !ok {
		runtime.UnlockOSThread()
		return CPUTimer{}
	}
	return CPUTimer{start: d, locked: true}
}

// Stop unpins the goroutine and returns the CPU time consumed since
// StartCPUTimer. ok is false when the platform has no thread clock.
func (t CPUTimer) Stop() (time.Duration, bool) {
	if !t.locked {
		return 0, false
	}
	d, ok := threadCPU()
	runtime.UnlockOSThread()
	if !ok || d < t.start {
		return 0, false
	}
	return d - t.start, true
}
