package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrentAdds(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %v, want 8000", got)
	}
	c.Add(-5) // negative deltas are ignored
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter after negative add = %v, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge")
	g.Set(3.5)
	g.Add(-1)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	g.SetInt(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

func TestRegistryIdentityAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", L("k", "v"))
	b := r.Counter("x_total", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := r.Counter("x_total", L("k", "other"))
	if a == c {
		t.Fatal("different labels must return a distinct counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge should panic")
		}
	}()
	r.Gauge("x_total")
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	h := r.HistogramBuckets("lat", bounds)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if mean := h.Mean(); math.Abs(mean-50.5) > 1e-9 {
		t.Fatalf("mean = %v, want 50.5", mean)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 50, 10},
		{0.90, 90, 10},
		{0.99, 99, 10},
		{0, 1, 0},
		{1, 100, 0},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Fatalf("q%v = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
}

func TestHistogramConstantStreamExactQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("const_seconds")
	for i := 0; i < 50; i++ {
		h.Observe(0.042)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got := h.Quantile(q); got != 0.042 {
			t.Fatalf("q%v = %v, want exactly 0.042 (min/max clamp)", q, got)
		}
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("o", []float64{1, 2})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	h.Observe(99) // overflow bucket
	if got := h.Quantile(0.5); got != 99 {
		t.Fatalf("overflow quantile = %v, want 99", got)
	}
}

func TestSpanRecordsHistogramAndRing(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("umap")
	time.Sleep(2 * time.Millisecond)
	d := sp.End()
	if d < 2*time.Millisecond {
		t.Fatalf("span duration %v too short", d)
	}
	h := r.Histogram(StageHistogramName, L("stage", "umap"))
	if h.Count() != 1 {
		t.Fatalf("stage histogram count = %d, want 1", h.Count())
	}
	spans := r.Spans()
	if len(spans) != 1 || spans[0].Name != "umap" || spans[0].Duration != d {
		t.Fatalf("ring = %+v", spans)
	}
}

func TestSpanRingNewestFirstAndCapacity(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < DefaultRingCap+10; i++ {
		func() { sp := r.StartSpan("s"); sp.End() }()
	}
	spans := r.Spans()
	if len(spans) != DefaultRingCap {
		t.Fatalf("ring holds %d, want %d", len(spans), DefaultRingCap)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start.After(spans[i-1].Start) {
			t.Fatal("spans not newest-first")
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_total", L("kind", "beam")).Add(3)
	r.Gauge("ell").Set(25)
	h := r.HistogramBuckets("dur_seconds", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()

	for _, want := range []string{
		"# TYPE frames_total counter\n",
		"frames_total{kind=\"beam\"} 3\n",
		"# TYPE ell gauge\n",
		"ell 25\n",
		"# TYPE dur_seconds histogram\n",
		"dur_seconds_bucket{le=\"1\"} 1\n",
		"dur_seconds_bucket{le=\"2\"} 2\n",
		"dur_seconds_bucket{le=\"+Inf\"} 3\n",
		"dur_seconds_sum 11\n",
		"dur_seconds_count 3\n",
		"process_uptime_seconds",
		"go_goroutines",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE dur_seconds histogram") != 1 {
		t.Fatal("TYPE line must appear exactly once per metric name")
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Inc()
	r.Gauge("g").Set(4)
	func() { sp := r.StartSpan("stage1"); sp.End() }()

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		Counters      []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"counters"`
		Histograms []struct {
			Name  string            `json:"name"`
			Count uint64            `json:"count"`
			P50   float64           `json:"p50"`
			Label map[string]string `json:"labels"`
		} `json:"histograms"`
		Spans []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(dump.Counters) != 1 || dump.Counters[0].Value != 1 {
		t.Fatalf("counters = %+v", dump.Counters)
	}
	if len(dump.Histograms) != 1 || dump.Histograms[0].Count != 1 {
		t.Fatalf("histograms = %+v (span should have registered one)", dump.Histograms)
	}
	if len(dump.Spans) != 1 || dump.Spans[0].Name != "stage1" {
		t.Fatalf("spans = %+v", dump.Spans)
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Inc()
	func() { sp := r.StartSpan("s"); sp.End() }()
	r.Reset()
	if len(r.Spans()) != 0 {
		t.Fatal("spans survived reset")
	}
	if got := r.Counter("c_total").Value(); got != 0 {
		t.Fatalf("counter survived reset: %v", got)
	}
}
