package obs

import (
	"sort"
	"sync"
	"time"
)

// defaultSeriesCap bounds one time series' history: at one audit point
// every few seconds this holds hours of sparkline history in a few KiB.
const defaultSeriesCap = 512

// Sample is one timestamped point of a Series.
type Sample struct {
	T time.Time
	V float64
}

// Series is a fixed-capacity ring of timestamped samples — the
// time-dimension complement of a Gauge. Gauges answer "what is the
// value now"; a Series answers "how did it move", which is what the
// /statusz sparklines and the audit layer's drift views render.
// All methods are safe for concurrent use.
type Series struct {
	name string

	mu   sync.Mutex
	buf  []Sample
	next int
	n    int
}

// Series returns (registering on first use) the time series with the
// given name.
func (r *Registry) Series(name string) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[name]; ok {
		return s
	}
	if r.series == nil {
		r.series = make(map[string]*Series)
	}
	s := &Series{name: name, buf: make([]Sample, defaultSeriesCap)}
	r.series[name] = s
	return s
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Add appends a sample stamped now.
func (s *Series) Add(v float64) { s.AddAt(time.Now(), v) }

// AddAt appends a sample with an explicit timestamp.
func (s *Series) AddAt(t time.Time, v float64) {
	s.mu.Lock()
	s.buf[s.next] = Sample{T: t, V: v}
	s.next = (s.next + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.mu.Unlock()
}

// Snapshot returns the retained samples, oldest first.
func (s *Series) Snapshot() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, 0, s.n)
	for i := 0; i < s.n; i++ {
		idx := (s.next - s.n + i + len(s.buf)) % len(s.buf)
		out = append(out, s.buf[idx])
	}
	return out
}

// Len returns the number of retained samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// eachSeries snapshots the series set sorted by name and calls fn for
// each outside the registry lock.
func (r *Registry) eachSeries(fn func(*Series)) {
	r.mu.Lock()
	ss := make([]*Series, 0, len(r.series))
	for _, s := range r.series {
		ss = append(ss, s)
	}
	r.mu.Unlock()
	sort.Slice(ss, func(a, b int) bool { return ss[a].name < ss[b].name })
	for _, s := range ss {
		fn(s)
	}
}
