package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64. Add/Inc are lock-free
// (CAS on the float bits) so they are safe on hot paths.
type Counter struct {
	md   meta
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v. Negative deltas are ignored —
// counters only go up.
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an instantaneous float64 value that can go up and down.
type Gauge struct {
	md   meta
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int) { g.Set(float64(v)) }

// Add increments the gauge by v (v may be negative).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// defaultBuckets are duration-oriented upper bounds in seconds on a
// 1–2.5–5 ladder from 5µs to 5 minutes — wide enough for both a
// per-frame ingest (µs–ms) and a full UMAP fit (seconds–minutes).
var defaultBuckets = []float64{
	5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10, 30, 60, 120, 300,
}

// Histogram accumulates observations into fixed buckets and supports
// streaming quantile estimates by interpolating within the bucket that
// contains the requested rank. Bounds are upper bucket edges; one
// implicit +Inf bucket catches overflow.
type Histogram struct {
	md     meta
	bounds []float64

	mu     sync.Mutex
	counts []uint64 // len(bounds)+1, last is +Inf
	count  uint64
	sum    float64
	min    float64
	max    float64
}

func newHistogram(md meta, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = defaultBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		md:     md,
		bounds: bounds,
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.mu.Lock()
	h.counts[lo]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if h.count == 1 || v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// HistogramSnapshot is a consistent copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
	Min    float64
	Max    float64
}

// Snapshot copies the histogram state under its lock.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: h.bounds,
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.Snapshot().Count }

// Mean returns the arithmetic mean of observations (NaN when empty).
func (h *Histogram) Mean() float64 { return h.Snapshot().Mean() }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution; see HistogramSnapshot.Quantile.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// Mean of the snapshot (NaN when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile by locating the bucket holding the
// q·count-th observation and interpolating linearly inside it; the
// estimate is clamped to the observed [min, max], which makes it exact
// for constant streams. Returns NaN when empty or when q is NaN.
// Interpolation edges are the observed min/max where they are tighter
// than the bucket bounds, so a bucket that extends below the smallest
// observation (including the first bucket, whose lower edge is
// otherwise unbounded) never drags the estimate outside the data.
// Infinite observations follow Prometheus's histogram_quantile
// convention: a rank landing in a bucket with an infinite edge returns
// the bucket's finite edge instead of interpolating (0·∞ = NaN is the
// failure mode this avoids).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		lo := s.Min
		if i > 0 && s.Bounds[i-1] > lo {
			lo = s.Bounds[i-1]
		}
		hi := s.Max
		if i < len(s.Bounds) && s.Bounds[i] < hi {
			hi = s.Bounds[i]
		}
		switch {
		case math.IsInf(hi, 1):
			// Overflow bucket holding a +Inf observation: report the
			// last finite edge rather than fabricating a value.
			return lo
		case math.IsInf(lo, -1):
			return hi
		case hi <= lo:
			// Degenerate bucket (constant stream, or min == max).
			return lo
		}
		frac := (rank - float64(prev)) / float64(c)
		v := lo + frac*(hi-lo)
		return math.Min(math.Max(v, s.Min), s.Max)
	}
	return s.Max
}
