package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"strconv"
	"time"
)

// fmtFloat renders a float the way the Prometheus text format expects.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelsWith renders the metric's labels plus one extra pair (used for
// the histogram le label); extraKey == "" appends nothing.
func labelsWith(md *meta, extraKey, extraVal string) string {
	if extraKey == "" {
		return md.labelString()
	}
	ls := append(append([]Label(nil), md.labels...), L(extraKey, extraVal))
	tmp := meta{labels: ls}
	return tmp.labelString()
}

// WritePrometheus writes every metric in the Prometheus text
// exposition format (version 0.0.4), followed by a small set of
// process metrics (uptime, goroutines, memory).
func (r *Registry) WritePrometheus(w io.Writer) {
	lastType := ""
	r.each(func(m interface{}) {
		md := metaOf(m)
		if md.name != lastType {
			fmt.Fprintf(w, "# TYPE %s %s\n", md.name, md.kind)
			lastType = md.name
		}
		switch v := m.(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %s\n", md.name, md.labelString(), fmtFloat(v.Value()))
		case *Gauge:
			fmt.Fprintf(w, "%s%s %s\n", md.name, md.labelString(), fmtFloat(v.Value()))
		case *Histogram:
			s := v.Snapshot()
			var cum uint64
			for i, c := range s.Counts {
				cum += c
				le := "+Inf"
				if i < len(s.Bounds) {
					le = fmtFloat(s.Bounds[i])
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", md.name, labelsWith(md, "le", le), cum)
			}
			fmt.Fprintf(w, "%s_sum%s %s\n", md.name, md.labelString(), fmtFloat(s.Sum))
			fmt.Fprintf(w, "%s_count%s %d\n", md.name, md.labelString(), s.Count)
		}
	})

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# TYPE process_uptime_seconds gauge\nprocess_uptime_seconds %s\n",
		fmtFloat(r.Uptime().Seconds()))
	fmt.Fprintf(w, "# TYPE go_goroutines gauge\ngo_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# TYPE go_memstats_alloc_bytes gauge\ngo_memstats_alloc_bytes %d\n", ms.Alloc)
	fmt.Fprintf(w, "# TYPE go_memstats_sys_bytes gauge\ngo_memstats_sys_bytes %d\n", ms.Sys)
	fmt.Fprintf(w, "# TYPE go_gc_cycles_total counter\ngo_gc_cycles_total %d\n", ms.NumGC)
}

// jsonMetric is one scalar metric in the JSON exposition.
type jsonMetric struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// jsonHistogram is one histogram in the JSON exposition.
type jsonHistogram struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Count  uint64            `json:"count"`
	Sum    float64           `json:"sum"`
	Min    float64           `json:"min"`
	Max    float64           `json:"max"`
	Mean   float64           `json:"mean"`
	P50    float64           `json:"p50"`
	P90    float64           `json:"p90"`
	P99    float64           `json:"p99"`
}

type jsonSpan struct {
	Name       string            `json:"name"`
	Start      string            `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	CPUMS      float64           `json:"cpu_ms,omitempty"`
	Trace      ID                `json:"trace_id,omitempty"`
	Span       ID                `json:"span_id,omitempty"`
	Parent     ID                `json:"parent_id,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// jsonSeries is one time-series ring in the JSON exposition; points
// are [unix_ms, value] pairs, oldest first.
type jsonSeries struct {
	Name   string       `json:"name"`
	Points [][2]float64 `json:"points"`
}

type jsonDump struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	Goroutines    int             `json:"goroutines"`
	AllocBytes    uint64          `json:"alloc_bytes"`
	SysBytes      uint64          `json:"sys_bytes"`
	GCCycles      uint32          `json:"gc_cycles"`
	Counters      []jsonMetric    `json:"counters"`
	Gauges        []jsonMetric    `json:"gauges"`
	Histograms    []jsonHistogram `json:"histograms"`
	Series        []jsonSeries    `json:"series"`
	Spans         []jsonSpan      `json:"spans"`
}

func labelMap(md *meta) map[string]string {
	if len(md.labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(md.labels))
	for _, l := range md.labels {
		out[l.Key] = l.Value
	}
	return out
}

// jsonSafe maps NaN/Inf (invalid in JSON) to 0.
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// WriteJSON writes the whole registry — process stats, every metric
// with quantile summaries, and the recent-span ring — as one JSON
// document (the payload behind /metrics.json and the /statusz page).
func (r *Registry) WriteJSON(w io.Writer) error {
	dump := jsonDump{
		UptimeSeconds: r.Uptime().Seconds(),
		Goroutines:    runtime.NumGoroutine(),
		Counters:      []jsonMetric{},
		Gauges:        []jsonMetric{},
		Histograms:    []jsonHistogram{},
		Series:        []jsonSeries{},
		Spans:         []jsonSpan{},
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	dump.AllocBytes = ms.Alloc
	dump.SysBytes = ms.Sys
	dump.GCCycles = ms.NumGC

	r.each(func(m interface{}) {
		md := metaOf(m)
		switch v := m.(type) {
		case *Counter:
			dump.Counters = append(dump.Counters, jsonMetric{Name: md.name, Labels: labelMap(md), Value: v.Value()})
		case *Gauge:
			dump.Gauges = append(dump.Gauges, jsonMetric{Name: md.name, Labels: labelMap(md), Value: v.Value()})
		case *Histogram:
			s := v.Snapshot()
			dump.Histograms = append(dump.Histograms, jsonHistogram{
				Name:   md.name,
				Labels: labelMap(md),
				Count:  s.Count,
				Sum:    jsonSafe(s.Sum),
				Min:    jsonSafe(s.Min),
				Max:    jsonSafe(s.Max),
				Mean:   jsonSafe(s.Mean()),
				P50:    jsonSafe(s.Quantile(0.50)),
				P90:    jsonSafe(s.Quantile(0.90)),
				P99:    jsonSafe(s.Quantile(0.99)),
			})
		}
	})
	r.eachSeries(func(s *Series) {
		js := jsonSeries{Name: s.Name(), Points: [][2]float64{}}
		for _, p := range s.Snapshot() {
			js.Points = append(js.Points, [2]float64{
				float64(p.T.UnixMilli()), jsonSafe(p.V)})
		}
		dump.Series = append(dump.Series, js)
	})
	for _, sp := range r.Spans() {
		dump.Spans = append(dump.Spans, jsonSpan{
			Name:       sp.Name,
			Start:      sp.Start.Format(time.RFC3339Nano),
			DurationMS: float64(sp.Duration) / float64(time.Millisecond),
			CPUMS:      float64(sp.CPU) / float64(time.Millisecond),
			Trace:      sp.Trace,
			Span:       sp.Span,
			Parent:     sp.Parent,
			Attrs:      sp.Attrs,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}
