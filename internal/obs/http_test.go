package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Add(2)
	func() { sp := r.StartSpan("pca"); sp.End() }()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != 200 || !strings.Contains(body, "hits_total 2") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ctype)
	}
	if !strings.Contains(body, StageHistogramName+`_bucket{stage="pca"`) {
		t.Fatalf("/metrics missing stage histogram:\n%s", body)
	}

	code, body, ctype = get("/metrics.json")
	if code != 200 || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/metrics.json: code=%d ctype=%q", code, ctype)
	}
	if !json.Valid([]byte(body)) {
		t.Fatalf("/metrics.json not valid JSON: %s", body)
	}

	code, body, _ = get("/healthz")
	if code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz: code=%d body=%q", code, body)
	}

	code, body, ctype = get("/statusz")
	if code != 200 || !strings.HasPrefix(ctype, "text/html") ||
		!strings.Contains(body, "<html") || !strings.Contains(body, "/metrics.json") {
		t.Fatalf("/statusz: code=%d ctype=%q", code, ctype)
	}

	code, body, _ = get("/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: code=%d", code)
	}

	if code, _, _ = get("/nosuch"); code != 404 {
		t.Fatalf("/nosuch: code=%d, want 404", code)
	}

	// Root redirects to /statusz (client follows it).
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Request.URL.Path != "/statusz" {
		t.Fatalf("root landed on %s, want /statusz", resp.Request.URL.Path)
	}
}
