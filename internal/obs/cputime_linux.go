//go:build linux

package obs

import (
	"syscall"
	"time"
	"unsafe"
)

// clockThreadCPUTimeID is CLOCK_THREAD_CPUTIME_ID from <time.h>: the
// per-OS-thread CPU clock, counting only time this thread actually
// spent on a core (user + system), not time blocked or preempted.
const clockThreadCPUTimeID = 3

// threadCPU reads the calling OS thread's consumed CPU time. The
// clock_gettime call is vDSO-accelerated on modern kernels, so this is
// cheap enough to sample around every pool task.
func threadCPU() (time.Duration, bool) {
	var ts syscall.Timespec
	_, _, errno := syscall.Syscall(syscall.SYS_CLOCK_GETTIME,
		clockThreadCPUTimeID, uintptr(unsafe.Pointer(&ts)), 0)
	if errno != 0 {
		return 0, false
	}
	return time.Duration(ts.Sec)*time.Second + time.Duration(ts.Nsec), true
}
