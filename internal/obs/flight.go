package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Flight recorder: a black box for post-mortems. It continuously
// captures the last Window of completed spans and periodic metric
// samples (gauge values — queue depths included — and counter deltas),
// and dumps the whole ring to a JSONL file when something goes wrong:
// a merge leg faults, a drift alarm fires, or the frame-budget burn
// rate trips its threshold. The dump covers the seconds *before* the
// trigger, which is exactly the history a live /metrics scrape has
// already lost by the time anyone looks.

// FlightConfig parameterizes a recorder. Zero values select defaults.
type FlightConfig struct {
	// Dir receives the JSONL dump files (required; created if absent).
	Dir string
	// Identity is a stable process identity (e.g. "coordinator",
	// "worker0") embedded in dump filenames, so dumps from multiple
	// processes sharing one directory cannot collide or be confused.
	// Empty omits the segment (single-process layout).
	Identity string
	// Window is how much history the ring keeps (default 30s).
	Window time.Duration
	// SampleEvery is the metric-sampling cadence (default 500ms).
	SampleEvery time.Duration
	// Cooldown is the minimum spacing between dumps; triggers inside
	// the cooldown are counted but produce no file (default 10s).
	Cooldown time.Duration
	// MaxSpans bounds the span portion of the ring independently of
	// Window, so a span storm cannot evict the metric samples
	// (default 4096).
	MaxSpans int
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.Window <= 0 {
		c.Window = 30 * time.Second
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 500 * time.Millisecond
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 4096
	}
	return c
}

// flightEntry is one line of a dump.
type flightEntry struct {
	Time      time.Time          `json:"time"`
	Kind      string             `json:"kind"` // "span" | "sample" | "trigger"
	Span      *SpanRecord        `json:"span,omitempty"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
	Reason    string             `json:"reason,omitempty"`
	TriggerID string             `json:"trigger_id,omitempty"`
}

// FlightRecorder captures recent spans and metric samples and dumps
// them on demand. Arm one with Registry.ArmFlightRecorder.
type FlightRecorder struct {
	cfg FlightConfig
	reg *Registry

	mu       sync.Mutex
	spans    []flightEntry
	samples  []flightEntry
	lastVals map[string]float64 // counter totals at the previous sample
	lastDump time.Time
	dumps    int
	stop     chan struct{}
	stopOnce sync.Once

	obsDumps      *Counter
	obsSuppressed *Counter
}

// ArmFlightRecorder creates, starts, and attaches a flight recorder to
// the registry: from now on every completed span is mirrored into the
// recorder ring and a sampler goroutine captures metric deltas at the
// configured cadence. Returns an error when the dump directory cannot
// be created. Arming replaces any previously armed recorder (the old
// one is closed).
func (r *Registry) ArmFlightRecorder(cfg FlightConfig) (*FlightRecorder, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("obs: flight recorder needs a dump directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: flight recorder dir: %w", err)
	}
	fr := &FlightRecorder{
		cfg:           cfg,
		reg:           r,
		stop:          make(chan struct{}),
		obsDumps:      r.Counter("arams_flight_dumps_total"),
		obsSuppressed: r.Counter("arams_flight_triggers_suppressed_total"),
	}
	if old := r.flight.Swap(fr); old != nil {
		old.Close()
	}
	go fr.sampleLoop()
	return fr, nil
}

// Close stops the sampler and detaches the recorder from its registry.
func (fr *FlightRecorder) Close() {
	fr.stopOnce.Do(func() {
		close(fr.stop)
		fr.reg.flight.CompareAndSwap(fr, nil)
	})
}

// Dumps returns how many dump files this recorder has written.
func (fr *FlightRecorder) Dumps() int {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.dumps
}

func (fr *FlightRecorder) sampleLoop() {
	tick := time.NewTicker(fr.cfg.SampleEvery)
	defer tick.Stop()
	for {
		select {
		case <-fr.stop:
			return
		case <-tick.C:
			fr.sample()
		}
	}
}

// sample walks the registry once: gauges record their value, counters
// record the delta since the previous sample (the rate signal a
// post-mortem wants), and histograms contribute their _count delta.
func (fr *FlightRecorder) sample() {
	vals := make(map[string]float64)   // counter-like totals, for deltas
	gauges := make(map[string]float64) // instantaneous values
	fr.reg.each(func(m interface{}) {
		md := metaOf(m)
		key := md.name + md.labelString()
		switch v := m.(type) {
		case *Counter:
			vals[key] = v.Value()
		case *Gauge:
			gauges[key] = v.Value()
		case *Histogram:
			vals[key+"_count"] = float64(v.Count())
		}
	})

	now := time.Now()
	fr.mu.Lock()
	metrics := make(map[string]float64, len(vals)+len(gauges))
	for k, v := range gauges {
		metrics[k] = v
	}
	for k, v := range vals {
		metrics["Δ"+k] = v - fr.lastVals[k]
	}
	fr.lastVals = vals
	fr.samples = append(fr.samples, flightEntry{Time: now, Kind: "sample", Metrics: metrics})
	fr.trimLocked(now)
	fr.mu.Unlock()
}

// addSpan mirrors one completed span into the ring (called from
// Span.End via the registry's recorder pointer).
func (fr *FlightRecorder) addSpan(rec SpanRecord) {
	now := time.Now()
	fr.mu.Lock()
	fr.spans = append(fr.spans, flightEntry{Time: now, Kind: "span", Span: &rec})
	if len(fr.spans) > fr.cfg.MaxSpans {
		fr.spans = fr.spans[len(fr.spans)-fr.cfg.MaxSpans:]
	}
	fr.trimLocked(now)
	fr.mu.Unlock()
}

func (fr *FlightRecorder) trimLocked(now time.Time) {
	cutoff := now.Add(-fr.cfg.Window)
	trim := func(es []flightEntry) []flightEntry {
		i := 0
		for i < len(es) && es[i].Time.Before(cutoff) {
			i++
		}
		if i > 0 {
			es = append(es[:0], es[i:]...)
		}
		return es
	}
	fr.spans = trim(fr.spans)
	fr.samples = trim(fr.samples)
}

// Trigger dumps the ring to a new JSONL file in the configured
// directory and returns its path, minting a fresh trigger ID for the
// dump. A trigger inside the cooldown (or a dump that fails to write)
// returns "".
func (fr *FlightRecorder) Trigger(reason string) string {
	return fr.TriggerID(reason, newID().String())
}

// TriggerID is Trigger with a caller-supplied trigger ID — the
// correlation key for fleet-wide dumps: when a coordinator fault fans
// out over the fabric, every worker dumps with the coordinator's ID,
// so dumps from different processes for the same incident carry the
// same trigger ID in both their filenames and their trigger entries.
func (fr *FlightRecorder) TriggerID(reason, triggerID string) string {
	now := time.Now()
	fr.mu.Lock()
	if !fr.lastDump.IsZero() && now.Sub(fr.lastDump) < fr.cfg.Cooldown {
		fr.mu.Unlock()
		fr.obsSuppressed.Inc()
		return ""
	}
	fr.lastDump = now
	entries := make([]flightEntry, 0, len(fr.spans)+len(fr.samples)+1)
	entries = append(entries, fr.spans...)
	entries = append(entries, fr.samples...)
	fr.mu.Unlock()

	sortEntries(entries)
	entries = append(entries, flightEntry{Time: now, Kind: "trigger", Reason: reason, TriggerID: triggerID})

	ident := ""
	if fr.cfg.Identity != "" {
		ident = sanitizeReason(fr.cfg.Identity) + "-"
	}
	name := fmt.Sprintf("flight-%s%s-%s-%s.jsonl",
		ident, now.UTC().Format("20060102T150405.000"), sanitizeReason(reason), triggerID)
	path := filepath.Join(fr.cfg.Dir, name)
	if err := writeJSONL(path, entries); err != nil {
		return ""
	}
	fr.mu.Lock()
	fr.dumps++
	fr.mu.Unlock()
	fr.obsDumps.Inc()
	fr.reg.fireFlightHooks(reason, triggerID, path)
	return path
}

func sortEntries(es []flightEntry) {
	// Spans and samples are each already time-ordered; a single merge
	// keeps the dump chronological without a full sort.
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].Time.Before(es[j-1].Time); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func sanitizeReason(reason string) string {
	var b strings.Builder
	for _, r := range reason {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "trigger"
	}
	s := b.String()
	if len(s) > 48 {
		s = s[:48]
	}
	return s
}

func writeJSONL(path string, entries []flightEntry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// FlightTrigger fires the registry's armed flight recorder, if any,
// and returns the dump path ("" when unarmed, cooling down, or
// failed). The nil-check is one atomic load, so subsystems call this
// unconditionally on their fault paths.
func (r *Registry) FlightTrigger(reason string) string {
	fr := r.flight.Load()
	if fr == nil {
		return ""
	}
	return fr.Trigger(reason)
}

// FlightTriggerID fires the registry's armed flight recorder with a
// caller-supplied trigger ID (see FlightRecorder.TriggerID). Used on
// the receiving end of a fleet-wide fan-out, where the trigger ID was
// minted by the coordinator.
func (r *Registry) FlightTriggerID(reason, triggerID string) string {
	fr := r.flight.Load()
	if fr == nil {
		return ""
	}
	return fr.TriggerID(reason, triggerID)
}

// FlightTrigger fires the default registry's flight recorder.
func FlightTrigger(reason string) string { return Default().FlightTrigger(reason) }

// OnFlightDump registers a callback fired after every flight dump this
// registry's recorder writes (re-arming the recorder keeps hooks).
// Each invocation runs on its own goroutine, so hooks can do blocking
// work — fan a trigger out over the network — without stalling the
// fault path that fired the dump, which may hold subsystem locks.
// The returned function unregisters the hook.
func (r *Registry) OnFlightDump(fn func(reason, triggerID, path string)) func() {
	r.flightHookMu.Lock()
	defer r.flightHookMu.Unlock()
	if r.flightHooks == nil {
		r.flightHooks = make(map[int]func(reason, triggerID, path string))
	}
	id := r.flightHookN
	r.flightHookN++
	r.flightHooks[id] = fn
	return func() {
		r.flightHookMu.Lock()
		delete(r.flightHooks, id)
		r.flightHookMu.Unlock()
	}
}

func (r *Registry) fireFlightHooks(reason, triggerID, path string) {
	r.flightHookMu.Lock()
	for _, fn := range r.flightHooks {
		go fn(reason, triggerID, path)
	}
	r.flightHookMu.Unlock()
}
