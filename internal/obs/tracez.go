package obs

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
	"strings"
	"time"
)

// /tracez: the retained completed traces (K slowest + uniform sample +
// most recent — see traceStore) rendered as parent→child trees.
// ?format=json returns the same data as {"traces":[...TraceRecord]}
// for machine consumers (CI smoke validates it round-trips).

// TracezPayload is the JSON document served by /tracez?format=json.
type TracezPayload struct {
	Traces []TraceRecord `json:"traces"`
}

func (r *Registry) tracezHandler(w http.ResponseWriter, req *http.Request) {
	traces := r.Traces()
	if req.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(TracezPayload{Traces: traces})
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	writeTracezHTML(w, traces)
}

func writeTracezHTML(w http.ResponseWriter, traces []TraceRecord) {
	fmt.Fprint(w, tracezHead)
	fmt.Fprintf(w, "<p class=\"muted\">%d retained trace(s) · slow=K-slowest ever, sample=uniform over history, recent=newest · <a href=\"/tracez?format=json\">json</a> · <a href=\"/statusz\">statusz</a></p>\n", len(traces))
	for _, tr := range traces {
		fmt.Fprintf(w, "<details><summary><code>%s</code> <b>%s</b> %s <span class=\"muted\">%s · %d span(s) · %s</span></summary>\n",
			tr.Trace.String(), html.EscapeString(tr.Root), fmtDurHTML(tr.Duration),
			tr.Retained, len(tr.Spans), tr.Start.Format(time.RFC3339Nano))
		fmt.Fprint(w, "<pre>")
		writeTraceTree(w, tr)
		fmt.Fprint(w, "</pre></details>\n")
	}
	fmt.Fprint(w, "</body></html>\n")
}

// writeTraceTree renders the spans of one trace as an indented tree,
// children sorted by start time. Orphans (parent span not retained,
// e.g. trimmed by traceSpansMax) attach to the root line.
func writeTraceTree(w http.ResponseWriter, tr TraceRecord) {
	children := make(map[ID][]SpanRecord)
	byID := make(map[ID]bool, len(tr.Spans))
	for _, sp := range tr.Spans {
		byID[sp.Span] = true
	}
	var roots []SpanRecord
	for _, sp := range tr.Spans {
		if sp.Parent == 0 || !byID[sp.Parent] {
			roots = append(roots, sp)
		} else {
			children[sp.Parent] = append(children[sp.Parent], sp)
		}
	}
	byStart := func(ss []SpanRecord) {
		sort.SliceStable(ss, func(a, b int) bool { return ss[a].Start.Before(ss[b].Start) })
	}
	byStart(roots)
	var walk func(sp SpanRecord, depth int)
	walk = func(sp SpanRecord, depth int) {
		line := strings.Repeat("  ", depth) + html.EscapeString(sp.Name)
		cpu := ""
		if sp.CPU > 0 {
			cpu = " cpu=" + sp.CPU.Round(time.Microsecond).String()
		}
		attrs := ""
		if len(sp.Attrs) > 0 {
			keys := make([]string, 0, len(sp.Attrs))
			for k := range sp.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = k + "=" + sp.Attrs[k]
			}
			attrs = " {" + html.EscapeString(strings.Join(parts, " ")) + "}"
		}
		fmt.Fprintf(w, "%-48s %12s%s%s\n", line, sp.Duration.Round(time.Microsecond), cpu, attrs)
		cs := children[sp.Span]
		byStart(cs)
		for _, c := range cs {
			walk(c, depth+1)
		}
	}
	for _, root := range roots {
		walk(root, 0)
	}
}

func fmtDurHTML(d time.Duration) string { return d.Round(time.Microsecond).String() }

const tracezHead = `<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"><title>tracez</title>
<style>
  body { font: 13px/1.5 system-ui, sans-serif; margin: 1.5em auto; max-width: 80em; color: #222; padding: 0 1em; }
  .muted { color: #888; }
  code { background: #f3f3f3; padding: 0 .25em; border-radius: 3px; }
  details { margin: .4em 0; border: 1px solid #eee; border-radius: 4px; padding: .3em .6em; }
  summary { cursor: pointer; }
  pre { font: 12px/1.45 ui-monospace, monospace; overflow-x: auto; background: #fafafa; padding: .5em; }
</style></head><body>
<h1>tracez</h1>
`
