package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestValidateExpositionAcceptsOwnOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("lint_events_total", L("kind", "a")).Add(2)
	r.Counter("lint_events_total", L("kind", "b")).Inc()
	r.Gauge("lint_depth").SetInt(7)
	h := r.Histogram("lint_latency_seconds", L("stage", `we"ird\`))
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 100)
	}
	sp := r.StartSpan("lint_stage")
	sp.End()

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("our own exposition fails validation: %v\n%s", err, buf.String())
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"duplicate series",
			"# TYPE a counter\na{k=\"v\"} 1\na{k=\"v\"} 2\n",
			"duplicate series"},
		{"type after samples",
			"a 1\n# TYPE a counter\n",
			"after its samples"},
		{"second type declaration",
			"# TYPE a counter\n# TYPE a gauge\n",
			"second TYPE"},
		{"unknown type",
			"# TYPE a exotic\n",
			"unknown metric type"},
		{"unparsable value",
			"a one\n",
			"unparsable value"},
		{"invalid metric name",
			"9a 1\n",
			"invalid metric name"},
		{"unterminated label block",
			"a{k=\"v\" 1\n",
			"label"},
		{"unquoted label value",
			"a{k=v} 1\n",
			"quoted"},
		{"histogram missing count",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 0.5\n",
			"missing _count"},
		{"bucket on non-histogram",
			"# TYPE g gauge\ng_bucket{le=\"1\"} 1\ng 1\n",
			""}, // _bucket only folds into declared histograms; plain sample is fine
	}
	for _, tc := range cases {
		err := ValidateExposition(strings.NewReader(tc.in))
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateExpositionSpecialValues(t *testing.T) {
	in := "# TYPE b gauge\nb{x=\"1\"} +Inf\nb{x=\"2\"} NaN\nb{x=\"3\"} 1e-9 1700000000000\n"
	if err := ValidateExposition(strings.NewReader(in)); err != nil {
		t.Fatalf("special float values rejected: %v", err)
	}
}
