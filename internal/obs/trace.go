package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ID is a trace or span identifier. IDs render as 16-digit hex in JSON
// so they survive JavaScript consumers (a raw uint64 loses precision
// past 2⁵³ in every browser).
type ID uint64

// String renders the ID as zero-padded hex ("0" stays "0" → rendered
// as all zeros only for the zero ID, which marshals as "").
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON renders the ID as a hex string ("" for the zero ID).
func (id ID) MarshalJSON() ([]byte, error) {
	if id == 0 {
		return []byte(`""`), nil
	}
	return json.Marshal(id.String())
}

// UnmarshalJSON parses the hex-string form.
func (id *ID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	if s == "" {
		*id = 0
		return nil
	}
	var v uint64
	if _, err := fmt.Sscanf(s, "%x", &v); err != nil {
		return err
	}
	*id = ID(v)
	return nil
}

// idCounter seeds from the process start time so IDs differ across
// restarts; splitmix64 whitening keeps consecutive IDs uncorrelated.
var idCounter atomic.Uint64

func init() { idCounter.Store(uint64(time.Now().UnixNano())) }

func newID() ID {
	for {
		if id := ID(mix64(idCounter.Add(1))); id != 0 {
			return id
		}
	}
}

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TraceRecord is one completed trace: the root span's identity plus
// every span that ended under it before the root did.
type TraceRecord struct {
	Trace    ID            `json:"trace_id"`
	Root     string        `json:"root"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	// Retained says why the store kept this trace: "slow", "sample",
	// or "recent" (the strongest reason wins when several apply).
	Retained string       `json:"retained,omitempty"`
	Spans    []SpanRecord `json:"spans"`
}

// Trace-store retention. Newest-first alone would lose exactly the
// traces worth keeping (the slow outliers that fired an alarm minutes
// ago), so completed traces are retained three ways: the K slowest
// ever seen, a uniform reservoir sample over the whole history, and a
// short newest-first ring.
const (
	traceSlowKeep   = 16
	traceSampleKeep = 32
	traceRecentKeep = 32
	traceActiveMax  = 512 // open traces tracked before stale eviction
	traceSpansMax   = 512 // spans retained per trace
	traceStaleAfter = time.Minute
)

type activeTrace struct {
	spans   []SpanRecord
	touched time.Time
	dropped int
}

// traceStore assembles completed spans into traces and retains a
// bounded, usefully-biased subset of them for /tracez.
type traceStore struct {
	mu     sync.Mutex
	active map[ID]*activeTrace
	recent []TraceRecord
	slow   []TraceRecord
	sample []TraceRecord
	seen   uint64 // completed traces, for reservoir sampling
	rng    uint64
}

// observe folds one completed traced span in. A span with Parent == 0
// is a trace root: its end finalizes the trace. Spans that end after
// their root (detached stragglers) open a new active entry that stale
// eviction eventually collects.
func (ts *traceStore) observe(rec SpanRecord) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.active == nil {
		ts.active = make(map[ID]*activeTrace)
	}
	at := ts.active[rec.Trace]
	if at == nil {
		if len(ts.active) >= traceActiveMax {
			ts.evictStaleLocked()
			if len(ts.active) >= traceActiveMax {
				return
			}
		}
		at = &activeTrace{}
		ts.active[rec.Trace] = at
	}
	at.touched = time.Now()
	if len(at.spans) < traceSpansMax {
		at.spans = append(at.spans, rec)
	} else {
		at.dropped++
	}
	if rec.Parent != 0 {
		return
	}
	// Root ended: finalize.
	delete(ts.active, rec.Trace)
	tr := TraceRecord{
		Trace:    rec.Trace,
		Root:     rec.Name,
		Start:    rec.Start,
		Duration: rec.Duration,
		Spans:    at.spans,
	}
	ts.retainLocked(tr)
}

func (ts *traceStore) evictStaleLocked() {
	cutoff := time.Now().Add(-traceStaleAfter)
	for id, at := range ts.active {
		if at.touched.Before(cutoff) {
			delete(ts.active, id)
		}
	}
}

func (ts *traceStore) retainLocked(tr TraceRecord) {
	ts.seen++

	// Newest-first ring.
	ts.recent = append(ts.recent, tr)
	if len(ts.recent) > traceRecentKeep {
		copy(ts.recent, ts.recent[len(ts.recent)-traceRecentKeep:])
		ts.recent = ts.recent[:traceRecentKeep]
	}

	// K slowest: replace the current minimum when the newcomer beats it.
	if len(ts.slow) < traceSlowKeep {
		ts.slow = append(ts.slow, tr)
	} else {
		minIdx := 0
		for i := 1; i < len(ts.slow); i++ {
			if ts.slow[i].Duration < ts.slow[minIdx].Duration {
				minIdx = i
			}
		}
		if tr.Duration > ts.slow[minIdx].Duration {
			ts.slow[minIdx] = tr
		}
	}

	// Uniform reservoir over every completed trace.
	if len(ts.sample) < traceSampleKeep {
		ts.sample = append(ts.sample, tr)
	} else {
		ts.rng = mix64(ts.rng + ts.seen)
		if j := ts.rng % ts.seen; j < traceSampleKeep {
			ts.sample[j] = tr
		}
	}
}

// snapshot returns the retained traces, newest first, deduplicated
// across the three retention sets (the strongest reason — slow >
// sample > recent — labels each trace).
func (ts *traceStore) snapshot() []TraceRecord {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]TraceRecord, 0, len(ts.slow)+len(ts.sample)+len(ts.recent))
	seen := make(map[ID]bool)
	add := func(trs []TraceRecord, why string) {
		for _, tr := range trs {
			if seen[tr.Trace] {
				continue
			}
			seen[tr.Trace] = true
			tr.Retained = why
			out = append(out, tr)
		}
	}
	add(ts.slow, "slow")
	add(ts.sample, "sample")
	add(ts.recent, "recent")
	sort.Slice(out, func(a, b int) bool { return out[a].Start.After(out[b].Start) })
	return out
}

func (ts *traceStore) reset() {
	ts.mu.Lock()
	ts.active = nil
	ts.recent, ts.slow, ts.sample = nil, nil, nil
	ts.seen, ts.rng = 0, 0
	ts.mu.Unlock()
}

// Traces returns the retained completed traces, newest first: the K
// slowest, a uniform sample, and the most recent, deduplicated.
func (r *Registry) Traces() []TraceRecord { return r.traces.snapshot() }

// TraceByID returns the retained trace with the given ID, if any.
func (r *Registry) TraceByID(id ID) (TraceRecord, bool) {
	for _, tr := range r.traces.snapshot() {
		if tr.Trace == id {
			return tr, true
		}
	}
	return TraceRecord{}, false
}
