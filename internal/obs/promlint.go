package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ValidateExposition checks a Prometheus text-format (0.0.4) payload
// for the failure modes a hand-rolled exporter can introduce: duplicate
// series, malformed sample lines, unparsable values, TYPE declarations
// that repeat or arrive after samples, and histogram series missing
// their _sum/_count companions. It exists so CI can curl /metrics from
// a live process and fail the build when the exposition regresses,
// without importing a Prometheus client.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)

	types := make(map[string]string) // metric name → declared type
	sampled := make(map[string]bool) // metric name → saw a sample
	seen := make(map[string]bool)    // full series key → dup detection
	histBase := make(map[string]map[string]bool)

	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r")
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if err := validateComment(text, line, types, sampled); err != nil {
				return err
			}
			continue
		}
		key, name, err := parseSampleLine(text, line)
		if err != nil {
			return err
		}
		if seen[key] {
			return fmt.Errorf("line %d: duplicate series %q", line, key)
		}
		seen[key] = true

		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(name, suffix); b != name && types[b] == "histogram" {
				base = b
				if histBase[base] == nil {
					histBase[base] = make(map[string]bool)
				}
				histBase[base][suffix] = true
			}
		}
		sampled[base] = true
		if t, ok := types[base]; ok && t != "histogram" && base != name {
			return fmt.Errorf("line %d: %s sample %q for non-histogram %q", line, name, key, base)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading exposition: %w", err)
	}
	for base, suffixes := range histBase {
		for _, want := range []string{"_bucket", "_sum", "_count"} {
			if !suffixes[want] {
				return fmt.Errorf("histogram %q missing %s series", base, want)
			}
		}
	}
	return nil
}

func validateComment(text string, line int, types map[string]string, sampled map[string]bool) error {
	fields := strings.Fields(text)
	if len(fields) < 2 || (fields[1] != "TYPE" && fields[1] != "HELP") {
		return nil // free-form comment
	}
	if fields[1] != "TYPE" {
		return nil
	}
	if len(fields) != 4 {
		return fmt.Errorf("line %d: malformed TYPE comment %q", line, text)
	}
	name, typ := fields[2], fields[3]
	switch typ {
	case "counter", "gauge", "histogram", "summary", "untyped":
	default:
		return fmt.Errorf("line %d: unknown metric type %q for %q", line, typ, name)
	}
	if prev, ok := types[name]; ok {
		return fmt.Errorf("line %d: second TYPE declaration for %q (already %s)", line, name, prev)
	}
	if sampled[name] {
		return fmt.Errorf("line %d: TYPE for %q after its samples", line, name)
	}
	types[name] = typ
	return nil
}

// parseSampleLine validates one sample line and returns (series key
// including labels, bare metric name).
func parseSampleLine(text string, line int) (key, name string, err error) {
	// name{labels} value [timestamp]  — labels optional.
	rest := text
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", "", fmt.Errorf("line %d: malformed sample %q", line, text)
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("line %d: invalid metric name %q", line, name)
	}
	key = name
	if rest[i] == '{' {
		end, lerr := scanLabels(rest[i:])
		if lerr != nil {
			return "", "", fmt.Errorf("line %d: %v in %q", line, lerr, text)
		}
		key = name + rest[i:i+end]
		rest = rest[i+end:]
	} else {
		rest = rest[i:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", fmt.Errorf("line %d: expected value [timestamp] after series, got %q", line, rest)
	}
	if _, perr := strconv.ParseFloat(fields[0], 64); perr != nil {
		switch fields[0] {
		case "+Inf", "-Inf", "NaN":
		default:
			return "", "", fmt.Errorf("line %d: unparsable value %q", line, fields[0])
		}
	}
	if len(fields) == 2 {
		if _, perr := strconv.ParseInt(fields[1], 10, 64); perr != nil {
			return "", "", fmt.Errorf("line %d: unparsable timestamp %q", line, fields[1])
		}
	}
	return key, name, nil
}

// scanLabels validates a {k="v",...} block starting at s[0] == '{' and
// returns the index just past the closing brace.
func scanLabels(s string) (int, error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		// label name
		j := i
		for j < len(s) && s[j] != '=' && s[j] != '}' && s[j] != ',' {
			j++
		}
		if j >= len(s) || s[j] != '=' || !validLabelName(s[i:j]) {
			return 0, fmt.Errorf("invalid label name at offset %d", i)
		}
		i = j + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value must be quoted at offset %d", i)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value")
		}
		i++ // past closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
