package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
)

// Handle registers an extra endpoint served by Handler alongside the
// built-in set — the hook subsystems use to mount their own surfaces
// (e.g. internal/audit's /audit) onto the same listener. Registering
// the same path again replaces the previous handler.
func (r *Registry) Handle(path string, h http.Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.extra == nil {
		r.extra = make(map[string]http.Handler)
	}
	r.extra[path] = h
}

// Handle registers an extra endpoint on the default registry.
func Handle(path string, h http.Handler) { Default().Handle(path, h) }

// Handler returns the observability endpoint set for the registry:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  full JSON dump (metrics + quantiles + span ring)
//	/healthz       liveness probe ("ok")
//	/statusz       self-contained live HTML dashboard
//	/tracez        retained traces as parent-child trees (?format=json)
//	/debug/pprof/  the standard net/http/pprof profiles
//
// plus any endpoints registered with Handle. Extra endpoints are looked
// up per request, so a subsystem may mount its surface after the server
// has started serving (e.g. the tenant registry mounting /tenantz once
// its configuration is assembled). The root path redirects to /statusz.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		name := filepath.Base(os.Args[0])
		fmt.Fprintf(w, statuszHTML, name, name)
	})
	mux.HandleFunc("/tracez", r.tracezHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		http.Redirect(w, req, "/statusz", http.StatusFound)
	})
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r.mu.Lock()
		h := r.extra[req.URL.Path]
		r.mu.Unlock()
		if h != nil {
			h.ServeHTTP(w, req)
			return
		}
		mux.ServeHTTP(w, req)
	})
}

// Handler returns the endpoint set for the default registry.
func Handler() http.Handler { return Default().Handler() }

// statuszHTML is the self-contained dashboard: it polls /metrics.json
// every 2s and renders stage timings, sketch state, and recent spans.
// The single %s is the program name.
const statuszHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>%s — statusz</title>
<style>
  body { font: 13px/1.5 system-ui, sans-serif; margin: 1.5em auto; max-width: 72em; color: #222; padding: 0 1em; }
  h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.6em; border-bottom: 1px solid #ddd; padding-bottom: .2em; }
  table { border-collapse: collapse; width: 100%%; }
  th, td { text-align: left; padding: .25em .7em; border-bottom: 1px solid #eee; font-variant-numeric: tabular-nums; }
  th { background: #f6f6f6; font-weight: 600; }
  td.num, th.num { text-align: right; }
  .muted { color: #888; }
  code { background: #f3f3f3; padding: 0 .25em; border-radius: 3px; }
  #err { color: #b00; }
</style>
</head>
<body>
<h1>%s <span class="muted" id="uptime"></span></h1>
<p class="muted">live view — refreshes every 2s ·
  <a href="/metrics">/metrics</a> · <a href="/metrics.json">/metrics.json</a> ·
  <a href="/tracez">/tracez</a> · <a href="/audit">/audit</a> ·
  <a href="/debug/pprof/">/debug/pprof/</a> · <a href="/healthz">/healthz</a>
  <span id="err"></span></p>
<h2>Process</h2><table id="proc"></table>
<div id="serieswrap" style="display:none"><h2>Quality history</h2><table id="series"></table></div>
<div id="ftwrap" style="display:none"><h2>Merge fault tolerance</h2><table id="ft"></table></div>
<h2>Stage timings</h2><table id="hist"></table>
<h2>Counters</h2><table id="counters"></table>
<h2>Gauges</h2><table id="gauges"></table>
<h2>Recent spans</h2><table id="spans"></table>
<script>
function fmtDur(s) {
  if (!isFinite(s)) return "-";
  if (s < 1e-3) return (s*1e6).toFixed(1) + "µs";
  if (s < 1) return (s*1e3).toFixed(2) + "ms";
  if (s < 120) return s.toFixed(3) + "s";
  return (s/60).toFixed(1) + "m";
}
function fmtBytes(b) {
  const u = ["B","KiB","MiB","GiB"]; let i = 0;
  while (b >= 1024 && i < u.length-1) { b /= 1024; i++; }
  return b.toFixed(1) + " " + u[i];
}
function label(m) {
  let l = m.name;
  if (m.labels) l += "{" + Object.entries(m.labels).map(([k,v]) => k+'="'+v+'"').join(",") + "}";
  return l;
}
function rows(id, header, body) {
  document.getElementById(id).innerHTML =
    "<tr>" + header.map(h => "<th" + (h[1]?' class="num"':"") + ">" + h[0] + "</th>").join("") + "</tr>" +
    body.join("");
}
// sparkline renders points ([unix_ms, v] pairs) as a tiny inline SVG.
function sparkline(points) {
  if (!points || points.length < 2) return '<span class="muted">—</span>';
  const W = 180, H = 24, n = points.length;
  let lo = Infinity, hi = -Infinity;
  for (const p of points) { if (p[1] < lo) lo = p[1]; if (p[1] > hi) hi = p[1]; }
  const span = (hi - lo) || 1;
  const pts = points.map((p, i) =>
    (i*(W-2)/(n-1)+1).toFixed(1) + "," + (H-2-(p[1]-lo)*(H-4)/span).toFixed(1)).join(" ");
  return '<svg width="'+W+'" height="'+H+'" style="vertical-align:middle">' +
    '<polyline fill="none" stroke="#36c" stroke-width="1.2" points="'+pts+'"/></svg>';
}
function fmtVal(v) {
  if (!isFinite(v)) return "-";
  if (v !== 0 && (Math.abs(v) < 1e-3 || Math.abs(v) >= 1e6)) return v.toExponential(3);
  return +v.toPrecision(6);
}
// ftRows extracts the parallel fault-tolerance accounting (satellite:
// RoundStats were counted but never shown) from counters and gauges.
function ftRows(d) {
  const want = {
    "arams_parallel_merge_legs_total": "merge legs (cumulative)",
    "arams_parallel_merge_leg_failures_total": "leg failures",
    "arams_parallel_merge_leg_retries_total": "leg retries",
    "arams_parallel_merge_leg_resketch_total": "re-sketch recoveries",
    "arams_parallel_serial_fallbacks_total": "serial fallbacks",
    "arams_parallel_last_run_rounds": "last run: merge rounds",
    "arams_parallel_last_run_legs": "last run: legs",
    "arams_parallel_last_run_failures": "last run: failures",
    "arams_parallel_last_run_retries": "last run: retries",
    "arams_parallel_last_run_resketches": "last run: re-sketches",
    "arams_parallel_last_run_serial_fallback": "last run: degraded to serial",
  };
  const out = [];
  for (const m of d.counters.concat(d.gauges)) {
    if (want[m.name] !== undefined)
      out.push("<tr><td>"+want[m.name]+'</td><td class="num">'+m.value+"</td></tr>");
  }
  return out;
}
async function tick() {
  let d;
  try {
    d = await (await fetch("/metrics.json")).json();
    document.getElementById("err").textContent = "";
  } catch (e) {
    document.getElementById("err").textContent = " — fetch failed: " + e;
    return;
  }
  document.getElementById("uptime").textContent = "up " + fmtDur(d.uptime_seconds);
  rows("proc", [["stat"],["value",1]], [
    ["goroutines", d.goroutines],
    ["heap alloc", fmtBytes(d.alloc_bytes)],
    ["sys", fmtBytes(d.sys_bytes)],
    ["gc cycles", d.gc_cycles],
  ].map(r => "<tr><td>"+r[0]+'</td><td class="num">'+r[1]+"</td></tr>"));
  const sr = d.series || [];
  document.getElementById("serieswrap").style.display = sr.length ? "" : "none";
  if (sr.length) {
    rows("series", [["series"],["history"],["last",1]],
      sr.map(s => "<tr><td><code>"+s.name+"</code></td><td>"+sparkline(s.points)+
        '</td><td class="num">'+
        (s.points.length ? fmtVal(s.points[s.points.length-1][1]) : "-")+"</td></tr>"));
  }
  const ft = ftRows(d);
  document.getElementById("ftwrap").style.display = ft.length ? "" : "none";
  if (ft.length) rows("ft", [["fault tolerance"],["value",1]], ft);
  rows("hist", [["histogram"],["count",1],["mean",1],["p50",1],["p90",1],["p99",1],["max",1]],
    d.histograms.map(h => "<tr><td><code>"+label(h)+"</code></td>"+
      [h.count, fmtDur(h.mean), fmtDur(h.p50), fmtDur(h.p90), fmtDur(h.p99), fmtDur(h.max)]
        .map(v => '<td class="num">'+v+"</td>").join("")+"</tr>"));
  rows("counters", [["counter"],["value",1]],
    d.counters.map(c => "<tr><td><code>"+label(c)+'</code></td><td class="num">'+c.value+"</td></tr>"));
  rows("gauges", [["gauge"],["value",1]],
    d.gauges.map(g => "<tr><td><code>"+label(g)+'</code></td><td class="num">'+g.value+"</td></tr>"));
  rows("spans", [["span"],["trace"],["start"],["duration",1],["cpu",1]],
    d.spans.slice(0, 40).map(s => "<tr><td><code>"+s.name+"</code></td><td>"+
      (s.trace_id ? "<code>"+s.trace_id+"</code>" : '<span class="muted">—</span>')+"</td><td>"+s.start+
      '</td><td class="num">'+fmtDur(s.duration_ms/1e3)+
      '</td><td class="num">'+(s.cpu_ms ? fmtDur(s.cpu_ms/1e3) : "—")+"</td></tr>"));
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`
