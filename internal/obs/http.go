package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
)

// Handler returns the observability endpoint set for the registry:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  full JSON dump (metrics + quantiles + span ring)
//	/healthz       liveness probe ("ok")
//	/statusz       self-contained live HTML dashboard
//	/debug/pprof/  the standard net/http/pprof profiles
//
// The root path redirects to /statusz.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		name := filepath.Base(os.Args[0])
		fmt.Fprintf(w, statuszHTML, name, name)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		http.Redirect(w, req, "/statusz", http.StatusFound)
	})
	return mux
}

// Handler returns the endpoint set for the default registry.
func Handler() http.Handler { return Default().Handler() }

// statuszHTML is the self-contained dashboard: it polls /metrics.json
// every 2s and renders stage timings, sketch state, and recent spans.
// The single %s is the program name.
const statuszHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>%s — statusz</title>
<style>
  body { font: 13px/1.5 system-ui, sans-serif; margin: 1.5em auto; max-width: 72em; color: #222; padding: 0 1em; }
  h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.6em; border-bottom: 1px solid #ddd; padding-bottom: .2em; }
  table { border-collapse: collapse; width: 100%%; }
  th, td { text-align: left; padding: .25em .7em; border-bottom: 1px solid #eee; font-variant-numeric: tabular-nums; }
  th { background: #f6f6f6; font-weight: 600; }
  td.num, th.num { text-align: right; }
  .muted { color: #888; }
  code { background: #f3f3f3; padding: 0 .25em; border-radius: 3px; }
  #err { color: #b00; }
</style>
</head>
<body>
<h1>%s <span class="muted" id="uptime"></span></h1>
<p class="muted">live view — refreshes every 2s ·
  <a href="/metrics">/metrics</a> · <a href="/metrics.json">/metrics.json</a> ·
  <a href="/debug/pprof/">/debug/pprof/</a> · <a href="/healthz">/healthz</a>
  <span id="err"></span></p>
<h2>Process</h2><table id="proc"></table>
<h2>Stage timings</h2><table id="hist"></table>
<h2>Counters</h2><table id="counters"></table>
<h2>Gauges</h2><table id="gauges"></table>
<h2>Recent spans</h2><table id="spans"></table>
<script>
function fmtDur(s) {
  if (!isFinite(s)) return "-";
  if (s < 1e-3) return (s*1e6).toFixed(1) + "µs";
  if (s < 1) return (s*1e3).toFixed(2) + "ms";
  if (s < 120) return s.toFixed(3) + "s";
  return (s/60).toFixed(1) + "m";
}
function fmtBytes(b) {
  const u = ["B","KiB","MiB","GiB"]; let i = 0;
  while (b >= 1024 && i < u.length-1) { b /= 1024; i++; }
  return b.toFixed(1) + " " + u[i];
}
function label(m) {
  let l = m.name;
  if (m.labels) l += "{" + Object.entries(m.labels).map(([k,v]) => k+'="'+v+'"').join(",") + "}";
  return l;
}
function rows(id, header, body) {
  document.getElementById(id).innerHTML =
    "<tr>" + header.map(h => "<th" + (h[1]?' class="num"':"") + ">" + h[0] + "</th>").join("") + "</tr>" +
    body.join("");
}
async function tick() {
  let d;
  try {
    d = await (await fetch("/metrics.json")).json();
    document.getElementById("err").textContent = "";
  } catch (e) {
    document.getElementById("err").textContent = " — fetch failed: " + e;
    return;
  }
  document.getElementById("uptime").textContent = "up " + fmtDur(d.uptime_seconds);
  rows("proc", [["stat"],["value",1]], [
    ["goroutines", d.goroutines],
    ["heap alloc", fmtBytes(d.alloc_bytes)],
    ["sys", fmtBytes(d.sys_bytes)],
    ["gc cycles", d.gc_cycles],
  ].map(r => "<tr><td>"+r[0]+'</td><td class="num">'+r[1]+"</td></tr>"));
  rows("hist", [["histogram"],["count",1],["mean",1],["p50",1],["p90",1],["p99",1],["max",1]],
    d.histograms.map(h => "<tr><td><code>"+label(h)+"</code></td>"+
      [h.count, fmtDur(h.mean), fmtDur(h.p50), fmtDur(h.p90), fmtDur(h.p99), fmtDur(h.max)]
        .map(v => '<td class="num">'+v+"</td>").join("")+"</tr>"));
  rows("counters", [["counter"],["value",1]],
    d.counters.map(c => "<tr><td><code>"+label(c)+'</code></td><td class="num">'+c.value+"</td></tr>"));
  rows("gauges", [["gauge"],["value",1]],
    d.gauges.map(g => "<tr><td><code>"+label(g)+'</code></td><td class="num">'+g.value+"</td></tr>"));
  rows("spans", [["span"],["start"],["duration",1]],
    d.spans.slice(0, 40).map(s => "<tr><td><code>"+s.name+"</code></td><td>"+s.start+
      '</td><td class="num">'+fmtDur(s.duration_ms/1e3)+"</td></tr>"));
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`
