package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestEscapeLabelValue pins the exposition-format escaping rules:
// backslash, double-quote, and newline are escaped; everything else —
// tabs, control bytes, UTF-8 — passes through verbatim (Go's %q would
// wrongly emit \t and \uNNNN sequences).
func TestEscapeLabelValue(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`say "hi"`, `say \"hi\"`},
		{"line1\nline2", `line1\nline2`},
		{"tab\there", "tab\there"},
		{"utf8 ✓ ünïcode", "utf8 ✓ ünïcode"},
		{"\\\"\n", `\\\"\n`},
		{"", ""},
	} {
		if got := escapeLabelValue(tc.in); got != tc.want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestWritePrometheusHostileLabelValues feeds label values containing
// every character the exposition format treats specially and asserts
// the rendered line is exactly the escaped form — one line, parseable,
// no raw newline or quote breaking the metric apart.
func TestWritePrometheusHostileLabelValues(t *testing.T) {
	r := NewRegistry()
	hostile := "back\\slash \"quote\"\nsecond line\ttab ✓"
	r.Counter("hostile_total", L("path", hostile)).Inc()
	r.Gauge("hostile_gauge", L("v", `a\b"c`)).Set(2)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()

	wantCounter := "hostile_total{path=\"back\\\\slash \\\"quote\\\"\\nsecond line\ttab ✓\"} 1\n"
	if !strings.Contains(out, wantCounter) {
		t.Fatalf("exposition missing escaped counter line %q:\n%s", wantCounter, out)
	}
	if !strings.Contains(out, `hostile_gauge{v="a\\b\"c"} 2`+"\n") {
		t.Fatalf("exposition missing escaped gauge line:\n%s", out)
	}
	// No line may contain an unescaped interior quote: every line must
	// have balanced structure — in particular the raw newline in the
	// value must not have produced a dangling continuation line.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "second line") {
			t.Fatalf("raw newline leaked into exposition: %q", line)
		}
	}
}

// TestWriteJSONHostileLabelValues: the JSON exposition must stay valid
// JSON whatever bytes land in label values.
func TestWriteJSONHostileLabelValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", L("k", "quote\" back\\ nl\n tab\t ✓")).Inc()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("hostile labels broke JSON exposition:\n%s", buf.String())
	}
}

// TestHistogramQuantileEdgeCases covers the degenerate inputs the
// interpolation must survive: empty histograms, exact q=0/q=1,
// single-bucket data, NaN inputs, and infinite observations.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()

	empty := r.HistogramBuckets("empty", []float64{1, 2})
	for _, q := range []float64{0, 0.5, 1, math.NaN()} {
		if got := empty.Quantile(q); !math.IsNaN(got) {
			t.Fatalf("empty histogram Quantile(%v) = %v, want NaN", q, got)
		}
	}

	single := r.HistogramBuckets("single", []float64{10})
	for _, v := range []float64{5, 6, 7} {
		single.Observe(v)
	}
	if got := single.Quantile(0); got != 5 {
		t.Fatalf("q=0 = %v, want observed min 5", got)
	}
	if got := single.Quantile(1); got != 7 {
		t.Fatalf("q=1 = %v, want observed max 7", got)
	}
	if got := single.Quantile(0.5); got < 5 || got > 7 {
		t.Fatalf("single-bucket median %v outside observed [5,7]", got)
	}
	if got := single.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Quantile(NaN) = %v, want NaN", got)
	}

	nan := r.HistogramBuckets("nan", []float64{1})
	nan.Observe(math.NaN())
	if nan.Count() != 0 {
		t.Fatalf("NaN observation counted: %d", nan.Count())
	}
	nan.Observe(0.5)
	if nan.Count() != 1 || nan.Quantile(0.5) != 0.5 {
		t.Fatalf("histogram broken after NaN observation: count=%d median=%v", nan.Count(), nan.Quantile(0.5))
	}

	// +Inf observations land in the overflow bucket; a rank that falls
	// there reports the last finite edge instead of interpolating
	// against infinity, and q=1 reports the true (infinite) max.
	inf := r.HistogramBuckets("inf", []float64{1, 2})
	inf.Observe(0.5)
	inf.Observe(math.Inf(1))
	if got := inf.Quantile(0.9); got != 2 {
		t.Fatalf("rank-in-overflow quantile = %v, want last finite edge 2", got)
	}
	if got := inf.Quantile(1); !math.IsInf(got, 1) {
		t.Fatalf("q=1 with +Inf max = %v, want +Inf", got)
	}

	ninf := r.HistogramBuckets("ninf", []float64{1, 2})
	ninf.Observe(math.Inf(-1))
	ninf.Observe(0.5)
	if got := ninf.Quantile(0.3); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("rank in a −Inf-floored bucket = %v, want finite", got)
	}
	if got := ninf.Quantile(0); !math.IsInf(got, -1) {
		t.Fatalf("q=0 with −Inf min = %v, want −Inf", got)
	}
}
