package obs

import (
	"testing"
	"time"
)

// The span hot path: Span.End resolves its wall/CPU histograms through
// the registry's stageHists cache (one lock-free sync.Map hit after
// the first End per stage name) instead of re-walking the global
// metric map with a freshly formatted name+label key on every call.
// BenchmarkSpanEndRegistryLookup reproduces that replaced path so the
// two numbers stay comparable in one `go test -bench SpanEnd` run.

func BenchmarkSpanEndCachedHandles(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.StartSpan("bench_stage")
		sp.End()
	}
}

func BenchmarkSpanEndRegistryLookup(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.StartSpan("bench_stage")
		d := time.Since(sp.start)
		r.Histogram(StageHistogramName, L("stage", sp.name)).Observe(d.Seconds())
		r.ring.add(SpanRecord{Name: sp.name, Start: sp.start, Duration: d})
	}
}

func BenchmarkSpanEndTraced(b *testing.B) {
	r := NewRegistry()
	root := r.StartTrace("bench_root")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := root.StartChild("bench_stage")
		sp.End()
	}
}
