//go:build !linux

package obs

import "time"

// threadCPU is unavailable off Linux; CPU accounting degrades to
// wall-time-only and every caller falls back gracefully.
func threadCPU() (time.Duration, bool) { return 0, false }
