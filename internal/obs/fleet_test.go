package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// snapWith builds a minimal remote snapshot for merge tests.
func snapWith(counters, gauges []MetricPoint, hists []HistogramPoint) RegistrySnapshot {
	return RegistrySnapshot{Counters: counters, Gauges: gauges, Histograms: hists}
}

func renderFleet(t *testing.T, v *FleetView) string {
	t.Helper()
	var buf bytes.Buffer
	v.WritePrometheus(&buf)
	if err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("merged fleet exposition invalid: %v\n%s", err, buf.String())
	}
	return buf.String()
}

func TestFleetMergeRelabelsAndValidates(t *testing.T) {
	v := NewFleetView(time.Minute)
	v.Update("w0", snapWith(
		[]MetricPoint{{Name: "jobs_total", Value: 3}},
		[]MetricPoint{{Name: "depth", Labels: map[string]string{"shard": "0"}, Value: 2}},
		[]HistogramPoint{{Name: "lat_seconds", Bounds: []float64{0.1, 1}, Counts: []uint64{4, 1, 0}, Sum: 0.9, Count: 5}},
	))
	v.Update("w1", snapWith(
		[]MetricPoint{{Name: "jobs_total", Value: 7}},
		nil, nil,
	))

	out := renderFleet(t, v)
	for _, want := range []string{
		`jobs_total{worker="w0"} 3`,
		`jobs_total{worker="w1"} 7`,
		`depth{shard="0",worker="w0"} 2`,
		`lat_seconds_bucket{le="0.1",worker="w0"} 4`,
		`lat_seconds_bucket{le="1",worker="w0"} 5`,
		`lat_seconds_bucket{le="+Inf",worker="w0"} 5`,
		`lat_seconds_sum{worker="w0"} 0.9`,
		`lat_seconds_count{worker="w0"} 5`,
		`arams_fleet_worker_up{worker="w0"} 1`,
		`arams_fleet_worker_up{worker="w1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged exposition missing %q\n%s", want, out)
		}
	}
	// One TYPE line per name, declared before its samples.
	if strings.Count(out, "# TYPE jobs_total ") != 1 {
		t.Errorf("jobs_total TYPE declared %d times", strings.Count(out, "# TYPE jobs_total "))
	}
}

func TestFleetMergeKindCollisionSkipsLaterWorker(t *testing.T) {
	v := NewFleetView(time.Minute)
	// w0 registers "x" as a counter; w1 claims the same name is a gauge.
	v.Update("w0", snapWith([]MetricPoint{{Name: "x", Value: 1}}, nil, nil))
	v.Update("w1", snapWith(nil, []MetricPoint{{Name: "x", Value: 9}}, nil))

	out := renderFleet(t, v)
	if !strings.Contains(out, `x{worker="w0"} 1`) {
		t.Errorf("first registration's series missing:\n%s", out)
	}
	if strings.Contains(out, `x{worker="w1"}`) {
		t.Errorf("kind-colliding series leaked into exposition:\n%s", out)
	}
	if strings.Count(out, "# TYPE x ") != 1 {
		t.Errorf("colliding name declared more than once:\n%s", out)
	}
}

func TestFleetMergeLabelCollisionDropsDuplicateSeries(t *testing.T) {
	v := NewFleetView(time.Minute)
	// w1's snapshot already carries a worker="w0" label (a coordinator
	// scraping itself re-exports its fabric metrics); merging must not
	// emit the same series key twice.
	v.Update("w0", snapWith([]MetricPoint{{Name: "rpc_total", Value: 5}}, nil, nil))
	v.Update("w1", snapWith([]MetricPoint{
		{Name: "rpc_total", Labels: map[string]string{"worker": "w0"}, Value: 11},
	}, nil, nil))

	out := renderFleet(t, v)
	if got := strings.Count(out, `rpc_total{worker="w0"}`); got != 1 {
		t.Errorf("series key emitted %d times, want 1:\n%s", got, out)
	}
}

func TestFleetStaleWorkerDropsOutButStaysVisible(t *testing.T) {
	v := NewFleetView(10 * time.Millisecond)
	v.Update("dead", snapWith([]MetricPoint{{Name: "stale_total", Value: 4}}, nil, nil))
	time.Sleep(30 * time.Millisecond)
	v.Update("live", snapWith([]MetricPoint{{Name: "fresh_total", Value: 1}}, nil, nil))

	out := renderFleet(t, v)
	if strings.Contains(out, "stale_total") {
		t.Errorf("stale worker's series still exposed:\n%s", out)
	}
	for _, want := range []string{
		`arams_fleet_worker_up{worker="dead"} 0`,
		`arams_fleet_worker_up{worker="live"} 1`,
		`arams_fleet_worker_age_seconds{worker="dead"}`,
		`fresh_total{worker="live"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}

	// The JSON form reports the member as stale rather than hiding it.
	var members []fleetMember
	for _, m := range v.members() {
		members = append(members, m)
	}
	byName := map[string]fleetMember{}
	for _, m := range members {
		byName[m.name] = m
	}
	if !byName["dead"].stale {
		t.Error("dead member not marked stale")
	}
	if byName["live"].stale {
		t.Error("live member marked stale")
	}
}

func TestFleetIncludeLocalRendersLive(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("local_total")
	c.Inc()

	v := NewFleetView(time.Minute)
	v.IncludeLocal("coordinator", reg)

	out := renderFleet(t, v)
	if !strings.Contains(out, `local_total{worker="coordinator"} 1`) {
		t.Errorf("local registry series missing:\n%s", out)
	}
	// Live re-export: a later render sees the new value without Update.
	c.Inc()
	out = renderFleet(t, v)
	if !strings.Contains(out, `local_total{worker="coordinator"} 2`) {
		t.Errorf("local registry not re-exported live:\n%s", out)
	}
	if !strings.Contains(out, `arams_fleet_worker_up{worker="coordinator"} 1`) {
		t.Errorf("local member missing up series:\n%s", out)
	}
}

func TestFleetzJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total").Inc()
	v := NewFleetView(time.Minute)
	v.IncludeLocal("coordinator", reg)
	v.Update("w0", reg.Export())

	payload := FleetzPayload{}
	for _, m := range v.members() {
		payload.Workers = append(payload.Workers, FleetMember{
			Name: m.name, AgeSeconds: m.age.Seconds(), Stale: m.stale, Snapshot: m.snap})
	}
	b, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	var again FleetzPayload
	if err := json.Unmarshal(b, &again); err != nil {
		t.Fatal(err)
	}
	if len(again.Workers) != 2 {
		t.Fatalf("round trip lost members: %d", len(again.Workers))
	}
	if again.Workers[0].Snapshot.Counters[0].Name != "a_total" {
		t.Fatalf("round trip lost counter: %+v", again.Workers[0].Snapshot)
	}
}
