package imgproc

import (
	"math"
	"testing"
)

// gaussian builds a test image with a Gaussian spot at (cx, cy).
func gaussian(w, h int, cx, cy, sigma, amp float64) *Image {
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dx := float64(x) - cx
			dy := float64(y) - cy
			im.Set(x, y, amp*math.Exp(-(dx*dx+dy*dy)/(2*sigma*sigma)))
		}
	}
	return im
}

func TestAtSet(t *testing.T) {
	im := NewImage(4, 3)
	im.Set(2, 1, 7)
	if im.At(2, 1) != 7 || im.Pix[1*4+2] != 7 {
		t.Fatal("At/Set broken")
	}
}

func TestThreshold(t *testing.T) {
	im := NewImage(2, 2)
	im.Pix = []float64{0.1, 0.5, 0.9, 0.3}
	im.Threshold(0.4)
	want := []float64{0, 0.5, 0.9, 0}
	for i := range want {
		if im.Pix[i] != want[i] {
			t.Fatalf("Threshold: %v", im.Pix)
		}
	}
}

func TestThresholdRelative(t *testing.T) {
	im := NewImage(2, 2)
	im.Pix = []float64{1, 4, 10, 2}
	im.ThresholdRelative(0.3) // cut below 3
	if im.Pix[0] != 0 || im.Pix[1] != 4 || im.Pix[3] != 0 {
		t.Fatalf("ThresholdRelative: %v", im.Pix)
	}
}

func TestNormalize(t *testing.T) {
	im := gaussian(16, 16, 8, 8, 2, 5)
	im.Normalize()
	if math.Abs(im.Sum()-1) > 1e-12 {
		t.Fatalf("Sum after Normalize = %v", im.Sum())
	}
	zero := NewImage(4, 4)
	zero.Normalize() // must not divide by zero
	if zero.Sum() != 0 {
		t.Fatal("zero image changed by Normalize")
	}
}

func TestNormalizeMax(t *testing.T) {
	im := gaussian(8, 8, 4, 4, 1.5, 3)
	im.NormalizeMax()
	if math.Abs(im.Max()-1) > 1e-12 {
		t.Fatalf("Max after NormalizeMax = %v", im.Max())
	}
}

func TestCenterOfMass(t *testing.T) {
	im := gaussian(32, 32, 10, 20, 2, 1)
	cx, cy := im.CenterOfMass()
	if math.Abs(cx-10) > 0.1 || math.Abs(cy-20) > 0.1 {
		t.Fatalf("CenterOfMass = (%v, %v), want (10, 20)", cx, cy)
	}
	// Zero image: geometric center.
	z := NewImage(5, 7)
	cx, cy = z.CenterOfMass()
	if cx != 2 || cy != 3 {
		t.Fatalf("zero-image COM = (%v, %v)", cx, cy)
	}
}

func TestCenterMovesCOM(t *testing.T) {
	im := gaussian(33, 33, 8, 24, 2, 1)
	centered := im.Center()
	cx, cy := centered.CenterOfMass()
	if math.Abs(cx-16) > 0.6 || math.Abs(cy-16) > 0.6 {
		t.Fatalf("after Center COM = (%v, %v), want ~(16, 16)", cx, cy)
	}
	// Intensity conserved (spot fully inside after shift).
	if math.Abs(centered.Sum()-im.Sum()) > 1e-6*im.Sum() {
		t.Fatalf("Center lost intensity: %v vs %v", centered.Sum(), im.Sum())
	}
}

func TestShift(t *testing.T) {
	im := NewImage(3, 3)
	im.Set(0, 0, 5)
	s := im.Shift(2, 1)
	if s.At(2, 1) != 5 {
		t.Fatal("Shift moved pixel wrong")
	}
	if s.Sum() != 5 {
		t.Fatal("Shift duplicated or lost intensity")
	}
	// Shifting out of frame drops the pixel.
	gone := im.Shift(-1, 0)
	if gone.Sum() != 0 {
		t.Fatal("out-of-frame pixel survived")
	}
}

func TestCrop(t *testing.T) {
	im := NewImage(6, 4)
	for i := range im.Pix {
		im.Pix[i] = float64(i)
	}
	c := im.Crop(2, 1, 3, 2)
	if c.W != 3 || c.H != 2 {
		t.Fatalf("crop shape %d×%d", c.W, c.H)
	}
	if c.At(0, 0) != im.At(2, 1) || c.At(2, 1) != im.At(4, 2) {
		t.Fatal("crop contents wrong")
	}
}

func TestCropCenter(t *testing.T) {
	im := gaussian(32, 32, 16, 16, 3, 1)
	c := im.CropCenter(16, 16)
	if c.W != 16 || c.H != 16 {
		t.Fatalf("CropCenter shape %d×%d", c.W, c.H)
	}
	cx, cy := c.CenterOfMass()
	if math.Abs(cx-7.5) > 0.5 || math.Abs(cy-7.5) > 0.5 {
		t.Fatalf("CropCenter lost the spot: COM (%v, %v)", cx, cy)
	}
}

func TestCropPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds crop did not panic")
		}
	}()
	NewImage(4, 4).Crop(2, 2, 4, 4)
}

func TestBinConservesIntensity(t *testing.T) {
	im := gaussian(16, 16, 8, 8, 2, 1)
	b := im.Bin(4)
	if b.W != 4 || b.H != 4 {
		t.Fatalf("bin shape %d×%d", b.W, b.H)
	}
	if math.Abs(b.Sum()-im.Sum()) > 1e-12 {
		t.Fatalf("Bin changed total intensity: %v vs %v", b.Sum(), im.Sum())
	}
}

func TestBinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad bin factor did not panic")
		}
	}()
	NewImage(10, 10).Bin(3)
}

func TestStatsCircularity(t *testing.T) {
	round := gaussian(48, 48, 24, 24, 4, 1)
	st := ComputeStats(round)
	if st.Circularity < 0.95 {
		t.Fatalf("round spot circularity %v", st.Circularity)
	}
	// Elongated spot: scale x width by 4.
	elong := NewImage(48, 48)
	for y := 0; y < 48; y++ {
		for x := 0; x < 48; x++ {
			dx := (float64(x) - 24) / 4
			dy := float64(y) - 24
			elong.Set(x, y, math.Exp(-(dx*dx+dy*dy)/(2*4)))
		}
	}
	est := ComputeStats(elong)
	if est.Circularity > 0.5 {
		t.Fatalf("elongated spot circularity %v", est.Circularity)
	}
}

func TestStatsOffset(t *testing.T) {
	im := gaussian(33, 33, 20, 16, 2, 1)
	st := ComputeStats(im)
	if math.Abs(st.OffsetX-4) > 0.2 || math.Abs(st.OffsetY) > 0.2 {
		t.Fatalf("offsets (%v, %v), want (4, 0)", st.OffsetX, st.OffsetY)
	}
}

func TestPreprocessorChain(t *testing.T) {
	im := gaussian(32, 32, 10, 10, 2, 7)
	p := Preprocessor{ThresholdFrac: 0.01, Center: true, Normalize: true, BinFactor: 2}
	out := p.Apply(im)
	if out.W != 16 || out.H != 16 {
		t.Fatalf("preprocessed shape %d×%d", out.W, out.H)
	}
	if math.Abs(out.Sum()-1) > 1e-9 {
		t.Fatalf("preprocessed sum %v", out.Sum())
	}
	cx, cy := out.CenterOfMass()
	if math.Abs(cx-7.5) > 1 || math.Abs(cy-7.5) > 1 {
		t.Fatalf("preprocessed COM (%v, %v)", cx, cy)
	}
	// Original untouched.
	if im.Max() != 7 {
		t.Fatal("Apply mutated its input")
	}
}

func TestToMatrix(t *testing.T) {
	a := gaussian(4, 4, 2, 2, 1, 1)
	b := gaussian(4, 4, 1, 1, 1, 1)
	m := ToMatrix([]*Image{a, b})
	if r, c := m.Dims(); r != 2 || c != 16 {
		t.Fatalf("matrix shape %d×%d", r, c)
	}
	if m.At(0, 5) != a.Pix[5] || m.At(1, 7) != b.Pix[7] {
		t.Fatal("matrix contents wrong")
	}
	if e := ToMatrix(nil); e.RowsN != 0 {
		t.Fatal("empty batch should give empty matrix")
	}
}
