package imgproc

import "testing"

func BenchmarkPreprocessorApply(b *testing.B) {
	im := gaussian(128, 128, 64, 64, 10, 5)
	p := Preprocessor{ThresholdFrac: 0.02, Center: true, Normalize: true, BinFactor: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Apply(im)
	}
}

func BenchmarkCenterOfMass(b *testing.B) {
	im := gaussian(256, 256, 100, 140, 12, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = im.CenterOfMass()
	}
}

func BenchmarkRadialProfile(b *testing.B) {
	im := gaussian(256, 256, 128, 128, 40, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = RadialProfile(im, 64)
	}
}
