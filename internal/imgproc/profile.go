package imgproc

import "math"

// This file provides the radial/azimuthal reductions that X-ray
// scattering analyses apply to area-detector frames: the azimuthally
// averaged radial profile I(q) used to locate diffraction rings, the
// ring-resolved azimuthal profile I(φ) used to quantify anisotropy
// (the quadrant weighting of Fig. 6), and per-quadrant intensity sums.

// RadialProfile returns the azimuthally averaged intensity in nbins
// equal-width radial bins around the image center, together with the
// bin centers in pixels. Empty bins report zero.
func RadialProfile(im *Image, nbins int) (radii, intensity []float64) {
	if nbins <= 0 {
		panic("imgproc: RadialProfile needs nbins > 0")
	}
	cx := float64(im.W-1) / 2
	cy := float64(im.H-1) / 2
	maxR := math.Hypot(cx, cy)
	sums := make([]float64, nbins)
	counts := make([]int, nbins)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r := math.Hypot(float64(x)-cx, float64(y)-cy)
			bin := int(r / maxR * float64(nbins))
			if bin >= nbins {
				bin = nbins - 1
			}
			sums[bin] += im.Pix[y*im.W+x]
			counts[bin]++
		}
	}
	radii = make([]float64, nbins)
	intensity = make([]float64, nbins)
	for b := 0; b < nbins; b++ {
		radii[b] = (float64(b) + 0.5) * maxR / float64(nbins)
		if counts[b] > 0 {
			intensity[b] = sums[b] / float64(counts[b])
		}
	}
	return radii, intensity
}

// RingMax returns the radius (in pixels) of the brightest radial bin —
// a quick ring-position estimate for diffraction frames.
func RingMax(im *Image, nbins int) float64 {
	radii, intensity := RadialProfile(im, nbins)
	best := 0
	for b, v := range intensity {
		if v > intensity[best] {
			best = b
		}
	}
	return radii[best]
}

// AzimuthalProfile returns the mean intensity in nbins azimuthal
// sectors restricted to the annulus [rMin, rMax] around the center.
// Bin 0 starts at angle 0 (along +x) and angles increase toward +y
// (downward in image coordinates).
func AzimuthalProfile(im *Image, rMin, rMax float64, nbins int) []float64 {
	if nbins <= 0 {
		panic("imgproc: AzimuthalProfile needs nbins > 0")
	}
	cx := float64(im.W-1) / 2
	cy := float64(im.H-1) / 2
	sums := make([]float64, nbins)
	counts := make([]int, nbins)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			dx := float64(x) - cx
			dy := float64(y) - cy
			r := math.Hypot(dx, dy)
			if r < rMin || r > rMax {
				continue
			}
			phi := math.Atan2(dy, dx)
			if phi < 0 {
				phi += 2 * math.Pi
			}
			bin := int(phi / (2 * math.Pi) * float64(nbins))
			if bin >= nbins {
				bin = nbins - 1
			}
			sums[bin] += im.Pix[y*im.W+x]
			counts[bin]++
		}
	}
	out := make([]float64, nbins)
	for b := range out {
		if counts[b] > 0 {
			out[b] = sums[b] / float64(counts[b])
		}
	}
	return out
}

// QuadrantSums returns total intensity per detector quadrant in the
// order (NE, NW, SW, SE) — "north" being negative y, matching the
// diffraction generator's convention.
func QuadrantSums(im *Image) [4]float64 {
	cx := float64(im.W-1) / 2
	cy := float64(im.H-1) / 2
	var q [4]float64
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			dx := float64(x) - cx
			dy := float64(y) - cy
			v := im.Pix[y*im.W+x]
			switch {
			case dx >= 0 && dy < 0:
				q[0] += v
			case dx < 0 && dy < 0:
				q[1] += v
			case dx < 0 && dy >= 0:
				q[2] += v
			default:
				q[3] += v
			}
		}
	}
	return q
}

// Anisotropy returns a scale-free measure of azimuthal non-uniformity
// on the ring annulus: the coefficient of variation of the azimuthal
// profile (0 for a perfectly isotropic ring).
func Anisotropy(im *Image, rMin, rMax float64) float64 {
	prof := AzimuthalProfile(im, rMin, rMax, 36)
	var mean float64
	for _, v := range prof {
		mean += v
	}
	mean /= float64(len(prof))
	if mean == 0 {
		return 0
	}
	var variance float64
	for _, v := range prof {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(prof))
	return math.Sqrt(variance) / mean
}
