// Package imgproc provides the detector-image preprocessing used by the
// monitoring pipeline (§VI of the paper): intensity thresholding,
// intensity normalization, center-of-mass centering, cropping and
// binning — the steps that make "the primary shape of the beam profile
// and its distribution of intensity the focus of the analysis".
package imgproc

import (
	"fmt"
	"math"

	"arams/internal/mat"
)

// Image is a single-channel detector frame in row-major float64.
type Image struct {
	W, H int
	Pix  []float64 // len W*H, index y*W+x
}

// NewImage returns a zeroed W×H image.
func NewImage(w, h int) *Image {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("imgproc: invalid size %d×%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the pixel at (x, y).
func (im *Image) At(x, y int) float64 { return im.Pix[y*im.W+x] }

// Set assigns the pixel at (x, y).
func (im *Image) Set(x, y int, v float64) { im.Pix[y*im.W+x] = v }

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := NewImage(im.W, im.H)
	copy(out.Pix, im.Pix)
	return out
}

// Sum returns the total intensity.
func (im *Image) Sum() float64 {
	var s float64
	for _, v := range im.Pix {
		s += v
	}
	return s
}

// Max returns the maximum pixel value (0 for an empty image).
func (im *Image) Max() float64 {
	var mx float64
	for i, v := range im.Pix {
		if i == 0 || v > mx {
			mx = v
		}
	}
	return mx
}

// Threshold zeroes every pixel below the given absolute intensity, in
// place, and returns the image for chaining.
func (im *Image) Threshold(level float64) *Image {
	for i, v := range im.Pix {
		if v < level {
			im.Pix[i] = 0
		}
	}
	return im
}

// ThresholdRelative zeroes pixels below frac·max, in place. frac in
// [0, 1].
func (im *Image) ThresholdRelative(frac float64) *Image {
	return im.Threshold(frac * im.Max())
}

// Normalize scales the image in place to unit total intensity; an
// all-zero image is left unchanged. Returns the image for chaining.
func (im *Image) Normalize() *Image {
	s := im.Sum()
	if s == 0 {
		return im
	}
	inv := 1 / s
	for i := range im.Pix {
		im.Pix[i] *= inv
	}
	return im
}

// NormalizeMax scales the image in place so the peak pixel is 1.
func (im *Image) NormalizeMax() *Image {
	mx := im.Max()
	if mx == 0 {
		return im
	}
	inv := 1 / mx
	for i := range im.Pix {
		im.Pix[i] *= inv
	}
	return im
}

// CenterOfMass returns the intensity-weighted centroid (x, y). For an
// all-zero image it returns the geometric center.
func (im *Image) CenterOfMass() (cx, cy float64) {
	var sx, sy, s float64
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			v := im.Pix[y*im.W+x]
			sx += v * float64(x)
			sy += v * float64(y)
			s += v
		}
	}
	if s == 0 {
		return float64(im.W-1) / 2, float64(im.H-1) / 2
	}
	return sx / s, sy / s
}

// Center translates the image (integer shift, zero fill) so its center
// of mass lands on the geometric center. Returns a new image.
func (im *Image) Center() *Image {
	cx, cy := im.CenterOfMass()
	dx := int(math.Round(float64(im.W-1)/2 - cx))
	dy := int(math.Round(float64(im.H-1)/2 - cy))
	return im.Shift(dx, dy)
}

// Shift translates the image by (dx, dy) pixels with zero fill,
// returning a new image.
func (im *Image) Shift(dx, dy int) *Image {
	out := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		sy := y - dy
		if sy < 0 || sy >= im.H {
			continue
		}
		for x := 0; x < im.W; x++ {
			sx := x - dx
			if sx < 0 || sx >= im.W {
				continue
			}
			out.Pix[y*im.W+x] = im.Pix[sy*im.W+sx]
		}
	}
	return out
}

// Crop extracts the rectangle [x0, x0+w) × [y0, y0+h) as a new image.
func (im *Image) Crop(x0, y0, w, h int) *Image {
	if x0 < 0 || y0 < 0 || x0+w > im.W || y0+h > im.H {
		panic(fmt.Sprintf("imgproc: crop [%d,%d,%d,%d] outside %d×%d", x0, y0, w, h, im.W, im.H))
	}
	out := NewImage(w, h)
	for y := 0; y < h; y++ {
		copy(out.Pix[y*w:(y+1)*w], im.Pix[(y0+y)*im.W+x0:(y0+y)*im.W+x0+w])
	}
	return out
}

// CropCenter extracts a centered w×h rectangle.
func (im *Image) CropCenter(w, h int) *Image {
	return im.Crop((im.W-w)/2, (im.H-h)/2, w, h)
}

// Bin downsamples by summing factor×factor blocks (detector pixel
// binning). W and H must be divisible by factor.
func (im *Image) Bin(factor int) *Image {
	if factor <= 0 || im.W%factor != 0 || im.H%factor != 0 {
		panic(fmt.Sprintf("imgproc: bin factor %d incompatible with %d×%d", factor, im.W, im.H))
	}
	out := NewImage(im.W/factor, im.H/factor)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			out.Pix[(y/factor)*out.W+x/factor] += im.Pix[y*im.W+x]
		}
	}
	return out
}

// Flatten returns the pixel buffer as a feature vector (shared storage).
func (im *Image) Flatten() []float64 { return im.Pix }

// Stats summarizes shape factors of an image used to validate the
// latent embeddings: lateral center-of-mass offset and circularity.
type Stats struct {
	// OffsetX and OffsetY are the center-of-mass displacement from the
	// geometric center, in pixels.
	OffsetX, OffsetY float64
	// Circularity is σ_minor/σ_major of the intensity second moments:
	// 1 for a circular profile, → 0 for elongated or multi-lobed.
	Circularity float64
}

// ComputeStats measures the shape factors of an image.
func ComputeStats(im *Image) Stats {
	cx, cy := im.CenterOfMass()
	var sxx, syy, sxy, s float64
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			v := im.Pix[y*im.W+x]
			if v == 0 {
				continue
			}
			dx := float64(x) - cx
			dy := float64(y) - cy
			sxx += v * dx * dx
			syy += v * dy * dy
			sxy += v * dx * dy
			s += v
		}
	}
	st := Stats{
		OffsetX: cx - float64(im.W-1)/2,
		OffsetY: cy - float64(im.H-1)/2,
	}
	if s == 0 {
		return st
	}
	sxx /= s
	syy /= s
	sxy /= s
	// Eigenvalues of the 2×2 covariance give the principal widths.
	tr := sxx + syy
	det := sxx*syy - sxy*sxy
	disc := math.Sqrt(math.Max(0, tr*tr/4-det))
	lMaj := tr/2 + disc
	lMin := tr/2 - disc
	if lMaj > 0 && lMin > 0 {
		st.Circularity = math.Sqrt(lMin / lMaj)
	}
	return st
}

// Mask marks bad detector pixels (hot/dead) to exclude from analysis.
type Mask struct {
	W, H int
	Bad  []bool // flat index y*W+x, true = excluded
}

// NewMask returns an all-good mask.
func NewMask(w, h int) *Mask {
	return &Mask{W: w, H: h, Bad: make([]bool, w*h)}
}

// NumBad returns the number of masked pixels.
func (m *Mask) NumBad() int {
	n := 0
	for _, b := range m.Bad {
		if b {
			n++
		}
	}
	return n
}

// Apply zeroes the masked pixels of im in place and returns im.
func (m *Mask) Apply(im *Image) *Image {
	if im.W != m.W || im.H != m.H {
		panic(fmt.Sprintf("imgproc: mask %d×%d vs frame %d×%d", m.W, m.H, im.W, im.H))
	}
	for i, bad := range m.Bad {
		if bad {
			im.Pix[i] = 0
		}
	}
	return im
}

// Preprocessor is a configurable preprocessing chain applied to each
// frame before sketching, mirroring the paper's pipeline.
type Preprocessor struct {
	Mask          *Mask   // bad-pixel mask applied first; nil disables
	Pedestal      float64 // constant subtracted before thresholding
	ThresholdFrac float64 // relative threshold; 0 disables
	Center        bool    // center-of-mass centering
	Normalize     bool    // unit total intensity
	BinFactor     int     // pixel binning; <= 1 disables
}

// Apply runs the chain on a copy of the frame.
func (p Preprocessor) Apply(im *Image) *Image {
	return p.applySteps(im.Clone())
}

// applySteps runs the chain on out, which it owns: in-place steps
// mutate it, reshaping steps (Center, Bin) replace it.
func (p Preprocessor) applySteps(out *Image) *Image {
	if p.Mask != nil {
		p.Mask.Apply(out)
	}
	if p.Pedestal != 0 {
		for i, v := range out.Pix {
			v -= p.Pedestal
			if v < 0 {
				v = 0
			}
			out.Pix[i] = v
		}
	}
	if p.ThresholdFrac > 0 {
		out.ThresholdRelative(p.ThresholdFrac)
	}
	if p.Center {
		out = out.Center()
	}
	if p.BinFactor > 1 {
		out = out.Bin(p.BinFactor)
	}
	if p.Normalize {
		out.Normalize()
	}
	return out
}

// ApplyVec runs the chain and returns the preprocessed frame as a
// feature vector ready for the sketch to adopt — the zero-copy form of
// Apply(im).Flatten() for the streaming ingest hot path. The working
// copy of the frame is made in buf when its capacity allows (callers
// feed it from mat.GetVec, recycling window-evicted vectors), so a
// chain with only in-place steps returns buf itself and the hot path
// allocates nothing. ApplyVec takes ownership of buf: when a reshaping
// step (Center, Bin) replaces the working image, the superseded buffer
// is recycled to the vector pool internally and the returned vector is
// the reshaped frame's storage. The result is always the caller's to
// keep, never aliased by the pool.
func (p Preprocessor) ApplyVec(im *Image, buf []float64) []float64 {
	n := im.W * im.H
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	copy(buf, im.Pix)
	out := p.applySteps(&Image{W: im.W, H: im.H, Pix: buf})
	if len(out.Pix) > 0 && len(buf) > 0 && &out.Pix[0] != &buf[0] {
		mat.PutVec(buf)
	}
	return out.Pix
}

// ToMatrix flattens a batch of equal-size images into an n×(W·H) data
// matrix, copying pixels.
func ToMatrix(imgs []*Image) *mat.Matrix {
	if len(imgs) == 0 {
		return mat.New(0, 0)
	}
	d := imgs[0].W * imgs[0].H
	out := mat.New(len(imgs), d)
	for i, im := range imgs {
		if im.W*im.H != d {
			panic("imgproc: ToMatrix images differ in size")
		}
		copy(out.Row(i), im.Pix)
	}
	return out
}
