package imgproc

import (
	"math"
	"testing"
)

// ring renders a thin ring of the given radius with per-quadrant
// weights (NE, NW, SW, SE).
func ring(size int, radius, width float64, q [4]float64) *Image {
	im := NewImage(size, size)
	c := float64(size-1) / 2
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			dx := float64(x) - c
			dy := float64(y) - c
			r := math.Hypot(dx, dy)
			radial := math.Exp(-(r - radius) * (r - radius) / (2 * width * width))
			var w float64
			switch {
			case dx >= 0 && dy < 0:
				w = q[0]
			case dx < 0 && dy < 0:
				w = q[1]
			case dx < 0 && dy >= 0:
				w = q[2]
			default:
				w = q[3]
			}
			im.Set(x, y, radial*w)
		}
	}
	return im
}

func TestRadialProfilePeak(t *testing.T) {
	im := ring(96, 30, 2, [4]float64{1, 1, 1, 1})
	radii, intensity := RadialProfile(im, 48)
	best := 0
	for b := range intensity {
		if intensity[b] > intensity[best] {
			best = b
		}
	}
	if math.Abs(radii[best]-30) > 2 {
		t.Fatalf("radial peak at %v, want ~30", radii[best])
	}
}

func TestRingMax(t *testing.T) {
	im := ring(128, 40, 3, [4]float64{1, 1, 1, 1})
	if got := RingMax(im, 64); math.Abs(got-40) > 2 {
		t.Fatalf("RingMax = %v, want ~40", got)
	}
}

func TestRadialProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nbins=0 did not panic")
		}
	}()
	RadialProfile(NewImage(4, 4), 0)
}

func TestAzimuthalProfileUniformRing(t *testing.T) {
	im := ring(96, 30, 2, [4]float64{1, 1, 1, 1})
	prof := AzimuthalProfile(im, 25, 35, 12)
	var mean float64
	for _, v := range prof {
		mean += v
	}
	mean /= 12
	for b, v := range prof {
		if math.Abs(v-mean)/mean > 0.1 {
			t.Fatalf("uniform ring bin %d deviates: %v vs mean %v", b, v, mean)
		}
	}
}

func TestAzimuthalProfileAnisotropicRing(t *testing.T) {
	// Bright east/west, dark north/south.
	im := ring(96, 30, 2, [4]float64{1, 0.1, 1, 0.1})
	// Wait: quadrants are (NE, NW, SW, SE); {1, .1, 1, .1} lights NE+SW.
	prof := AzimuthalProfile(im, 25, 35, 4)
	// Bin 0 covers φ∈[0,π/2): +x,+y = SE quadrant (dy ≥ 0 downward).
	// SE weight 0.1, next bin SW weight 1, etc.
	if !(prof[1] > 3*prof[0] && prof[3] > 3*prof[2]) {
		t.Fatalf("azimuthal anisotropy not detected: %v", prof)
	}
}

func TestQuadrantSums(t *testing.T) {
	im := ring(96, 30, 2, [4]float64{1, 0.2, 0.2, 0.2})
	q := QuadrantSums(im)
	if !(q[0] > 3*q[1] && q[0] > 3*q[2] && q[0] > 3*q[3]) {
		t.Fatalf("NE quadrant not dominant: %v", q)
	}
	total := q[0] + q[1] + q[2] + q[3]
	if math.Abs(total-im.Sum()) > 1e-9*total {
		t.Fatalf("quadrant sums %v != total %v", total, im.Sum())
	}
}

func TestAnisotropy(t *testing.T) {
	iso := ring(96, 30, 2, [4]float64{1, 1, 1, 1})
	aniso := ring(96, 30, 2, [4]float64{1, 0.1, 1, 0.1})
	ai := Anisotropy(iso, 25, 35)
	aa := Anisotropy(aniso, 25, 35)
	if ai > 0.1 {
		t.Fatalf("isotropic ring anisotropy %v", ai)
	}
	if aa < 0.3 {
		t.Fatalf("anisotropic ring anisotropy %v", aa)
	}
	if Anisotropy(NewImage(32, 32), 5, 10) != 0 {
		t.Fatal("empty image anisotropy nonzero")
	}
}
