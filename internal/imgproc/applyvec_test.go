package imgproc

import (
	"math"
	"testing"
)

// applyVecConfigs covers every step of the chain, including the
// reshaping steps (Center, Bin) that force applySteps to replace the
// caller's buffer mid-chain.
func applyVecConfigs(w, h int) []Preprocessor {
	mask := NewMask(w, h)
	mask.Bad[1*w+1] = true
	return []Preprocessor{
		{},
		{Pedestal: 0.5},
		{ThresholdFrac: 0.2},
		{Normalize: true},
		{Center: true},
		{BinFactor: 2},
		{Mask: mask, Pedestal: 0.25, ThresholdFrac: 0.1, Normalize: true},
		{Mask: mask, Pedestal: 0.25, Center: true, BinFactor: 2, Normalize: true},
	}
}

// TestApplyVecMatchesApply pins the zero-copy ingest contract: for
// every preprocessor configuration, ApplyVec into a caller buffer
// produces exactly the pixels Apply produces, never mutates the input
// frame, and returns a vector of the post-chain length (which shrinks
// under binning).
func TestApplyVecMatchesApply(t *testing.T) {
	const w, h = 8, 6
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, float64(1+x)*math.Sqrt(float64(1+y)))
		}
	}
	orig := im.Clone()

	for ci, p := range applyVecConfigs(w, h) {
		want := p.Apply(im)
		for _, buf := range [][]float64{nil, make([]float64, 4), make([]float64, w*h)} {
			got := p.ApplyVec(im, buf)
			if len(got) != len(want.Pix) {
				t.Fatalf("config %d: ApplyVec length %d, want %d", ci, len(got), len(want.Pix))
			}
			for i := range got {
				if got[i] != want.Pix[i] {
					t.Fatalf("config %d: pixel %d = %v, want %v", ci, i, got[i], want.Pix[i])
				}
			}
		}
		for i := range im.Pix {
			if im.Pix[i] != orig.Pix[i] {
				t.Fatalf("config %d: ApplyVec mutated the input frame at pixel %d", ci, i)
			}
		}
	}
}
