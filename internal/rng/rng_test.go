package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	// Children and parent should all produce distinct streams.
	seen := map[uint64]bool{}
	for i := 0; i < 200; i++ {
		for _, g := range []*RNG{parent, c1, c2} {
			v := g.Uint64()
			if seen[v] {
				t.Fatalf("collision across split streams at step %d", i)
			}
			seen[v] = true
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64OpenNonzero(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		if v := r.Float64Open(); v <= 0 || v >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", v)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(5)
	f := func(n uint16) bool {
		m := uint64(n) + 1
		v := r.Uint64n(m)
		return v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUniform(t *testing.T) {
	r := New(6)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("Exp mean = %v, want ~1", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(10)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		tol := 4 * math.Sqrt(mean/n) * 3
		if math.Abs(got-mean) > tol+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestPoissonEdge(t *testing.T) {
	r := New(11)
	if got := r.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := r.Poisson(-5); got != 0 {
		t.Errorf("Poisson(-5) = %d, want 0", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(12)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed contents: %v", xs)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var s uint64
	for i := 0; i < b.N; i++ {
		s += r.Uint64()
	}
	_ = s
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var s float64
	for i := 0; i < b.N; i++ {
		s += r.Norm()
	}
	_ = s
}
