// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the repository.
//
// Every stochastic component in the library (synthetic data generation,
// priority sampling, Gaussian probes for reconstruction-error estimation,
// UMAP negative sampling, detector noise) takes an explicit *rng.RNG so
// that experiments and tests are exactly reproducible. Parallel code
// derives independent per-worker streams with Split, which produces a
// statistically independent generator from a parent stream without
// sharing state, so results do not depend on goroutine scheduling.
//
// The core generator is PCG64 (permuted congruential generator,
// O'Neill 2014) with a 128-bit LCG state and an XSL-RR output function.
package rng

import "math"

// RNG is a PCG64 pseudo-random generator. It is not safe for concurrent
// use; derive one generator per goroutine with Split.
type RNG struct {
	hi, lo uint64 // 128-bit state
	incHi  uint64 // stream selector (must be odd in low word)
	incLo  uint64

	haveGauss bool
	gauss     float64
}

// Default multiplier for the 128-bit LCG step (PCG reference constants).
const (
	mulHi = 2549297995355413924
	mulLo = 4865540595714422341
)

// New returns a generator seeded from seed on the default stream.
func New(seed uint64) *RNG {
	return NewStream(seed, 0xda3e39cb94b95bdb)
}

// NewStream returns a generator with an explicit stream identifier,
// allowing many independent sequences from the same seed.
func NewStream(seed, stream uint64) *RNG {
	r := &RNG{}
	r.incHi = stream
	r.incLo = stream<<1 | 1 // increment must be odd
	// Standard PCG seeding: advance once, add seed, advance again.
	r.step()
	r.lo += seed
	r.hi += mix64(seed)
	r.step()
	return r
}

// Split derives a new, statistically independent generator from r.
// The parent is advanced, so successive Splits yield distinct children.
func (r *RNG) Split() *RNG {
	seed := r.Uint64()
	stream := r.Uint64() | 1
	return NewStream(seed, stream)
}

func mix64(z uint64) uint64 {
	// splitmix64 finalizer; decorrelates nearby seeds.
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// step advances the 128-bit LCG state.
func (r *RNG) step() {
	// (hi,lo) = (hi,lo)*mul + inc, all mod 2^128.
	lo, carry := mul64Lo(r.lo, mulLo)
	hi := r.hi*mulLo + r.lo*mulHi + carry
	lo += r.incLo
	if lo < r.incLo {
		hi++
	}
	hi += r.incHi
	r.hi, r.lo = hi, lo
}

// mul64Lo returns the low 64 bits of a*b and the high 64 bits (carry).
func mul64Lo(a, b uint64) (lo, hi uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a0 * b0
	w0 := t & mask
	carry := t >> 32
	t = a1*b0 + carry
	w1 := t & mask
	w2 := t >> 32
	t = a0*b1 + w1
	lo = t<<32 | w0
	hi = a1*b1 + w2 + t>>32
	return lo, hi
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.step()
	// XSL-RR output: xor-shift-low, random rotate.
	x := r.hi ^ r.lo
	rot := uint(r.hi >> 58)
	return x>>rot | x<<((64-rot)&63)
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Lemire's nearly-divisionless method with rejection.
	for {
		v := r.Uint64()
		lo, hi := mul64Lo(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64Open returns a uniform value in (0, 1), never exactly zero,
// suitable for use as a denominator (e.g. priority sampling) or inside
// logarithms.
func (r *RNG) Float64Open() float64 {
	for {
		v := r.Float64()
		if v > 0 {
			return v
		}
	}
}

// Norm returns a standard normal variate using the Marsaglia polar
// method, caching the spare deviate.
func (r *RNG) Norm() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.haveGauss = true
		return u * f
	}
}

// Exp returns an exponentially distributed variate with rate 1.
func (r *RNG) Exp() float64 {
	return -math.Log(r.Float64Open())
}

// Poisson returns a Poisson-distributed variate with the given mean.
// For small means it uses Knuth's product method; for large means a
// Gaussian approximation with continuity correction, which is adequate
// for simulated detector noise.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := mean + math.Sqrt(mean)*r.Norm() + 0.5
	if v < 0 {
		return 0
	}
	return int(v)
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
