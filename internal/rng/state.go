package rng

// State is a complete snapshot of a generator, exposed so checkpoint
// code can persist and restore the exact stream position. Restoring a
// State and continuing to draw produces the identical sequence the
// original generator would have produced, which is what makes a
// restored sketch bit-reproducible: the priority-sampling and
// probe draws after a restart match the uninterrupted run.
type State struct {
	Hi, Lo       uint64 // 128-bit LCG state
	IncHi, IncLo uint64 // stream increment
	HaveGauss    bool   // a spare Marsaglia deviate is cached
	Gauss        float64
}

// State captures the generator's current state.
func (r *RNG) State() State {
	return State{
		Hi: r.hi, Lo: r.lo,
		IncHi: r.incHi, IncLo: r.incLo,
		HaveGauss: r.haveGauss, Gauss: r.gauss,
	}
}

// FromState reconstructs a generator from a snapshot. Valid returns
// false for states whose increment is even (impossible for any
// generator built by this package), which a caller restoring from an
// untrusted checkpoint should treat as corruption.
func FromState(s State) *RNG {
	return &RNG{
		hi: s.Hi, lo: s.Lo,
		incHi: s.IncHi, incLo: s.IncLo,
		haveGauss: s.HaveGauss, gauss: s.Gauss,
	}
}

// Valid reports whether the state could have been produced by a
// generator from this package: the LCG increment's low word must be
// odd.
func (s State) Valid() bool { return s.IncLo&1 == 1 }
