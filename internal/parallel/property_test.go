package parallel

import (
	"testing"
	"testing/quick"
	"time"

	"arams/internal/mat"
	"arams/internal/rng"
	"arams/internal/sketch"
)

// randomShardSplit cuts x into p contiguous shards at p−1 random,
// distinct split points — unlike SplitRows, shard sizes are arbitrary
// (including empty), which is exactly the generality the mergeability
// proof claims.
func randomShardSplit(x *mat.Matrix, p int, g *rng.RNG) []*mat.Matrix {
	cuts := make([]int, 0, p+1)
	cuts = append(cuts, 0)
	for i := 0; i < p-1; i++ {
		cuts = append(cuts, g.Intn(x.RowsN+1))
	}
	cuts = append(cuts, x.RowsN)
	// Insertion sort; p is tiny.
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	shards := make([]*mat.Matrix, p)
	for i := 0; i < p; i++ {
		shards[i] = x.Rows(cuts[i], cuts[i+1])
	}
	return shards
}

// propertyParams maps raw quick-generated values onto the bounded
// parameter space the properties range over.
type propertyParams struct {
	n, d, ell, p, arity int
	g                   *rng.RNG
}

func paramsFrom(seed uint64, nRaw, dRaw, ellRaw, pRaw, arityRaw uint8) propertyParams {
	g := rng.New(seed)
	return propertyParams{
		n:     60 + int(nRaw)%160,  // 60..219 rows
		d:     4 + int(dRaw)%12,    // 4..15 features
		ell:   3 + int(ellRaw)%8,   // 3..10 directions
		p:     2 + int(pRaw)%7,     // 2..8 shards
		arity: 2 + int(arityRaw)%3, // 2..4 tree arity
		g:     g,
	}
}

// TestQuickMergeabilityBound is the property form of the paper's
// mergeability claim: for random data, random shard splits (including
// empty shards), random merge orders, and random tree arities, the
// tree-merged sketch satisfies ‖AᵀA − BᵀB‖₂ ≤ ‖A‖_F²/ℓ, and the tree
// and serial merges agree within that same bound.
func TestQuickMergeabilityBound(t *testing.T) {
	if testing.Short() {
		t.Skip("property test in -short mode")
	}
	property := func(seed uint64, nRaw, dRaw, ellRaw, pRaw, arityRaw uint8) bool {
		pp := paramsFrom(seed, nRaw, dRaw, ellRaw, pRaw, arityRaw)
		x := mat.RandGaussian(pp.n, pp.d, pp.g)
		shards := randomShardSplit(x, pp.p, pp.g)
		// Random merge order: permute the shard list. Contiguity of
		// each shard is preserved; the tree now folds them in a random
		// arrangement.
		perm := pp.g.Perm(len(shards))
		shuffled := make([]*mat.Matrix, len(shards))
		for i, j := range perm {
			shuffled[i] = shards[j]
		}
		mk := FDSketcher(pp.ell, sketch.Options{})
		gTree, _ := RunArity(shuffled, mk, TreeMerge, pp.arity)
		gSerial, _ := Run(shuffled, mk, SerialMerge)

		bound := fdBound(x, pp.ell)
		eTree := sketch.CovErr(x, gTree.Sketch())
		eSerial := sketch.CovErr(x, gSerial.Sketch())
		if eTree > bound {
			t.Logf("tree bound violated: %v > %v (n=%d d=%d ℓ=%d p=%d arity=%d)",
				eTree, bound, pp.n, pp.d, pp.ell, pp.p, pp.arity)
			return false
		}
		if eSerial > bound {
			t.Logf("serial bound violated: %v > %v", eSerial, bound)
			return false
		}
		if diff := eTree - eSerial; diff > bound || -diff > bound {
			t.Logf("tree and serial disagree beyond the bound: |%v − %v| > %v", eTree, eSerial, bound)
			return false
		}
		if gTree.Seen() != pp.n || gSerial.Seen() != pp.n {
			t.Logf("row accounting broken: tree=%d serial=%d want %d", gTree.Seen(), gSerial.Seen(), pp.n)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFaultInjectedBound extends the property to the chaos path:
// every injected failure pattern — fail probability up to 0.3 per leg,
// plus corruption — must still yield a sketch within the covariance
// bound, whatever mix of retries, re-sketch recoveries, and serial
// fallback it provokes.
func TestQuickFaultInjectedBound(t *testing.T) {
	if testing.Short() {
		t.Skip("property test in -short mode")
	}
	property := func(seed uint64, nRaw, dRaw, ellRaw, pRaw, arityRaw, failRaw uint8) bool {
		pp := paramsFrom(seed, nRaw, dRaw, ellRaw, pRaw, arityRaw)
		x := mat.RandGaussian(pp.n, pp.d, pp.g)
		shards := randomShardSplit(x, pp.p, pp.g)
		failProb := float64(failRaw%31) / 100 // 0 .. 0.30
		mk := FDSketcher(pp.ell, sketch.Options{})
		global, stats := RunArity(shards, mk, TreeMerge, pp.arity,
			WithFaults(Faults{FailProb: failProb, CorruptProb: failProb / 2, Seed: seed}),
			WithRetry(Retry{MaxAttempts: 2, Backoff: 10 * time.Microsecond, MaxFailedLegs: 1}))
		bound := fdBound(x, pp.ell)
		if err := sketch.CovErr(x, global.Sketch()); err > bound {
			t.Logf("faulty bound violated: %v > %v (fail=%v stats=%+v)", err, bound, failProb, stats)
			return false
		}
		if global.Seen() != pp.n {
			t.Logf("faulty row accounting broken: %d want %d (stats=%+v)", global.Seen(), pp.n, stats)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
