package parallel

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"arams/internal/mat"
	"arams/internal/rng"
	"arams/internal/sketch"
)

// certTolerance is the headroom allowed between the exact spectral
// norm (power iteration) and the certified bound, scaled by the stream
// energy.
func certTolerance(frobMass float64) float64 { return 1e-8 * (1 + frobMass) }

// checkRunCertificate asserts the certificate invariants of one run
// against the exact ground truth: the certified covariance bound holds
// for the true error, the stream energy is accounted exactly, and the
// per-phase shrinkage attribution reconciles with the certificate.
func checkRunCertificate(t *testing.T, x *mat.Matrix, global *sketch.FrequentDirections, stats Stats, label string) bool {
	t.Helper()
	cert := stats.Certificate
	tol := certTolerance(cert.FrobMass)
	exact := sketch.CovErr(x, global.Sketch())
	if exact > cert.CovBound()+tol {
		t.Logf("%s: exact error %v exceeds certified bound %v", label, exact, cert.CovBound())
		return false
	}
	wantMass := x.FrobeniusNormSq()
	if math.Abs(cert.FrobMass-wantMass) > 1e-9*(1+wantMass) {
		t.Logf("%s: certificate FrobMass %v, want ‖A‖_F² %v", label, cert.FrobMass, wantMass)
		return false
	}
	if cert.Rows != x.RowsN {
		t.Logf("%s: certificate rows %d, want %d", label, cert.Rows, x.RowsN)
		return false
	}
	if math.Abs(stats.LocalShrinkMass+stats.MergeShrinkMass-cert.ShrinkMass) > tol {
		t.Logf("%s: shrinkage attribution %v + %v != certificate %v",
			label, stats.LocalShrinkMass, stats.MergeShrinkMass, cert.ShrinkMass)
		return false
	}
	return true
}

// TestQuickCertificateBound is the certificate form of the
// mergeability property: for random data, random shard splits, random
// merge orders, and every tree arity the harness generates, the exact
// ‖AᵀA − BᵀB‖₂ of the merged sketch must not exceed the run's reported
// Certificate.CovBound(), the certified stream energy must equal
// ‖A‖_F² (no sampling anywhere in this path), and the per-round
// shrinkage accounting must telescope to the certificate.
func TestQuickCertificateBound(t *testing.T) {
	if testing.Short() {
		t.Skip("property test in -short mode")
	}
	property := func(seed uint64, nRaw, dRaw, ellRaw, pRaw, arityRaw uint8) bool {
		pp := paramsFrom(seed, nRaw, dRaw, ellRaw, pRaw, arityRaw)
		x := mat.RandGaussian(pp.n, pp.d, pp.g)
		shards := randomShardSplit(x, pp.p, pp.g)
		perm := pp.g.Perm(len(shards))
		shuffled := make([]*mat.Matrix, len(shards))
		for i, j := range perm {
			shuffled[i] = shards[j]
		}
		mk := FDSketcher(pp.ell, sketch.Options{})

		gTree, sTree := RunArity(shuffled, mk, TreeMerge, pp.arity)
		if !checkRunCertificate(t, x, gTree, sTree, "tree") {
			return false
		}
		// The round ledger must reproduce the merge-phase shrinkage.
		var roundShrink float64
		for _, rs := range sTree.Rounds {
			roundShrink += rs.ShrinkMass
		}
		if math.Abs(roundShrink-sTree.MergeShrinkMass) > certTolerance(sTree.Certificate.FrobMass) {
			t.Logf("round shrinkage ledger %v != merge shrinkage %v (arity=%d p=%d)",
				roundShrink, sTree.MergeShrinkMass, pp.arity, pp.p)
			return false
		}

		gSerial, sSerial := Run(shuffled, mk, SerialMerge)
		return checkRunCertificate(t, x, gSerial, sSerial, "serial")
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCertificateFaultInjected extends the certificate property
// to the chaos path: whatever mix of retries, re-sketch recoveries,
// and serial fallback the injected faults provoke, the reported
// certificate must still bound the exact error and account the stream
// energy exactly.
func TestQuickCertificateFaultInjected(t *testing.T) {
	if testing.Short() {
		t.Skip("property test in -short mode")
	}
	property := func(seed uint64, nRaw, dRaw, ellRaw, pRaw, arityRaw, failRaw uint8) bool {
		pp := paramsFrom(seed, nRaw, dRaw, ellRaw, pRaw, arityRaw)
		x := mat.RandGaussian(pp.n, pp.d, pp.g)
		shards := randomShardSplit(x, pp.p, pp.g)
		failProb := float64(failRaw%31) / 100 // 0 .. 0.30
		mk := FDSketcher(pp.ell, sketch.Options{})
		global, stats := RunArity(shards, mk, TreeMerge, pp.arity,
			WithFaults(Faults{FailProb: failProb, CorruptProb: failProb / 2, Seed: seed}),
			WithRetry(Retry{MaxAttempts: 2, Backoff: 10 * time.Microsecond, MaxFailedLegs: 1}))
		if !checkRunCertificate(t, x, global, stats, "faulty") {
			t.Logf("fail=%v stats=%+v", failProb, stats)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestCertificateLastRunGauges: a run publishes its fault-tolerance
// snapshot to the last-run gauges /statusz renders.
func TestCertificateLastRunGauges(t *testing.T) {
	x := mat.RandGaussian(120, 8, rng.New(3))
	shards := SplitRows(x, 4)
	_, stats := Run(shards, FDSketcher(5, sketch.Options{}), TreeMerge)
	legs := 0
	for _, rs := range stats.Rounds {
		legs += rs.Legs
	}
	if got := int(obsLastRounds.Value()); got != stats.MergeRounds {
		t.Fatalf("last_run_rounds gauge = %d, want %d", got, stats.MergeRounds)
	}
	if got := int(obsLastLegs.Value()); got != legs {
		t.Fatalf("last_run_legs gauge = %d, want %d", got, legs)
	}
	if obsLastSerialFB.Value() != 0 {
		t.Fatalf("serial fallback gauge = %v on a clean run", obsLastSerialFB.Value())
	}
}
