package parallel

import (
	"testing"
	"time"

	"arams/internal/mat"
	"arams/internal/sketch"
)

// fdBound returns the Frequent Directions covariance-error bound
// ‖A‖_F²/ℓ with a small slack for floating-point roundoff.
func fdBound(x *mat.Matrix, ell int) float64 {
	return x.FrobeniusNormSq() / float64(ell) * (1 + 1e-8)
}

// TestFaultInjectedBoundHolds is the acceptance criterion: with fail
// probability up to 0.3 per merge leg (plus corruption and delays),
// Run must still return a sketch satisfying the FD covariance bound,
// and the retry/recovery counters must account for the chaos.
func TestFaultInjectedBoundHolds(t *testing.T) {
	const ell = 8
	x := testMatrix(256, 12, 42)
	mk := FDSketcher(ell, sketch.Options{})
	for _, fail := range []float64{0.1, 0.3} {
		for seed := uint64(1); seed <= 4; seed++ {
			shards := SplitRows(x, 8)
			global, stats := Run(shards, mk, TreeMerge,
				WithFaults(Faults{FailProb: fail, CorruptProb: 0.2, DelayProb: 0.1, Delay: 100 * time.Microsecond, Seed: seed}),
				WithRetry(Retry{MaxAttempts: 2, Backoff: 50 * time.Microsecond}))
			if global.Seen() != x.RowsN {
				t.Fatalf("fail=%v seed=%d: Seen=%d, want %d", fail, seed, global.Seen(), x.RowsN)
			}
			if err, bound := sketch.CovErr(x, global.Sketch()), fdBound(x, ell); err > bound {
				t.Errorf("fail=%v seed=%d: CovErr %v > bound %v", fail, seed, err, bound)
			}
			if global.Sketch().HasNaN() {
				t.Errorf("fail=%v seed=%d: sketch has NaN", fail, seed)
			}
			if stats.LegFailures > 0 && stats.LegRetries == 0 && stats.Resketches == 0 {
				t.Errorf("fail=%v seed=%d: failures %d with no retries or recoveries", fail, seed, stats.LegFailures)
			}
		}
	}
}

// TestFaultInjectionDeterministic runs the same faulty configuration
// twice and requires identical sketches and identical fault
// accounting: the injected pattern is a function of the seed and the
// tree position, never of goroutine scheduling.
func TestFaultInjectionDeterministic(t *testing.T) {
	x := testMatrix(200, 10, 7)
	mk := FDSketcher(6, sketch.Options{})
	opts := []Option{
		WithFaults(Faults{FailProb: 0.4, CorruptProb: 0.3, Seed: 9}),
		WithRetry(Retry{MaxAttempts: 2, Backoff: 10 * time.Microsecond}),
	}
	g1, s1 := Run(SplitRows(x, 8), mk, TreeMerge, opts...)
	g2, s2 := Run(SplitRows(x, 8), mk, TreeMerge, opts...)
	b1, b2 := g1.Sketch(), g2.Sketch()
	for i := range b1.Data {
		if b1.Data[i] != b2.Data[i] {
			t.Fatalf("sketches diverged at element %d", i)
		}
	}
	if s1.LegFailures != s2.LegFailures || s1.LegRetries != s2.LegRetries ||
		s1.Resketches != s2.Resketches || s1.SerialFallback != s2.SerialFallback {
		t.Fatalf("fault accounting diverged: %+v vs %+v",
			[4]int{s1.LegFailures, s1.LegRetries, s1.Resketches}, [4]int{s2.LegFailures, s2.LegRetries, s2.Resketches})
	}
}

// TestGuardedPathMatchesFastPath checks that turning on the guarded
// (clone-validate) leg machinery with zero fault probability changes
// nothing: the sketch must equal the plain tree merge's bit for bit.
func TestGuardedPathMatchesFastPath(t *testing.T) {
	x := testMatrix(180, 9, 13)
	mk := FDSketcher(5, sketch.Options{})
	plain, _ := Run(SplitRows(x, 6), mk, TreeMerge)
	guarded, stats := Run(SplitRows(x, 6), mk, TreeMerge, WithFaults(Faults{Seed: 1}))
	a, b := plain.Sketch(), guarded.Sketch()
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("guarded path diverged at element %d: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
	if stats.LegFailures != 0 || stats.LegRetries != 0 || stats.Resketches != 0 {
		t.Fatalf("zero-probability faults still failed legs: %+v", stats)
	}
}

// TestAlwaysFailDegradesToSerial forces every leg to exhaust its
// retries: every leg must be recovered by re-sketching, the run must
// drop to the serial fold, and the result must still satisfy the
// covariance bound (graceful degradation, not collapse).
func TestAlwaysFailDegradesToSerial(t *testing.T) {
	const ell = 6
	x := testMatrix(240, 10, 3)
	mk := FDSketcher(ell, sketch.Options{})
	global, stats := Run(SplitRows(x, 8), mk, TreeMerge,
		WithFaults(Faults{FailProb: 1, Seed: 5}),
		WithRetry(Retry{MaxAttempts: 2, Backoff: 10 * time.Microsecond, MaxFailedLegs: 1}))
	if !stats.SerialFallback {
		t.Fatalf("always-failing legs did not trigger serial fallback: %+v", stats)
	}
	if stats.Resketches < 2 {
		t.Fatalf("expected ≥2 recovered legs before fallback, got %d", stats.Resketches)
	}
	if global.Seen() != x.RowsN {
		t.Fatalf("Seen=%d, want %d", global.Seen(), x.RowsN)
	}
	if err, bound := sketch.CovErr(x, global.Sketch()), fdBound(x, ell); err > bound {
		t.Errorf("degraded run: CovErr %v > bound %v", err, bound)
	}
}

// TestLegTimeoutTriggersRetry injects a delay longer than the leg
// timeout: the first attempt must time out, and the retry (whose
// delay draw differs) or the recovery path must still complete the
// merge correctly.
func TestLegTimeoutTriggersRetry(t *testing.T) {
	const ell = 5
	x := testMatrix(160, 8, 17)
	mk := FDSketcher(ell, sketch.Options{})
	global, stats := Run(SplitRows(x, 4), mk, TreeMerge,
		WithFaults(Faults{DelayProb: 1, Delay: 50 * time.Millisecond, Seed: 2}),
		WithRetry(Retry{MaxAttempts: 2, Backoff: 10 * time.Microsecond, LegTimeout: 5 * time.Millisecond}))
	if stats.LegFailures == 0 {
		t.Fatalf("50ms delays under a 5ms timeout produced no failures: %+v", stats)
	}
	if err, bound := sketch.CovErr(x, global.Sketch()), fdBound(x, ell); err > bound {
		t.Errorf("timeout run: CovErr %v > bound %v", err, bound)
	}
	if global.Seen() != x.RowsN {
		t.Fatalf("Seen=%d, want %d", global.Seen(), x.RowsN)
	}
}

// TestRoundStatsAccounting checks the per-round leg bookkeeping on a
// clean run: every tree level must report its leg count and a non-zero
// slowest-leg duration, and the aggregates must match.
func TestRoundStatsAccounting(t *testing.T) {
	x := testMatrix(256, 8, 23)
	mk := FDSketcher(6, sketch.Options{})
	_, stats := Run(SplitRows(x, 8), mk, TreeMerge)
	if len(stats.Rounds) != stats.MergeRounds {
		t.Fatalf("Rounds has %d entries, MergeRounds=%d", len(stats.Rounds), stats.MergeRounds)
	}
	wantLegs := []int{4, 2, 1} // 8 → 4 → 2 → 1 with arity 2
	for i, rs := range stats.Rounds {
		if rs.Legs != wantLegs[i] {
			t.Errorf("round %d: %d legs, want %d", i, rs.Legs, wantLegs[i])
		}
		if rs.Failures != 0 || rs.Retries != 0 || rs.Resketches != 0 {
			t.Errorf("round %d: clean run reported faults %+v", i, rs)
		}
	}
	if stats.SerialFallback {
		t.Error("clean run reported a serial fallback")
	}
}
