package parallel

import (
	"testing"
	"time"

	"arams/internal/obs"
	"arams/internal/sketch"
)

// spanIndex builds name→spans and id→span lookups for one trace.
func spanIndex(tr obs.TraceRecord) (map[string][]obs.SpanRecord, map[obs.ID]obs.SpanRecord) {
	byName := map[string][]obs.SpanRecord{}
	byID := map[obs.ID]obs.SpanRecord{}
	for _, sp := range tr.Spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
		byID[sp.Span] = sp
	}
	return byName, byID
}

// chainTo walks sp's parent links and returns the names visited until
// the root (exclusive of sp itself).
func chainTo(t *testing.T, byID map[obs.ID]obs.SpanRecord, sp obs.SpanRecord) []string {
	t.Helper()
	var names []string
	cur := sp
	for cur.Parent != 0 {
		parent, ok := byID[cur.Parent]
		if !ok {
			t.Fatalf("span %s (%s): parent %s not retained — disconnected trace",
				sp.Span, sp.Name, cur.Parent)
		}
		cur = parent
		names = append(names, cur.Name)
	}
	return names
}

// TestTraceGoldenFaultedMergeLeg is the golden trace-reconstruction
// test: a tree merge with every leg faulting once (FailProb 1, 2
// attempts) must still produce ONE connected trace under the caller's
// root, with the retry attempts and any resketch recovery legs parented
// inside the same merge_leg spans — never off in a separate trace.
func TestTraceGoldenFaultedMergeLeg(t *testing.T) {
	x := testMatrix(200, 10, 7)
	mk := FDSketcher(6, sketch.Options{})

	root := obs.StartTrace("test_root")
	global, stats := Run(SplitRows(x, 4), mk, TreeMerge,
		WithTrace(root.Context()),
		WithFaults(Faults{FailProb: 1, Seed: 5}),
		WithRetry(Retry{MaxAttempts: 2, Backoff: 10 * time.Microsecond, MaxFailedLegs: len(SplitRows(x, 4))}))
	root.End()

	if global.Seen() != x.RowsN {
		t.Fatalf("Seen = %d, want %d", global.Seen(), x.RowsN)
	}
	if stats.LegFailures == 0 {
		t.Fatal("FailProb 1 injected no failures — trace has no recovery legs to check")
	}

	tr, ok := obs.Default().TraceByID(root.Context().Trace)
	if !ok {
		t.Fatal("root trace not retained")
	}
	byName, byID := spanIndex(tr)

	// Every span in the record must claim this trace and chain to the
	// caller's root.
	for _, sp := range tr.Spans {
		if sp.Trace != tr.Trace {
			t.Fatalf("span %s carries trace %s, want %s", sp.Name, sp.Trace, tr.Trace)
		}
		if sp.Span == root.Context().Span {
			continue
		}
		chain := chainTo(t, byID, sp)
		if chain[len(chain)-1] != "test_root" {
			t.Fatalf("span %s roots at %q, want test_root (chain %v)", sp.Name, chain[len(chain)-1], chain)
		}
	}

	for _, want := range []string{"parallel_run", "sketch", "merge", "merge_round", "merge_leg", "merge_attempt"} {
		if len(byName[want]) == 0 {
			t.Fatalf("trace is missing %q spans (have %v)", want, names(byName))
		}
	}

	// Golden shape: merge_leg → merge_round → merge → parallel_run →
	// test_root.
	leg := byName["merge_leg"][0]
	if got := chainTo(t, byID, leg); !equalStrings(got, []string{"merge_round", "merge", "parallel_run", "test_root"}) {
		t.Fatalf("merge_leg parent chain = %v", got)
	}

	// Retry legs: with FailProb 1 and 2 attempts every leg records 2
	// merge_attempt children, both parented to the SAME merge_leg — the
	// recovery attempt joins the original trace instead of opening a new
	// one.
	attemptsPerLeg := map[obs.ID]int{}
	for _, att := range byName["merge_attempt"] {
		parent, ok := byID[att.Parent]
		if !ok || parent.Name != "merge_leg" {
			t.Fatalf("merge_attempt parents to %v, want a merge_leg span", att.Parent)
		}
		attemptsPerLeg[parent.Span]++
	}
	for legID, n := range attemptsPerLeg {
		if n != 2 {
			t.Fatalf("leg %s has %d attempts, want 2 (fail + retry)", legID, n)
		}
	}

	// Any resketch recovery legs must also nest inside a merge_leg.
	for _, re := range byName["merge_resketch"] {
		parent, ok := byID[re.Parent]
		if !ok || parent.Name != "merge_leg" {
			t.Fatalf("merge_resketch parents to %v, want a merge_leg span", re.Parent)
		}
	}
}

// TestTraceUntracedRunOpensOwnTrace: without WithTrace the merge still
// traces itself (fresh root), so /tracez always has merge trees.
func TestTraceUntracedRunOpensOwnTrace(t *testing.T) {
	x := testMatrix(120, 8, 3)
	Run(SplitRows(x, 4), FDSketcher(5, sketch.Options{}), TreeMerge)
	for _, tr := range obs.Default().Traces() {
		if tr.Root == "parallel_run" {
			return
		}
	}
	t.Fatal("untraced Run produced no parallel_run trace root")
}

func names(m map[string][]obs.SpanRecord) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
