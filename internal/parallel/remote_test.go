package parallel

import (
	"errors"
	"io"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"arams/internal/audit"
	"arams/internal/obs"
	"arams/internal/sketch"
)

// remoteTestSketches builds p per-shard FD sketches over one stream
// plus the stream matrix, for remote-merge tests.
func remoteTestSketches(t *testing.T, p int) []*sketch.FrequentDirections {
	t.Helper()
	x := testMatrix(160, 10, 77)
	mk := FDSketcher(6, sketch.Options{})
	shards := SplitRows(x, p)
	fds := make([]*sketch.FrequentDirections, p)
	for i, s := range shards {
		fds[i] = mk(s)
	}
	return fds
}

func legsFor(fds []*sketch.FrequentDirections) []RemoteLeg {
	legs := make([]RemoteLeg, len(fds))
	for i := range fds {
		fd := fds[i]
		legs[i] = RemoteLeg{Name: "leg" + string(rune('a'+i)),
			Fetch: func() (*sketch.FrequentDirections, error) { return fd.Clone(), nil }}
	}
	return legs
}

// TestMergeRemoteMatchesMergeSketches: with infallible fetches,
// MergeRemote must be bit-identical to MergeSketches over the same
// inputs — the local and remote reconcile paths share one fold.
func TestMergeRemoteMatchesMergeSketches(t *testing.T) {
	fds := remoteTestSketches(t, 4)
	clones := make([]*sketch.FrequentDirections, len(fds))
	for i := range fds {
		clones[i] = fds[i].Clone()
	}
	want, _ := MergeSketches(clones, TreeMerge)

	got, _, rep := MergeRemote(legsFor(fds), TreeMerge, Retry{}, obs.SpanContext{})
	if rep.Survivors != 4 || rep.Dropped != 0 {
		t.Fatalf("report: %d survivors, %d dropped, want 4/0", rep.Survivors, rep.Dropped)
	}
	wb, gb := want.Sketch(), got.Sketch()
	for i := range wb.Data {
		if wb.Data[i] != gb.Data[i] {
			t.Fatalf("remote merge diverged from MergeSketches at element %d", i)
		}
	}
	// Composed over all legs must bound the concatenated stream's rows.
	if rep.Composed.Rows != want.Seen() {
		t.Errorf("composed certificate covers %d rows, want %d", rep.Composed.Rows, want.Seen())
	}
}

// TestMergeRemoteRetriesTransient: a leg that fails with a transient
// fault and then succeeds must survive, with the retry accounted.
func TestMergeRemoteRetriesTransient(t *testing.T) {
	fds := remoteTestSketches(t, 3)
	legs := legsFor(fds)
	var calls atomic.Int64
	inner := legs[1].Fetch
	legs[1].Fetch = func() (*sketch.FrequentDirections, error) {
		if calls.Add(1) == 1 {
			return nil, io.ErrUnexpectedEOF // torn frame: transient
		}
		return inner()
	}
	got, _, rep := MergeRemote(legs, TreeMerge, Retry{MaxAttempts: 3, Backoff: time.Microsecond}, obs.SpanContext{})
	if got == nil || rep.Dropped != 0 || rep.Survivors != 3 {
		t.Fatalf("transient fault not retried to success: %+v", rep)
	}
	if st := rep.Legs[1]; st.Retries != 1 || st.Attempts != 2 || st.Class != FaultNone {
		t.Errorf("leg accounting: %+v, want 1 retry over 2 attempts", st)
	}
}

// TestMergeRemoteRefetchesCorrupt: corrupt fetches (non-finite sketch,
// checksum-annotated errors) are re-fetched, not trusted and not
// immediately dropped.
func TestMergeRemoteRefetchesCorrupt(t *testing.T) {
	fds := remoteTestSketches(t, 2)
	legs := legsFor(fds)
	var calls atomic.Int64
	inner := legs[0].Fetch
	legs[0].Fetch = func() (*sketch.FrequentDirections, error) {
		if calls.Add(1) == 1 {
			bad := fds[0].Clone()
			bad.CorruptForTest(math.NaN())
			return bad, nil // arrives, but fails validation
		}
		return inner()
	}
	got, _, rep := MergeRemote(legs, TreeMerge, Retry{MaxAttempts: 2, Backoff: time.Microsecond}, obs.SpanContext{})
	if got == nil || rep.Dropped != 0 {
		t.Fatalf("corrupt fetch not recovered by re-fetch: %+v", rep)
	}
	if !got.Finite() {
		t.Fatal("corrupt sketch leaked into the merge")
	}
	if rep.Legs[0].Retries != 1 {
		t.Errorf("corrupt leg retried %d times, want 1", rep.Legs[0].Retries)
	}
}

// TestMergeRemoteFatalShortCircuits: a fatal classification (closed
// backend, canceled context) must drop the leg without burning the
// remaining attempts.
func TestMergeRemoteFatalShortCircuits(t *testing.T) {
	fds := remoteTestSketches(t, 3)
	legs := legsFor(fds)
	var calls atomic.Int64
	legs[2].Fetch = func() (*sketch.FrequentDirections, error) {
		calls.Add(1)
		return nil, ErrBackendClosed
	}
	seq := audit.Default().Seq()
	got, _, rep := MergeRemote(legs, TreeMerge, Retry{MaxAttempts: 5, Backoff: time.Microsecond}, obs.SpanContext{})
	if got == nil {
		t.Fatal("merge of survivors returned nil")
	}
	if calls.Load() != 1 {
		t.Errorf("fatal leg fetched %d times, want exactly 1", calls.Load())
	}
	if rep.Dropped != 1 || rep.Survivors != 2 || !rep.Degraded() {
		t.Fatalf("report: %+v, want 1 dropped / 2 survivors", rep)
	}
	if rep.Legs[2].Class != FaultFatal {
		t.Errorf("leg class %v, want fatal", rep.Legs[2].Class)
	}
	// Coverage loss is journaled and the composed certificate shrinks to
	// the survivors.
	if evs := audit.Default().Query(audit.Query{Kind: audit.KindRemoteLegLost, SinceSeq: seq}); len(evs) == 0 {
		t.Error("dropped leg not journaled")
	}
	if rep.Composed.Rows != got.Seen() {
		t.Errorf("composed certificate covers %d rows, survivors saw %d", rep.Composed.Rows, got.Seen())
	}
}

// TestMergeRemoteLegTimeout: an attempt slower than Retry.LegTimeout is
// abandoned — MergeRemote returns without waiting for the straggler.
func TestMergeRemoteLegTimeout(t *testing.T) {
	fds := remoteTestSketches(t, 2)
	legs := legsFor(fds)
	release := make(chan struct{})
	legs[1].Fetch = func() (*sketch.FrequentDirections, error) {
		<-release
		return nil, errors.New("too late")
	}
	start := time.Now()
	got, _, rep := MergeRemote(legs, TreeMerge,
		Retry{MaxAttempts: 1, LegTimeout: 20 * time.Millisecond}, obs.SpanContext{})
	elapsed := time.Since(start)
	close(release)
	if elapsed > time.Second {
		t.Errorf("merge waited %v for a hung leg, want ~leg timeout", elapsed)
	}
	if got == nil || rep.Dropped != 1 || rep.Survivors != 1 {
		t.Fatalf("hung leg not dropped: %+v", rep)
	}
}

// TestMergeRemoteEmptyAndNilLegs: empty legs ((nil, nil) fetches) are
// skipped without being counted as faults, and zero legs is a clean
// no-op.
func TestMergeRemoteEmptyAndNilLegs(t *testing.T) {
	if got, _, rep := MergeRemote(nil, TreeMerge, Retry{}, obs.SpanContext{}); got != nil || rep.Survivors != 0 {
		t.Fatalf("zero legs: got %v, %+v", got, rep)
	}
	fds := remoteTestSketches(t, 2)
	legs := legsFor(fds)
	legs = append(legs, RemoteLeg{Name: "empty",
		Fetch: func() (*sketch.FrequentDirections, error) { return nil, nil }})
	got, _, rep := MergeRemote(legs, TreeMerge, Retry{}, obs.SpanContext{})
	if got == nil || rep.Dropped != 0 || rep.Survivors != 2 {
		t.Fatalf("empty leg mishandled: %+v", rep)
	}
	if !rep.Legs[2].Empty || rep.Legs[2].Err != nil {
		t.Errorf("empty leg status: %+v", rep.Legs[2])
	}
}

// TestClassify pins the fault taxonomy: explicit annotations win, known
// sentinels map to their class, everything unknown defaults to
// transient (a wasted retry is cheaper than a dropped leg).
func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want FaultClass
	}{
		{nil, FaultNone},
		{ErrBackendClosed, FaultFatal},
		{errNotFinite, FaultCorrupt},
		{io.ErrUnexpectedEOF, FaultTransient},
		{errors.New("mystery"), FaultTransient},
		{AsFault(FaultCorrupt, errors.New("bad crc")), FaultCorrupt},
		// The annotation wins even over a fatal-looking inner error.
		{AsFault(FaultTransient, ErrBackendClosed), FaultTransient},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	if AsFault(FaultFatal, nil) != nil {
		t.Error("AsFault(nil) must stay nil")
	}
}
