package parallel

import (
	"testing"

	"arams/internal/mat"
	"arams/internal/rng"
	"arams/internal/sketch"
	"arams/internal/synth"
)

func testMatrix(n, d int, seed uint64) *mat.Matrix {
	return mat.RandGaussian(n, d, rng.New(seed))
}

func TestSplitRows(t *testing.T) {
	x := testMatrix(10, 3, 1)
	shards := SplitRows(x, 3)
	if len(shards) != 3 {
		t.Fatalf("got %d shards", len(shards))
	}
	total := 0
	for _, s := range shards {
		total += s.RowsN
	}
	if total != 10 {
		t.Fatalf("shards cover %d rows", total)
	}
	// Near-equal: sizes 4,3,3.
	if shards[0].RowsN != 4 || shards[1].RowsN != 3 {
		t.Fatalf("shard sizes %d,%d,%d", shards[0].RowsN, shards[1].RowsN, shards[2].RowsN)
	}
	// Views share storage.
	shards[1].Set(0, 0, 123)
	if x.At(4, 0) != 123 {
		t.Fatal("SplitRows did not return views")
	}
}

func TestSplitRowsClamps(t *testing.T) {
	x := testMatrix(2, 3, 2)
	shards := SplitRows(x, 10)
	if len(shards) != 2 {
		t.Fatalf("got %d shards for 2 rows", len(shards))
	}
}

func TestSplitRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=0 did not panic")
		}
	}()
	SplitRows(testMatrix(3, 3, 3), 0)
}

func TestParallelBoundHolds(t *testing.T) {
	// Global sketch from either strategy must satisfy the mergeable
	// FD bound on the full data.
	x := testMatrix(240, 20, 4)
	ell := 8
	for _, strat := range []MergeStrategy{TreeMerge, SerialMerge} {
		for _, p := range []int{1, 2, 4, 8} {
			shards := SplitRows(x, p)
			global, stats := Run(shards, FDSketcher(ell, sketch.Options{}), strat)
			err := sketch.CovErr(x, global.Sketch())
			// Each merge level can at most double the error budget; the
			// loose safety bound 4·‖A‖²_F/ℓ covers all tested depths.
			bound := 4 * x.FrobeniusNormSq() / float64(ell)
			if err > bound {
				t.Errorf("%v p=%d: CovErr %v > %v", strat, p, err, bound)
			}
			if stats.Workers != p {
				t.Errorf("%v p=%d: Workers = %d", strat, p, stats.Workers)
			}
		}
	}
}

func TestTreeMergeFewerRotations(t *testing.T) {
	// The whole point of the tree: a logarithmic number of merge
	// rounds vs the serial chain's linear count.
	x := testMatrix(512, 16, 5)
	shards := SplitRows(x, 16)
	_, tree := Run(shards, FDSketcher(6, sketch.Options{}), TreeMerge)

	shards = SplitRows(x, 16)
	_, serial := Run(shards, FDSketcher(6, sketch.Options{}), SerialMerge)

	if tree.MergeRounds != 4 { // log2(16)
		t.Errorf("tree MergeRounds = %d, want 4", tree.MergeRounds)
	}
	if serial.MergeRounds != 15 {
		t.Errorf("serial MergeRounds = %d, want 15", serial.MergeRounds)
	}
}

func TestTreeAndSerialErrorsTrack(t *testing.T) {
	// Fig. 3's claim: tree-merge error closely tracks serial-merge
	// error.
	ds := synth.Generate(synth.Params{N: 400, D: 30, Rank: 15, Decay: synth.Cubic, Seed: 6})
	ell := 10
	shards := SplitRows(ds.A, 8)
	gTree, _ := Run(shards, FDSketcher(ell, sketch.Options{}), TreeMerge)
	shards = SplitRows(ds.A, 8)
	gSerial, _ := Run(shards, FDSketcher(ell, sketch.Options{}), SerialMerge)
	eTree := sketch.CovErr(ds.A, gTree.Sketch())
	eSerial := sketch.CovErr(ds.A, gSerial.Sketch())
	if eTree > 3*eSerial+1e-12 || eSerial > 3*eTree+1e-12 {
		t.Fatalf("errors diverge: tree %v vs serial %v", eTree, eSerial)
	}
}

func TestSingleShardNoMerge(t *testing.T) {
	x := testMatrix(60, 10, 7)
	global, stats := Run(SplitRows(x, 1), FDSketcher(5, sketch.Options{}), TreeMerge)
	if stats.MergeRounds != 0 || stats.MergeRotations != 0 {
		t.Fatalf("single shard should not merge: %+v", stats)
	}
	if global.Seen() != 60 {
		t.Fatalf("Seen = %d", global.Seen())
	}
}

func TestOddShardCount(t *testing.T) {
	x := testMatrix(210, 12, 8)
	global, stats := Run(SplitRows(x, 7), FDSketcher(6, sketch.Options{}), TreeMerge)
	if global.Sketch().HasNaN() {
		t.Fatal("odd shard count produced NaN")
	}
	if stats.MergeRounds != 3 { // ceil(log2(7))
		t.Fatalf("MergeRounds = %d, want 3", stats.MergeRounds)
	}
}

func TestRunEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty shard list did not panic")
		}
	}()
	Run(nil, FDSketcher(4, sketch.Options{}), TreeMerge)
}

func TestSeenAccounting(t *testing.T) {
	x := testMatrix(300, 10, 9)
	for _, strat := range []MergeStrategy{TreeMerge, SerialMerge} {
		global, _ := Run(SplitRows(x, 4), FDSketcher(5, sketch.Options{}), strat)
		if global.Seen() != 300 {
			t.Fatalf("%v: global Seen = %d, want 300", strat, global.Seen())
		}
	}
}

func TestStrategyString(t *testing.T) {
	if TreeMerge.String() != "tree-merge" || SerialMerge.String() != "serial-merge" {
		t.Fatal("strategy names wrong")
	}
}

func TestDegenerateInputs(t *testing.T) {
	// Table over the two degenerate shapes: a 0-row dataset (Run must
	// short-circuit to an empty sketch instead of fanning out over
	// nothing) and fewer rows than workers (SplitRows clamps p).
	mk := FDSketcher(4, sketch.Options{})
	cases := []struct {
		name       string
		rows, p    int
		wantShards int
	}{
		{"zero-rows", 0, 4, 1},
		{"rows-less-than-p", 3, 8, 3},
		{"one-row", 1, 6, 1},
	}
	for _, tc := range cases {
		for _, strat := range []MergeStrategy{TreeMerge, SerialMerge} {
			x := testMatrix(tc.rows, 5, 21)
			shards := SplitRows(x, tc.p)
			if len(shards) != tc.wantShards {
				t.Fatalf("%s: SplitRows gave %d shards, want %d", tc.name, len(shards), tc.wantShards)
			}
			for _, run := range []func([]*mat.Matrix, Sketcher, MergeStrategy) (*sketch.FrequentDirections, Stats){
				func(s []*mat.Matrix, mk Sketcher, strat MergeStrategy) (*sketch.FrequentDirections, Stats) {
					return Run(s, mk, strat)
				},
				RunSimulated,
			} {
				global, stats := run(shards, mk, strat)
				if global.Seen() != tc.rows {
					t.Fatalf("%s/%v: Seen = %d, want %d", tc.name, strat, global.Seen(), tc.rows)
				}
				if stats.Workers != tc.wantShards {
					t.Fatalf("%s/%v: Workers = %d, want %d", tc.name, strat, stats.Workers, tc.wantShards)
				}
				b := global.Sketch()
				if b.RowsN != 4 || b.ColsN != 5 || b.HasNaN() {
					t.Fatalf("%s/%v: sketch shape %d×%d", tc.name, strat, b.RowsN, b.ColsN)
				}
			}
		}
	}
}

func TestRunAllEmptyShardsDeterministic(t *testing.T) {
	// Every shard empty: no merges, no rotations, zero-duration stats.
	shards := []*mat.Matrix{mat.New(0, 7), mat.New(0, 7), mat.New(0, 7)}
	global, stats := Run(shards, FDSketcher(3, sketch.Options{}), TreeMerge)
	if global.Seen() != 0 || global.Rotations() != 0 {
		t.Fatalf("empty run did work: seen=%d rotations=%d", global.Seen(), global.Rotations())
	}
	if stats.MergeRounds != 0 || stats.MergeRotations != 0 {
		t.Fatalf("empty run reported merges: %+v", stats)
	}
	if b := global.Sketch(); b.ColsN != 7 {
		t.Fatalf("empty run sketch d = %d, want 7", b.ColsN)
	}
}
