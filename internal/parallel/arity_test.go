package parallel

import (
	"testing"

	"arams/internal/sketch"
)

func TestArityRounds(t *testing.T) {
	x := testMatrix(640, 12, 30)
	for _, tc := range []struct {
		arity, shards, wantRounds int
	}{
		{2, 16, 4},
		{4, 16, 2},
		{8, 16, 2}, // 16 → 2 → 1
		{16, 16, 1},
		{4, 64, 3},
	} {
		shards := SplitRows(x, tc.shards)
		_, stats := RunArity(shards, FDSketcher(6, sketch.Options{}), TreeMerge, tc.arity)
		if stats.MergeRounds != tc.wantRounds {
			t.Errorf("arity %d over %d shards: %d rounds, want %d",
				tc.arity, tc.shards, stats.MergeRounds, tc.wantRounds)
		}
	}
}

func TestArityBoundHolds(t *testing.T) {
	x := testMatrix(480, 16, 31)
	ell := 8
	for _, arity := range []int{2, 3, 4, 8} {
		shards := SplitRows(x, 12)
		global, _ := RunArity(shards, FDSketcher(ell, sketch.Options{}), TreeMerge, arity)
		err := sketch.CovErr(x, global.Sketch())
		bound := 4 * x.FrobeniusNormSq() / float64(ell)
		if err > bound {
			t.Errorf("arity %d: CovErr %v > %v", arity, err, bound)
		}
		if global.Seen() != 480 {
			t.Errorf("arity %d: Seen = %d", arity, global.Seen())
		}
	}
}

func TestAritySimulatedMatchesConcurrent(t *testing.T) {
	x := testMatrix(320, 10, 32)
	for _, arity := range []int{2, 4} {
		shards := SplitRows(x, 8)
		gc, sc := RunArity(shards, FDSketcher(5, sketch.Options{}), TreeMerge, arity)
		shards = SplitRows(x, 8)
		gs, ss := RunSimulatedArity(shards, FDSketcher(5, sketch.Options{}), TreeMerge, arity)
		if sc.MergeRounds != ss.MergeRounds {
			t.Errorf("arity %d: rounds differ %d vs %d", arity, sc.MergeRounds, ss.MergeRounds)
		}
		// Same deterministic computation → identical sketches.
		if !gc.Sketch().Equal(gs.Sketch(), 1e-12) {
			t.Errorf("arity %d: concurrent and simulated sketches differ", arity)
		}
	}
}

func TestArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity 1 did not panic")
		}
	}()
	RunArity(SplitRows(testMatrix(10, 3, 33), 2), FDSketcher(2, sketch.Options{}), TreeMerge, 1)
}
