package parallel

import (
	"errors"
	"math"
	"strconv"
	"time"

	"arams/internal/audit"
	"arams/internal/mat"
	"arams/internal/obs"
	"arams/internal/rng"
	"arams/internal/sketch"
)

// Fault-tolerance observability: every tree-merge leg, its failures
// and retries, the recoveries that re-sketched a leg's shards, and the
// full drops to serial merging. These are the counters the acceptance
// chaos tests scrape from /metrics.
var (
	obsMergeLegs       = obs.Default().Counter("arams_parallel_merge_legs_total")
	obsLegFailures     = obs.Default().Counter("arams_parallel_merge_leg_failures_total")
	obsLegRetries      = obs.Default().Counter("arams_parallel_merge_leg_retries_total")
	obsLegResketches   = obs.Default().Counter("arams_parallel_merge_leg_resketch_total")
	obsSerialFallbacks = obs.Default().Counter("arams_parallel_serial_fallbacks_total")
	obsLegSeconds      = obs.Default().Histogram("arams_parallel_merge_leg_seconds")
)

// Faults configures deterministic fault injection for tree-merge legs:
// each leg attempt may fail outright, stall, or corrupt its output,
// with probabilities drawn from a seeded per-leg RNG stream — the same
// (Seed, round, group) always produces the same fault pattern, so a
// chaotic run is exactly reproducible. Fault injection exists to prove
// the recovery machinery: because FD sketches are mergeable summaries,
// any leg can be lost and re-computed without breaking the covariance
// bound, and the chaos tests assert exactly that.
type Faults struct {
	// FailProb is the per-attempt probability that the leg errors after
	// doing its work (a crashed worker).
	FailProb float64
	// DelayProb is the per-attempt probability that the leg stalls for
	// Delay before finishing (a straggler; combine with
	// Retry.LegTimeout to turn stragglers into failures).
	DelayProb float64
	// Delay is the injected stall duration (default 1ms).
	Delay time.Duration
	// CorruptProb is the per-attempt probability that the leg's output
	// sketch is poisoned with a NaN (a torn buffer); the validation
	// pass detects it and the leg is retried.
	CorruptProb float64
	// Seed feeds the per-leg RNG streams.
	Seed uint64
}

// Retry configures the per-leg retry/timeout/backoff policy and the
// degradation thresholds. The zero value means: 3 attempts per leg,
// 200µs base backoff (doubling per retry), no timeout, and a drop to
// serial merging after 2 legs exhaust their retries.
type Retry struct {
	// MaxAttempts is the number of tries per leg before the leg is
	// declared lost and recovered by re-sketching (default 3).
	MaxAttempts int
	// Backoff is the sleep before the first retry; it doubles on each
	// subsequent retry (default 200µs).
	Backoff time.Duration
	// LegTimeout bounds one attempt's wall time; 0 disables. An
	// attempt that exceeds it counts as a failure.
	LegTimeout time.Duration
	// MaxFailedLegs is how many legs may exhaust their retries before
	// the run degrades to a serial fold of the surviving sketches, with
	// no further fault exposure (default 2).
	MaxFailedLegs int
}

func (r Retry) withDefaults() Retry {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 3
	}
	if r.Backoff <= 0 {
		r.Backoff = 200 * time.Microsecond
	}
	if r.MaxFailedLegs <= 0 {
		r.MaxFailedLegs = 2
	}
	return r
}

// Option configures a Run/RunArity call.
type Option func(*runOptions)

// WithFaults enables deterministic fault injection on tree-merge legs.
func WithFaults(f Faults) Option {
	return func(o *runOptions) {
		if f.Delay <= 0 {
			f.Delay = time.Millisecond
		}
		o.faults = &f
	}
}

// WithRetry overrides the leg retry/timeout/degradation policy.
func WithRetry(r Retry) Option {
	return func(o *runOptions) {
		o.retry = r.withDefaults()
		o.retrySet = true
	}
}

// WithTrace parents the run's spans (parallel_run → sketch/merge →
// merge_round → merge_leg, including retry and re-sketch recovery
// legs) into an existing trace, so a caller's batch shows up as one
// connected tree on /tracez. Without it the run roots its own trace.
func WithTrace(ctx obs.SpanContext) Option {
	return func(o *runOptions) { o.trace = ctx }
}

type runOptions struct {
	faults   *Faults
	retry    Retry
	retrySet bool
	trace    obs.SpanContext
}

func newRunOptions(options []Option) *runOptions {
	o := &runOptions{retry: Retry{}.withDefaults()}
	for _, fn := range options {
		fn(o)
	}
	return o
}

// guarded reports whether legs must run on the clone-validate-retry
// path: with fault injection on, or with a timeout that can fail an
// otherwise infallible in-process merge.
func (o *runOptions) guarded() bool {
	return o != nil && (o.faults != nil || (o.retrySet && o.retry.LegTimeout > 0))
}

// mergeNode is one operand of the merge tree: a sketch plus the
// indices of the original shards it summarizes, kept so a lost leg can
// be recomputed from its source data.
type mergeNode struct {
	fd     *sketch.FrequentDirections
	shards []int
}

// mergeEnv carries the per-run context the merge tree needs for
// recovery and accounting. trace is the merge-phase span's context;
// every round and leg span parents under it.
type mergeEnv struct {
	shards []*mat.Matrix
	mk     Sketcher
	opts   *runOptions
	stats  *Stats
	trace  obs.SpanContext
}

// legReport is one leg's accounting, reduced into RoundStats after the
// round's barrier.
type legReport struct {
	failures int
	retries  int
	resketch bool
	duration time.Duration
	// shrink is the net shrinkage Σδ the leg added to the surviving
	// sketch (its certificate contribution; negative for a re-sketch
	// recovery that came back with less accumulated shrinkage than the
	// children it replaced).
	shrink float64
}

var errLegFailed = errors.New("parallel: injected leg failure")
var errLegCorrupt = errors.New("parallel: merge leg produced a corrupt sketch")
var errLegTimeout = errors.New("parallel: merge leg timed out")

// runLeg folds group[1:] into group[0] and returns the resulting node.
// On the guarded path every attempt works on a clone of the
// accumulator, validates the result, and retries with exponential
// backoff; a leg that exhausts its attempts is recovered by
// re-sketching its shards serially — the mergeability guarantee makes
// the recomputed sketch interchangeable with the lost one. The leg
// records a merge_leg span under parent (the round's span), so retry
// and recovery legs stay inside the batch's trace; a leg that saw any
// failure fires the flight recorder on exit.
func runLeg(parent obs.SpanContext, round, gIdx int, group []*mergeNode, env *mergeEnv) (*mergeNode, legReport) {
	var rep legReport
	covered := coveredShards(group)
	// groupDelta: the children's combined certificate mass before the
	// fold; each exit path reports the leg's net shrinkage against it.
	groupDelta := 0.0
	for _, nd := range group {
		groupDelta += nd.fd.Delta()
	}
	sp := obs.Default().StartSpanIn(parent, "merge_leg",
		obs.L("round", strconv.Itoa(round)),
		obs.L("group", strconv.Itoa(gIdx)),
		obs.L("shards", strconv.Itoa(len(covered))))
	ct := obs.StartCPUTimer()
	t0 := time.Now()
	defer func() {
		rep.duration = time.Since(t0)
		obsLegSeconds.Observe(rep.duration.Seconds())
		if cpu, ok := ct.Stop(); ok {
			sp.SetCPU(cpu)
		}
		if rep.failures > 0 {
			sp.SetAttr("failures", strconv.Itoa(rep.failures))
		}
		if rep.resketch {
			sp.SetAttr("resketch", "true")
		}
		sp.End()
		if rep.failures > 0 {
			obs.Default().FlightTrigger("merge_leg_fault")
		}
	}()
	obsMergeLegs.Inc()

	if !env.opts.guarded() {
		// Fast path: in-process merges cannot fail, so fold in place
		// with zero copies, exactly the pre-fault-tolerance behavior.
		acc := group[0].fd
		for _, nd := range group[1:] {
			acc.Merge(nd.fd)
			acc.Compact()
		}
		rep.shrink = acc.Delta() - groupDelta
		return &mergeNode{fd: acc, shards: covered}, rep
	}

	retry := env.opts.retry
	var legRNG *rng.RNG
	if env.opts.faults != nil {
		// One independent stream per (round, group): the fault pattern
		// is a pure function of the seed and the leg's tree position,
		// never of goroutine scheduling.
		legRNG = rng.NewStream(env.opts.faults.Seed, uint64(round)<<32|uint64(gIdx))
	}
	backoff := retry.Backoff
	for attempt := 0; attempt < retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			rep.retries++
			obsLegRetries.Inc()
			time.Sleep(backoff)
			backoff *= 2
		}
		spAtt := sp.StartChild("merge_attempt", obs.L("attempt", strconv.Itoa(attempt)))
		fd, err := attemptLeg(group, env.opts.faults, legRNG, retry.LegTimeout)
		if err != nil {
			spAtt.SetAttr("error", err.Error())
		}
		spAtt.End()
		if err == nil {
			rep.shrink = fd.Delta() - groupDelta
			return &mergeNode{fd: fd, shards: covered}, rep
		}
		rep.failures++
		obsLegFailures.Inc()
	}

	// Retries exhausted: the leg is lost. Recover it from source data —
	// re-sketch every covered shard serially and fold the fresh
	// sketches together. This path takes no fault injection; it is the
	// reliable degraded mode.
	rep.resketch = true
	obsLegResketches.Inc()
	spRe := sp.StartChild("merge_resketch", obs.L("shards", strconv.Itoa(len(covered))))
	fresh := resketchShards(covered, env)
	spRe.End()
	rep.shrink = fresh.Delta() - groupDelta
	audit.Default().Record(audit.KindMergeRecovery,
		"merge leg lost; re-sketched from source shards",
		audit.A("round", float64(round)),
		audit.A("group", float64(gIdx)),
		audit.A("shards", float64(len(covered))),
		audit.A("failures", float64(rep.failures)),
		audit.A("shrink_mass", fresh.Delta()))
	return &mergeNode{fd: fresh, shards: covered}, rep
}

// attemptLeg performs one guarded merge attempt on a clone of the
// accumulator. Fault decisions are drawn up front (a fixed number of
// draws per attempt keeps the stream aligned across retries), the
// merge runs — under a timeout when configured — and the result is
// validated before it may replace the real accumulator.
func attemptLeg(group []*mergeNode, faults *Faults, legRNG *rng.RNG, timeout time.Duration) (*sketch.FrequentDirections, error) {
	var injectFail, injectDelay, injectCorrupt bool
	if faults != nil {
		injectFail = legRNG.Float64() < faults.FailProb
		injectDelay = legRNG.Float64() < faults.DelayProb
		injectCorrupt = legRNG.Float64() < faults.CorruptProb
	}

	work := func() (*sketch.FrequentDirections, error) {
		acc := group[0].fd.Clone()
		for _, nd := range group[1:] {
			acc.Merge(nd.fd)
			acc.Compact()
		}
		if injectDelay {
			time.Sleep(faults.Delay)
		}
		if injectFail {
			return nil, errLegFailed
		}
		if injectCorrupt {
			acc.CorruptForTest(math.NaN())
		}
		if !acc.Finite() {
			return nil, errLegCorrupt
		}
		return acc, nil
	}

	if timeout <= 0 {
		return work()
	}
	type result struct {
		fd  *sketch.FrequentDirections
		err error
	}
	done := make(chan result, 1)
	go func() {
		fd, err := work()
		done <- result{fd, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-done:
		return r.fd, r.err
	case <-timer.C:
		// The straggler goroutine finishes into the buffered channel
		// and is collected; its clone never escapes.
		return nil, errLegTimeout
	}
}

// resketchShards rebuilds a sketch of the given shards from scratch,
// serially — the recovery path for a lost merge leg.
func resketchShards(covered []int, env *mergeEnv) *sketch.FrequentDirections {
	var acc *sketch.FrequentDirections
	for _, si := range covered {
		fd := env.mk(env.shards[si])
		fd.Compact()
		if acc == nil {
			acc = fd
		} else {
			acc.Merge(fd)
			acc.Compact()
		}
	}
	return acc
}

// coveredShards concatenates the shard index sets of a merge group.
func coveredShards(group []*mergeNode) []int {
	n := 0
	for _, nd := range group {
		n += len(nd.shards)
	}
	out := make([]int, 0, n)
	for _, nd := range group {
		out = append(out, nd.shards...)
	}
	return out
}
