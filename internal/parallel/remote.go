package parallel

import (
	"context"
	"errors"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"arams/internal/audit"
	"arams/internal/obs"
	"arams/internal/sketch"
)

// Remote merge legs: the distributed analog of the fault-injected
// in-process tree merge in faults.go. There a leg is a computation
// that may fail; here a leg is a *fetch* — snapshotting a shard
// backend that may live on the far side of a TCP connection — and the
// failure modes are the network's: dial failures, timeouts, mid-frame
// disconnects, checksum mismatches. The recovery ladder mirrors the
// local one: retry transient and corrupt faults with backoff
// (re-fetch), then degrade to the surviving legs, journaling the
// coverage loss. Because FD sketches are mergeable summaries, the
// surviving legs still merge into a sketch whose certificate bound
// holds for exactly the streams they cover.

var (
	obsRemoteLegs     = obs.Default().Counter("arams_parallel_remote_legs_total")
	obsRemoteRetries  = obs.Default().Counter("arams_parallel_remote_leg_retries_total")
	obsRemoteLegsLost = obs.Default().Counter("arams_parallel_remote_legs_lost_total")
	obsRemoteFetchSec = obs.Default().Histogram("arams_parallel_remote_fetch_seconds")
)

// RemoteLeg is one fetchable input of a remote merge: typically a
// closure that snapshots a (possibly remote) shard backend. Fetch
// returning (nil, nil) means the shard exists but has absorbed no
// rows yet — an empty leg, skipped without counting as a fault.
// When FetchIn is set it is used instead of Fetch and receives the
// fetch attempt's span context, so a trace-propagating transport (the
// fabric Remote) can parent its RPC spans — and the worker's shipped
// span records — under the attempt that caused them.
type RemoteLeg struct {
	Name    string
	Fetch   func() (*sketch.FrequentDirections, error)
	FetchIn func(parent obs.SpanContext) (*sketch.FrequentDirections, error)
}

// fetch dispatches one attempt through FetchIn when available.
func (l RemoteLeg) fetch(parent obs.SpanContext) (*sketch.FrequentDirections, error) {
	if l.FetchIn != nil {
		return l.FetchIn(parent)
	}
	return l.Fetch()
}

// FaultClass buckets a remote-leg error by the recovery it admits.
type FaultClass int

const (
	// FaultNone: no error.
	FaultNone FaultClass = iota
	// FaultTransient: timeouts, resets, refused connections, torn
	// streams — a retry against a recovered peer may succeed.
	FaultTransient
	// FaultCorrupt: the bytes arrived but failed validation (checksum
	// mismatch, undecodable state, non-finite sketch) — re-fetching
	// gets a fresh copy.
	FaultCorrupt
	// FaultFatal: the backend is closed or the caller canceled — no
	// retry can succeed.
	FaultFatal
)

// String names the class for spans and journal events.
func (c FaultClass) String() string {
	switch c {
	case FaultNone:
		return "none"
	case FaultTransient:
		return "transient"
	case FaultCorrupt:
		return "corrupt"
	case FaultFatal:
		return "fatal"
	default:
		return "FaultClass(" + strconv.Itoa(int(c)) + ")"
	}
}

// ErrBackendClosed is returned by shard backends whose Close has been
// called; Classify maps it (and context cancellation) to FaultFatal so
// a shutdown never burns retries.
var ErrBackendClosed = errors.New("parallel: shard backend closed")

// errNotFinite is the validation failure for a fetched sketch whose
// buffer holds NaN or Inf.
var errNotFinite = errors.New("parallel: fetched sketch is not finite")

// classifier lets transports annotate their errors with an explicit
// fault class; Classify honors the innermost annotation on the chain.
type classifier interface{ FaultClass() FaultClass }

// ClassifiedError wraps an error with an explicit FaultClass so a
// transport (e.g. internal/fabric) can tell the merge how to recover
// — corrupt frames are re-fetched, transient faults retried, fatal
// ones dropped immediately — without parallel importing the
// transport's error vocabulary.
type ClassifiedError struct {
	Class FaultClass
	Err   error
}

func (e *ClassifiedError) Error() string          { return e.Class.String() + ": " + e.Err.Error() }
func (e *ClassifiedError) Unwrap() error          { return e.Err }
func (e *ClassifiedError) FaultClass() FaultClass { return e.Class }

// AsFault annotates err with a fault class (nil stays nil).
func AsFault(class FaultClass, err error) error {
	if err == nil {
		return nil
	}
	return &ClassifiedError{Class: class, Err: err}
}

// Classify buckets an error from a remote leg. Explicit annotations
// (AsFault) win; otherwise closed/canceled errors are fatal and
// everything else defaults to transient — the worst a
// misclassification costs is a wasted retry, whereas classifying a
// recoverable fault as fatal drops a leg.
func Classify(err error) FaultClass {
	if err == nil {
		return FaultNone
	}
	var c classifier
	if errors.As(err, &c) {
		return c.FaultClass()
	}
	switch {
	case errors.Is(err, ErrBackendClosed),
		errors.Is(err, context.Canceled),
		errors.Is(err, net.ErrClosed):
		return FaultFatal
	case errors.Is(err, errNotFinite):
		return FaultCorrupt
	case errors.Is(err, io.ErrUnexpectedEOF):
		// A frame torn mid-read: the connection died, not the data.
		return FaultTransient
	default:
		return FaultTransient
	}
}

// LegStatus is one leg's fetch accounting.
type LegStatus struct {
	Name     string
	Attempts int
	Retries  int
	// Class is the classification of the final error (FaultNone on
	// success).
	Class FaultClass
	Err   error
	// Empty marks a leg that fetched successfully but had no sketch
	// yet.
	Empty bool
	// Certificate is the fetched sketch's own error-bound statement
	// (zero for empty or lost legs); Compose over the surviving legs'
	// certificates is the conservative pre-merge bound the merged
	// sketch must dominate.
	Certificate audit.Certificate
}

// RemoteReport summarizes a MergeRemote call.
type RemoteReport struct {
	Legs      []LegStatus
	Survivors int
	Dropped   int
	// Composed is audit.Compose over the surviving legs' certificates:
	// the certificate bound for the concatenation of every covered
	// stream, available even before the merge folds them.
	Composed audit.Certificate
}

// Degraded reports whether any leg was dropped — the merged sketch
// covers only the surviving legs' streams.
func (r RemoteReport) Degraded() bool { return r.Dropped > 0 }

// MergeRemote fetches every leg concurrently — retrying transient and
// corrupt faults per the Retry policy, honoring Retry.LegTimeout per
// attempt — validates each fetched sketch, drops legs that exhaust
// their retries or fail fatally (degrading to the surviving legs, with
// a journal event and a flight-recorder trigger per lost leg), and
// tree-merges the survivors with MergeSketches semantics. The fetch
// spans (remote_leg, one per leg, with attempt children) and the merge
// parent under the given trace context.
//
// The fetched sketches are merged in leg order, so for infallible
// fetches the result is bit-identical to MergeSketches over the same
// inputs — the engine's local and remote reconcile paths share one
// deterministic fold.
func MergeRemote(legs []RemoteLeg, strategy MergeStrategy, retry Retry, parent obs.SpanContext) (*sketch.FrequentDirections, Stats, RemoteReport) {
	retry = retry.withDefaults()
	rep := RemoteReport{Legs: make([]LegStatus, len(legs))}
	if len(legs) == 0 {
		return nil, Stats{}, rep
	}
	sp := obs.StartSpanIn(parent, "merge_remote",
		obs.L("legs", strconv.Itoa(len(legs))),
		obs.L("strategy", strategy.String()))
	defer sp.End()

	fetched := make([]*sketch.FrequentDirections, len(legs))
	var wg sync.WaitGroup
	for i := range legs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fetched[i], rep.Legs[i] = fetchLeg(sp.Context(), legs[i], retry)
		}(i)
	}
	wg.Wait()

	fds := make([]*sketch.FrequentDirections, 0, len(legs))
	certs := make([]audit.Certificate, 0, len(legs))
	for i := range rep.Legs {
		st := &rep.Legs[i]
		switch {
		case st.Err != nil:
			rep.Dropped++
			obsRemoteLegsLost.Inc()
			sp.SetAttr("lost_"+st.Name, st.Class.String())
			audit.Default().Record(audit.KindRemoteLegLost,
				"remote merge leg dropped after retries; degrading to surviving legs",
				audit.A("leg", float64(i)),
				audit.A("attempts", float64(st.Attempts)),
				audit.A("class", float64(st.Class)))
			obs.Default().FlightTrigger("remote_leg_lost")
		case st.Empty:
			// No rows on this shard yet: nothing to merge, nothing lost.
		default:
			rep.Survivors++
			fds = append(fds, fetched[i])
			certs = append(certs, st.Certificate)
		}
	}
	rep.Composed = audit.Compose(certs...)
	if len(fds) == 0 {
		return nil, Stats{}, rep
	}
	g, stats := MergeSketchesTraced(fds, strategy, sp.Context())
	return g, stats, rep
}

// fetchLeg runs one leg's retry loop. Every attempt gets a fresh Fetch
// call bounded by retry.LegTimeout (0 = unbounded); a straggling
// attempt finishes into a buffered channel and is discarded, so a
// timed-out fetch never blocks the merge — the transport's own
// deadlines bound how long the straggler goroutine itself lives.
func fetchLeg(parent obs.SpanContext, leg RemoteLeg, retry Retry) (*sketch.FrequentDirections, LegStatus) {
	st := LegStatus{Name: leg.Name}
	sp := obs.StartSpanIn(parent, "remote_leg", obs.L("leg", leg.Name))
	defer sp.End()
	obsRemoteLegs.Inc()
	t0 := time.Now()
	defer func() { obsRemoteFetchSec.Observe(time.Since(t0).Seconds()) }()

	backoff := retry.Backoff
	for attempt := 0; attempt < retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			st.Retries++
			obsRemoteRetries.Inc()
			time.Sleep(backoff)
			backoff *= 2
		}
		st.Attempts++
		spAtt := sp.StartChild("fetch_attempt", obs.L("attempt", strconv.Itoa(attempt)))
		fd, err := fetchOnce(leg, spAtt.Context(), retry.LegTimeout)
		if err == nil && fd != nil && !fd.Finite() {
			err = errNotFinite
		}
		if err != nil {
			spAtt.SetAttr("error", err.Error())
			spAtt.SetAttr("class", Classify(err).String())
		}
		spAtt.End()
		if err == nil {
			if fd == nil {
				st.Empty = true
			} else {
				st.Certificate = audit.FromSketch(fd)
			}
			st.Err, st.Class = nil, FaultNone
			return fd, st
		}
		st.Err, st.Class = err, Classify(err)
		if st.Class == FaultFatal {
			break
		}
	}
	sp.SetAttr("lost", "true")
	sp.SetAttr("class", st.Class.String())
	return nil, st
}

// fetchOnce bounds a single fetch attempt by timeout (0 = call
// inline), passing the attempt's span context through to
// trace-propagating transports.
func fetchOnce(leg RemoteLeg, parent obs.SpanContext, timeout time.Duration) (*sketch.FrequentDirections, error) {
	if timeout <= 0 {
		return leg.fetch(parent)
	}
	type result struct {
		fd  *sketch.FrequentDirections
		err error
	}
	done := make(chan result, 1)
	go func() {
		fd, err := leg.fetch(parent)
		done <- result{fd, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-done:
		return r.fd, r.err
	case <-timer.C:
		return nil, errLegTimeout
	}
}
