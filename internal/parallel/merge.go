package parallel

import (
	"strconv"
	"sync"
	"time"

	"arams/internal/audit"
	"arams/internal/obs"
	"arams/internal/sketch"
)

// Reconcile-phase observability: MergeSketches is the engine's shard
// reconciliation primitive, so its call count and rotation volume are
// tracked separately from the batch Run/RunArity path.
var (
	obsReconcilesTotal    = obs.Default().Counter("arams_parallel_reconciles_total")
	obsReconcileRotations = obs.Default().Counter("arams_parallel_reconcile_rotations_total")
)

// MergeSketches combines already-built sketches into one global summary
// using the chosen strategy (binary tree for TreeMerge, a linear fold
// for SerialMerge) without mutating the inputs: every input is cloned
// before the first fold, so live shard sketches can keep ingesting
// while a reconcile runs on a snapshot of their state.
//
// This is the primitive behind the streaming engine's periodic shard
// reconciliation. Mergeability (Ghashami et al.) makes the error-bound
// certificate compose: the merged sketch's Delta() is the sum of the
// inputs' shrinkage masses plus whatever the merge rotations shrink,
// so audit.FromSketch on the result certifies
// ‖AᵀA − BᵀB‖₂ ≤ Σδ over the concatenation of every input stream.
//
// It returns the merged sketch and the merge accounting (MergeRounds,
// MergeRotations, MergeShrinkMass, Certificate, CriticalPath — the
// sketch-phase fields stay zero because no shard sketching happens
// here). Passing no sketches returns (nil, Stats{}); a single sketch is
// cloned, compacted, and returned with zero merge work.
func MergeSketches(fds []*sketch.FrequentDirections, strategy MergeStrategy) (*sketch.FrequentDirections, Stats) {
	return MergeSketchesTraced(fds, strategy, obs.SpanContext{})
}

// MergeSketchesTraced is MergeSketches with its spans (merge_sketches →
// merge_round → merge_leg) parented into an existing trace, so an
// engine reconcile shows up inside its batch's tree on /tracez. The
// zero SpanContext roots a standalone trace.
func MergeSketchesTraced(fds []*sketch.FrequentDirections, strategy MergeStrategy, parent obs.SpanContext) (*sketch.FrequentDirections, Stats) {
	stats := Stats{Workers: len(fds)}
	if len(fds) == 0 {
		return nil, stats
	}
	obsReconcilesTotal.Inc()
	start := time.Now()
	sp := obs.StartSpanIn(parent, "merge_sketches",
		obs.L("inputs", strconv.Itoa(len(fds))),
		obs.L("strategy", strategy.String()))
	defer sp.End()

	clones := make([]*sketch.FrequentDirections, len(fds))
	rotBefore, deltaBefore := 0, 0.0
	for i, fd := range fds {
		clones[i] = fd.Clone()
		rotBefore += fd.Rotations()
		deltaBefore += fd.Delta()
	}
	if len(clones) == 1 {
		clones[0].Compact()
		stats.Certificate = audit.FromSketch(clones[0])
		stats.Total = time.Since(start)
		return clones[0], stats
	}

	var global *sketch.FrequentDirections
	var crit time.Duration
	switch strategy {
	case SerialMerge:
		spFold := sp.StartChild("merge_serial_fold",
			obs.L("nodes", strconv.Itoa(len(clones))))
		global, crit = serialMerge(clones)
		spFold.End()
		stats.MergeRounds = len(clones) - 1
	default: // TreeMerge and any future strategy fold as a binary tree
		nodes := clones
		for len(nodes) > 1 {
			stats.MergeRounds++
			spRound := sp.StartChild("merge_round",
				obs.L("round", strconv.Itoa(stats.MergeRounds-1)))
			roundCtx := spRound.Context()
			groups := (len(nodes) + 1) / 2
			next := make([]*sketch.FrequentDirections, groups)
			legTimes := make([]time.Duration, groups)
			var wg sync.WaitGroup
			for g := 0; g < groups; g++ {
				lo := 2 * g
				if lo+1 >= len(nodes) {
					next[g] = nodes[lo] // pass-through singleton
					continue
				}
				wg.Add(1)
				go func(g, lo int) {
					defer wg.Done()
					spLeg := obs.StartSpanIn(roundCtx, "merge_leg",
						obs.L("group", strconv.Itoa(g)))
					ct := obs.StartCPUTimer()
					t0 := time.Now()
					acc := nodes[lo]
					acc.Merge(nodes[lo+1])
					acc.Compact()
					legTimes[g] = time.Since(t0)
					next[g] = acc
					if cpu, ok := ct.Stop(); ok {
						spLeg.SetCPU(cpu)
					}
					spLeg.End()
				}(g, lo)
			}
			wg.Wait()
			spRound.End()
			var slowest time.Duration
			for _, d := range legTimes {
				if d > slowest {
					slowest = d
				}
			}
			crit += slowest
			nodes = next
		}
		global = nodes[0]
	}
	global.Compact()
	stats.MergeRotations = global.Rotations() - rotBefore
	stats.MergeShrinkMass = global.Delta() - deltaBefore
	stats.Certificate = audit.FromSketch(global)
	stats.CriticalPath = crit
	stats.MergeTime = time.Since(start)
	stats.Total = stats.MergeTime
	obsReconcileRotations.Add(float64(stats.MergeRotations))
	return global, stats
}
