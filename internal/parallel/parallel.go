// Package parallel implements the paper's parallelization scheme for
// Frequent Directions sketching (§IV-C): each worker sketches a shard
// of the data independently, and the per-shard sketches — which are
// mergeable summaries — are combined either by the proposed tree merge
// (logarithmic number of merge rotations, merges within a level running
// concurrently) or by the baseline serial merge (linear chain of
// rotations through a single accumulator), the comparison behind
// Figs. 2 and 3.
//
// Workers are goroutines; the original system used MPI ranks on a
// cluster, but the merge topology, rotation counts, and communication
// structure are identical, which is what the strong-scaling shape
// depends on.
package parallel

import (
	"fmt"
	"sync"
	"time"

	"arams/internal/audit"
	"arams/internal/mat"
	"arams/internal/obs"
	"arams/internal/sketch"
)

// Merge-phase observability: Run/RunArity record "sketch" and "merge"
// stage spans (plus one "merge_round" span per tree level) and bump
// these totals. RunSimulated is a measurement harness and stays
// silent so it never pollutes the live histograms.
var (
	obsRunsTotal        = obs.Default().Counter("arams_parallel_runs_total")
	obsLocalRotations   = obs.Default().Counter("arams_parallel_local_rotations_total")
	obsMergeRotations   = obs.Default().Counter("arams_parallel_merge_rotations_total")
	obsMergeRoundsTotal = obs.Default().Counter("arams_parallel_merge_rounds_total")
	obsWorkersGauge     = obs.Default().Gauge("arams_parallel_workers")
)

// Last-run gauges: the per-run snapshot /statusz renders in its "merge
// fault tolerance" section (the cumulative *_total counters above keep
// growing; these reset every Run so the dashboard answers "what did
// the most recent run do").
var (
	obsLastRounds   = obs.Default().Gauge("arams_parallel_last_run_rounds")
	obsLastLegs     = obs.Default().Gauge("arams_parallel_last_run_legs")
	obsLastFailures = obs.Default().Gauge("arams_parallel_last_run_failures")
	obsLastRetries  = obs.Default().Gauge("arams_parallel_last_run_retries")
	obsLastResketch = obs.Default().Gauge("arams_parallel_last_run_resketches")
	obsLastSerialFB = obs.Default().Gauge("arams_parallel_last_run_serial_fallback")
)

// MergeStrategy selects how per-shard sketches are combined.
type MergeStrategy int

const (
	// TreeMerge combines sketches pairwise in rounds; each round halves
	// the sketch count and its merges run concurrently.
	TreeMerge MergeStrategy = iota
	// SerialMerge folds every sketch into a single accumulator one at a
	// time — the baseline whose scaling plateaus in Fig. 2.
	SerialMerge
)

// String names the strategy for tables.
func (s MergeStrategy) String() string {
	switch s {
	case TreeMerge:
		return "tree-merge"
	case SerialMerge:
		return "serial-merge"
	default:
		return fmt.Sprintf("MergeStrategy(%d)", int(s))
	}
}

// RoundStats is one tree level's merge-leg accounting. A leg is a
// group fold of two or more sketches; pass-through singletons are not
// legs. Failures counts failed attempts (injected faults, detected
// corruption, timeouts), Retries the re-attempts after them, and
// Resketches the legs that exhausted their retries and were recovered
// by re-sketching their shards from source data.
type RoundStats struct {
	Legs       int
	Failures   int
	Retries    int
	Resketches int
	// Slowest is the round's slowest leg — its critical-path term.
	Slowest time.Duration
	// ShrinkMass is the net shrinkage Σδ this round's legs added to the
	// surviving sketches — the round's contribution to the error-bound
	// certificate. Summing it over rounds (plus the per-shard sketch
	// shrinkage) reproduces the final certificate, which is how the
	// property tests pin certificate composition across merge legs.
	// A re-sketch recovery replaces its children's accumulated
	// shrinkage, so its round reports the net change (possibly
	// negative).
	ShrinkMass float64
}

// Stats reports the work performed by a parallel sketch run.
type Stats struct {
	Workers        int
	LocalRotations int // SVD rotations during per-shard sketching
	// MergeRotations is the rotation count attributed to merging; when
	// a lost leg was recovered, the recovery's re-sketch rotations are
	// included here (the original shard pass was already billed to
	// LocalRotations even though its result was discarded).
	MergeRotations int
	MergeRounds    int           // tree levels (1 chain for serial)
	SketchTime     time.Duration // wall time of the shard-sketch phase
	MergeTime      time.Duration // wall time of the merge phase
	Total          time.Duration
	// Rounds is the per-tree-level leg accounting (nil for serial
	// merge and for RunSimulated).
	Rounds []RoundStats
	// LegFailures/LegRetries/Resketches aggregate Rounds; non-zero only
	// under fault injection or leg timeouts.
	LegFailures int
	LegRetries  int
	Resketches  int
	// SerialFallback records that repeated leg losses degraded the run
	// to a serial fold of the surviving sketches.
	SerialFallback bool
	// LocalShrinkMass is the shrinkage Σδ accumulated during the
	// per-shard sketch phase; MergeShrinkMass is the additional
	// shrinkage attributed to merging, under the same attribution
	// convention as MergeRotations (re-sketch recoveries bill their
	// shrinkage to the merge phase).
	LocalShrinkMass float64
	MergeShrinkMass float64
	// Certificate is the run's final error-bound certificate, cut from
	// the merged global sketch: ‖AᵀA − BᵀB‖₂ ≤ Certificate.CovBound()
	// over the concatenation of every shard, whatever merge order,
	// arity, faults, and recoveries the run took (mergeability makes
	// the bound compose).
	Certificate audit.Certificate
	// CriticalPath is the strong-scaling runtime on ideal hardware: the
	// slowest single worker's sketch time, plus — for the tree — the
	// sum over merge levels of each level's slowest merge, or — for the
	// serial fold — the sum of every merge. Each contribution is
	// measured, not modeled, so the value is meaningful even when the
	// host has fewer cores than workers (goroutines then time-slice,
	// but each unit of work is timed individually).
	CriticalPath time.Duration
}

// Sketcher builds a fresh sketch for a shard; it lets callers choose
// plain FD, rank-adaptive FD, or full ARAMS per worker.
type Sketcher func(shard *mat.Matrix) *sketch.FrequentDirections

// FDSketcher returns a Sketcher that runs plain fast Frequent
// Directions with the given ℓ.
func FDSketcher(ell int, opts sketch.Options) Sketcher {
	return func(shard *mat.Matrix) *sketch.FrequentDirections {
		fd := sketch.NewFrequentDirections(ell, shard.ColsN, opts)
		fd.AppendMatrix(shard)
		return fd
	}
}

// Run sketches every shard concurrently (one goroutine per shard) and
// merges the per-shard sketches with the chosen strategy (binary tree
// for TreeMerge). It returns the global sketch and run statistics.
// Options (WithFaults, WithRetry) configure the fault-tolerance layer
// around tree-merge legs; with none, legs fold in place with zero
// overhead.
func Run(shards []*mat.Matrix, mk Sketcher, strategy MergeStrategy, options ...Option) (*sketch.FrequentDirections, Stats) {
	return RunArity(shards, mk, strategy, 2, options...)
}

// RunArity is Run with a configurable tree arity: each tree level
// groups `arity` sketches and folds each group with arity−1 sequential
// merges, groups running concurrently — the general branching factor of
// the appendix's mergeability proof. Arity is ignored for SerialMerge.
func RunArity(shards []*mat.Matrix, mk Sketcher, strategy MergeStrategy, arity int, options ...Option) (*sketch.FrequentDirections, Stats) {
	if len(shards) == 0 {
		panic("parallel: no shards")
	}
	if arity < 2 {
		panic("parallel: tree arity must be >= 2")
	}
	if allShardsEmpty(shards) {
		return emptyRun(shards, mk)
	}
	opts := newRunOptions(options)
	stats := Stats{Workers: len(shards)}
	obsRunsTotal.Inc()
	obsWorkersGauge.SetInt(len(shards))
	start := time.Now()

	// Root span: a child of the caller's trace (WithTrace) or a fresh
	// trace root, so every run reads as one connected tree on /tracez.
	spRun := obs.StartSpanIn(opts.trace, "parallel_run",
		obs.L("workers", fmt.Sprint(len(shards))),
		obs.L("strategy", strategy.String()))
	defer spRun.End()

	spSketch := spRun.StartChild("sketch")
	local := make([]*sketch.FrequentDirections, len(shards))
	localTimes := make([]time.Duration, len(shards))
	var wg sync.WaitGroup
	for i, shard := range shards {
		wg.Add(1)
		go func(i int, shard *mat.Matrix) {
			defer wg.Done()
			t0 := time.Now()
			fd := mk(shard)
			fd.Compact()
			localTimes[i] = time.Since(t0)
			local[i] = fd
		}(i, shard)
	}
	wg.Wait()
	stats.SketchTime = spSketch.End()
	var slowestLocal time.Duration
	for i, fd := range local {
		stats.LocalRotations += fd.Rotations()
		stats.LocalShrinkMass += fd.Delta()
		if localTimes[i] > slowestLocal {
			slowestLocal = localTimes[i]
		}
	}
	obsLocalRotations.Add(float64(stats.LocalRotations))

	spMerge := spRun.StartChild("merge")
	var global *sketch.FrequentDirections
	var mergeCrit time.Duration
	switch strategy {
	case TreeMerge:
		nodes := make([]*mergeNode, len(local))
		for i, fd := range local {
			nodes[i] = &mergeNode{fd: fd, shards: []int{i}}
		}
		env := &mergeEnv{shards: shards, mk: mk, opts: opts, stats: &stats,
			trace: spMerge.Context()}
		global, stats.MergeRounds, mergeCrit = treeMerge(nodes, arity, env)
	case SerialMerge:
		global, mergeCrit = serialMerge(local)
		stats.MergeRounds = len(local) - 1
	default:
		panic("parallel: unknown merge strategy")
	}
	stats.MergeTime = spMerge.End()
	stats.MergeRotations = global.Rotations() - stats.LocalRotations
	stats.MergeShrinkMass = global.Delta() - stats.LocalShrinkMass
	stats.Certificate = audit.FromSketch(global)
	obsMergeRotations.Add(float64(stats.MergeRotations))
	obsMergeRoundsTotal.Add(float64(stats.MergeRounds))
	publishLastRun(&stats)
	stats.CriticalPath = slowestLocal + mergeCrit
	stats.Total = time.Since(start)
	return global, stats
}

// publishLastRun exports a run's fault-tolerance accounting to the
// last-run gauges behind /statusz.
func publishLastRun(stats *Stats) {
	legs := 0
	for _, rs := range stats.Rounds {
		legs += rs.Legs
	}
	obsLastRounds.SetInt(stats.MergeRounds)
	obsLastLegs.SetInt(legs)
	obsLastFailures.SetInt(stats.LegFailures)
	obsLastRetries.SetInt(stats.LegRetries)
	obsLastResketch.SetInt(stats.Resketches)
	if stats.SerialFallback {
		obsLastSerialFB.Set(1)
	} else {
		obsLastSerialFB.Set(0)
	}
}

// treeMerge reduces merge nodes in groups of `arity`; groups within
// one round run concurrently, mirroring simultaneous MPI exchanges
// across ranks, while the arity−1 merges inside a group are sequential
// (one leg). Legs run through runLeg, which adds retry/timeout/
// recovery semantics when the run is configured with WithFaults or
// WithRetry; when too many legs are lost, the remaining nodes are
// folded serially with no further fault exposure. The returned
// duration is the merge critical path: the sum over rounds of each
// round's slowest leg.
func treeMerge(nodes []*mergeNode, arity int, env *mergeEnv) (*sketch.FrequentDirections, int, time.Duration) {
	rounds := 0
	var critical time.Duration
	for len(nodes) > 1 {
		if env.stats.Resketches > env.opts.retry.MaxFailedLegs {
			// Too many lost legs: degrade to one serial fold of the
			// surviving sketches — slower, but with no concurrent legs
			// left to lose.
			env.stats.SerialFallback = true
			obsSerialFallbacks.Inc()
			audit.Default().Record(audit.KindSerialFallback,
				"tree merge degraded to serial fold",
				audit.A("surviving_nodes", float64(len(nodes))),
				audit.A("lost_legs", float64(env.stats.Resketches)))
			rounds++
			spFold := obs.StartSpanIn(env.trace, "merge_serial_fold",
				obs.L("nodes", fmt.Sprint(len(nodes))))
			defer spFold.End()
			t0 := time.Now()
			before := 0.0
			for _, nd := range nodes {
				before += nd.fd.Delta()
			}
			acc := nodes[0].fd
			for _, nd := range nodes[1:] {
				acc.Merge(nd.fd)
				acc.Compact()
			}
			d := time.Since(t0)
			critical += d
			env.stats.Rounds = append(env.stats.Rounds,
				RoundStats{Legs: 1, Slowest: d, ShrinkMass: acc.Delta() - before})
			return acc, rounds, critical
		}

		rounds++
		spRound := obs.StartSpanIn(env.trace, "merge_round",
			obs.L("round", fmt.Sprint(rounds-1)))
		roundCtx := spRound.Context()
		groups := (len(nodes) + arity - 1) / arity
		next := make([]*mergeNode, groups)
		reports := make([]legReport, groups)
		isLeg := make([]bool, groups)
		var wg sync.WaitGroup
		for gIdx := 0; gIdx < groups; gIdx++ {
			lo := gIdx * arity
			hi := lo + arity
			if hi > len(nodes) {
				hi = len(nodes)
			}
			if hi-lo == 1 {
				next[gIdx] = nodes[lo] // pass-through, not a leg
				continue
			}
			isLeg[gIdx] = true
			wg.Add(1)
			go func(gIdx, lo, hi int) {
				defer wg.Done()
				next[gIdx], reports[gIdx] = runLeg(roundCtx, rounds-1, gIdx, nodes[lo:hi], env)
			}(gIdx, lo, hi)
		}
		wg.Wait()
		spRound.End()
		rs := RoundStats{}
		for gIdx, rep := range reports {
			if !isLeg[gIdx] {
				continue
			}
			rs.Legs++
			rs.Failures += rep.failures
			rs.Retries += rep.retries
			rs.ShrinkMass += rep.shrink
			if rep.resketch {
				rs.Resketches++
			}
			if rep.duration > rs.Slowest {
				rs.Slowest = rep.duration
			}
		}
		env.stats.Rounds = append(env.stats.Rounds, rs)
		env.stats.LegFailures += rs.Failures
		env.stats.LegRetries += rs.Retries
		env.stats.Resketches += rs.Resketches
		critical += rs.Slowest
		nodes = next
	}
	return nodes[0].fd, rounds, critical
}

// serialMerge folds all sketches into the first, one at a time; every
// merge is on the critical path.
func serialMerge(fds []*sketch.FrequentDirections) (*sketch.FrequentDirections, time.Duration) {
	acc := fds[0]
	start := time.Now()
	for _, fd := range fds[1:] {
		acc.Merge(fd)
		acc.Compact()
	}
	return acc, time.Since(start)
}

// RunSimulated executes the same sharded sketch-and-merge computation
// as Run but strictly sequentially, timing every unit of work in
// isolation, and reports the critical path the computation would have
// on hardware with one core per worker: the slowest local sketch plus,
// per tree level, that level's slowest merge (or every merge, for the
// serial fold). On a host with fewer cores than workers, Run's
// goroutines time-slice and per-goroutine timings degenerate to wall
// time; RunSimulated is the measurement to use for strong-scaling
// studies there. Total is the summed sequential work.
func RunSimulated(shards []*mat.Matrix, mk Sketcher, strategy MergeStrategy) (*sketch.FrequentDirections, Stats) {
	return RunSimulatedArity(shards, mk, strategy, 2)
}

// RunSimulatedArity is RunSimulated with a configurable tree arity (see
// RunArity).
func RunSimulatedArity(shards []*mat.Matrix, mk Sketcher, strategy MergeStrategy, arity int) (*sketch.FrequentDirections, Stats) {
	if len(shards) == 0 {
		panic("parallel: no shards")
	}
	if arity < 2 {
		panic("parallel: tree arity must be >= 2")
	}
	if allShardsEmpty(shards) {
		return emptyRun(shards, mk)
	}
	stats := Stats{Workers: len(shards)}
	var work time.Duration

	local := make([]*sketch.FrequentDirections, len(shards))
	var slowestLocal time.Duration
	for i, shard := range shards {
		t0 := time.Now()
		fd := mk(shard)
		fd.Compact()
		d := time.Since(t0)
		work += d
		if d > slowestLocal {
			slowestLocal = d
		}
		local[i] = fd
	}
	stats.SketchTime = work
	for _, fd := range local {
		stats.LocalRotations += fd.Rotations()
	}

	var mergeCrit time.Duration
	mergeStart := work
	switch strategy {
	case TreeMerge:
		for len(local) > 1 {
			stats.MergeRounds++
			groups := (len(local) + arity - 1) / arity
			next := make([]*sketch.FrequentDirections, 0, groups)
			var slowest time.Duration
			for g := 0; g < groups; g++ {
				lo := g * arity
				hi := lo + arity
				if hi > len(local) {
					hi = len(local)
				}
				t0 := time.Now()
				acc := local[lo]
				for i := lo + 1; i < hi; i++ {
					acc.Merge(local[i])
					acc.Compact()
				}
				d := time.Since(t0)
				work += d
				if d > slowest {
					slowest = d
				}
				next = append(next, acc)
			}
			mergeCrit += slowest
			local = next
		}
	case SerialMerge:
		stats.MergeRounds = len(local) - 1
		t0 := time.Now()
		for _, fd := range local[1:] {
			local[0].Merge(fd)
			local[0].Compact()
		}
		d := time.Since(t0)
		work += d
		mergeCrit = d
		local = local[:1]
	default:
		panic("parallel: unknown merge strategy")
	}
	global := local[0]
	stats.MergeTime = work - mergeStart
	stats.MergeRotations = global.Rotations() - stats.LocalRotations
	stats.CriticalPath = slowestLocal + mergeCrit
	stats.Total = work
	return global, stats
}

// allShardsEmpty reports whether no shard carries any rows — the
// degenerate input the run entry points short-circuit.
func allShardsEmpty(shards []*mat.Matrix) bool {
	for _, s := range shards {
		if s.RowsN > 0 {
			return false
		}
	}
	return true
}

// emptyRun is the deterministic short-circuit for all-empty input:
// build one sketch from the (empty) first shard, skip the worker
// goroutines and every merge, and report zero-duration stats. Without
// this, a 0-row dataset took the full fan-out/merge machinery for no
// work, and a 0×0 input panicked deep inside a worker goroutine instead
// of in the caller's stack (NewFrequentDirections still rejects d = 0,
// but now synchronously, with a clear message).
func emptyRun(shards []*mat.Matrix, mk Sketcher) (*sketch.FrequentDirections, Stats) {
	fd := mk(shards[0])
	fd.Compact()
	return fd, Stats{Workers: len(shards)}
}

// SplitRows partitions x into p contiguous row blocks of near-equal
// size (views, no copy). p is clamped to the number of rows; a 0-row
// input yields a single empty shard, which Run and RunSimulated
// short-circuit.
func SplitRows(x *mat.Matrix, p int) []*mat.Matrix {
	if p < 1 {
		panic("parallel: SplitRows needs p >= 1")
	}
	if p > x.RowsN {
		p = x.RowsN
	}
	if p == 0 {
		return []*mat.Matrix{x}
	}
	out := make([]*mat.Matrix, 0, p)
	chunk := x.RowsN / p
	extra := x.RowsN % p
	row := 0
	for i := 0; i < p; i++ {
		sz := chunk
		if i < extra {
			sz++
		}
		out = append(out, x.Rows(row, row+sz))
		row += sz
	}
	return out
}
