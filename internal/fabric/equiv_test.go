package fabric_test

import (
	"math"
	"reflect"
	"testing"
	"time"

	"arams/internal/engine"
	"arams/internal/fabric"
	"arams/internal/mat"
	"arams/internal/rng"
	"arams/internal/sketch"
)

// testVecs builds the same deterministic low-rank-plus-noise stream the
// engine tests use, so the sketch has real directions to track.
func testVecs(n, d int, seed uint64) [][]float64 {
	g := rng.New(seed)
	base := make([][]float64, 3)
	for i := range base {
		base[i] = make([]float64, d)
		for j := range base[i] {
			base[i][j] = g.Norm()
		}
	}
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, d)
		b := base[i%len(base)]
		for j := range v {
			v[j] = 3*b[j] + 0.3*g.Norm()
		}
		vecs[i] = v
	}
	return vecs
}

func cloneVecs(vecs [][]float64) [][]float64 {
	out := make([][]float64, len(vecs))
	for i, v := range vecs {
		out[i] = append([]float64(nil), v...)
	}
	return out
}

func asMatrix(vecs [][]float64) *mat.Matrix {
	x := mat.New(len(vecs), len(vecs[0]))
	for i, v := range vecs {
		copy(x.Row(i), v)
	}
	return x
}

// sameMatrix requires bit-identical entries — the fabric claims
// equivalence, not approximation.
func sameMatrix(t *testing.T, what string, a, b *mat.Matrix) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: one side nil (%v vs %v)", what, a == nil, b == nil)
	}
	if a == nil {
		return
	}
	ar, ac := a.Dims()
	br, bc := b.Dims()
	if ar != br || ac != bc {
		t.Fatalf("%s: dims %dx%d vs %dx%d", what, ar, ac, br, bc)
	}
	for i := 0; i < ar; i++ {
		for j := 0; j < ac; j++ {
			if math.Float64bits(a.At(i, j)) != math.Float64bits(b.At(i, j)) {
				t.Fatalf("%s: entry (%d,%d) differs: %v vs %v", what, i, j, a.At(i, j), b.At(i, j))
			}
		}
	}
}

// quietRemote is the test-default remote policy: fail fast, no
// background heartbeat goroutines to pollute -race goroutine counts.
func quietRemote() fabric.RemoteConfig {
	return fabric.RemoteConfig{
		DialTimeout:       2 * time.Second,
		OpTimeout:         5 * time.Second,
		HeartbeatEvery:    -1,
		ReconnectAttempts: 2,
		ReconnectBackoff:  5 * time.Millisecond,
	}
}

// TestLoopbackEquivalence is the fabric acceptance test: a coordinator
// driving four remote workers over loopback TCP must be bit-identical
// to a single-process four-shard engine fed the same stream in the
// same batches — shard states, global sketch, and certificate all
// exactly equal. Covers both routing policies.
func TestLoopbackEquivalence(t *testing.T) {
	const n, d, shards = 256, 24, 4
	scfg := sketch.Config{Ell0: 8, Beta: 1, Seed: 5}

	for _, tc := range []struct {
		name  string
		route engine.Route
		tags  func(i int) int
	}{
		{"round_robin", engine.RoundRobin, nil},
		{"hash_by_tag", engine.HashByTag, func(i int) int { return i % 7 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			vecs := testVecs(n, d, 11)
			var tags []int
			if tc.tags != nil {
				tags = make([]int, n)
				for i := range tags {
					tags[i] = tc.tags(i)
				}
			}

			ecfg := engine.Config{
				Shards:         shards,
				Sketch:         scfg,
				Window:         32,
				Route:          tc.route,
				ReconcileEvery: 64,
			}
			local := engine.New(ecfg)
			defer local.Close()

			workers, addrs, err := fabric.StartLoopbackWorkers(shards)
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				for _, w := range workers {
					w.Close()
				}
			}()
			coord, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
				Workers: addrs,
				Engine:  ecfg,
				Remote:  quietRemote(),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()
			remote := coord.Engine()

			// Same stream, same uneven batch boundaries, both engines.
			for lo := 0; lo < n; {
				hi := lo + 1 + (lo*7)%13
				if hi > n {
					hi = n
				}
				var btags []int
				if tags != nil {
					btags = tags[lo:hi]
				}
				local.IngestVecs(cloneVecs(vecs[lo:hi]), btags)
				remote.IngestVecs(cloneVecs(vecs[lo:hi]), btags)
				lo = hi
			}

			if local.Ingested() != n || remote.Ingested() != n {
				t.Fatalf("ingested %d local, %d remote, want %d", local.Ingested(), remote.Ingested(), n)
			}
			for _, r := range coord.Remotes() {
				if r.Degraded() {
					t.Fatalf("%s degraded during a clean run", r.Name())
				}
			}

			// Shard-by-shard checkpoint states must be deeply equal —
			// sampler RNG streams included.
			ls, rs := local.State(), remote.State()
			if len(ls.Shards) != shards || len(rs.Shards) != shards {
				t.Fatalf("shard state count: %d local, %d remote", len(ls.Shards), len(rs.Shards))
			}
			for i := range ls.Shards {
				if !reflect.DeepEqual(ls.Shards[i], rs.Shards[i]) {
					t.Errorf("shard %d state differs between local and fabric run", i)
				}
			}
			if ls.Ingests != rs.Ingests || len(ls.Frames) != len(rs.Frames) {
				t.Errorf("stream counters differ: %d/%d local vs %d/%d remote",
					ls.Ingests, len(ls.Frames), rs.Ingests, len(rs.Frames))
			}

			// Merged global sketch: bit-identical matrix, equal certificate.
			lg, rg := local.GlobalSketch(), remote.GlobalSketch()
			if lg == nil || rg == nil {
				t.Fatal("nil global sketch")
			}
			sameMatrix(t, "global sketch", lg.Sketch(), rg.Sketch())

			lc, rc := local.Certificate(), remote.Certificate()
			lc.Time, rc.Time = time.Time{}, time.Time{}
			if lc != rc {
				t.Errorf("certificates differ:\n local  %+v\n remote %+v", lc, rc)
			}

			// The certified bound must hold against the exact covariance.
			x := asMatrix(vecs)
			exact := sketch.CovErr(x, rg.Sketch())
			if bound := rc.CovBound(); exact > bound+1e-8*(1+rc.FrobMass) {
				t.Errorf("exact covariance error %v exceeds certified bound %v", exact, bound)
			}
		})
	}
}

// TestLoopbackCheckpointRoundTrip pins the distributed checkpoint path:
// State() of a fabric engine restores into a fresh fabric engine (new
// workers) and the two streams continue identically.
func TestLoopbackCheckpointRoundTrip(t *testing.T) {
	const n, d, shards = 128, 16, 2
	vecs := testVecs(2*n, d, 23)
	ecfg := engine.Config{
		Shards: shards,
		Sketch: sketch.Config{Ell0: 8, Beta: 1, Seed: 9},
		Window: 24,
	}

	workers, addrs, err := fabric.StartLoopbackWorkers(shards)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	coord, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Workers: addrs, Engine: ecfg, Remote: quietRemote(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	coord.Engine().IngestVecs(cloneVecs(vecs[:n]), nil)
	ckptState := coord.Engine().State()

	// Resume on a brand-new worker fleet via Backends + NewFromState:
	// the Restore RPC pushes each shard's state to its new worker.
	workers2, addrs2, err := fabric.StartLoopbackWorkers(shards)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range workers2 {
			w.Close()
		}
	}()
	coord2, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Workers: addrs2, Engine: ecfg, Remote: quietRemote(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	resumed, err := engine.NewFromState(coord2.Engine().Config(), ckptState)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: local engine over the whole stream.
	local := engine.New(ecfg)
	defer local.Close()
	local.IngestVecs(cloneVecs(vecs), nil)

	resumed.IngestVecs(cloneVecs(vecs[n:]), nil)

	lg, rg := local.GlobalSketch(), resumed.GlobalSketch()
	if lg == nil || rg == nil {
		t.Fatal("nil global sketch")
	}
	sameMatrix(t, "resumed global sketch", lg.Sketch(), rg.Sketch())
	lc, rc := local.Certificate(), resumed.Certificate()
	lc.Time, rc.Time = time.Time{}, time.Time{}
	if lc != rc {
		t.Errorf("resumed certificate differs:\n local   %+v\n resumed %+v", lc, rc)
	}
}
