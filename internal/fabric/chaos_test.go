package fabric_test

import (
	"net"
	"testing"
	"time"

	"arams/internal/audit"
	"arams/internal/engine"
	"arams/internal/fabric"
	"arams/internal/fabric/fabrictest"
	"arams/internal/sketch"
)

// chaosConfig is the engine setup shared by the chaos tests: Beta=1 so
// the certificate bound can be checked against the exact covariance.
func chaosConfig(shards int) engine.Config {
	return engine.Config{
		Shards:         shards,
		Sketch:         sketch.Config{Ell0: 8, Beta: 1, Seed: 7},
		Window:         32,
		ReconcileEvery: 48,
	}
}

// chaosRemote fails fast so chaos tests finish quickly: short op
// deadlines, two reconnect attempts, tiny backoff, no heartbeats.
func chaosRemote() fabric.RemoteConfig {
	return fabric.RemoteConfig{
		DialTimeout:       500 * time.Millisecond,
		OpTimeout:         time.Second,
		HeartbeatEvery:    -1,
		ReconnectAttempts: 2,
		ReconnectBackoff:  5 * time.Millisecond,
	}
}

// runChaos streams vecs through a 2-shard fabric where shard 1's
// connection passes through the given proxy (shard 0 is direct), with
// fault injects between batches. It then asserts the fault-survival
// invariants the fabric claims: the run is bit-identical to an
// all-local engine with the same configuration and stream, and the
// composed certificate's bound dominates the exact covariance error.
// Returns the proxied remote for fault-specific assertions.
func runChaos(t *testing.T, vecs [][]float64, proxySetup func(p *fabrictest.Proxy), inject func(batch int, p *fabrictest.Proxy)) *fabric.Remote {
	t.Helper()
	const shards = 2
	ecfg := chaosConfig(shards)

	workers, addrs, err := fabric.StartLoopbackWorkers(shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, w := range workers {
			w.Close()
		}
	})
	p, err := fabrictest.New(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	if proxySetup != nil {
		proxySetup(p)
	}

	coord, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Workers: []string{addrs[0], p.Addr()},
		Engine:  ecfg,
		Remote:  chaosRemote(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })

	local := engine.New(ecfg)
	t.Cleanup(func() { local.Close() })

	n := len(vecs)
	batch := 0
	for lo := 0; lo < n; lo += 16 {
		hi := lo + 16
		if hi > n {
			hi = n
		}
		if inject != nil {
			inject(batch, p)
		}
		coord.Engine().IngestVecs(cloneVecs(vecs[lo:hi]), nil)
		local.IngestVecs(cloneVecs(vecs[lo:hi]), nil)
		batch++
	}

	if got := coord.Engine().Ingested(); got != n {
		t.Fatalf("fabric ingested %d frames under chaos, want %d", got, n)
	}

	// Bit-exact survival: whatever the fault path (retry, reconnect +
	// replay, or degradation to the in-process fallback), the merged
	// sketch must be identical to the all-local run.
	lg, rg := local.GlobalSketch(), coord.Engine().GlobalSketch()
	if lg == nil || rg == nil {
		t.Fatal("nil global sketch after chaos run")
	}
	sameMatrix(t, "global sketch under chaos", lg.Sketch(), rg.Sketch())

	// Composed certificate bound must dominate the exact covariance
	// error under every fault.
	rg = coord.Engine().GlobalSketch()
	b := rg.Sketch()
	cert := audit.FromSketch(rg)
	if cert.Rows != n {
		t.Errorf("certificate covers %d rows under chaos, want %d", cert.Rows, n)
	}
	exact := sketch.CovErr(asMatrix(vecs), b)
	if exact > cert.CovBound()+1e-8*(1+cert.FrobMass) {
		t.Errorf("exact covariance error %v exceeds certified bound %v under chaos",
			exact, cert.CovBound())
	}

	return coord.Remotes()[1]
}

// TestChaosDelay: a slow link is not a fault — added latency within the
// op deadline must not trigger recovery, and results stay bit-exact.
func TestChaosDelay(t *testing.T) {
	vecs := testVecs(192, 16, 31)
	r := runChaos(t, vecs, func(p *fabrictest.Proxy) {
		p.SetDelay(2 * time.Millisecond)
	}, nil)
	if r.Degraded() {
		t.Error("remote degraded on a merely slow link")
	}
}

// TestChaosCorruption: flipped bits on the wire must be caught by the
// frame CRC and repaired by reconnect + replay — never absorbed into
// the sketch. The proxy corrupts a burst mid-stream and then heals.
func TestChaosCorruption(t *testing.T) {
	vecs := testVecs(192, 16, 37)
	seq := audit.Default().Seq()
	r := runChaos(t, vecs, nil, func(batch int, p *fabrictest.Proxy) {
		switch batch {
		case 4:
			p.CorruptEvery(512) // flip a bit every 512 forwarded bytes
		case 6:
			p.CorruptEvery(0) // heal
		}
	})
	// The CRC must have rejected at least one frame; the fabric either
	// reconnected through the noise or degraded — both journaled, both
	// bit-exact (asserted by runChaos).
	recovered := audit.Default().Query(audit.Query{Kind: audit.KindRemoteRecovery, SinceSeq: seq})
	degraded := audit.Default().Query(audit.Query{Kind: audit.KindRemoteDegrade, SinceSeq: seq})
	if len(recovered)+len(degraded) == 0 {
		t.Error("corruption burst left no recovery or degrade events in the journal")
	}
	_ = r
}

// TestChaosPartition: a permanent partition exhausts reconnects and
// must degrade the shard to the in-process fallback — journaled, with
// the stream keeping full coverage (bit-exactness via runChaos).
func TestChaosPartition(t *testing.T) {
	vecs := testVecs(192, 16, 41)
	seq := audit.Default().Seq()
	r := runChaos(t, vecs, nil, func(batch int, p *fabrictest.Proxy) {
		if batch == 5 {
			p.Partition(true) // never heals
		}
	})
	if !r.Degraded() {
		t.Error("remote did not degrade under a permanent partition")
	}
	if evs := audit.Default().Query(audit.Query{Kind: audit.KindRemoteDegrade, SinceSeq: seq}); len(evs) == 0 {
		t.Error("degradation not journaled")
	}
}

// TestChaosMidFrameClose: abrupt connection cuts mid-frame (a torn
// frame, the classic half-written write) must be survived by reconnect
// with restore + replay, bit-exactly.
func TestChaosMidFrameClose(t *testing.T) {
	vecs := testVecs(192, 16, 43)
	runChaos(t, vecs, nil, func(batch int, p *fabrictest.Proxy) {
		switch batch {
		case 3:
			p.CloseAfter(4096) // each new conn dies after 4 KiB
		case 7:
			p.CloseAfter(0)
		}
	})
}

// TestWorkerKillRestart: killing a worker process (its sketcher state
// dies with it) and restarting it on the same port must be survived by
// the unconditional restore + replay reconnect — bit-exactly, without
// degradation once the worker is back.
func TestWorkerKillRestart(t *testing.T) {
	const shards, n, d = 2, 192, 16
	vecs := testVecs(n, d, 47)
	ecfg := chaosConfig(shards)

	w0, err := fabric.NewWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w0.Close()
	w1, err := fabric.NewWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1 := w1.Addr()

	coord, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Workers: []string{w0.Addr(), addr1},
		Engine:  ecfg,
		Remote:  chaosRemote(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	local := engine.New(ecfg)
	defer local.Close()

	seq := audit.Default().Seq()
	var w1b *fabric.Worker
	for lo := 0; lo < n; lo += 16 {
		if lo == 80 {
			// Kill worker 1 (state gone) and restart it on the same port.
			w1.Close()
			ln, err := net.Listen("tcp", addr1)
			if err != nil {
				t.Fatal(err)
			}
			w1b = fabric.ServeWorker(ln)
			defer w1b.Close()
		}
		coord.Engine().IngestVecs(cloneVecs(vecs[lo:lo+16]), nil)
		local.IngestVecs(cloneVecs(vecs[lo:lo+16]), nil)
	}

	if coord.Remotes()[1].Degraded() {
		t.Error("remote degraded although the worker came back")
	}
	if evs := audit.Default().Query(audit.Query{Kind: audit.KindRemoteRecovery, SinceSeq: seq}); len(evs) == 0 {
		t.Error("worker restart recovery not journaled")
	}
	// The restarted worker was rebuilt by restore + replay: absorbs on
	// the new process must cover everything since the last reconcile.
	if w1b.Frames() == 0 {
		t.Error("restarted worker absorbed nothing — replay did not reach it")
	}

	lg, rg := local.GlobalSketch(), coord.Engine().GlobalSketch()
	sameMatrix(t, "global sketch across worker restart", lg.Sketch(), rg.Sketch())
}
