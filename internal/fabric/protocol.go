// Package fabric is the distributed form of the streaming engine: shard
// backends that live behind TCP connections. A coordinator process runs
// the ordinary internal/engine ingest path — routing, window ring,
// audit cadence, reconcile controller — but each shard slot is a Remote
// backend that ships rows to a fabric Worker and fetches sketch state
// back for reconciles, so N machines sketch one stream while the
// coordinator still serves the single-process Monitor API.
//
// The wire protocol is deliberately small: length-prefixed, versioned,
// CRC-checked frames (internal/ckpt's wire codec) carrying either a
// primitive-encoded payload (rows, stats, certificates) or a whole
// canonical ckpt v3 checkpoint frame (sketch state — the same bytes a
// checkpoint file holds, so state fetched over the fabric is
// bit-identical to state saved to disk). Every request frame gets
// exactly one response frame with the same sequence number; faults are
// classified (parallel.FaultClass) so the coordinator's recovery ladder
// — per-RPC deadlines, reconnect + restore + replay, local fallback,
// and finally merge-time leg degradation — matches the in-process
// fault-tolerant merge semantics.
package fabric

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"arams/internal/audit"
	"arams/internal/obs"
	"arams/internal/sketch"
)

// Message types, carried in the wire frame's Type field. Every request
// (coordinator → worker) has a paired acknowledgement (worker →
// coordinator); MsgError may answer any request.
const (
	// MsgHello opens a connection: payload HelloPayload (shard index +
	// the shard-derived sketch config the worker must sketch under).
	MsgHello uint32 = 1
	// MsgHelloAck echoes the HelloPayload the worker adopted.
	MsgHelloAck uint32 = 2
	// MsgIngest carries a batch of preprocessed rows: payload
	// IngestPayload. The worker absorbs them in order.
	MsgIngest uint32 = 3
	// MsgIngestAck carries the fold of the absorbed rows' batch stats:
	// payload IngestAckPayload.
	MsgIngestAck uint32 = 4
	// MsgReconcile requests the worker's current sketcher state (a
	// reconcile fetch doubles as an incremental checkpoint). Empty
	// payload.
	MsgReconcile uint32 = 5
	// MsgSketchState answers MsgReconcile: the payload is a whole
	// canonical ckpt frame of the worker's ARAMS state, or empty when
	// the worker has absorbed no rows yet.
	MsgSketchState uint32 = 6
	// MsgRestore pushes sketcher state to the worker (reconnect
	// recovery, checkpoint resume): payload is a ckpt ARAMS frame, or
	// empty to reset the worker to a fresh sketcher.
	MsgRestore uint32 = 7
	// MsgRestoreAck acknowledges a restore. Empty payload.
	MsgRestoreAck uint32 = 8
	// MsgCertificateReq requests the worker's current error-bound
	// certificate. Empty payload.
	MsgCertificateReq uint32 = 9
	// MsgCertificate answers with a CertificatePayload (zero-valued
	// before the first row).
	MsgCertificate uint32 = 10
	// MsgHeartbeat is the liveness/RTT probe. Empty payload.
	MsgHeartbeat uint32 = 11
	// MsgHeartbeatAck answers with a HeartbeatPayload (frames absorbed,
	// current rank).
	MsgHeartbeatAck uint32 = 12
	// MsgError answers any request that failed: payload ErrorPayload.
	MsgError uint32 = 13
	// MsgStatsReq asks the worker to snapshot its whole obs registry
	// for fleet aggregation. Empty payload.
	MsgStatsReq uint32 = 14
	// MsgStats answers with the worker's obs.RegistrySnapshot as JSON
	// (stats are advisory telemetry, not sketch state, so a
	// self-describing encoding beats extending the binary codec for
	// every future metric).
	MsgStats uint32 = 15
	// MsgFlightReq fans a coordinator-side flight trigger out to the
	// worker: payload FlightReqPayload (trigger ID + reason). The worker
	// dumps its own flight ring tagged with the same trigger ID.
	MsgFlightReq uint32 = 16
	// MsgFlightAck answers with a FlightAckPayload naming the dump file
	// the worker wrote ("" when unarmed or cooling down).
	MsgFlightAck uint32 = 17
)

// Error codes carried by ErrorPayload, mirroring parallel.FaultClass so
// the coordinator can classify without string matching.
const (
	// ErrCodeTransient: the worker hit a retryable condition.
	ErrCodeTransient uint32 = 1
	// ErrCodeCorrupt: the request decoded but failed validation.
	ErrCodeCorrupt uint32 = 2
	// ErrCodeFatal: the worker cannot serve this connection again.
	ErrCodeFatal uint32 = 3
)

// penc is the fabric payload encoder: little-endian primitives appended
// to a byte slice, mirroring the ckpt codec's conventions (f64 as IEEE
// bits, bool as one byte) so payload bytes are canonical — the same
// payload always encodes to the same bytes, which the golden tests pin.
type penc struct{ b []byte }

func (e *penc) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *penc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *penc) i64(v int)     { e.u64(uint64(int64(v))) }
func (e *penc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *penc) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// pdec is the matching bounds-checked decoder: it never panics on
// truncated input, it records the first error and returns zeros after.
type pdec struct {
	b   []byte
	off int
	err error
}

func (d *pdec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("fabric: truncated payload at offset %d", d.off)
	}
}

func (d *pdec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *pdec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *pdec) i64() int     { return int(int64(d.u64())) }
func (d *pdec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *pdec) bool() bool {
	if d.err != nil || d.off >= len(d.b) {
		d.fail()
		return false
	}
	v := d.b[d.off]
	if v > 1 {
		// Only 0x00/0x01 are canonical; anything else would decode to a
		// value that re-encodes differently.
		if d.err == nil {
			d.err = fmt.Errorf("fabric: non-canonical bool byte %#02x at offset %d", v, d.off)
		}
		return false
	}
	d.off++
	return v != 0
}

// finish returns the recorded error, or an error if trailing bytes
// remain — payloads are exact, not prefixes.
func (d *pdec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("fabric: %d trailing payload bytes", len(d.b)-d.off)
	}
	return nil
}

// HelloPayload opens a connection: which shard slot this connection
// feeds and the sketch configuration the worker must sketch under
// (already shard-derived via engine.ShardSketchConfig, so the worker
// needs no configuration of its own).
type HelloPayload struct {
	Shard uint32
	Cfg   sketch.Config
}

func (p HelloPayload) encode() []byte {
	e := &penc{}
	e.u32(p.Shard)
	e.i64(p.Cfg.Ell0)
	e.i64(p.Cfg.Nu)
	e.f64(p.Cfg.Eps)
	e.f64(p.Cfg.Beta)
	e.bool(p.Cfg.RankAdaptive)
	e.i64(int(p.Cfg.Estimator))
	e.u64(p.Cfg.Seed)
	return e.b
}

func decodeHello(b []byte) (HelloPayload, error) {
	d := &pdec{b: b}
	var p HelloPayload
	p.Shard = d.u32()
	p.Cfg.Ell0 = d.i64()
	p.Cfg.Nu = d.i64()
	p.Cfg.Eps = d.f64()
	p.Cfg.Beta = d.f64()
	p.Cfg.RankAdaptive = d.bool()
	p.Cfg.Estimator = sketch.EstimatorKind(d.i64())
	p.Cfg.Seed = d.u64()
	return p, d.finish()
}

// maxIngestRows bounds a single ingest payload's row count; with the
// wire layer's 1 GiB payload cap this only guards against corrupt
// headers allocating absurd slices before the CRC would have caught
// them (the CRC already ran — this guards against a hostile peer).
const maxIngestRows = 1 << 22

// IngestPayload is a batch of preprocessed rows, row-major. All rows
// share the dimension D.
type IngestPayload struct {
	D    int
	Rows [][]float64
}

func (p IngestPayload) encode() []byte {
	e := &penc{b: make([]byte, 0, 16+8*p.D*len(p.Rows))}
	e.i64(p.D)
	e.i64(len(p.Rows))
	for _, r := range p.Rows {
		for _, v := range r {
			e.f64(v)
		}
	}
	return e.b
}

func decodeIngest(b []byte) (IngestPayload, error) {
	d := &pdec{b: b}
	var p IngestPayload
	p.D = d.i64()
	n := d.i64()
	if d.err == nil {
		if p.D < 0 || n < 0 || n > maxIngestRows ||
			(n > 0 && p.D > (len(b)-d.off)/8/n) {
			return p, fmt.Errorf("fabric: ingest payload claims %d rows of dim %d in %d bytes",
				n, p.D, len(b))
		}
	}
	p.Rows = make([][]float64, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		row := make([]float64, p.D)
		for j := range row {
			row[j] = d.f64()
		}
		p.Rows = append(p.Rows, row)
	}
	return p, d.finish()
}

// IngestAckPayload folds the absorbed rows' batch stats plus the
// worker's post-absorb rank. Carrying the full BatchStats (not just a
// count) keeps the coordinator's audit accumulator bit-identical to an
// all-local engine.
type IngestAckPayload struct {
	Stats sketch.BatchStats
	Ell   int
}

func (p IngestAckPayload) encode() []byte {
	e := &penc{}
	e.i64(p.Stats.Rows)
	e.i64(p.Stats.Kept)
	e.f64(p.Stats.TotalMass)
	e.f64(p.Stats.KeptMass)
	e.f64(p.Stats.DeltaAdded)
	e.i64(p.Stats.EllBefore)
	e.i64(p.Stats.EllAfter)
	e.i64(p.Ell)
	return e.b
}

func decodeIngestAck(b []byte) (IngestAckPayload, error) {
	d := &pdec{b: b}
	var p IngestAckPayload
	p.Stats.Rows = d.i64()
	p.Stats.Kept = d.i64()
	p.Stats.TotalMass = d.f64()
	p.Stats.KeptMass = d.f64()
	p.Stats.DeltaAdded = d.f64()
	p.Stats.EllBefore = d.i64()
	p.Stats.EllAfter = d.i64()
	p.Ell = d.i64()
	return p, d.finish()
}

// CertificatePayload is audit.Certificate on the wire. Time crosses as
// Unix nanoseconds (UTC on arrival).
type CertificatePayload struct{ Cert audit.Certificate }

func (p CertificatePayload) encode() []byte {
	e := &penc{}
	e.i64(p.Cert.Rows)
	e.i64(p.Cert.Dim)
	e.i64(p.Cert.Ell)
	e.i64(p.Cert.Rotations)
	e.f64(p.Cert.ShrinkMass)
	e.f64(p.Cert.FrobMass)
	var ns int64
	if !p.Cert.Time.IsZero() {
		ns = p.Cert.Time.UnixNano()
	}
	e.u64(uint64(ns))
	return e.b
}

func decodeCertificate(b []byte) (CertificatePayload, error) {
	d := &pdec{b: b}
	var p CertificatePayload
	p.Cert.Rows = d.i64()
	p.Cert.Dim = d.i64()
	p.Cert.Ell = d.i64()
	p.Cert.Rotations = d.i64()
	p.Cert.ShrinkMass = d.f64()
	p.Cert.FrobMass = d.f64()
	if ns := int64(d.u64()); ns != 0 {
		p.Cert.Time = time.Unix(0, ns).UTC()
	}
	return p, d.finish()
}

// HeartbeatPayload is the worker's liveness answer: rows absorbed for
// its shard, the sketch's current rank, and (since wire v2) a small
// health block — process uptime, in-flight request depth, and obs
// span-ring occupancy — so the coordinator's fleet view shows worker
// health without a full stats RPC.
//
// The decode is version-tolerant: a 16-byte payload is the original
// two-field form (legacy workers), anything longer must carry the full
// health block. The legacy flag is remembered so re-encoding a decoded
// payload reproduces its exact bytes — the canonicality property
// FuzzFabricPayload enforces for every payload codec.
type HeartbeatPayload struct {
	Frames int
	Ell    int
	// Uptime is the worker process uptime in seconds.
	Uptime float64
	// QueueDepth is the number of requests the worker is currently
	// serving (in-flight RPCs across its connections).
	QueueDepth int
	// ObsRing is the occupancy of the worker's obs span ring.
	ObsRing int

	// legacy marks a payload decoded from the original 16-byte form;
	// encode reproduces that form so the codec stays canonical.
	legacy bool
}

// legacyHeartbeatLen is the size of the original {Frames, Ell} form.
const legacyHeartbeatLen = 16

func (p HeartbeatPayload) encode() []byte {
	e := &penc{}
	e.i64(p.Frames)
	e.i64(p.Ell)
	if p.legacy {
		return e.b
	}
	e.f64(p.Uptime)
	e.i64(p.QueueDepth)
	e.i64(p.ObsRing)
	return e.b
}

func decodeHeartbeat(b []byte) (HeartbeatPayload, error) {
	d := &pdec{b: b}
	var p HeartbeatPayload
	p.Frames = d.i64()
	p.Ell = d.i64()
	if len(b) == legacyHeartbeatLen {
		p.legacy = true
		return p, d.finish()
	}
	p.Uptime = d.f64()
	p.QueueDepth = d.i64()
	p.ObsRing = d.i64()
	return p, d.finish()
}

// ErrorPayload answers a failed request with a coarse code (mapping
// onto parallel.FaultClass) and a human-readable message.
type ErrorPayload struct {
	Code uint32
	Msg  string
}

func (p ErrorPayload) encode() []byte {
	e := &penc{}
	e.u32(p.Code)
	e.i64(len(p.Msg))
	e.b = append(e.b, p.Msg...)
	return e.b
}

func decodeError(b []byte) (ErrorPayload, error) {
	d := &pdec{b: b}
	var p ErrorPayload
	p.Code = d.u32()
	n := d.i64()
	if d.err == nil {
		if n < 0 || n > len(b)-d.off {
			return p, fmt.Errorf("fabric: error payload claims %d message bytes", n)
		}
		p.Msg = string(b[d.off : d.off+n])
		d.off += n
	}
	return p, d.finish()
}

// str appends a length-prefixed string.
func (e *penc) str(s string) {
	e.i64(len(s))
	e.b = append(e.b, s...)
}

// str decodes a length-prefixed string, bounds-checked against the
// remaining payload.
func (d *pdec) str() string {
	n := d.i64()
	if d.err != nil {
		return ""
	}
	if n < 0 || n > len(d.b)-d.off {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// FlightReqPayload fans a flight-recorder trigger out to a worker. ID
// is the coordinator-minted trigger ID (obs ID hex) every process
// stamps on its dump, making fleet-wide dumps for one incident
// correlate by ID; Reason is the human-readable trigger cause.
type FlightReqPayload struct {
	ID     string
	Reason string
}

func (p FlightReqPayload) encode() []byte {
	e := &penc{}
	e.str(p.ID)
	e.str(p.Reason)
	return e.b
}

func decodeFlightReq(b []byte) (FlightReqPayload, error) {
	d := &pdec{b: b}
	var p FlightReqPayload
	p.ID = d.str()
	p.Reason = d.str()
	return p, d.finish()
}

// FlightAckPayload names the dump file the worker wrote (base name,
// not path — the directories differ per process), or "" when the
// worker had no armed recorder or was inside its dump cooldown.
type FlightAckPayload struct {
	Dump string
}

func (p FlightAckPayload) encode() []byte {
	e := &penc{}
	e.str(p.Dump)
	return e.b
}

func decodeFlightAck(b []byte) (FlightAckPayload, error) {
	d := &pdec{b: b}
	var p FlightAckPayload
	p.Dump = d.str()
	return p, d.finish()
}

// maxSpanRecords bounds the span records one traced response may
// carry; a worker ships a handful per RPC, so this only guards decode
// against hostile counts.
const maxSpanRecords = 4096

// encodeSpanRecords appends worker span records for the traced-reply
// wrapper: count, then per record name, start (Unix ns), duration and
// CPU (ns), trace/span/parent IDs, and sorted attribute pairs (sorted
// so the encoding is canonical).
func encodeSpanRecords(e *penc, recs []obs.SpanRecord) {
	e.i64(len(recs))
	for _, rec := range recs {
		e.str(rec.Name)
		e.u64(uint64(rec.Start.UnixNano()))
		e.u64(uint64(rec.Duration))
		e.u64(uint64(rec.CPU))
		e.u64(uint64(rec.Trace))
		e.u64(uint64(rec.Span))
		e.u64(uint64(rec.Parent))
		keys := make([]string, 0, len(rec.Attrs))
		for k := range rec.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.i64(len(keys))
		for _, k := range keys {
			e.str(k)
			e.str(rec.Attrs[k])
		}
	}
}

func decodeSpanRecords(d *pdec) []obs.SpanRecord {
	n := d.i64()
	if d.err != nil {
		return nil
	}
	if n < 0 || n > maxSpanRecords {
		d.fail()
		return nil
	}
	recs := make([]obs.SpanRecord, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		var rec obs.SpanRecord
		rec.Name = d.str()
		rec.Start = time.Unix(0, int64(d.u64())).UTC()
		rec.Duration = time.Duration(d.u64())
		rec.CPU = time.Duration(d.u64())
		rec.Trace = obs.ID(d.u64())
		rec.Span = obs.ID(d.u64())
		rec.Parent = obs.ID(d.u64())
		na := d.i64()
		if d.err != nil {
			break
		}
		if na < 0 || na > 64 {
			d.fail()
			break
		}
		if na > 0 {
			rec.Attrs = make(map[string]string, na)
			for j := 0; j < na && d.err == nil; j++ {
				k := d.str()
				rec.Attrs[k] = d.str()
			}
		}
		recs = append(recs, rec)
	}
	return recs
}

// wrapTraced wraps a response payload for a traced request: the inner
// payload (length-prefixed) followed by the worker's span records for
// the request, so the coordinator can stitch the worker's side of the
// trace into its own tree. Responses to untraced (wire v1) requests
// stay unwrapped, which keeps every v1 byte stream identical to the
// pre-trace protocol.
func wrapTraced(inner []byte, recs []obs.SpanRecord) []byte {
	e := &penc{b: make([]byte, 0, 16+len(inner))}
	e.i64(len(inner))
	e.b = append(e.b, inner...)
	encodeSpanRecords(e, recs)
	return e.b
}

// unwrapTraced splits a traced response payload into the inner payload
// and the worker's span records.
func unwrapTraced(b []byte) ([]byte, []obs.SpanRecord, error) {
	d := &pdec{b: b}
	n := d.i64()
	if d.err != nil {
		return nil, nil, d.err
	}
	if n < 0 || n > len(b)-d.off {
		return nil, nil, fmt.Errorf("fabric: traced reply claims %d inner bytes", n)
	}
	inner := b[d.off : d.off+n]
	d.off += n
	recs := decodeSpanRecords(d)
	if err := d.finish(); err != nil {
		return nil, nil, err
	}
	if len(inner) == 0 {
		inner = nil
	}
	return inner, recs, nil
}
