package fabric

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"arams/internal/audit"
	"arams/internal/ckpt"
	"arams/internal/engine"
	"arams/internal/obs"
	"arams/internal/sketch"
)

// Worker-side observability.
var (
	obsWorkerConns    = obs.Default().Counter("arams_fabric_worker_conns_total")
	obsWorkerFrames   = obs.Default().Counter("arams_fabric_worker_frames_total")
	obsWorkerRPCs     = obs.Default().Counter("arams_fabric_worker_rpc_total")
	obsWorkerRPCErrs  = obs.Default().Counter("arams_fabric_worker_rpc_errors_total")
	obsWorkerRestores = obs.Default().Counter("arams_fabric_worker_restores_total")
)

// Worker serves one shard's sketching over TCP: it accepts coordinator
// connections, absorbs ingested rows into an in-process shard backend,
// and answers reconcile fetches with its checkpointable state. The
// sketcher survives connection loss — a reconnecting coordinator
// re-establishes exact state with MsgRestore + row replay regardless,
// so a restarted worker process (fresh, empty) and a surviving worker
// behave identically after recovery.
//
// A worker needs no sketch configuration of its own: the coordinator's
// Hello carries the shard-derived config. Connections are served
// concurrently; the backend serializes absorbs under its own lock and
// the coordinator serializes RPCs per connection, so one coordinator
// sees strict request/response order.
type Worker struct {
	ln net.Listener

	mu      sync.Mutex
	backend engine.Backend
	cfg     sketch.Config
	haveCfg bool
	shard   uint32

	// conns tracks live connections (guarded by mu) so Close can tear
	// them down — serve() blocks in Read with no deadline otherwise.
	conns map[net.Conn]struct{}

	frames atomic.Int64
	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewWorker starts a worker listening on addr (host:port; use port 0
// for an ephemeral port, then read Addr()). Serving starts immediately
// in the background.
func NewWorker(addr string) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fabric: listen %s: %w", addr, err)
	}
	return ServeWorker(ln), nil
}

// ServeWorker starts a worker on an existing listener (tests use this
// to pin a port across a kill/restart). The worker owns the listener.
func ServeWorker(ln net.Listener) *Worker {
	w := &Worker{ln: ln, conns: make(map[net.Conn]struct{})}
	w.wg.Add(1)
	go w.acceptLoop()
	return w
}

// Addr returns the listener's address (dial this).
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Frames returns how many rows this worker has absorbed since start
// (replays included).
func (w *Worker) Frames() int { return int(w.frames.Load()) }

// Close stops the listener and tears down every live connection. The
// sketcher state is discarded with the process; coordinators recover
// via restore + replay.
func (w *Worker) Close() error {
	w.closed.Store(true)
	err := w.ln.Close()
	w.mu.Lock()
	for c := range w.conns {
		c.Close()
	}
	w.mu.Unlock()
	w.wg.Wait()
	return err
}

func (w *Worker) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return // listener closed
		}
		obsWorkerConns.Inc()
		w.mu.Lock()
		w.conns[conn] = struct{}{}
		w.mu.Unlock()
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			defer func() {
				conn.Close()
				w.mu.Lock()
				delete(w.conns, conn)
				w.mu.Unlock()
			}()
			w.serve(conn)
		}()
	}
}

// serve handles one connection's request/response loop. Transport-level
// errors (torn frames, checksum mismatches — the stream is desynced)
// drop the connection; request-level errors answer with MsgError and
// keep serving.
func (w *Worker) serve(conn net.Conn) {
	for !w.closed.Load() {
		req, err := ckpt.ReadWireFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !w.closed.Load() {
				obsWorkerRPCErrs.Inc()
			}
			return
		}
		obsWorkerRPCs.Inc()
		resp := w.handle(req)
		resp.Seq = req.Seq
		if err := ckpt.WriteWireFrame(conn, resp); err != nil {
			obsWorkerRPCErrs.Inc()
			return
		}
	}
}

// handle serves one request frame, returning the response frame (Seq is
// filled by the caller).
func (w *Worker) handle(req ckpt.WireFrame) ckpt.WireFrame {
	switch req.Type {
	case MsgHello:
		hello, err := decodeHello(req.Payload)
		if err != nil {
			return errFrame(ErrCodeCorrupt, err)
		}
		w.mu.Lock()
		w.shard = hello.Shard
		if !w.haveCfg || w.cfg != hello.Cfg {
			// First hello, or a coordinator with a different shard
			// config: adopt it and start fresh. A same-config reconnect
			// keeps the live sketcher (the coordinator restores state
			// explicitly anyway).
			w.cfg = hello.Cfg
			w.haveCfg = true
			w.backend = engine.NewLocalBackend(hello.Cfg)
		}
		w.mu.Unlock()
		return ckpt.WireFrame{Type: MsgHelloAck, Payload: hello.encode()}

	case MsgIngest:
		p, err := decodeIngest(req.Payload)
		if err != nil {
			return errFrame(ErrCodeCorrupt, err)
		}
		b := w.getBackend()
		if b == nil {
			return errFrame(ErrCodeTransient, errNoHello)
		}
		stats, err := b.Absorb(p.Rows, nil)
		if err != nil {
			return errFrame(ErrCodeTransient, err)
		}
		w.frames.Add(int64(len(p.Rows)))
		obsWorkerFrames.Add(float64(len(p.Rows)))
		return ckpt.WireFrame{Type: MsgIngestAck,
			Payload: IngestAckPayload{Stats: stats, Ell: b.Ell()}.encode()}

	case MsgReconcile:
		b := w.getBackend()
		if b == nil {
			return errFrame(ErrCodeTransient, errNoHello)
		}
		st, err := b.State()
		if err != nil {
			return errFrame(ErrCodeTransient, err)
		}
		if st == nil {
			return ckpt.WireFrame{Type: MsgSketchState} // no rows yet
		}
		payload, err := ckpt.Marshal(st)
		if err != nil {
			return errFrame(ErrCodeFatal, err)
		}
		return ckpt.WireFrame{Type: MsgSketchState, Payload: payload}

	case MsgRestore:
		w.mu.Lock()
		defer w.mu.Unlock()
		if !w.haveCfg {
			return errFrame(ErrCodeTransient, errNoHello)
		}
		if len(req.Payload) == 0 {
			// Explicit reset to a fresh sketcher.
			w.backend = engine.NewLocalBackend(w.cfg)
			obsWorkerRestores.Inc()
			return ckpt.WireFrame{Type: MsgRestoreAck}
		}
		v, err := ckpt.Unmarshal(req.Payload)
		if err != nil {
			return errFrame(ErrCodeCorrupt, err)
		}
		st, ok := v.(*sketch.ARAMSState)
		if !ok {
			return errFrame(ErrCodeCorrupt, fmt.Errorf("fabric: restore payload is %T, want ARAMS state", v))
		}
		b := engine.NewLocalBackend(w.cfg)
		if err := b.Restore(st); err != nil {
			return errFrame(ErrCodeCorrupt, err)
		}
		w.backend = b
		obsWorkerRestores.Inc()
		audit.Default().Record(audit.KindCheckpointRestore,
			"fabric worker restored sketcher state from coordinator",
			audit.A("shard", float64(w.shard)),
			audit.A("dim", float64(st.D)))
		return ckpt.WireFrame{Type: MsgRestoreAck}

	case MsgCertificateReq:
		b := w.getBackend()
		if b == nil {
			return errFrame(ErrCodeTransient, errNoHello)
		}
		fd, err := b.Snapshot()
		if err != nil {
			return errFrame(ErrCodeTransient, err)
		}
		var cert audit.Certificate
		if fd != nil {
			cert = audit.FromSketch(fd)
		}
		return ckpt.WireFrame{Type: MsgCertificate,
			Payload: CertificatePayload{Cert: cert}.encode()}

	case MsgHeartbeat:
		ell := 0
		if b := w.getBackend(); b != nil {
			ell = b.Ell()
		}
		return ckpt.WireFrame{Type: MsgHeartbeatAck,
			Payload: HeartbeatPayload{Frames: int(w.frames.Load()), Ell: ell}.encode()}

	default:
		return errFrame(ErrCodeCorrupt, fmt.Errorf("fabric: unknown message type %d", req.Type))
	}
}

var errNoHello = errors.New("fabric: no hello received on this worker yet")

func (w *Worker) getBackend() engine.Backend {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.backend
}

func errFrame(code uint32, err error) ckpt.WireFrame {
	obsWorkerRPCErrs.Inc()
	return ckpt.WireFrame{Type: MsgError,
		Payload: ErrorPayload{Code: code, Msg: err.Error()}.encode()}
}
