package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"arams/internal/audit"
	"arams/internal/ckpt"
	"arams/internal/engine"
	"arams/internal/obs"
	"arams/internal/sketch"
)

// Worker-side observability.
var (
	obsWorkerConns    = obs.Default().Counter("arams_fabric_worker_conns_total")
	obsWorkerFrames   = obs.Default().Counter("arams_fabric_worker_frames_total")
	obsWorkerRPCs     = obs.Default().Counter("arams_fabric_worker_rpc_total")
	obsWorkerRPCErrs  = obs.Default().Counter("arams_fabric_worker_rpc_errors_total")
	obsWorkerRestores = obs.Default().Counter("arams_fabric_worker_restores_total")
)

// Worker serves one shard's sketching over TCP: it accepts coordinator
// connections, absorbs ingested rows into an in-process shard backend,
// and answers reconcile fetches with its checkpointable state. The
// sketcher survives connection loss — a reconnecting coordinator
// re-establishes exact state with MsgRestore + row replay regardless,
// so a restarted worker process (fresh, empty) and a surviving worker
// behave identically after recovery.
//
// A worker needs no sketch configuration of its own: the coordinator's
// Hello carries the shard-derived config. Connections are served
// concurrently; the backend serializes absorbs under its own lock and
// the coordinator serializes RPCs per connection, so one coordinator
// sees strict request/response order.
type Worker struct {
	ln net.Listener

	mu      sync.Mutex
	backend engine.Backend
	cfg     sketch.Config
	haveCfg bool
	shard   uint32

	// conns tracks live connections (guarded by mu) so Close can tear
	// them down — serve() blocks in Read with no deadline otherwise.
	conns map[net.Conn]struct{}

	frames   atomic.Int64
	inflight atomic.Int64 // requests currently inside handle()
	start    time.Time
	closed   atomic.Bool
	wg       sync.WaitGroup

	// obsReg is the registry this worker reports through — spans for
	// traced requests, the stats snapshot, the flight recorder fan-out.
	// Defaults to obs.Default(); tests inject their own to keep worker
	// and coordinator observability separate in one process.
	obsReg atomic.Pointer[obs.Registry]
}

// NewWorker starts a worker listening on addr (host:port; use port 0
// for an ephemeral port, then read Addr()). Serving starts immediately
// in the background.
func NewWorker(addr string) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fabric: listen %s: %w", addr, err)
	}
	return ServeWorker(ln), nil
}

// ServeWorker starts a worker on an existing listener (tests use this
// to pin a port across a kill/restart). The worker owns the listener.
func ServeWorker(ln net.Listener) *Worker {
	w := &Worker{ln: ln, conns: make(map[net.Conn]struct{}), start: time.Now()}
	w.obsReg.Store(obs.Default())
	w.wg.Add(1)
	go w.acceptLoop()
	return w
}

// Addr returns the listener's address (dial this).
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// SetObsRegistry redirects the worker's observability — request spans,
// fleet-stats snapshots, flight-recorder fan-out — to the given
// registry (default obs.Default()). In-process harnesses use this so
// worker-side state does not mix with the coordinator's registry.
func (w *Worker) SetObsRegistry(r *obs.Registry) {
	if r != nil {
		w.obsReg.Store(r)
	}
}

func (w *Worker) obs() *obs.Registry { return w.obsReg.Load() }

// Frames returns how many rows this worker has absorbed since start
// (replays included).
func (w *Worker) Frames() int { return int(w.frames.Load()) }

// Close stops the listener and tears down every live connection. The
// sketcher state is discarded with the process; coordinators recover
// via restore + replay.
func (w *Worker) Close() error {
	w.closed.Store(true)
	err := w.ln.Close()
	w.mu.Lock()
	for c := range w.conns {
		c.Close()
	}
	w.mu.Unlock()
	w.wg.Wait()
	return err
}

func (w *Worker) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return // listener closed
		}
		obsWorkerConns.Inc()
		w.mu.Lock()
		w.conns[conn] = struct{}{}
		w.mu.Unlock()
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			defer func() {
				conn.Close()
				w.mu.Lock()
				delete(w.conns, conn)
				w.mu.Unlock()
			}()
			w.serve(conn)
		}()
	}
}

// serve handles one connection's request/response loop. Transport-level
// errors (torn frames, checksum mismatches — the stream is desynced)
// drop the connection; request-level errors answer with MsgError and
// keep serving.
func (w *Worker) serve(conn net.Conn) {
	for !w.closed.Load() {
		req, err := ckpt.ReadWireFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !w.closed.Load() {
				obsWorkerRPCErrs.Inc()
			}
			return
		}
		obsWorkerRPCs.Inc()
		w.inflight.Add(1)
		resp := w.handle(req)
		w.inflight.Add(-1)
		resp.Seq = req.Seq
		if err := ckpt.WriteWireFrame(conn, resp); err != nil {
			obsWorkerRPCErrs.Inc()
			return
		}
	}
}

// frameParent extracts the coordinator's span identity from a traced
// (wire v2) request frame; the zero SpanContext for v1 frames.
func frameParent(req ckpt.WireFrame) obs.SpanContext {
	if !req.Traced() {
		return obs.SpanContext{}
	}
	return obs.SpanContext{Trace: obs.ID(req.Trace), Span: obs.ID(req.Span)}
}

// reply finishes a response for req: a traced request (wire v2) gets
// the traced-reply wrapper — inner payload plus the worker's span
// records for this request — and echoes the request's trace identity
// so the response frame is v2 too. Untraced (v1) requests and MsgError
// responses pass through unchanged, keeping every v1 byte stream and
// every error path identical to the pre-trace protocol.
func reply(req, resp ckpt.WireFrame, recs []obs.SpanRecord) ckpt.WireFrame {
	if !req.Traced() || resp.Type == MsgError {
		return resp
	}
	resp.Trace, resp.Span = req.Trace, req.Span
	resp.Payload = wrapTraced(resp.Payload, recs)
	return resp
}

// handle serves one request frame, returning the response frame (Seq is
// filled by the caller). Traced requests open a worker-side span under
// the coordinator's RPC span; the completed records ride back on the
// ack (see reply).
func (w *Worker) handle(req ckpt.WireFrame) ckpt.WireFrame {
	parent := frameParent(req)
	switch req.Type {
	case MsgHello:
		hello, err := decodeHello(req.Payload)
		if err != nil {
			return errFrame(ErrCodeCorrupt, err)
		}
		w.mu.Lock()
		w.shard = hello.Shard
		if !w.haveCfg || w.cfg != hello.Cfg {
			// First hello, or a coordinator with a different shard
			// config: adopt it and start fresh. A same-config reconnect
			// keeps the live sketcher (the coordinator restores state
			// explicitly anyway).
			w.cfg = hello.Cfg
			w.haveCfg = true
			w.backend = engine.NewLocalBackend(hello.Cfg)
		}
		w.mu.Unlock()
		return ckpt.WireFrame{Type: MsgHelloAck, Payload: hello.encode()}

	case MsgIngest:
		p, err := decodeIngest(req.Payload)
		if err != nil {
			return errFrame(ErrCodeCorrupt, err)
		}
		b := w.getBackend()
		if b == nil {
			return errFrame(ErrCodeTransient, errNoHello)
		}
		traced := parent.Trace != 0
		var sp obs.Span
		var cpu obs.CPUTimer
		if traced {
			sp = w.obs().StartSpanIn(parent, "worker_absorb",
				obs.L("shard", fmt.Sprint(w.shardID())),
				obs.L("rows", fmt.Sprint(len(p.Rows))))
			cpu = obs.StartCPUTimer()
		}
		stats, err := b.Absorb(p.Rows, nil)
		var recs []obs.SpanRecord
		if traced {
			if d, ok := cpu.Stop(); ok {
				sp.SetCPU(d)
			}
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			recs = append(recs, sp.EndRecord())
		}
		if err != nil {
			return errFrame(ErrCodeTransient, err)
		}
		w.frames.Add(int64(len(p.Rows)))
		obsWorkerFrames.Add(float64(len(p.Rows)))
		return reply(req, ckpt.WireFrame{Type: MsgIngestAck,
			Payload: IngestAckPayload{Stats: stats, Ell: b.Ell()}.encode()}, recs)

	case MsgReconcile:
		b := w.getBackend()
		if b == nil {
			return errFrame(ErrCodeTransient, errNoHello)
		}
		traced := parent.Trace != 0
		var sp obs.Span
		if traced {
			sp = w.obs().StartSpanIn(parent, "worker_state",
				obs.L("shard", fmt.Sprint(w.shardID())))
		}
		st, err := b.State()
		var payload []byte
		if err == nil && st != nil {
			payload, err = ckpt.Marshal(st)
		}
		var recs []obs.SpanRecord
		if traced {
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			sp.SetAttr("bytes", fmt.Sprint(len(payload)))
			recs = append(recs, sp.EndRecord())
		}
		if err != nil {
			if st != nil {
				return errFrame(ErrCodeFatal, err) // marshal failure
			}
			return errFrame(ErrCodeTransient, err)
		}
		// Empty payload means no rows yet.
		return reply(req, ckpt.WireFrame{Type: MsgSketchState, Payload: payload}, recs)

	case MsgRestore:
		w.mu.Lock()
		defer w.mu.Unlock()
		if !w.haveCfg {
			return errFrame(ErrCodeTransient, errNoHello)
		}
		traced := parent.Trace != 0
		var sp obs.Span
		if traced {
			sp = w.obs().StartSpanIn(parent, "worker_restore",
				obs.L("shard", fmt.Sprint(w.shard)),
				obs.L("bytes", fmt.Sprint(len(req.Payload))))
		}
		endRestore := func(errstr string) []obs.SpanRecord {
			if !traced {
				return nil
			}
			if errstr != "" {
				sp.SetAttr("error", errstr)
			}
			return []obs.SpanRecord{sp.EndRecord()}
		}
		if len(req.Payload) == 0 {
			// Explicit reset to a fresh sketcher.
			w.backend = engine.NewLocalBackend(w.cfg)
			obsWorkerRestores.Inc()
			return reply(req, ckpt.WireFrame{Type: MsgRestoreAck}, endRestore(""))
		}
		v, err := ckpt.Unmarshal(req.Payload)
		if err != nil {
			endRestore(err.Error())
			return errFrame(ErrCodeCorrupt, err)
		}
		st, ok := v.(*sketch.ARAMSState)
		if !ok {
			err := fmt.Errorf("fabric: restore payload is %T, want ARAMS state", v)
			endRestore(err.Error())
			return errFrame(ErrCodeCorrupt, err)
		}
		b := engine.NewLocalBackend(w.cfg)
		if err := b.Restore(st); err != nil {
			endRestore(err.Error())
			return errFrame(ErrCodeCorrupt, err)
		}
		w.backend = b
		obsWorkerRestores.Inc()
		audit.Default().Record(audit.KindCheckpointRestore,
			"fabric worker restored sketcher state from coordinator",
			audit.A("shard", float64(w.shard)),
			audit.A("dim", float64(st.D)))
		return reply(req, ckpt.WireFrame{Type: MsgRestoreAck}, endRestore(""))

	case MsgCertificateReq:
		b := w.getBackend()
		if b == nil {
			return errFrame(ErrCodeTransient, errNoHello)
		}
		traced := parent.Trace != 0
		var sp obs.Span
		if traced {
			sp = w.obs().StartSpanIn(parent, "worker_certificate",
				obs.L("shard", fmt.Sprint(w.shardID())))
		}
		fd, err := b.Snapshot()
		var recs []obs.SpanRecord
		if traced {
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			recs = append(recs, sp.EndRecord())
		}
		if err != nil {
			return errFrame(ErrCodeTransient, err)
		}
		var cert audit.Certificate
		if fd != nil {
			cert = audit.FromSketch(fd)
		}
		return reply(req, ckpt.WireFrame{Type: MsgCertificate,
			Payload: CertificatePayload{Cert: cert}.encode()}, recs)

	case MsgHeartbeat:
		ell := 0
		if b := w.getBackend(); b != nil {
			ell = b.Ell()
		}
		return ckpt.WireFrame{Type: MsgHeartbeatAck,
			Payload: HeartbeatPayload{
				Frames:     int(w.frames.Load()),
				Ell:        ell,
				Uptime:     time.Since(w.start).Seconds(),
				QueueDepth: int(w.inflight.Load()),
				ObsRing:    w.obs().RingLen(),
			}.encode()}

	case MsgStatsReq:
		payload, err := json.Marshal(w.obs().Export())
		if err != nil {
			return errFrame(ErrCodeTransient, err)
		}
		return reply(req, ckpt.WireFrame{Type: MsgStats, Payload: payload}, nil)

	case MsgFlightReq:
		p, err := decodeFlightReq(req.Payload)
		if err != nil {
			return errFrame(ErrCodeCorrupt, err)
		}
		dump := w.obs().FlightTriggerID(p.Reason, p.ID)
		if dump != "" {
			dump = filepath.Base(dump)
		}
		return reply(req, ckpt.WireFrame{Type: MsgFlightAck,
			Payload: FlightAckPayload{Dump: dump}.encode()}, nil)

	default:
		return errFrame(ErrCodeCorrupt, fmt.Errorf("fabric: unknown message type %d", req.Type))
	}
}

// shardID reads the shard slot adopted from the last Hello.
func (w *Worker) shardID() uint32 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.shard
}

var errNoHello = errors.New("fabric: no hello received on this worker yet")

func (w *Worker) getBackend() engine.Backend {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.backend
}

func errFrame(code uint32, err error) ckpt.WireFrame {
	obsWorkerRPCErrs.Inc()
	return ckpt.WireFrame{Type: MsgError,
		Payload: ErrorPayload{Code: code, Msg: err.Error()}.encode()}
}
