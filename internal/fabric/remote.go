package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"arams/internal/audit"
	"arams/internal/ckpt"
	"arams/internal/engine"
	"arams/internal/obs"
	"arams/internal/parallel"
	"arams/internal/sketch"
)

// RemoteConfig tunes the coordinator side of one worker connection.
type RemoteConfig struct {
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// OpTimeout is the per-RPC connection deadline — every request and
	// its response must complete within it (default 5s). This is what
	// bounds how long a straggling fetch goroutine can outlive a merge
	// leg timeout: all I/O is deadline-bounded, nothing blocks forever.
	OpTimeout time.Duration
	// HeartbeatEvery is the liveness/RTT probe interval (default 1s;
	// negative disables heartbeats).
	HeartbeatEvery time.Duration
	// ReconnectAttempts is how many times a failed operation tries to
	// re-establish the connection (restore + replay included) before
	// degrading (default 3).
	ReconnectAttempts int
	// ReconnectBackoff is the initial delay between reconnect attempts,
	// doubling each try (default 50ms).
	ReconnectBackoff time.Duration
	// NoLocalFallback disables the last rung of the recovery ladder.
	// By default a Remote whose reconnects are exhausted degrades to an
	// in-process sketcher seeded from the last fetched state plus the
	// replay log — bit-exact with the worker it replaces, so the stream
	// keeps full coverage. With NoLocalFallback the backend instead
	// returns classified errors and the engine's merge degrades to the
	// surviving shards.
	NoLocalFallback bool
}

func (c RemoteConfig) withDefaults() RemoteConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 5 * time.Second
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.ReconnectAttempts <= 0 {
		c.ReconnectAttempts = 3
	}
	if c.ReconnectBackoff <= 0 {
		c.ReconnectBackoff = 50 * time.Millisecond
	}
	return c
}

// Remote is an engine.Backend whose sketching happens on a fabric
// Worker across a TCP connection. Recovery ladder, in order:
//
//  1. Every RPC runs under a connection deadline (OpTimeout), so no
//     fault blocks an operation for longer than one round trip budget.
//  2. A failed RPC reconnects — dial, Hello, unconditional
//     Restore(lastState), replay of every row absorbed since that state
//     — and retries. Unconditional restore makes recovery correct
//     whether the worker lost state (process restart), absorbed the
//     failed batch (ack lost), or never saw it: the worker is always
//     rebuilt to exactly lastState + replay log.
//  3. Exhausted reconnects degrade to an in-process sketcher built from
//     lastState + replay log (bit-exact with the lost worker), unless
//     NoLocalFallback — then operations return classified errors and
//     the merge layer drops the leg.
//
// The replay log holds a copy of every row absorbed since the last
// state fetch; each successful Snapshot/State fetch trims it, so its
// size is bounded by the engine's reconcile cadence.
type Remote struct {
	name string
	addr string
	cfg  RemoteConfig

	mu    sync.Mutex // serializes RPCs; guards conn, log, state, fallback
	conn  net.Conn
	seq   uint64
	hello HelloPayload

	lastState *sketch.ARAMSState
	log       [][]float64
	// lastReplayAck is the IngestAck of the newest replay tail chunk
	// (the rows the in-flight Absorb was called with), set by
	// reconnectLocked/degradeLocked so Absorb returns the stats of
	// exactly its rows even when they reached the sketcher via replay.
	lastReplayAck IngestAckPayload
	fallback      engine.Backend // non-nil once degraded to local sketching
	closed        bool

	lastEll   atomic.Int64
	busyNanos atomic.Int64

	// fleet, when armed, receives the worker's registry snapshot after
	// each successful heartbeat (a stats RPC piggybacks on the probe).
	fleet atomic.Pointer[obs.FleetView]

	hbStop chan struct{}
	hbDone chan struct{}

	mUp         *obs.Gauge
	mRTT        *obs.Histogram
	mBytesSent  *obs.Counter
	mBytesRecv  *obs.Counter
	mRPCs       *obs.Counter
	mRPCErrs    *obs.Counter
	mReconnects *obs.Counter
	mDegraded   *obs.Counter
	mUptime     *obs.Gauge
	mQueueDepth *obs.Gauge
	mObsRing    *obs.Gauge
}

// DialRemote connects to a fabric worker and binds it to one shard
// slot: scfg must already be shard-derived (engine.ShardSketchConfig).
// The initial dial obeys the same reconnect policy as runtime faults;
// if it fails entirely the Remote starts degraded (local fallback) —
// or errors out under NoLocalFallback.
func DialRemote(name, addr string, shard uint32, scfg sketch.Config, cfg RemoteConfig) (*Remote, error) {
	cfg = cfg.withDefaults()
	r := &Remote{
		name:        name,
		addr:        addr,
		cfg:         cfg,
		hello:       HelloPayload{Shard: shard, Cfg: scfg},
		mUp:         obs.Default().Gauge("arams_fabric_worker_up", obs.L("worker", name)),
		mRTT:        obs.Default().Histogram("arams_fabric_rtt_seconds", obs.L("worker", name)),
		mBytesSent:  obs.Default().Counter("arams_fabric_bytes_sent_total", obs.L("worker", name)),
		mBytesRecv:  obs.Default().Counter("arams_fabric_bytes_recv_total", obs.L("worker", name)),
		mRPCs:       obs.Default().Counter("arams_fabric_rpc_total", obs.L("worker", name)),
		mRPCErrs:    obs.Default().Counter("arams_fabric_rpc_errors_total", obs.L("worker", name)),
		mReconnects: obs.Default().Counter("arams_fabric_reconnects_total", obs.L("worker", name)),
		mDegraded:   obs.Default().Counter("arams_fabric_degraded_total", obs.L("worker", name)),
		mUptime:     obs.Default().Gauge("arams_fabric_worker_uptime_seconds", obs.L("worker", name)),
		mQueueDepth: obs.Default().Gauge("arams_fabric_worker_queue_depth", obs.L("worker", name)),
		mObsRing:    obs.Default().Gauge("arams_fabric_worker_obs_ring", obs.L("worker", name)),
	}
	r.mu.Lock()
	err := r.reconnectLocked(obs.SpanContext{}, 0, 0)
	r.mu.Unlock()
	if err != nil {
		if cfg.NoLocalFallback {
			return nil, err
		}
		r.mu.Lock()
		r.degradeLocked(err, 0)
		r.mu.Unlock()
	}
	if cfg.HeartbeatEvery > 0 {
		r.hbStop = make(chan struct{})
		r.hbDone = make(chan struct{})
		go r.heartbeatLoop()
	}
	return r, nil
}

// Name returns the worker's display name (metric label).
func (r *Remote) Name() string { return r.name }

// Degraded reports whether this backend has fallen back to in-process
// sketching.
func (r *Remote) Degraded() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fallback != nil
}

// Absorb ships the selected rows to the worker, recovering through the
// ladder above on any transport fault. The returned stats are the
// worker's own fold for exactly these rows (replayed or not), so the
// engine's audit accounting is bit-identical to an all-local run.
func (r *Remote) Absorb(vecs [][]float64, idx []int) (sketch.BatchStats, error) {
	return r.absorbIn(obs.SpanContext{}, vecs, idx)
}

// AbsorbIn is Absorb carrying the dispatching span's context
// (engine.TracedBackend): the ingest RPC runs inside the caller's
// trace, so the worker's absorb span — shipped back on the ack path —
// stitches under the coordinator's ingest_batch tree.
func (r *Remote) AbsorbIn(parent obs.SpanContext, vecs [][]float64, idx []int) (sketch.BatchStats, error) {
	return r.absorbIn(parent, vecs, idx)
}

func (r *Remote) absorbIn(parent obs.SpanContext, vecs [][]float64, idx []int) (sketch.BatchStats, error) {
	start := time.Now()
	defer func() { r.busyNanos.Add(int64(time.Since(start))) }()
	nrows := len(idx)
	if idx == nil {
		nrows = len(vecs)
	}
	if nrows == 0 {
		return sketch.BatchStats{}, nil
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return sketch.BatchStats{}, parallel.AsFault(parallel.FaultFatal, parallel.ErrBackendClosed)
	}
	if r.fallback != nil {
		// Degraded: sketch in-process. No replay log needed — the
		// fallback's own state is the baseline, and Absorb copies rows
		// into the sketch, so the caller's (pool-recycled) slices are
		// never retained.
		stats, err := r.fallback.Absorb(vecs, idx)
		if err == nil {
			r.lastEll.Store(int64(stats.EllAfter))
		}
		return stats, err
	}
	// Copy the rows into the replay log before anything can fail. The
	// copies are mandatory: the engine recycles window-evicted vectors
	// into the mat pool, so retaining the caller's slices would alias
	// memory that is about to be overwritten.
	rows := make([][]float64, nrows)
	for i := 0; i < nrows; i++ {
		v := vecs[i]
		if idx != nil {
			v = vecs[idx[i]]
		}
		rows[i] = append([]float64(nil), v...)
	}
	r.log = append(r.log, rows...)

	ack, err := r.ingestRPCLocked(parent, rows)
	if err != nil {
		if err = r.recoverLocked(parent, err, nrows); err != nil {
			return sketch.BatchStats{}, err
		}
		// Recovery replayed the log with these rows as the tail chunk —
		// over a fresh connection or through the local fallback — and
		// left the tail's stats for us either way.
		ack = r.lastReplayAck
	}
	r.lastEll.Store(int64(ack.Ell))
	return ack.Stats, nil
}

// Snapshot fetches the worker's state and returns its sketch, trimming
// the replay log — a reconcile fetch is an incremental checkpoint.
func (r *Remote) Snapshot() (*sketch.FrequentDirections, error) {
	return r.SnapshotIn(obs.SpanContext{})
}

// SnapshotIn is Snapshot carrying the fetching span's context
// (engine.TracedBackend): the reconcile fetch RPC — and the worker's
// state span shipped back with it — joins the merge leg's trace.
func (r *Remote) SnapshotIn(parent obs.SpanContext) (*sketch.FrequentDirections, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, err := r.stateLocked(parent)
	if err != nil || st == nil {
		return nil, err
	}
	a, err := sketch.NewARAMSFromState(*st)
	if err != nil {
		return nil, parallel.AsFault(parallel.FaultCorrupt, err)
	}
	return a.FD(), nil
}

// State fetches the worker's checkpointable state (nil before the
// first row), trimming the replay log on success.
func (r *Remote) State() (*sketch.ARAMSState, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stateLocked(obs.SpanContext{})
}

func (r *Remote) stateLocked(parent obs.SpanContext) (*sketch.ARAMSState, error) {
	if r.closed {
		return nil, parallel.AsFault(parallel.FaultFatal, parallel.ErrBackendClosed)
	}
	if r.fallback != nil {
		return r.fallback.State()
	}
	st, err := r.fetchStateRPCLocked(parent)
	if err != nil {
		if err = r.recoverLocked(parent, err, 0); err != nil {
			return nil, err
		}
		if r.fallback != nil {
			return r.fallback.State()
		}
		if st, err = r.fetchStateRPCLocked(parent); err != nil {
			return nil, err
		}
	}
	// Trim: the fetched state covers every row acked so far, and Absorb
	// is synchronous, so the whole log is covered.
	r.lastState = st
	r.log = r.log[:0]
	return st, nil
}

// Restore pushes checkpoint state to the worker and resets the replay
// baseline to it.
func (r *Remote) Restore(st *sketch.ARAMSState) error {
	if st == nil {
		return fmt.Errorf("fabric: nil shard state")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return parallel.AsFault(parallel.FaultFatal, parallel.ErrBackendClosed)
	}
	r.lastState = st
	r.log = r.log[:0]
	if r.fallback != nil {
		return r.fallback.Restore(st)
	}
	if err := r.restoreRPCLocked(obs.SpanContext{}, st); err != nil {
		// recoverLocked restores lastState (just set) + empty log.
		if err = r.recoverLocked(obs.SpanContext{}, err, 0); err != nil {
			return err
		}
		if r.fallback != nil {
			return nil // degradeLocked already restored into the fallback
		}
	}
	if a, err := sketch.NewARAMSFromState(*st); err == nil {
		r.lastEll.Store(int64(a.Ell()))
	}
	return nil
}

// Ell answers from the last acknowledged rank — no round trip.
func (r *Remote) Ell() int { return int(r.lastEll.Load()) }

// Busy returns cumulative wall time spent in Absorb (network time
// included — for a remote shard the round trip is the absorb cost).
func (r *Remote) Busy() time.Duration { return time.Duration(r.busyNanos.Load()) }

// Certificate fetches the worker's own error-bound certificate (zero
// before the first row; served locally once degraded).
func (r *Remote) Certificate() (audit.Certificate, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return audit.Certificate{}, parallel.AsFault(parallel.FaultFatal, parallel.ErrBackendClosed)
	}
	if r.fallback != nil {
		fd, err := r.fallback.Snapshot()
		if err != nil || fd == nil {
			return audit.Certificate{}, err
		}
		return audit.FromSketch(fd), nil
	}
	payload, err := r.rpcLocked(obs.SpanContext{}, MsgCertificateReq, nil, MsgCertificate)
	if err != nil {
		return audit.Certificate{}, err
	}
	p, err := decodeCertificate(payload)
	if err != nil {
		return audit.Certificate{}, parallel.AsFault(parallel.FaultCorrupt, err)
	}
	return p.Cert, nil
}

// Close stops the heartbeat, tears down the connection, and closes the
// fallback if any. Subsequent operations fail fast with a fatal fault.
func (r *Remote) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
	var err error
	if r.fallback != nil {
		err = r.fallback.Close()
	}
	r.mu.Unlock()
	if r.hbStop != nil {
		close(r.hbStop)
		<-r.hbDone
	}
	r.mUp.SetInt(0)
	return err
}

// --- RPC layer ---

// rpcLocked runs one request/response round trip under the op deadline.
// Any failure closes the connection (the stream may be desynced) and
// returns a classified error; the caller decides whether to recover.
//
// When parent carries a trace the RPC opens a fabric_rpc span under it
// — with wire_encode and fabric_rtt children — and ships the span's
// identity in the wire frame (v2), so the worker parents its own spans
// under this RPC. A traced response is the wrapped form (payload +
// worker span records); the records are fed into the local registry's
// trace store so /tracez renders one cross-process tree.
func (r *Remote) rpcLocked(parent obs.SpanContext, msgType uint32, payload []byte, wantType uint32) ([]byte, error) {
	if r.conn == nil {
		return nil, parallel.AsFault(parallel.FaultTransient, errNotConnected)
	}
	r.mRPCs.Inc()
	r.seq++
	seq := r.seq
	traced := parent.Trace != 0
	var sp obs.Span
	if traced {
		sp = obs.StartSpanIn(parent, "fabric_rpc",
			obs.L("worker", r.name), obs.L("msg", msgName(msgType)))
		defer sp.End()
	}
	req := ckpt.WireFrame{Type: msgType, Seq: seq, Payload: payload}
	fail := func(err error) error {
		if traced {
			sp.SetAttr("error", err.Error())
		}
		return r.rpcFailLocked(err)
	}
	var frame []byte
	if traced {
		c := sp.Context()
		req.Trace, req.Span = uint64(c.Trace), uint64(c.Span)
		spEnc := sp.StartChild("wire_encode")
		frame = ckpt.EncodeWireFrame(req)
		spEnc.SetAttr("bytes", fmt.Sprint(len(frame)))
		spEnc.End()
	} else {
		frame = ckpt.EncodeWireFrame(req)
	}
	r.conn.SetDeadline(time.Now().Add(r.cfg.OpTimeout))
	var spRTT obs.Span
	if traced {
		spRTT = sp.StartChild("fabric_rtt")
	}
	endRTT := func() {
		if traced {
			spRTT.End()
		}
	}
	if _, err := r.conn.Write(frame); err != nil {
		endRTT()
		return nil, fail(parallel.AsFault(parallel.FaultTransient, err))
	}
	r.mBytesSent.Add(float64(len(frame)))
	resp, err := ckpt.ReadWireFrame(r.conn)
	endRTT()
	if err != nil {
		// Torn frames and timeouts are transient (the connection died or
		// stalled); checksum/magic/version failures mean the bytes
		// arrived wrong — corrupt, so recovery re-fetches.
		class := parallel.FaultTransient
		if errors.Is(err, ckpt.ErrChecksum) || errors.Is(err, ckpt.ErrBadMagic) || errors.Is(err, ckpt.ErrVersion) {
			class = parallel.FaultCorrupt
		}
		return nil, fail(parallel.AsFault(class, err))
	}
	hdr := 28 + len(resp.Payload) + 4
	if resp.Traced() {
		hdr += 16
	}
	r.mBytesRecv.Add(float64(hdr))
	if resp.Seq != seq {
		return nil, fail(parallel.AsFault(parallel.FaultTransient,
			fmt.Errorf("fabric: response seq %d for request %d", resp.Seq, seq)))
	}
	if resp.Type == MsgError {
		p, derr := decodeError(resp.Payload)
		if derr != nil {
			return nil, fail(parallel.AsFault(parallel.FaultCorrupt, derr))
		}
		class := parallel.FaultTransient
		switch p.Code {
		case ErrCodeCorrupt:
			class = parallel.FaultCorrupt
		case ErrCodeFatal:
			class = parallel.FaultFatal
		}
		// A request-level error leaves the stream in sync — keep the
		// connection.
		r.mRPCErrs.Inc()
		if traced {
			sp.SetAttr("error", p.Msg)
		}
		return nil, parallel.AsFault(class, fmt.Errorf("fabric: worker %s: %s", r.name, p.Msg))
	}
	if resp.Type != wantType {
		return nil, fail(parallel.AsFault(parallel.FaultTransient,
			fmt.Errorf("fabric: response type %d, want %d", resp.Type, wantType)))
	}
	if resp.Traced() {
		// The worker answered a traced request with the wrapped form:
		// inner payload + its span records for this RPC. Stitch the
		// records into the local trace store (a worker answering an
		// untraced v1 request replies unwrapped, so v1 streams decode
		// exactly as before).
		inner, recs, uerr := unwrapTraced(resp.Payload)
		if uerr != nil {
			return nil, fail(parallel.AsFault(parallel.FaultCorrupt, uerr))
		}
		for _, rec := range recs {
			obs.Default().ObserveRemoteSpan(rec)
		}
		return inner, nil
	}
	return resp.Payload, nil
}

// msgName labels RPC spans with the request kind.
func msgName(t uint32) string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgIngest:
		return "ingest"
	case MsgReconcile:
		return "reconcile"
	case MsgRestore:
		return "restore"
	case MsgCertificateReq:
		return "certificate"
	case MsgHeartbeat:
		return "heartbeat"
	case MsgStatsReq:
		return "stats"
	case MsgFlightReq:
		return "flight"
	default:
		return fmt.Sprintf("msg%d", t)
	}
}

func (r *Remote) rpcFailLocked(err error) error {
	r.mRPCErrs.Inc()
	r.mUp.SetInt(0)
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
	return err
}

var errNotConnected = errors.New("fabric: not connected")

// Remote is both a plain shard backend and the trace-propagating
// extension the engine's traced ingest/reconcile paths prefer.
var (
	_ engine.Backend       = (*Remote)(nil)
	_ engine.TracedBackend = (*Remote)(nil)
)

func (r *Remote) ingestRPCLocked(parent obs.SpanContext, rows [][]float64) (IngestAckPayload, error) {
	d := 0
	if len(rows) > 0 {
		d = len(rows[0])
	}
	payload, err := r.rpcLocked(parent, MsgIngest, IngestPayload{D: d, Rows: rows}.encode(), MsgIngestAck)
	if err != nil {
		return IngestAckPayload{}, err
	}
	ack, err := decodeIngestAck(payload)
	if err != nil {
		return IngestAckPayload{}, parallel.AsFault(parallel.FaultCorrupt, err)
	}
	return ack, nil
}

func (r *Remote) fetchStateRPCLocked(parent obs.SpanContext) (*sketch.ARAMSState, error) {
	payload, err := r.rpcLocked(parent, MsgReconcile, nil, MsgSketchState)
	if err != nil {
		return nil, err
	}
	if len(payload) == 0 {
		return nil, nil // no rows yet
	}
	v, err := ckpt.Unmarshal(payload)
	if err != nil {
		return nil, parallel.AsFault(parallel.FaultCorrupt, err)
	}
	st, ok := v.(*sketch.ARAMSState)
	if !ok {
		return nil, parallel.AsFault(parallel.FaultCorrupt,
			fmt.Errorf("fabric: state payload is %T, want ARAMS state", v))
	}
	return st, nil
}

func (r *Remote) restoreRPCLocked(parent obs.SpanContext, st *sketch.ARAMSState) error {
	payload, err := ckpt.Marshal(st)
	if err != nil {
		return parallel.AsFault(parallel.FaultFatal, err)
	}
	_, err = r.rpcLocked(parent, MsgRestore, payload, MsgRestoreAck)
	return err
}

// --- recovery ladder ---

// recoverLocked is rung 2 and 3: reconnect with restore + replay under
// the retry policy, then degrade to local fallback (or return the
// classified error under NoLocalFallback). pending is how many rows at
// the tail of the log belong to the in-flight Absorb — they are
// replayed as their own chunk so lastReplayAck holds exactly their
// stats.
func (r *Remote) recoverLocked(parent obs.SpanContext, cause error, pending int) error {
	if parallel.Classify(cause) == parallel.FaultFatal {
		return cause
	}
	backoff := r.cfg.ReconnectBackoff
	var err = cause
	for attempt := 0; attempt < r.cfg.ReconnectAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if err = r.reconnectLocked(parent, uint64(attempt), pending); err == nil {
			audit.Default().Record(audit.KindRemoteRecovery,
				"fabric worker reconnected; state restored and replay log re-absorbed",
				audit.A("shard", float64(r.hello.Shard)),
				audit.A("attempt", float64(attempt)),
				audit.A("replayed_rows", float64(len(r.log))))
			return nil
		}
		if parallel.Classify(err) == parallel.FaultFatal {
			break
		}
	}
	if r.cfg.NoLocalFallback {
		return err
	}
	r.degradeLocked(err, pending)
	return nil
}

// reconnectLocked establishes a fresh connection and rebuilds the
// worker to exactly lastState + replay log: dial, hello, unconditional
// restore, replay. Unconditional restore (or an explicit reset when no
// baseline exists) guarantees the worker never double-counts rows it
// may have absorbed before the failure. The replay is split so the
// final pending rows land in their own IngestAck. attempt tags the obs
// span, which joins the failed operation's trace when one is active
// (reconnect and replay legs then render inside the ingest tree) and
// roots a fresh trace otherwise.
func (r *Remote) reconnectLocked(parent obs.SpanContext, attempt uint64, pending int) error {
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
	sp := obs.StartSpanIn(parent, "fabric_reconnect",
		obs.L("worker", r.name), obs.L("attempt", fmt.Sprint(attempt)))
	defer sp.End()
	ctx := sp.Context()
	r.mReconnects.Inc()
	conn, err := net.DialTimeout("tcp", r.addr, r.cfg.DialTimeout)
	if err != nil {
		sp.SetAttr("error", err.Error())
		return parallel.AsFault(parallel.FaultTransient, err)
	}
	r.conn = conn
	if _, err := r.rpcLocked(ctx, MsgHello, r.hello.encode(), MsgHelloAck); err != nil {
		sp.SetAttr("error", err.Error())
		return err
	}
	if r.lastState != nil {
		err = r.restoreRPCLocked(ctx, r.lastState)
	} else {
		// No baseline state: reset the worker to a fresh sketcher so a
		// surviving worker that absorbed rows before the fault does not
		// double-count the replay.
		_, err = r.rpcLocked(ctx, MsgRestore, nil, MsgRestoreAck)
	}
	if err != nil {
		sp.SetAttr("error", err.Error())
		return err
	}
	r.lastReplayAck = IngestAckPayload{}
	if head := r.log[:len(r.log)-pending]; len(head) > 0 {
		// Rows whose stats earlier Absorb calls already returned: replay
		// for state, discard the ack.
		if _, err := r.ingestRPCLocked(ctx, head); err != nil {
			sp.SetAttr("error", err.Error())
			return err
		}
	}
	if tail := r.log[len(r.log)-pending:]; len(tail) > 0 {
		ack, err := r.ingestRPCLocked(ctx, tail)
		if err != nil {
			sp.SetAttr("error", err.Error())
			return err
		}
		r.lastReplayAck = ack
	}
	sp.SetAttr("replayed_rows", fmt.Sprint(len(r.log)))
	r.mUp.SetInt(1)
	return nil
}

// degradeLocked is the last rung: build an in-process sketcher from
// lastState + replay log. Bit-exact with the lost worker, so the
// stream keeps full coverage and certificates stay valid. The replay
// log and baseline are released — the fallback itself is the state now.
func (r *Remote) degradeLocked(cause error, pending int) {
	r.mDegraded.Inc()
	r.mUp.SetInt(0)
	replayed := len(r.log)
	fb := engine.NewLocalBackend(r.hello.Cfg)
	if r.lastState != nil {
		if err := fb.Restore(r.lastState); err != nil {
			// A state that round-tripped the codec cannot fail to
			// restore; journal and start fresh as a last resort.
			audit.Default().Record(audit.KindRemoteDegrade,
				"fabric fallback restore failed; resketching replay log from scratch",
				audit.A("shard", float64(r.hello.Shard)))
		}
	}
	if head := r.log[:len(r.log)-pending]; len(head) > 0 {
		fb.Absorb(head, nil)
	}
	if tail := r.log[len(r.log)-pending:]; len(tail) > 0 {
		if stats, err := fb.Absorb(tail, nil); err == nil {
			r.lastReplayAck = IngestAckPayload{Stats: stats, Ell: stats.EllAfter}
			r.lastEll.Store(int64(stats.EllAfter))
		}
	}
	r.fallback = fb
	r.log = nil
	r.lastState = nil
	audit.Default().Record(audit.KindRemoteDegrade,
		"fabric worker unreachable after reconnect attempts; degraded to in-process sketching (bit-exact: lastState + replay)",
		audit.A("shard", float64(r.hello.Shard)),
		audit.A("replayed_rows", float64(replayed)),
		audit.A("class", float64(parallel.Classify(cause))))
	obs.Default().FlightTrigger("fabric_degrade")
}

// --- heartbeats ---

// heartbeatLoop probes liveness/RTT at HeartbeatEvery. TryLock keeps it
// strictly lower priority than real RPCs: if an ingest or fetch holds
// the connection, the probe is skipped — the in-flight RPC is already
// the liveness signal.
func (r *Remote) heartbeatLoop() {
	defer close(r.hbDone)
	t := time.NewTicker(r.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-r.hbStop:
			return
		case <-t.C:
		}
		if !r.mu.TryLock() {
			continue
		}
		if r.closed || r.fallback != nil || r.conn == nil {
			r.mu.Unlock()
			continue
		}
		start := time.Now()
		payload, err := r.rpcLocked(obs.SpanContext{}, MsgHeartbeat, nil, MsgHeartbeatAck)
		if err == nil {
			r.mRTT.Observe(time.Since(start).Seconds())
			r.mUp.SetInt(1)
			if hb, derr := decodeHeartbeat(payload); derr == nil {
				r.lastEll.Store(int64(hb.Ell))
				if !hb.legacy {
					r.mUptime.Set(hb.Uptime)
					r.mQueueDepth.SetInt(hb.QueueDepth)
					r.mObsRing.SetInt(hb.ObsRing)
				}
			}
			// Piggyback a fleet-stats fetch on the successful probe when a
			// fleet view is armed: the worker's whole registry snapshot,
			// refreshed at heartbeat cadence.
			if fv := r.fleet.Load(); fv != nil {
				if snap, serr := r.statsRPCLocked(); serr == nil {
					fv.Update(r.name, snap)
				}
			}
		}
		// On error rpcLocked already dropped the connection and zeroed
		// the up gauge; the next operation reconnects.
		r.mu.Unlock()
	}
}

// statsRPCLocked fetches the worker's obs registry snapshot (JSON over
// MsgStatsReq/MsgStats). A legacy worker answers MsgError for the
// unknown type — a request-level error that keeps the connection, so
// mixed fleets degrade to heartbeat-only health.
func (r *Remote) statsRPCLocked() (obs.RegistrySnapshot, error) {
	payload, err := r.rpcLocked(obs.SpanContext{}, MsgStatsReq, nil, MsgStats)
	if err != nil {
		return obs.RegistrySnapshot{}, err
	}
	var snap obs.RegistrySnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return obs.RegistrySnapshot{}, parallel.AsFault(parallel.FaultCorrupt, err)
	}
	return snap, nil
}

// ArmFleet attaches a fleet view to this remote: every subsequent
// successful heartbeat also fetches the worker's registry snapshot and
// feeds it to the view, so /fleetz tracks the worker at heartbeat
// cadence. Pass nil to detach.
func (r *Remote) ArmFleet(fv *obs.FleetView) { r.fleet.Store(fv) }

// FlightForward asks the worker to dump its flight ring with the given
// trigger ID (see FlightRecorder.TriggerID) and returns the dump file's
// base name, or "" when the worker is degraded, unreachable, busy past
// wait, unarmed, or inside its dump cooldown. It takes the RPC lock
// with a bounded wait so a fan-out never stalls behind a long ingest.
func (r *Remote) FlightForward(triggerID, reason string, wait time.Duration) string {
	deadline := time.Now().Add(wait)
	for !r.mu.TryLock() {
		if time.Now().After(deadline) {
			return ""
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer r.mu.Unlock()
	if r.closed || r.fallback != nil || r.conn == nil {
		return ""
	}
	payload, err := r.rpcLocked(obs.SpanContext{}, MsgFlightReq,
		FlightReqPayload{ID: triggerID, Reason: reason}.encode(), MsgFlightAck)
	if err != nil {
		return ""
	}
	ack, err := decodeFlightAck(payload)
	if err != nil {
		return ""
	}
	return ack.Dump
}

// ArmFleetFlight registers a hook on the default obs registry that fans
// every coordinator-side flight dump out to the given remotes: each
// worker dumps its own flight ring tagged with the coordinator's
// trigger ID, and the fan-out result is journaled (KindFlightFanout)
// with the correlated dump names. The returned function unregisters
// the hook. Per-trigger dedup makes the hook safe even when a worker
// shares the coordinator's registry in-process (loopback tests): the
// forwarded dump cannot re-trigger a second fan-out.
func ArmFleetFlight(remotes []*Remote) func() {
	var mu sync.Mutex
	seen := make(map[string]bool)
	return obs.Default().OnFlightDump(func(reason, triggerID, path string) {
		mu.Lock()
		if seen[triggerID] {
			mu.Unlock()
			return
		}
		if len(seen) > 1024 {
			seen = make(map[string]bool)
		}
		seen[triggerID] = true
		mu.Unlock()

		dumps := make([]string, len(remotes))
		var wg sync.WaitGroup
		for i, rm := range remotes {
			wg.Add(1)
			go func(i int, rm *Remote) {
				defer wg.Done()
				dumps[i] = rm.FlightForward(triggerID, reason, 2*time.Second)
			}(i, rm)
		}
		wg.Wait()
		var names []string
		for i, d := range dumps {
			if d != "" {
				names = append(names, remotes[i].name+":"+d)
			}
		}
		list := "none"
		if len(names) > 0 {
			list = strings.Join(names, " ")
		}
		audit.Default().Record(audit.KindFlightFanout,
			fmt.Sprintf("flight trigger %s (%s) fanned out to fleet; worker dumps: %s",
				triggerID, reason, list),
			audit.A("workers", float64(len(remotes))),
			audit.A("dumped", float64(len(names))))
	})
}
