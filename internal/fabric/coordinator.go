package fabric

import (
	"fmt"

	"arams/internal/audit"
	"arams/internal/engine"
	"arams/internal/obs"
)

var obsFabricWorkers = obs.Default().Gauge("arams_fabric_workers")

// CoordinatorConfig assembles a distributed engine: one worker address
// per shard slot, the engine configuration the coordinator runs
// locally (routing, window, reconcile cadence, audit), and the
// per-connection remote policy.
type CoordinatorConfig struct {
	// Workers lists worker addresses; worker i serves shard i. The
	// engine's Shards is overridden to len(Workers).
	Workers []string
	// Engine is the coordinator-local engine configuration. Sketch is
	// the base config; each worker gets engine.ShardSketchConfig(Sketch,
	// i) via its Hello, so routing and RNG semantics are identical to an
	// all-local engine with the same shard count.
	Engine engine.Config
	// Remote tunes dialing, deadlines, heartbeats, and the recovery
	// ladder for every worker connection.
	Remote RemoteConfig
}

// Coordinator owns a distributed engine: the ordinary streaming engine
// with one Remote backend per worker. Use Engine() for ingest,
// snapshots, and checkpointing exactly as in single-process mode.
type Coordinator struct {
	eng     *engine.Engine
	remotes []*Remote

	flightCancel func() // unregisters the fleet flight fan-out hook
}

// NewCoordinator dials every worker and builds the engine around them.
// A worker that cannot be dialed follows the remote recovery policy:
// by default its shard degrades to in-process sketching (journaled),
// under RemoteConfig.NoLocalFallback the construction fails instead.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("fabric: coordinator needs at least one worker address")
	}
	c := &Coordinator{}
	backends := make([]engine.Backend, len(cfg.Workers))
	for i, addr := range cfg.Workers {
		name := fmt.Sprintf("worker%d", i)
		r, err := DialRemote(name, addr, uint32(i),
			engine.ShardSketchConfig(cfg.Engine.Sketch, i), cfg.Remote)
		if err != nil {
			for _, prev := range c.remotes {
				prev.Close()
			}
			return nil, fmt.Errorf("fabric: dial %s (%s): %w", name, addr, err)
		}
		c.remotes = append(c.remotes, r)
		backends[i] = r
	}
	ecfg := cfg.Engine
	ecfg.Backends = backends
	c.eng = engine.New(ecfg)
	obsFabricWorkers.SetInt(len(cfg.Workers))
	audit.Default().Record("fabric_up",
		"coordinator connected to worker fleet",
		audit.A("workers", float64(len(cfg.Workers))))
	return c, nil
}

// Engine returns the distributed streaming engine.
func (c *Coordinator) Engine() *engine.Engine { return c.eng }

// Remotes returns the per-shard remote backends (introspection:
// Degraded(), Certificate()).
func (c *Coordinator) Remotes() []*Remote { return c.remotes }

// ArmFleet attaches a fleet view to every worker connection: each
// successful heartbeat fetches that worker's obs registry snapshot and
// feeds it to the view, so a /fleetz handler over fv tracks the whole
// fleet at heartbeat cadence.
func (c *Coordinator) ArmFleet(fv *obs.FleetView) {
	for _, r := range c.remotes {
		r.ArmFleet(fv)
	}
}

// ArmFleetFlight turns every coordinator-side flight dump into a
// fleet-wide one: the dump's trigger ID fans out to all workers, each
// dumps its own flight ring under the same ID, and the correlated dump
// names are journaled. Close unregisters the hook.
func (c *Coordinator) ArmFleetFlight() {
	if c.flightCancel == nil {
		c.flightCancel = ArmFleetFlight(c.remotes)
	}
}

// Close stops the engine (draining the async queue) and closes every
// worker connection.
func (c *Coordinator) Close() error {
	if c.flightCancel != nil {
		c.flightCancel()
		c.flightCancel = nil
	}
	return c.eng.Close()
}

// StartLoopbackWorkers spins up n in-process workers on ephemeral
// localhost ports — the test and benchmark harness for fabric runs
// without separate processes. Callers own the workers (Close each) and
// typically pass the addresses to NewCoordinator.
func StartLoopbackWorkers(n int) ([]*Worker, []string, error) {
	workers := make([]*Worker, 0, n)
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		w, err := NewWorker("127.0.0.1:0")
		if err != nil {
			for _, prev := range workers {
				prev.Close()
			}
			return nil, nil, err
		}
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	return workers, addrs, nil
}
