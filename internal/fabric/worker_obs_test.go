package fabric

// Handle-level tests for the worker's observability surface: the
// heartbeat health block, the traced-reply wrapper on v2 requests, the
// fleet-stats snapshot RPC, and the flight fan-out RPC. These exercise
// w.handle directly (no sockets) so they can reach the unexported
// codecs and assert exact frame semantics.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"arams/internal/ckpt"
	"arams/internal/obs"
	"arams/internal/sketch"
)

// newHandleWorker starts a worker with its own obs registry (so test
// spans never land in obs.Default()) and sends it a hello so ingest
// RPCs have a backend.
func newHandleWorker(t *testing.T) (*Worker, *obs.Registry) {
	t.Helper()
	w, err := NewWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	reg := obs.NewRegistry()
	w.SetObsRegistry(reg)

	hello := HelloPayload{Shard: 1, Cfg: sketch.Config{Ell0: 4, Beta: 1}}
	resp := w.handle(ckpt.WireFrame{Type: MsgHello, Payload: hello.encode()})
	if resp.Type != MsgHelloAck {
		t.Fatalf("hello answered with type %d", resp.Type)
	}
	return w, reg
}

func ingestFrame(trace, span uint64, rows [][]float64) ckpt.WireFrame {
	return ckpt.WireFrame{
		Type: MsgIngest, Trace: trace, Span: span,
		Payload: IngestPayload{D: len(rows[0]), Rows: rows}.encode(),
	}
}

func TestWorkerHeartbeatHealthBlock(t *testing.T) {
	w, _ := newHandleWorker(t)
	resp := w.handle(ckpt.WireFrame{Type: MsgHeartbeat})
	if resp.Type != MsgHeartbeatAck {
		t.Fatalf("heartbeat answered with type %d", resp.Type)
	}
	hb, err := decodeHeartbeat(resp.Payload)
	if err != nil {
		t.Fatalf("decode heartbeat: %v", err)
	}
	if hb.legacy {
		t.Error("live worker emitted the legacy two-field heartbeat form")
	}
	if hb.Uptime <= 0 {
		t.Errorf("uptime %v, want > 0", hb.Uptime)
	}
	if hb.QueueDepth != 0 {
		t.Errorf("queue depth %d, want 0 (direct handle call)", hb.QueueDepth)
	}
	if hb.ObsRing < 0 {
		t.Errorf("obs ring %d, want >= 0", hb.ObsRing)
	}
	// Canonical re-encode: the extended form must round-trip bytes.
	if got := hb.encode(); string(got) != string(resp.Payload) {
		t.Error("extended heartbeat does not re-encode canonically")
	}
}

func TestWorkerTracedReplyWrapsIngestAck(t *testing.T) {
	w, reg := newHandleWorker(t)
	rows := [][]float64{{1, 2, 3}, {4, 5, 6}}

	resp := w.handle(ingestFrame(7, 9, rows))
	if resp.Type != MsgIngestAck {
		t.Fatalf("traced ingest answered with type %d", resp.Type)
	}
	if !resp.Traced() || resp.Trace != 7 || resp.Span != 9 {
		t.Fatalf("traced response does not echo request identity: trace=%d span=%d", resp.Trace, resp.Span)
	}
	inner, recs, err := unwrapTraced(resp.Payload)
	if err != nil {
		t.Fatalf("unwrap traced reply: %v", err)
	}
	ack, err := decodeIngestAck(inner)
	if err != nil {
		t.Fatalf("decode inner ack: %v", err)
	}
	if ack.Stats.Rows != 2 {
		t.Errorf("ack rows %d, want 2", ack.Stats.Rows)
	}
	if len(recs) != 1 {
		t.Fatalf("traced reply carries %d span records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Name != "worker_absorb" {
		t.Errorf("span name %q, want worker_absorb", rec.Name)
	}
	if rec.Trace != 7 || rec.Parent != 9 || rec.Span == 0 {
		t.Errorf("span identity trace=%d parent=%d span=%d, want trace 7 parented under span 9", rec.Trace, rec.Parent, rec.Span)
	}
	if rec.Attrs["rows"] != "2" {
		t.Errorf("span rows attr %q, want 2", rec.Attrs["rows"])
	}
	// The worker's own registry retains its copy of the span.
	var found bool
	for _, sp := range reg.Spans() {
		if sp.Name == "worker_absorb" && sp.Trace == 7 {
			found = true
		}
	}
	if !found {
		t.Error("worker registry ring does not hold the worker_absorb span")
	}
}

func TestWorkerUntracedIngestStaysPlain(t *testing.T) {
	w, _ := newHandleWorker(t)
	resp := w.handle(ingestFrame(0, 0, [][]float64{{1, 2, 3}}))
	if resp.Type != MsgIngestAck {
		t.Fatalf("ingest answered with type %d", resp.Type)
	}
	if resp.Traced() {
		t.Fatal("untraced request got a traced response")
	}
	// Payload must decode directly — no wrapper.
	if _, err := decodeIngestAck(resp.Payload); err != nil {
		t.Fatalf("plain ack does not decode: %v", err)
	}
}

func TestWorkerTracedErrorStaysPlain(t *testing.T) {
	w, err := NewWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.SetObsRegistry(obs.NewRegistry())

	// Traced ingest before any hello: request-level error. MsgError must
	// stay a plain v1 frame so v1-era error handling is untouched.
	resp := w.handle(ingestFrame(3, 4, [][]float64{{1}}))
	if resp.Type != MsgError {
		t.Fatalf("ingest before hello answered with type %d", resp.Type)
	}
	if resp.Traced() {
		t.Fatal("error response carries trace identity")
	}
	if _, err := decodeError(resp.Payload); err != nil {
		t.Fatalf("error payload does not decode plainly: %v", err)
	}
}

func TestWorkerStatsReqSnapshotsRegistry(t *testing.T) {
	w, reg := newHandleWorker(t)
	reg.Counter("test_stats_total").Inc()

	resp := w.handle(ckpt.WireFrame{Type: MsgStatsReq})
	if resp.Type != MsgStats {
		t.Fatalf("stats req answered with type %d", resp.Type)
	}
	var snap obs.RegistrySnapshot
	if err := json.Unmarshal(resp.Payload, &snap); err != nil {
		t.Fatalf("stats payload does not unmarshal: %v", err)
	}
	var found bool
	for _, c := range snap.Counters {
		if c.Name == "test_stats_total" && c.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("snapshot is missing the worker's counter: %+v", snap.Counters)
	}
}

func TestWorkerFlightReqDumpsWithTriggerID(t *testing.T) {
	w, reg := newHandleWorker(t)
	dir := t.TempDir()
	fr, err := reg.ArmFlightRecorder(obs.FlightConfig{Dir: dir, Identity: "w0"})
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()

	req := FlightReqPayload{ID: "deadbeef01", Reason: "test_incident"}
	resp := w.handle(ckpt.WireFrame{Type: MsgFlightReq, Payload: req.encode()})
	if resp.Type != MsgFlightAck {
		t.Fatalf("flight req answered with type %d", resp.Type)
	}
	ack, err := decodeFlightAck(resp.Payload)
	if err != nil {
		t.Fatalf("decode flight ack: %v", err)
	}
	if ack.Dump == "" {
		t.Fatal("armed worker reported no dump")
	}
	if !strings.Contains(ack.Dump, "deadbeef01") {
		t.Errorf("dump name %q does not carry the coordinator's trigger ID", ack.Dump)
	}
	if !strings.Contains(ack.Dump, "w0") {
		t.Errorf("dump name %q does not carry the worker identity", ack.Dump)
	}
	if _, err := os.Stat(filepath.Join(dir, ack.Dump)); err != nil {
		t.Errorf("dump file missing: %v", err)
	}
}

func TestWorkerFlightReqUnarmedAnswersEmpty(t *testing.T) {
	w, _ := newHandleWorker(t)
	resp := w.handle(ckpt.WireFrame{Type: MsgFlightReq,
		Payload: FlightReqPayload{ID: "abc", Reason: "r"}.encode()})
	if resp.Type != MsgFlightAck {
		t.Fatalf("flight req answered with type %d", resp.Type)
	}
	ack, err := decodeFlightAck(resp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Dump != "" {
		t.Errorf("unarmed worker reported dump %q, want empty", ack.Dump)
	}
}
