package fabric_test

import (
	"runtime"
	"testing"
	"time"

	"arams/internal/audit"
	"arams/internal/engine"
	"arams/internal/fabric"
	"arams/internal/fabric/fabrictest"
	"arams/internal/obs"
	"arams/internal/parallel"
	"arams/internal/sketch"
)

// TestStopDuringHungReconcile is the regression test for the pending-leg
// leak: with a worker link that suddenly stalls, a reconcile's fetch leg
// must be abandoned at Retry.LegTimeout (not held to the network
// timeout), engine Stop must return promptly, the flight recorder must
// capture the aborted leg, and — because every fabric I/O runs under a
// connection deadline — the abandoned fetch goroutine must exit on its
// own instead of leaking.
func TestStopDuringHungReconcile(t *testing.T) {
	const legTimeout = 100 * time.Millisecond
	const opTimeout = 400 * time.Millisecond

	fr, err := obs.Default().ArmFlightRecorder(obs.FlightConfig{
		Dir: t.TempDir(), Cooldown: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()

	workers, addrs, err := fabric.StartLoopbackWorkers(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	p, err := fabrictest.New(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	coord, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Workers: []string{addrs[0], p.Addr()},
		Engine: engine.Config{
			Shards:         2,
			Sketch:         sketch.Config{Ell0: 8, Beta: 1, Seed: 13},
			Window:         32,
			ReconcileEvery: 1 << 30, // only explicit reconciles
			ReconcileRetry: parallel.Retry{MaxAttempts: 1, LegTimeout: legTimeout},
		},
		Remote: fabric.RemoteConfig{
			DialTimeout:       200 * time.Millisecond,
			OpTimeout:         opTimeout,
			HeartbeatEvery:    -1, // deterministic goroutine accounting
			ReconnectAttempts: 1,
			ReconnectBackoff:  time.Millisecond,
			// The leg must actually be lost — no bit-exact local stand-in.
			NoLocalFallback: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	eng := coord.Engine()

	eng.IngestVecs(cloneVecs(testVecs(64, 16, 53)), nil)
	baseline := runtime.NumGoroutine()
	seq := audit.Default().Seq()

	// Stall the link: every chunk now takes far longer than the leg
	// timeout, so the in-flight reconcile leg hangs at the wire.
	p.SetDelay(2 * opTimeout)

	reconcileDone := make(chan struct{})
	go func() {
		defer close(reconcileDone)
		if g := eng.GlobalSketch(); g == nil {
			t.Error("no global sketch from surviving shard")
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the reconcile reach the hung leg

	start := time.Now()
	eng.Stop()
	if elapsed := time.Since(start); elapsed > legTimeout+300*time.Millisecond {
		t.Errorf("Stop blocked %v behind a hung reconcile leg (leg timeout %v)", elapsed, legTimeout)
	}

	select {
	case <-reconcileDone:
	case <-time.After(legTimeout + time.Second):
		t.Fatal("reconcile still pending long after the leg timeout — pending leg leaked")
	}

	if evs := audit.Default().Query(audit.Query{Kind: audit.KindRemoteLegLost, SinceSeq: seq}); len(evs) == 0 {
		t.Error("lost reconcile leg not journaled")
	}
	// FlightTrigger("remote_leg_lost") must have produced a dump of the
	// aborted leg's telemetry.
	deadline := time.Now().Add(2 * time.Second)
	for fr.Dumps() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if fr.Dumps() == 0 {
		t.Error("flight recorder captured no dump for the aborted leg")
	}

	// The abandoned fetch goroutine is deadline-bounded (OpTimeout): it
	// must exit on its own, leaving no leak behind.
	deadline = time.Now().Add(2*opTimeout + 2*time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if ng := runtime.NumGoroutine(); ng > baseline {
		t.Errorf("%d goroutines alive after recovery window, baseline %d — fetch leg leaked", ng, baseline)
	}
}
