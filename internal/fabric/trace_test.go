package fabric_test

// Full-stack observability tests: a coordinator-side trace stitched
// across the wire from a real worker over loopback TCP, and a
// coordinator flight trigger fanned out to a worker with a correlated
// trigger ID.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"arams/internal/audit"
	"arams/internal/fabric"
	"arams/internal/obs"
	"arams/internal/sketch"
)

// stitchWorker starts a worker with its own obs registry so worker-side
// spans reach the coordinator only via the traced-reply wrapper, never
// by sharing obs.Default() in-process.
func stitchWorker(t *testing.T) (*fabric.Worker, *obs.Registry) {
	t.Helper()
	w, err := fabric.NewWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	reg := obs.NewRegistry()
	w.SetObsRegistry(reg)
	return w, reg
}

// TestCrossProcessTraceStitch is the tentpole acceptance test: an
// ingest batch traced on the coordinator must render as ONE tree on
// /tracez with the worker's spans inside it — root → fabric_rpc →
// worker_absorb — even though the worker ran in its own registry (as a
// separate process would) and its records crossed the wire on the ack.
func TestCrossProcessTraceStitch(t *testing.T) {
	w, workerReg := stitchWorker(t)
	scfg := sketch.Config{Ell0: 8, Beta: 1, Seed: 5}
	r, err := fabric.DialRemote("w0", w.Addr(), 0, scfg, quietRemote())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	root := obs.StartTrace("ingest_batch")
	if _, err := r.AbsorbIn(root.Context(), testVecs(32, 8, 11), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SnapshotIn(root.Context()); err != nil {
		t.Fatal(err)
	}
	rootCtx := root.Context()
	root.End() // finalizes the trace for the trace store

	var trace obs.TraceRecord
	var found bool
	for _, tr := range obs.Default().Traces() {
		if tr.Trace == rootCtx.Trace {
			trace, found = tr, true
			break
		}
	}
	if !found {
		t.Fatalf("trace %s not retained; store holds %d traces", rootCtx.Trace, len(obs.Default().Traces()))
	}
	if trace.Root != "ingest_batch" {
		t.Errorf("trace root %q, want ingest_batch", trace.Root)
	}

	byID := make(map[obs.ID]obs.SpanRecord, len(trace.Spans))
	count := map[string]int{}
	for _, sp := range trace.Spans {
		byID[sp.Span] = sp
		count[sp.Name]++
	}
	// Coordinator legs and worker legs must both be present: one
	// fabric_rpc per RPC (absorb + state fetch), each with its
	// wire_encode and fabric_rtt children, plus the worker-side spans
	// that crossed back on the acks.
	for name, want := range map[string]int{
		"fabric_rpc": 2, "wire_encode": 2, "fabric_rtt": 2,
		"worker_absorb": 1, "worker_state": 1,
	} {
		if count[name] < want {
			t.Errorf("trace holds %d %q span(s), want >= %d (spans: %v)", count[name], name, want, count)
		}
	}

	// Every span's parent chain must reach the root — the stitched tree
	// is connected, with worker spans parented under coordinator RPC
	// spans.
	for _, sp := range trace.Spans {
		cur := sp
		for hops := 0; cur.Parent != 0; hops++ {
			if hops > len(trace.Spans) {
				t.Fatalf("parent cycle walking up from %s", sp.Name)
			}
			parent, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("span %s has unretained parent %s", sp.Name, cur.Parent)
			}
			cur = parent
		}
		if cur.Span != rootCtx.Span {
			t.Errorf("span %s does not chain to the ingest_batch root", sp.Name)
		}
	}
	for _, sp := range trace.Spans {
		if sp.Name != "worker_absorb" {
			continue
		}
		if parent := byID[sp.Parent]; parent.Name != "fabric_rpc" {
			t.Errorf("worker_absorb parented under %q, want fabric_rpc", parent.Name)
		}
	}

	// The worker kept its own copy in its own ring — same trace ID, so
	// dumps from both processes correlate.
	var workerHas bool
	for _, sp := range workerReg.Spans() {
		if sp.Name == "worker_absorb" && sp.Trace == rootCtx.Trace {
			workerHas = true
		}
	}
	if !workerHas {
		t.Error("worker registry ring lost its worker_absorb span")
	}
}

// TestFleetFlightFanout: a coordinator-side flight trigger must fan out
// over the fabric — the worker dumps its own ring tagged with the
// coordinator's trigger ID, and the fan-out is journaled with the
// correlated dump name.
func TestFleetFlightFanout(t *testing.T) {
	w, workerReg := stitchWorker(t)
	wdir, cdir := t.TempDir(), t.TempDir()
	wfr, err := workerReg.ArmFlightRecorder(obs.FlightConfig{Dir: wdir, Identity: "worker0"})
	if err != nil {
		t.Fatal(err)
	}
	defer wfr.Close()

	scfg := sketch.Config{Ell0: 8, Beta: 1, Seed: 5}
	r, err := fabric.DialRemote("worker0", w.Addr(), 0, scfg, quietRemote())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cancel := fabric.ArmFleetFlight([]*fabric.Remote{r})
	defer cancel()

	// Arming replaces any recorder a previous test left on the default
	// registry; the fresh recorder has no cooldown pending.
	cfr, err := obs.Default().ArmFlightRecorder(obs.FlightConfig{Dir: cdir, Identity: "coordinator"})
	if err != nil {
		t.Fatal(err)
	}
	defer cfr.Close()

	sinceSeq := int64(0)
	if evs := audit.Default().Query(audit.Query{Last: 1}); len(evs) > 0 {
		sinceSeq = evs[0].Seq
	}

	path := obs.Default().FlightTrigger("test_incident")
	if path == "" {
		t.Fatal("coordinator flight trigger produced no dump")
	}
	base := strings.TrimSuffix(filepath.Base(path), ".jsonl")
	parts := strings.Split(base, "-")
	id := parts[len(parts)-1]
	if id == "" {
		t.Fatalf("cannot parse trigger ID from %q", base)
	}

	// The fan-out hook runs on its own goroutine; poll for the worker's
	// correlated dump and the journal entry.
	deadline := time.Now().Add(5 * time.Second)
	var workerDump string
	for workerDump == "" && time.Now().Before(deadline) {
		entries, _ := os.ReadDir(wdir)
		for _, e := range entries {
			if strings.Contains(e.Name(), "worker0") && strings.Contains(e.Name(), id) {
				workerDump = e.Name()
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if workerDump == "" {
		t.Fatalf("worker wrote no dump carrying trigger ID %s", id)
	}

	var journaled bool
	for !journaled && time.Now().Before(deadline) {
		for _, ev := range audit.Default().Query(audit.Query{Kind: audit.KindFlightFanout, SinceSeq: sinceSeq}) {
			if strings.Contains(ev.Msg, id) && strings.Contains(ev.Msg, "worker0:"+workerDump) {
				journaled = true
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !journaled {
		t.Fatalf("no flight_fanout journal event names trigger %s and dump %s", id, workerDump)
	}
}
