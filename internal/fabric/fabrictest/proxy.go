// Package fabrictest is the network-chaos harness for fabric tests: a
// TCP proxy that sits between a coordinator and a worker and injects
// the failure modes the fabric's recovery ladder claims to survive —
// added latency, partitions (connections refused and live ones cut),
// byte corruption (CRC exercise), and abrupt mid-frame closes. All
// fault knobs are safe to flip concurrently while traffic flows.
package fabrictest

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a chaos-injecting TCP forwarder.
type Proxy struct {
	ln     net.Listener
	target string

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	delayNanos   atomic.Int64 // per-chunk forwarding delay
	partitioned  atomic.Bool  // refuse new conns, cut live ones
	corruptEvery atomic.Int64 // flip one bit every N forwarded bytes (0 = off)
	closeAfter   atomic.Int64 // abruptly close each conn after N forwarded bytes (0 = off)

	bytes  atomic.Int64 // total forwarded bytes (both directions)
	closed atomic.Bool
	wg     sync.WaitGroup
}

// New starts a proxy on an ephemeral localhost port forwarding to
// target (a fabric worker address).
func New(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — dial this instead of the
// worker.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Bytes returns the total bytes forwarded in both directions.
func (p *Proxy) Bytes() int64 { return p.bytes.Load() }

// SetDelay adds d of latency to every forwarded chunk (0 restores
// transparent forwarding).
func (p *Proxy) SetDelay(d time.Duration) { p.delayNanos.Store(int64(d)) }

// Partition cuts the link: new connections are accepted and
// immediately closed, and every live connection is severed. Passing
// false heals the link (existing connections stay dead; the fabric
// reconnects).
func (p *Proxy) Partition(on bool) {
	p.partitioned.Store(on)
	if on {
		p.killConns()
	}
}

// CorruptEvery flips one bit in roughly every n forwarded bytes
// (0 disables). The fabric's CRC must catch every corruption.
func (p *Proxy) CorruptEvery(n int64) { p.corruptEvery.Store(n) }

// CloseAfter abruptly closes each connection once it has forwarded n
// more bytes (0 disables) — a mid-frame disconnect generator.
func (p *Proxy) CloseAfter(n int64) { p.closeAfter.Store(n) }

// Close stops the proxy and severs everything.
func (p *Proxy) Close() error {
	p.closed.Store(true)
	err := p.ln.Close()
	p.killConns()
	p.wg.Wait()
	return err
}

func (p *Proxy) killConns() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	c.Close()
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.partitioned.Load() {
			client.Close()
			continue
		}
		upstream, err := net.DialTimeout("tcp", p.target, 2*time.Second)
		if err != nil {
			client.Close()
			continue
		}
		p.track(client)
		p.track(upstream)
		// budget is shared by both directions of this connection so
		// CloseAfter counts total traffic, matching how a real
		// mid-stream cut would land.
		budget := &atomic.Int64{}
		budget.Store(p.closeAfter.Load())
		p.wg.Add(2)
		go p.pump(client, upstream, budget)
		go p.pump(upstream, client, budget)
	}
}

// pump forwards src→dst chunk by chunk, applying the current fault
// knobs to each chunk. Closing either side unblocks the peer pump.
func (p *Proxy) pump(src, dst net.Conn, budget *atomic.Int64) {
	defer p.wg.Done()
	defer p.untrack(src)
	defer p.untrack(dst)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if p.partitioned.Load() {
				return
			}
			if d := p.delayNanos.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			chunk := buf[:n]
			if every := p.corruptEvery.Load(); every > 0 {
				// Flip one bit per `every` bytes, pseudo-positioned by the
				// running byte count so corruption lands in different
				// frame offsets over time.
				total := p.bytes.Load()
				for i := range chunk {
					if (total+int64(i))%every == every-1 {
						chunk[i] ^= 1 << uint((total+int64(i))%8)
					}
				}
			}
			if ca := p.closeAfter.Load(); ca > 0 {
				if budget.Add(int64(-n)) <= 0 {
					// Forward a torn prefix, then cut both directions.
					cut := n / 2
					dst.Write(chunk[:cut])
					p.bytes.Add(int64(cut))
					return
				}
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
			p.bytes.Add(int64(n))
		}
		if err != nil {
			if err != io.EOF {
				return
			}
			// Half-close: propagate EOF but keep draining the other way.
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			return
		}
	}
}
