package fabric

import (
	"bytes"
	"encoding/hex"
	"math"
	"testing"
	"time"

	"arams/internal/audit"
	"arams/internal/obs"
	"arams/internal/sketch"
)

// TestPayloadGoldens pins the fabric payload encodings at the byte
// level. These bytes ride inside version-1 wire frames; changing any of
// them is a wire-protocol break and requires bumping ckpt.WireVersion.
func TestPayloadGoldens(t *testing.T) {
	hello := HelloPayload{Shard: 2, Cfg: sketch.Config{
		Ell0: 8, Nu: 3, Eps: 0.25, Beta: 0.5, RankAdaptive: true,
		Estimator: sketch.EstimatorKind(1), Seed: 0x0102030405060708,
	}}
	wantHello := "02000000" + // shard 2
		"0800000000000000" + // Ell0 8
		"0300000000000000" + // Nu 3
		"000000000000d03f" + // Eps 0.25
		"000000000000e03f" + // Beta 0.5
		"01" + // RankAdaptive
		"0100000000000000" + // Estimator 1
		"0807060504030201" // Seed little-endian
	if g := hex.EncodeToString(hello.encode()); g != wantHello {
		t.Errorf("hello payload bytes changed:\n got  %s\n want %s", g, wantHello)
	}

	ing := IngestPayload{D: 2, Rows: [][]float64{{1, 2}, {3, 4}}}
	wantIngest := "0200000000000000" + "0200000000000000" +
		"000000000000f03f" + "0000000000000040" +
		"0000000000000840" + "0000000000001040"
	if g := hex.EncodeToString(ing.encode()); g != wantIngest {
		t.Errorf("ingest payload bytes changed:\n got  %s\n want %s", g, wantIngest)
	}

	ack := IngestAckPayload{Stats: sketch.BatchStats{
		Rows: 2, Kept: 1, TotalMass: 1.5, KeptMass: 0.5, DeltaAdded: 0.25,
		EllBefore: 3, EllAfter: 4,
	}, Ell: 4}
	wantAck := "0200000000000000" + "0100000000000000" +
		"000000000000f83f" + "000000000000e03f" + "000000000000d03f" +
		"0300000000000000" + "0400000000000000" + "0400000000000000"
	if g := hex.EncodeToString(ack.encode()); g != wantAck {
		t.Errorf("ingest-ack payload bytes changed:\n got  %s\n want %s", g, wantAck)
	}

	errp := ErrorPayload{Code: ErrCodeCorrupt, Msg: "bad"}
	wantErr := "02000000" + "0300000000000000" + "626164"
	if g := hex.EncodeToString(errp.encode()); g != wantErr {
		t.Errorf("error payload bytes changed:\n got  %s\n want %s", g, wantErr)
	}

	// Extended (wire v2) heartbeat: the original two fields plus the
	// worker health block.
	hb := HeartbeatPayload{Frames: 7, Ell: 5, Uptime: 1.5, QueueDepth: 2, ObsRing: 3}
	wantHB := "0700000000000000" + "0500000000000000" +
		"000000000000f83f" + // uptime 1.5
		"0200000000000000" + // queue depth 2
		"0300000000000000" // obs ring 3
	if g := hex.EncodeToString(hb.encode()); g != wantHB {
		t.Errorf("heartbeat payload bytes changed:\n got  %s\n want %s", g, wantHB)
	}

	freq := FlightReqPayload{ID: "00c0ffee", Reason: "drift"}
	wantFReq := "0800000000000000" + hex.EncodeToString([]byte("00c0ffee")) +
		"0500000000000000" + hex.EncodeToString([]byte("drift"))
	if g := hex.EncodeToString(freq.encode()); g != wantFReq {
		t.Errorf("flight-req payload bytes changed:\n got  %s\n want %s", g, wantFReq)
	}

	fack := FlightAckPayload{Dump: "f.jsonl"}
	wantFAck := "0700000000000000" + hex.EncodeToString([]byte("f.jsonl"))
	if g := hex.EncodeToString(fack.encode()); g != wantFAck {
		t.Errorf("flight-ack payload bytes changed:\n got  %s\n want %s", g, wantFAck)
	}
}

// TestHeartbeatLegacyDecode pins the version-tolerant heartbeat
// decode: a legacy 16-byte payload (a pre-v2 worker) still decodes,
// re-encodes to its exact bytes, and reports zero health extras.
func TestHeartbeatLegacyDecode(t *testing.T) {
	legacy, _ := hex.DecodeString("0700000000000000" + "0500000000000000")
	p, err := decodeHeartbeat(legacy)
	if err != nil {
		t.Fatalf("legacy heartbeat decode: %v", err)
	}
	if p.Frames != 7 || p.Ell != 5 || p.Uptime != 0 || p.QueueDepth != 0 || p.ObsRing != 0 {
		t.Fatalf("legacy heartbeat fields: %+v", p)
	}
	if !bytes.Equal(p.encode(), legacy) {
		t.Fatal("legacy heartbeat does not re-encode to its own bytes")
	}
	// The extended form round-trips too, including all-zero extras
	// (which must NOT collapse to the legacy form).
	ext := HeartbeatPayload{Frames: 7, Ell: 5}
	got, err := decodeHeartbeat(ext.encode())
	if err != nil || got != ext {
		t.Fatalf("extended heartbeat round trip: %+v err %v", got, err)
	}
	if len(ext.encode()) == legacyHeartbeatLen {
		t.Fatal("extended encoding collapsed to legacy length")
	}
}

func TestPayloadRoundTrips(t *testing.T) {
	hello := HelloPayload{Shard: 9, Cfg: sketch.Config{
		Ell0: 20, Nu: 5, Eps: 0.1, Beta: 1, Seed: 42,
	}}
	if got, err := decodeHello(hello.encode()); err != nil || got != hello {
		t.Errorf("hello round trip: %+v err %v", got, err)
	}

	ing := IngestPayload{D: 3, Rows: [][]float64{{1, math.Pi, -0}, {math.Inf(1), 1e-300, 5}}}
	got, err := decodeIngest(ing.encode())
	if err != nil || got.D != ing.D || len(got.Rows) != len(ing.Rows) {
		t.Fatalf("ingest round trip: %+v err %v", got, err)
	}
	for i := range ing.Rows {
		for j := range ing.Rows[i] {
			if math.Float64bits(got.Rows[i][j]) != math.Float64bits(ing.Rows[i][j]) {
				t.Fatalf("ingest row %d[%d] not bit-exact", i, j)
			}
		}
	}

	cert := CertificatePayload{Cert: audit.Certificate{
		Rows: 100, Dim: 32, Ell: 12, Rotations: 9,
		ShrinkMass: 1.25, FrobMass: 200.5,
		Time: time.Unix(0, 1700000000000000000).UTC(),
	}}
	if got, err := decodeCertificate(cert.encode()); err != nil || got != cert {
		t.Errorf("certificate round trip: %+v err %v", got, err)
	}

	ep := ErrorPayload{Code: ErrCodeFatal, Msg: "worker on fire"}
	if got, err := decodeError(ep.encode()); err != nil || got != ep {
		t.Errorf("error round trip: %+v err %v", got, err)
	}

	hb := HeartbeatPayload{Frames: 11, Ell: 6, Uptime: 12.5, QueueDepth: 1, ObsRing: 40}
	if got, err := decodeHeartbeat(hb.encode()); err != nil || got != hb {
		t.Errorf("heartbeat round trip: %+v err %v", got, err)
	}

	fr := FlightReqPayload{ID: "deadbeefcafef00d", Reason: "merge_leg_fault"}
	if got, err := decodeFlightReq(fr.encode()); err != nil || got != fr {
		t.Errorf("flight-req round trip: %+v err %v", got, err)
	}
	fa := FlightAckPayload{Dump: "flight-w0-x.jsonl"}
	if got, err := decodeFlightAck(fa.encode()); err != nil || got != fa {
		t.Errorf("flight-ack round trip: %+v err %v", got, err)
	}
}

// TestTracedReplyWrapper round-trips the [inner payload | span
// records] wrapper a worker applies to responses of traced requests.
func TestTracedReplyWrapper(t *testing.T) {
	recs := []obs.SpanRecord{
		{
			Name:     "worker_absorb",
			Start:    time.Unix(0, 1700000000000000000).UTC(),
			Duration: 1500 * time.Microsecond,
			CPU:      200 * time.Microsecond,
			Trace:    obs.ID(0xAAAA),
			Span:     obs.ID(0xBBBB),
			Parent:   obs.ID(0xCCCC),
			Attrs:    map[string]string{"shard": "1", "rows": "64"},
		},
		{Name: "bare", Start: time.Unix(0, 1).UTC(), Trace: obs.ID(1), Span: obs.ID(2)},
	}
	inner := IngestAckPayload{Ell: 3}.encode()
	wrapped := wrapTraced(inner, recs)

	gotInner, gotRecs, err := unwrapTraced(wrapped)
	if err != nil {
		t.Fatalf("unwrap: %v", err)
	}
	if !bytes.Equal(gotInner, inner) {
		t.Fatal("inner payload mangled")
	}
	if len(gotRecs) != len(recs) {
		t.Fatalf("got %d records, want %d", len(gotRecs), len(recs))
	}
	for i := range recs {
		g, w := gotRecs[i], recs[i]
		if g.Name != w.Name || !g.Start.Equal(w.Start) || g.Duration != w.Duration ||
			g.CPU != w.CPU || g.Trace != w.Trace || g.Span != w.Span || g.Parent != w.Parent {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, g, w)
		}
		if len(g.Attrs) != len(w.Attrs) {
			t.Fatalf("record %d attrs mismatch: %v vs %v", i, g.Attrs, w.Attrs)
		}
		for k, v := range w.Attrs {
			if g.Attrs[k] != v {
				t.Fatalf("record %d attr %q: %q vs %q", i, k, g.Attrs[k], v)
			}
		}
	}
	// Canonical: re-wrapping the unwrapped parts is byte-identical.
	if !bytes.Equal(wrapTraced(gotInner, gotRecs), wrapped) {
		t.Fatal("traced wrapper not canonical")
	}
	// Empty both ways.
	gotInner, gotRecs, err = unwrapTraced(wrapTraced(nil, nil))
	if err != nil || gotInner != nil || len(gotRecs) != 0 {
		t.Fatalf("empty wrapper round trip: %v %v %v", gotInner, gotRecs, err)
	}
	// Truncations error, never panic.
	for i := 0; i < len(wrapped); i++ {
		if _, _, err := unwrapTraced(wrapped[:i]); err == nil && i < len(wrapped) {
			// Prefixes that happen to decode must re-encode to themselves.
			in2, r2, _ := unwrapTraced(wrapped[:i])
			if !bytes.Equal(wrapTraced(in2, r2), wrapped[:i]) {
				t.Fatalf("truncated wrapper at %d decoded non-canonically", i)
			}
		}
	}
}

func TestPayloadDecodeErrors(t *testing.T) {
	// Truncations must error, never panic, for every decoder.
	hello := HelloPayload{Shard: 1, Cfg: sketch.Config{Ell0: 4, Beta: 1}}.encode()
	if _, err := decodeHello(hello[:len(hello)-1]); err == nil {
		t.Error("truncated hello decoded")
	}
	// Trailing bytes are rejected — payloads are exact.
	if _, err := decodeHello(append(hello, 0)); err == nil {
		t.Error("hello with trailing bytes decoded")
	}
	// An ingest header whose row count outruns the payload must be
	// rejected before allocation.
	lie := IngestPayload{D: 1, Rows: [][]float64{{1}}}.encode()
	lie[8] = 0xFF // claim 255 rows
	if _, err := decodeIngest(lie); err == nil {
		t.Error("lying ingest header decoded")
	}
	// An error payload claiming more message bytes than exist.
	el := ErrorPayload{Code: 1, Msg: "x"}.encode()
	el[4] = 0xFF
	if _, err := decodeError(el); err == nil {
		t.Error("lying error header decoded")
	}
}

// FuzzFabricPayload throws arbitrary bytes at every payload decoder:
// none may panic, and whatever decodes must re-encode byte-identically
// (the payload encodings are canonical).
func FuzzFabricPayload(f *testing.F) {
	f.Add([]byte{})
	f.Add(HelloPayload{Shard: 1, Cfg: sketch.Config{Ell0: 8, Beta: 1}}.encode())
	f.Add(IngestPayload{D: 2, Rows: [][]float64{{1, 2}}}.encode())
	f.Add(IngestAckPayload{Ell: 3}.encode())
	f.Add(CertificatePayload{}.encode())
	f.Add(HeartbeatPayload{Frames: 1}.encode())
	f.Add(HeartbeatPayload{Frames: 1, legacy: true}.encode())
	f.Add(ErrorPayload{Code: 2, Msg: "boom"}.encode())
	f.Add(FlightReqPayload{ID: "beef", Reason: "drift"}.encode())
	f.Add(FlightAckPayload{Dump: "flight.jsonl"}.encode())
	f.Add(wrapTraced(IngestAckPayload{Ell: 1}.encode(), []obs.SpanRecord{
		{Name: "worker_absorb", Trace: 1, Span: 2, Parent: 3, Attrs: map[string]string{"shard": "0"}},
	}))

	f.Fuzz(func(t *testing.T, b []byte) {
		if p, err := decodeHello(b); err == nil {
			if !bytes.Equal(p.encode(), b) {
				t.Fatal("hello not canonical")
			}
		}
		if p, err := decodeIngest(b); err == nil {
			if !bytes.Equal(p.encode(), b) {
				t.Fatal("ingest not canonical")
			}
		}
		if p, err := decodeIngestAck(b); err == nil {
			if !bytes.Equal(p.encode(), b) {
				t.Fatal("ingest-ack not canonical")
			}
		}
		if p, err := decodeCertificate(b); err == nil {
			if !bytes.Equal(p.encode(), b) {
				t.Fatal("certificate not canonical")
			}
		}
		if p, err := decodeHeartbeat(b); err == nil {
			if !bytes.Equal(p.encode(), b) {
				t.Fatal("heartbeat not canonical")
			}
		}
		if p, err := decodeError(b); err == nil {
			if !bytes.Equal(p.encode(), b) {
				t.Fatal("error not canonical")
			}
		}
		if p, err := decodeFlightReq(b); err == nil {
			if !bytes.Equal(p.encode(), b) {
				t.Fatal("flight-req not canonical")
			}
		}
		if p, err := decodeFlightAck(b); err == nil {
			if !bytes.Equal(p.encode(), b) {
				t.Fatal("flight-ack not canonical")
			}
		}
		if inner, recs, err := unwrapTraced(b); err == nil {
			if !bytes.Equal(wrapTraced(inner, recs), b) {
				t.Fatal("traced wrapper not canonical")
			}
		}
	})
}
