package fabric

import (
	"bytes"
	"encoding/hex"
	"math"
	"testing"
	"time"

	"arams/internal/audit"
	"arams/internal/sketch"
)

// TestPayloadGoldens pins the fabric payload encodings at the byte
// level. These bytes ride inside version-1 wire frames; changing any of
// them is a wire-protocol break and requires bumping ckpt.WireVersion.
func TestPayloadGoldens(t *testing.T) {
	hello := HelloPayload{Shard: 2, Cfg: sketch.Config{
		Ell0: 8, Nu: 3, Eps: 0.25, Beta: 0.5, RankAdaptive: true,
		Estimator: sketch.EstimatorKind(1), Seed: 0x0102030405060708,
	}}
	wantHello := "02000000" + // shard 2
		"0800000000000000" + // Ell0 8
		"0300000000000000" + // Nu 3
		"000000000000d03f" + // Eps 0.25
		"000000000000e03f" + // Beta 0.5
		"01" + // RankAdaptive
		"0100000000000000" + // Estimator 1
		"0807060504030201" // Seed little-endian
	if g := hex.EncodeToString(hello.encode()); g != wantHello {
		t.Errorf("hello payload bytes changed:\n got  %s\n want %s", g, wantHello)
	}

	ing := IngestPayload{D: 2, Rows: [][]float64{{1, 2}, {3, 4}}}
	wantIngest := "0200000000000000" + "0200000000000000" +
		"000000000000f03f" + "0000000000000040" +
		"0000000000000840" + "0000000000001040"
	if g := hex.EncodeToString(ing.encode()); g != wantIngest {
		t.Errorf("ingest payload bytes changed:\n got  %s\n want %s", g, wantIngest)
	}

	ack := IngestAckPayload{Stats: sketch.BatchStats{
		Rows: 2, Kept: 1, TotalMass: 1.5, KeptMass: 0.5, DeltaAdded: 0.25,
		EllBefore: 3, EllAfter: 4,
	}, Ell: 4}
	wantAck := "0200000000000000" + "0100000000000000" +
		"000000000000f83f" + "000000000000e03f" + "000000000000d03f" +
		"0300000000000000" + "0400000000000000" + "0400000000000000"
	if g := hex.EncodeToString(ack.encode()); g != wantAck {
		t.Errorf("ingest-ack payload bytes changed:\n got  %s\n want %s", g, wantAck)
	}

	errp := ErrorPayload{Code: ErrCodeCorrupt, Msg: "bad"}
	wantErr := "02000000" + "0300000000000000" + "626164"
	if g := hex.EncodeToString(errp.encode()); g != wantErr {
		t.Errorf("error payload bytes changed:\n got  %s\n want %s", g, wantErr)
	}

	hb := HeartbeatPayload{Frames: 7, Ell: 5}
	wantHB := "0700000000000000" + "0500000000000000"
	if g := hex.EncodeToString(hb.encode()); g != wantHB {
		t.Errorf("heartbeat payload bytes changed:\n got  %s\n want %s", g, wantHB)
	}
}

func TestPayloadRoundTrips(t *testing.T) {
	hello := HelloPayload{Shard: 9, Cfg: sketch.Config{
		Ell0: 20, Nu: 5, Eps: 0.1, Beta: 1, Seed: 42,
	}}
	if got, err := decodeHello(hello.encode()); err != nil || got != hello {
		t.Errorf("hello round trip: %+v err %v", got, err)
	}

	ing := IngestPayload{D: 3, Rows: [][]float64{{1, math.Pi, -0}, {math.Inf(1), 1e-300, 5}}}
	got, err := decodeIngest(ing.encode())
	if err != nil || got.D != ing.D || len(got.Rows) != len(ing.Rows) {
		t.Fatalf("ingest round trip: %+v err %v", got, err)
	}
	for i := range ing.Rows {
		for j := range ing.Rows[i] {
			if math.Float64bits(got.Rows[i][j]) != math.Float64bits(ing.Rows[i][j]) {
				t.Fatalf("ingest row %d[%d] not bit-exact", i, j)
			}
		}
	}

	cert := CertificatePayload{Cert: audit.Certificate{
		Rows: 100, Dim: 32, Ell: 12, Rotations: 9,
		ShrinkMass: 1.25, FrobMass: 200.5,
		Time: time.Unix(0, 1700000000000000000).UTC(),
	}}
	if got, err := decodeCertificate(cert.encode()); err != nil || got != cert {
		t.Errorf("certificate round trip: %+v err %v", got, err)
	}

	ep := ErrorPayload{Code: ErrCodeFatal, Msg: "worker on fire"}
	if got, err := decodeError(ep.encode()); err != nil || got != ep {
		t.Errorf("error round trip: %+v err %v", got, err)
	}
}

func TestPayloadDecodeErrors(t *testing.T) {
	// Truncations must error, never panic, for every decoder.
	hello := HelloPayload{Shard: 1, Cfg: sketch.Config{Ell0: 4, Beta: 1}}.encode()
	if _, err := decodeHello(hello[:len(hello)-1]); err == nil {
		t.Error("truncated hello decoded")
	}
	// Trailing bytes are rejected — payloads are exact.
	if _, err := decodeHello(append(hello, 0)); err == nil {
		t.Error("hello with trailing bytes decoded")
	}
	// An ingest header whose row count outruns the payload must be
	// rejected before allocation.
	lie := IngestPayload{D: 1, Rows: [][]float64{{1}}}.encode()
	lie[8] = 0xFF // claim 255 rows
	if _, err := decodeIngest(lie); err == nil {
		t.Error("lying ingest header decoded")
	}
	// An error payload claiming more message bytes than exist.
	el := ErrorPayload{Code: 1, Msg: "x"}.encode()
	el[4] = 0xFF
	if _, err := decodeError(el); err == nil {
		t.Error("lying error header decoded")
	}
}

// FuzzFabricPayload throws arbitrary bytes at every payload decoder:
// none may panic, and whatever decodes must re-encode byte-identically
// (the payload encodings are canonical).
func FuzzFabricPayload(f *testing.F) {
	f.Add([]byte{})
	f.Add(HelloPayload{Shard: 1, Cfg: sketch.Config{Ell0: 8, Beta: 1}}.encode())
	f.Add(IngestPayload{D: 2, Rows: [][]float64{{1, 2}}}.encode())
	f.Add(IngestAckPayload{Ell: 3}.encode())
	f.Add(CertificatePayload{}.encode())
	f.Add(HeartbeatPayload{Frames: 1}.encode())
	f.Add(ErrorPayload{Code: 2, Msg: "boom"}.encode())

	f.Fuzz(func(t *testing.T, b []byte) {
		if p, err := decodeHello(b); err == nil {
			if !bytes.Equal(p.encode(), b) {
				t.Fatal("hello not canonical")
			}
		}
		if p, err := decodeIngest(b); err == nil {
			if !bytes.Equal(p.encode(), b) {
				t.Fatal("ingest not canonical")
			}
		}
		if p, err := decodeIngestAck(b); err == nil {
			if !bytes.Equal(p.encode(), b) {
				t.Fatal("ingest-ack not canonical")
			}
		}
		if p, err := decodeCertificate(b); err == nil {
			if !bytes.Equal(p.encode(), b) {
				t.Fatal("certificate not canonical")
			}
		}
		if p, err := decodeHeartbeat(b); err == nil {
			if !bytes.Equal(p.encode(), b) {
				t.Fatal("heartbeat not canonical")
			}
		}
		if p, err := decodeError(b); err == nil {
			if !bytes.Equal(p.encode(), b) {
				t.Fatal("error not canonical")
			}
		}
	})
}
