package fabric_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"arams/internal/engine"
	"arams/internal/fabric"
	"arams/internal/sketch"
)

// TestFabricRaceHammer drives everything at once — concurrent ingest
// producers, hot snapshot/checkpoint/certificate readers, millisecond
// heartbeats, and a worker kill/restart in the middle — and is run
// under -race in CI (scripts/fabric_smoke.sh). Interleaving is
// nondeterministic, so assertions are conservation properties: every
// row lands exactly once and the merged sketch stays finite.
func TestFabricRaceHammer(t *testing.T) {
	const (
		shards    = 3
		producers = 4
		batches   = 24
		rows      = 8
		d         = 12
	)

	workers, addrs, err := fabric.StartLoopbackWorkers(shards)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, w := range workers {
			if w != nil {
				w.Close()
			}
		}
	}()
	coord, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Workers: addrs,
		Engine: engine.Config{
			Shards:         shards,
			Sketch:         sketch.Config{Ell0: 8, Beta: 1, Seed: 29},
			Window:         64,
			ReconcileEvery: 16,
		},
		Remote: fabric.RemoteConfig{
			DialTimeout:       time.Second,
			OpTimeout:         2 * time.Second,
			HeartbeatEvery:    time.Millisecond, // hammer the connection lock
			ReconnectAttempts: 5,
			ReconnectBackoff:  time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	eng := coord.Engine()

	var wg, readerWg sync.WaitGroup
	stop := make(chan struct{})

	// Hot readers: snapshots, checkpoints, certificates, rank probes.
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if g := eng.GlobalSketch(); g != nil && g.Sketch().HasNaN() {
				t.Error("global sketch went non-finite mid-hammer")
				return
			}
			eng.State()
			eng.Certificate()
			eng.Ell()
		}
	}()

	// Concurrent producers, each with its own deterministic stream.
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			vecs := testVecs(batches*rows, d, uint64(100+pr))
			for b := 0; b < batches; b++ {
				eng.IngestVecs(cloneVecs(vecs[b*rows:(b+1)*rows]), nil)
			}
		}(pr)
	}

	// Mid-run: kill worker 1 and bring it back on the same port while
	// producers and heartbeats are pounding it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		addr := workers[1].Addr()
		workers[1].Close()
		var ln net.Listener
		for i := 0; i < 50; i++ {
			if ln, err = net.Listen("tcp", addr); err == nil {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if ln == nil {
			t.Errorf("could not rebind worker port: %v", err)
			workers[1] = nil
			return
		}
		workers[1] = fabric.ServeWorker(ln)
	}()

	// Producers finish, then stop the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("hammer wedged")
	}
	close(stop)
	readerWg.Wait()

	if got, want := eng.Ingested(), producers*batches*rows; got != want {
		t.Errorf("ingested %d rows, want %d — rows lost or double-counted under load", got, want)
	}
	g := eng.GlobalSketch()
	if g == nil {
		t.Fatal("nil global sketch after hammer")
	}
	if g.Sketch().HasNaN() {
		t.Error("final merged sketch is non-finite")
	}
	if g.Seen() != producers*batches*rows {
		t.Errorf("global sketch saw %d rows, want %d", g.Seen(), producers*batches*rows)
	}
}
