package pipeline_test

// Chaos and concurrency coverage for the sharded streaming engine
// behind the Monitor facade: kill/restore against the v3 (per-shard)
// checkpoint format, and a -race hammer mixing batch producers,
// quick-snapshot readers, and periodic checkpoint saves.

import (
	"path/filepath"
	"sync"
	"testing"

	"arams/internal/ckpt"
	"arams/internal/pipeline"
	"arams/internal/sketch"
)

// TestChaosShardedKillRestoreRecovers is the sharded variant of the
// kill/restore acceptance test: a 4-shard monitor is killed mid-stream,
// restored from its last checkpoint (which now carries one ARAMS state
// per shard), and resumed. Every shard's final sketch must match a
// never-killed 4-shard control run bit for bit — routing is by global
// stream index and each shard's sampler RNG rides the checkpoint, so
// recovery is exact per shard, not just in aggregate.
func TestChaosShardedKillRestoreRecovers(t *testing.T) {
	const (
		nFrames    = 60
		w, h       = 6, 6
		window     = 16
		ckptEvery  = 8
		auditEvery = 8
		killAt     = 37
		wantResume = 32
		shards     = 4
	)
	frames := chaosFrames(nFrames, w, h, 177)
	cfg := chaosConfig()
	cfg.Shards = shards
	path := filepath.Join(t.TempDir(), "sharded.ckpt")

	control := pipeline.NewMonitor(cfg, window)
	for i, im := range frames {
		control.Ingest(im, i)
	}

	victimCfg := cfg
	victimCfg.Audit = chaosAuditor()
	victimCfg.AuditEvery = auditEvery
	victim := pipeline.NewMonitor(victimCfg, window)
	for i := 0; i < killAt; i++ {
		victim.Ingest(frames[i], i)
		if (i+1)%ckptEvery == 0 {
			if err := ckpt.Save(path, victim.State()); err != nil {
				t.Fatalf("checkpoint at frame %d: %v", i+1, err)
			}
		}
	}
	// The "kill": only the checkpoint file survives.

	state, err := ckpt.Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	ms, ok := state.(*pipeline.MonitorState)
	if !ok {
		t.Fatalf("Load returned %T, want *pipeline.MonitorState", state)
	}
	if ms.Ingests != wantResume {
		t.Fatalf("checkpoint recorded %d ingests, want %d", ms.Ingests, wantResume)
	}
	if len(ms.Shards) != shards {
		t.Fatalf("checkpoint carries %d shard slots, want %d", len(ms.Shards), shards)
	}
	for i, ss := range ms.Shards {
		if ss == nil {
			t.Fatalf("shard %d has no state after %d round-robin frames", i, wantResume)
		}
	}
	if ms.Audit == nil || ms.Journal == nil {
		t.Fatal("sharded checkpoint lost the audit state")
	}

	restoredCfg := cfg
	restoredCfg.Audit = chaosAuditor()
	restoredCfg.AuditEvery = auditEvery
	restored, err := pipeline.NewMonitorFromState(restoredCfg, ms)
	if err != nil {
		t.Fatalf("NewMonitorFromState: %v", err)
	}
	for i := restored.Ingested(); i < nFrames; i++ {
		restored.Ingest(frames[i], i)
	}

	cs, rs := control.State(), restored.State()
	if rs.Ingests != cs.Ingests {
		t.Fatalf("recovered run ingested %d frames, control %d", rs.Ingests, cs.Ingests)
	}
	if len(rs.Shards) != len(cs.Shards) {
		t.Fatalf("recovered run has %d shards, control %d", len(rs.Shards), len(cs.Shards))
	}
	for i := range rs.Frames {
		if rs.Frames[i].Tag != cs.Frames[i].Tag {
			t.Fatalf("window frame %d: tag %d vs control %d", i, rs.Frames[i].Tag, cs.Frames[i].Tag)
		}
	}
	for si := range cs.Shards {
		cfd, rfd := monitorShardFD(t, cs, si), monitorShardFD(t, rs, si)
		if rfd.Ell != cfd.Ell || rfd.NextZero != cfd.NextZero ||
			rfd.Rotations != cfd.Rotations || rfd.Seen != cfd.Seen {
			t.Fatalf("shard %d sketch shape diverged: %+v vs control %+v", si,
				[4]int{rfd.Ell, rfd.NextZero, rfd.Rotations, rfd.Seen},
				[4]int{cfd.Ell, cfd.NextZero, cfd.Rotations, cfd.Seen})
		}
		for i := range rfd.Buffer {
			if rfd.Buffer[i] != cfd.Buffer[i] {
				t.Fatalf("shard %d buffers diverge at element %d", si, i)
			}
		}
		if err := subspaceErr(cfd, rfd); err > 1e-9 {
			t.Fatalf("shard %d basis subspace error %v > 1e-9", si, err)
		}
	}

	snap := restored.Snapshot()
	if snap == nil {
		t.Fatal("restored sharded monitor returned nil snapshot")
	}
	if len(snap.Tags) != window || snap.Embedding.RowsN != window {
		t.Fatalf("restored snapshot covers %d tags / %d embedded rows, want %d",
			len(snap.Tags), snap.Embedding.RowsN, window)
	}
}

// TestChaosShardedRestoreAdoptsLayout pins the layout rule: restoring a
// 4-shard checkpoint under a config that says Shards=1 must come back
// as 4 shards (the layout is stream state — replaying round-robin
// routing through a different shard count would feed different
// samplers), and continue identically to an undisturbed 4-shard run.
func TestChaosShardedRestoreAdoptsLayout(t *testing.T) {
	const nFrames, w, h, window = 30, 5, 5, 8
	frames := chaosFrames(nFrames, w, h, 311)
	cfg := chaosConfig()
	cfg.Shards = 4

	control := pipeline.NewMonitor(cfg, window)
	first := pipeline.NewMonitor(cfg, window)
	for i, im := range frames {
		control.Ingest(im, i)
		if i < nFrames/2 {
			first.Ingest(im, i)
		}
	}

	mismatched := chaosConfig() // Shards left at default 1
	restored, err := pipeline.NewMonitorFromState(mismatched, first.State())
	if err != nil {
		t.Fatalf("NewMonitorFromState: %v", err)
	}
	for i := restored.Ingested(); i < nFrames; i++ {
		restored.Ingest(frames[i], i)
	}
	cs, rs := control.State(), restored.State()
	if len(rs.Shards) != len(cs.Shards) {
		t.Fatalf("restore kept %d shards, want the checkpoint's %d", len(rs.Shards), len(cs.Shards))
	}
	for si := range cs.Shards {
		cfd, rfd := monitorShardFD(t, cs, si), monitorShardFD(t, rs, si)
		for i := range rfd.Buffer {
			if rfd.Buffer[i] != cfd.Buffer[i] {
				t.Fatalf("shard %d diverged at element %d after layout-adopting restore", si, i)
			}
		}
	}
}

// TestMonitorShardedConcurrentHammer is the facade-level -race hammer
// from the issue: concurrent IngestBatch producers, QuickSnapshot
// readers, and periodic checkpoint Saves against one 4-shard monitor.
func TestMonitorShardedConcurrentHammer(t *testing.T) {
	const (
		producers = 2
		batches   = 6
		batchLen  = 8
		w, h      = 6, 6
		window    = 24
	)
	cfg := pipeline.Config{
		Sketch:    sketch.Config{Ell0: 6, Beta: 0.9, Seed: 21, Eps: 0.25, Nu: 4, RankAdaptive: true},
		LatentDim: 4,
		Shards:    4,
	}
	m := pipeline.NewMonitor(cfg, window)
	dir := t.TempDir()

	var prodWG, readWG sync.WaitGroup
	stop := make(chan struct{})

	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			frames := chaosFrames(batches*batchLen, w, h, uint64(400+p))
			for b := 0; b < batches; b++ {
				ims := frames[b*batchLen : (b+1)*batchLen]
				tags := make([]int, batchLen)
				for i := range tags {
					tags[i] = p*100000 + b*batchLen + i
				}
				m.IngestBatch(ims, tags)
			}
		}(p)
	}

	readWG.Add(1)
	go func() {
		defer readWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if snap := m.QuickSnapshot(); snap != nil {
				if snap.Embedding.RowsN != len(snap.Tags) {
					t.Error("torn snapshot: embedding/tags mismatch")
					return
				}
			}
		}
	}()

	readWG.Add(1)
	go func() {
		defer readWG.Done()
		path := filepath.Join(dir, "hammer.ckpt")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := ckpt.Save(path, m.State()); err != nil {
				t.Errorf("checkpoint save: %v", err)
				return
			}
			state, err := ckpt.Load(path)
			if err != nil {
				t.Errorf("checkpoint load: %v", err)
				return
			}
			if _, err := pipeline.NewMonitorFromState(cfg, state.(*pipeline.MonitorState)); err != nil {
				t.Errorf("mid-stream checkpoint does not restore: %v", err)
				return
			}
		}
	}()

	prodWG.Wait()
	close(stop)
	readWG.Wait()

	if got, want := m.Ingested(), producers*batches*batchLen; got != want {
		t.Fatalf("ingested %d frames, want %d", got, want)
	}
	if snap := m.Snapshot(); snap == nil || len(snap.Tags) != window {
		t.Fatalf("final snapshot missing or wrong window size")
	}
}
