package pipeline

import (
	"math"
	"sort"
	"testing"

	"arams/internal/imgproc"
	"arams/internal/lcls"
	"arams/internal/optics"
	"arams/internal/parallel"
	"arams/internal/sketch"
	"arams/internal/umap"
)

func beamFrames(n int, seed uint64) []lcls.BeamFrame {
	bg := lcls.NewBeamGenerator(lcls.BeamConfig{Size: 32, Seed: seed})
	return bg.Generate(n)
}

func imagesOf(frames []lcls.BeamFrame) []*imgproc.Image {
	out := make([]*imgproc.Image, len(frames))
	for i, f := range frames {
		out[i] = f.Image
	}
	return out
}

func TestProcessShapes(t *testing.T) {
	frames := imagesOf(beamFrames(120, 1))
	cfg := Config{
		Pre:    imgproc.Preprocessor{Normalize: true},
		Sketch: sketch.Config{Ell0: 15, Seed: 2},
		UMAP:   umap.Config{NEpochs: 60, Seed: 3},
	}
	res := Process(frames, cfg)
	if res.Sketch.RowsN != 15 || res.Sketch.ColsN != 32*32 {
		t.Fatalf("sketch shape %d×%d", res.Sketch.RowsN, res.Sketch.ColsN)
	}
	if res.Latent.RowsN != 120 {
		t.Fatalf("latent rows %d", res.Latent.RowsN)
	}
	if res.Embedding.RowsN != 120 || res.Embedding.ColsN != 2 {
		t.Fatalf("embedding shape %d×%d", res.Embedding.RowsN, res.Embedding.ColsN)
	}
	if len(res.Labels) != 120 || len(res.OutlierScores) != 120 {
		t.Fatal("labels/scores length wrong")
	}
	if res.Embedding.HasNaN() || res.Latent.HasNaN() {
		t.Fatal("NaN in pipeline output")
	}
	if res.SketchThroughput <= 0 {
		t.Fatal("throughput not measured")
	}
}

func TestProcessTimingAccounting(t *testing.T) {
	frames := imagesOf(beamFrames(100, 7))
	res := Process(frames, Config{
		Pre:    imgproc.Preprocessor{Normalize: true},
		Sketch: sketch.Config{Ell0: 10, Seed: 8},
		UMAP:   umap.Config{NEpochs: 40, Seed: 9},
	})
	if res.PreprocessTime <= 0 {
		t.Fatal("PreprocessTime not measured")
	}
	if res.SketchTime <= 0 {
		t.Fatal("SketchTime not measured")
	}
	// Throughput must be derived from the sketch phase alone, not from
	// a clock started before preprocessing.
	want := float64(100) / res.SketchTime.Seconds()
	if math.Abs(res.SketchThroughput-want) > 1e-6*want {
		t.Fatalf("SketchThroughput = %v, want rows/SketchTime = %v", res.SketchThroughput, want)
	}
	// The stage ledger must cover every stage and stay within the
	// total: preprocess + sketch phase + visualization stages ≤ total.
	for _, stage := range []string{"preprocess", "sketch", "merge", "pca", "umap", "cluster", "abod", "residuals"} {
		if _, ok := res.StageTimes[stage]; !ok {
			t.Fatalf("StageTimes missing %q: %v", stage, res.StageTimes)
		}
	}
	sum := res.PreprocessTime + res.SketchTime +
		res.StageTimes["pca"] + res.StageTimes["umap"] +
		res.StageTimes["cluster"] + res.StageTimes["abod"] + res.StageTimes["residuals"]
	if sum > res.TotalTime*2 {
		t.Fatalf("stage times (%v) wildly exceed total (%v)", sum, res.TotalTime)
	}
	if res.TotalTime < res.PreprocessTime || res.TotalTime < res.SketchTime {
		t.Fatal("TotalTime smaller than a component stage")
	}
}

func TestProcessParallelMatchesShape(t *testing.T) {
	frames := imagesOf(beamFrames(160, 4))
	cfg := Config{
		Sketch:  sketch.Config{Ell0: 12, Seed: 5},
		Workers: 4,
		Merge:   parallel.TreeMerge,
		UMAP:    umap.Config{NEpochs: 40, Seed: 6},
	}
	res := Process(frames, cfg)
	if res.ParallelStats.Workers != 4 {
		t.Fatalf("workers = %d", res.ParallelStats.Workers)
	}
	if res.ParallelStats.MergeRounds != 2 {
		t.Fatalf("merge rounds = %d", res.ParallelStats.MergeRounds)
	}
	if res.Embedding.HasNaN() {
		t.Fatal("parallel pipeline produced NaN")
	}
}

func TestDiffractionClassesCluster(t *testing.T) {
	// The Fig. 6 claim, made quantitative: frames from distinct
	// quadrant-weight classes must separate into clusters agreeing
	// with ground truth.
	dg := lcls.NewDiffractionGenerator(lcls.DiffractionConfig{
		Size: 48,
		Classes: [][4]float64{
			{1, 1, 1, 1}, {1, 0.1, 1, 0.1}, {0.1, 1, 0.1, 1},
		},
		Seed: 7,
	})
	const n = 180
	frames := make([]*imgproc.Image, n)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		f := dg.NextClass(i % 3)
		frames[i] = f.Image
		truth[i] = i % 3
	}
	cfg := Config{
		Pre:       imgproc.Preprocessor{Normalize: true},
		Sketch:    sketch.Config{Ell0: 20, Seed: 8},
		LatentDim: 10,
		UMAP:      umap.Config{NNeighbors: 20, NEpochs: 150, Seed: 9},
		MinPts:    5,
	}
	res := Process(frames, cfg)
	nc := optics.NumClusters(res.Labels)
	if nc < 2 || nc > 8 {
		t.Fatalf("found %d clusters, want a handful", nc)
	}
	// UMAP may split one class across islands, so the right criterion
	// is purity: every discovered cluster must be dominated by a
	// single quadrant-weight class, over a majority of the points.
	purity, clustered := clusterPurity(res.Labels, truth)
	if clustered < n/2 {
		t.Fatalf("only %d/%d points clustered", clustered, n)
	}
	if purity < 0.9 {
		t.Fatalf("cluster purity %v against quadrant classes", purity)
	}
}

// clusterPurity returns the fraction of clustered points whose cluster
// is dominated by their true class, and the number of clustered points.
func clusterPurity(labels, truth []int) (float64, int) {
	counts := map[int]map[int]int{}
	clustered := 0
	for i, l := range labels {
		if l == optics.Noise {
			continue
		}
		if counts[l] == nil {
			counts[l] = map[int]int{}
		}
		counts[l][truth[i]]++
		clustered++
	}
	if clustered == 0 {
		return 0, 0
	}
	pure := 0
	for _, cc := range counts {
		best := 0
		for _, c := range cc {
			if c > best {
				best = c
			}
		}
		pure += best
	}
	return float64(pure) / float64(clustered), clustered
}

func TestBeamEmbeddingCorrelatesWithFactors(t *testing.T) {
	// The Fig. 5 claim, made quantitative: the embedding must organize
	// by the generative shape factors. We check that distances in
	// embedding space correlate with differences in (offset,
	// circularity) space.
	bg := lcls.NewBeamGenerator(lcls.BeamConfig{
		Size: 32, ModeProb: -1, ExoticFrac: 0, Seed: 10,
	})
	frames := bg.Generate(150)
	imgs := imagesOf(frames)
	cfg := Config{
		Pre:       imgproc.Preprocessor{Normalize: true},
		Sketch:    sketch.Config{Ell0: 15, Seed: 11},
		LatentDim: 8,
		UMAP:      umap.Config{NNeighbors: 12, NEpochs: 150, Seed: 12},
	}
	res := Process(imgs, cfg)
	// Rank correlation between factor distance and embedding distance
	// over sampled pairs.
	var factor, embed []float64
	for i := 0; i < 140; i += 3 {
		for j := i + 1; j < 140; j += 17 {
			fi, fj := frames[i].Params, frames[j].Params
			df := math.Hypot(fi.CenterX-fj.CenterX, fi.CenterY-fj.CenterY) +
				10*math.Abs(fi.Circularity()-fj.Circularity())
			de := math.Hypot(res.Embedding.At(i, 0)-res.Embedding.At(j, 0),
				res.Embedding.At(i, 1)-res.Embedding.At(j, 1))
			factor = append(factor, df)
			embed = append(embed, de)
		}
	}
	if rho := spearman(factor, embed); rho < 0.3 {
		t.Fatalf("embedding distance does not track factor distance: ρ = %v", rho)
	}
}

// spearman computes the Spearman rank correlation of two sequences.
func spearman(a, b []float64) float64 {
	ra := ranks(a)
	rb := ranks(b)
	n := float64(len(a))
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ { // insertion sort by value
		for j := i; j > 0 && v[idx[j]] < v[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	out := make([]float64, len(v))
	for r, i := range idx {
		out[i] = float64(r)
	}
	return out
}

func TestExoticShotsFlaggedAnomalous(t *testing.T) {
	// Exotic beam profiles carry most of their energy outside the
	// sketch's dominant directions, so they must top the reconstruction
	// -residual ranking (the paper's "exotic shapes do not match
	// primary features of the other beam profiles").
	bg := lcls.NewBeamGenerator(lcls.BeamConfig{Size: 32, ExoticFrac: 0, Seed: 13})
	frames := bg.Generate(100)
	// Inject 3 exotic frames from a high-exotic generator.
	ex := lcls.NewBeamGenerator(lcls.BeamConfig{Size: 32, ExoticFrac: 1, Seed: 14})
	exoticIdx := map[int]bool{}
	for _, i := range []int{20, 50, 80} {
		frames[i] = ex.Next()
		exoticIdx[i] = true
	}
	imgs := imagesOf(frames)
	cfg := Config{
		Pre:           imgproc.Preprocessor{Normalize: true},
		Sketch:        sketch.Config{Ell0: 15, Seed: 15},
		LatentDim:     8,
		UMAP:          umap.Config{NNeighbors: 10, NEpochs: 120, Seed: 16},
		Contamination: 0.05, // flag 5 points
	}
	res := Process(imgs, cfg)
	hit := 0
	for _, o := range res.ResidualOutliers {
		if exoticIdx[o] {
			hit++
		}
	}
	if hit < 3 {
		t.Fatalf("only %d/3 exotic shots among residual outliers %v (residuals %v %v %v)",
			hit, res.ResidualOutliers, res.Residuals[20], res.Residuals[50], res.Residuals[80])
	}
	// Exotic residuals must dominate the typical (median) shot by a
	// wide margin.
	var normals []float64
	for i, r := range res.Residuals {
		if !exoticIdx[i] {
			normals = append(normals, r)
		}
	}
	sort.Float64s(normals)
	median := normals[len(normals)/2]
	for _, i := range []int{20, 50, 80} {
		if res.Residuals[i] < 2*median {
			t.Fatalf("exotic %d residual %v not well above median normal %v", i, res.Residuals[i], median)
		}
	}
}

func TestProcessZeroData(t *testing.T) {
	frames := []*imgproc.Image{imgproc.NewImage(8, 8), imgproc.NewImage(8, 8)}
	res := Process(frames, Config{Sketch: sketch.Config{Ell0: 4, Seed: 1}})
	if res.Embedding.RowsN != 2 {
		t.Fatalf("zero-data embedding rows %d", res.Embedding.RowsN)
	}
	for _, l := range res.Labels {
		if l != optics.Noise {
			t.Fatal("zero data should be all noise")
		}
	}
}

func TestMonitorIncremental(t *testing.T) {
	cfg := Config{
		Pre:    imgproc.Preprocessor{Normalize: true},
		Sketch: sketch.Config{Ell0: 10, Seed: 17},
		UMAP:   umap.Config{NNeighbors: 8, NEpochs: 40, Seed: 18},
	}
	m := NewMonitor(cfg, 64)
	if m.Snapshot() != nil {
		t.Fatal("empty monitor produced a snapshot")
	}
	bg := lcls.NewBeamGenerator(lcls.BeamConfig{Size: 24, Seed: 19})
	for i := 0; i < 100; i++ {
		m.Ingest(bg.Next().Image, i)
	}
	if m.Ingested() != 100 {
		t.Fatalf("Ingested = %d", m.Ingested())
	}
	if m.Ell() != 10 {
		t.Fatalf("Ell = %d", m.Ell())
	}
	snap := m.Snapshot()
	if snap == nil {
		t.Fatal("no snapshot")
	}
	// Window keeps the latest 64 frames: tags 36..99.
	if len(snap.Tags) != 64 || snap.Tags[0] != 36 || snap.Tags[63] != 99 {
		t.Fatalf("window tags wrong: len=%d first=%d last=%d", len(snap.Tags), snap.Tags[0], snap.Tags[len(snap.Tags)-1])
	}
	if snap.Embedding.RowsN != 64 || snap.Embedding.HasNaN() {
		t.Fatal("snapshot embedding broken")
	}
	if len(snap.Labels) != 64 || len(snap.OutlierScores) != 64 {
		t.Fatal("snapshot labels/scores wrong length")
	}
}

func TestMonitorConcurrentSnapshot(t *testing.T) {
	cfg := Config{
		Sketch: sketch.Config{Ell0: 8, Seed: 20},
		UMAP:   umap.Config{NNeighbors: 6, NEpochs: 20, Seed: 21},
	}
	m := NewMonitor(cfg, 32)
	bg := lcls.NewBeamGenerator(lcls.BeamConfig{Size: 16, Seed: 22})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 60; i++ {
			m.Ingest(bg.Next().Image, i)
		}
	}()
	for i := 0; i < 5; i++ {
		m.Snapshot() // must not race with Ingest (run with -race)
	}
	<-done
	if snap := m.Snapshot(); snap == nil || len(snap.Tags) != 32 {
		t.Fatal("final snapshot wrong")
	}
}
