package pipeline

import (
	"sync"
	"testing"

	"arams/internal/imgproc"
	"arams/internal/rng"
	"arams/internal/sketch"
	"arams/internal/umap"
)

// TestMonitorConcurrentSnapshots exercises the documented concurrency
// contract — one producer ingesting while two callers alternate
// Snapshot and QuickSnapshot — so the cachedModel/cachedEll handoff
// between the two snapshot paths runs under the race detector.
func TestMonitorConcurrentSnapshots(t *testing.T) {
	cfg := Config{
		Sketch: sketch.Config{Ell0: 4, Seed: 40},
		UMAP:   umap.Config{NNeighbors: 4, NEpochs: 5, Seed: 41},
		MinPts: 3,
	}
	m := NewMonitor(cfg, 24)
	g := rng.New(42)

	const frames = 90
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < frames; i++ {
			im := imgproc.NewImage(6, 6)
			for p := range im.Pix {
				im.Pix[p] = g.Float64()
			}
			m.Ingest(im, i)
		}
	}()

	snapshotter := func(quick bool) {
		defer wg.Done()
		last := false
		for {
			select {
			case <-done:
				// Producer finished: take one final snapshot so each
				// path runs at least once even if ingest outran us.
				if last {
					return
				}
				last = true
			default:
			}
			var snap *Snapshot
			if quick {
				snap = m.QuickSnapshot()
			} else {
				snap = m.Snapshot()
			}
			if snap == nil {
				continue // nothing ingested yet
			}
			if snap.Embedding == nil || snap.Embedding.RowsN != len(snap.Tags) {
				t.Errorf("snapshot shape mismatch: %d embedding rows, %d tags",
					snap.Embedding.RowsN, len(snap.Tags))
				return
			}
			if snap.Embedding.HasNaN() {
				t.Error("snapshot embedding has NaN")
				return
			}
		}
	}
	wg.Add(2)
	go snapshotter(false)
	go snapshotter(true)
	wg.Wait()

	if got := m.Ingested(); got != frames {
		t.Fatalf("ingested = %d, want %d", got, frames)
	}
	final := m.Snapshot()
	if final == nil || len(final.Tags) != 24 {
		t.Fatalf("final snapshot window = %v, want 24 tags", final)
	}
	if final.Outliers == nil {
		t.Fatal("final snapshot Outliers is nil")
	}
}

// TestMonitorQuickSnapshotRankGrowthHammer drives the exact interleaving
// behind the QuickSnapshot check-then-act race: a rank-adaptive sketch
// fed full-rank frames grows ℓ while several goroutines hammer
// QuickSnapshot. With the old two-lock version, an Ingest between the
// staleness check and the window copy could hand a freshly-widened basis
// to a model fitted at the old rank, and Transform would panic on the
// dimension mismatch. Run under -race this also validates the locking.
func TestMonitorQuickSnapshotRankGrowthHammer(t *testing.T) {
	cfg := Config{
		Sketch: sketch.Config{
			Ell0:         2,
			Nu:           2,
			Eps:          0.05,
			RankAdaptive: true,
			Seed:         50,
		},
		UMAP:   umap.Config{NNeighbors: 3, NEpochs: 5, Seed: 51},
		MinPts: 3,
	}
	m := NewMonitor(cfg, 16)
	g := rng.New(52)

	const frames = 120
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < frames; i++ {
			// Full-rank Gaussian frames keep the residual estimate above
			// Eps, so the sketch rank keeps growing throughout the run.
			im := imgproc.NewImage(8, 8)
			for p := range im.Pix {
				im.Pix[p] = g.Norm()
			}
			m.Ingest(im, i)
		}
	}()

	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := false
			for {
				select {
				case <-done:
					if last {
						return
					}
					last = true
				default:
				}
				snap := m.QuickSnapshot()
				if snap == nil {
					continue
				}
				if snap.Embedding == nil || snap.Embedding.RowsN != len(snap.Tags) {
					t.Errorf("snapshot shape mismatch: %d embedding rows, %d tags",
						snap.Embedding.RowsN, len(snap.Tags))
					return
				}
				if snap.Embedding.HasNaN() {
					t.Error("snapshot embedding has NaN")
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := m.Ingested(); got != frames {
		t.Fatalf("ingested = %d, want %d", got, frames)
	}
	if ell := m.Ell(); ell <= cfg.Sketch.Ell0 {
		t.Fatalf("sketch rank never grew (ℓ = %d); the hammer exercised nothing", ell)
	}
}
