// Package pipeline assembles the paper's full monitoring framework
// (Fig. 4): batches of detector images are preprocessed, sketched in
// parallel with ARAMS, merged into a global summary, projected onto the
// sketch's principal directions, embedded in 2-D with UMAP, and finally
// clustered with OPTICS and screened for anomalies with ABOD.
package pipeline

import (
	"math"
	"sort"
	"time"

	"arams/internal/abod"
	"arams/internal/audit"
	"arams/internal/engine"
	"arams/internal/hdbscan"
	"arams/internal/imgproc"
	"arams/internal/mat"
	"arams/internal/obs"
	"arams/internal/optics"
	"arams/internal/parallel"
	"arams/internal/pca"
	"arams/internal/sketch"
	"arams/internal/umap"
)

// Pipeline-level observability: one counter per entry point plus the
// per-stage duration histograms fed by obs spans (stage names
// preprocess, sketch, merge, pca, umap, cluster, abod, residuals).
var obsRuns = obs.Default().Counter("arams_pipeline_runs_total")

// Config parameterizes the full pipeline. Zero values select sensible
// defaults for every stage.
type Config struct {
	// Pre is the per-frame preprocessing chain.
	Pre imgproc.Preprocessor
	// Sketch configures ARAMS. Ell0 defaults to 20.
	Sketch sketch.Config
	// Workers is the number of parallel sketch shards (default 1).
	Workers int
	// Merge selects the sketch merge strategy (default TreeMerge).
	Merge parallel.MergeStrategy
	// LatentDim is the PCA projection dimension (default 20, clamped
	// to the sketch rank).
	LatentDim int
	// UMAP configures the 2-D embedding stage.
	UMAP umap.Config
	// MinPts is the OPTICS/HDBSCAN density parameter (default 5).
	MinPts int
	// UseHDBSCAN selects HDBSCAN* instead of OPTICS for the clustering
	// stage (no radius parameter needed at all).
	UseHDBSCAN bool
	// ClusterEps is the OPTICS reachability cut for cluster extraction;
	// 0 selects ξ extraction with Xi (below) instead.
	ClusterEps float64
	// Xi is the steep-area parameter for ξ extraction (default 0.15).
	Xi float64
	// MinClusterSize for ξ extraction (default 4·MinPts).
	MinClusterSize int
	// ABODNeighbors is k for FastABOD scoring (default 10).
	ABODNeighbors int
	// Contamination is the outlier fraction to flag (default 0.02).
	Contamination float64
	// Audit, when set, receives sketch-quality observations: batch
	// pipeline runs feed one per run (certificate + mean projection
	// residual), and a Monitor feeds one every AuditEvery ingested
	// frames plus rank-growth journal events. nil disables auditing.
	Audit *audit.Auditor
	// AuditEvery is the Monitor's frame interval between audit points
	// (default 32). Audit points are cheap — they reuse the per-batch
	// accounting the sketch already keeps — but an interval keeps the
	// journal and detector cadence independent of the repetition rate.
	AuditEvery int
	// Shards is the Monitor's streaming-engine shard count (default 1):
	// the number of independent sketchers ingest is routed across. One
	// shard is bit-identical to the pre-engine serial monitor; more
	// shards sketch concurrently and reconcile into a global sketch via
	// the tree merge, with certificates composing across shards. (The
	// batch Process path has its own Workers knob above.)
	Shards int
	// IngestBuffer bounds the engine's async Enqueue queue (default
	// 256). Producers block when it is full — backpressure, not drops.
	IngestBuffer int
	// ReconcileEvery is the frame interval between proactive shard
	// reconciles (default 128); snapshot paths reconcile on demand
	// regardless.
	ReconcileEvery int
	// ReconcileFixed reverts the engine to the fixed ReconcileEvery
	// merge countdown. The default (false) is the staleness-driven
	// controller: merges happen when the shards' marginal Σδ growth
	// says the cached global sketch is stale. The post-drain sketch
	// and certificate are identical either way.
	ReconcileFixed bool
	// Tenant, when non-empty, scopes the Monitor's engine metrics with
	// a tenant="<id>" label (set by the multi-tenant registry). Empty
	// keeps the process-wide unlabeled series.
	Tenant string
	// FrameBudget is the Monitor's per-frame wall-time SLO, amortized
	// over each ingest batch (default one 120 Hz machine period;
	// negative disables). Misses are counted, journaled as
	// deadline_miss events, and a sustained burn fires the flight
	// recorder.
	FrameBudget time.Duration
	// BurnThreshold is the EWMA budget burn rate that trips the flight
	// recorder (default 2.0).
	BurnThreshold float64
	// Backends, when non-empty, supplies the Monitor's engine shard
	// backends directly and overrides Shards — the distributed-fabric
	// hook (see internal/fabric): slot i is shard i, and the caller
	// (e.g. cmd/lclsmon's fabric mode) must configure backend i with
	// engine.ShardSketchConfig(Sketch, i) so routing and RNG semantics
	// match an all-local monitor.
	Backends []engine.Backend
	// ReconcileRetry is the engine's per-leg retry policy for shard
	// snapshot fetches during reconciles. Local shards never fail, so
	// this only matters with remote Backends.
	ReconcileRetry parallel.Retry
}

func (c Config) withDefaults() Config {
	if c.Sketch.Ell0 <= 0 {
		c.Sketch.Ell0 = 20
	}
	if c.Sketch.Beta <= 0 {
		c.Sketch.Beta = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.LatentDim <= 0 {
		c.LatentDim = 20
	}
	if c.MinPts <= 0 {
		c.MinPts = 5
	}
	if c.Xi <= 0 {
		c.Xi = 0.15
	}
	if c.MinClusterSize <= 0 {
		c.MinClusterSize = 4 * c.MinPts
	}
	if c.ABODNeighbors <= 0 {
		c.ABODNeighbors = 10
	}
	if c.Contamination <= 0 {
		c.Contamination = 0.02
	}
	if c.AuditEvery <= 0 {
		c.AuditEvery = 32
	}
	return c
}

// Result carries every artifact of a pipeline run.
type Result struct {
	// Sketch is the merged global ℓ×d sketch matrix.
	Sketch *mat.Matrix
	// Basis is the k×d latent basis (right singular vectors).
	Basis *mat.Matrix
	// Latent is the n×k projection of the input.
	Latent *mat.Matrix
	// Embedding is the n×2 UMAP embedding.
	Embedding *mat.Matrix
	// Labels are OPTICS cluster labels (optics.Noise = −1 for noise).
	Labels []int
	// OutlierScores are per-point ABOF values on the embedding
	// (low = anomalous).
	OutlierScores []float64
	// Outliers are the ABOD-flagged indices, most anomalous first.
	Outliers []int
	// Residuals are per-frame relative reconstruction errors
	// ‖x − VᵀVx‖²/‖x‖² against the sketch basis (high = anomalous).
	// Frames whose shape is not captured by the dominant directions —
	// the paper's "exotic beam profiles" — stand out here even when the
	// 2-D embedding pulls them into the cloud.
	Residuals []float64
	// ResidualOutliers are the Contamination·n highest-residual
	// indices, most anomalous first.
	ResidualOutliers []int
	// ParallelStats reports the sketch/merge phase accounting.
	ParallelStats parallel.Stats
	// SketchThroughput is frames/second through the sketch+merge phase
	// (it excludes preprocessing; see PreprocessTime).
	SketchThroughput float64
	// PreprocessTime is the wall time of the per-frame preprocessing
	// loop. Zero when the caller entered below preprocessing (e.g.
	// ProcessMatrix on an already-flattened matrix).
	PreprocessTime time.Duration
	// SketchTime is the wall time of the sketch+merge phase.
	SketchTime time.Duration
	// StageTimes maps each executed stage ("preprocess", "sketch",
	// "merge", "pca", "umap", "cluster", "abod", "residuals") to its
	// wall time, so PreprocessTime + SketchTime + the visualization
	// stages reconcile with TotalTime.
	StageTimes map[string]time.Duration
	// TotalTime is the wall time of the full run.
	TotalTime time.Duration
}

// Process runs the batch pipeline on a set of frames. Preprocessing is
// a Stage like everything downstream, fanned out per frame on the
// shared worker pool (Preprocessor.Apply works on a copy, so frames
// preprocess independently).
func Process(frames []*imgproc.Image, cfg Config) *Result {
	cfg = cfg.withDefaults()
	start := time.Now()

	var x *mat.Matrix
	times := engine.RunStages([]engine.Stage{
		{Name: "preprocess", Run: func() {
			pre := make([]*imgproc.Image, len(frames))
			mat.ParallelFor(len(frames), 1, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					pre[i] = cfg.Pre.Apply(frames[i])
				}
			})
			x = imgproc.ToMatrix(pre)
		}},
	})

	res := ProcessMatrix(x, cfg)
	res.PreprocessTime = times["preprocess"]
	res.StageTimes["preprocess"] = times["preprocess"]
	res.TotalTime = time.Since(start)
	return res
}

// ProcessMatrix runs the pipeline on an already-flattened data matrix
// (rows are observations).
func ProcessMatrix(x *mat.Matrix, cfg Config) *Result {
	cfg = cfg.withDefaults()
	obsRuns.Inc()
	start := time.Now()
	res := &Result{}

	// Stage 1: parallel ARAMS sketch with merge. parallel.Run records
	// the "sketch" and "merge" spans; its Stats give the split.
	shards := parallel.SplitRows(x, cfg.Workers)
	sketcher := func(shard *mat.Matrix) *sketch.FrequentDirections {
		a := sketch.NewARAMS(cfg.Sketch, shard.ColsN, shard.RowsN)
		a.ProcessBatch(shard)
		return a.FD()
	}
	global, stats := parallel.Run(shards, sketcher, cfg.Merge)
	res.ParallelStats = stats
	res.Sketch = global.Sketch()
	res.SketchTime = stats.Total
	if stats.Total > 0 {
		res.SketchThroughput = float64(x.RowsN) / stats.Total.Seconds()
	}

	// Stages 2–5: projection, UMAP, OPTICS, anomaly detection.
	k := cfg.LatentDim
	if k > global.Ell() {
		k = global.Ell()
	}
	basis := global.Basis(k)
	viz := ProcessMatrixWithBasis(x, basis, cfg)
	viz.Sketch = res.Sketch
	viz.ParallelStats = res.ParallelStats
	viz.SketchTime = res.SketchTime
	viz.SketchThroughput = res.SketchThroughput
	viz.StageTimes["sketch"] = stats.SketchTime
	viz.StageTimes["merge"] = stats.MergeTime
	if cfg.Audit != nil {
		// One audit point per run: the merged sketch's certificate plus
		// the mean projection residual the visualization stage already
		// computed (an exact residual — the batch path can afford it).
		mean := 0.0
		if len(viz.Residuals) > 0 {
			for _, r := range viz.Residuals {
				mean += r
			}
			mean /= float64(len(viz.Residuals))
		}
		cfg.Audit.Observe(audit.Observation{
			Residual:   mean,
			AcceptRate: math.NaN(), // per-shard sampling stats are not folded
			Cert:       stats.Certificate,
		})
	}
	viz.TotalTime = time.Since(start)
	return viz
}

// ProcessMatrixWithBasis runs only the visualization stages —
// projection onto a precomputed basis, UMAP, OPTICS, ABOD — skipping
// the sketch. This is the path an online monitor takes when refreshing
// the operator view from an already-maintained sketch.
func ProcessMatrixWithBasis(x, basis *mat.Matrix, cfg Config) *Result {
	cfg = cfg.withDefaults()
	start := time.Now()
	res := &Result{Basis: basis, StageTimes: make(map[string]time.Duration)}
	if basis.RowsN == 0 {
		// Degenerate basis (all-zero sketch): every downstream artifact
		// is present but empty, so callers and the JSON/HTML expositions
		// never see a nil slice on this path.
		res.Latent = mat.New(x.RowsN, 0)
		res.Embedding = mat.New(x.RowsN, 2)
		res.Labels = make([]int, x.RowsN)
		for i := range res.Labels {
			res.Labels[i] = optics.Noise
		}
		res.OutlierScores = make([]float64, x.RowsN)
		res.Outliers = []int{}
		res.Residuals = make([]float64, x.RowsN)
		res.ResidualOutliers = []int{}
		res.TotalTime = time.Since(start)
		return res
	}

	// The visualization stages as composable Stage values: each closes
	// over the Result, the engine executor contributes spans + timing.
	proj := pca.NewProjector(basis)
	times := engine.RunStages([]engine.Stage{
		{Name: "pca", Run: func() { res.Latent = proj.Project(x) }},
		{Name: "umap", Run: func() { res.Embedding = umap.Fit(res.Latent, cfg.UMAP) }},
		{Name: "cluster", Run: func() { res.Labels = clusterEmbedding(res.Embedding, cfg) }},
		{Name: "abod", Run: func() {
			res.OutlierScores = abod.Scores(res.Embedding, cfg.ABODNeighbors)
			res.Outliers = abod.Outliers(res.OutlierScores, cfg.Contamination)
		}},
		{Name: "residuals", Run: func() {
			res.Residuals = residuals(x, res.Latent)
			res.ResidualOutliers = topResiduals(res.Residuals, cfg.Contamination)
		}},
	})
	for name, d := range times {
		res.StageTimes[name] = d
	}
	res.TotalTime = time.Since(start)
	return res
}

// clusterEmbedding runs the configured clustering backend on the 2-D
// embedding.
func clusterEmbedding(emb *mat.Matrix, cfg Config) []int {
	if cfg.UseHDBSCAN {
		return hdbscan.Cluster(emb, cfg.MinPts, cfg.MinClusterSize).Labels
	}
	opt := optics.Run(emb, cfg.MinPts, math.Inf(1))
	if cfg.ClusterEps > 0 {
		return opt.ExtractDBSCAN(cfg.ClusterEps)
	}
	return opt.ExtractXi(cfg.Xi, cfg.MinPts, cfg.MinClusterSize)
}

// residuals returns per-row relative reconstruction errors from the
// already-computed latent projection: row i of latent holds the basis
// coefficients of row i of x (the basis rows are orthonormal), so
// ‖x − VᵀVx‖² = ‖x‖² − ‖c‖² with no further matrix-vector products —
// the PCA stage's blocked MulABt already did that work once.
func residuals(x, latent *mat.Matrix) []float64 {
	out := make([]float64, x.RowsN)
	for i := 0; i < x.RowsN; i++ {
		den := mat.Norm2Sq(x.Row(i))
		if den == 0 {
			continue
		}
		r := den - mat.Norm2Sq(latent.Row(i))
		if r < 0 {
			r = 0
		}
		out[i] = r / den
	}
	return out
}

// topResiduals returns the ⌈contamination·n⌉ highest-residual indices,
// descending.
func topResiduals(res []float64, contamination float64) []int {
	n := len(res)
	m := int(math.Ceil(contamination * float64(n)))
	if m > n {
		m = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if res[idx[a]] != res[idx[b]] {
			return res[idx[a]] > res[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:m]
}
