package pipeline

import (
	"testing"

	"arams/internal/lcls"
	"arams/internal/sketch"
	"arams/internal/umap"
)

func TestQuickSnapshotAfterFullSnapshot(t *testing.T) {
	cfg := Config{
		Sketch: sketch.Config{Ell0: 10, Seed: 50},
		UMAP:   umap.Config{NNeighbors: 8, NEpochs: 60, Seed: 51},
	}
	m := NewMonitor(cfg, 64)
	bg := lcls.NewBeamGenerator(lcls.BeamConfig{Size: 24, Seed: 52})
	for i := 0; i < 80; i++ {
		m.Ingest(bg.Next().Image, i)
	}
	full := m.Snapshot()
	if full == nil {
		t.Fatal("no full snapshot")
	}
	// Ingest a few more frames, then take the quick path.
	for i := 80; i < 90; i++ {
		m.Ingest(bg.Next().Image, i)
	}
	quick := m.QuickSnapshot()
	if quick == nil {
		t.Fatal("no quick snapshot")
	}
	if quick.Embedding.HasNaN() {
		t.Fatal("quick snapshot has NaN")
	}
	if len(quick.Tags) != 64 || quick.Tags[63] != 89 {
		t.Fatalf("quick snapshot window wrong: last tag %d", quick.Tags[len(quick.Tags)-1])
	}
	if len(quick.Labels) != 64 || len(quick.OutlierScores) != 64 {
		t.Fatal("quick snapshot stages incomplete")
	}
}

func TestQuickSnapshotFallsBackWhenStale(t *testing.T) {
	// Without a prior full snapshot, QuickSnapshot must behave like
	// Snapshot (and cache a model for next time).
	cfg := Config{
		Sketch: sketch.Config{Ell0: 6, Seed: 53},
		UMAP:   umap.Config{NNeighbors: 6, NEpochs: 30, Seed: 54},
	}
	m := NewMonitor(cfg, 32)
	if m.QuickSnapshot() != nil {
		t.Fatal("empty monitor produced a snapshot")
	}
	bg := lcls.NewBeamGenerator(lcls.BeamConfig{Size: 16, Seed: 55})
	for i := 0; i < 40; i++ {
		m.Ingest(bg.Next().Image, i)
	}
	snap := m.QuickSnapshot() // no cached model yet → full path
	if snap == nil || snap.Embedding.HasNaN() {
		t.Fatal("fallback quick snapshot broken")
	}
	if m.cachedModel == nil {
		t.Fatal("fallback did not cache a model")
	}
}

func TestQuickSnapshotInvalidatedByRankGrowth(t *testing.T) {
	// A rank-adaptive monitor whose ℓ grows must refit rather than
	// transform into a stale latent space.
	cfg := Config{
		Sketch: sketch.Config{Ell0: 4, Nu: 4, Eps: 0.01, RankAdaptive: true, Seed: 56},
		UMAP:   umap.Config{NNeighbors: 6, NEpochs: 30, Seed: 57},
	}
	m := NewMonitor(cfg, 32)
	bg := lcls.NewBeamGenerator(lcls.BeamConfig{Size: 16, Seed: 58})
	for i := 0; i < 20; i++ {
		m.Ingest(bg.Next().Image, i)
	}
	m.Snapshot()
	ellBefore := m.cachedEll
	for i := 20; i < 120; i++ {
		m.Ingest(bg.Next().Image, i)
	}
	if m.Ell() == ellBefore {
		t.Skip("rank did not grow with this data; invalidation untestable here")
	}
	snap := m.QuickSnapshot()
	if snap == nil {
		t.Fatal("no snapshot")
	}
	// After the fallback refit, the cache must reflect the new rank.
	if m.cachedEll != m.Ell() {
		t.Fatalf("cache not refreshed: cachedEll %d vs Ell %d", m.cachedEll, m.Ell())
	}
}
