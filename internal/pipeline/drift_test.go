package pipeline_test

// Drift-injection chaos test for the audit layer: a monitor fed a
// stationary low-rank stream must stay silent, and the same monitor
// fed an injected distribution shift (full-rank high-energy frames the
// sketched subspace cannot represent) must raise a journaled residual
// alarm within a bounded number of audit batches, visible over the
// /audit endpoint.

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"

	"arams/internal/audit"
	"arams/internal/imgproc"
	"arams/internal/mat"
	"arams/internal/obs"
	"arams/internal/pipeline"
	"arams/internal/rng"
	"arams/internal/sketch"
)

const (
	driftW, driftH  = 6, 6
	driftAuditEvery = 4
)

// stationaryFrame draws from a fixed rank-2 signal family with tiny
// noise — the "normal operation" regime the sketch captures almost
// exactly, so per-batch shrinkage residuals sit near zero.
func stationaryFrame(g *rng.RNG) *imgproc.Image {
	im := imgproc.NewImage(driftW, driftH)
	a := 1 + 0.5*g.Float64()
	b := 1 + 0.5*g.Float64()
	for y := 0; y < driftH; y++ {
		for x := 0; x < driftW; x++ {
			p1 := 1 / (1 + float64(x+y))
			p2 := float64(x-y) / 5
			im.Set(x, y, a*p1+b*p2+0.001*g.Norm())
		}
	}
	return im
}

// driftFrame is the injected shift: isotropic high-energy noise, full
// rank, far outside the stationary subspace — the sketch must shed
// mass on every rotation, which is exactly what the residual detector
// watches.
func driftFrame(g *rng.RNG) *imgproc.Image {
	im := imgproc.NewImage(driftW, driftH)
	for y := 0; y < driftH; y++ {
		for x := 0; x < driftW; x++ {
			im.Set(x, y, 3*g.Norm())
		}
	}
	return im
}

// driftAuditor builds an auditor with its own journal/registry and a
// fast-warmup residual detector suitable for short test streams.
func driftAuditor(onAlarm func(audit.Alarm)) (*audit.Auditor, *audit.Journal) {
	j := audit.NewJournal(256)
	a := audit.New(audit.Config{
		Residual:  &audit.PageHinkley{Delta: 0.01, Lambda: 0.05, MinSamples: 3},
		Accept:    &audit.PageHinkley{Delta: 0.01, Lambda: 0.05, MinSamples: 3},
		Journal:   j,
		Registry:  obs.NewRegistry(),
		OnAlarm:   onAlarm,
		CertEvery: 8,
	})
	return a, j
}

func driftConfig(a *audit.Auditor) pipeline.Config {
	return pipeline.Config{
		Sketch:     sketch.Config{Ell0: 8, Seed: 5},
		LatentDim:  4,
		Audit:      a,
		AuditEvery: driftAuditEvery,
	}
}

// TestChaosInjectedDriftAlarms is the drift acceptance test: 120
// stationary frames (30 audit batches) raise no alarm; 40 injected
// drift frames raise a residual alarm within 6 audit batches of the
// shift, the alarm is journaled, and the /audit endpoint serves it.
func TestChaosInjectedDriftAlarms(t *testing.T) {
	const stationaryN, driftN = 120, 40
	var alarms []audit.Alarm
	auditor, journal := driftAuditor(func(al audit.Alarm) { alarms = append(alarms, al) })
	m := pipeline.NewMonitor(driftConfig(auditor), 16)

	g := rng.New(1234)
	for i := 0; i < stationaryN; i++ {
		m.Ingest(stationaryFrame(g), i)
	}
	stationaryBatches := auditor.Batches()
	if stationaryBatches != stationaryN/driftAuditEvery {
		t.Fatalf("stationary phase produced %d audit batches, want %d",
			stationaryBatches, stationaryN/driftAuditEvery)
	}
	if auditor.Alarms() != 0 {
		t.Fatalf("stationary stream raised %d alarms: %+v", auditor.Alarms(), alarms)
	}

	for i := 0; i < driftN; i++ {
		m.Ingest(driftFrame(g), stationaryN+i)
	}
	if len(alarms) == 0 {
		t.Fatal("injected drift raised no alarm")
	}
	first := alarms[0]
	if first.Signal != "residual" {
		t.Fatalf("first alarm signal = %q, want residual", first.Signal)
	}
	if first.Batch <= stationaryBatches {
		t.Fatalf("alarm batch %d predates the drift (stationary ended at batch %d)",
			first.Batch, stationaryBatches)
	}
	if detectDelay := first.Batch - stationaryBatches; detectDelay > 6 {
		t.Fatalf("drift detected only after %d audit batches, want ≤ 6", detectDelay)
	}

	evs := journal.Query(audit.Query{Kind: audit.KindAlarm})
	if len(evs) == 0 {
		t.Fatal("alarm was not journaled")
	}
	if evs[0].Seq != first.Seq || evs[0].Get("batch", -1) != float64(first.Batch) {
		t.Fatalf("journaled alarm %+v does not match callback %+v", evs[0], first)
	}

	// The alarm must be visible over the /audit endpoint.
	rec := httptest.NewRecorder()
	audit.Handler(auditor, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/audit?kind=alarm", nil))
	var resp struct {
		Alarms int64         `json:"alarms"`
		Events []audit.Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("/audit returned invalid JSON: %v", err)
	}
	if resp.Alarms != auditor.Alarms() || len(resp.Events) == 0 {
		t.Fatalf("/audit served alarms=%d events=%d, want %d/≥1", resp.Alarms, len(resp.Events), auditor.Alarms())
	}
	for _, ev := range resp.Events {
		if ev.Kind != audit.KindAlarm {
			t.Fatalf("/audit?kind=alarm leaked a %q event", ev.Kind)
		}
	}
}

// TestChaosStationaryStreamStaysSilent is the control: the full stream
// length with no injected shift must produce zero alarms end to end.
func TestChaosStationaryStreamStaysSilent(t *testing.T) {
	auditor, journal := driftAuditor(nil)
	m := pipeline.NewMonitor(driftConfig(auditor), 16)
	g := rng.New(1234)
	for i := 0; i < 160; i++ {
		m.Ingest(stationaryFrame(g), i)
	}
	if auditor.Alarms() != 0 {
		t.Fatalf("stationary control run raised %d alarms", auditor.Alarms())
	}
	if evs := journal.Query(audit.Query{Kind: audit.KindAlarm}); len(evs) != 0 {
		t.Fatalf("stationary control run journaled alarms: %+v", evs)
	}
	// Certificates still flowed on cadence.
	if auditor.Batches() != 40 {
		t.Fatalf("control run audited %d batches, want 40", auditor.Batches())
	}
	if evs := journal.Query(audit.Query{Kind: audit.KindCertificate}); len(evs) != 5 {
		t.Fatalf("control run journaled %d certificates, want 5 (every 8 of 40 batches)", len(evs))
	}
}

// TestBatchPipelineAuditPoint: the batch entry point feeds exactly one
// audit observation per run — the merged certificate plus the exact
// mean projection residual.
func TestBatchPipelineAuditPoint(t *testing.T) {
	auditor, _ := driftAuditor(nil)
	g := rng.New(2)
	x := mat.RandGaussian(60, 12, g)
	cfg := pipeline.Config{
		Sketch:    sketch.Config{Ell0: 6, Seed: 3},
		LatentDim: 4,
		Audit:     auditor,
	}
	res := pipeline.ProcessMatrix(x, cfg)
	if auditor.Batches() != 1 {
		t.Fatalf("batch run produced %d audit points, want 1", auditor.Batches())
	}
	cert := auditor.LastCertificate()
	if cert.Rows != 60 || cert.Dim != 12 {
		t.Fatalf("audit certificate %d×%d, want 60×12", cert.Rows, cert.Dim)
	}
	if cert != res.ParallelStats.Certificate {
		t.Fatalf("audit certificate %+v != run certificate %+v", cert, res.ParallelStats.Certificate)
	}
	wantMean := 0.0
	for _, r := range res.Residuals {
		wantMean += r
	}
	wantMean /= float64(len(res.Residuals))
	if math.IsNaN(wantMean) {
		t.Fatal("run produced NaN residuals")
	}
}
