package pipeline

import (
	"sync"
	"time"

	"arams/internal/abod"
	"arams/internal/audit"
	"arams/internal/imgproc"
	"arams/internal/mat"
	"arams/internal/obs"
	"arams/internal/optics"
	"arams/internal/pca"
	"arams/internal/sketch"
	"arams/internal/umap"
)

// Online-monitor observability: per-frame ingest latency, live window
// and sketch-rank gauges, and full-vs-quick snapshot counters. A
// QuickSnapshot that falls back to a refit increments both counters —
// the "full" count is refits, the "quick" count is calls.
var (
	obsIngestLatency = obs.Default().Histogram("arams_monitor_ingest_seconds")
	obsFramesTotal   = obs.Default().Counter("arams_monitor_frames_total")
	obsWindowSize    = obs.Default().Gauge("arams_monitor_window_size")
	obsMonitorEll    = obs.Default().Gauge("arams_monitor_sketch_ell")
	obsSnapFull      = obs.Default().Counter("arams_monitor_snapshots_total", obs.L("kind", "full"))
	obsSnapQuick     = obs.Default().Counter("arams_monitor_snapshots_total", obs.L("kind", "quick"))
)

// Monitor is the online form of the pipeline: frames stream in
// one-by-one (e.g. from the event builder at the machine repetition
// rate), the ARAMS sketch updates incrementally, and at any moment a
// Snapshot produces the current latent embedding, clustering, and
// anomaly scores over a sliding window of recent frames — the "live
// view" an instrument operator would watch.
//
// Monitor is safe for one concurrent producer (Ingest) and concurrent
// Snapshot callers.
type Monitor struct {
	cfg    Config
	window int

	mu      sync.Mutex
	arams   *sketch.ARAMS
	recent  []*recentFrame // ring of preprocessed frames, newest last
	ingests int

	// Audit accumulation: per-frame BatchStats fold into auditAcc and
	// are flushed to cfg.Audit every cfg.AuditEvery frames, so auditing
	// adds no linear algebra to the ingest hot path. lastEll tracks
	// rank growth for journaling.
	auditAcc sketch.BatchStats
	lastEll  int

	// Cached UMAP model for QuickSnapshot: new window points are
	// Transform-ed into the last full embedding instead of refitting,
	// as long as the sketch rank has not changed.
	cachedModel *umap.Model
	cachedEll   int
}

type recentFrame struct {
	vec []float64
	tag int // caller-supplied tag (e.g. pulse ID low bits or label)
}

// NewMonitor creates an online monitor keeping a sliding window of the
// given size for snapshots. The sketch itself summarizes the *entire*
// stream, not just the window.
func NewMonitor(cfg Config, window int) *Monitor {
	cfg = cfg.withDefaults()
	if window <= 0 {
		window = 1024
	}
	return &Monitor{cfg: cfg, window: window}
}

// Ingest preprocesses one frame and feeds it to the sketch. tag is an
// arbitrary caller identifier returned with snapshot rows.
func (m *Monitor) Ingest(im *imgproc.Image, tag int) {
	start := time.Now()
	pre := m.cfg.Pre.Apply(im)
	vec := append([]float64(nil), pre.Flatten()...)

	m.mu.Lock()
	if m.arams == nil {
		m.arams = sketch.NewARAMS(m.cfg.Sketch, len(vec), 0)
		m.lastEll = m.arams.Ell()
	}
	bs := m.arams.ProcessBatch(mat.FromData(1, len(vec), vec))
	cp := recentFrame{vec: vec, tag: tag}
	m.recent = append(m.recent, &cp)
	if len(m.recent) > m.window {
		m.recent = m.recent[len(m.recent)-m.window:]
	}
	m.ingests++
	window, ell, ingests := len(m.recent), m.arams.Ell(), m.ingests
	grewFrom := 0
	var flush sketch.BatchStats
	var flushCert audit.Certificate
	flushDue := false
	if m.cfg.Audit != nil {
		if ell > m.lastEll {
			grewFrom = m.lastEll
		}
		m.auditAcc.Rows += bs.Rows
		m.auditAcc.Kept += bs.Kept
		m.auditAcc.TotalMass += bs.TotalMass
		m.auditAcc.KeptMass += bs.KeptMass
		m.auditAcc.DeltaAdded += bs.DeltaAdded
		if ingests%m.cfg.AuditEvery == 0 {
			flushDue = true
			flush = m.auditAcc
			flush.EllBefore, flush.EllAfter = m.auditAcc.EllBefore, ell
			flushCert = audit.FromSketch(m.arams.FD())
			m.auditAcc = sketch.BatchStats{EllBefore: ell}
		}
	}
	m.lastEll = ell
	m.mu.Unlock()

	if grewFrom > 0 {
		m.cfg.Audit.Journal().Record(audit.KindRankGrow, "sketch rank grew",
			audit.A("from", float64(grewFrom)),
			audit.A("to", float64(ell)),
			audit.A("frames", float64(ingests)))
	}
	if flushDue {
		m.cfg.Audit.ObserveBatch(flush, flushCert)
	}

	obsFramesTotal.Inc()
	obsWindowSize.SetInt(window)
	obsMonitorEll.SetInt(ell)
	obsIngestLatency.Observe(time.Since(start).Seconds())
}

// Ingested returns the number of frames consumed so far.
func (m *Monitor) Ingested() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ingests
}

// Ell returns the sketch's current number of retained directions.
func (m *Monitor) Ell() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.arams == nil {
		return 0
	}
	return m.arams.Ell()
}

// Snapshot holds the live view computed over the recent-frame window.
type Snapshot struct {
	Tags          []int
	Latent        *mat.Matrix
	Embedding     *mat.Matrix
	Labels        []int
	OutlierScores []float64
	Outliers      []int
	Ell           int
}

// QuickSnapshot is the low-latency variant of Snapshot for a live
// display: it reuses the UMAP model fitted by the most recent full
// Snapshot and places the current window into that embedding with an
// out-of-sample transform, refitting from scratch only when no model
// exists yet or the sketch rank changed (which invalidates the latent
// space). The clustering and anomaly stages run as usual.
func (m *Monitor) QuickSnapshot() *Snapshot {
	obsSnapQuick.Inc()
	sp := obs.StartSpan("quicksnapshot")
	defer sp.End()
	// Capture the cached model AND the window/basis/rank under one lock
	// acquisition. The earlier check-then-act version released the lock
	// between reading the model and copying the window, so a concurrent
	// Ingest could grow the sketch rank in the gap and the stale model
	// would be applied to a latent space of a different dimension.
	m.mu.Lock()
	model := m.cachedModel
	cachedEll := m.cachedEll
	x, tags, basis, ell := m.windowStateLocked()
	m.mu.Unlock()
	if x == nil {
		return nil
	}
	if model == nil || cachedEll != ell || basis.RowsN == 0 ||
		basis.RowsN != model.InputDim() {
		// No model yet, the rank changed since the fit, or the basis
		// rank no longer matches the model's input width: refit.
		return m.Snapshot()
	}
	snap := &Snapshot{Tags: tags, Ell: ell}
	proj := pca.NewProjector(basis)
	snap.Latent = proj.Project(x)
	snap.Embedding = model.Transform(snap.Latent)
	m.finishSnapshot(snap)
	return snap
}

// Snapshot projects the windowed frames with the current sketch basis
// and runs the visualization stages, caching the fitted UMAP model for
// subsequent QuickSnapshot calls. It returns nil when nothing has been
// ingested yet.
func (m *Monitor) Snapshot() *Snapshot {
	obsSnapFull.Inc()
	sp := obs.StartSpan("snapshot")
	defer sp.End()
	x, tags, basis, ell := m.windowState()
	if x == nil {
		return nil
	}
	n := x.RowsN
	snap := &Snapshot{Tags: tags, Ell: ell}
	if basis.RowsN == 0 {
		snap.Latent = mat.New(n, 0)
		snap.Embedding = mat.New(n, 2)
		snap.Labels = make([]int, n)
		for i := range snap.Labels {
			snap.Labels[i] = optics.Noise
		}
		snap.OutlierScores = make([]float64, n)
		snap.Outliers = []int{}
		return snap
	}
	proj := pca.NewProjector(basis)
	snap.Latent = proj.Project(x)
	model := umap.FitModel(snap.Latent, m.cfg.UMAP)
	snap.Embedding = model.Embedding()
	m.mu.Lock()
	m.cachedModel = model
	m.cachedEll = ell
	m.mu.Unlock()
	m.finishSnapshot(snap)
	return snap
}

// windowState copies the window contents and current basis under the
// lock so the heavy stages run outside it. Returns x == nil when
// nothing has been ingested.
func (m *Monitor) windowState() (x *mat.Matrix, tags []int, basis *mat.Matrix, ell int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.windowStateLocked()
}

// windowStateLocked is windowState for callers already holding m.mu,
// so snapshot paths can read the window together with other guarded
// state in a single critical section.
func (m *Monitor) windowStateLocked() (x *mat.Matrix, tags []int, basis *mat.Matrix, ell int) {
	if m.arams == nil || len(m.recent) == 0 {
		return nil, nil, nil, 0
	}
	n := len(m.recent)
	d := len(m.recent[0].vec)
	x = mat.New(n, d)
	tags = make([]int, n)
	for i, rf := range m.recent {
		copy(x.Row(i), rf.vec)
		tags[i] = rf.tag
	}
	k := m.cfg.LatentDim
	if k > m.arams.Ell() {
		k = m.arams.Ell()
	}
	return x, tags, m.arams.Basis(k), m.arams.Ell()
}

// finishSnapshot runs clustering and anomaly scoring on an embedding.
func (m *Monitor) finishSnapshot(snap *Snapshot) {
	snap.Labels = clusterEmbedding(snap.Embedding, m.cfg)
	snap.OutlierScores = abod.Scores(snap.Embedding, m.cfg.ABODNeighbors)
	snap.Outliers = abod.Outliers(snap.OutlierScores, m.cfg.Contamination)
}
