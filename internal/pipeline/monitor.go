package pipeline

import (
	"sync"

	"arams/internal/abod"
	"arams/internal/engine"
	"arams/internal/imgproc"
	"arams/internal/mat"
	"arams/internal/obs"
	"arams/internal/optics"
	"arams/internal/pca"
	"arams/internal/umap"
)

// Monitor-facade observability: full-vs-quick snapshot counters. A
// QuickSnapshot that falls back to a refit increments both counters —
// the "full" count is refits, the "quick" count is calls. Ingest
// latency, window, and rank gauges live in the engine
// (arams_engine_*).
var (
	obsSnapFull  = obs.Default().Counter("arams_monitor_snapshots_total", obs.L("kind", "full"))
	obsSnapQuick = obs.Default().Counter("arams_monitor_snapshots_total", obs.L("kind", "quick"))
)

// Monitor is the online form of the pipeline: frames stream in (e.g.
// from the event builder at the machine repetition rate), the ARAMS
// sketch updates incrementally, and at any moment a Snapshot produces
// the current latent embedding, clustering, and anomaly scores over a
// sliding window of recent frames — the "live view" an instrument
// operator would watch.
//
// Monitor is a thin compatibility facade over the sharded streaming
// engine (internal/engine): Ingest/IngestBatch delegate to the engine,
// which preprocesses outside every lock, routes frames to
// Config.Shards independent sketchers, and reconciles them into a
// global sketch on demand. With Shards == 1 (the default) the behavior
// — sketch contents, sampler RNG stream, audit cadence — is identical
// to the pre-engine serial monitor. Monitor is safe for concurrent
// producers and concurrent Snapshot/State callers.
type Monitor struct {
	cfg    Config
	window int
	eng    *engine.Engine

	// mu guards only the cached UMAP model for QuickSnapshot: new
	// window points are Transform-ed into the last full embedding
	// instead of refitting, as long as the sketch rank has not changed.
	mu          sync.Mutex
	cachedModel *umap.Model
	cachedEll   int
}

// NewMonitor creates an online monitor keeping a sliding window of the
// given size for snapshots. The sketch itself summarizes the *entire*
// stream, not just the window.
func NewMonitor(cfg Config, window int) *Monitor {
	cfg = cfg.withDefaults()
	if window <= 0 {
		window = 1024
	}
	return &Monitor{cfg: cfg, window: window, eng: engine.New(engineConfig(cfg, window))}
}

// engineConfig maps the pipeline configuration onto the engine's.
func engineConfig(cfg Config, window int) engine.Config {
	return engine.Config{
		Shards:         cfg.Shards,
		IngestBuffer:   cfg.IngestBuffer,
		ReconcileEvery: cfg.ReconcileEvery,
		ReconcileFixed: cfg.ReconcileFixed,
		Window:         window,
		Tenant:         cfg.Tenant,
		Pre:            cfg.Pre,
		Sketch:         cfg.Sketch,
		Merge:          cfg.Merge,
		Audit:          cfg.Audit,
		AuditEvery:     cfg.AuditEvery,
		FrameBudget:    cfg.FrameBudget,
		BurnThreshold:  cfg.BurnThreshold,
		Backends:       cfg.Backends,
		ReconcileRetry: cfg.ReconcileRetry,
	}
}

// Engine exposes the underlying streaming engine for callers that want
// the async queue (Enqueue/Drain/Stop) or engine-level state directly.
func (m *Monitor) Engine() *engine.Engine { return m.eng }

// Ingest preprocesses one frame and feeds it to the sketch. tag is an
// arbitrary caller identifier returned with snapshot rows.
func (m *Monitor) Ingest(im *imgproc.Image, tag int) {
	m.eng.Ingest(im, tag)
}

// IngestBatch feeds a batch of frames in one call: preprocessing fans
// out across the shared worker pool and the engine/shard locks are
// taken once per batch instead of once per frame. tags may be nil;
// otherwise it must match frames in length.
func (m *Monitor) IngestBatch(ims []*imgproc.Image, tags []int) {
	m.eng.IngestBatch(ims, tags)
}

// Ingested returns the number of frames consumed so far.
func (m *Monitor) Ingested() int { return m.eng.Ingested() }

// Ell returns the sketch's current number of retained directions
// (across all shards; merging never exceeds the max shard rank).
func (m *Monitor) Ell() int { return m.eng.Ell() }

// Snapshot holds the live view computed over the recent-frame window.
type Snapshot struct {
	Tags          []int
	Latent        *mat.Matrix
	Embedding     *mat.Matrix
	Labels        []int
	OutlierScores []float64
	Outliers      []int
	Ell           int
}

// QuickSnapshot is the low-latency variant of Snapshot for a live
// display: it reuses the UMAP model fitted by the most recent full
// Snapshot and places the current window into that embedding with an
// out-of-sample transform, refitting from scratch only when no model
// exists yet or the sketch rank changed (which invalidates the latent
// space). The clustering and anomaly stages run as usual.
func (m *Monitor) QuickSnapshot() *Snapshot {
	obsSnapQuick.Inc()
	sp := obs.StartTrace("quicksnapshot")
	defer sp.End()
	m.mu.Lock()
	model := m.cachedModel
	cachedEll := m.cachedEll
	m.mu.Unlock()
	x, tags, basis, ell := m.eng.WindowState(m.cfg.LatentDim)
	if x == nil {
		return nil
	}
	// The window/basis/rank triple is engine-consistent (one WindowState
	// call); the model guard below rejects it whenever the model was fit
	// at a different rank or basis width, so a concurrent Ingest between
	// reading the cache and the window can only force a refit, never a
	// dimension-mismatched Transform.
	if model == nil || cachedEll != ell || basis.RowsN == 0 ||
		basis.RowsN != model.InputDim() {
		return m.Snapshot()
	}
	snap := &Snapshot{Tags: tags, Ell: ell}
	proj := pca.NewProjector(basis)
	snap.Latent = proj.Project(x)
	snap.Embedding = model.Transform(snap.Latent)
	m.finishSnapshot(sp.Context(), snap)
	return snap
}

// Snapshot projects the windowed frames with the current sketch basis
// and runs the visualization stages, caching the fitted UMAP model for
// subsequent QuickSnapshot calls. It returns nil when nothing has been
// ingested yet.
func (m *Monitor) Snapshot() *Snapshot {
	obsSnapFull.Inc()
	sp := obs.StartTrace("snapshot")
	defer sp.End()
	x, tags, basis, ell := m.eng.WindowState(m.cfg.LatentDim)
	if x == nil {
		return nil
	}
	n := x.RowsN
	snap := &Snapshot{Tags: tags, Ell: ell}
	if basis.RowsN == 0 {
		snap.Latent = mat.New(n, 0)
		snap.Embedding = mat.New(n, 2)
		snap.Labels = make([]int, n)
		for i := range snap.Labels {
			snap.Labels[i] = optics.Noise
		}
		snap.OutlierScores = make([]float64, n)
		snap.Outliers = []int{}
		return snap
	}
	var model *umap.Model
	engine.RunStagesIn(sp.Context(), []engine.Stage{
		{Name: "pca", Run: func() {
			proj := pca.NewProjector(basis)
			snap.Latent = proj.Project(x)
		}},
		{Name: "umap", Run: func() {
			model = umap.FitModel(snap.Latent, m.cfg.UMAP)
			snap.Embedding = model.Embedding()
		}},
	})
	m.mu.Lock()
	m.cachedModel = model
	m.cachedEll = ell
	m.mu.Unlock()
	m.finishSnapshot(sp.Context(), snap)
	return snap
}

// finishSnapshot runs the clustering and anomaly stages on an
// embedding, inside the snapshot's trace.
func (m *Monitor) finishSnapshot(ctx obs.SpanContext, snap *Snapshot) {
	engine.RunStagesIn(ctx, []engine.Stage{
		{Name: "cluster", Run: func() {
			snap.Labels = clusterEmbedding(snap.Embedding, m.cfg)
		}},
		{Name: "abod", Run: func() {
			snap.OutlierScores = abod.Scores(snap.Embedding, m.cfg.ABODNeighbors)
			snap.Outliers = abod.Outliers(snap.OutlierScores, m.cfg.Contamination)
		}},
	})
}
