package pipeline

import (
	"testing"

	"arams/internal/imgproc"
	"arams/internal/mat"
	"arams/internal/optics"
	"arams/internal/rng"
	"arams/internal/sketch"
	"arams/internal/umap"
)

func TestProcessMatrixWithBasis(t *testing.T) {
	g := rng.New(30)
	x := mat.RandGaussian(80, 20, g)
	fd := sketch.NewFrequentDirections(8, 20, sketch.Options{})
	fd.AppendMatrix(x)
	basis := fd.Basis(5)

	res := ProcessMatrixWithBasis(x, basis, Config{
		UMAP: umap.Config{NNeighbors: 8, NEpochs: 30, Seed: 31},
	})
	if res.Latent.RowsN != 80 || res.Latent.ColsN != 5 {
		t.Fatalf("latent shape %d×%d", res.Latent.RowsN, res.Latent.ColsN)
	}
	if res.Embedding.RowsN != 80 || res.Embedding.ColsN != 2 {
		t.Fatal("embedding shape wrong")
	}
	if len(res.Residuals) != 80 {
		t.Fatal("residuals missing")
	}
	if res.Sketch != nil {
		t.Fatal("basis-only path should not produce a sketch")
	}
}

func TestProcessMatrixWithEmptyBasis(t *testing.T) {
	x := mat.RandGaussian(10, 5, rng.New(32))
	res := ProcessMatrixWithBasis(x, mat.New(0, 5), Config{})
	for _, l := range res.Labels {
		if l != optics.Noise {
			t.Fatal("empty basis should label everything noise")
		}
	}
	if res.Embedding.RowsN != 10 {
		t.Fatal("embedding rows wrong")
	}
	// Every slice artifact must be non-nil on the degenerate path so
	// CLI output and JSON exposition stay consistent with the normal
	// path (empty, not absent).
	if res.Outliers == nil || len(res.Outliers) != 0 {
		t.Fatalf("Outliers = %#v, want empty non-nil slice", res.Outliers)
	}
	if res.ResidualOutliers == nil || len(res.ResidualOutliers) != 0 {
		t.Fatalf("ResidualOutliers = %#v, want empty non-nil slice", res.ResidualOutliers)
	}
	if res.OutlierScores == nil || res.Residuals == nil {
		t.Fatal("OutlierScores/Residuals must be allocated")
	}
	if res.StageTimes == nil {
		t.Fatal("StageTimes must be allocated")
	}
}

func TestProcessClusterEpsPath(t *testing.T) {
	// Force the eps-cut extraction branch instead of ξ.
	g := rng.New(33)
	// Two separated blobs in raw space.
	x := mat.New(80, 6)
	for i := 0; i < 80; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = 0.2 * g.Norm()
		}
		if i >= 40 {
			row[0] += 8
		}
	}
	res := ProcessMatrix(x, Config{
		Sketch:     sketch.Config{Ell0: 6, Seed: 34},
		LatentDim:  4,
		UMAP:       umap.Config{NNeighbors: 10, NEpochs: 100, Seed: 35},
		ClusterEps: 3.0,
	})
	if nc := optics.NumClusters(res.Labels); nc != 2 {
		t.Fatalf("eps extraction found %d clusters, want 2", nc)
	}
}

func TestMonitorZeroFramesThenData(t *testing.T) {
	cfg := Config{
		Sketch: sketch.Config{Ell0: 4, Seed: 36},
		UMAP:   umap.Config{NNeighbors: 4, NEpochs: 10, Seed: 37},
	}
	m := NewMonitor(cfg, 16)
	// All-zero frames first: sketch content is zero, snapshot must not
	// NaN.
	for i := 0; i < 10; i++ {
		m.Ingest(imgproc.NewImage(6, 6), i)
	}
	snap := m.Snapshot()
	if snap == nil {
		t.Fatal("no snapshot for zero data")
	}
	if snap.Embedding.HasNaN() {
		t.Fatal("zero-data snapshot has NaN")
	}
	// Then real data flows in.
	g := rng.New(38)
	for i := 10; i < 30; i++ {
		im := imgproc.NewImage(6, 6)
		for p := range im.Pix {
			im.Pix[p] = g.Float64()
		}
		m.Ingest(im, i)
	}
	snap = m.Snapshot()
	if snap == nil || snap.Embedding.HasNaN() {
		t.Fatal("mixed-data snapshot broken")
	}
}
