package pipeline_test

// Chaos test for the fault-tolerant monitor: kill the monitor
// mid-stream (in-process: abandon the object, keeping only its last
// on-disk checkpoint), restore from the checkpoint, finish the stream,
// and require the recovered run to match a never-killed control run.
// The test lives in an external package because internal/ckpt imports
// internal/pipeline for the MonitorState codec.

import (
	"path/filepath"
	"sync"
	"testing"

	"arams/internal/audit"
	"arams/internal/ckpt"
	"arams/internal/imgproc"
	"arams/internal/obs"
	"arams/internal/pipeline"
	"arams/internal/rng"
	"arams/internal/sketch"
)

// chaosFrames builds a deterministic stream of small detector frames:
// a low-rank structured signal plus noise, so the sketch has real
// directions to track.
func chaosFrames(n, w, h int, seed uint64) []*imgproc.Image {
	g := rng.New(seed)
	frames := make([]*imgproc.Image, n)
	for i := range frames {
		im := imgproc.NewImage(w, h)
		cx, cy := float64(i%w), float64((i/2)%h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				dx, dy := float64(x)-cx, float64(y)-cy
				im.Set(x, y, 10/(1+dx*dx+dy*dy)+0.1*g.Norm())
			}
		}
		frames[i] = im
	}
	return frames
}

func chaosConfig() pipeline.Config {
	return pipeline.Config{
		Sketch:    sketch.Config{Ell0: 6, Beta: 0.9, Seed: 21, Eps: 0.25, Nu: 4, RankAdaptive: true},
		LatentDim: 4,
	}
}

// chaosAuditor builds an isolated auditor for the kill/restore test;
// CertEvery 1 journals a certificate for every audited batch so the
// checkpoint carries a populated event ring.
func chaosAuditor() *audit.Auditor {
	return audit.New(audit.Config{
		Journal:   audit.NewJournal(128),
		Registry:  obs.NewRegistry(),
		Residual:  audit.NewCUSUM(0.01, 0.5),
		CertEvery: 1,
	})
}

// TestChaosKillRestoreRecovers is the recovery acceptance test: a
// monitor is killed mid-stream, restored from its last periodic
// checkpoint, and resumed from the frame index the checkpoint recorded.
// The recovered run's final sketch must match a never-killed control
// run bit for bit — error-bound certificate fields included — and its
// basis subspace error against the control must be within 1e-9. The
// audit layer must survive the same round trip: the checkpoint carries
// the auditor's detector state and the journal ring, and the restored
// monitor resumes both (plus a journaled checkpoint_restore marker).
// A concurrent snapshotter hammers State()/Ell() throughout so -race
// exercises the checkpoint path against live ingestion.
func TestChaosKillRestoreRecovers(t *testing.T) {
	const (
		nFrames    = 60
		w, h       = 6, 6
		window     = 16
		ckptEvery  = 8
		auditEvery = 8  // audit flush on every checkpoint boundary
		killAt     = 37 // mid-stream, past the checkpoint at frame 32
		wantResume = 32 // last checkpoint boundary before the kill
	)
	frames := chaosFrames(nFrames, w, h, 77)
	cfg := chaosConfig()
	path := filepath.Join(t.TempDir(), "monitor.ckpt")

	// Control: the run that never dies.
	control := pipeline.NewMonitor(cfg, window)
	for i, im := range frames {
		control.Ingest(im, i)
	}

	// Victim: ingest with periodic checkpoints and a concurrent reader,
	// then die at killAt. Unlike the control it audits as it goes — the
	// auditor must not perturb the sketch, and its state must ride the
	// checkpoint.
	victimCfg := cfg
	victimCfg.Audit = chaosAuditor()
	victimCfg.AuditEvery = auditEvery
	victim := pipeline.NewMonitor(victimCfg, window)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = victim.State()
				_ = victim.Ell()
			}
		}
	}()
	for i := 0; i < killAt; i++ {
		victim.Ingest(frames[i], i)
		if (i+1)%ckptEvery == 0 {
			if err := ckpt.Save(path, victim.State()); err != nil {
				t.Fatalf("checkpoint at frame %d: %v", i+1, err)
			}
		}
	}
	close(stop)
	wg.Wait()
	// The "kill": victim is abandoned here. Only the checkpoint file
	// survives.

	state, err := ckpt.Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	ms, ok := state.(*pipeline.MonitorState)
	if !ok {
		t.Fatalf("Load returned %T, want *pipeline.MonitorState", state)
	}
	if ms.Ingests != wantResume {
		t.Fatalf("checkpoint recorded %d ingests, want %d", ms.Ingests, wantResume)
	}
	// The checkpoint must carry the audit state: one audited batch per
	// auditEvery frames, and a journal with at least those certificates.
	if ms.Audit == nil || ms.Journal == nil {
		t.Fatalf("checkpoint lost the audit state: audit=%v journal=%v", ms.Audit, ms.Journal)
	}
	if want := int64(wantResume / auditEvery); ms.Audit.Batches != want {
		t.Fatalf("checkpoint recorded %d audited batches, want %d", ms.Audit.Batches, want)
	}
	if ms.Audit.Residual.Kind != "cusum" || ms.Audit.Residual.N != int(ms.Audit.Batches) {
		t.Fatalf("checkpoint detector state %+v diverged from batch count %d",
			ms.Audit.Residual, ms.Audit.Batches)
	}
	if int64(len(ms.Journal.Events)) < ms.Audit.Batches || ms.Journal.Seq < ms.Audit.Batches {
		t.Fatalf("checkpoint journal seq=%d events=%d, want ≥ %d certificates",
			ms.Journal.Seq, len(ms.Journal.Events), ms.Audit.Batches)
	}
	savedSeq := ms.Journal.Seq

	restoredCfg := cfg
	restoredCfg.Audit = chaosAuditor()
	restoredCfg.AuditEvery = auditEvery
	restored, err := pipeline.NewMonitorFromState(restoredCfg, ms)
	if err != nil {
		t.Fatalf("NewMonitorFromState: %v", err)
	}
	// The restored auditor resumed the counters and detector internals,
	// and journaled the restore itself with continued sequence numbers.
	if restoredCfg.Audit.Batches() != ms.Audit.Batches {
		t.Fatalf("restored auditor has %d batches, want %d", restoredCfg.Audit.Batches(), ms.Audit.Batches)
	}
	if st := restoredCfg.Audit.State(); st.Residual != ms.Audit.Residual {
		t.Fatalf("restored detector state %+v != checkpointed %+v", st.Residual, ms.Audit.Residual)
	}
	marks := restoredCfg.Audit.Journal().Query(audit.Query{Kind: audit.KindCheckpointRestore})
	if len(marks) != 1 || marks[0].Seq <= savedSeq {
		t.Fatalf("checkpoint_restore marker = %+v, want one event with seq > %d", marks, savedSeq)
	}
	// Resume the stream exactly where the checkpoint left off.
	for i := restored.Ingested(); i < nFrames; i++ {
		restored.Ingest(frames[i], i)
	}
	// Auditing resumed mid-stream: flushes at frames 40, 48, 56.
	if want := int64(56 / auditEvery); restoredCfg.Audit.Batches() != want {
		t.Fatalf("resumed auditor has %d batches, want %d", restoredCfg.Audit.Batches(), want)
	}
	if n := restoredCfg.Audit.State().Residual.N; n != 56/auditEvery {
		t.Fatalf("resumed detector consumed %d observations, want %d", n, 56/auditEvery)
	}

	cs, rs := control.State(), restored.State()
	if rs.Ingests != cs.Ingests {
		t.Fatalf("recovered run ingested %d frames, control %d", rs.Ingests, cs.Ingests)
	}
	if len(rs.Frames) != len(cs.Frames) {
		t.Fatalf("recovered window has %d frames, control %d", len(rs.Frames), len(cs.Frames))
	}
	for i := range rs.Frames {
		if rs.Frames[i].Tag != cs.Frames[i].Tag {
			t.Fatalf("window frame %d: tag %d vs control %d", i, rs.Frames[i].Tag, cs.Frames[i].Tag)
		}
	}

	cfd, rfd := monitorFD(t, cs), monitorFD(t, rs)
	if rfd.Ell != cfd.Ell || rfd.NextZero != cfd.NextZero ||
		rfd.Rotations != cfd.Rotations || rfd.Seen != cfd.Seen {
		t.Fatalf("recovered sketch shape diverged: %+v vs control %+v",
			[4]int{rfd.Ell, rfd.NextZero, rfd.Rotations, rfd.Seen},
			[4]int{cfd.Ell, cfd.NextZero, cfd.Rotations, cfd.Seen})
	}
	// Bit-exact recovery: the restored stream must be indistinguishable
	// from one that never died.
	for i := range rfd.Buffer {
		if rfd.Buffer[i] != cfd.Buffer[i] {
			t.Fatalf("sketch buffers diverge at element %d: %v vs %v", i, rfd.Buffer[i], cfd.Buffer[i])
		}
	}
	// The acceptance criterion stated as a subspace error: with
	// bit-exact buffers the basis subspaces coincide, so the error is
	// identically 0 ≤ 1e-9; computing it through the sketch state keeps
	// the assertion meaningful if the recovery ever becomes approximate.
	if err := subspaceErr(cfd, rfd); err > 1e-9 {
		t.Fatalf("basis subspace error %v > 1e-9", err)
	}

	// The restored monitor must stay fully functional: a live snapshot
	// over the recovered window.
	snap := restored.Snapshot()
	if snap == nil {
		t.Fatal("restored monitor returned nil snapshot")
	}
	if len(snap.Tags) != window || snap.Embedding.RowsN != window {
		t.Fatalf("restored snapshot covers %d tags / %d embedded rows, want %d",
			len(snap.Tags), snap.Embedding.RowsN, window)
	}
}

// TestChaosRestartWithoutCheckpoint covers the cold-start path: a
// checkpoint taken before any frame arrived restores to an empty
// monitor that then processes the whole stream identically to a fresh
// one.
func TestChaosRestartWithoutCheckpoint(t *testing.T) {
	cfg := chaosConfig()
	path := filepath.Join(t.TempDir(), "empty.ckpt")
	empty := pipeline.NewMonitor(cfg, 8)
	if err := ckpt.Save(path, empty.State()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	state, err := ckpt.Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	restored, err := pipeline.NewMonitorFromState(cfg, state.(*pipeline.MonitorState))
	if err != nil {
		t.Fatalf("NewMonitorFromState: %v", err)
	}
	fresh := pipeline.NewMonitor(cfg, 8)
	for i, im := range chaosFrames(20, 5, 5, 3) {
		restored.Ingest(im, i)
		fresh.Ingest(im, i)
	}
	a, b := monitorFD(t, restored.State()), monitorFD(t, fresh.State())
	for i := range a.Buffer {
		if a.Buffer[i] != b.Buffer[i] {
			t.Fatalf("cold-restored run diverged from fresh run at element %d", i)
		}
	}
}

// monitorFD extracts shard 0's FD core from a monitor state regardless
// of which ARAMS variant (fixed or rank-adaptive) the config selected.
// The serial-configuration chaos tests run one shard, so shard 0 IS the
// whole sketch.
func monitorFD(t *testing.T, s *pipeline.MonitorState) *sketch.FDState {
	t.Helper()
	return monitorShardFD(t, s, 0)
}

// monitorShardFD extracts shard i's FD core from a monitor state.
func monitorShardFD(t *testing.T, s *pipeline.MonitorState, i int) *sketch.FDState {
	t.Helper()
	if i >= len(s.Shards) || s.Shards[i] == nil {
		t.Fatalf("monitor state has no sketch for shard %d", i)
	}
	sh := s.Shards[i]
	if sh.RankAdaptive != nil {
		return &sh.RankAdaptive.FD
	}
	if sh.FD == nil {
		t.Fatalf("monitor shard %d state has neither variant", i)
	}
	return sh.FD
}

// subspaceErr measures how far apart two sketch states' row spaces are:
// the largest absolute entry of B₁ᵀB₁ − B₂ᵀB₂ over the occupied buffer
// rows. Zero iff the sketches induce identical covariance estimates.
func subspaceErr(a, b *sketch.FDState) float64 {
	gram := func(s *sketch.FDState) []float64 {
		g := make([]float64, s.D*s.D)
		for r := 0; r < s.NextZero; r++ {
			row := s.Buffer[r*s.D : (r+1)*s.D]
			for i := 0; i < s.D; i++ {
				for j := 0; j < s.D; j++ {
					g[i*s.D+j] += row[i] * row[j]
				}
			}
		}
		return g
	}
	ga, gb := gram(a), gram(b)
	worst := 0.0
	for i := range ga {
		d := ga[i] - gb[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
