package pipeline

import (
	"testing"

	"arams/internal/imgproc"
	"arams/internal/lcls"
	"arams/internal/optics"
	"arams/internal/sketch"
	"arams/internal/umap"
)

func TestPipelineWithHDBSCANBackend(t *testing.T) {
	dg := lcls.NewDiffractionGenerator(lcls.DiffractionConfig{
		Size: 48,
		Classes: [][4]float64{
			{1, 1, 1, 1}, {1, 0.1, 1, 0.1}, {0.1, 1, 0.1, 1},
		},
		Seed: 80,
	})
	const n = 150
	frames := make([]*imgproc.Image, n)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		f := dg.NextClass(i % 3)
		frames[i] = f.Image
		truth[i] = i % 3
	}
	cfg := Config{
		Pre:            imgproc.Preprocessor{Normalize: true},
		Sketch:         sketch.Config{Ell0: 20, Seed: 81},
		LatentDim:      10,
		UMAP:           umap.Config{NNeighbors: 20, NEpochs: 150, Seed: 82},
		UseHDBSCAN:     true,
		MinPts:         5,
		MinClusterSize: 15,
	}
	res := Process(frames, cfg)
	nc := optics.NumClusters(res.Labels)
	if nc < 2 || nc > 8 {
		t.Fatalf("HDBSCAN backend found %d clusters", nc)
	}
	purity, clustered := clusterPurity(res.Labels, truth)
	if clustered < n/2 {
		t.Fatalf("only %d/%d clustered", clustered, n)
	}
	if purity < 0.9 {
		t.Fatalf("HDBSCAN backend purity %v", purity)
	}
}
