package pipeline

import (
	"fmt"

	"arams/internal/audit"
	"arams/internal/sketch"
)

// FrameState is one preprocessed frame retained in the Monitor's
// sliding window.
type FrameState struct {
	Vec []float64
	Tag int
}

// MonitorState is a checkpointable snapshot of a Monitor: the sliding
// window of preprocessed frames plus the full ARAMS sketch state. The
// cached UMAP model is deliberately excluded — it is a pure
// acceleration cache, and a restored monitor refits it on the first
// full Snapshot. The pipeline Config is not serialized either; the
// operator supplies the same Config on restart (it contains the
// preprocessing chain and clustering parameters, which are code-level
// choices, not stream state).
type MonitorState struct {
	Window  int
	Ingests int
	Frames  []FrameState
	// Sketch is nil when nothing has been ingested yet.
	Sketch *sketch.ARAMSState
	// Audit and Journal carry the quality-auditing state — drift
	// detector internals and the recent event ring — when the monitor
	// was configured with an Auditor. Both are nil otherwise, and in
	// checkpoints written before the audit layer existed (v1 files),
	// so restore treats nil as "no audit state". The error-bound
	// certificate itself needs no extra fields here: it is a pure
	// function of the sketch state (shrinkage and Frobenius mass ride
	// in FDState).
	Audit   *audit.State
	Journal *audit.JournalState
}

// State captures the monitor's current state under its lock, so it is
// safe to call concurrently with Ingest and Snapshot.
func (m *Monitor) State() *MonitorState {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &MonitorState{
		Window:  m.window,
		Ingests: m.ingests,
		Frames:  make([]FrameState, len(m.recent)),
	}
	for i, rf := range m.recent {
		s.Frames[i] = FrameState{Vec: append([]float64(nil), rf.vec...), Tag: rf.tag}
	}
	if m.arams != nil {
		as := m.arams.State()
		s.Sketch = &as
	}
	if m.cfg.Audit != nil {
		ast := m.cfg.Audit.State()
		jst := m.cfg.Audit.Journal().State()
		s.Audit = &ast
		s.Journal = &jst
	}
	return s
}

// NewMonitorFromState rebuilds a monitor from a snapshot, resuming the
// stream exactly where the checkpoint left off. cfg must match the
// configuration of the monitor that produced the snapshot; the sketch
// dimension is cross-checked against the stored frames.
func NewMonitorFromState(cfg Config, s *MonitorState) (*Monitor, error) {
	if s == nil {
		return nil, fmt.Errorf("pipeline: nil monitor state")
	}
	if s.Window <= 0 {
		return nil, fmt.Errorf("pipeline: monitor state has window=%d", s.Window)
	}
	if s.Ingests < len(s.Frames) || len(s.Frames) > s.Window {
		return nil, fmt.Errorf("pipeline: monitor state has %d frames for window=%d ingests=%d",
			len(s.Frames), s.Window, s.Ingests)
	}
	if s.Sketch == nil && (s.Ingests > 0 || len(s.Frames) > 0) {
		return nil, fmt.Errorf("pipeline: monitor state has %d ingests but no sketch", s.Ingests)
	}
	m := NewMonitor(cfg, s.Window)
	if s.Sketch != nil {
		a, err := sketch.NewARAMSFromState(*s.Sketch)
		if err != nil {
			return nil, err
		}
		for i, f := range s.Frames {
			if len(f.Vec) != s.Sketch.D {
				return nil, fmt.Errorf("pipeline: monitor state frame %d has %d features, sketch expects %d",
					i, len(f.Vec), s.Sketch.D)
			}
		}
		m.arams = a
	}
	m.recent = make([]*recentFrame, len(s.Frames))
	for i, f := range s.Frames {
		m.recent[i] = &recentFrame{vec: append([]float64(nil), f.Vec...), tag: f.Tag}
	}
	m.ingests = s.Ingests
	if m.arams != nil {
		m.lastEll = m.arams.Ell()
	}
	if cfg.Audit != nil {
		if s.Journal != nil {
			cfg.Audit.Journal().Restore(*s.Journal)
		}
		if s.Audit != nil {
			cfg.Audit.Restore(*s.Audit)
		}
		cfg.Audit.Journal().Record(audit.KindCheckpointRestore,
			"monitor state restored",
			audit.A("ingests", float64(s.Ingests)),
			audit.A("frames", float64(len(s.Frames))))
	}
	return m, nil
}
