package pipeline

import (
	"fmt"

	"arams/internal/audit"
	"arams/internal/engine"
	"arams/internal/sketch"
)

// FrameState is one preprocessed frame retained in the Monitor's
// sliding window.
type FrameState struct {
	Vec []float64
	Tag int
}

// MonitorState is a checkpointable snapshot of a Monitor: the sliding
// window of preprocessed frames plus the full per-shard ARAMS sketch
// states. The cached UMAP model is deliberately excluded — it is a pure
// acceleration cache, and a restored monitor refits it on the first
// full Snapshot. The pipeline Config is not serialized either; the
// operator supplies the same Config on restart (it contains the
// preprocessing chain and clustering parameters, which are code-level
// choices, not stream state).
type MonitorState struct {
	Window  int
	Ingests int
	Frames  []FrameState
	// Shards holds one ARAMS state per engine shard slot, positionally:
	// slot i is shard i, nil when that shard has not received a frame
	// yet. Restore adopts the checkpoint's shard count (round-robin
	// routing is by global stream index, so the layout is stream state,
	// not configuration). Checkpoints written before the engine existed
	// (frame v1/v2) decode as a single slot. Empty when nothing has
	// been ingested yet.
	Shards []*sketch.ARAMSState
	// Audit and Journal carry the quality-auditing state — drift
	// detector internals and the recent event ring — when the monitor
	// was configured with an Auditor. Both are nil otherwise, and in
	// checkpoints written before the audit layer existed (v1 files),
	// so restore treats nil as "no audit state". The error-bound
	// certificate itself needs no extra fields here: it is a pure
	// function of the sketch states (shrinkage and Frobenius mass ride
	// in FDState, and certificates compose additively across the shard
	// merge).
	Audit   *audit.State
	Journal *audit.JournalState
}

// State captures the monitor's current state behind the engine's
// ingest gate, so it is safe to call concurrently with Ingest and
// Snapshot and never sees a torn window-vs-sketch cut.
func (m *Monitor) State() *MonitorState {
	return monitorStateOf(m.eng.State())
}

func monitorStateOf(es *engine.State) *MonitorState {
	s := &MonitorState{
		Window:  es.Window,
		Ingests: es.Ingests,
		Frames:  make([]FrameState, len(es.Frames)),
		Shards:  es.Shards,
		Audit:   es.Audit,
		Journal: es.Journal,
	}
	for i, f := range es.Frames {
		s.Frames[i] = FrameState{Vec: f.Vec, Tag: f.Tag}
	}
	return s
}

// Suspend is the hibernation path: it stops the monitor's engine
// (draining any queued frames), captures a detached state handle, and
// releases the engine's backends and goroutines. The monitor must not
// be used after Suspend; NewMonitorFromState over the returned state
// resumes the stream bit-exactly, so hibernate→restore is invisible to
// sketch bytes, certificates, and audit journals. The state is returned
// even when a backend close fails.
func (m *Monitor) Suspend() (*MonitorState, error) {
	es, err := m.eng.Suspend()
	if es == nil {
		return nil, err
	}
	return monitorStateOf(es), err
}

// Certificate composes the error-bound certificate recorded in the
// state's shard sketches: shrinkage and energy ledgers sum, the rank is
// the max — the same aggregate a reconcile would certify (the merge's
// own shrinkage is not incurred until it runs, so this is the floor of
// the restored bound). The zero Certificate when nothing was ingested.
func (s *MonitorState) Certificate() audit.Certificate {
	var certs []audit.Certificate
	for _, ss := range s.Shards {
		fd := aramsFDState(ss)
		if fd == nil {
			continue
		}
		certs = append(certs, audit.Certificate{
			Rows:       fd.Seen,
			Dim:        fd.D,
			Ell:        fd.Ell,
			Rotations:  fd.Rotations,
			ShrinkMass: fd.TotalDelta,
			FrobMass:   fd.FrobMass,
		})
	}
	return audit.Compose(certs...)
}

// aramsFDState returns the FD ledger inside an ARAMS shard state,
// whichever variant carries it (nil for an empty slot).
func aramsFDState(s *sketch.ARAMSState) *sketch.FDState {
	switch {
	case s == nil:
		return nil
	case s.RankAdaptive != nil:
		return &s.RankAdaptive.FD
	case s.FD != nil:
		return s.FD
	}
	return nil
}

// NewMonitorFromState rebuilds a monitor from a snapshot, resuming the
// stream exactly where the checkpoint left off. cfg must match the
// configuration of the monitor that produced the snapshot; the sketch
// dimension is cross-checked against the stored frames, and the
// checkpoint's shard layout overrides cfg.Shards (see MonitorState).
func NewMonitorFromState(cfg Config, s *MonitorState) (*Monitor, error) {
	if s == nil {
		return nil, fmt.Errorf("pipeline: nil monitor state")
	}
	cfg = cfg.withDefaults()
	es := &engine.State{
		Window:  s.Window,
		Ingests: s.Ingests,
		Frames:  make([]engine.Frame, len(s.Frames)),
		Shards:  s.Shards,
		Audit:   s.Audit,
		Journal: s.Journal,
	}
	for i, f := range s.Frames {
		es.Frames[i] = engine.Frame{Vec: f.Vec, Tag: f.Tag}
	}
	eng, err := engine.NewFromState(engineConfig(cfg, s.Window), es)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	if cfg.Audit != nil {
		cfg.Audit.Journal().Record(audit.KindCheckpointRestore,
			"monitor state restored",
			audit.A("ingests", float64(s.Ingests)),
			audit.A("frames", float64(len(s.Frames))))
	}
	return &Monitor{cfg: cfg, window: s.Window, eng: eng}, nil
}
