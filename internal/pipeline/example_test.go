package pipeline_test

import (
	"fmt"

	"arams/internal/imgproc"
	"arams/internal/lcls"
	"arams/internal/pipeline"
	"arams/internal/sketch"
	"arams/internal/umap"
)

// ExampleProcess runs the full Fig. 4 pipeline on simulated beam
// profiles.
func ExampleProcess() {
	bg := lcls.NewBeamGenerator(lcls.BeamConfig{Size: 24, Seed: 1})
	frames := make([]*imgproc.Image, 100)
	for i := range frames {
		frames[i] = bg.Next().Image
	}
	res := pipeline.Process(frames, pipeline.Config{
		Pre:    imgproc.Preprocessor{Normalize: true},
		Sketch: sketch.Config{Ell0: 10, Seed: 2},
		UMAP:   umap.Config{NNeighbors: 8, NEpochs: 50, Seed: 3},
	})
	fmt.Printf("embedding: %d points in %d-D\n", res.Embedding.RowsN, res.Embedding.ColsN)
	fmt.Printf("per-frame outputs: %d labels, %d residuals\n",
		len(res.Labels), len(res.Residuals))
	// Output:
	// embedding: 100 points in 2-D
	// per-frame outputs: 100 labels, 100 residuals
}

// ExampleMonitor shows the online form: stream frames in, snapshot the
// live view.
func ExampleMonitor() {
	m := pipeline.NewMonitor(pipeline.Config{
		Sketch: sketch.Config{Ell0: 8, Seed: 4},
		UMAP:   umap.Config{NNeighbors: 6, NEpochs: 30, Seed: 5},
	}, 50)
	bg := lcls.NewBeamGenerator(lcls.BeamConfig{Size: 16, Seed: 6})
	for i := 0; i < 60; i++ {
		m.Ingest(bg.Next().Image, i)
	}
	snap := m.Snapshot()
	fmt.Printf("window of %d frames, sketch rank %d\n", len(snap.Tags), snap.Ell)
	// Output:
	// window of 50 frames, sketch rank 8
}
