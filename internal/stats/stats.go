// Package stats provides the small statistical utilities the experiment
// harness and examples share: correlation coefficients, rank
// transforms, and order statistics.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance (0 for fewer than 1 value).
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		s += (x - m) * (x - m)
	}
	return s / float64(len(v))
}

// Pearson returns the Pearson correlation of two equal-length
// sequences; 0 when either is constant.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: Pearson length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// Spearman returns the Spearman rank correlation of two equal-length
// sequences.
func Spearman(a, b []float64) float64 {
	return Pearson(Ranks(a), Ranks(b))
}

// Ranks returns the 0-based rank of each value (ties broken by
// position, matching a stable sort).
func Ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	out := make([]float64, len(v))
	for r, i := range idx {
		out[i] = float64(r)
	}
	return out
}

// Median returns the middle order statistic (upper median for even
// lengths; 0 for empty input). The input is not modified.
func Median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return Quantile(v, 0.5)
}

// Quantile returns the q-th order statistic (nearest-rank), q in
// [0, 1]. The input is not modified.
func Quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return 0
	}
	cp := append([]float64(nil), v...)
	sort.Float64s(cp)
	i := int(q * float64(len(cp)))
	if i >= len(cp) {
		i = len(cp) - 1
	}
	if i < 0 {
		i = 0
	}
	return cp[i]
}
