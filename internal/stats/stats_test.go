package stats

import (
	"math"
	"testing"
)

func TestMeanVariance(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	if got := Mean(v); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Variance(v); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("Variance = %v", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty input not zero")
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	if got := Pearson(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", got)
	}
	c := []float64{5, 4, 3, 2, 1}
	if got := Pearson(a, c); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	constant := []float64{7, 7, 7, 7, 7}
	if got := Pearson(a, constant); got != 0 {
		t.Fatalf("constant input correlation = %v", got)
	}
}

func TestPearsonMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatch did not panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestSpearmanMonotone(t *testing.T) {
	// Any monotone transform gives ρ = 1.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{1, 8, 27, 64, 125} // cubed: nonlinear but monotone
	if got := Spearman(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Spearman of monotone transform = %v", got)
	}
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{30, 10, 20})
	want := []float64{2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v", got)
		}
	}
}

func TestMedianQuantile(t *testing.T) {
	v := []float64{5, 1, 3, 2, 4}
	if got := Median(v); got != 3 {
		t.Fatalf("Median = %v", got)
	}
	if got := Quantile(v, 0); got != 1 {
		t.Fatalf("Quantile(0) = %v", got)
	}
	if got := Quantile(v, 0.99); got != 5 {
		t.Fatalf("Quantile(0.99) = %v", got)
	}
	if Median(nil) != 0 {
		t.Fatal("empty median not zero")
	}
	// Input unchanged.
	if v[0] != 5 {
		t.Fatal("Quantile mutated its input")
	}
}
