// Package knn provides k-nearest-neighbor search for the UMAP, OPTICS,
// and ABOD stages. Two engines are available: an exact brute-force
// search parallelized across goroutines (robust at any dimension, used
// by default on the ≤100-dimensional PCA projections the pipeline
// produces), and a vantage-point tree for repeated low-dimensional
// queries.
package knn

import (
	"container/heap"
	"math"
	"runtime"
	"sort"
	"sync"

	"arams/internal/mat"
)

// Neighbor is one kNN result: the index of the neighbor point and its
// Euclidean distance.
type Neighbor struct {
	Index int
	Dist  float64
}

// Graph holds the k nearest neighbors of every point, sorted by
// ascending distance, excluding the point itself.
type Graph struct {
	K         int
	Neighbors [][]Neighbor // [n][k]
}

// maxHeap over neighbor distances, used to keep the k best candidates.
type maxHeap []Neighbor

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// Distance returns the Euclidean distance between rows i and j of x.
func Distance(x *mat.Matrix, i, j int) float64 {
	return math.Sqrt(DistSq(x.Row(i), x.Row(j)))
}

// DistSq returns the squared Euclidean distance between two vectors.
func DistSq(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// BruteForce builds the exact kNN graph of the rows of x, splitting the
// outer loop across all CPUs. k is clamped to n−1.
func BruteForce(x *mat.Matrix, k int) *Graph {
	n := x.RowsN
	if k >= n {
		k = n - 1
	}
	if k < 1 {
		return &Graph{K: 0, Neighbors: make([][]Neighbor, n)}
	}
	g := &Graph{K: k, Neighbors: make([][]Neighbor, n)}
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			h := make(maxHeap, 0, k+1)
			for i := lo; i < hi; i++ {
				h = h[:0]
				xi := x.Row(i)
				for j := 0; j < n; j++ {
					if j == i {
						continue
					}
					d := DistSq(xi, x.Row(j))
					if len(h) < k {
						heap.Push(&h, Neighbor{Index: j, Dist: d})
					} else if d < h[0].Dist {
						h[0] = Neighbor{Index: j, Dist: d}
						heap.Fix(&h, 0)
					}
				}
				nb := make([]Neighbor, len(h))
				copy(nb, h)
				sort.Slice(nb, func(a, b int) bool { return nb[a].Dist < nb[b].Dist })
				for t := range nb {
					nb[t].Dist = math.Sqrt(nb[t].Dist)
				}
				g.Neighbors[i] = nb
			}
		}(lo, hi)
	}
	wg.Wait()
	return g
}

// VPTree is a vantage-point tree over the rows of a matrix, supporting
// exact k-nearest and radius queries with O(log n) expected node
// visits in low dimension.
type VPTree struct {
	x    *mat.Matrix
	root *vpNode
}

type vpNode struct {
	index  int
	radius float64
	inside *vpNode
	beyond *vpNode
}

// NewVPTree builds a vantage-point tree. The point order within x is
// used deterministically (first point of each subset is the vantage
// point), so construction needs no RNG.
func NewVPTree(x *mat.Matrix) *VPTree {
	idx := make([]int, x.RowsN)
	for i := range idx {
		idx[i] = i
	}
	t := &VPTree{x: x}
	t.root = t.build(idx)
	return t
}

func (t *VPTree) build(idx []int) *vpNode {
	if len(idx) == 0 {
		return nil
	}
	node := &vpNode{index: idx[0]}
	rest := idx[1:]
	if len(rest) == 0 {
		return node
	}
	vp := t.x.Row(node.index)
	d := make([]float64, len(rest))
	for i, j := range rest {
		d[i] = math.Sqrt(DistSq(vp, t.x.Row(j)))
	}
	// Partition around the median distance.
	order := make([]int, len(rest))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return d[order[a]] < d[order[b]] })
	mid := len(order) / 2
	node.radius = d[order[mid]]
	inside := make([]int, 0, mid)
	beyond := make([]int, 0, len(order)-mid)
	for pos, oi := range order {
		if pos < mid {
			inside = append(inside, rest[oi])
		} else {
			beyond = append(beyond, rest[oi])
		}
	}
	node.inside = t.build(inside)
	node.beyond = t.build(beyond)
	return node
}

// KNearest returns the k nearest stored points to query (excluding any
// point at distance exactly 0 if excludeSelf and the query is a stored
// row — callers pass excludeIndex = -1 to keep everything).
func (t *VPTree) KNearest(query []float64, k int, excludeIndex int) []Neighbor {
	if k <= 0 {
		return nil
	}
	h := make(maxHeap, 0, k+1)
	t.search(t.root, query, k, excludeIndex, &h)
	out := make([]Neighbor, len(h))
	copy(out, h)
	sort.Slice(out, func(a, b int) bool { return out[a].Dist < out[b].Dist })
	return out
}

func (t *VPTree) search(node *vpNode, query []float64, k, exclude int, h *maxHeap) {
	if node == nil {
		return
	}
	d := math.Sqrt(DistSq(query, t.x.Row(node.index)))
	if node.index != exclude {
		if h.Len() < k {
			heap.Push(h, Neighbor{Index: node.index, Dist: d})
		} else if d < (*h)[0].Dist {
			(*h)[0] = Neighbor{Index: node.index, Dist: d}
			heap.Fix(h, 0)
		}
	}
	tau := math.Inf(1)
	if h.Len() == k {
		tau = (*h)[0].Dist
	}
	if d < node.radius {
		t.search(node.inside, query, k, exclude, h)
		if h.Len() == k {
			tau = (*h)[0].Dist
		}
		if d+tau >= node.radius {
			t.search(node.beyond, query, k, exclude, h)
		}
	} else {
		t.search(node.beyond, query, k, exclude, h)
		if h.Len() == k {
			tau = (*h)[0].Dist
		}
		if d-tau <= node.radius {
			t.search(node.inside, query, k, exclude, h)
		}
	}
}

// Radius returns every stored point within dist of query, ascending by
// distance.
func (t *VPTree) Radius(query []float64, dist float64) []Neighbor {
	var out []Neighbor
	t.radiusSearch(t.root, query, dist, &out)
	sort.Slice(out, func(a, b int) bool { return out[a].Dist < out[b].Dist })
	return out
}

func (t *VPTree) radiusSearch(node *vpNode, query []float64, dist float64, out *[]Neighbor) {
	if node == nil {
		return
	}
	d := math.Sqrt(DistSq(query, t.x.Row(node.index)))
	if d <= dist {
		*out = append(*out, Neighbor{Index: node.index, Dist: d})
	}
	if d-dist <= node.radius {
		t.radiusSearch(node.inside, query, dist, out)
	}
	if d+dist >= node.radius {
		t.radiusSearch(node.beyond, query, dist, out)
	}
}

// GraphFromVPTree builds the kNN graph using a VP-tree — faster than
// brute force for large low-dimensional point sets.
func GraphFromVPTree(x *mat.Matrix, k int) *Graph {
	n := x.RowsN
	if k >= n {
		k = n - 1
	}
	g := &Graph{K: k, Neighbors: make([][]Neighbor, n)}
	if k < 1 {
		return g
	}
	t := NewVPTree(x)
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				g.Neighbors[i] = t.KNearest(x.Row(i), k, i)
			}
		}(lo, hi)
	}
	wg.Wait()
	return g
}
