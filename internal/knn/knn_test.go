package knn

import (
	"math"
	"sort"
	"testing"

	"arams/internal/mat"
	"arams/internal/rng"
)

func points(n, d int, seed uint64) *mat.Matrix {
	return mat.RandGaussian(n, d, rng.New(seed))
}

// naiveKNN computes the reference answer by full sort.
func naiveKNN(x *mat.Matrix, i, k int) []Neighbor {
	var all []Neighbor
	for j := 0; j < x.RowsN; j++ {
		if j == i {
			continue
		}
		all = append(all, Neighbor{Index: j, Dist: math.Sqrt(DistSq(x.Row(i), x.Row(j)))})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Dist < all[b].Dist })
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func sameNeighbors(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Indices can differ under exact ties; distances must agree.
		if math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
			return false
		}
	}
	return true
}

func TestBruteForceMatchesNaive(t *testing.T) {
	x := points(60, 5, 1)
	g := BruteForce(x, 7)
	if g.K != 7 {
		t.Fatalf("K = %d", g.K)
	}
	for i := 0; i < x.RowsN; i++ {
		want := naiveKNN(x, i, 7)
		if !sameNeighbors(g.Neighbors[i], want) {
			t.Fatalf("point %d: %v vs %v", i, g.Neighbors[i], want)
		}
	}
}

func TestBruteForceSortedAscending(t *testing.T) {
	x := points(40, 3, 2)
	g := BruteForce(x, 5)
	for i, nbs := range g.Neighbors {
		for j := 1; j < len(nbs); j++ {
			if nbs[j].Dist < nbs[j-1].Dist {
				t.Fatalf("point %d neighbors not sorted", i)
			}
		}
	}
}

func TestBruteForceClampsK(t *testing.T) {
	x := points(4, 2, 3)
	g := BruteForce(x, 10)
	if g.K != 3 {
		t.Fatalf("K = %d, want 3", g.K)
	}
	for i, nbs := range g.Neighbors {
		if len(nbs) != 3 {
			t.Fatalf("point %d has %d neighbors", i, len(nbs))
		}
	}
}

func TestBruteForceNoSelf(t *testing.T) {
	x := points(30, 4, 4)
	g := BruteForce(x, 6)
	for i, nbs := range g.Neighbors {
		for _, nb := range nbs {
			if nb.Index == i {
				t.Fatalf("point %d is its own neighbor", i)
			}
		}
	}
}

func TestVPTreeMatchesBruteForce(t *testing.T) {
	x := points(120, 2, 5)
	bf := BruteForce(x, 8)
	vp := GraphFromVPTree(x, 8)
	for i := 0; i < x.RowsN; i++ {
		if !sameNeighbors(bf.Neighbors[i], vp.Neighbors[i]) {
			t.Fatalf("point %d: VP-tree disagrees with brute force", i)
		}
	}
}

func TestVPTreeKNearestQueryPoint(t *testing.T) {
	x := points(80, 3, 6)
	tree := NewVPTree(x)
	q := []float64{0.1, -0.2, 0.3}
	got := tree.KNearest(q, 5, -1)
	// Reference: naive over all points.
	var all []Neighbor
	for j := 0; j < x.RowsN; j++ {
		all = append(all, Neighbor{Index: j, Dist: math.Sqrt(DistSq(q, x.Row(j)))})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Dist < all[b].Dist })
	if !sameNeighbors(got, all[:5]) {
		t.Fatalf("VP-tree query wrong: %v vs %v", got, all[:5])
	}
}

func TestVPTreeRadius(t *testing.T) {
	x := points(100, 2, 7)
	tree := NewVPTree(x)
	q := x.Row(0)
	const r = 0.8
	got := tree.Radius(q, r)
	want := 0
	for j := 0; j < x.RowsN; j++ {
		if math.Sqrt(DistSq(q, x.Row(j))) <= r {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("Radius found %d, want %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatal("Radius results not sorted")
		}
	}
}

func TestKnnDuplicatePoints(t *testing.T) {
	// Duplicate points (distance 0) must be handled.
	x := mat.FromRows([][]float64{{1, 1}, {1, 1}, {2, 2}, {3, 3}})
	g := BruteForce(x, 2)
	if g.Neighbors[0][0].Dist != 0 {
		t.Fatalf("duplicate distance = %v", g.Neighbors[0][0].Dist)
	}
	vp := GraphFromVPTree(x, 2)
	if vp.Neighbors[0][0].Dist != 0 {
		t.Fatal("VP-tree missed duplicate")
	}
}

func TestSinglePoint(t *testing.T) {
	x := points(1, 3, 8)
	g := BruteForce(x, 5)
	if g.K != 0 || len(g.Neighbors[0]) != 0 {
		t.Fatalf("single point graph: K=%d", g.K)
	}
}

func TestEmptyMatrix(t *testing.T) {
	g := BruteForce(mat.New(0, 3), 5)
	if len(g.Neighbors) != 0 {
		t.Fatal("empty input produced neighbors")
	}
}
