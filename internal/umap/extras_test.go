package umap

import (
	"testing"

	"arams/internal/knn"
	"arams/internal/mat"
	"arams/internal/rng"
)

func TestFit3Components(t *testing.T) {
	g := rng.New(40)
	x := mat.RandGaussian(60, 8, g)
	emb := Fit(x, Config{NComponents: 3, NNeighbors: 8, NEpochs: 30, Seed: 41})
	if emb.ColsN != 3 {
		t.Fatalf("embedding has %d components", emb.ColsN)
	}
	if emb.HasNaN() {
		t.Fatal("3-D embedding has NaN")
	}
}

func TestFitMoreComponentsThanInputDims(t *testing.T) {
	// NComponents larger than the input dimension: PCA init can only
	// fill the first d columns, the rest start at jitter — must still
	// work.
	g := rng.New(42)
	x := mat.RandGaussian(40, 2, g)
	emb := Fit(x, Config{NComponents: 4, NNeighbors: 6, NEpochs: 20, Seed: 43})
	if emb.ColsN != 4 || emb.HasNaN() {
		t.Fatal("over-wide embedding broken")
	}
}

func TestMaxWeight(t *testing.T) {
	fg := &FuzzyGraph{Weights: []float64{0.2, 0.9, 0.5}}
	if got := fg.MaxWeight(); got != 0.9 {
		t.Fatalf("MaxWeight = %v", got)
	}
	empty := &FuzzyGraph{}
	if got := empty.MaxWeight(); got != 0 {
		t.Fatalf("empty MaxWeight = %v", got)
	}
}

func TestBuildFuzzyGraphK1(t *testing.T) {
	// k=1 graphs (every point connected to its single nearest
	// neighbor) are the minimum viable input.
	g := rng.New(44)
	x := mat.RandGaussian(20, 3, g)
	fg := BuildFuzzyGraph(knn.BruteForce(x, 1))
	if len(fg.Heads) == 0 {
		t.Fatal("k=1 produced no edges")
	}
	for _, w := range fg.Weights {
		if w <= 0 || w > 1+1e-9 {
			t.Fatalf("weight %v out of range", w)
		}
	}
}

func TestFitABMonotone(t *testing.T) {
	// Larger minDist flattens the curve: fitted a decreases.
	aSmall, _ := FitAB(1, 0.01)
	aLarge, _ := FitAB(1, 0.8)
	if aLarge >= aSmall {
		t.Fatalf("a should fall with minDist: a(0.01)=%v a(0.8)=%v", aSmall, aLarge)
	}
}

func TestOptimizeEmptyGraphNoop(t *testing.T) {
	emb := mat.New(3, 2)
	optimizeLayout(emb, &FuzzyGraph{N: 3}, Config{}.withDefaults(3))
	if emb.FrobeniusNorm() != 0 {
		t.Fatal("empty graph changed the embedding")
	}
}
