package umap

import (
	"math"
	"testing"

	"arams/internal/knn"
	"arams/internal/mat"
	"arams/internal/rng"
)

func TestSpectralInitSeparatesComponents(t *testing.T) {
	// Two disconnected graph components must land at different
	// spectral coordinates: the second eigenvector of the Laplacian is
	// the component indicator.
	x, labels := twoClusters(40, 4, 50, 100)
	fg := BuildFuzzyGraph(knn.BruteForce(x, 6))
	emb := spectralInit(fg, 2, rng.New(1))
	sep := clusterSeparation(emb, labels)
	if sep < 1.5 {
		t.Fatalf("spectral init did not separate components: score %v", sep)
	}
}

func TestSpectralInitShapesAndScale(t *testing.T) {
	g := rng.New(2)
	x := mat.RandGaussian(50, 5, g)
	fg := BuildFuzzyGraph(knn.BruteForce(x, 8))
	emb := spectralInit(fg, 3, rng.New(3))
	if emb.RowsN != 50 || emb.ColsN != 3 {
		t.Fatalf("shape %d×%d", emb.RowsN, emb.ColsN)
	}
	if emb.HasNaN() {
		t.Fatal("spectral init has NaN")
	}
	if mx := emb.MaxAbs(); mx > 10.5 || mx < 1 {
		t.Fatalf("scale off: max |coord| = %v", mx)
	}
}

func TestSpectralInitOrthogonalToTrivial(t *testing.T) {
	// The init vectors must be orthogonal to D^{1/2}·1, otherwise the
	// layout starts with a global offset mode.
	g := rng.New(4)
	x := mat.RandGaussian(60, 4, g)
	fg := BuildFuzzyGraph(knn.BruteForce(x, 6))
	deg := make([]float64, fg.N)
	for e := range fg.Heads {
		deg[fg.Heads[e]] += fg.Weights[e]
		deg[fg.Tails[e]] += fg.Weights[e]
	}
	emb := spectralInit(fg, 2, rng.New(5))
	for j := 0; j < 2; j++ {
		var dot, norm float64
		for i := 0; i < fg.N; i++ {
			dot += emb.At(i, j) * math.Sqrt(deg[i])
			norm += emb.At(i, j) * emb.At(i, j)
		}
		// Jitter breaks exact orthogonality; demand near-orthogonal.
		if math.Abs(dot)/math.Sqrt(norm) > 0.2 {
			t.Fatalf("component %d not orthogonal to trivial: %v", j, dot)
		}
	}
}

func TestFitAllInitMethods(t *testing.T) {
	x, labels := twoClusters(50, 4, 12, 101)
	for _, init := range []Init{InitPCA, InitSpectral, InitRandom} {
		emb := Fit(x, Config{NNeighbors: 10, NEpochs: 300, InitMethod: init, Seed: 6})
		if emb.HasNaN() {
			t.Fatalf("init %d: NaN in embedding", init)
		}
		if sep := clusterSeparation(emb, labels); sep < 1.2 {
			t.Errorf("init %d: clusters not separated (score %v)", init, sep)
		}
	}
}

func TestSpectralInitEmptyGraph(t *testing.T) {
	emb := spectralInit(&FuzzyGraph{N: 5}, 2, rng.New(7))
	if emb.RowsN != 5 || emb.HasNaN() {
		t.Fatal("empty-graph spectral init broken")
	}
}
