package umap

import (
	"math"
	"testing"

	"arams/internal/mat"
	"arams/internal/rng"
)

func TestTransformPlacesNearOwnCluster(t *testing.T) {
	// Fit on two clusters; transform fresh points from each cluster and
	// check they land nearer their own cluster's centroid.
	x, labels := twoClusters(60, 4, 12, 200)
	m := FitModel(x, Config{NNeighbors: 10, NEpochs: 200, Seed: 1})

	// Centroids of the fitted embedding per cluster.
	emb := m.Embedding()
	var c0, c1 [2]float64
	for i, l := range labels {
		if l == 0 {
			c0[0] += emb.At(i, 0)
			c0[1] += emb.At(i, 1)
		} else {
			c1[0] += emb.At(i, 0)
			c1[1] += emb.At(i, 1)
		}
	}
	for d := 0; d < 2; d++ {
		c0[d] /= 60
		c1[d] /= 60
	}

	// New points: 10 from cluster 0, 10 from cluster 1.
	g := rng.New(201)
	fresh := mat.New(20, 4)
	for i := 0; i < 20; i++ {
		row := fresh.Row(i)
		for j := range row {
			row[j] = 0.3 * g.Norm()
		}
		if i >= 10 {
			row[0] += 12
		}
	}
	z := m.Transform(fresh)
	if z.HasNaN() {
		t.Fatal("transform produced NaN")
	}
	correct := 0
	for i := 0; i < 20; i++ {
		d0 := math.Hypot(z.At(i, 0)-c0[0], z.At(i, 1)-c0[1])
		d1 := math.Hypot(z.At(i, 0)-c1[0], z.At(i, 1)-c1[1])
		wantCluster0 := i < 10
		if (d0 < d1) == wantCluster0 {
			correct++
		}
	}
	if correct < 18 {
		t.Fatalf("only %d/20 transformed points near their own cluster", correct)
	}
}

func TestTransformEmpty(t *testing.T) {
	x, _ := twoClusters(20, 3, 8, 202)
	m := FitModel(x, Config{NNeighbors: 6, NEpochs: 50, Seed: 2})
	z := m.Transform(mat.New(0, 3))
	if z.RowsN != 0 {
		t.Fatal("empty transform returned rows")
	}
}

func TestTransformDimMismatchPanics(t *testing.T) {
	x, _ := twoClusters(15, 3, 8, 203)
	m := FitModel(x, Config{NNeighbors: 5, NEpochs: 30, Seed: 3})
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	m.Transform(mat.New(2, 4))
}

func TestTransformDeterministic(t *testing.T) {
	x, _ := twoClusters(25, 4, 10, 204)
	m := FitModel(x, Config{NNeighbors: 8, NEpochs: 60, Seed: 4})
	g := rng.New(205)
	fresh := mat.RandGaussian(5, 4, g)
	a := m.Transform(fresh)
	b := m.Transform(fresh)
	if !a.Equal(b, 0) {
		t.Fatal("Transform not deterministic")
	}
}
