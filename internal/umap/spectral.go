package umap

import (
	"math"

	"arams/internal/mat"
	"arams/internal/rng"
)

// Init selects the embedding initialization strategy.
type Init int

const (
	// InitPCA seeds the layout with the input's principal components —
	// fast and deterministic (the package default).
	InitPCA Init = iota
	// InitSpectral seeds with the bottom eigenvectors of the fuzzy
	// graph's normalized Laplacian, the reference implementation's
	// default. Computed by block power iteration on the normalized
	// adjacency, so no dense n×n matrix is formed.
	InitSpectral
	// InitRandom seeds with small Gaussian noise.
	InitRandom
)

// spectralInit computes the k nontrivial bottom eigenvectors of the
// symmetric normalized Laplacian L = I − D^{−1/2} W D^{−1/2} of the
// fuzzy graph, which are the top eigenvectors of M = D^{−1/2} W D^{−1/2}
// after the trivial D^{1/2}·1 direction. Orthogonal (block power)
// iteration against the known trivial eigenvector converges quickly
// because UMAP graphs have strong spectral gaps; the embedding is
// rescaled to the usual ±10 box.
func spectralInit(fg *FuzzyGraph, k int, g *rng.RNG) *mat.Matrix {
	n := fg.N
	emb := mat.New(n, k)
	if n == 0 || len(fg.Heads) == 0 {
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				emb.Set(i, j, 1e-4*g.Norm())
			}
		}
		return emb
	}

	// Degree vector (sum of incident weights, both directions).
	deg := make([]float64, n)
	for e := range fg.Heads {
		deg[fg.Heads[e]] += fg.Weights[e]
		deg[fg.Tails[e]] += fg.Weights[e]
	}
	invSqrt := make([]float64, n)
	for i, d := range deg {
		if d > 0 {
			invSqrt[i] = 1 / math.Sqrt(d)
		}
	}
	// Trivial top eigenvector of M: proportional to D^{1/2}·1.
	trivial := make([]float64, n)
	var tnorm float64
	for i, d := range deg {
		trivial[i] = math.Sqrt(d)
		tnorm += d
	}
	tnorm = math.Sqrt(tnorm)
	if tnorm > 0 {
		for i := range trivial {
			trivial[i] /= tnorm
		}
	}

	// matvec: y = M x over the edge list.
	matvec := func(x, y []float64) {
		for i := range y {
			y[i] = 0
		}
		for e := range fg.Heads {
			h, t := fg.Heads[e], fg.Tails[e]
			w := fg.Weights[e] * invSqrt[h] * invSqrt[t]
			y[h] += w * x[t]
			y[t] += w * x[h]
		}
	}

	// Block power iteration on k vectors, deflating the trivial one.
	block := make([][]float64, k)
	for j := range block {
		block[j] = make([]float64, n)
		for i := range block[j] {
			block[j][i] = g.Norm()
		}
	}
	tmp := make([]float64, n)
	const iters = 150
	for it := 0; it < iters; it++ {
		for j := range block {
			matvec(block[j], tmp)
			// Shift by +I keeps eigenvalues positive (M's spectrum is
			// in [−1, 1]), accelerating convergence to the top.
			for i := range tmp {
				tmp[i] += block[j][i]
			}
			copy(block[j], tmp)
		}
		orthonormalizeAgainst(block, trivial)
	}

	for j := 0; j < k; j++ {
		// Rescale each coordinate to ~±10.
		var maxAbs float64
		for i := 0; i < n; i++ {
			if a := math.Abs(block[j][i]); a > maxAbs {
				maxAbs = a
			}
		}
		scale := 1.0
		if maxAbs > 0 {
			scale = 10 / maxAbs
		}
		for i := 0; i < n; i++ {
			emb.Set(i, j, block[j][i]*scale+1e-4*g.Norm())
		}
	}
	return emb
}

// orthonormalizeAgainst performs modified Gram–Schmidt on the block,
// first deflating the given unit vector from every column.
func orthonormalizeAgainst(block [][]float64, unit []float64) {
	for j := range block {
		v := block[j]
		// Remove the trivial direction.
		var dot float64
		for i := range v {
			dot += v[i] * unit[i]
		}
		for i := range v {
			v[i] -= dot * unit[i]
		}
		// Remove earlier block vectors.
		for p := 0; p < j; p++ {
			var d float64
			for i := range v {
				d += v[i] * block[p][i]
			}
			for i := range v {
				v[i] -= d * block[p][i]
			}
		}
		// Normalize (re-randomizing a vanished vector is unnecessary:
		// the jitter added at output time breaks exact degeneracy).
		norm := mat.Norm2(v)
		if norm > 0 {
			for i := range v {
				v[i] /= norm
			}
		}
	}
}
