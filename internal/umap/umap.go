// Package umap implements Uniform Manifold Approximation and
// Projection (McInnes, Healy, Saul & Großberger 2018) — the 2-D
// visualization stage of the paper's pipeline. It follows the reference
// algorithm: exact kNN graph, smooth-kNN distance calibration, fuzzy
// simplicial set construction with probabilistic t-conorm
// symmetrization, and stochastic gradient descent on the cross-entropy
// layout objective with negative sampling.
//
// The implementation is deterministic for a fixed seed: the SGD loop is
// single-goroutine (the kNN stage, which dominates at pipeline sizes,
// is parallel), so repeated runs produce identical embeddings.
package umap

import (
	"fmt"
	"math"

	"arams/internal/knn"
	"arams/internal/mat"
	"arams/internal/rng"
)

// Config holds UMAP hyperparameters; zero values select the reference
// defaults.
type Config struct {
	NNeighbors         int     // default 15
	NComponents        int     // default 2
	MinDist            float64 // default 0.1
	Spread             float64 // default 1.0
	NEpochs            int     // default: 500 for n<10000, else 200
	NegativeSampleRate int     // default 5
	LearningRate       float64 // default 1.0
	// InitMethod selects the layout initialization: InitPCA (default),
	// InitSpectral (Laplacian eigenmaps, the reference default), or
	// InitRandom.
	InitMethod Init
	Seed       uint64
}

func (c Config) withDefaults(n int) Config {
	if c.NNeighbors <= 0 {
		c.NNeighbors = 15
	}
	if c.NNeighbors >= n {
		c.NNeighbors = n - 1
	}
	if c.NComponents <= 0 {
		c.NComponents = 2
	}
	if c.MinDist <= 0 {
		c.MinDist = 0.1
	}
	if c.Spread <= 0 {
		c.Spread = 1.0
	}
	if c.NEpochs <= 0 {
		if n < 10000 {
			c.NEpochs = 500
		} else {
			c.NEpochs = 200
		}
	}
	if c.NegativeSampleRate <= 0 {
		c.NegativeSampleRate = 5
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 1.0
	}
	return c
}

// FuzzyGraph is the symmetrized fuzzy simplicial set: a weighted
// undirected graph in coordinate (edge-list) form.
type FuzzyGraph struct {
	N       int
	Heads   []int
	Tails   []int
	Weights []float64
}

// smoothKNN computes, for each point, the local connectivity offset ρᵢ
// (distance to the nearest neighbor) and the bandwidth σᵢ solving
//
//	Σⱼ exp(−max(0, dᵢⱼ−ρᵢ)/σᵢ) = log₂(k)
//
// by bisection, exactly the smooth-kNN-distance calibration of the
// UMAP paper.
func smoothKNN(g *knn.Graph) (rho, sigma []float64) {
	n := len(g.Neighbors)
	rho = make([]float64, n)
	sigma = make([]float64, n)
	target := math.Log2(float64(g.K))
	if target <= 0 {
		target = 1e-3
	}
	const (
		tol      = 1e-5
		maxIters = 64
	)
	for i := 0; i < n; i++ {
		nbs := g.Neighbors[i]
		if len(nbs) == 0 {
			sigma[i] = 1
			continue
		}
		// ρ: smallest nonzero neighbor distance (duplicates give 0).
		for _, nb := range nbs {
			if nb.Dist > 0 {
				rho[i] = nb.Dist
				break
			}
		}
		lo, hi, mid := 0.0, math.Inf(1), 1.0
		for it := 0; it < maxIters; it++ {
			var psum float64
			for _, nb := range nbs {
				d := nb.Dist - rho[i]
				if d <= 0 {
					psum++
				} else {
					psum += math.Exp(-d / mid)
				}
			}
			if math.Abs(psum-target) < tol {
				break
			}
			if psum > target {
				hi = mid
				mid = (lo + hi) / 2
			} else {
				lo = mid
				if math.IsInf(hi, 1) {
					mid *= 2
				} else {
					mid = (lo + hi) / 2
				}
			}
		}
		// Bandwidth floor relative to the mean neighbor distance,
		// preventing degenerate σ for isolated points (reference
		// implementation's MIN_K_DIST_SCALE guard).
		var mean float64
		for _, nb := range nbs {
			mean += nb.Dist
		}
		mean /= float64(len(nbs))
		if rho[i] > 0 {
			if floor := 1e-3 * mean; mid < floor {
				mid = floor
			}
		}
		sigma[i] = mid
	}
	return rho, sigma
}

// BuildFuzzyGraph constructs the symmetrized fuzzy simplicial set from
// a kNN graph: directed memberships wᵢⱼ = exp(−max(0,dᵢⱼ−ρᵢ)/σᵢ),
// symmetrized by the probabilistic t-conorm W + Wᵀ − W∘Wᵀ.
func BuildFuzzyGraph(g *knn.Graph) *FuzzyGraph {
	n := len(g.Neighbors)
	rho, sigma := smoothKNN(g)
	// Directed weights in a map keyed by (i, j).
	type key struct{ i, j int }
	directed := make(map[key]float64, n*g.K)
	for i := 0; i < n; i++ {
		for _, nb := range g.Neighbors[i] {
			d := nb.Dist - rho[i]
			w := 1.0
			if d > 0 && sigma[i] > 0 {
				w = math.Exp(-d / sigma[i])
			}
			directed[key{i, nb.Index}] = w
		}
	}
	// Emit undirected edges in deterministic (point, neighbor) order so
	// the SGD schedule — and therefore the embedding — is reproducible
	// for a fixed seed.
	fg := &FuzzyGraph{N: n}
	seen := make(map[key]bool, len(directed))
	for i := 0; i < n; i++ {
		for _, nb := range g.Neighbors[i] {
			k := key{i, nb.Index}
			rk := key{nb.Index, i}
			if seen[k] || seen[rk] {
				continue
			}
			seen[k] = true
			w := directed[k]
			wT := directed[rk] // zero if absent
			sym := w + wT - w*wT
			if sym <= 0 {
				continue
			}
			fg.Heads = append(fg.Heads, k.i)
			fg.Tails = append(fg.Tails, k.j)
			fg.Weights = append(fg.Weights, sym)
		}
	}
	return fg
}

// MaxWeight returns the largest edge weight (0 for an empty graph).
func (fg *FuzzyGraph) MaxWeight() float64 {
	var mx float64
	for _, w := range fg.Weights {
		if w > mx {
			mx = w
		}
	}
	return mx
}

// Fit computes the UMAP embedding of the rows of x.
func Fit(x *mat.Matrix, cfg Config) *mat.Matrix {
	n := x.RowsN
	if n == 0 {
		return mat.New(0, max(cfg.NComponents, 2))
	}
	cfg = cfg.withDefaults(n)
	if n == 1 {
		return mat.New(1, cfg.NComponents)
	}
	if cfg.NNeighbors < 1 {
		panic(fmt.Sprintf("umap: need at least 2 points per neighborhood, n=%d", n))
	}
	g := knn.BruteForce(x, cfg.NNeighbors)
	fg := BuildFuzzyGraph(g)
	var emb *mat.Matrix
	switch cfg.InitMethod {
	case InitSpectral:
		emb = spectralInit(fg, cfg.NComponents, rng.New(cfg.Seed))
	case InitRandom:
		emb = randomInit(n, cfg.NComponents, rng.New(cfg.Seed))
	default:
		emb = initEmbedding(x, cfg)
	}
	optimizeLayout(emb, fg, cfg)
	return emb
}

// randomInit seeds the layout with small Gaussian coordinates.
func randomInit(n, k int, g *rng.RNG) *mat.Matrix {
	emb := mat.New(n, k)
	for i := range emb.Data {
		emb.Data[i] = 10 * g.Norm()
	}
	return emb
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
