package umap

import (
	"math"
	"testing"

	"arams/internal/knn"
	"arams/internal/mat"
	"arams/internal/rng"
)

func TestFitABKnownValues(t *testing.T) {
	// Reference implementation values for the default hyperparameters
	// (spread=1, min_dist=0.1): a ≈ 1.577, b ≈ 0.895.
	a, b := FitAB(1.0, 0.1)
	if math.Abs(a-1.577) > 0.05 {
		t.Errorf("a = %v, want ≈1.577", a)
	}
	if math.Abs(b-0.895) > 0.02 {
		t.Errorf("b = %v, want ≈0.895", b)
	}
}

func TestFitABCurveQuality(t *testing.T) {
	// The fitted curve must approximate the target membership function.
	for _, tc := range []struct{ spread, minDist float64 }{
		{1.0, 0.1}, {1.0, 0.5}, {2.0, 0.25},
	} {
		a, b := FitAB(tc.spread, tc.minDist)
		var maxErr float64
		for i := 1; i <= 100; i++ {
			x := 3 * tc.spread * float64(i) / 100
			var want float64
			if x <= tc.minDist {
				want = 1
			} else {
				want = math.Exp(-(x - tc.minDist) / tc.spread)
			}
			got := 1 / (1 + a*math.Pow(x, 2*b))
			if e := math.Abs(got - want); e > maxErr {
				maxErr = e
			}
		}
		if maxErr > 0.12 {
			t.Errorf("spread=%v minDist=%v: curve max error %v", tc.spread, tc.minDist, maxErr)
		}
	}
}

func TestSmoothKNNCalibration(t *testing.T) {
	g := rng.New(1)
	x := mat.RandGaussian(100, 5, g)
	kg := knn.BruteForce(x, 10)
	rho, sigma := smoothKNN(kg)
	target := math.Log2(10)
	for i := 0; i < x.RowsN; i++ {
		var sum float64
		for _, nb := range kg.Neighbors[i] {
			d := nb.Dist - rho[i]
			if d <= 0 {
				sum++
			} else {
				sum += math.Exp(-d / sigma[i])
			}
		}
		if math.Abs(sum-target) > 0.01 {
			t.Fatalf("point %d: membership sum %v, want %v", i, sum, target)
		}
		if rho[i] <= 0 {
			t.Fatalf("point %d: rho = %v", i, rho[i])
		}
	}
}

func TestBuildFuzzyGraphProperties(t *testing.T) {
	g := rng.New(2)
	x := mat.RandGaussian(60, 4, g)
	fg := BuildFuzzyGraph(knn.BruteForce(x, 8))
	if fg.N != 60 {
		t.Fatalf("N = %d", fg.N)
	}
	type pair struct{ a, b int }
	seen := map[pair]bool{}
	for e := range fg.Heads {
		w := fg.Weights[e]
		if w <= 0 || w > 1+1e-12 {
			t.Fatalf("edge %d weight %v out of (0,1]", e, w)
		}
		h, tl := fg.Heads[e], fg.Tails[e]
		if h == tl {
			t.Fatalf("self loop at %d", h)
		}
		p := pair{min2(h, tl), max(h, tl)}
		if seen[p] {
			t.Fatalf("duplicate undirected edge %v", p)
		}
		seen[p] = true
	}
	// Every point participates in at least one edge (k=8 neighbors).
	deg := make([]int, fg.N)
	for e := range fg.Heads {
		deg[fg.Heads[e]]++
		deg[fg.Tails[e]]++
	}
	for i, d := range deg {
		if d == 0 {
			t.Fatalf("point %d isolated", i)
		}
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestFuzzyGraphNearestNeighborFullMembership(t *testing.T) {
	// The nearest neighbor of every point has membership 1 before
	// symmetrization (d = ρ), so its symmetrized weight is 1 too.
	g := rng.New(3)
	x := mat.RandGaussian(50, 3, g)
	kg := knn.BruteForce(x, 5)
	fg := BuildFuzzyGraph(kg)
	weight := map[[2]int]float64{}
	for e := range fg.Heads {
		a, b := fg.Heads[e], fg.Tails[e]
		weight[[2]int{min2(a, b), max(a, b)}] = fg.Weights[e]
	}
	for i := 0; i < x.RowsN; i++ {
		nn := kg.Neighbors[i][0].Index
		w := weight[[2]int{min2(i, nn), max(i, nn)}]
		if w < 1-1e-6 {
			t.Fatalf("point %d: nearest-neighbor weight %v, want 1", i, w)
		}
	}
}

// twoClusters builds two well-separated Gaussian blobs.
func twoClusters(nPer, d int, sep float64, seed uint64) (*mat.Matrix, []int) {
	g := rng.New(seed)
	x := mat.New(2*nPer, d)
	labels := make([]int, 2*nPer)
	for i := 0; i < 2*nPer; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = g.Norm() * 0.3
		}
		if i >= nPer {
			row[0] += sep
			labels[i] = 1
		}
	}
	return x, labels
}

func TestFitSeparatesClusters(t *testing.T) {
	x, labels := twoClusters(60, 5, 10, 4)
	emb := Fit(x, Config{NNeighbors: 10, NEpochs: 200, Seed: 5})
	if r, c := emb.Dims(); r != 120 || c != 2 {
		t.Fatalf("embedding shape %d×%d", r, c)
	}
	if emb.HasNaN() {
		t.Fatal("embedding has NaN")
	}
	sep := clusterSeparation(emb, labels)
	if sep < 2 {
		t.Fatalf("clusters not separated in embedding: separation score %v", sep)
	}
}

// clusterSeparation returns inter-centroid distance divided by mean
// intra-cluster spread.
func clusterSeparation(emb *mat.Matrix, labels []int) float64 {
	var c0, c1 [2]float64
	var n0, n1 int
	for i, l := range labels {
		if l == 0 {
			c0[0] += emb.At(i, 0)
			c0[1] += emb.At(i, 1)
			n0++
		} else {
			c1[0] += emb.At(i, 0)
			c1[1] += emb.At(i, 1)
			n1++
		}
	}
	c0[0] /= float64(n0)
	c0[1] /= float64(n0)
	c1[0] /= float64(n1)
	c1[1] /= float64(n1)
	var spread float64
	for i, l := range labels {
		c := c0
		if l == 1 {
			c = c1
		}
		dx := emb.At(i, 0) - c[0]
		dy := emb.At(i, 1) - c[1]
		spread += math.Sqrt(dx*dx + dy*dy)
	}
	spread /= float64(len(labels))
	inter := math.Hypot(c0[0]-c1[0], c0[1]-c1[1])
	if spread == 0 {
		return math.Inf(1)
	}
	return inter / spread
}

func TestFitDeterministic(t *testing.T) {
	x, _ := twoClusters(25, 4, 6, 6)
	cfg := Config{NNeighbors: 8, NEpochs: 50, Seed: 7}
	a := Fit(x, cfg)
	b := Fit(x, cfg)
	if !a.Equal(b, 0) {
		t.Fatal("same-seed UMAP runs differ")
	}
}

func TestFitPreservesNeighborhoods(t *testing.T) {
	// Points close in input space should tend to stay close in the
	// embedding: check that the mean embedded distance to input-space
	// kNN is far below the mean distance to random points.
	g := rng.New(8)
	x := mat.RandGaussian(150, 6, g)
	emb := Fit(x, Config{NNeighbors: 10, NEpochs: 150, Seed: 9})
	kg := knn.BruteForce(x, 5)
	var nbDist, randDist float64
	cnt := 0
	for i := 0; i < x.RowsN; i++ {
		for _, nb := range kg.Neighbors[i] {
			nbDist += math.Sqrt(distSq(emb.Row(i), emb.Row(nb.Index)))
			randDist += math.Sqrt(distSq(emb.Row(i), emb.Row(g.Intn(x.RowsN))))
			cnt++
		}
	}
	nbDist /= float64(cnt)
	randDist /= float64(cnt)
	if nbDist >= randDist {
		t.Fatalf("neighbors not preserved: nb %v vs random %v", nbDist, randDist)
	}
}

func TestFitSmallInputs(t *testing.T) {
	if e := Fit(mat.New(0, 3), Config{}); e.RowsN != 0 {
		t.Fatal("empty input should give empty embedding")
	}
	one := mat.FromRows([][]float64{{1, 2, 3}})
	if e := Fit(one, Config{}); e.RowsN != 1 || e.ColsN != 2 {
		t.Fatalf("single point embedding shape %d×%d", e.RowsN, e.ColsN)
	}
	two := mat.FromRows([][]float64{{0, 0}, {1, 1}})
	e := Fit(two, Config{NEpochs: 10, Seed: 1})
	if e.RowsN != 2 || e.HasNaN() {
		t.Fatal("two-point embedding broken")
	}
}

func TestFitDuplicatePoints(t *testing.T) {
	// All-identical points: must not NaN or explode.
	x := mat.New(20, 3)
	for i := 0; i < 20; i++ {
		x.Set(i, 0, 1)
		x.Set(i, 1, 2)
		x.Set(i, 2, 3)
	}
	emb := Fit(x, Config{NNeighbors: 5, NEpochs: 30, Seed: 2})
	if emb.HasNaN() {
		t.Fatal("duplicate points produced NaN embedding")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults(500)
	if c.NNeighbors != 15 || c.NComponents != 2 || c.MinDist != 0.1 ||
		c.Spread != 1.0 || c.NEpochs != 500 || c.NegativeSampleRate != 5 ||
		c.LearningRate != 1.0 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	big := Config{}.withDefaults(20000)
	if big.NEpochs != 200 {
		t.Fatalf("large-n NEpochs = %d", big.NEpochs)
	}
	tiny := Config{}.withDefaults(5)
	if tiny.NNeighbors != 4 {
		t.Fatalf("NNeighbors not clamped: %d", tiny.NNeighbors)
	}
}
