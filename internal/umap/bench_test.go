package umap

import (
	"testing"

	"arams/internal/knn"
	"arams/internal/mat"
	"arams/internal/rng"
)

func BenchmarkFuzzyGraph(b *testing.B) {
	g := rng.New(1)
	x := mat.RandGaussian(400, 12, g)
	kg := knn.BruteForce(x, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildFuzzyGraph(kg)
	}
}

func BenchmarkFitSmall(b *testing.B) {
	g := rng.New(2)
	x := mat.RandGaussian(200, 10, g)
	cfg := Config{NNeighbors: 15, NEpochs: 100, Seed: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Fit(x, cfg)
	}
}

func BenchmarkSpectralInit(b *testing.B) {
	g := rng.New(4)
	x := mat.RandGaussian(300, 8, g)
	fg := BuildFuzzyGraph(knn.BruteForce(x, 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = spectralInit(fg, 2, rng.New(5))
	}
}
