package umap

import (
	"math"

	"arams/internal/knn"
	"arams/internal/mat"
	"arams/internal/rng"
)

// Model retains the training data and its embedding so that new
// out-of-sample points can be placed into the existing map without
// refitting — what a live monitor does when new shots arrive between
// full refreshes.
type Model struct {
	cfg   Config
	train *mat.Matrix
	emb   *mat.Matrix
	a, b  float64
}

// FitModel fits UMAP on x and returns a reusable model.
func FitModel(x *mat.Matrix, cfg Config) *Model {
	emb := Fit(x, cfg)
	c := cfg.withDefaults(max(x.RowsN, 2))
	a, b := FitAB(c.Spread, c.MinDist)
	return &Model{cfg: c, train: x.Clone(), emb: emb, a: a, b: b}
}

// Embedding returns the training embedding (shared storage).
func (m *Model) Embedding() *mat.Matrix { return m.emb }

// InputDim returns the feature dimension the model was fitted on;
// Transform panics on rows of any other width, so callers reusing a
// cached model check this first.
func (m *Model) InputDim() int { return m.train.ColsN }

// Transform places the rows of x into the fitted embedding: each new
// point starts at the distance-weighted mean of its training
// neighbors' embedded positions and is refined by a short SGD with
// attraction toward those neighbors (training positions stay fixed,
// as in the reference implementation's transform).
func (m *Model) Transform(x *mat.Matrix) *mat.Matrix {
	if x.ColsN != m.train.ColsN {
		panic("umap: Transform dimension mismatch")
	}
	n := x.RowsN
	dim := m.emb.ColsN
	out := mat.New(n, dim)
	if n == 0 {
		return out
	}
	k := m.cfg.NNeighbors
	if k > m.train.RowsN {
		k = m.train.RowsN
	}
	tree := knn.NewVPTree(m.train)
	g := rng.New(m.cfg.Seed + 0x51ed270b)

	type anchor struct {
		idx    int
		weight float64
	}
	anchors := make([][]anchor, n)
	for i := 0; i < n; i++ {
		nbs := tree.KNearest(x.Row(i), k, -1)
		// Weights: smooth inverse distance, normalized.
		var sum float64
		as := make([]anchor, len(nbs))
		for j, nb := range nbs {
			w := 1 / (nb.Dist + 1e-10)
			as[j] = anchor{idx: nb.Index, weight: w}
			sum += w
		}
		row := out.Row(i)
		for j := range as {
			as[j].weight /= sum
			e := m.emb.Row(as[j].idx)
			for d := 0; d < dim; d++ {
				row[d] += as[j].weight * e[d]
			}
		}
		anchors[i] = as
	}

	// Refinement: attraction toward anchors, repulsion from random
	// training points; training embedding is frozen.
	epochs := m.cfg.NEpochs / 3
	if epochs < 30 {
		epochs = 30
	}
	clip := func(v float64) float64 {
		if v > 4 {
			return 4
		}
		if v < -4 {
			return -4
		}
		return v
	}
	for epoch := 1; epoch <= epochs; epoch++ {
		alpha := m.cfg.LearningRate * (1 - float64(epoch)/float64(epochs))
		if alpha < 1e-4 {
			alpha = 1e-4
		}
		for i := 0; i < n; i++ {
			pt := out.Row(i)
			for _, an := range anchors[i] {
				target := m.emb.Row(an.idx)
				d2 := distSq(pt, target)
				if d2 > 0 {
					coeff := -2 * m.a * m.b * math.Pow(d2, m.b-1) / (1 + m.a*math.Pow(d2, m.b))
					for d := 0; d < dim; d++ {
						pt[d] += alpha * an.weight * clip(coeff*(pt[d]-target[d]))
					}
				}
			}
			// One negative sample per epoch keeps new points from
			// collapsing onto dense regions they do not belong to.
			other := m.emb.Row(g.Intn(m.emb.RowsN))
			d2 := distSq(pt, other)
			if d2 > 0 {
				coeff := 2 * m.b / ((0.001 + d2) * (1 + m.a*math.Pow(d2, m.b)))
				for d := 0; d < dim; d++ {
					pt[d] += alpha * clip(coeff*(pt[d]-other[d]))
				}
			}
		}
	}
	return out
}
