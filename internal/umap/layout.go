package umap

import (
	"math"

	"arams/internal/mat"
	"arams/internal/rng"
)

// FitAB fits the curve 1/(1+a·x^{2b}) to the target membership
// function ψ(x) = 1 for x ≤ minDist, exp(−(x−minDist)/spread)
// otherwise, by Gauss–Newton least squares on a dense grid — the same
// procedure as the reference implementation's curve_fit call. It
// returns the (a, b) pair used by the layout gradients.
func FitAB(spread, minDist float64) (a, b float64) {
	const samples = 300
	xs := make([]float64, samples)
	ys := make([]float64, samples)
	for i := 0; i < samples; i++ {
		x := 3 * spread * float64(i+1) / samples
		xs[i] = x
		if x <= minDist {
			ys[i] = 1
		} else {
			ys[i] = math.Exp(-(x - minDist) / spread)
		}
	}
	// Gauss–Newton on residual r = y − 1/(1+a x^{2b}).
	a, b = 1.0, 1.0
	for iter := 0; iter < 200; iter++ {
		var jtj00, jtj01, jtj11, jtr0, jtr1 float64
		for i := range xs {
			x2b := math.Pow(xs[i], 2*b)
			den := 1 + a*x2b
			f := 1 / den
			r := ys[i] - f
			// ∂f/∂a = −x^{2b}/den²; ∂f/∂b = −2a·ln(x)·x^{2b}/den².
			dfa := -x2b / (den * den)
			dfb := -2 * a * math.Log(xs[i]) * x2b / (den * den)
			jtj00 += dfa * dfa
			jtj01 += dfa * dfb
			jtj11 += dfb * dfb
			jtr0 += dfa * r
			jtr1 += dfb * r
		}
		// Solve the 2×2 normal equations with Levenberg damping.
		lambda := 1e-6 * (jtj00 + jtj11)
		det := (jtj00+lambda)*(jtj11+lambda) - jtj01*jtj01
		if det == 0 {
			break
		}
		da := ((jtj11+lambda)*jtr0 - jtj01*jtr1) / det
		db := ((jtj00+lambda)*jtr1 - jtj01*jtr0) / det
		a += da
		b += db
		if a < 1e-3 {
			a = 1e-3
		}
		if b < 1e-3 {
			b = 1e-3
		}
		if math.Abs(da)+math.Abs(db) < 1e-9 {
			break
		}
	}
	return a, b
}

// initEmbedding seeds the layout with the first NComponents principal
// components of the (centered) input, rescaled to a ±10 box — a
// deterministic alternative to the reference's spectral initialization
// with the same "start from global structure" effect.
func initEmbedding(x *mat.Matrix, cfg Config) *mat.Matrix {
	n, d := x.Dims()
	k := cfg.NComponents
	centered := x.Clone()
	means := make([]float64, d)
	for i := 0; i < n; i++ {
		row := centered.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(n)
	}
	for i := 0; i < n; i++ {
		row := centered.Row(i)
		for j := range row {
			row[j] -= means[j]
		}
	}
	emb := mat.New(n, k)
	// Principal directions via the Gram-trick SVD on the transpose
	// orientation (d is small after PCA projection).
	_, s, vt := mat.SVDGram(centered.T())
	// vt rows live in sample space? SVDGram(centeredᵀ) factors the d×n
	// matrix; its right singular vectors (k×n) are the principal
	// component scores across samples.
	g := rng.New(cfg.Seed)
	var scale float64
	if len(s) > 0 && s[0] > 0 {
		scale = 10 / s[0]
	}
	for i := 0; i < n; i++ {
		row := emb.Row(i)
		for j := 0; j < k; j++ {
			if j < vt.RowsN && scale > 0 {
				row[j] = vt.At(j, i) * s[j] * scale
			}
			// Tiny jitter breaks exact ties (duplicate points).
			row[j] += 1e-4 * g.Norm()
		}
	}
	return emb
}

// optimizeLayout runs the UMAP SGD: attractive updates along graph
// edges scheduled by weight, repulsive updates against uniformly
// sampled negative examples, with the learning rate annealed linearly.
func optimizeLayout(emb *mat.Matrix, fg *FuzzyGraph, cfg Config) {
	nEdges := len(fg.Heads)
	if nEdges == 0 {
		return
	}
	a, b := FitAB(cfg.Spread, cfg.MinDist)
	dim := emb.ColsN
	g := rng.New(cfg.Seed + 0x9e3779b9)

	// Edge scheduling: an edge with weight w fires every
	// maxW/w epochs, so heavy edges dominate the attraction budget.
	maxW := fg.MaxWeight()
	epochsPerSample := make([]float64, nEdges)
	nextSample := make([]float64, nEdges)
	for e := range epochsPerSample {
		epochsPerSample[e] = maxW / fg.Weights[e]
		nextSample[e] = epochsPerSample[e]
	}
	negPerSample := make([]float64, nEdges)
	nextNeg := make([]float64, nEdges)
	for e := range negPerSample {
		negPerSample[e] = epochsPerSample[e] / float64(cfg.NegativeSampleRate)
		nextNeg[e] = negPerSample[e]
	}

	clip := func(v float64) float64 {
		if v > 4 {
			return 4
		}
		if v < -4 {
			return -4
		}
		return v
	}

	for epoch := 1; epoch <= cfg.NEpochs; epoch++ {
		alpha := cfg.LearningRate * (1 - float64(epoch)/float64(cfg.NEpochs))
		if alpha < 1e-4 {
			alpha = 1e-4
		}
		fe := float64(epoch)
		for e := 0; e < nEdges; e++ {
			if nextSample[e] > fe {
				continue
			}
			head := emb.Row(fg.Heads[e])
			tail := emb.Row(fg.Tails[e])
			d2 := distSq(head, tail)
			if d2 > 0 {
				// Attractive gradient coefficient.
				coeff := -2 * a * b * math.Pow(d2, b-1) / (1 + a*math.Pow(d2, b))
				for j := 0; j < dim; j++ {
					gd := clip(coeff * (head[j] - tail[j]))
					head[j] += alpha * gd
					tail[j] -= alpha * gd
				}
			}
			nextSample[e] += epochsPerSample[e]

			// Negative samples accumulated since this edge last fired.
			nNeg := int((fe - nextNeg[e]) / negPerSample[e])
			for t := 0; t < nNeg; t++ {
				oi := g.Intn(fg.N)
				if oi == fg.Heads[e] {
					continue // never repel a point from itself
				}
				other := emb.Row(oi)
				d2 := distSq(head, other)
				if d2 > 0 {
					coeff := 2 * b / ((0.001 + d2) * (1 + a*math.Pow(d2, b)))
					for j := 0; j < dim; j++ {
						gd := clip(coeff * (head[j] - other[j]))
						head[j] += alpha * gd
					}
				} else {
					// Distinct but coincident pair: maximal kick, as in
					// the reference implementation.
					for j := 0; j < dim; j++ {
						head[j] += alpha * 4
					}
				}
			}
			nextNeg[e] += float64(nNeg) * negPerSample[e]
		}
	}
}

func distSq(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
